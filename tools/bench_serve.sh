#!/usr/bin/env bash
# Produces the serve-layer benchmark report (BENCH_7.json):
#
#   1. builds mcps_load + bench_micro_kernel;
#   2. runs the calendar-queue microbench (the tombstone-compaction
#      "after" numbers) with --json;
#   3. runs mcps_load against an embedded server (requests traverse real
#      loopback TCP) sweeping 1/4/16/64 concurrent clients, splicing in
#      the compaction before/after metrics:
#        kernel_before/* — frozen bench/baselines/micro_kernel_pr7_prechange.json
#        kernel_after/*  — the fresh microbench run
#   4. validates the merged report against the benchio schema.
#
#   tools/bench_serve.sh [--quick] [--out FILE]
#
# --quick shrinks everything (schema smoke; numbers meaningless; output
# goes to the build tree unless --out says otherwise). Without --quick,
# run on a QUIET machine. The checked-in BENCH_7.json at the repo root
# was produced by this script.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
quick=0
out=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --quick) quick=1; shift ;;
        --out) out="$2"; shift 2 ;;
        *) echo "usage: tools/bench_serve.sh [--quick] [--out FILE]" >&2
           exit 2 ;;
    esac
done

build="${repo_root}/build"
scratch="${build}/bench_serve"
before="${repo_root}/bench/baselines/micro_kernel_pr7_prechange.json"
if [[ -z "${out}" ]]; then
    if [[ "${quick}" == "1" ]]; then out="${scratch}/BENCH_serve_quick.json"
    else out="${repo_root}/BENCH_7.json"; fi
fi

echo "==== build ===="
cmake -S "${repo_root}" -B "${build}" >/dev/null
cmake --build "${build}" -j "${jobs}" \
    --target mcps_load bench_micro_kernel mcps_trace >/dev/null
mkdir -p "${scratch}"

quick_flag=()
load_args=(--clients-list 1,4,16,64 --requests 64 --workers 4)
if [[ "${quick}" == "1" ]]; then
    quick_flag=(--quick)
    load_args=()
fi

echo "==== run bench_micro_kernel (compaction 'after' numbers) ===="
"${build}/bench/bench_micro_kernel" "${quick_flag[@]}" \
    --json "${scratch}/micro_kernel.json"

echo "==== run mcps_load (embedded server, loopback TCP) ===="
"${build}/tools/mcps_load" --embed "${quick_flag[@]}" "${load_args[@]}" \
    --import-metrics "${before}" kernel_before \
    --import-metrics "${scratch}/micro_kernel.json" kernel_after \
    --json "${out}"

echo "==== validate ===="
"${build}/tools/mcps_trace" check-bench "${out}"
echo "serve bench written: ${out}"
