/// \file mcps_serve.cpp
/// \brief Long-running scenario-execution service (see src/serve).
///
/// Binds a JSONL endpoint (TCP or Unix-domain), executes run requests
/// on a worker pool with fingerprint-keyed result caching and QoS
/// admission control, and drains gracefully on SIGINT/SIGTERM or a
/// `drain` command.
///
///   mcps_serve --port 7171 --workers 4 --queue 64 --cache 256
///   mcps_serve --unix /tmp/mcps.sock --cache-save /tmp/mcps.cache
///
/// Prints `listening on <endpoint>` once ready (scrapeable by scripts;
/// `--port 0` picks an ephemeral port and prints the real one).

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>

#include "cli.hpp"
#include "serve/serve.hpp"

namespace {

// Signal handling via the self-pipe trick: the handler only write()s
// (async-signal-safe); a watcher thread does the actual drain call.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void usage(std::ostream& os) {
    os << "usage: mcps_serve [options]\n"
          "  --port N               listen on TCP 127.0.0.1:N (0 = ephemeral"
          ", default 0)\n"
          "  --host ADDR            TCP bind address (default 127.0.0.1)\n"
          "  --unix PATH            listen on a Unix-domain socket instead\n"
          "  --workers N            scenario worker threads (default 2)\n"
          "  --queue N              admission queue capacity (default 64)\n"
          "  --cache N              result-cache entries, 0 disables "
          "(default 256)\n"
          "  --max-request-bytes N  per-line request bound (default 65536)\n"
          "  --cache-load PATH      load a cache snapshot on start\n"
          "  --cache-save PATH      save a cache snapshot on drain\n"
          "  --quiet                suppress the shutdown stats line\n"
          "  --help                 this text\n";
}

}  // namespace

int main(int argc, char** argv) {
    using mcps::cli::CliError;
    mcps::serve::ServerConfig cfg;
    std::string host = "127.0.0.1";
    std::uint64_t port = 0;
    std::string unix_sock;
    bool quiet = false;
    try {
        mcps::cli::Args args{argc, argv};
        while (!args.done()) {
            const auto arg = args.next();
            if (arg == "--port") {
                port = mcps::cli::parse_u64(arg, args.value(arg));
                if (port > 65535) throw CliError{"--port: out of range"};
            } else if (arg == "--host") {
                host = std::string{args.value(arg)};
            } else if (arg == "--unix") {
                unix_sock = std::string{args.value(arg)};
            } else if (arg == "--workers") {
                cfg.workers = static_cast<unsigned>(
                    mcps::cli::parse_u64(arg, args.value(arg)));
            } else if (arg == "--queue") {
                cfg.queue_capacity = static_cast<std::size_t>(
                    mcps::cli::parse_u64(arg, args.value(arg)));
            } else if (arg == "--cache") {
                cfg.cache_entries = static_cast<std::size_t>(
                    mcps::cli::parse_u64(arg, args.value(arg)));
            } else if (arg == "--max-request-bytes") {
                cfg.max_request_bytes = static_cast<std::size_t>(
                    mcps::cli::parse_u64(arg, args.value(arg)));
            } else if (arg == "--cache-load") {
                cfg.cache_load_path = std::string{args.value(arg)};
            } else if (arg == "--cache-save") {
                cfg.cache_save_path = std::string{args.value(arg)};
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help") {
                usage(std::cout);
                return 0;
            } else {
                throw CliError{"unknown option '" + std::string{arg} + "'"};
            }
        }
    } catch (const CliError& e) {
        std::cerr << "mcps_serve: " << e.message << "\n";
        usage(std::cerr);
        return 2;
    }

    cfg.endpoint =
        unix_sock.empty()
            ? mcps::serve::Endpoint::tcp(host,
                                         static_cast<std::uint16_t>(port))
            : mcps::serve::Endpoint::unix_path(unix_sock);

    try {
        mcps::serve::Server server{cfg};

        if (::pipe(g_signal_pipe) != 0) {
            std::cerr << "mcps_serve: pipe() failed\n";
            return 1;
        }
        std::signal(SIGINT, &on_signal);
        std::signal(SIGTERM, &on_signal);
        std::thread signal_watcher{[&server] {
            char byte = 0;
            while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
            }
            server.request_drain();
        }};

        std::cout << "listening on " << server.endpoint().to_string()
                  << std::endl;  // flush: scripts scrape this line
        server.wait();

        // Unblock the watcher if shutdown came from a drain command.
        const char byte = 'q';
        [[maybe_unused]] const ssize_t n =
            ::write(g_signal_pipe[1], &byte, 1);
        signal_watcher.join();

        if (!quiet) {
            const auto snap = server.metrics().snapshot();
            const auto value = [&snap](const char* name) {
                const auto* c = snap.find_counter(name);
                return c != nullptr ? c->value() : 0;
            };
            std::cout << "drained: requests=" << value("serve/requests")
                      << " completed=" << value("serve/completed")
                      << " cache_hits=" << value("serve/cache/hits")
                      << " shed=" << value("serve/shed") << " rejected="
                      << value("serve/rejected/overloaded") +
                             value("serve/rejected/draining")
                      << "\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "mcps_serve: " << e.what() << "\n";
        return 1;
    }
}
