#!/usr/bin/env bash
# The full analysis gate, in one command:
#
#   1. warning-clean build:  MCPS_WERROR=ON (-Wconversion -Wshadow -Werror)
#   2. model linter:         mcps_analyze over shipped models + src/ scan
#                            + scenario registry-bypass scan (ICE1)
#   3. analysis/scenario:    per-rule seeded-defect fixtures + the
#                            scenario registry/spec suite
#   4. clang-tidy:           tools/run_tidy.sh (SKIPPED if not installed)
#   5. ASan+UBSan:           full test suite under address+undefined
#   6. TSan:                 ward-engine suite under thread sanitizer
#
#   tools/ci_analysis.sh [--fast] [--coverage]
#
# --fast runs stages 1-4 only (the sanitizer stages rebuild the tree
# twice and dominate wall time). --coverage appends a gcovr/llvm-cov
# line-coverage report (MCPS_COVERAGE=ON tree; SKIPPED if the report
# tool is not installed). Build trees are kept under build-ci-* so
# repeat runs are incremental.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
coverage=0
for arg in "$@"; do
    case "${arg}" in
        --fast) fast=1 ;;
        --coverage) coverage=1 ;;
        *) echo "usage: tools/ci_analysis.sh [--fast] [--coverage]" >&2
           exit 2 ;;
    esac
done

stage() { echo; echo "==== $* ===="; }

stage "1/6 warning-clean build (MCPS_WERROR=ON)"
cmake -S "${repo_root}" -B "${repo_root}/build-ci-werror" \
    -DCMAKE_BUILD_TYPE=Release -DMCPS_WERROR=ON >/dev/null
cmake --build "${repo_root}/build-ci-werror" -j "${jobs}" >/dev/null
echo "warning-clean: OK"

stage "2/6 model linter (mcps_analyze)"
"${repo_root}/build-ci-werror/tools/mcps_analyze" \
    --src-root "${repo_root}/src" \
    --scan-scenarios "${repo_root}/src" \
    --scan-scenarios "${repo_root}/bench" \
    --scan-scenarios "${repo_root}/tools" \
    --scan-scenarios "${repo_root}/examples" \
    --matrix

stage "3/6 analysis + scenario test labels"
ctest --test-dir "${repo_root}/build-ci-werror" -L "analysis|scenario" \
    --output-on-failure

stage "4/6 clang-tidy"
"${repo_root}/tools/run_tidy.sh" "${repo_root}/build-ci-werror"

run_coverage() {
    stage "coverage report (MCPS_COVERAGE=ON)"
    if ! command -v gcovr >/dev/null && ! command -v llvm-cov >/dev/null; then
        echo "coverage: SKIPPED (neither gcovr nor llvm-cov installed)"
        return 0
    fi
    cmake -S "${repo_root}" -B "${repo_root}/build-ci-cov" \
        -DCMAKE_BUILD_TYPE=Debug -DMCPS_COVERAGE=ON >/dev/null
    cmake --build "${repo_root}/build-ci-cov" -j "${jobs}" \
        --target mcps_tests >/dev/null
    LLVM_PROFILE_FILE="${repo_root}/build-ci-cov/profiles/%p.profraw" \
        "${repo_root}/build-ci-cov/tests/mcps_tests" \
        --gtest_brief=1
    cmake --build "${repo_root}/build-ci-cov" --target coverage
}

if [[ "${fast}" == "1" ]]; then
    [[ "${coverage}" == "1" ]] && run_coverage
    stage "done (--fast: sanitizer stages skipped)"
    exit 0
fi

stage "5/6 ASan+UBSan test suite"
cmake -S "${repo_root}" -B "${repo_root}/build-ci-asan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMCPS_SANITIZE="address;undefined" >/dev/null
cmake --build "${repo_root}/build-ci-asan" -j "${jobs}" >/dev/null
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "${repo_root}/build-ci-asan" --output-on-failure

stage "6/6 TSan ward suite"
cmake -S "${repo_root}" -B "${repo_root}/build-ci-tsan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMCPS_SANITIZE=thread >/dev/null
cmake --build "${repo_root}/build-ci-tsan" -j "${jobs}" \
    --target mcps_tests mcps_ward_cli >/dev/null
ctest --test-dir "${repo_root}/build-ci-tsan" \
    -L ward -R 'Ward|ward' --output-on-failure

[[ "${coverage}" == "1" ]] && run_coverage

stage "all analysis gates passed"
