#!/usr/bin/env bash
# The full analysis gate, in one command:
#
#   1. warning-clean build:  MCPS_WERROR=ON (-Wconversion -Wshadow -Werror)
#   2. model linter:         mcps_analyze over shipped models + src/ scan
#                            + scenario registry-bypass scan (ICE1)
#                            + CONC1 lock-discipline scan over src/tools
#                            + TA5 deadline slack table with the
#                            static-vs-observed cross-check, then a SARIF
#                            export validated by the built-in checker
#   3. analysis/scenario/kernel/serve/obs/hospital/pipeline: per-rule
#                            seeded-defect fixtures (incl. CONC1/TA5/
#                            SARIF + the CFG1 missing-root exit code),
#                            the scenario registry/spec suite, the
#                            calendar-queue/arena differential suite,
#                            the service suite (protocol fuzz, cache,
#                            admission, e2e), the shared-metrics stress
#                            suite, the hospital-population suite
#                            (SoA physio differential, jobs invariance,
#                            alarm storm, hospital fuzz smoke) and the
#                            pipeline suite (artifact cache, graph
#                            scheduling, cold/warm/parallel determinism,
#                            knob-edit invalidation, CLI drift guard)
#   4. clang-tidy:           tools/run_tidy.sh (SKIPPED if not installed)
#   5. bench smoke:          tools/bench_baseline.sh --quick and
#                            tools/bench_serve.sh --quick (validate the
#                            --json flows; numbers are not checked)
#   6. ASan+UBSan:           full test suite under address+undefined
#   7. TSan:                 ward-engine + kernel + serve + obs +
#                            hospital suites under thread sanitizer (the
#                            obs stress test is the dynamic complement
#                            of CONC1; the hospital suite drives the
#                            parallel-over-wards stepping)
#
#   tools/ci_analysis.sh [--fast] [--coverage]
#
# --fast runs stages 1-5 only (the sanitizer stages rebuild the tree
# twice and dominate wall time). --coverage appends a gcovr/llvm-cov
# line-coverage report (MCPS_COVERAGE=ON tree; SKIPPED if the report
# tool is not installed). Build trees are kept under build-ci-* so
# repeat runs are incremental.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
coverage=0
for arg in "$@"; do
    case "${arg}" in
        --fast) fast=1 ;;
        --coverage) coverage=1 ;;
        *) echo "usage: tools/ci_analysis.sh [--fast] [--coverage]" >&2
           exit 2 ;;
    esac
done

stage() { echo; echo "==== $* ===="; }

stage "1/7 warning-clean build (MCPS_WERROR=ON)"
cmake -S "${repo_root}" -B "${repo_root}/build-ci-werror" \
    -DCMAKE_BUILD_TYPE=Release -DMCPS_WERROR=ON >/dev/null
cmake --build "${repo_root}/build-ci-werror" -j "${jobs}" >/dev/null
echo "warning-clean: OK"

stage "2/7 model linter (mcps_analyze)"
"${repo_root}/build-ci-werror/tools/mcps_analyze" \
    --src-root "${repo_root}/src" \
    --scan-scenarios "${repo_root}/src" \
    --scan-scenarios "${repo_root}/bench" \
    --scan-scenarios "${repo_root}/tools" \
    --scan-scenarios "${repo_root}/examples" \
    --scan-conc "${repo_root}/src" \
    --scan-conc "${repo_root}/tools" \
    --cross-check --deadline-table \
    --sarif "${repo_root}/build-ci-werror/analysis.sarif" \
    --matrix
"${repo_root}/build-ci-werror/tools/mcps_analyze" \
    --check-sarif "${repo_root}/build-ci-werror/analysis.sarif"

stage "3/7 analysis + scenario + kernel + serve + obs + hospital + pipeline test labels"
ctest --test-dir "${repo_root}/build-ci-werror" \
    -L "analysis|scenario|kernel|serve|obs|hospital|pipeline" \
    --output-on-failure

stage "4/7 clang-tidy"
"${repo_root}/tools/run_tidy.sh" "${repo_root}/build-ci-werror"

stage "5/7 bench baseline smoke (--quick)"
"${repo_root}/tools/bench_baseline.sh" --quick \
    --out "${repo_root}/build-ci-werror/BENCH_smoke.json" >/dev/null
echo "bench baseline smoke: OK"
# Serve-layer smoke: an embedded server + load sweep over loopback TCP
# (uses the werror tree's binaries; validates the BENCH_7 --json flow).
"${repo_root}/build-ci-werror/tools/mcps_load" --embed --quick \
    --json "${repo_root}/build-ci-werror/BENCH_serve_smoke.json" >/dev/null
"${repo_root}/build-ci-werror/tools/mcps_trace" check-bench \
    "${repo_root}/build-ci-werror/BENCH_serve_smoke.json" >/dev/null
echo "serve load smoke: OK"
# Hospital-population smoke: the preset must run end-to-end on the
# mcps_run surface (96 patients / 4 wards, 2 simulated minutes).
"${repo_root}/build-ci-werror/tools/mcps_run" run \
    --spec "hospital-small minutes=2" >/dev/null
echo "hospital preset smoke: OK"
# Pipeline smoke: the unified driver's determinism gate (serial-cold vs
# parallel-cold vs warm-from-cache manifests) over a mixed graph, plus
# a bench-schema timing report validated by the built-in checker.
"${repo_root}/build-ci-werror/tools/mcps" pipeline \
    --spec "pca seed=42 minutes=2" --trace --analysis \
    --ward "seed=7 patients=4 shards=4" --jobs 4 --verify --quiet
"${repo_root}/build-ci-werror/tools/mcps" pipeline \
    --spec "pca seed=42 minutes=2" \
    --json "${repo_root}/build-ci-werror/BENCH_pipeline_smoke.json" \
    --quiet >/dev/null
"${repo_root}/build-ci-werror/tools/mcps_trace" check-bench \
    "${repo_root}/build-ci-werror/BENCH_pipeline_smoke.json" >/dev/null
echo "pipeline smoke: OK"

run_coverage() {
    stage "coverage report (MCPS_COVERAGE=ON)"
    if ! command -v gcovr >/dev/null && ! command -v llvm-cov >/dev/null; then
        echo "coverage: SKIPPED (neither gcovr nor llvm-cov installed)"
        return 0
    fi
    cmake -S "${repo_root}" -B "${repo_root}/build-ci-cov" \
        -DCMAKE_BUILD_TYPE=Debug -DMCPS_COVERAGE=ON >/dev/null
    cmake --build "${repo_root}/build-ci-cov" -j "${jobs}" \
        --target mcps_tests >/dev/null
    LLVM_PROFILE_FILE="${repo_root}/build-ci-cov/profiles/%p.profraw" \
        "${repo_root}/build-ci-cov/tests/mcps_tests" \
        --gtest_brief=1
    cmake --build "${repo_root}/build-ci-cov" --target coverage
}

if [[ "${fast}" == "1" ]]; then
    [[ "${coverage}" == "1" ]] && run_coverage
    stage "done (--fast: sanitizer stages skipped)"
    exit 0
fi

stage "6/7 ASan+UBSan test suite"
cmake -S "${repo_root}" -B "${repo_root}/build-ci-asan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMCPS_SANITIZE="address;undefined" >/dev/null
cmake --build "${repo_root}/build-ci-asan" -j "${jobs}" >/dev/null
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "${repo_root}/build-ci-asan" --output-on-failure

stage "7/7 TSan ward + kernel + serve + obs + hospital + pipeline suites"
cmake -S "${repo_root}" -B "${repo_root}/build-ci-tsan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMCPS_SANITIZE=thread >/dev/null
cmake --build "${repo_root}/build-ci-tsan" -j "${jobs}" \
    --target mcps_tests mcps_ward_cli mcps_kernel_tests \
    mcps_serve_tests mcps_obs_tests mcps_hospital_tests \
    mcps_pipeline_tests mcps mcps_run mcps_analyze \
    mcps_fuzz >/dev/null
ctest --test-dir "${repo_root}/build-ci-tsan" \
    -L ward -R 'Ward|ward' --output-on-failure
# The kernel is single-threaded by contract, but its tests still run
# under TSan so the non-atomic refcounts (SlabRef, MessageRef) are
# exercised with instrumentation: any future cross-thread use of a
# slab/pool shows up here as a data race, not as silent corruption.
ctest --test-dir "${repo_root}/build-ci-tsan" \
    -L kernel --output-on-failure
# The serve layer is the most thread-dense code in the repo (reader
# threads, worker pool, shared cache/metrics, drain handshake): the
# whole suite runs under TSan.
ctest --test-dir "${repo_root}/build-ci-tsan" \
    -L serve --output-on-failure
# SharedMetrics stress: the dynamic complement of the CONC1 lint —
# CONC1 proves every guarded field is lexically under its mutex, TSan
# proves the mutex actually covers the access patterns under load.
ctest --test-dir "${repo_root}/build-ci-tsan" \
    -L obs --output-on-failure
# Hospital population engine under TSan: the jobs-invariance tests step
# the same hospital with 1/4/16 ward workers and the SoA differential
# suite runs alongside — any cross-ward data race in the batched
# stepping or the mergeable-histogram reduction surfaces here.
ctest --test-dir "${repo_root}/build-ci-tsan" \
    -L hospital --output-on-failure
# Pipeline scheduler under TSan: the parallel runner's dependency
# counting, the shared ArtifactCache and the fan-out/join graphs all
# run instrumented — the dynamic complement of the CONC1 annotations on
# ArtifactCache::mu_ and ParallelRunner::mu_.
ctest --test-dir "${repo_root}/build-ci-tsan" \
    -L pipeline --output-on-failure

[[ "${coverage}" == "1" ]] && run_coverage

stage "all analysis gates passed"
