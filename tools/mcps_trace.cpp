/// \file mcps_trace.cpp
/// \brief Classic standalone binary for the structured-trace driver.
/// The implementation lives in tools/drivers/trace_driver.cpp, shared
/// with `mcps trace`.

#include "drivers.hpp"

int main(int argc, char** argv) {
    return mcps::drivers::trace_main("mcps_trace", {argv + 1, argv + argc});
}
