/// \file cli.hpp
/// \brief Shared argv parsing for the mcps_* command-line tools.
///
/// mcps_trace, mcps_fuzz, mcps_ward and mcps_run each carried their own
/// copy of the same flag-value plumbing; this header is the single one.
/// Header-only so the tools stay single-translation-unit, and included
/// by the scenario test suite so the error messages are unit-tested.
///
/// Error contract (exact strings, asserted by tests/scenario):
///   "<flag>: expected an integer, got '<v>'"
///   "<flag>: expected a number, got '<v>'"
///   "<flag>: empty entry in '<v>'"
///   "<flag>: missing value"

#pragma once

#include <charconv>
#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mcps::cli {

/// A user-facing usage error; main() catches it, prints the message to
/// stderr and exits 2.
struct CliError {
    std::string message;
};

/// The shared driver error contract, factored out of the tools' main()
/// functions (each carried its own copy of the same catch ladder).
/// Exact behavior, asserted by the drift-guard test:
///
///   CliError        -> "<prog>: <message>" on stderr, usage(stderr), 2
///   std::exception  -> "<prog>: <what()>"  on stderr,               2
///   otherwise       -> body's return value
///
/// \p prog is the invocation name ("mcps_run" or "mcps run"), \p usage
/// any callable taking the stream to print usage to.
template <typename Usage, typename Body>
int tool_main(std::string_view prog, Usage&& usage, Body&& body) {
    try {
        return body();
    } catch (const CliError& e) {
        std::cerr << prog << ": " << e.message << "\n";
        usage(std::cerr);
        return 2;
    } catch (const std::exception& e) {
        std::cerr << prog << ": " << e.what() << "\n";
        return 2;
    }
}

/// Strict base-10 unsigned parse of a flag value.
inline std::uint64_t parse_u64(std::string_view flag, std::string_view v) {
    std::uint64_t out = 0;
    const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || p != v.data() + v.size()) {
        throw CliError{std::string{flag} + ": expected an integer, got '" +
                       std::string{v} + "'"};
    }
    return out;
}

/// Strict decimal parse of a flag value (whole token must be consumed).
inline double parse_double(std::string_view flag, std::string_view v) {
    try {
        std::size_t used = 0;
        const double out = std::stod(std::string{v}, &used);
        if (used != v.size()) throw std::invalid_argument{""};
        return out;
    } catch (const std::exception&) {
        throw CliError{std::string{flag} + ": expected a number, got '" +
                       std::string{v} + "'"};
    }
}

/// Comma-separated unsigned list ("1,4,8"). Rejects empty entries;
/// callers enforce their own minimum-length policy.
inline std::vector<unsigned> parse_unsigned_list(std::string_view flag,
                                                 std::string_view v) {
    std::vector<unsigned> out;
    std::size_t start = 0;
    while (start <= v.size()) {
        const std::size_t comma = v.find(',', start);
        const std::string_view item = v.substr(
            start, comma == std::string_view::npos ? std::string_view::npos
                                                   : comma - start);
        if (item.empty()) {
            throw CliError{std::string{flag} + ": empty entry in '" +
                           std::string{v} + "'"};
        }
        out.push_back(static_cast<unsigned>(parse_u64(flag, item)));
        if (comma == std::string_view::npos) break;
        start = comma + 1;
    }
    return out;
}

/// Forward cursor over argv (or any token list, for tests). The usual
/// tool loop is:
///
///   mcps::cli::Args args{argc, argv};
///   while (!args.done()) {
///       const auto arg = args.next();
///       if (arg == "--seed") seed = parse_u64(arg, args.value(arg));
///       else throw CliError{"unknown option '" + std::string{arg} + "'"};
///   }
class Args {
public:
    Args(int argc, char** argv) : items_{argv + 1, argv + argc} {}
    explicit Args(std::vector<std::string_view> items)
        : items_{std::move(items)} {}

    [[nodiscard]] bool done() const { return i_ >= items_.size(); }
    [[nodiscard]] std::size_t remaining() const { return items_.size() - i_; }

    /// Current token; advances. Precondition: !done().
    std::string_view next() { return items_[i_++]; }

    /// Consume the next token as \p flag's value.
    /// \throws CliError "<flag>: missing value" at end of argv.
    ///
    /// GCC 12 -O2 speculates the subscript past the bounds guard when
    /// the caller's token vector has a compile-time-constant size (the
    /// unit tests), yielding a false -Warray-bounds.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
    std::string_view value(std::string_view flag) {
        if (i_ < items_.size()) return items_[i_++];
        throw CliError{std::string{flag} + ": missing value"};
    }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

    /// Everything not yet consumed (for subcommand dispatch).
    [[nodiscard]] std::vector<std::string_view> rest() const {
        return {items_.begin() + static_cast<std::ptrdiff_t>(i_),
                items_.end()};
    }

private:
    std::vector<std::string_view> items_;
    std::size_t i_ = 0;
};

}  // namespace mcps::cli
