/// \file mcps.cpp
/// \brief The unified mcps entry point: one binary, every driver.
///
///   mcps run       scenario registry (list/describe/run/selfcheck)
///   mcps trace     structured traces (run/inspect/diff/check/check-bench)
///   mcps ward      ward-scale parallel campaigns
///   mcps fuzz      scenario fuzzer (fuzz/replay/hospital)
///   mcps analyze   model-level safety linter
///   mcps pipeline  composable pass pipeline over cached artifacts
///
/// Each subcommand dispatches to the same driver the classic single-tool
/// binary (mcps_run, mcps_trace, ...) wraps, so `mcps run ...` and
/// `mcps_run ...` produce byte-identical stdout and exit codes (the
/// drift-guard test pins that). Exit code 2 = unknown command.

#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "drivers.hpp"

namespace {

void usage(std::ostream& os) {
    os << "usage: mcps <command> [options]\n"
          "  run        scenario registry: list, describe, run, selfcheck\n"
          "  trace      structured traces: run, inspect, diff, check,\n"
          "             check-bench\n"
          "  ward       ward-scale parallel campaign engine\n"
          "  fuzz       scenario fuzzer: fuzz, replay, hospital modes\n"
          "  analyze    model-level safety linter\n"
          "  pipeline   composable pass pipeline over cached artifacts\n"
          "\n"
          "`mcps <command> --help` shows the command's options. Each\n"
          "command is also available as a classic standalone binary\n"
          "(mcps_run, mcps_trace, mcps_ward, mcps_fuzz, mcps_analyze)\n"
          "with identical behavior.\n";
}

}  // namespace

int main(int argc, char** argv) {
    const std::vector<std::string_view> args{argv + 1, argv + argc};
    if (args.empty() || args[0] == "--help" || args[0] == "-h") {
        usage(std::cout);
        return args.empty() ? 2 : 0;
    }
    const std::string_view cmd = args[0];
    const std::vector<std::string_view> rest{args.begin() + 1, args.end()};
    const std::string prog = "mcps " + std::string{cmd};

    if (cmd == "run") return mcps::drivers::run_main(prog, rest);
    if (cmd == "trace") return mcps::drivers::trace_main(prog, rest);
    if (cmd == "ward") return mcps::drivers::ward_main(prog, rest);
    if (cmd == "fuzz") return mcps::drivers::fuzz_main(prog, rest);
    if (cmd == "analyze") return mcps::drivers::analyze_main(prog, rest);
    if (cmd == "pipeline") return mcps::drivers::pipeline_main(prog, rest);

    std::cerr << "mcps: unknown command '" << cmd << "'\n";
    usage(std::cerr);
    return 2;
}
