#!/usr/bin/env bash
# Run clang-tidy (profile: /.clang-tidy) over the first-party sources
# using the compile database exported by CMake.
#
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args...]
#
# The build dir must have been configured already (any options); the
# top-level CMakeLists.txt always exports compile_commands.json.
#
# clang-tidy is an OPTIONAL dependency: the toolchain image ships GCC
# only, so when clang-tidy is absent this script reports SKIPPED and
# exits 0 — CI treats the gate as advisory where the tool is missing
# rather than failing the pipeline on environment differences.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true
[[ "${1:-}" == "--" ]] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_tidy: SKIPPED (clang-tidy not installed on this machine)"
    exit 0
fi

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
    echo "run_tidy: no compile database at ${db}" >&2
    echo "run_tidy: configure first: cmake -B ${build_dir} ${repo_root}" >&2
    exit 2
fi

# First-party translation units only (no gtest/benchmark internals).
mapfile -t files < <(find "${repo_root}/src" "${repo_root}/tools" \
    "${repo_root}/bench" "${repo_root}/examples" \
    -name '*.cpp' | sort)

echo "run_tidy: $(clang-tidy --version | head -n1)"
echo "run_tidy: ${#files[@]} translation units"

runner="$(command -v run-clang-tidy || true)"
if [[ -n "${runner}" ]]; then
    "${runner}" -quiet -p "${build_dir}" "$@" "${files[@]}"
else
    clang-tidy -quiet -p "${build_dir}" "$@" "${files[@]}"
fi
echo "run_tidy: clean"
