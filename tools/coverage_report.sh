#!/usr/bin/env bash
# Line-coverage summary from raw gcov (fallback when gcovr is not
# installed). Walks every .gcda in the build tree, asks gcov for the
# per-file "Lines executed" summary, and aggregates the files under the
# repository's src/ directory (first occurrence wins when a source is
# compiled into several targets).
#
#   tools/coverage_report.sh <build-dir> <repo-root>
set -euo pipefail

build="${1:?usage: coverage_report.sh <build-dir> <repo-root>}"
repo_root="${2:?usage: coverage_report.sh <build-dir> <repo-root>}"

gcda_files="$(find "${build}" -name '*.gcda' 2>/dev/null || true)"
if [[ -z "${gcda_files}" ]]; then
    echo "coverage_report: no .gcda files under ${build};" \
         "build with -DMCPS_COVERAGE=ON and run the tests first" >&2
    exit 1
fi

# gcov prints, per source file:
#   File '<path>'
#   Lines executed:<pct>% of <n>
echo "${gcda_files}" | sort | xargs gcov -n 2>/dev/null |
awk -v src_prefix="${repo_root}/src/" '
    /^File / {
        file = $0
        sub(/^File '\''?/, "", file)
        sub(/'\''$/, "", file)
        keep = index(file, src_prefix) == 1 && !(file in seen)
        if (keep) seen[file] = 1
    }
    /^Lines executed:/ && keep {
        line = $0
        sub(/^Lines executed:/, "", line)
        split(line, parts, "% of ")
        pct = parts[1] + 0
        n = parts[2] + 0
        shown = file
        sub(src_prefix, "src/", shown)
        printf "%7.2f%% %6d  %s\n", pct, n, shown
        total_lines += n
        total_hit += pct / 100.0 * n
        keep = 0
    }
    END {
        if (total_lines == 0) {
            print "coverage_report: no src/ files in gcov output" > "/dev/stderr"
            exit 1
        }
        printf "%7.2f%% %6d  TOTAL (line coverage over src/)\n",
               100.0 * total_hit / total_lines, total_lines
    }'
