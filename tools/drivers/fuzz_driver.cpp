/// \file fuzz_driver.cpp
/// \brief Scenario fuzzer driver: fuzz, replay, and self-check modes
/// (see drivers.hpp).
///
/// Exit codes: 0 = success (no violations, or — with --expect-violation —
/// violations found, shrunk, and replayed byte-identically), 1 = the run
/// did not meet its expectation, 2 = usage or I/O error.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "../cli.hpp"
#include "../drivers.hpp"
#include "testkit/testkit.hpp"
#include "ward/fuzz_driver.hpp"
#include "ward/hospital_fuzz.hpp"

namespace tk = mcps::testkit;
using mcps::cli::CliError;
using mcps::cli::parse_double;
using mcps::cli::parse_u64;

namespace {

void usage(std::ostream& os, std::string_view prog) {
    os << "usage: " << prog
       << " [options]\n"
          "  --scenarios N        scenarios to run (default 200)\n"
          "  --seed N             master seed (default 42)\n"
          "  --intensity X        fault-plan intensity scale (default 1.0)\n"
          "  --jobs N             run scenarios over N ward workers; the\n"
          "                       outcome is identical to --jobs 1\n"
          "  --xray-fraction X    fraction of x-ray workloads (default 0.15)\n"
          "  --weakened           fuzz the weakened-interlock fixture\n"
          "  --hospital           fuzz the hospital family instead: random\n"
          "                       cohorts/knobs over the claimed-safe\n"
          "                       envelope (with --expect-violation:\n"
          "                       interlock-off storm hazards that must\n"
          "                       violate and replay byte-identically)\n"
          "  --expect-violation   succeed only if a violation is found,\n"
          "                       replays byte-identically, and shrinks to\n"
          "                       a small fault plan\n"
          "  --replay FILE        replay one repro file and report\n"
          "  --repro-dir DIR      write repro files here (default: repros)\n"
          "  --no-shrink          keep failing fault plans unshrunk\n"
          "  --quiet              suppress per-failure progress output\n"
          "  --help               this text\n";
}

int replay_mode(const std::string& path) {
    const auto checker = tk::InvariantChecker::with_defaults();
    const tk::Repro repro = tk::load_repro(path);
    const auto result = tk::replay(repro, checker);
    std::cout << "repro: " << path << "\n"
              << "  workload:   " << tk::to_string(repro.kind)
              << (repro.weakened ? " (weakened fixture)" : "") << "\n"
              << "  seed/index: " << repro.seed << "/" << repro.index << "\n"
              << "  faults:     " << repro.faults.size() << "\n";
    char fp[32];
    std::snprintf(fp, sizeof fp, "0x%016llx",
                  static_cast<unsigned long long>(result.fingerprint));
    std::cout << "  fingerprint " << fp << " ("
              << (result.byte_identical ? "byte-identical" : "MISMATCH")
              << ")\n";
    for (const auto& v : result.violations) {
        std::cout << "  violation: " << v.invariant << " @" << v.at_s
                  << "s: " << v.detail << "\n";
    }
    if (result.violations.empty()) {
        std::cout << "  no invariant violations reproduced\n";
        return 1;
    }
    return result.byte_identical ? 0 : 1;
}

int hospital_replay_mode(const std::string& path) {
    const auto r = mcps::ward::replay_hospital_repro(path);
    char fp[32];
    std::snprintf(fp, sizeof fp, "0x%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    std::cout << "repro: " << path << "\n"
              << "  workload:   hospital\n"
              << "  spec:       " << r.spec.to_text() << "\n"
              << "  invariant:  " << r.invariant << "\n"
              << "  fingerprint " << fp << " ("
              << (r.byte_identical ? "byte-identical" : "MISMATCH") << ")\n"
              << "  deadline_violations: "
              << static_cast<std::uint64_t>(r.deadline_violations) << "\n";
    return r.byte_identical ? 0 : 1;
}

int hospital_mode(const mcps::ward::HospitalFuzzOptions& opts,
                  bool expect_violation) {
    const auto outcome = mcps::ward::run_hospital_fuzz(opts);
    std::cout << "fuzz: " << outcome.scenarios_run
              << " hospital scenarios, seed " << opts.seed << ", "
              << outcome.violating_specs << " violating, "
              << outcome.failures.size() << " invariant failures\n";

    if (!expect_violation) {
        if (!outcome.clean()) {
            std::cout << "FAIL: invariant failures inside the claimed-safe "
                         "envelope (repro files above replay them)\n";
            return 1;
        }
        std::cout << "OK: no invariant violations\n";
        return 0;
    }
    if (outcome.violating_specs == 0) {
        std::cout << "FAIL: expected interlock-off storm hazards to "
                     "violate the deadline, none did\n";
        return 1;
    }
    if (!outcome.clean()) {
        std::cout << "FAIL: a hazard repro did not replay "
                     "byte-identically\n";
        return 1;
    }
    std::cout << "OK: violations found and repro files replayed "
                 "byte-identically\n";
    return 0;
}

}  // namespace

namespace mcps::drivers {

int fuzz_main(std::string_view prog,
              const std::vector<std::string_view>& argv) {
    tk::FuzzOptions opts;
    opts.repro_dir = "repros";
    unsigned jobs = 1;
    bool expect_violation = false;
    bool hospital = false;
    bool quiet = false;
    std::string replay_path;

    return cli::tool_main(
        prog, [&](std::ostream& os) { usage(os, prog); },
        [&]() -> int {
        cli::Args args{argv};
        while (!args.done()) {
            const auto arg = args.next();
            const auto value = [&] { return args.value(arg); };
            if (arg == "--scenarios") {
                opts.scenarios = parse_u64(arg, value());
            } else if (arg == "--seed") {
                opts.seed = parse_u64(arg, value());
            } else if (arg == "--intensity") {
                opts.fault_intensity = parse_double(arg, value());
            } else if (arg == "--jobs") {
                jobs = static_cast<unsigned>(parse_u64(arg, value()));
            } else if (arg == "--xray-fraction") {
                opts.xray_fraction = parse_double(arg, value());
            } else if (arg == "--weakened") {
                opts.weakened = true;
            } else if (arg == "--hospital") {
                hospital = true;
            } else if (arg == "--expect-violation") {
                expect_violation = true;
            } else if (arg == "--replay") {
                replay_path = std::string{value()};
            } else if (arg == "--repro-dir") {
                opts.repro_dir = std::string{value()};
            } else if (arg == "--no-shrink") {
                opts.shrink = false;
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                usage(std::cout, prog);
                return 0;
            } else {
                throw CliError{"unknown option '" + std::string{arg} + "'"};
            }
        }

        if (!replay_path.empty()) {
            return hospital ? hospital_replay_mode(replay_path)
                            : replay_mode(replay_path);
        }

        if (hospital) {
            mcps::ward::HospitalFuzzOptions hopts;
            hopts.scenarios = opts.scenarios;
            hopts.seed = opts.seed;
            hopts.hazard = expect_violation;
            hopts.repro_dir = opts.repro_dir;
            if (!quiet) {
                hopts.log = [](const std::string& line) {
                    std::cout << line << "\n";
                };
            }
            if (!hopts.repro_dir.empty()) {
                std::filesystem::create_directories(hopts.repro_dir);
            }
            return hospital_mode(hopts, expect_violation);
        }

        if (!opts.repro_dir.empty()) {
            std::filesystem::create_directories(opts.repro_dir);
        }
        if (!quiet) {
            opts.log = [](const std::string& line) {
                std::cout << line << "\n";
            };
        }

        const auto outcome = mcps::ward::run_fuzz(opts, jobs);
        std::cout << "fuzz: " << outcome.scenarios_run << " scenarios ("
                  << outcome.pca_runs << " pca, " << outcome.xray_runs
                  << " xray), seed " << opts.seed << ", "
                  << outcome.failures.size() << " violating\n";

        if (!expect_violation) {
            if (!outcome.clean()) {
                std::cout << "FAIL: invariant violations found (repro files "
                             "above replay them)\n";
                return 1;
            }
            std::cout << "OK: no invariant violations\n";
            return 0;
        }

        // Self-check mode: the weakened fixture must fail, replay
        // byte-identically, and shrink to a handful of fault events.
        if (outcome.clean()) {
            std::cout << "FAIL: expected an invariant violation, found none\n";
            return 1;
        }
        for (const auto& f : outcome.failures) {
            if (!f.replay_byte_identical) {
                std::cout << "FAIL: repro for scenario " << f.repro.index
                          << " did not replay byte-identically\n";
                return 1;
            }
            if (opts.shrink && f.repro.faults.size() > 5) {
                std::cout << "FAIL: scenario " << f.repro.index
                          << " shrank only to " << f.repro.faults.size()
                          << " fault events (want <= 5)\n";
                return 1;
            }
        }
        std::cout << "OK: violations found, shrunk, and replayed "
                     "byte-identically\n";
        return 0;
        });
}

}  // namespace mcps::drivers
