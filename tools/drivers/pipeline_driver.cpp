/// \file pipeline_driver.cpp
/// \brief The composable pipeline driver: build a pass graph from
/// flags, run it over cached artifacts, export everything (see
/// drivers.hpp and src/pipeline/pipeline.hpp).
///
/// The graph is assembled from repeatable stage flags: each --spec /
/// --preset adds a scenario-run pass (--trace chains a Chrome-trace
/// export pass onto each), --analysis adds the model-level analysis
/// passes and their merge, each --ward adds a ward-campaign pass (plus
/// one merge pass over all campaigns). Passes with satisfied inputs run
/// in parallel under --jobs; --cache makes re-runs incremental (only
/// passes downstream of a changed input re-execute, shown by the
/// hit/miss counters).
///
/// `--verify` is the determinism gate: the same graph is run
/// serial-cold, parallel-cold and serial-warm (replayed from the cold
/// run's cache), and the three artifact manifests must be
/// byte-identical.
///
/// Exit codes: 0 = success, 1 = --verify manifest mismatch,
/// 2 = usage or I/O error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "../cli.hpp"
#include "../drivers.hpp"
#include "obs/obs.hpp"
#include "pipeline/pipeline.hpp"
#include "scenario/scenario.hpp"

namespace pipeline = mcps::pipeline;
namespace scenario = mcps::scenario;
using mcps::cli::CliError;
using mcps::cli::parse_u64;

namespace {

void usage(std::ostream& os, std::string_view prog) {
    os << "usage: " << prog
       << " [options]\n"
          "  --spec 'NAME [seed=N] [minutes=M] [key=value]...'\n"
          "                     add a scenario-run pass (repeatable)\n"
          "  --preset NAME      add a scenario-run pass from the\n"
          "                     registry default spec (repeatable)\n"
          "  --trace            chain a Chrome-trace export pass onto\n"
          "                     every scenario-run pass\n"
          "  --analysis         add the model-level analysis passes\n"
          "                     (shipped models/assemblies, hazards,\n"
          "                     deadlines) and their merge pass\n"
          "  --ward 'seed=N patients=N jobs=N shards=N mix=SPEC\n"
          "          intensity=X'\n"
          "                     add a ward-campaign pass (repeatable;\n"
          "                     any subset of keys; one merge pass\n"
          "                     covers all campaigns)\n"
          "  --jobs N           worker threads for independent passes\n"
          "                     (default 1 = serial topological order)\n"
          "  --cache PATH       artifact-cache snapshot: loaded before\n"
          "                     the run if present, saved after\n"
          "  --out-dir DIR      write every artifact under DIR (artifact\n"
          "                     names become relative paths) plus a\n"
          "                     MANIFEST file\n"
          "  --json PATH        write a bench-schema timing report\n"
          "                     (per-pass wall_us + cache traffic)\n"
          "  --verify           run serial-cold, parallel-cold and\n"
          "                     serial-warm; require byte-identical\n"
          "                     artifact manifests (exit 1 on mismatch)\n"
          "  --list             print the topological pass order, run\n"
          "                     nothing\n"
          "  --manifest         print the artifact manifest to stdout\n"
          "  --quiet            suppress the pass summary\n"
          "  --help             this text\n";
}

struct PipelineCli {
    std::vector<std::string> specs;
    std::vector<std::string> presets;
    std::vector<std::string> wards;
    bool trace = false;
    bool analysis = false;
    unsigned jobs = 1;
    std::string cache_path;
    std::string out_dir;
    std::string json_path;
    bool verify = false;
    bool list = false;
    bool manifest = false;
    bool quiet = false;
};

/// Scenario pass ids default to the scenario name; duplicates get a
/// positional suffix so `--preset pca --preset pca` stays legal.
std::string unique_id(std::vector<std::string>& taken,
                      const std::string& base) {
    std::string id = base;
    for (std::size_t n = 2;; ++n) {
        bool clash = false;
        for (const auto& t : taken) {
            if (t == id) {
                clash = true;
                break;
            }
        }
        if (!clash) break;
        id = base + "-" + std::to_string(n);
    }
    taken.push_back(id);
    return id;
}

pipeline::PipelineGraph build_graph(const PipelineCli& cli) {
    pipeline::PipelineGraph g;
    std::vector<std::string> scenario_ids;

    for (const std::string& text : cli.specs) {
        const scenario::ScenarioSpec spec = scenario::parse_spec(text);
        pipeline::add_scenario_pass(
            g, unique_id(scenario_ids, spec.name), spec);
    }
    for (const std::string& name : cli.presets) {
        const scenario::ScenarioSpec spec =
            scenario::registry().default_spec(name);
        pipeline::add_scenario_pass(
            g, unique_id(scenario_ids, spec.name), spec);
    }
    if (cli.trace) {
        for (const std::string& id : scenario_ids) {
            pipeline::add_trace_export_pass(g, id);
        }
    }
    if (cli.analysis) {
        // The scan stages are deliberately absent here: they read the
        // working tree, so their output depends on the invocation
        // directory. The analyze driver stays the scan surface.
        pipeline::add_analysis_passes(g, pipeline::AnalysisPassOptions{});
    }
    std::vector<std::string> ward_ids;
    for (std::size_t i = 0; i < cli.wards.size(); ++i) {
        const std::string id = "w" + std::to_string(i + 1);
        ward_ids.push_back(id);
        pipeline::add_ward_pass(g, id,
                                pipeline::parse_ward_config(cli.wards[i]));
    }
    if (!ward_ids.empty()) pipeline::add_ward_merge_pass(g, ward_ids);

    if (g.pass_count() == 0) {
        throw CliError{
            "nothing to do: add --spec/--preset/--analysis/--ward"};
    }
    return g;
}

void write_artifacts(const pipeline::PipelineResult& result,
                     const std::string& out_dir, bool quiet) {
    const std::filesystem::path root{out_dir};
    for (const auto& [name, art] : result.artifacts) {
        const std::filesystem::path path = root / name;
        std::filesystem::create_directories(path.parent_path());
        std::ofstream out{path, std::ios::binary};
        if (!out) {
            throw CliError{"--out-dir: cannot open '" + path.string() + "'"};
        }
        out << art.payload;
    }
    {
        std::ofstream out{root / "MANIFEST", std::ios::binary};
        if (!out) {
            throw CliError{"--out-dir: cannot open '" +
                           (root / "MANIFEST").string() + "'"};
        }
        out << result.manifest();
    }
    if (!quiet) {
        std::cout << "artifacts: " << out_dir << " ("
                  << result.artifacts.size() << " files + MANIFEST)\n";
    }
}

void write_bench_json(const pipeline::PipelineResult& result, unsigned jobs,
                      const std::string& path, bool quiet) {
    std::ofstream out{path, std::ios::binary};
    if (!out) throw CliError{"--json: cannot open '" + path + "'"};

    bool first = true;
    auto metric = [&](const std::string& name, const char* unit,
                      double value) {
        out << (first ? "\n" : ",\n") << "    {\"name\": \"" << name
            << "\", \"unit\": \"" << unit << "\", \"value\": " << value
            << "}";
        first = false;
    };

    out << "{\n  \"bench\": \"pipeline\",\n  \"seed\": 0,\n"
           "  \"metrics\": [";
    metric("passes", "count", static_cast<double>(result.passes.size()));
    metric("jobs", "count", static_cast<double>(jobs));
    metric("cache_hits", "count", static_cast<double>(result.cache_hits));
    metric("cache_misses", "count",
           static_cast<double>(result.cache_misses));
    double total_us = 0.0;
    for (const auto& p : result.passes) total_us += p.wall_us;
    metric("wall_total", "us", total_us);
    for (const auto& p : result.passes) {
        metric("pass/" + p.name + "/wall", "us", p.wall_us);
        metric("pass/" + p.name + "/cached", "bool",
               p.from_cache ? 1.0 : 0.0);
    }
    out << "\n  ]\n}\n";
    if (!quiet) std::cout << "bench json: " << path << "\n";
}

void print_summary(const pipeline::PipelineResult& result, unsigned jobs) {
    std::size_t cached = 0;
    for (const auto& p : result.passes) cached += p.from_cache ? 1 : 0;
    std::cout << "pipeline: " << result.passes.size() << " passes ("
              << (result.passes.size() - cached) << " ran, " << cached
              << " cached), " << result.cache_hits << " hits, "
              << result.cache_misses << " misses, jobs " << jobs << "\n";
    for (const auto& p : result.passes) {
        std::cout << "  " << p.name << "  "
                  << (p.from_cache ? "cached" : "ran") << "  " << p.wall_us
                  << " us\n";
    }
    std::cout << "manifest digest: " << pipeline::hex64(result.digest())
              << "\n";
}

/// The determinism gate: serial-cold, parallel-cold and serial-warm runs
/// of the same graph must produce byte-identical artifact manifests, and
/// the warm run must replay every cacheable pass.
int cmd_verify(const pipeline::PipelineGraph& g, unsigned jobs, bool quiet) {
    pipeline::ArtifactCache cache;

    pipeline::PipelineOptions serial_cold;
    serial_cold.jobs = 1;
    serial_cold.cache = &cache;
    const auto a = g.run(serial_cold);

    pipeline::ArtifactCache parallel_cache;
    pipeline::PipelineOptions parallel_cold;
    parallel_cold.jobs = jobs > 1 ? jobs : 4;
    parallel_cold.cache = &parallel_cache;
    const auto b = g.run(parallel_cold);

    pipeline::PipelineOptions warm;
    warm.jobs = 1;
    warm.cache = &cache;
    const auto c = g.run(warm);

    if (!quiet) {
        std::cout << "serial-cold:   " << pipeline::hex64(a.digest()) << "\n"
                  << "parallel-cold: " << pipeline::hex64(b.digest())
                  << " (jobs " << parallel_cold.jobs << ")\n"
                  << "serial-warm:   " << pipeline::hex64(c.digest()) << " ("
                  << c.cache_hits << " hits)\n";
    }
    if (a.manifest() != b.manifest() || a.manifest() != c.manifest()) {
        std::cout << "FAIL: artifact manifests diverge across "
                     "serial/parallel/warm runs\n";
        return 1;
    }
    if (c.cache_misses != 0) {
        std::cout << "FAIL: warm run re-executed " << c.cache_misses
                  << " cacheable outputs\n";
        return 1;
    }
    std::cout << "OK: " << a.passes.size()
              << " passes byte-identical across serial-cold, parallel-cold"
                 " and warm runs\n";
    return 0;
}

}  // namespace

namespace mcps::drivers {

int pipeline_main(std::string_view prog,
                  const std::vector<std::string_view>& argv) {
    PipelineCli cli;

    return mcps::cli::tool_main(
        prog, [&](std::ostream& os) { usage(os, prog); },
        [&]() -> int {
        mcps::cli::Args args{argv};
        while (!args.done()) {
            const auto arg = args.next();
            const auto value = [&] { return args.value(arg); };
            if (arg == "--spec") {
                cli.specs.emplace_back(value());
            } else if (arg == "--preset") {
                cli.presets.emplace_back(value());
            } else if (arg == "--ward") {
                cli.wards.emplace_back(value());
            } else if (arg == "--trace") {
                cli.trace = true;
            } else if (arg == "--analysis") {
                cli.analysis = true;
            } else if (arg == "--jobs") {
                cli.jobs = static_cast<unsigned>(parse_u64(arg, value()));
            } else if (arg == "--cache") {
                cli.cache_path = std::string{value()};
            } else if (arg == "--out-dir") {
                cli.out_dir = std::string{value()};
            } else if (arg == "--json") {
                cli.json_path = std::string{value()};
            } else if (arg == "--verify") {
                cli.verify = true;
            } else if (arg == "--list") {
                cli.list = true;
            } else if (arg == "--manifest") {
                cli.manifest = true;
            } else if (arg == "--quiet") {
                cli.quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                usage(std::cout, prog);
                return 0;
            } else {
                throw CliError{"unknown option '" + std::string{arg} + "'"};
            }
        }

        const pipeline::PipelineGraph g = build_graph(cli);

        if (cli.list) {
            for (const std::string& name : g.topo_order()) {
                std::cout << name << "\n";
            }
            return 0;
        }
        if (cli.verify) return cmd_verify(g, cli.jobs, cli.quiet);

        pipeline::ArtifactCache cache;
        if (!cli.cache_path.empty()) {
            const std::size_t loaded = cache.load(cli.cache_path);
            if (!cli.quiet) {
                std::cout << "cache: " << cli.cache_path << " (" << loaded
                          << " entries loaded)\n";
            }
        }

        mcps::obs::MetricsRegistry metrics;
        pipeline::PipelineOptions opts;
        opts.jobs = cli.jobs;
        opts.cache = &cache;
        opts.metrics = &metrics;
        const pipeline::PipelineResult result = g.run(opts);

        if (!cli.cache_path.empty() && !cache.save(cli.cache_path)) {
            throw CliError{"--cache: cannot write '" + cli.cache_path + "'"};
        }
        if (!cli.out_dir.empty()) {
            write_artifacts(result, cli.out_dir, cli.quiet);
        }
        if (!cli.json_path.empty()) {
            write_bench_json(result, cli.jobs, cli.json_path, cli.quiet);
        }
        if (!cli.quiet) print_summary(result, cli.jobs);
        if (cli.manifest) std::cout << result.manifest();
        return 0;
        });
}

}  // namespace mcps::drivers
