/// \file ward_driver.cpp
/// \brief Ward campaign driver (see drivers.hpp).
///
/// Runs N patient scenarios over a work-stealing pool and prints (or
/// emits as JSON) the ward-level aggregate report. `--verify-serial`
/// re-runs the campaign single-threaded and requires the deterministic
/// ward fingerprint to match — the engine's core promise.
///
/// Exit codes: 0 = success, 1 = --verify-serial fingerprint mismatch,
/// 2 = usage or I/O error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "../cli.hpp"
#include "../drivers.hpp"
#include "obs/obs.hpp"
#include "ward/ward.hpp"

namespace ward = mcps::ward;
using mcps::cli::CliError;
using mcps::cli::parse_double;
using mcps::cli::parse_u64;

namespace {

void usage(std::ostream& os, std::string_view prog) {
    os << "usage: " << prog
       << " [options]\n"
          "  --patients N       scenarios to run (default 64)\n"
          "  --jobs N           worker threads (default 1)\n"
          "  --shards N         reduction shards (default 64; fixes the\n"
          "                     merge order, so keep it constant when\n"
          "                     comparing runs)\n"
          "  --mix SPEC         workload weights, e.g. pca=0.7,xray=0.15,\n"
          "                     ward=0.15 (normalized; default shown;\n"
          "                     hospital=X embeds smoke-sized\n"
          "                     hospital-small population runs)\n"
          "  --seed N           master seed (default 42)\n"
          "  --intensity X      fault-plan intensity for PCA-family\n"
          "                     scenarios (default 0 = no injected faults)\n"
          "  --json PATH        write the machine-readable report to PATH\n"
          "  --events-out PATH  write the campaign's merged structured\n"
          "                     event log as JSONL to PATH\n"
          "  --metrics-out PATH write the campaign's metrics registry as\n"
          "                     JSON to PATH\n"
          "  --verify-serial    also run with jobs=1 and require an\n"
          "                     identical ward fingerprint\n"
          "  --verify-obs-jobs LIST\n"
          "                     run the campaign once per job count in the\n"
          "                     comma-separated LIST (e.g. 1,4,8) and\n"
          "                     require bit-identical event logs, metrics\n"
          "                     and report fingerprints across all of them\n"
          "  --quiet            suppress the report tables\n"
          "  --help             this text\n";
}

std::vector<unsigned> parse_jobs_list(std::string_view flag,
                                      std::string_view v) {
    std::vector<unsigned> jobs = mcps::cli::parse_unsigned_list(flag, v);
    if (jobs.size() < 2) {
        throw CliError{std::string{flag} +
                       ": need at least two job counts to compare"};
    }
    return jobs;
}

}  // namespace

namespace mcps::drivers {

int ward_main(std::string_view prog,
              const std::vector<std::string_view>& argv) {
    ward::WardConfig cfg;
    bool verify_serial = false;
    bool quiet = false;
    std::string json_path;
    std::string events_path;
    std::string metrics_path;
    std::vector<unsigned> verify_obs_jobs;

    return cli::tool_main(
        prog, [&](std::ostream& os) { usage(os, prog); },
        [&]() -> int {
        cli::Args args{argv};
        while (!args.done()) {
            const auto arg = args.next();
            const auto value = [&] { return args.value(arg); };
            if (arg == "--patients") {
                cfg.patients =
                    static_cast<std::size_t>(parse_u64(arg, value()));
            } else if (arg == "--jobs") {
                cfg.jobs = static_cast<unsigned>(parse_u64(arg, value()));
            } else if (arg == "--shards") {
                cfg.shards =
                    static_cast<std::size_t>(parse_u64(arg, value()));
            } else if (arg == "--mix") {
                cfg.mix = ward::parse_mix(value());
            } else if (arg == "--seed") {
                cfg.seed = parse_u64(arg, value());
            } else if (arg == "--intensity") {
                cfg.fault_intensity = parse_double(arg, value());
            } else if (arg == "--json") {
                json_path = std::string{value()};
            } else if (arg == "--events-out") {
                events_path = std::string{value()};
            } else if (arg == "--metrics-out") {
                metrics_path = std::string{value()};
            } else if (arg == "--verify-obs-jobs") {
                verify_obs_jobs = parse_jobs_list(arg, value());
            } else if (arg == "--verify-serial") {
                verify_serial = true;
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                usage(std::cout, prog);
                return 0;
            } else {
                throw CliError{"unknown option '" + std::string{arg} + "'"};
            }
        }

        const ward::WardEngine engine{cfg};
        const auto checker = mcps::testkit::InvariantChecker::with_defaults();
        const bool want_obs = !events_path.empty() || !metrics_path.empty();
        ward::WardObservation obsv;
        const auto report = engine.run(checker, want_obs ? &obsv : nullptr);
        if (!quiet) report.print(std::cout);

        if (!events_path.empty()) {
            std::ofstream out{events_path};
            if (!out) {
                throw CliError{"--events-out: cannot open '" + events_path +
                               "' for writing"};
            }
            mcps::obs::write_jsonl(obsv.events, out);
            if (!quiet) {
                std::cout << "event log: " << events_path << " ("
                          << obsv.events.size() << " events)\n";
            }
        }
        if (!metrics_path.empty()) {
            std::ofstream out{metrics_path};
            if (!out) {
                throw CliError{"--metrics-out: cannot open '" + metrics_path +
                               "' for writing"};
            }
            obsv.metrics.write_json(out);
            if (!quiet) std::cout << "metrics: " << metrics_path << "\n";
        }

        if (!json_path.empty()) {
            std::ofstream out{json_path};
            if (!out) {
                throw CliError{"--json: cannot open '" + json_path +
                               "' for writing"};
            }
            report.write_json(out);
            if (!quiet) std::cout << "json report: " << json_path << "\n";
        }

        if (verify_serial) {
            ward::WardConfig serial = cfg;
            serial.jobs = 1;
            const auto check = ward::WardEngine{serial}.run();
            char a[32], b[32];
            std::snprintf(a, sizeof a, "0x%016llx",
                          static_cast<unsigned long long>(report.fingerprint));
            std::snprintf(b, sizeof b, "0x%016llx",
                          static_cast<unsigned long long>(check.fingerprint));
            if (report.fingerprint != check.fingerprint) {
                std::cout << "FAIL: jobs=" << cfg.jobs << " fingerprint " << a
                          << " != serial fingerprint " << b << "\n";
                return 1;
            }
            std::cout << "OK: jobs=" << cfg.jobs << " and jobs=1 agree ("
                      << a << ")\n";
        }

        if (!verify_obs_jobs.empty()) {
            std::uint64_t ref_events = 0, ref_metrics = 0, ref_report = 0;
            bool first = true;
            bool ok = true;
            for (const unsigned jobs : verify_obs_jobs) {
                ward::WardConfig c = cfg;
                c.jobs = jobs;
                ward::WardObservation o;
                const auto r = ward::WardEngine{c}.run(checker, &o);
                const std::uint64_t ev = o.events.fingerprint();
                const std::uint64_t me = o.metrics.fingerprint();
                if (first) {
                    ref_events = ev;
                    ref_metrics = me;
                    ref_report = r.fingerprint;
                    first = false;
                    continue;
                }
                if (ev != ref_events || me != ref_metrics ||
                    r.fingerprint != ref_report) {
                    std::cout << "FAIL: jobs=" << jobs
                              << " observation diverges from jobs="
                              << verify_obs_jobs.front() << " (events "
                              << (ev == ref_events ? "match" : "differ")
                              << ", metrics "
                              << (me == ref_metrics ? "match" : "differ")
                              << ", report "
                              << (r.fingerprint == ref_report ? "match"
                                                              : "differ")
                              << ")\n";
                    ok = false;
                }
            }
            if (!ok) return 1;
            std::cout << "OK: event log, metrics and report identical"
                         " across jobs {";
            for (std::size_t i = 0; i < verify_obs_jobs.size(); ++i) {
                std::cout << (i ? "," : "") << verify_obs_jobs[i];
            }
            std::cout << "}\n";
        }
        return 0;
        });
}

}  // namespace mcps::drivers
