/// \file run_driver.cpp
/// \brief Scenario registry driver: list, describe and run registered
/// scenarios from one-line reproducible specs (see drivers.hpp).
///
/// Subcommands:
///   list        one line per registered scenario
///   describe    a scenario's knobs, domains and defaults
///   run         run a spec and print (or emit as JSON) its artifacts
///   selfcheck   registry invariants: every scenario runs, its spec
///               round-trips through both serializations, and a re-run
///               from the round-tripped spec reproduces the fingerprint
///
/// A spec is one line: `pca seed=42 minutes=160 demand=proxy`. `run`
/// accepts it either inline after `--spec` (quoted) or assembled from
/// the familiar flags (`--scenario`, `--seed`, `--minutes`, repeated
/// `--set key=value`). The spec echo in the output reproduces the run.
///
/// Exit codes: 0 = success, 1 = selfcheck failure, 2 = usage error.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "../cli.hpp"
#include "../drivers.hpp"
#include "obs/obs.hpp"
#include "scenario/scenario.hpp"
#include "sim/table.hpp"

namespace scenario = mcps::scenario;
using mcps::cli::CliError;
using mcps::cli::parse_u64;

namespace {

void usage(std::ostream& os, std::string_view prog) {
    os << "usage: " << prog
       << " <subcommand> [options]\n"
          "  list\n"
          "        one line per registered scenario.\n"
          "  describe SCENARIO\n"
          "        the scenario's knobs, value domains and defaults.\n"
          "  run --spec 'NAME [seed=N] [minutes=M] [key=value]...'\n"
          "  run --scenario NAME [--seed N] [--minutes M]\n"
          "      [--set key=value]... [--json PATH] [--events-out PATH]\n"
          "      [--quiet]\n"
          "        run one scenario; print the outcome table (or write\n"
          "        the artifacts as JSON to --json and the structured\n"
          "        event log as JSONL to --events-out).\n"
          "  selfcheck\n"
          "        run every registered scenario for one sim-minute and\n"
          "        require spec round-trip + fingerprint reproduction.\n";
}

std::string knob_domain(const scenario::KnobInfo& k) {
    switch (k.kind) {
        case scenario::KnobInfo::Kind::kChoice: {
            std::string out;
            for (const auto& c : k.choices) {
                if (!out.empty()) out += "|";
                out += c;
            }
            return out;
        }
        case scenario::KnobInfo::Kind::kNumber: {
            char buf[64];
            std::snprintf(buf, sizeof buf, "[%g, %g]", k.lo, k.hi);
            return buf;
        }
        case scenario::KnobInfo::Kind::kCount: {
            char buf[64];
            std::snprintf(buf, sizeof buf, "1..%llu",
                          static_cast<unsigned long long>(k.max_count));
            return buf;
        }
    }
    return "?";
}

int cmd_list() {
    mcps::sim::Table t{{"scenario", "family", "minutes", "description"}};
    for (const auto& name : scenario::registry().names()) {
        const auto& info = scenario::registry().info(name);
        t.row()
            .cell(info.name)
            .cell(std::string{scenario::to_string(info.family)})
            .cell(static_cast<std::int64_t>(info.default_minutes))
            .cell(info.description);
    }
    t.print(std::cout, "registered scenarios");
    return 0;
}

int cmd_describe(const std::vector<std::string_view>& args,
                 std::string_view prog) {
    if (args.size() != 2) {
        throw CliError{"describe: expected exactly one SCENARIO"};
    }
    const auto& info = scenario::registry().info(args[1]);
    std::cout << info.name << " (" << scenario::to_string(info.family)
              << "-family, default " << info.default_minutes
              << " min): " << info.description << "\n\n";
    mcps::sim::Table t{{"knob", "domain", "description"}};
    for (const auto& k : info.knobs) {
        t.row().cell(k.name).cell(knob_domain(k)).cell(k.description);
    }
    t.print(std::cout, "knobs (spec overrides)");
    std::cout << "\nexample: " << prog << " run --spec '" << info.name
              << " seed=7 minutes=" << info.default_minutes << "'\n";
    return 0;
}

int cmd_run(const std::vector<std::string_view>& raw) {
    std::string spec_text;
    std::string name;
    std::string json_path;
    std::string events_path;
    bool quiet = false;
    std::uint64_t seed = 0, minutes = 0;
    bool have_seed = false, have_minutes = false;
    std::vector<std::string_view> sets;

    mcps::cli::Args args{std::vector<std::string_view>{raw.begin() + 1,
                                                       raw.end()}};
    while (!args.done()) {
        const auto arg = args.next();
        const auto value = [&] { return args.value(arg); };
        if (arg == "--spec") {
            spec_text = std::string{value()};
        } else if (arg == "--scenario") {
            name = std::string{value()};
        } else if (arg == "--seed") {
            seed = parse_u64(arg, value());
            have_seed = true;
        } else if (arg == "--minutes") {
            minutes = parse_u64(arg, value());
            have_minutes = true;
        } else if (arg == "--set") {
            sets.push_back(value());
        } else if (arg == "--json") {
            json_path = std::string{value()};
        } else if (arg == "--events-out") {
            events_path = std::string{value()};
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            throw CliError{"unknown option '" + std::string{arg} + "'"};
        }
    }
    if (spec_text.empty() == name.empty()) {
        throw CliError{"run: exactly one of --spec or --scenario is required"};
    }

    scenario::ScenarioSpec spec;
    if (!spec_text.empty()) {
        if (have_seed || have_minutes || !sets.empty()) {
            throw CliError{
                "run: --spec already carries seed/minutes/overrides; "
                "don't mix it with --seed/--minutes/--set"};
        }
        spec = scenario::parse_spec(spec_text);
    } else {
        spec = scenario::registry().default_spec(name);
        if (have_seed) spec.seed = seed;
        if (have_minutes) spec.minutes = minutes;
        for (const auto sv : sets) {
            const std::size_t eq = sv.find('=');
            if (eq == std::string_view::npos) {
                throw CliError{"--set: expected key=value, got '" +
                               std::string{sv} + "'"};
            }
            spec.set(sv.substr(0, eq), sv.substr(eq + 1));
        }
    }

    mcps::obs::EventLog log;
    scenario::RunOptions run;
    if (!events_path.empty()) run.events = &log;
    const scenario::RunArtifacts art = scenario::registry().run(spec, run);

    if (!events_path.empty()) {
        std::ofstream out{events_path, std::ios::binary};
        if (!out) {
            throw CliError{"--events-out: cannot open '" + events_path + "'"};
        }
        mcps::obs::write_jsonl(log, out);
        if (!quiet) {
            std::cout << "event log: " << events_path << " (" << log.size()
                      << " events)\n";
        }
    }
    if (!json_path.empty()) {
        std::ofstream out{json_path, std::ios::binary};
        if (!out) {
            throw CliError{"--json: cannot open '" + json_path + "'"};
        }
        art.write_json(out);
        if (!quiet) std::cout << "artifacts: " << json_path << "\n";
    }
    if (!quiet) {
        std::cout << "spec: " << art.spec.to_text() << "\n";
        art.print(std::cout);
    }
    return 0;
}

/// Registry invariants, exercised scenario by scenario. One sim-minute
/// keeps the whole sweep inside a ctest-friendly budget.
int cmd_selfcheck() {
    bool ok = true;
    for (const auto& name : scenario::registry().names()) {
        scenario::ScenarioSpec spec =
            scenario::registry().default_spec(name);
        spec.minutes = 1;

        const auto first = scenario::registry().run(spec);
        const auto text_rt = scenario::parse_spec(first.spec.to_text());
        const auto json_rt = scenario::parse_spec_json(first.spec.to_json());
        const auto again = scenario::registry().run(text_rt);

        std::string verdict = "ok";
        if (text_rt != first.spec || json_rt != first.spec) {
            verdict = "SPEC ROUND-TRIP MISMATCH";
            ok = false;
        } else if (again.fingerprint != first.fingerprint) {
            verdict = "FINGERPRINT MISMATCH";
            ok = false;
        }
        std::cout << name << ": " << first.fingerprint_hex() << " "
                  << verdict << "\n";
    }
    std::cout << (ok ? "OK: registry selfcheck passed\n"
                     : "FAIL: registry selfcheck failed\n");
    return ok ? 0 : 1;
}

}  // namespace

namespace mcps::drivers {

int run_main(std::string_view prog,
             const std::vector<std::string_view>& args) {
    return cli::tool_main(
        prog, [&](std::ostream& os) { usage(os, prog); },
        [&]() -> int {
            if (args.empty() || args[0] == "--help" || args[0] == "-h") {
                usage(std::cout, prog);
                return args.empty() ? 2 : 0;
            }
            const auto cmd = args[0];
            if (cmd == "list") return cmd_list();
            if (cmd == "describe") return cmd_describe(args, prog);
            if (cmd == "run") return cmd_run(args);
            if (cmd == "selfcheck") return cmd_selfcheck();
            throw CliError{"unknown subcommand '" + std::string{cmd} + "'"};
        });
}

}  // namespace mcps::drivers
