/// \file analyze_driver.cpp
/// \brief The model-level safety linter driver: statically cross-checks
/// every shipped safety model without executing a simulation tick (see
/// drivers.hpp).
///
/// Checks run (see src/analysis/finding.hpp for the rule catalog):
///   TA1–TA4 on the shipped timed-automata models (pump lockout,
///           closed-loop response, 2-pump farm),
///   TA5     deadline feasibility: static worst-case interlock latency
///           over every registry preset's claimed-safe knob envelope
///           (optionally cross-checked against observed sim latencies),
///   ICE1    on the shipped ICE assemblies (PCA closed loop,
///           X-ray/ventilator sync), plus — per --scan-scenarios root —
///           the registry-bypass scan over scenario consumers,
///   AS1     on the GPCA hazard log vs. the GSN case skeleton,
///   SIM1    banned-construct scan over the source tree,
///   CONC1   lock-discipline scan (MCPS_GUARDED_BY / MCPS_LOCK_ORDER)
///           over the --scan-conc roots as one unit,
///   CFG1    configuration sanity: a missing scan root is an error (the
///           scan would otherwise silently cover zero files).
///
/// The shipped model set itself lives in src/analysis/shipped.hpp so
/// this driver and the pipeline's analysis passes check the same thing.
///
/// Exit codes: 0 = clean, 1 = findings, 2 = usage/internal error,
/// 3 = configuration error (CFG1: a scan root is missing — takes
/// precedence over 1 so CI can tell "found problems" from "looked at
/// nothing"). --check-sarif: 0 = valid, 1 = invalid, 2 = unreadable.
/// CI gate: tools/ci_analysis.sh runs this on every build.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "../drivers.hpp"
#include "analysis/analysis.hpp"
#include "analysis/shipped.hpp"
#include "assurance/assurance.hpp"

namespace {

using namespace mcps;

int usage(std::string_view prog) {
    std::cerr
        << "usage: " << prog
        << " [--json <path>] [--sarif <path>] [--suppress R1,R2]\n"
           "       [--src-root <dir>] [--scan-scenarios <dir>]...\n"
           "       [--scan-conc <dir>]... [--no-scan] [--no-deadlines]\n"
           "       [--deadline-table] [--cross-check] [--list-rules]\n"
           "       [--matrix] [--quiet]\n"
           "       " << prog << " --check-sarif <path>\n";
    return 2;
}

int check_sarif_file(std::string_view prog, const std::string& path) {
    std::ifstream in{path};
    if (!in) {
        std::cerr << prog << ": --check-sarif: cannot read '" << path
                  << "'\n";
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!analysis::validate_sarif_minimal(buf.str(), error)) {
        std::cerr << prog << ": " << path << ": invalid SARIF: " << error
                  << "\n";
        return 1;
    }
    std::cout << path << ": valid SARIF 2.1.0 (structural check)\n";
    return 0;
}

}  // namespace

namespace mcps::drivers {

int analyze_main(std::string_view prog,
                 const std::vector<std::string_view>& args) {
    std::string json_path;
    std::string sarif_path;
    std::string suppress_list;
    std::string src_root = "src";
    std::vector<std::string> scenario_roots;
    std::vector<std::filesystem::path> conc_roots;
    bool scan = true;
    bool deadlines = true;
    bool deadline_table = false;
    bool cross_check = false;
    bool quiet = false;
    bool matrix = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string arg{args[i]};
        auto next = [&](std::string& out) {
            if (i + 1 >= args.size()) {
                std::cerr << prog << ": " << arg << ": missing value\n";
                return false;
            }
            out = std::string{args[++i]};
            return true;
        };
        if (arg == "--json") {
            if (!next(json_path)) return 2;
        } else if (arg == "--sarif") {
            if (!next(sarif_path)) return 2;
        } else if (arg == "--check-sarif") {
            std::string path;
            if (!next(path)) return 2;
            return check_sarif_file(prog, path);
        } else if (arg == "--suppress") {
            if (!next(suppress_list)) return 2;
        } else if (arg == "--src-root") {
            if (!next(src_root)) return 2;
        } else if (arg == "--scan-scenarios") {
            std::string root;
            if (!next(root)) return 2;
            scenario_roots.push_back(std::move(root));
        } else if (arg == "--scan-conc") {
            std::string root;
            if (!next(root)) return 2;
            conc_roots.emplace_back(std::move(root));
        } else if (arg == "--no-scan") {
            scan = false;
        } else if (arg == "--no-deadlines") {
            deadlines = false;
        } else if (arg == "--deadline-table") {
            deadline_table = true;
        } else if (arg == "--cross-check") {
            cross_check = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--matrix") {
            matrix = true;
        } else if (arg == "--list-rules") {
            for (analysis::RuleId r : analysis::all_rules()) {
                std::cout << analysis::rule_name(r) << "\t"
                          << analysis::rule_summary(r) << "\n";
            }
            return 0;
        } else {
            return usage(prog);
        }
    }

    analysis::SuppressionSet suppressions;
    if (!suppress_list.empty() && !suppressions.parse_list(suppress_list)) {
        std::cerr << prog << ": --suppress: unknown rule in '"
                  << suppress_list << "'\n";
        return 2;
    }

    analysis::Analyzer analyzer{suppressions};
    try {
        analysis::add_shipped_ta_models(analyzer);
        analysis::add_shipped_assemblies(analyzer);
        const auto log = assurance::build_gpca_hazard_log();
        const auto gsn = assurance::build_gpca_case_skeleton();
        analyzer.check_hazards(log, &gsn);
        if (deadlines) analyzer.check_deadlines({}, cross_check);
        if (scan) analyzer.scan_sources(src_root);
        for (const std::string& root : scenario_roots) {
            analyzer.scan_scenario_assembly(root);
        }
        if (!conc_roots.empty()) analyzer.scan_concurrency(conc_roots);
    } catch (const std::exception& e) {
        std::cerr << prog << ": " << e.what() << "\n";
        return 2;
    }

    const analysis::AnalysisReport& report = analyzer.report();
    if (!quiet || !report.clean()) {
        std::cout << report.to_text();
    }
    if (matrix) {
        std::cout << "\nhazard-coverage matrix:\n"
                  << analyzer.last_coverage().to_text();
    }
    if (deadline_table && deadlines) {
        std::cout << "\nTA5 deadline slack table:\n"
                  << analyzer.deadline_report().to_text();
    }
    if (!json_path.empty()) {
        std::ofstream out{json_path};
        if (!out) {
            std::cerr << prog << ": --json: cannot open '" << json_path
                      << "'\n";
            return 2;
        }
        report.write_json(out);
        if (!quiet) std::cout << "json report: " << json_path << "\n";
    }
    if (!sarif_path.empty()) {
        std::ofstream out{sarif_path};
        if (!out) {
            std::cerr << prog << ": --sarif: cannot open '" << sarif_path
                      << "'\n";
            return 2;
        }
        analysis::write_sarif(report, out);
        if (!quiet) std::cout << "sarif report: " << sarif_path << "\n";
    }
    const bool config_error = std::any_of(
        report.findings.begin(), report.findings.end(),
        [](const analysis::Finding& f) {
            return f.rule == analysis::RuleId::kCFG1;
        });
    if (config_error) return 3;
    return report.clean() ? 0 : 1;
}

}  // namespace mcps::drivers
