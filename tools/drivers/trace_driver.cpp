/// \file trace_driver.cpp
/// \brief Structured-trace driver: run scenarios with event tracing,
/// export and inspect the resulting logs, and byte-diff them against
/// committed golden traces (see drivers.hpp).
///
/// Subcommands:
///   run         run a scenario and emit its event log (JSONL / Chrome)
///   inspect     summarize a JSONL event log
///   diff        byte-diff two JSONL event logs
///   check       re-run a scenario and byte-diff against a golden file
///   check-bench validate a bench --json report against the schema
///
/// The golden-trace contract: `check` re-runs the named scenario with the
/// given seed and duration and requires the serialized JSONL to be
/// byte-identical to the committed file. Any change to event emission,
/// scheduling order or number formatting trips the diff. `--update`
/// rewrites the golden after an intentional change.
///
/// Exit codes: 0 = success, 1 = diff/check/validation failure,
/// 2 = usage or I/O error.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "../cli.hpp"
#include "../drivers.hpp"
#include "obs/obs.hpp"
#include "scenario/scenario.hpp"
#include "sim/table.hpp"

namespace obs = mcps::obs;
namespace scenario = mcps::scenario;
using mcps::cli::CliError;
using mcps::cli::parse_u64;

namespace {

void usage(std::ostream& os, std::string_view prog) {
    os << "usage: " << prog
       << " <subcommand> [options]\n"
          "  run --scenario NAME [--seed N] [--minutes M]\n"
          "      [--out PATH] [--chrome PATH] [--no-bus] [--quiet]\n"
          "        run a registered scenario (see `mcps_run list`) with\n"
          "        structured tracing; write the event log as JSONL to\n"
          "        --out (default stdout) and optionally as a Chrome\n"
          "        trace_event file to --chrome. --no-bus drops bus\n"
          "        publish/deliver/drop events.\n"
          "  inspect FILE\n"
          "        summarize a JSONL event log (counts per kind, time\n"
          "        range, sources).\n"
          "  diff A B\n"
          "        byte-diff two JSONL event logs; exit 1 on difference.\n"
          "  check --scenario NAME --golden FILE [--seed N]\n"
          "      [--minutes M] [--no-bus] [--update]\n"
          "        re-run the scenario and byte-diff its JSONL against\n"
          "        the golden file; --update rewrites the golden.\n"
          "  check-bench FILE\n"
          "        validate a bench --json report against the schema.\n";
}

struct TraceOptions {
    std::string scenario;
    std::uint64_t seed = 42;
    std::uint64_t minutes = 30;
    bool no_bus = false;
};

/// Run the named scenario with tracing attached. The configurations are
/// the registry's canonical presets (not exposed flag-by-flag): golden
/// traces must correspond to one reproducible command line.
obs::EventLog run_traced_scenario(const TraceOptions& opt) {
    obs::EventLog log;
    scenario::ScenarioSpec spec;
    spec.name = opt.scenario;
    spec.seed = opt.seed;
    spec.minutes = opt.minutes;
    scenario::RunOptions run;
    run.events = &log;
    try {
        (void)scenario::registry().run(spec, run);
    } catch (const scenario::SpecError& e) {
        throw CliError{e.what()};
    }
    return log;
}

[[nodiscard]] bool is_bus_kind(obs::EventKind k) noexcept {
    return k == obs::EventKind::kBusPublish ||
           k == obs::EventKind::kBusDeliver || k == obs::EventKind::kBusDrop;
}

obs::EventLog drop_bus_events(const obs::EventLog& in) {
    obs::EventLog out;
    out.reserve(in.size());
    for (const auto& e : in.events()) {
        if (!is_bus_kind(e.kind)) {
            out.emit(e.kind, e.time, e.source, e.detail, e.value);
        }
    }
    return out;
}

std::string serialize(const obs::EventLog& log) {
    std::ostringstream os;
    obs::write_jsonl(log, os);
    return os.str();
}

std::string read_file(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw CliError{"cannot open '" + path + "' for reading"};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void write_file(const std::string& path, const std::string& content) {
    std::ofstream out{path, std::ios::binary};
    if (!out) throw CliError{"cannot open '" + path + "' for writing"};
    out << content;
}

/// Line-oriented byte diff. Returns true when identical; otherwise
/// prints the first divergence (1-based line number, both lines).
bool diff_texts(const std::string& a_name, const std::string& a,
                const std::string& b_name, const std::string& b,
                std::ostream& os) {
    if (a == b) return true;
    std::istringstream as{a}, bs{b};
    std::string al, bl;
    std::size_t line = 0;
    while (true) {
        ++line;
        const bool ag = static_cast<bool>(std::getline(as, al));
        const bool bg = static_cast<bool>(std::getline(bs, bl));
        if (!ag && !bg) {
            // Same lines but different bytes (trailing newline etc.).
            os << "traces differ in trailing bytes (" << a.size() << " vs "
               << b.size() << " bytes)\n";
            return false;
        }
        if (ag != bg) {
            os << "traces differ at line " << line << ": "
               << (ag ? b_name : a_name) << " ends early\n";
            if (ag) os << "  " << a_name << ": " << al << "\n";
            if (bg) os << "  " << b_name << ": " << bl << "\n";
            return false;
        }
        if (al != bl) {
            os << "traces differ at line " << line << ":\n"
               << "  " << a_name << ": " << al << "\n"
               << "  " << b_name << ": " << bl << "\n";
            return false;
        }
    }
}

TraceOptions parse_run_options(const std::vector<std::string_view>& args,
                               std::size_t start, std::string* out_path,
                               std::string* chrome_path, std::string* golden,
                               bool* update, bool* quiet) {
    TraceOptions opt;
    mcps::cli::Args cursor{
        std::vector<std::string_view>{args.begin() + static_cast<std::ptrdiff_t>(start),
                                      args.end()}};
    while (!cursor.done()) {
        const auto arg = cursor.next();
        const auto value = [&] { return cursor.value(arg); };
        if (arg == "--scenario") {
            opt.scenario = std::string{value()};
        } else if (arg == "--seed") {
            opt.seed = parse_u64(arg, value());
        } else if (arg == "--minutes") {
            opt.minutes = parse_u64(arg, value());
        } else if (arg == "--no-bus") {
            opt.no_bus = true;
        } else if (arg == "--out" && out_path) {
            *out_path = std::string{value()};
        } else if (arg == "--chrome" && chrome_path) {
            *chrome_path = std::string{value()};
        } else if (arg == "--golden" && golden) {
            *golden = std::string{value()};
        } else if (arg == "--update" && update) {
            *update = true;
        } else if (arg == "--quiet" && quiet) {
            *quiet = true;
        } else {
            throw CliError{"unknown option '" + std::string{arg} + "'"};
        }
    }
    if (opt.scenario.empty()) {
        throw CliError{"--scenario is required"};
    }
    return opt;
}

int cmd_run(const std::vector<std::string_view>& args) {
    std::string out_path, chrome_path;
    bool quiet = false;
    const TraceOptions opt = parse_run_options(args, 1, &out_path, &chrome_path,
                                             nullptr, nullptr, &quiet);
    obs::EventLog log = run_traced_scenario(opt);
    if (opt.no_bus) log = drop_bus_events(log);

    if (out_path.empty()) {
        obs::write_jsonl(log, std::cout);
    } else {
        std::ofstream out{out_path, std::ios::binary};
        if (!out) throw CliError{"--out: cannot open '" + out_path + "'"};
        obs::write_jsonl(log, out);
        if (!quiet) {
            std::cout << "event log: " << out_path << " (" << log.size()
                      << " events)\n";
        }
    }
    if (!chrome_path.empty()) {
        std::ofstream out{chrome_path, std::ios::binary};
        if (!out) throw CliError{"--chrome: cannot open '" + chrome_path + "'"};
        obs::write_chrome_trace(log, out);
        if (!quiet) std::cout << "chrome trace: " << chrome_path << "\n";
    }
    return 0;
}

int cmd_inspect(const std::vector<std::string_view>& args) {
    if (args.size() != 2) throw CliError{"inspect: expected exactly one FILE"};
    const std::string path{args[1]};
    std::ifstream in{path, std::ios::binary};
    if (!in) throw CliError{"cannot open '" + path + "' for reading"};
    const obs::EventLog log = obs::read_jsonl(in);

    std::map<obs::EventKind, std::uint64_t> by_kind;
    std::map<std::string, std::uint64_t> by_source;
    for (const auto& e : log.events()) {
        ++by_kind[e.kind];
        ++by_source[e.source];
    }

    std::cout << path << ": " << log.size() << " events";
    if (!log.empty()) {
        std::cout << ", t = [" << log.events().front().time.ticks() << " us, "
                  << log.events().back().time.ticks() << " us]";
    }
    char fp[32];
    std::snprintf(fp, sizeof fp, "0x%016llx",
                  static_cast<unsigned long long>(log.fingerprint()));
    std::cout << ", fingerprint " << fp << "\n";

    mcps::sim::Table kinds{{"kind", "count"}};
    for (const auto& [kind, count] : by_kind) {
        kinds.row().cell(std::string{obs::to_string(kind)}).cell(count);
    }
    kinds.print(std::cout, "events by kind");
    std::cout << '\n';

    mcps::sim::Table sources{{"source", "count"}};
    for (const auto& [source, count] : by_source) {
        sources.row().cell(source).cell(count);
    }
    sources.print(std::cout, "events by source");
    return 0;
}

int cmd_diff(const std::vector<std::string_view>& args) {
    if (args.size() != 3) throw CliError{"diff: expected exactly two files"};
    const std::string a_path{args[1]}, b_path{args[2]};
    const std::string a = read_file(a_path), b = read_file(b_path);
    if (diff_texts(a_path, a, b_path, b, std::cout)) {
        std::cout << "traces identical (" << a.size() << " bytes)\n";
        return 0;
    }
    return 1;
}

int cmd_check(const std::vector<std::string_view>& args) {
    std::string golden;
    bool update = false;
    const TraceOptions opt = parse_run_options(args, 1, nullptr, nullptr,
                                             &golden, &update, nullptr);
    if (golden.empty()) throw CliError{"check: --golden is required"};

    obs::EventLog log = run_traced_scenario(opt);
    if (opt.no_bus) log = drop_bus_events(log);
    const std::string actual = serialize(log);

    if (update) {
        write_file(golden, actual);
        std::cout << "golden updated: " << golden << " (" << log.size()
                  << " events, " << actual.size() << " bytes)\n";
        return 0;
    }
    const std::string expected = read_file(golden);
    if (diff_texts(golden, expected, "actual", actual, std::cout)) {
        std::cout << "OK: " << golden << " matches (" << log.size()
                  << " events, " << actual.size() << " bytes)\n";
        return 0;
    }
    std::cout << "golden mismatch for scenario '" << opt.scenario
              << "' (seed " << opt.seed << ", " << opt.minutes
              << " min); run with --update after an intentional change\n";
    return 1;
}

int cmd_check_bench(const std::vector<std::string_view>& args) {
    if (args.size() != 2) {
        throw CliError{"check-bench: expected exactly one FILE"};
    }
    const std::string path{args[1]};
    std::ifstream in{path, std::ios::binary};
    if (!in) throw CliError{"cannot open '" + path + "' for reading"};
    std::string error;
    if (obs::validate_bench_json(in, error)) {
        std::cout << "OK: " << path << " conforms to the bench schema\n";
        return 0;
    }
    std::cout << "FAIL: " << path << ": " << error << "\n";
    return 1;
}

}  // namespace

namespace mcps::drivers {

int trace_main(std::string_view prog,
               const std::vector<std::string_view>& args) {
    return cli::tool_main(
        prog, [&](std::ostream& os) { usage(os, prog); },
        [&]() -> int {
            if (args.empty() || args[0] == "--help" || args[0] == "-h") {
                usage(std::cout, prog);
                return args.empty() ? 2 : 0;
            }
            const auto cmd = args[0];
            if (cmd == "run") return cmd_run(args);
            if (cmd == "inspect") return cmd_inspect(args);
            if (cmd == "diff") return cmd_diff(args);
            if (cmd == "check") return cmd_check(args);
            if (cmd == "check-bench") return cmd_check_bench(args);
            throw CliError{"unknown subcommand '" + std::string{cmd} + "'"};
        });
}

}  // namespace mcps::drivers
