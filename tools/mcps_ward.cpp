/// \file mcps_ward.cpp
/// \brief CLI for the ward-scale parallel execution engine.
///
/// Runs N patient scenarios over a work-stealing pool and prints (or
/// emits as JSON) the ward-level aggregate report. `--verify-serial`
/// re-runs the campaign single-threaded and requires the deterministic
/// ward fingerprint to match — the engine's core promise.
///
/// Exit codes: 0 = success, 1 = --verify-serial fingerprint mismatch,
/// 2 = usage or I/O error.

#include <charconv>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "ward/ward.hpp"

namespace ward = mcps::ward;

namespace {

void usage(std::ostream& os) {
    os << "usage: mcps_ward [options]\n"
          "  --patients N       scenarios to run (default 64)\n"
          "  --jobs N           worker threads (default 1)\n"
          "  --shards N         reduction shards (default 64; fixes the\n"
          "                     merge order, so keep it constant when\n"
          "                     comparing runs)\n"
          "  --mix SPEC         workload weights, e.g. pca=0.7,xray=0.15,\n"
          "                     ward=0.15 (normalized; default shown)\n"
          "  --seed N           master seed (default 42)\n"
          "  --intensity X      fault-plan intensity for PCA-family\n"
          "                     scenarios (default 0 = no injected faults)\n"
          "  --json PATH        write the machine-readable report to PATH\n"
          "  --verify-serial    also run with jobs=1 and require an\n"
          "                     identical ward fingerprint\n"
          "  --quiet            suppress the report tables\n"
          "  --help             this text\n";
}

struct CliError {
    std::string message;
};

std::uint64_t parse_u64_arg(std::string_view flag, std::string_view v) {
    std::uint64_t out = 0;
    const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || p != v.data() + v.size()) {
        throw CliError{std::string{flag} + ": expected an integer, got '" +
                       std::string{v} + "'"};
    }
    return out;
}

double parse_double_arg(std::string_view flag, std::string_view v) {
    try {
        std::size_t used = 0;
        const double out = std::stod(std::string{v}, &used);
        if (used != v.size()) throw std::invalid_argument{""};
        return out;
    } catch (const std::exception&) {
        throw CliError{std::string{flag} + ": expected a number, got '" +
                       std::string{v} + "'"};
    }
}

}  // namespace

int main(int argc, char** argv) {
    ward::WardConfig cfg;
    bool verify_serial = false;
    bool quiet = false;
    std::string json_path;

    try {
        const std::vector<std::string_view> args{argv + 1, argv + argc};
        for (std::size_t i = 0; i < args.size(); ++i) {
            const auto arg = args[i];
            const auto value = [&]() -> std::string_view {
                if (i + 1 >= args.size()) {
                    throw CliError{std::string{arg} + ": missing value"};
                }
                return args[++i];
            };
            if (arg == "--patients") {
                cfg.patients =
                    static_cast<std::size_t>(parse_u64_arg(arg, value()));
            } else if (arg == "--jobs") {
                cfg.jobs = static_cast<unsigned>(parse_u64_arg(arg, value()));
            } else if (arg == "--shards") {
                cfg.shards =
                    static_cast<std::size_t>(parse_u64_arg(arg, value()));
            } else if (arg == "--mix") {
                cfg.mix = ward::parse_mix(value());
            } else if (arg == "--seed") {
                cfg.seed = parse_u64_arg(arg, value());
            } else if (arg == "--intensity") {
                cfg.fault_intensity = parse_double_arg(arg, value());
            } else if (arg == "--json") {
                json_path = std::string{value()};
            } else if (arg == "--verify-serial") {
                verify_serial = true;
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                usage(std::cout);
                return 0;
            } else {
                throw CliError{"unknown option '" + std::string{arg} + "'"};
            }
        }

        const ward::WardEngine engine{cfg};
        const auto report = engine.run();
        if (!quiet) report.print(std::cout);

        if (!json_path.empty()) {
            std::ofstream out{json_path};
            if (!out) {
                throw CliError{"--json: cannot open '" + json_path +
                               "' for writing"};
            }
            report.write_json(out);
            if (!quiet) std::cout << "json report: " << json_path << "\n";
        }

        if (verify_serial) {
            ward::WardConfig serial = cfg;
            serial.jobs = 1;
            const auto check = ward::WardEngine{serial}.run();
            char a[32], b[32];
            std::snprintf(a, sizeof a, "0x%016llx",
                          static_cast<unsigned long long>(report.fingerprint));
            std::snprintf(b, sizeof b, "0x%016llx",
                          static_cast<unsigned long long>(check.fingerprint));
            if (report.fingerprint != check.fingerprint) {
                std::cout << "FAIL: jobs=" << cfg.jobs << " fingerprint " << a
                          << " != serial fingerprint " << b << "\n";
                return 1;
            }
            std::cout << "OK: jobs=" << cfg.jobs << " and jobs=1 agree ("
                      << a << ")\n";
        }
        return 0;
    } catch (const CliError& e) {
        std::cerr << "mcps_ward: " << e.message << "\n";
        usage(std::cerr);
        return 2;
    } catch (const std::exception& e) {
        std::cerr << "mcps_ward: " << e.what() << "\n";
        return 2;
    }
}
