/// \file mcps_ward.cpp
/// \brief Classic standalone binary for the ward campaign driver.
/// The implementation lives in tools/drivers/ward_driver.cpp, shared
/// with `mcps ward`.

#include "drivers.hpp"

int main(int argc, char** argv) {
    return mcps::drivers::ward_main("mcps_ward", {argv + 1, argv + argc});
}
