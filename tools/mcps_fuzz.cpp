/// \file mcps_fuzz.cpp
/// \brief Classic standalone binary for the scenario fuzzer driver.
/// The implementation lives in tools/drivers/fuzz_driver.cpp, shared
/// with `mcps fuzz`.

#include "drivers.hpp"

int main(int argc, char** argv) {
    return mcps::drivers::fuzz_main("mcps_fuzz", {argv + 1, argv + argc});
}
