/// \file drivers.hpp
/// \brief The CLI driver registry: every mcps tool as a callable.
///
/// Each driver is the complete implementation of one tool — argument
/// parsing, execution, output, exit code — parameterized only by the
/// invocation name \p prog (used in usage text and error prefixes) and
/// the argument vector (argv without the program name). The unified
/// `mcps` dispatcher and the five classic single-tool binaries are both
/// thin shims over this registry, so `mcps run ...` and `mcps_run ...`
/// execute the same code path and produce byte-identical stdout and
/// exit codes (the drift-guard test holds them to that).
///
/// Exit-code contracts are each driver's own (documented in its .cpp);
/// all of them reserve 2 for usage errors.

#pragma once

#include <string_view>
#include <vector>

namespace mcps::drivers {

/// Scenario registry CLI (list/describe/run/selfcheck).
int run_main(std::string_view prog,
             const std::vector<std::string_view>& args);

/// Structured-trace CLI (run/inspect/diff/check/check-bench).
int trace_main(std::string_view prog,
               const std::vector<std::string_view>& args);

/// Ward campaign CLI (flag-style; --verify-serial/--verify-obs-jobs).
int ward_main(std::string_view prog,
              const std::vector<std::string_view>& args);

/// Scenario fuzzer CLI (fuzz/replay/hospital modes).
int fuzz_main(std::string_view prog,
              const std::vector<std::string_view>& args);

/// Model-level safety linter CLI.
int analyze_main(std::string_view prog,
                 const std::vector<std::string_view>& args);

/// Composable pipeline CLI: build a pass graph from flags, run it
/// serially or in parallel over an artifact cache, export artifacts,
/// report per-pass timing and cache traffic.
int pipeline_main(std::string_view prog,
                  const std::vector<std::string_view>& args);

}  // namespace mcps::drivers
