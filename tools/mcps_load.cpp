/// \file mcps_load.cpp
/// \brief Latency-percentile load generator for mcps_serve.
///
/// Drives N concurrent synchronous clients against a server — an
/// external one (--port/--unix) or an in-process one on an ephemeral
/// port (--embed; requests still traverse real loopback sockets) — with
/// a deterministic mixed-preset workload: every registered scenario,
/// a bounded seed pool (so the fingerprint cache sees repeats), and a
/// clinical/interactive/batch QoS mix. Per-request wall latency lands
/// in per-client sim::Histograms whose exact integer merge yields the
/// p50/p95/p99 columns; `--clients-list 1,4,16,64` sweeps concurrency
/// levels into one report.
///
///   mcps_load --embed --clients-list 1,4,16,64 --requests 64 --json out.json
///   mcps_load --port 7171 --clients 8 --requests 100 --drain
///
/// --import-metrics FILE PREFIX copies another bench_io-schema report's
/// metrics into this one under PREFIX/ (used to splice the calendar-
/// queue churn before/after numbers into BENCH_7.json).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_io.hpp"
#include "cli.hpp"
#include "scenario/registry.hpp"
#include "serve/serve.hpp"
#include "sim/stats.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// 0.05 ms resolution up to 500 ms; slower responses clamp to the top
// bin, which only biases p99 downward when the tail is already huge.
constexpr double kHistLoMs = 0.0;
constexpr double kHistHiMs = 500.0;
constexpr std::size_t kHistBins = 10000;

struct Totals {
    std::uint64_t ok = 0;
    std::uint64_t cached = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
};

struct PhaseResult {
    double wall_s = 0.0;
    Totals totals;
    mcps::sim::Histogram latency_ms{kHistLoMs, kHistHiMs, kHistBins};
};

mcps::serve::QosClass pick_class(std::uint64_t r) {
    const std::uint64_t d = r % 10;
    if (d == 0) return mcps::serve::QosClass::kClinical;
    if (d <= 6) return mcps::serve::QosClass::kInteractive;
    return mcps::serve::QosClass::kBatch;
}

PhaseResult run_phase(const mcps::serve::Endpoint& ep, unsigned clients,
                      std::uint64_t requests_per_client,
                      std::uint64_t master_seed, std::uint64_t minutes,
                      std::uint64_t seed_pool) {
    const std::vector<std::string> presets =
        mcps::scenario::registry().names();
    PhaseResult result;
    std::vector<PhaseResult> locals(clients);
    std::vector<std::string> failures(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto t0 = Clock::now();
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            PhaseResult& mine = locals[c];
            try {
                mcps::serve::Client client{ep};
                std::mt19937_64 rng{master_seed * 1000003 + c};
                for (std::uint64_t i = 0; i < requests_per_client; ++i) {
                    mcps::scenario::ScenarioSpec spec;
                    spec.name = presets[rng() % presets.size()];
                    spec.seed = master_seed + rng() % seed_pool;
                    spec.minutes = minutes;
                    const auto qos = pick_class(rng());
                    const auto r0 = Clock::now();
                    const mcps::serve::Response resp =
                        client.run(spec, qos);
                    const double ms =
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - r0)
                            .count();
                    mine.latency_ms.add(ms);
                    if (resp.ok()) {
                        ++mine.totals.ok;
                        if (resp.cached) ++mine.totals.cached;
                    } else if (resp.rejected()) {
                        ++mine.totals.rejected;
                    } else {
                        ++mine.totals.errors;
                    }
                }
            } catch (const std::exception& e) {
                failures[c] = e.what();
            }
        });
    }
    for (std::thread& t : threads) t.join();
    result.wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    for (unsigned c = 0; c < clients; ++c) {
        if (!failures[c].empty()) {
            std::cerr << "mcps_load: client " << c << ": " << failures[c]
                      << "\n";
            ++result.totals.errors;
        }
        result.totals.ok += locals[c].totals.ok;
        result.totals.cached += locals[c].totals.cached;
        result.totals.rejected += locals[c].totals.rejected;
        result.totals.errors += locals[c].totals.errors;
        result.latency_ms.merge(locals[c].latency_ms);
    }
    return result;
}

/// Line-oriented extraction from a bench_io JsonReporter file (one
/// metric object per line, the schema this repo's benches emit).
void import_metrics(mcps::benchio::JsonReporter& json,
                    const std::string& path, const std::string& prefix) {
    std::ifstream in{path};
    if (!in) {
        std::cerr << "mcps_load: --import-metrics: cannot read '" << path
                  << "'\n";
        return;
    }
    std::string line;
    while (std::getline(in, line)) {
        const auto grab = [&line](const std::string& key,
                                  std::string& out) {
            const std::string probe = "\"" + key + "\": ";
            const std::size_t at = line.find(probe);
            if (at == std::string::npos) return false;
            std::size_t s = at + probe.size();
            std::size_t e = s;
            if (s < line.size() && line[s] == '"') {
                ++s;
                e = line.find('"', s);
            } else {
                e = line.find_first_of(",}", s);
            }
            if (e == std::string::npos) return false;
            out = line.substr(s, e - s);
            return true;
        };
        std::string name, value, unit;
        if (!grab("name", name) || !grab("value", value) ||
            !grab("unit", unit) || value == "null") {
            continue;
        }
        try {
            json.metric(prefix + "/" + name, std::stod(value), unit);
        } catch (const std::exception&) {
        }
    }
}

void usage(std::ostream& os) {
    os << "usage: mcps_load [options]\n"
          "  --embed                start an in-process server (ephemeral "
          "TCP port)\n"
          "  --port N / --host A    target an external TCP server\n"
          "  --unix PATH            target an external Unix-socket server\n"
          "  --clients N            concurrent clients (default 4)\n"
          "  --clients-list 1,4,16  sweep several concurrency levels\n"
          "  --requests N           requests per client (default 50)\n"
          "  --seed N               master workload seed (default 42)\n"
          "  --minutes N            scenario minutes per request "
          "(default 1)\n"
          "  --seed-pool N          distinct seeds per preset (default 12;"
          " smaller = more cache hits)\n"
          "  --workers N            embedded server workers (default 4)\n"
          "  --queue N              embedded admission capacity "
          "(default 64)\n"
          "  --cache N              embedded cache entries (default 256)\n"
          "  --drain                send a drain command when done\n"
          "  --import-metrics F P   splice metrics of bench JSON F under "
          "prefix P\n"
          "  --json PATH            machine-readable report\n"
          "  --quick                tiny smoke workload\n";
}

}  // namespace

int main(int argc, char** argv) {
    using mcps::cli::CliError;
    bool embed = false, drain = false;
    std::string host = "127.0.0.1", unix_sock;
    std::uint64_t port = 0, requests = 50, seed = 42, minutes = 1;
    std::uint64_t seed_pool = 12;
    std::vector<unsigned> client_list;
    mcps::serve::ServerConfig embed_cfg;
    embed_cfg.workers = 4;
    std::vector<std::pair<std::string, std::string>> imports;
    const bool quick = mcps::benchio::quick_mode(argc, argv);
    mcps::benchio::JsonReporter json{argc, argv, "serve_load"};
    try {
        mcps::cli::Args args{argc, argv};
        while (!args.done()) {
            const auto arg = args.next();
            if (arg == "--embed") {
                embed = true;
            } else if (arg == "--port") {
                port = mcps::cli::parse_u64(arg, args.value(arg));
                if (port > 65535) throw CliError{"--port: out of range"};
            } else if (arg == "--host") {
                host = std::string{args.value(arg)};
            } else if (arg == "--unix") {
                unix_sock = std::string{args.value(arg)};
            } else if (arg == "--clients") {
                client_list = {static_cast<unsigned>(
                    mcps::cli::parse_u64(arg, args.value(arg)))};
            } else if (arg == "--clients-list") {
                client_list =
                    mcps::cli::parse_unsigned_list(arg, args.value(arg));
            } else if (arg == "--requests") {
                requests = mcps::cli::parse_u64(arg, args.value(arg));
            } else if (arg == "--seed") {
                seed = mcps::cli::parse_u64(arg, args.value(arg));
            } else if (arg == "--minutes") {
                minutes = mcps::cli::parse_u64(arg, args.value(arg));
            } else if (arg == "--seed-pool") {
                seed_pool = mcps::cli::parse_u64(arg, args.value(arg));
                if (seed_pool == 0) throw CliError{"--seed-pool: must be >= 1"};
            } else if (arg == "--workers") {
                embed_cfg.workers = static_cast<unsigned>(
                    mcps::cli::parse_u64(arg, args.value(arg)));
            } else if (arg == "--queue") {
                embed_cfg.queue_capacity = static_cast<std::size_t>(
                    mcps::cli::parse_u64(arg, args.value(arg)));
            } else if (arg == "--cache") {
                embed_cfg.cache_entries = static_cast<std::size_t>(
                    mcps::cli::parse_u64(arg, args.value(arg)));
            } else if (arg == "--drain") {
                drain = true;
            } else if (arg == "--import-metrics") {
                const std::string file{args.value(arg)};
                const std::string prefix{args.value(arg)};
                imports.emplace_back(file, prefix);
            } else if (arg == "--json") {
                args.value(arg);  // consumed by JsonReporter
            } else if (arg == "--quick") {
                // handled by quick_mode()
            } else if (arg == "--help") {
                usage(std::cout);
                return 0;
            } else {
                throw CliError{"unknown option '" + std::string{arg} + "'"};
            }
        }
    } catch (const CliError& e) {
        std::cerr << "mcps_load: " << e.message << "\n";
        usage(std::cerr);
        return 2;
    }
    if (client_list.empty()) client_list = {4};
    if (quick) {
        client_list = {2};
        requests = 8;
        embed_cfg.workers = 2;
    }
    if (!embed && unix_sock.empty() && port == 0) {
        std::cerr << "mcps_load: need --embed, --port or --unix\n";
        return 2;
    }
    json.set_seed(seed);

    try {
        std::unique_ptr<mcps::serve::Server> server;
        mcps::serve::Endpoint ep;
        if (embed) {
            embed_cfg.endpoint = mcps::serve::Endpoint::tcp("127.0.0.1", 0);
            server = std::make_unique<mcps::serve::Server>(embed_cfg);
            ep = server->endpoint();
        } else if (!unix_sock.empty()) {
            ep = mcps::serve::Endpoint::unix_path(unix_sock);
        } else {
            ep = mcps::serve::Endpoint::tcp(
                host, static_cast<std::uint16_t>(port));
        }

        std::printf("# mcps_load against %s (requests/client=%llu, "
                    "minutes=%llu, seed-pool=%llu)\n",
                    ep.to_string().c_str(),
                    static_cast<unsigned long long>(requests),
                    static_cast<unsigned long long>(minutes),
                    static_cast<unsigned long long>(seed_pool));
        std::printf("%8s %9s %10s %9s %9s %9s %8s %8s %8s\n", "clients",
                    "total", "rps", "p50_ms", "p95_ms", "p99_ms", "cached",
                    "rejected", "errors");

        bool any_failed = false;
        for (const unsigned clients : client_list) {
            const PhaseResult r = run_phase(ep, clients, requests, seed,
                                            minutes, seed_pool);
            const std::uint64_t total = r.totals.ok + r.totals.rejected +
                                        r.totals.errors;
            const double rps =
                r.wall_s > 0.0 ? static_cast<double>(total) / r.wall_s : 0.0;
            const bool have_lat = r.latency_ms.total() > 0;
            const double p50 =
                have_lat ? r.latency_ms.percentile(50.0) : 0.0;
            const double p95 =
                have_lat ? r.latency_ms.percentile(95.0) : 0.0;
            const double p99 =
                have_lat ? r.latency_ms.percentile(99.0) : 0.0;
            std::printf("%8u %9llu %10.1f %9.2f %9.2f %9.2f %8llu %8llu "
                        "%8llu\n",
                        clients, static_cast<unsigned long long>(total),
                        rps, p50, p95, p99,
                        static_cast<unsigned long long>(r.totals.cached),
                        static_cast<unsigned long long>(r.totals.rejected),
                        static_cast<unsigned long long>(r.totals.errors));
            const std::string p = "serve/c" + std::to_string(clients);
            json.metric(p + "/throughput_rps", rps, "requests/s");
            json.metric(p + "/p50_ms", p50, "ms");
            json.metric(p + "/p95_ms", p95, "ms");
            json.metric(p + "/p99_ms", p99, "ms");
            json.metric(p + "/completed",
                        static_cast<double>(r.totals.ok), "requests");
            json.metric(p + "/cached",
                        static_cast<double>(r.totals.cached), "requests");
            json.metric(p + "/rejected",
                        static_cast<double>(r.totals.rejected), "requests");
            json.metric(p + "/errors",
                        static_cast<double>(r.totals.errors), "requests");
            if (r.totals.errors > 0) any_failed = true;
        }

        if (drain && !embed) {
            mcps::serve::Client c{ep};
            (void)c.drain();
        }
        if (server) {
            server->request_drain();
            server->wait();
        }
        for (const auto& [file, prefix] : imports) {
            import_metrics(json, file, prefix);
        }
        if (!json.write()) return 1;
        return any_failed ? 1 : 0;
    } catch (const std::exception& e) {
        std::cerr << "mcps_load: " << e.what() << "\n";
        return 1;
    }
}
