/// \file mcps_analyze.cpp
/// \brief Classic standalone binary for the safety linter driver.
/// The implementation lives in tools/drivers/analyze_driver.cpp, shared
/// with `mcps analyze`; the shipped model set is
/// src/analysis/shipped.hpp.

#include "drivers.hpp"

int main(int argc, char** argv) {
    return mcps::drivers::analyze_main("mcps_analyze",
                                       {argv + 1, argv + argc});
}
