/// \file mcps_run.cpp
/// \brief Classic standalone binary for the scenario registry driver.
/// The implementation lives in tools/drivers/run_driver.cpp, shared
/// with `mcps run`.

#include "drivers.hpp"

int main(int argc, char** argv) {
    return mcps::drivers::run_main("mcps_run", {argv + 1, argv + argc});
}
