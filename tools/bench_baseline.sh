#!/usr/bin/env bash
# Captures the repo's performance baseline in one command:
#
#   1. builds bench_micro_kernel + bench_e10_ward_scale (+ mcps_trace);
#   2. runs both with --json and validates each report against the
#      benchio schema via `mcps_trace check-bench`;
#   3. merges the reports with the frozen pre-change reference
#      (bench/baselines/micro_kernel_prechange.json) into one
#      BENCH_<n>.json, computing speedup_vs_reference per metric.
#
#   tools/bench_baseline.sh [--quick] [--out FILE] [--pr N]
#
# --pr selects the campaign (default 6, the kernel-speed campaign):
#   --pr 6   bench_micro_kernel + bench_e10_ward_scale vs the frozen
#            pre-calendar-queue kernel -> BENCH_6.json
#   --pr 9   bench_physio_batch (SoA physio stepping + hospital engine)
#            vs the frozen scalar-stepping reference -> BENCH_9.json
#
# --quick shrinks the workloads (smoke mode: validates the flow, the
# numbers are meaningless — the merged file is written to the build tree
# instead of the repo root unless --out says otherwise). Without
# --quick, run on a QUIET machine: the kernel benchmarks are single-core
# and contention suppresses throughput by 30%+.
#
# The checked-in BENCH_6.json / BENCH_9.json at the repo root were
# produced by this script; see the README "Benchmark trajectory"
# section for the convention.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
quick=0
out=""
pr=6
while [[ $# -gt 0 ]]; do
    case "$1" in
        --quick) quick=1; shift ;;
        --out) out="$2"; shift 2 ;;
        --pr) pr="$2"; shift 2 ;;
        *) echo "usage: tools/bench_baseline.sh [--quick] [--out FILE] [--pr N]" >&2
           exit 2 ;;
    esac
done
if [[ "${pr}" != "6" && "${pr}" != "9" ]]; then
    echo "bench_baseline.sh: unknown campaign --pr ${pr} (know 6, 9)" >&2
    exit 2
fi

build="${repo_root}/build"
scratch="${build}/bench_baseline"
if [[ -z "${out}" ]]; then
    if [[ "${quick}" == "1" ]]; then out="${scratch}/BENCH_quick.json"
    else out="${repo_root}/BENCH_${pr}.json"; fi
fi

quick_flag=()
[[ "${quick}" == "1" ]] && quick_flag=(--quick)

if [[ "${pr}" == "9" ]]; then
    reference="${repo_root}/bench/baselines/physio_scalar_pr9_prechange.json"
    echo "==== build bench_physio_batch ===="
    cmake -S "${repo_root}" -B "${build}" >/dev/null
    cmake --build "${build}" -j "${jobs}" \
        --target bench_physio_batch mcps_trace >/dev/null
    mkdir -p "${scratch}"

    echo "==== run bench_physio_batch ===="
    "${build}/bench/bench_physio_batch" "${quick_flag[@]}" \
        --json "${scratch}/physio_batch.json"

    echo "==== validate report ===="
    "${build}/tools/mcps_trace" check-bench "${scratch}/physio_batch.json"

    echo "==== merge -> ${out} ===="
    python3 - "${reference}" "${scratch}/physio_batch.json" "${out}" \
        "${quick}" <<'PYEOF'
import json, sys

ref_path, live_path, out_path, quick = sys.argv[1:5]
ref = json.load(open(ref_path))
live = json.load(open(live_path))

def by_name(report):
    return {m["name"]: m["value"] for m in report["metrics"]}

ref_m, live_m = by_name(ref), by_name(live)
# The frozen reference is the scalar (pre-change) stepping rate; the
# campaign's headline is the SoA batch measured against it.
speedup = {}
if ref_m.get("physio.steps_per_sec", 0) > 0:
    pre = ref_m["physio.steps_per_sec"]
    if "physio.batch.steps_per_sec" in live_m:
        speedup["physio.steps_per_sec"] = round(
            live_m["physio.batch.steps_per_sec"] / pre, 3)
    if "physio.scalar.steps_per_sec" in live_m:
        speedup["physio.scalar.sanity_vs_reference"] = round(
            live_m["physio.scalar.steps_per_sec"] / pre, 3)

merged = {
    "bench_set": "physio_batch_campaign",
    "pr": 9,
    "generated_by": "tools/bench_baseline.sh --pr 9"
                    + (" --quick" if quick == "1" else ""),
    "reference": {"path": "bench/baselines/physio_scalar_pr9_prechange.json",
                  **ref},
    "runs": {"physio_batch": live},
    "speedup_vs_reference": speedup,
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

for name, ratio in sorted(speedup.items()):
    print(f"  {name:45s} {ratio:6.2f}x")
if quick != "1":
    sane = speedup.get("physio.scalar.sanity_vs_reference", 1.0)
    if not 0.7 <= sane <= 1.3:
        print("WARNING: the scalar path drifted "
              f"{sane}x from the frozen reference — noisy machine or an "
              "accidental scalar-path change; the batch speedup above is "
              "not comparable.", file=sys.stderr)
PYEOF

    echo "baseline written: ${out}"
    exit 0
fi

reference="${repo_root}/bench/baselines/micro_kernel_prechange.json"

echo "==== build benches ===="
cmake -S "${repo_root}" -B "${build}" >/dev/null
cmake --build "${build}" -j "${jobs}" \
    --target bench_micro_kernel bench_e10_ward_scale mcps_trace >/dev/null
mkdir -p "${scratch}"

quick_flag=()
[[ "${quick}" == "1" ]] && quick_flag=(--quick)

echo "==== run bench_micro_kernel ===="
"${build}/bench/bench_micro_kernel" "${quick_flag[@]}" \
    --json "${scratch}/micro_kernel.json"

echo "==== run bench_e10_ward_scale ===="
"${build}/bench/bench_e10_ward_scale" "${quick_flag[@]}" \
    --json "${scratch}/e10_ward_scale.json"

echo "==== validate reports ===="
"${build}/tools/mcps_trace" check-bench "${scratch}/micro_kernel.json"
"${build}/tools/mcps_trace" check-bench "${scratch}/e10_ward_scale.json"

echo "==== merge -> ${out} ===="
python3 - "${reference}" "${scratch}/micro_kernel.json" \
    "${scratch}/e10_ward_scale.json" "${out}" "${quick}" <<'PYEOF'
import json, sys

ref_path, micro_path, e10_path, out_path, quick = sys.argv[1:6]
ref = json.load(open(ref_path))
micro = json.load(open(micro_path))
e10 = json.load(open(e10_path))

def by_name(report):
    return {m["name"]: m["value"] for m in report["metrics"]}

ref_m, micro_m = by_name(ref), by_name(micro)
speedup = {
    name: round(micro_m[name] / ref_m[name], 3)
    for name in ref_m
    if name in micro_m and ref_m[name] > 0
}

merged = {
    "bench_set": "kernel_speed_campaign",
    "pr": 6,
    "generated_by": "tools/bench_baseline.sh" + (" --quick" if quick == "1" else ""),
    "reference": {"path": "bench/baselines/micro_kernel_prechange.json", **ref},
    "runs": {"micro_kernel": micro, "e10_ward_scale": e10},
    "speedup_vs_reference": speedup,
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

for name, ratio in sorted(speedup.items()):
    print(f"  {name:45s} {ratio:6.2f}x")
key = "schedule_dispatch_events_per_sec_core"
if quick != "1" and speedup.get(key, 0.0) < 3.0:
    print(f"WARNING: {key} speedup {speedup.get(key)}x is below the 3x "
          "campaign target — machine contention? Re-run on a quiet host.",
          file=sys.stderr)
PYEOF

echo "baseline written: ${out}"
