/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the mcps framework: one spec line
/// names a registered closed-loop PCA scenario, the registry runs it,
/// and the artifacts carry the safety summary.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
/// The same spec line reproduces the same run from the mcps_run CLI:
///   ./build/tools/mcps_run run --spec 'pca seed=7 minutes=120 ...'

#include <cstdio>

#include "scenario/scenario.hpp"

int main() {
    using namespace mcps;

    // 1. Describe the run: the registered closed-loop "pca" scenario
    //    with an opioid-sensitive patient under PCA-by-proxy pressing
    //    (worst case) and the default dual-sensor interlock.
    const scenario::ScenarioSpec spec = scenario::parse_spec(
        "pca seed=7 minutes=120 patient=opioid-sensitive");

    // 2. Run it through the registry.
    const scenario::RunArtifacts r = scenario::registry().run(spec);

    // 3. Report.
    std::printf("== quickstart: %s ==\n", spec.to_text().c_str());
    std::printf("simulated             : %.1f h\n",
                static_cast<double>(spec.minutes) / 60.0);
    std::printf("drug delivered        : %.2f mg\n", r.at("total_drug_mg"));
    std::printf("boluses (req/deliv)   : %.0f / %.0f\n",
                r.at("boluses_requested"), r.at("boluses_delivered"));
    std::printf("min SpO2 (truth)      : %.1f %%\n", r.at("min_spo2"));
    std::printf("time SpO2 < 90%%       : %.1f s\n",
                r.at("time_spo2_below_90_s"));
    std::printf("severe hypoxemia      : %s\n",
                r.at("severe_hypoxemia") > 0 ? "YES" : "no");
    std::printf("interlock stops       : %.0f\n", r.at("interlock_stops"));
    if (r.at("detection_latency_s") >= 0) {
        std::printf("detection latency     : %.1f s\n",
                    r.at("detection_latency_s"));
    }
    std::printf("mean pain score       : %.1f / 10\n", r.at("mean_pain"));
    std::printf("run fingerprint       : %s\n", r.fingerprint_hex().c_str());
    return 0;
}
