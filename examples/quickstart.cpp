/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the mcps framework: assemble a
/// closed-loop PCA system around a virtual patient, run two simulated
/// hours, and print the safety summary.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "core/core.hpp"

int main() {
    using namespace mcps;
    using namespace mcps::sim::literals;

    // 1. Describe the scenario: an opioid-sensitive patient on PCA
    //    morphine with the default dual-sensor interlock.
    core::PcaScenarioConfig cfg;
    cfg.seed = 7;
    cfg.duration = 2_h;
    cfg.patient = physio::nominal_parameters(physio::Archetype::kOpioidSensitive);
    cfg.demand_mode = core::DemandMode::kProxy;  // worst case: PCA by proxy
    cfg.interlock = core::InterlockConfig{};     // closed loop ON

    // 2. Run it.
    const core::PcaScenarioResult r = core::run_pca_scenario(cfg);

    // 3. Report.
    std::printf("== quickstart: closed-loop PCA, opioid-sensitive patient ==\n");
    std::printf("simulated             : %.1f h\n", cfg.duration.to_seconds() / 3600);
    std::printf("drug delivered        : %.2f mg\n", r.total_drug_mg);
    std::printf("boluses (req/deliv)   : %llu / %llu\n",
                static_cast<unsigned long long>(r.pump.boluses_requested),
                static_cast<unsigned long long>(r.pump.boluses_delivered));
    std::printf("min SpO2 (truth)      : %.1f %%\n", r.min_spo2);
    std::printf("time SpO2 < 90%%       : %.1f s\n", r.time_spo2_below_90_s);
    std::printf("severe hypoxemia      : %s\n", r.severe_hypoxemia ? "YES" : "no");
    std::printf("interlock stops       : %llu\n",
                static_cast<unsigned long long>(r.interlock.stops_issued));
    if (r.detection_latency_s) {
        std::printf("detection latency     : %.1f s\n", *r.detection_latency_s);
    }
    std::printf("mean pain score       : %.1f / 10\n", r.mean_pain);
    return 0;
}
