/// \file pca_closed_loop.cpp
/// \brief The paper's flagship scenario, side by side: open-loop PCA vs.
/// SpO2-only interlock vs. dual-sensor interlock for a high-risk patient
/// receiving proxy boluses.
///
/// Demonstrates the core claim of the DAC'10 vision: the patient's own
/// sedation no longer protects them once someone else presses the button
/// — only the closed loop does.

#include <iostream>

#include "core/core.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

namespace {

core::PcaScenarioResult run_variant(
    const std::optional<core::InterlockConfig>& interlock) {
    core::PcaScenarioConfig cfg;
    cfg.seed = 99;
    cfg.duration = 4_h;
    cfg.patient = physio::nominal_parameters(physio::Archetype::kHighRisk);
    cfg.demand_mode = core::DemandMode::kProxy;
    cfg.interlock = interlock;
    return core::run_pca_scenario(cfg);
}

}  // namespace

int main() {
    sim::Table table({"configuration", "min_spo2_%", "t_below_90_s",
                      "severe_hypox", "drug_mg", "stops", "mean_pain"});

    auto add_row = [&table](const std::string& label,
                            const core::PcaScenarioResult& r) {
        table.row()
            .cell(label)
            .cell(r.min_spo2, 1)
            .cell(r.time_spo2_below_90_s, 1)
            .cell(r.severe_hypoxemia ? "YES" : "no")
            .cell(r.total_drug_mg, 2)
            .cell(static_cast<std::uint64_t>(r.interlock.stops_issued))
            .cell(r.mean_pain, 1);
    };

    add_row("open-loop (no interlock)", run_variant(std::nullopt));

    core::InterlockConfig spo2_only;
    spo2_only.mode = core::InterlockMode::kSpO2Only;
    add_row("closed-loop spo2-only", run_variant(spo2_only));

    core::InterlockConfig dual;
    dual.mode = core::InterlockMode::kDualSensor;
    add_row("closed-loop dual-sensor", run_variant(dual));

    table.print(std::cout,
                "PCA-by-proxy on a high-risk patient (4 simulated hours)");
    std::cout << "\nThe interlock variants stop the pump as respiratory\n"
                 "depression develops; capnometry (dual) reacts before the\n"
                 "SpO2 averaging lag, trimming the hypoxic exposure.\n";
    return 0;
}
