/// \file pca_closed_loop.cpp
/// \brief The paper's flagship scenario, side by side: open-loop PCA vs.
/// SpO2-only interlock vs. dual-sensor interlock for a high-risk patient
/// receiving proxy boluses.
///
/// Demonstrates the core claim of the DAC'10 vision: the patient's own
/// sedation no longer protects them once someone else presses the button
/// — only the closed loop does.

#include <iostream>

#include "scenario/scenario.hpp"
#include "sim/table.hpp"

using namespace mcps;

namespace {

scenario::RunArtifacts run_variant(const char* interlock_knob) {
    scenario::ScenarioSpec spec;
    spec.name = "pca";
    spec.seed = 99;
    spec.minutes = 240;
    spec.set("interlock", interlock_knob);
    return scenario::registry().run(spec);
}

}  // namespace

int main() {
    sim::Table table({"configuration", "min_spo2_%", "t_below_90_s",
                      "severe_hypox", "drug_mg", "stops", "mean_pain"});

    auto add_row = [&table](const std::string& label,
                            const scenario::RunArtifacts& r) {
        table.row()
            .cell(label)
            .cell(r.at("min_spo2"), 1)
            .cell(r.at("time_spo2_below_90_s"), 1)
            .cell(r.at("severe_hypoxemia") > 0 ? "YES" : "no")
            .cell(r.at("total_drug_mg"), 2)
            .cell(static_cast<std::uint64_t>(r.at("interlock_stops")))
            .cell(r.at("mean_pain"), 1);
    };

    add_row("open-loop (no interlock)", run_variant("off"));
    add_row("closed-loop spo2-only", run_variant("spo2"));
    add_row("closed-loop dual-sensor", run_variant("dual"));

    table.print(std::cout,
                "PCA-by-proxy on a high-risk patient (4 simulated hours)");
    std::cout << "\nThe interlock variants stop the pump as respiratory\n"
                 "depression develops; capnometry (dual) reacts before the\n"
                 "SpO2 averaging lag, trimming the hypoxic exposure.\n";
    return 0;
}
