/// \file xray_vent_sync.cpp
/// \brief The on-demand interoperability scenario: coordinated
/// ventilator pause during portable chest X-ray, automated (ICE app)
/// vs. the manual human baseline.

#include <iostream>

#include "scenario/scenario.hpp"
#include "sim/table.hpp"

using namespace mcps;

int main() {
    sim::Table table({"coordination", "procedures", "sharp_images",
                      "sharp_rate", "mean_apnea_s", "max_apnea_s",
                      "auto_resumes"});

    for (const char* name : {"xray-manual", "xray"}) {
        scenario::ScenarioSpec spec;
        spec.name = name;
        spec.seed = 11;
        spec.set("procedures", "40");
        const auto r = scenario::registry().run(spec);
        table.row()
            .cell(name)
            .cell(static_cast<std::uint64_t>(r.at("procedures")))
            .cell(static_cast<std::uint64_t>(r.at("sharp_images")))
            .cell(r.at("sharp_rate"), 3)
            .cell(r.at("mean_apnea_s"), 2)
            .cell(r.at("max_apnea_s"), 2)
            .cell(static_cast<std::uint64_t>(r.at("safety_auto_resumes")));
    }

    table.print(std::cout, "Chest X-ray on a ventilated patient (40 procedures)");
    std::cout << "\nAutomated ICE coordination takes every film inside the\n"
                 "pause window (sharp) with a short, tightly bounded apnea;\n"
                 "manual timing blurs films and occasionally leans on the\n"
                 "ventilator's safety auto-resume.\n";
    return 0;
}
