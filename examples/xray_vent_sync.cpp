/// \file xray_vent_sync.cpp
/// \brief The on-demand interoperability scenario: coordinated
/// ventilator pause during portable chest X-ray, automated (ICE app)
/// vs. the manual human baseline.

#include <iostream>

#include "core/core.hpp"
#include "sim/table.hpp"

using namespace mcps;

int main() {
    sim::Table table({"coordination", "procedures", "sharp_images",
                      "sharp_rate", "mean_apnea_s", "max_apnea_s",
                      "auto_resumes"});

    for (const auto mode :
         {core::CoordinationMode::kManual, core::CoordinationMode::kAutomated}) {
        core::XrayScenarioConfig cfg;
        cfg.seed = 11;
        cfg.mode = mode;
        cfg.procedures = 40;
        const auto r = core::run_xray_scenario(cfg);
        table.row()
            .cell(std::string{core::to_string(mode)})
            .cell(static_cast<std::uint64_t>(r.procedures))
            .cell(static_cast<std::uint64_t>(r.sharp_images))
            .cell(r.sharp_rate, 3)
            .cell(r.mean_apnea_s, 2)
            .cell(r.max_apnea_s, 2)
            .cell(static_cast<std::uint64_t>(r.safety_auto_resumes));
    }

    table.print(std::cout, "Chest X-ray on a ventilated patient (40 procedures)");
    std::cout << "\nAutomated ICE coordination takes every film inside the\n"
                 "pause window (sharp) with a short, tightly bounded apnea;\n"
                 "manual timing blurs films and occasionally leans on the\n"
                 "ventilator's safety auto-resume.\n";
    return 0;
}
