/// \file on_demand_assembly.cpp
/// \brief The paper's on-demand certification loop, end to end: a ward
/// assembles a closed-loop PCA system from whatever devices are present,
/// certifies the configuration (GSN case from the assembly report),
/// deploys only if certifiable, then re-certifies after a configuration
/// change — exactly the re-certification cycle the DAC'10 vision calls
/// for.

#include <iostream>

#include "core/core.hpp"
#include "ice/ice.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

int main() {
    sim::Simulation sim{7};
    sim::TraceRecorder trace;
    net::Bus bus{sim, net::ChannelParameters{}};
    physio::Patient patient{
        physio::nominal_parameters(physio::Archetype::kOpioidSensitive)};
    devices::DeviceContext ctx{sim, bus, trace};

    // The devices that happen to be at this bedside.
    devices::GpcaPump pump{ctx, "pump1", patient, devices::Prescription{}};
    devices::PulseOximeter oxi{ctx, "oxi1", patient};
    for (devices::Device* d :
         std::initializer_list<devices::Device*>{&pump, &oxi}) {
        d->set_heartbeat_period(2_s);
        d->start();
    }
    ice::DeviceRegistry registry;
    registry.add(pump);
    registry.add(oxi);

    core::PcaInterlock app{ctx, "pca_interlock", core::InterlockConfig{}};

    // --- Attempt 1: dual-sensor interlock, but no capnometer present ----
    auto report = ice::check_assembly(app, registry);
    auto ac = ice::build_assembly_case(report);
    std::cout << ac.to_text() << "\n";
    auto audit = ac.audit();
    std::cout << "certifiable: " << (audit.certifiable ? "YES" : "NO")
              << "  (satisfiable=" << report.satisfiable << ")\n\n";

    // --- A capnometer is wheeled in; re-certify ---------------------------
    devices::Capnometer cap{ctx, "cap1", patient};
    cap.set_heartbeat_period(2_s);
    cap.start();
    registry.add(cap);
    std::cout << "-- capnometer added to the bedside; re-certifying --\n\n";

    report = ice::check_assembly(app, registry);
    ac = ice::build_assembly_case(report);
    std::cout << ac.to_text() << "\n";
    audit = ac.audit();
    std::cout << "certifiable: " << (audit.certifiable ? "YES" : "NO") << "\n";
    for (const auto& w : audit.warnings) std::cout << "  note: " << w << '\n';

    // --- Deploy only the certified configuration -------------------------
    if (!audit.certifiable) return 1;
    ice::Supervisor supervisor{ctx, "supervisor1", registry};
    supervisor.start();
    const auto deploy = supervisor.deploy(app);
    std::cout << "\ndeployed: " << (deploy.ok ? "yes" : deploy.error) << " (";
    for (const auto& d : deploy.bound_devices) std::cout << ' ' << d;
    std::cout << " )\n";

    // Run a short closed-loop session to show it actually operates.
    sim.schedule_periodic(500_ms, [&] { patient.step(0.5); });
    patient.set_infusion_rate(physio::InfusionRate::mg_per_hour(6.0));
    sim.run_for(45_min);
    std::cout << "after 45 min with a runaway co-infusion: interlock state="
              << core::to_string(app.state())
              << " stops=" << app.stats().stops_issued
              << " pump=" << devices::to_string(pump.state()) << '\n';
    return 0;
}
