/// \file verify_pump.cpp
/// \brief The model-based development workflow end to end: model-check
/// the GPCA pump and closed-loop response properties, demonstrate a
/// counterexample on an injected firmware defect, and assemble the
/// results into a GSN assurance case.

#include <iostream>

#include "assurance/assurance.hpp"
#include "ta/ta.hpp"

using namespace mcps;

int main() {
    // --- 1. Verify the correct models ---------------------------------
    const auto report = ta::verify_gpca_suite();
    std::cout << "P1 (lockout, R1):   "
              << (report.lockout_safe ? "SAFE" : "VIOLATED") << "  ("
              << report.lockout_details.states_explored << " states)\n";
    std::cout << "P2 (stop deadline): "
              << (report.response_safe ? "SAFE" : "VIOLATED") << "  ("
              << report.response_details.states_explored << " states)\n";

    // --- 2. Counterexample on an injected defect ----------------------
    ta::PumpModelParams faulty;
    faulty.faulty_no_lockout_guard = true;
    const auto cex =
        ta::check_reachability(ta::build_pump_lockout_model(faulty), "Violation");
    std::cout << "\nInjected defect (lockout guard missing on remote path):\n";
    std::cout << "  violation reachable: " << (cex.reachable ? "YES" : "no")
              << "\n  counterexample:";
    for (const auto& step : cex.trace) std::cout << ' ' << step;
    std::cout << '\n';

    // --- 3. Assemble the assurance case --------------------------------
    auto ac = assurance::build_gpca_case_skeleton();
    ac.set_evidence("Sn1",
                    report.lockout_safe ? assurance::EvidenceStatus::kPassed
                                        : assurance::EvidenceStatus::kFailed);
    ac.set_evidence("Sn2",
                    report.response_safe ? assurance::EvidenceStatus::kPassed
                                         : assurance::EvidenceStatus::kFailed);
    // Simulation campaign evidence (attached by the E1/E8 benches in a
    // real pipeline; marked passed here for the walkthrough).
    ac.set_evidence("Sn3", assurance::EvidenceStatus::kPassed);
    ac.set_evidence("Sn4", assurance::EvidenceStatus::kPassed);

    const auto audit = ac.audit();
    std::cout << '\n' << ac.to_text();
    std::cout << "audit: well_formed=" << audit.well_formed
              << " coverage=" << audit.evidence_coverage
              << " certifiable=" << audit.certifiable << '\n';
    for (const auto& w : audit.warnings) std::cout << "  warning: " << w << '\n';

    // --- 4. Hazard log --------------------------------------------------
    const auto log = assurance::build_gpca_hazard_log();
    std::cout << '\n' << log.to_text();
    std::cout << "all hazards controlled: "
              << (log.all_controlled() ? "yes" : "NO") << '\n';
    return 0;
}
