/// \file smart_alarm_ward.cpp
/// \brief Context-aware intelligence: classic threshold alarms vs. the
/// fused smart alarm on a ward shift full of motion artifacts.
///
/// A stable patient is monitored for six hours by a pulse oximeter that
/// suffers frequent motion artifacts. The classic monitor rings on every
/// artifact; the smart alarm cross-checks against capnometry and pulse
/// and stays quiet — yet both engines are also run against a real
/// overdose to show the smart alarm still catches true events.

#include <iostream>

#include "core/core.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

namespace {

core::PcaScenarioResult run_shift(bool overdose) {
    core::PcaScenarioConfig cfg;
    cfg.seed = 2024;
    cfg.duration = 6_h;
    cfg.patient = physio::nominal_parameters(
        overdose ? physio::Archetype::kOpioidSensitive
                 : physio::Archetype::kTypicalAdult);
    cfg.demand_mode =
        overdose ? core::DemandMode::kProxy : core::DemandMode::kNormal;
    cfg.interlock = std::nullopt;  // alarms only; no automatic stop
    cfg.oximeter.artifact_probability = 0.004;  // ~14 artifacts/hour
    cfg.oximeter.artifact_magnitude = -20.0;
    cfg.with_monitor = true;
    cfg.with_smart_alarm = true;
    return core::run_pca_scenario(cfg);
}

}  // namespace

int main() {
    sim::Table table({"shift", "true_event", "threshold_alarms",
                      "smart_alarms", "smart_critical"});

    const auto quiet = run_shift(/*overdose=*/false);
    table.row()
        .cell("stable patient")
        .cell("no")
        .cell(static_cast<std::uint64_t>(quiet.monitor_alarm_count))
        .cell(static_cast<std::uint64_t>(quiet.smart_alarm_count))
        .cell(static_cast<std::uint64_t>(quiet.smart_critical_count));

    const auto od = run_shift(/*overdose=*/true);
    table.row()
        .cell("overdose developing")
        .cell(od.severe_hypoxemia ? "YES" : "mild")
        .cell(static_cast<std::uint64_t>(od.monitor_alarm_count))
        .cell(static_cast<std::uint64_t>(od.smart_alarm_count))
        .cell(static_cast<std::uint64_t>(od.smart_critical_count));

    table.print(std::cout, "Six-hour ward shift with motion artifacts");
    std::cout << "\nThreshold alarms fire on artifacts (false alarms on the\n"
                 "stable shift); the fused engine suppresses uncorroborated\n"
                 "single-channel anomalies but still escalates the real\n"
                 "overdose to critical.\n";
    return 0;
}
