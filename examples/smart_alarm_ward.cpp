/// \file smart_alarm_ward.cpp
/// \brief Context-aware intelligence: classic threshold alarms vs. the
/// fused smart alarm on a ward shift full of motion artifacts.
///
/// A stable patient is monitored for six hours by a pulse oximeter that
/// suffers frequent motion artifacts. The classic monitor rings on every
/// artifact; the smart alarm cross-checks against capnometry and pulse
/// and stays quiet — yet both engines are also run against a real
/// overdose to show the smart alarm still catches true events.

#include <iostream>

#include "scenario/scenario.hpp"
#include "sim/table.hpp"

using namespace mcps;

namespace {

scenario::RunArtifacts run_shift(bool overdose) {
    // The registered "smart-alarm" shift: alarms only (no interlock),
    // ward-grade motion artifacts, monitor + fused smart alarm on. The
    // overdose variant swaps in the sensitive patient under proxy
    // pressing.
    scenario::ScenarioSpec spec;
    spec.name = "smart-alarm";
    spec.seed = 2024;
    spec.minutes = 360;
    if (overdose) {
        spec.set("patient", "opioid-sensitive");
        spec.set("demand", "proxy");
    }
    return scenario::registry().run(spec);
}

}  // namespace

int main() {
    sim::Table table({"shift", "true_event", "threshold_alarms",
                      "smart_alarms", "smart_critical"});

    const auto quiet = run_shift(/*overdose=*/false);
    table.row()
        .cell("stable patient")
        .cell("no")
        .cell(static_cast<std::uint64_t>(quiet.at("monitor_alarms")))
        .cell(static_cast<std::uint64_t>(quiet.at("smart_alarms")))
        .cell(static_cast<std::uint64_t>(quiet.at("smart_critical")));

    const auto od = run_shift(/*overdose=*/true);
    table.row()
        .cell("overdose developing")
        .cell(od.at("severe_hypoxemia") > 0 ? "YES" : "mild")
        .cell(static_cast<std::uint64_t>(od.at("monitor_alarms")))
        .cell(static_cast<std::uint64_t>(od.at("smart_alarms")))
        .cell(static_cast<std::uint64_t>(od.at("smart_critical")));

    table.print(std::cout, "Six-hour ward shift with motion artifacts");
    std::cout << "\nThreshold alarms fire on artifacts (false alarms on the\n"
                 "stable shift); the fused engine suppresses uncorroborated\n"
                 "single-channel anomalies but still escalates the real\n"
                 "overdose to critical.\n";
    return 0;
}
