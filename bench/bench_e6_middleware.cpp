/// \file bench_e6_middleware.cpp
/// \brief Experiment E6 — the ICE middleware scales to realistic device
/// ensembles: on-demand assembly cost, bus throughput, and heartbeat
/// failure-detection latency trade-offs.
///
/// E6a: device-count sweep. N pulse oximeters (each on its own bed
///      topic) publish at 1 Hz with heartbeats; wall-clock cost per
///      simulated minute and bus delivery stats are reported.
/// E6b: heartbeat-period vs detection-latency trade-off: a device
///      crashes mid-run; the supervisor's detection delay is measured in
///      simulated time across heartbeat periods and timeout multiples.

#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_io.hpp"
#include "core/core.hpp"
#include "ice/ice.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

namespace {

double wall_ms(const std::function<void()>& f) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    mcps::benchio::JsonReporter json{argc, argv, "e6_middleware"};
    json.set_seed(7);
    const bool quick = mcps::benchio::quick_mode(argc, argv);
    std::cout << "E6: ICE middleware scalability\n\n";

    // ---- E6a: device-count sweep --------------------------------------
    {
        sim::Table t({"devices", "published", "delivered", "events",
                      "wall_ms_per_sim_min", "mean_delivery_ms"});
        // The 128-device ensemble dominates; --quick stops at 8.
        const std::vector<std::size_t> ensemble_sizes =
            quick ? std::vector<std::size_t>{2, 8}
                  : std::vector<std::size_t>{2, 8, 32, 128};
        for (const std::size_t n : ensemble_sizes) {
            sim::Simulation sim{7};
            sim::TraceRecorder trace;
            net::ChannelParameters ch;
            ch.base_latency = 5_ms;
            ch.jitter_sd = 1_ms;
            net::Bus bus{sim, ch};
            devices::DeviceContext ctx{sim, bus, trace};
            physio::Patient patient{
                physio::nominal_parameters(physio::Archetype::kTypicalAdult)};
            ice::DeviceRegistry registry;

            std::vector<std::unique_ptr<devices::PulseOximeter>> sensors;
            for (std::size_t i = 0; i < n; ++i) {
                devices::PulseOximeterConfig cfg;
                cfg.bed = "bed" + std::to_string(i);
                auto d = std::make_unique<devices::PulseOximeter>(
                    ctx, "oxi" + std::to_string(i), patient, cfg);
                d->set_heartbeat_period(2_s);
                d->start();
                registry.add(*d);
                sensors.push_back(std::move(d));
            }
            ice::Supervisor sup{ctx, "sup", registry};
            sup.start();
            // One subscriber soaking up every vitals topic (a central
            // monitoring station).
            std::uint64_t received = 0;
            bus.subscribe("station", "vitals/*",
                          [&received](const net::Message&) { ++received; });

            sim.schedule_periodic(500_ms, [&] { patient.step(0.5); });
            const double ms =
                wall_ms([&] { sim.run_until(sim::SimTime::origin() + 1_min); });

            t.row()
                .cell(static_cast<std::uint64_t>(n))
                .cell(bus.stats().published)
                .cell(bus.stats().delivered)
                .cell(sim.events_dispatched())
                .cell(ms, 1)
                .cell(bus.stats().delivery_latency_ms.empty()
                          ? 0.0
                          : bus.stats().delivery_latency_ms.mean(),
                      2);
            const std::string key =
                "devices." + std::to_string(n) + ".wall_ms_per_sim_min";
            json.metric(key, ms, "ms");
        }
        t.print(std::cout, "E6a: device-count sweep (1 simulated minute)");
        std::cout << '\n';
    }

    // ---- E6b: heartbeat trade-off --------------------------------------
    {
        sim::Table t({"hb_period_s", "timeout_s", "detect_latency_s",
                      "hb_msgs_per_min_per_device"});
        for (const auto period : {500_ms, 1_s, 2_s, 5_s}) {
            const auto timeout = period * 3;
            sim::Simulation sim{11};
            sim::TraceRecorder trace;
            net::Bus bus{sim, net::ChannelParameters::ideal()};
            devices::DeviceContext ctx{sim, bus, trace};
            physio::Patient patient{
                physio::nominal_parameters(physio::Archetype::kTypicalAdult)};
            ice::DeviceRegistry registry;
            devices::PulseOximeter oxi{ctx, "oxi", patient};
            oxi.set_heartbeat_period(period);
            oxi.start();
            registry.add(oxi);

            ice::SupervisorConfig scfg;
            scfg.heartbeat_timeout = timeout;
            scfg.check_period = 250_ms;
            ice::Supervisor sup{ctx, "sup", registry, scfg};
            sup.start();

            // Minimal app so the supervisor watches the device.
            struct WatchApp : ice::VmdApp {
                WatchApp() : ice::VmdApp{"watch"} {}
                std::vector<ice::Requirement> requirements() const override {
                    return {{devices::DeviceKind::kPulseOximeter, {}, "oxi"}};
                }
                void bind(const std::vector<ice::DeviceDescriptor>&) override {}
                void on_app_start() override {}
                void on_app_stop() override {}
                void on_device_lost(const std::string&) override {
                    if (lost_at) return;
                    lost_at = owner->now();
                }
                sim::Simulation* owner = nullptr;
                std::optional<sim::SimTime> lost_at;
            } app;
            app.owner = &sim;
            if (!sup.deploy(app).ok) return 1;

            const sim::SimTime crash_at = sim::SimTime::origin() + 30_s;
            sim.schedule_at(crash_at, [&] { oxi.crash(); });
            sim.run_until(sim::SimTime::origin() + 2_min);

            t.row()
                .cell(period.to_seconds(), 2)
                .cell(timeout.to_seconds(), 2)
                .cell(app.lost_at ? (*app.lost_at - crash_at).to_seconds()
                                  : -1.0,
                      2)
                .cell(60.0 / period.to_seconds(), 1);
            json.metric("heartbeat." + period.to_string() +
                            ".detect_latency_s",
                        app.lost_at ? (*app.lost_at - crash_at).to_seconds()
                                    : -1.0,
                        "s");
        }
        t.print(std::cout,
                "E6b: heartbeat period vs crash-detection latency");
        std::cout << '\n';
    }

    std::cout
        << "Expected shape: wall cost and traffic grow linearly with device\n"
           "count (topic filtering keeps delivery targeted); crash-detection\n"
           "latency tracks ~timeout (3x heartbeat period), making the\n"
           "bandwidth/latency trade explicit.\n";
    json.write();
    return 0;
}
