# Executes every experiment binary in --quick mode with --json and
# validates each report against the benchio schema via `mcps_trace
# check-bench`. Driven by the `bench_json_smoke` ctest; fails on the
# first bench that crashes or emits a malformed report.
#
# Expected -D variables: BENCH_DIR (directory holding the bench
# binaries), MCPS_TRACE (path to the mcps_trace binary), OUT_DIR
# (scratch directory for the JSON reports).

foreach(var BENCH_DIR MCPS_TRACE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_json_smoke: missing -D${var}")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

set(benches
  bench_e1_pca_interlock
  bench_e2_network
  bench_e3_smart_alarm
  bench_e4_xray_vent
  bench_e5_verification
  bench_e6_middleware
  bench_e7_physio
  bench_e8_fault_injection
  bench_e9_alarm_fatigue
  bench_e10_ward_scale
  bench_micro_kernel
)

foreach(bench IN LISTS benches)
  set(report "${OUT_DIR}/${bench}.json")
  message(STATUS "${bench} --quick --json ${report}")
  execute_process(
    COMMAND "${BENCH_DIR}/${bench}" --quick --json "${report}"
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
      "${bench} exited with ${run_rc}\nstdout:\n${run_out}\nstderr:\n${run_err}")
  endif()
  execute_process(
    COMMAND "${MCPS_TRACE}" check-bench "${report}"
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
  if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
      "${bench}: invalid --json report\n${check_out}${check_err}")
  endif()
endforeach()

list(LENGTH benches bench_count)
message(STATUS "all ${bench_count} bench reports validated")
