/// \file bench_physio_batch.cpp
/// \brief PR-9 physio-stepping campaign: scalar `Patient` loop vs the
/// struct-of-arrays `PatientBatch`, plus end-to-end hospital-engine
/// throughput at population scale.
///
/// The scalar numbers double as the frozen reference for BENCH_9.json
/// (bench/baselines/physio_scalar_pr9_prechange.json): the scalar path
/// is exactly the pre-change per-patient stepping, so measuring it on
/// the same machine/workload as the batch gives the honest before/after.

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "hospital/hospital_engine.hpp"
#include "physio/patient.hpp"
#include "physio/patient_batch.hpp"
#include "physio/population.hpp"
#include "sim/table.hpp"

using namespace mcps;
using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<physio::PatientParameters> make_cohort(std::size_t n) {
    const auto& archetypes = physio::all_archetypes();
    std::vector<physio::PatientParameters> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(physio::sample_patient_indexed(
            archetypes[i % archetypes.size()], 42, i));
    }
    return out;
}

/// Patient-steps/sec for the scalar loop (best of `reps`).
double scalar_steps_per_sec(const std::vector<physio::PatientParameters>& ps,
                            int ticks, int reps) {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        std::vector<physio::Patient> pats;
        pats.reserve(ps.size());
        for (const auto& p : ps) pats.emplace_back(p);
        const auto t0 = Clock::now();
        for (int t = 0; t < ticks; ++t) {
            for (auto& p : pats) p.step(1.0);
        }
        const double dt = secs_since(t0);
        const double rate =
            static_cast<double>(ps.size()) * ticks / (dt > 0 ? dt : 1e-9);
        if (rate > best) best = rate;
    }
    return best;
}

/// Patient-steps/sec for the SoA batch (best of `reps`).
double batch_steps_per_sec(const std::vector<physio::PatientParameters>& ps,
                           int ticks, int reps) {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        physio::PatientBatch batch;
        batch.reserve(ps.size());
        for (const auto& p : ps) (void)batch.add(p);
        const auto t0 = Clock::now();
        for (int t = 0; t < ticks; ++t) batch.step_all(1.0);
        const double dt = secs_since(t0);
        const double rate =
            static_cast<double>(ps.size()) * ticks / (dt > 0 ? dt : 1e-9);
        if (rate > best) best = rate;
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    benchio::JsonReporter json{argc, argv, "physio_batch"};
    json.set_seed(1);
    const bool quick = benchio::quick_mode(argc, argv);

    const std::size_t cohort_n = quick ? 64 : 1024;
    const int ticks = quick ? 60 : 600;
    const int reps = quick ? 1 : 7;
    std::cout << "PR-9: SoA physio batching vs scalar stepping\n\n";

    // ---- raw stepping throughput --------------------------------------
    const auto cohort = make_cohort(cohort_n);
    const double scalar = scalar_steps_per_sec(cohort, ticks, reps);
    const double batch = batch_steps_per_sec(cohort, ticks, reps);
    {
        sim::Table t({"path", "patients", "steps_per_sec", "speedup"});
        t.row().cell("scalar").cell(static_cast<std::int64_t>(cohort_n))
            .cell(scalar, 0).cell(1.0, 2);
        t.row().cell("soa-batch").cell(static_cast<std::int64_t>(cohort_n))
            .cell(batch, 0).cell(batch / scalar, 2);
        t.print(std::cout, "physio stepping throughput (dt=1 s, best-of-" +
                               std::to_string(reps) + ")");
        std::cout << '\n';
    }
    json.metric("physio.scalar.steps_per_sec", scalar, "steps/s");
    json.metric("physio.batch.steps_per_sec", batch, "steps/s");

    // ---- hospital engine, population scale ----------------------------
    {
        sim::Table t({"patients", "wards", "jobs", "steps_per_sec",
                      "state_mib"});
        struct Scale {
            std::size_t patients, wards;
            unsigned jobs;
        };
        std::vector<Scale> scales;
        if (quick) {
            scales = {{96, 4, 1}, {96, 4, 4}};
        } else {
            scales = {{96, 4, 1}, {2000, 20, 1}, {2000, 20, 4}};
        }
        for (const Scale& s : scales) {
            // mcps-analyze: allow(ICE1): bench drives the engine directly so registry plumbing stays out of the perf loop
            hospital::HospitalConfig cfg;
            cfg.patients = s.patients;
            cfg.wards = s.wards;
            cfg.jobs = s.jobs;
            cfg.duration = sim::SimDuration::minutes(quick ? 2 : 10);
            const hospital::HospitalReport rep =
                hospital::HospitalEngine{cfg}.run();
            t.row()
                .cell(static_cast<std::int64_t>(s.patients))
                .cell(static_cast<std::int64_t>(s.wards))
                .cell(static_cast<std::int64_t>(s.jobs))
                .cell(rep.steps_per_sec, 0)
                .cell(static_cast<double>(rep.state_bytes) /
                          (1024.0 * 1024.0),
                      3);
            char key[64];
            std::snprintf(key, sizeof key,
                          "hospital.p%zu.j%u.steps_per_sec", s.patients,
                          s.jobs);
            json.metric(key, rep.steps_per_sec, "steps/s");
            if (s.jobs == 1) {  // state is jobs-independent; emit once
                std::snprintf(key, sizeof key, "hospital.p%zu.state_mib",
                              s.patients);
                json.metric(key,
                            static_cast<double>(rep.state_bytes) /
                                (1024.0 * 1024.0),
                            "MiB");
            }
        }
        t.print(std::cout, "hospital engine end-to-end throughput");
    }

    return json.write() ? 0 : 1;
}
