/// \file bench_e3_smart_alarm.cpp
/// \brief Experiment E3 — context-aware smart alarms cut false alarms
/// without missing true events (the paper's "decreased false alarms"
/// claim for intelligent MCPS).
///
/// E3a: a STABLE monitored patient with increasing motion-artifact rates
///      on the pulse oximeter for 6 simulated hours. Every alarm is a
///      false alarm; we count alarms/hour for the classic per-metric
///      threshold monitor vs. the fused smart alarm.
/// E3b: an opioid-sensitive patient under proxy pressing develops a TRUE
///      overdose (open loop, alarms only). Detection = any alarm fired
///      within the window from 3 min before to 10 min after the first
///      true SpO2 < 90 crossing; we also report detection latency.

#include <algorithm>
#include <iostream>

#include "bench_io.hpp"
#include "core/core.hpp"
#include "scenario/scenario.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

namespace {

// Full-size by default; `--quick` shrinks both (JSON smoke test).
int g_seeds = 6;
sim::SimDuration g_duration = 6_h;

auto base_cfg(bool overdose, std::uint64_t seed, double artifact_prob) {
    // The registry's alarm-only shift: typical adult, no interlock,
    // monitor + smart alarm on. The overdose variant swaps in the E3b
    // patient/demand knobs; the swept artifact probability is set on
    // the resolved config exactly (the preset floor doesn't apply).
    scenario::ScenarioSpec spec;
    spec.name = "smart-alarm";
    if (overdose) {
        spec.set("patient", "opioid-sensitive");
        spec.set("demand", "proxy");
    }
    auto cfg = scenario::make_pca_config(spec);
    cfg.seed = seed;
    cfg.duration = g_duration;
    cfg.oximeter.artifact_probability = artifact_prob;
    return cfg;
}

}  // namespace

int main(int argc, char** argv) {
    mcps::benchio::JsonReporter json{argc, argv, "e3_smart_alarm"};
    json.set_seed(100);
    if (mcps::benchio::quick_mode(argc, argv)) {
        g_seeds = 2;
        g_duration = 1_h;
    }
    std::cout << "E3: threshold alarms vs fused smart alarm\n("
              << g_seeds << " seeds per cell, " << g_duration.to_minutes()
              << " simulated minutes each)\n\n";

    // ---- E3a: false alarms on a stable patient ----------------------
    {
        sim::Table t({"artifact_per_h", "threshold_FA_per_h",
                      "smart_FA_per_h", "smart_critical_per_h"});
        for (const double prob : {0.0, 0.001, 0.003, 0.006, 0.012}) {
            sim::RunningStats mon, smart, crit;
            const double hours = g_duration.to_minutes() / 60.0;
            for (int s = 0; s < g_seeds; ++s) {
                const auto r = core::run_pca_scenario(
                    base_cfg(false, 100 + static_cast<std::uint64_t>(s), prob));
                mon.add(static_cast<double>(r.monitor_alarm_count) / hours);
                smart.add(static_cast<double>(r.smart_alarm_count) / hours);
                crit.add(static_cast<double>(r.smart_critical_count) / hours);
            }
            // Artifact bursts begin per 1 s sample => expected rate/h:
            t.row()
                .cell(prob * 3600.0, 1)
                .cell(mon.mean(), 2)
                .cell(smart.mean(), 2)
                .cell(crit.mean(), 2);
            const std::string prefix =
                "fa.artifact_" +
                std::to_string(static_cast<int>(prob * 10000.0)) + "e-4";
            json.metric(prefix + ".threshold_fa_per_h", mon.mean(),
                        "alarms/h");
            json.metric(prefix + ".smart_fa_per_h", smart.mean(), "alarms/h");
        }
        t.print(std::cout,
                "E3a: false alarms per hour, stable patient with motion "
                "artifacts");
        std::cout << '\n';
    }

    // ---- E3b: true-event detection -----------------------------------
    {
        sim::Table t({"detector", "detected", "missed", "mean_latency_s"});
        int mon_detected = 0, smart_detected = 0, events = 0;
        sim::RunningStats mon_latency, smart_latency;
        for (int s = 0; s < g_seeds; ++s) {
            auto cfg = base_cfg(true, 200 + static_cast<std::uint64_t>(s),
                                0.003);
            core::PcaScenario scenario{cfg};
            const auto r = scenario.run();
            if (!r.hypoxia_onset_s) continue;  // no true event this seed
            ++events;
            const auto onset =
                sim::SimTime::origin() +
                sim::SimDuration::from_seconds(*r.hypoxia_onset_s);
            const auto win_lo = onset - 3_min;
            const auto win_hi = onset + 10_min;

            // Threshold monitor detection.
            bool mon_hit = false;
            for (const auto& a : scenario.monitor()->alarms()) {
                if (a.at >= win_lo && a.at <= win_hi) {
                    mon_hit = true;
                    mon_latency.add((a.at - onset).to_seconds());
                    break;
                }
            }
            mon_detected += mon_hit ? 1 : 0;

            // Smart alarm detection (warning or critical).
            bool smart_hit = false;
            for (const auto& a : scenario.smart_alarm()->alarms()) {
                if (a.at >= win_lo && a.at <= win_hi) {
                    smart_hit = true;
                    smart_latency.add((a.at - onset).to_seconds());
                    break;
                }
            }
            smart_detected += smart_hit ? 1 : 0;
        }
        t.row()
            .cell("threshold-monitor")
            .cell(std::int64_t{mon_detected})
            .cell(std::int64_t{events - mon_detected})
            .cell(mon_latency.empty() ? 0.0 : mon_latency.mean(), 1);
        t.row()
            .cell("smart-alarm")
            .cell(std::int64_t{smart_detected})
            .cell(std::int64_t{events - smart_detected})
            .cell(smart_latency.empty() ? 0.0 : smart_latency.mean(), 1);
        t.print(std::cout, "E3b: true overdose detection (" +
                               std::to_string(events) + " events)");
        std::cout << '\n';
        json.metric("detect.events", static_cast<double>(events), "events");
        json.metric("detect.threshold_detected",
                    static_cast<double>(mon_detected), "events");
        json.metric("detect.smart_detected",
                    static_cast<double>(smart_detected), "events");
        json.metric("detect.threshold_mean_latency_s",
                    mon_latency.empty() ? 0.0 : mon_latency.mean(), "s");
        json.metric("detect.smart_mean_latency_s",
                    smart_latency.empty() ? 0.0 : smart_latency.mean(), "s");
    }

    std::cout
        << "Expected shape: threshold false alarms grow ~linearly with the\n"
           "artifact rate while the fused engine stays near zero (it needs\n"
           "corroboration). Both detectors catch every true overdose. The\n"
           "classic sensitivity/specificity trade is visible in the\n"
           "latencies: the per-metric thresholds ring at the first noisy\n"
           "sample (earliest, but that hair trigger IS the false-alarm\n"
           "flood of E3a); the fused alarm confirms via corroboration +\n"
           "persistence and still fires well before the SpO2-90 crossing\n"
           "(negative latency), via capnometry.\n";
    json.write();
    return 0;
}
