/// \file bench_e7_physio.cpp
/// \brief Experiment E7 — the virtual patient makes in-silico validation
/// possible: integrator accuracy against the analytic solution, the
/// canonical overdose trajectory, and population time-to-event spread.

#include <cmath>
#include <iostream>

#include "bench_io.hpp"
#include "physio/physio.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::physio;

int main(int argc, char** argv) {
    mcps::benchio::JsonReporter json{argc, argv, "e7_physio"};
    json.set_seed(77);
    const bool quick = mcps::benchio::quick_mode(argc, argv);
    // E7c population size and observation horizon (steps of 0.5 s).
    const std::size_t pop_n = quick ? 4 : 30;
    const int horizon_steps = quick ? 30 * 60 * 2 : 2 * 3600 * 2;
    std::cout << "E7: patient-model validation\n\n";

    // ---- E7a: integrator accuracy vs analytic PK ----------------------
    {
        sim::Table t({"dt_s", "max_rel_error", "steps_per_sim_hour"});
        PkParameters one_comp;
        one_comp.k12_per_min = 0.0;
        one_comp.k21_per_min = 0.0;
        for (const double dt : {10.0, 5.0, 1.0, 0.5, 0.1}) {
            PkTwoCompartment pk{one_comp};
            pk.bolus(Dose::mg(2.0));
            double max_rel = 0.0;
            const int steps = static_cast<int>(3600.0 / dt);
            for (int i = 0; i < steps; ++i) {
                pk.step(dt, InfusionRate::zero());
                const double expect =
                    one_compartment_bolus_analytic(one_comp, Dose::mg(2.0),
                                                   (i + 1) * dt)
                        .as_ng_per_ml();
                const double got = pk.plasma().as_ng_per_ml();
                if (expect > 1e-9) {
                    max_rel = std::max(max_rel,
                                       std::abs(got - expect) / expect);
                }
            }
            char err[32];
            std::snprintf(err, sizeof err, "%.2e", max_rel);
            t.row().cell(dt, 1).cell(std::string{err}).cell(
                std::int64_t{steps});
            char key[48];
            std::snprintf(key, sizeof key, "rk4.dt_%.1fs.max_rel_error", dt);
            json.metric(key, max_rel, "ratio");
        }
        t.print(std::cout,
                "E7a: RK4 plasma-concentration error vs analytic bolus decay "
                "(1 sim hour)");
        std::cout << '\n';
    }

    // ---- E7b: canonical overdose trajectory ----------------------------
    {
        sim::Table t({"t_min", "ce_ng_ml", "drive", "rr", "paco2", "spo2",
                      "apneic"});
        Patient p{nominal_parameters(Archetype::kOpioidSensitive)};
        p.set_infusion_rate(InfusionRate::mg_per_hour(6.0));  // runaway pump
        for (int minute = 0; minute <= 40; minute += 4) {
            t.row()
                .cell(std::int64_t{minute})
                .cell(p.pk().effect_site().as_ng_per_ml(), 1)
                .cell(p.respiratory_drive(), 2)
                .cell(p.resp_rate().as_per_minute(), 1)
                .cell(p.paco2_mmhg(), 1)
                .cell(p.spo2().as_percent(), 1)
                .cell(p.is_apneic() ? "YES" : "no");
            for (int i = 0; i < 480; ++i) p.step(0.5);  // 4 minutes
        }
        t.print(std::cout,
                "E7b: overdose trajectory (sensitive patient, 6 mg/h "
                "runaway infusion)");
        std::cout << '\n';
    }

    // ---- E7c: population time-to-event spread --------------------------
    {
        sim::Table t({"archetype", "n", "apnea_rate", "tta_p10_min",
                      "tta_median_min", "tta_p90_min"});
        for (const auto arch : all_archetypes()) {
            sim::RngStream rng{77, "e7.pop." + std::string{to_string(arch)}};
            const auto pop = sample_population(arch, pop_n, rng);
            sim::SampleSet tta;
            int apneas = 0;
            for (const auto& params : pop) {
                Patient p{params};
                p.set_infusion_rate(InfusionRate::mg_per_hour(6.0));
                double t_apnea = -1;
                for (int i = 0; i < horizon_steps; ++i) {
                    p.step(0.5);
                    if (p.is_apneic()) {
                        t_apnea = p.elapsed_seconds() / 60.0;
                        break;
                    }
                }
                if (t_apnea >= 0) {
                    ++apneas;
                    tta.add(t_apnea);
                }
            }
            t.row()
                .cell(std::string{to_string(arch)})
                .cell(static_cast<std::uint64_t>(pop.size()))
                .cell(static_cast<double>(apneas) /
                          static_cast<double>(pop.size()),
                      2)
                .cell(tta.empty() ? -1.0 : tta.quantile(0.1), 1)
                .cell(tta.empty() ? -1.0 : tta.median(), 1)
                .cell(tta.empty() ? -1.0 : tta.quantile(0.9), 1);
            const std::string key = "tta." + std::string{to_string(arch)};
            json.metric(key + ".apnea_rate",
                        static_cast<double>(apneas) /
                            static_cast<double>(pop.size()),
                        "ratio");
            json.metric(key + ".median_min",
                        tta.empty() ? -1.0 : tta.median(), "min");
        }
        t.print(std::cout,
                "E7c: time-to-apnea under a 6 mg/h runaway infusion (" +
                    std::to_string(pop_n) + " sampled patients each)");
        std::cout << '\n';
    }

    std::cout
        << "Expected shape: RK4 error falls ~dt^4 until double-precision\n"
           "floor; the overdose trajectory shows the textbook cascade\n"
           "(effect-site rise -> drive collapse -> CO2 retention -> apnea ->\n"
           "desaturation over minutes); sensitive/high-risk archetypes reach\n"
           "apnea earliest with wide biological spread — the reason\n"
           "population-level in-silico validation is required.\n";
    json.write();
    return 0;
}
