/// \file bench_e9_alarm_fatigue.cpp
/// \brief Experiment E9 (ablation) — alarm quality decides patient
/// outcome through the human in the loop.
///
/// E3 counted alarms; this experiment counts *harm*. An opioid-sensitive
/// patient under proxy pressing (open loop, no interlock — nursing
/// response is the only protection) is watched by a nurse summoned by
/// either the classic threshold monitor or the fused smart alarm, while
/// the pulse oximeter suffers motion artifacts. The threshold monitor's
/// false-alarm flood fatigues the nurse (response-time multiplier), so
/// by the time the true overdose rings, the rescue (naloxone-like
/// antagonist) arrives late.
///
/// Reported per (alarm source, artifact rate): alarms heard/h, mean
/// fatigue factor at dispatch, mean response time, rescues, severe-
/// hypoxemia rate, mean min SpO2.

#include <iostream>

#include "bench_io.hpp"
#include "core/core.hpp"
#include "core/nurse_response.hpp"
#include "scenario/scenario.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

namespace {

// Full-size by default; `--quick` shrinks both (JSON smoke test).
int g_seeds = 8;
sim::SimDuration g_duration = 6_h;

struct CellResult {
    double alarms_per_h = 0;
    double ignored = 0;
    double mean_fatigue = 0;
    double mean_response_s = 0;
    double rescues = 0;
    double false_trips = 0;
    double severe_rate = 0;
    double mean_min_spo2 = 0;
};

CellResult run_cell(bool use_smart_alarm, double artifact_prob) {
    sim::RunningStats alarms, fatigue, response, rescues, min_spo2, false_trips,
        ignored;
    // The alarm-only shift from the registry with the E9 overdose
    // patient swapped in; the nurse is wired onto the live scenario
    // below, which no flat knob can express.
    scenario::ScenarioSpec spec;
    spec.name = "smart-alarm";
    spec.set("patient", "opioid-sensitive");
    spec.set("demand", "proxy");

    int severe = 0;
    for (int s = 0; s < g_seeds; ++s) {
        auto cfg = scenario::make_pca_config(spec);
        cfg.seed = 5000 + static_cast<std::uint64_t>(s);
        cfg.duration = g_duration;
        cfg.oximeter.artifact_probability = artifact_prob;

        core::PcaScenario scenario{cfg};
        core::NurseConfig ncfg;
        ncfg.alarm_topic =
            use_smart_alarm ? "alarm/smart1" : "alarm/monitor1";
        devices::DeviceContext ctx{scenario.simulation(), scenario.bus(),
                                   scenario.trace()};
        core::NurseResponder nurse{ctx, "nurse1", scenario.patient(), ncfg};
        nurse.start();

        const auto r = scenario.run();
        const auto& ns = nurse.stats();
        alarms.add(static_cast<double>(ns.alarms_heard) /
                   (g_duration.to_minutes() / 60.0));
        // The outcome-relevant fatigue is the WORST factor a dispatch
        // suffered (the one racing the developing overdose).
        double worst = 1.0;
        for (double v : ns.fatigue_factors) worst = std::max(worst, v);
        fatigue.add(worst);
        response.add(ns.response_times_s.empty()
                         ? 0.0
                         : *std::max_element(ns.response_times_s.begin(),
                                             ns.response_times_s.end()));
        rescues.add(static_cast<double>(ns.rescues));
        false_trips.add(static_cast<double>(ns.false_trips));
        ignored.add(static_cast<double>(ns.ignored));
        severe += r.severe_hypoxemia ? 1 : 0;
        min_spo2.add(r.min_spo2);
    }
    CellResult c;
    c.alarms_per_h = alarms.mean();
    c.ignored = ignored.mean();
    c.mean_fatigue = fatigue.mean();
    c.mean_response_s = response.mean();
    c.rescues = rescues.mean();
    c.false_trips = false_trips.mean();
    c.severe_rate = static_cast<double>(severe) / g_seeds;
    c.mean_min_spo2 = min_spo2.mean();
    return c;
}

}  // namespace

int main(int argc, char** argv) {
    mcps::benchio::JsonReporter json{argc, argv, "e9_alarm_fatigue"};
    json.set_seed(5000);
    if (mcps::benchio::quick_mode(argc, argv)) {
        g_seeds = 2;
        g_duration = 45_min;
    }
    std::cout << "E9 (ablation): alarm quality -> nurse fatigue -> outcome\n("
              << g_seeds << " seeds per cell, " << g_duration.to_minutes()
              << " min, sensitive patient, proxy demand, NO "
                 "interlock)\n\n";

    sim::Table t({"alarm_source", "artifacts_per_h", "alarms_per_h",
                  "ignored", "worst_fatigue_x", "worst_response_s", "false_trips",
                  "rescues", "severe_rate", "min_spo2"});
    for (const double prob : {0.0, 0.003, 0.012}) {
        for (const bool smart : {false, true}) {
            const auto c = run_cell(smart, prob);
            t.row()
                .cell(smart ? "smart-alarm" : "threshold-monitor")
                .cell(prob * 3600.0, 1)
                .cell(c.alarms_per_h, 1)
                .cell(c.ignored, 1)
                .cell(c.mean_fatigue, 2)
                .cell(c.mean_response_s, 0)
                .cell(c.false_trips, 1)
                .cell(c.rescues, 1)
                .cell(c.severe_rate, 2)
                .cell(c.mean_min_spo2, 1);
            const std::string key =
                std::string{smart ? "smart" : "threshold"} + ".artifact_" +
                std::to_string(static_cast<int>(prob * 10000.0)) + "e-4";
            json.metric(key + ".alarms_per_h", c.alarms_per_h, "alarms/h");
            json.metric(key + ".severe_rate", c.severe_rate, "ratio");
        }
    }
    t.print(std::cout, "E9: patient outcome by alarm source");
    std::cout
        << "\nExpected shape: with a quiet sensor both sources protect the\n"
           "patient equally; as artifacts grow, the threshold monitor's\n"
           "flood inflates the fatigue factor and response time, rescues\n"
           "arrive later, and severe-hypoxemia rate / min SpO2 worsen,\n"
           "while the smart-alarm nurse stays fast — alarm specificity is\n"
           "a *patient-outcome* property, not a comfort feature.\n";
    json.write();
    return 0;
}
