/// \file bench_e10_ward_scale.cpp
/// \brief Experiment E10 — ward-scale throughput: scenarios/sec as the
/// worker count grows.
///
/// Runs the same mixed-workload ward campaign (PCA closed loop, x-ray
/// sync, smart-alarm shifts, adversarial fault plans on) at 1/2/4/8
/// workers and reports scenarios/sec plus speedup over the serial run.
/// The ward fingerprint must be identical at every job count — the
/// scaling is only meaningful if the parallel runs compute the same
/// campaign — so the bench asserts it and fails loudly otherwise.
///
/// Scenarios are independent single-threaded kernels, so on an N-core
/// machine speedup should approach min(jobs, N); on fewer cores the
/// curve flattens at the core count (run on >= 8 cores to reproduce the
/// headline 8-worker figure).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_io.hpp"
#include "sim/table.hpp"
#include "ward/ward.hpp"

using namespace mcps;

namespace {

constexpr std::uint64_t kMasterSeed = 20260806;
constexpr std::size_t kPatients = 64;

}  // namespace

int main(int argc, char** argv) {
    benchio::JsonReporter json{argc, argv, "e10_ward_scale"};
    json.set_seed(kMasterSeed);
    const bool quick = benchio::quick_mode(argc, argv);
    const std::size_t patients = quick ? 8 : kPatients;

    std::cout << "E10: ward-scale parallel execution (" << patients
              << " patients, mixed workloads, fault plans on)\n\n";

    ward::WardConfig cfg;
    cfg.seed = kMasterSeed;
    cfg.patients = patients;
    // Fixed: the reduction tree must not change with jobs.
    cfg.shards = quick ? 8 : 32;
    cfg.mix = {0.6, 0.2, 0.2};
    cfg.fault_intensity = 1.0;

    sim::Table t{{"jobs", "scenarios_per_sec", "wall_s", "speedup",
                  "fingerprint"}};
    double serial_rate = 0.0;
    std::uint64_t serial_fp = 0;
    bool fingerprints_agree = true;
    const std::vector<unsigned> job_counts =
        quick ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
    for (const unsigned jobs : job_counts) {
        cfg.jobs = jobs;
        const auto rep = ward::WardEngine{cfg}.run();
        if (jobs == 1) {
            serial_rate = rep.scenarios_per_sec;
            serial_fp = rep.fingerprint;
        }
        fingerprints_agree = fingerprints_agree && rep.fingerprint == serial_fp;
        char fp[32];
        std::snprintf(fp, sizeof fp, "0x%016llx",
                      static_cast<unsigned long long>(rep.fingerprint));
        const double speedup =
            serial_rate > 0 ? rep.scenarios_per_sec / serial_rate : 0.0;
        t.row()
            .cell(static_cast<std::uint64_t>(jobs))
            .cell(rep.scenarios_per_sec, 2)
            .cell(rep.wall_seconds, 2)
            .cell(speedup, 2)
            .cell(std::string{fp});
        json.metric("scenarios_per_sec_jobs" + std::to_string(jobs),
                    rep.scenarios_per_sec, "scenarios/sec");
        json.metric("speedup_jobs" + std::to_string(jobs), speedup, "x");
        if (jobs == 8) {
            json.metric("events_per_sec_jobs8",
                        rep.wall_seconds > 0
                            ? static_cast<double>(rep.events_dispatched) /
                                  rep.wall_seconds
                            : 0.0,
                        "events/sec");
        }
    }
    t.print(std::cout, "E10: throughput scaling (identical campaign)");
    std::cout << '\n';

    if (!fingerprints_agree) {
        std::cout << "FAIL: ward fingerprint varied with the job count — "
                     "parallel runs are not reproducing the serial campaign\n";
        return 1;
    }
    std::cout
        << "Expected shape: scenarios/sec grows ~linearly with jobs up to\n"
           "the machine's core count (each scenario is an independent\n"
           "single-threaded kernel; >= 3x at 8 workers on >= 4 real\n"
           "cores), with the fingerprint column constant — the parallel\n"
           "campaign is bit-identical to the serial one.\n";
    json.write();
    return 0;
}
