/// \file bench_e5_verification.cpp
/// \brief Experiment E5 — model-based verification of pump software is
/// feasible (the GPCA workflow): property verdicts, counterexamples,
/// zone-graph sizes and wall-clock cost, including a scaling study.

#include <chrono>
#include <iostream>
#include <vector>

#include "bench_io.hpp"
#include "sim/table.hpp"
#include "ta/ta.hpp"

using namespace mcps;

namespace {

double wall_ms(const std::function<void()>& f) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    mcps::benchio::JsonReporter json{argc, argv, "e5_verification"};
    json.set_seed(0);  // exhaustive model checking: no randomness involved
    const bool quick = mcps::benchio::quick_mode(argc, argv);
    std::cout << "E5: model checking the GPCA pump and closed loop\n\n";

    // ---- E5a: the verification suite ---------------------------------
    {
        sim::Table t({"property", "model", "verdict", "explored", "stored",
                      "wall_ms", "counterexample"});
        auto add = [&t, &json](const std::string& prop,
                               const std::string& model, bool expect_safe,
                               ta::ReachabilityResult r, double ms) {
            std::string key = "suite." + model;
            for (auto& ch : key) {
                if (ch == ' ') ch = '_';
            }
            json.metric(key + ".wall_ms", ms, "ms");
            json.metric(key + ".states_explored",
                        static_cast<double>(r.states_explored), "states");
            std::string cex;
            for (const auto& step : r.trace) {
                if (!cex.empty()) cex += " ; ";
                cex += step;
            }
            // push_back, not `cex = "-"`: GCC 12's -Wrestrict misfires
            // on the char* assignment after the append loop (PR 105329).
            if (cex.empty()) cex.push_back('-');
            t.row()
                .cell(prop)
                .cell(model)
                .cell(r.reachable ? "VIOLATED" : "SAFE")
                .cell(static_cast<std::uint64_t>(r.states_explored))
                .cell(static_cast<std::uint64_t>(r.states_stored))
                .cell(ms, 2)
                .cell(cex);
            (void)expect_safe;
        };

        {
            ta::ReachabilityResult r;
            const double ms = wall_ms([&] {
                r = ta::check_reachability(ta::build_pump_lockout_model(),
                                           "Violation");
            });
            add("P1 lockout (R1)", "correct pump", true, r, ms);
        }
        {
            ta::PumpModelParams faulty;
            faulty.faulty_no_lockout_guard = true;
            ta::ReachabilityResult r;
            const double ms = wall_ms([&] {
                r = ta::check_reachability(ta::build_pump_lockout_model(faulty),
                                           "Violation");
            });
            add("P1 lockout (R1)", "faulty pump", false, r, ms);
        }
        {
            ta::ReachabilityResult r;
            const double ms = wall_ms([&] {
                r = ta::check_reachability(ta::build_closed_loop_model(),
                                           "Overdue");
            });
            add("P2 stop deadline", "in-budget loop", true, r, ms);
        }
        {
            ta::InterlockModelParams slow;
            slow.detect_max_s = 70;
            ta::ReachabilityResult r;
            const double ms = wall_ms([&] {
                r = ta::check_reachability(ta::build_closed_loop_model(slow),
                                           "Overdue");
            });
            add("P2 stop deadline", "slow detection", false, r, ms);
        }
        t.print(std::cout, "E5a: GPCA property suite");
        std::cout << '\n';
    }

    // ---- E5b: deadline budget boundary --------------------------------
    {
        sim::Table t({"detect_max_s", "worst_total_s", "deadline_s",
                      "verdict", "explored"});
        for (const int detect : {20, 40, 54, 55, 56, 70}) {
            ta::InterlockModelParams p;
            p.detect_max_s = detect;  // + 3 command + 2 react vs 60 deadline
            const auto r =
                ta::check_reachability(ta::build_closed_loop_model(p),
                                       "Overdue");
            t.row()
                .cell(std::int64_t{detect})
                .cell(std::int64_t{detect + 3 + 2})
                .cell(std::int64_t{60})
                .cell(r.reachable ? "VIOLATED" : "SAFE")
                .cell(static_cast<std::uint64_t>(r.states_explored));
        }
        t.print(std::cout,
                "E5b: response-deadline boundary (checker matches the "
                "arithmetic exactly)");
        std::cout << '\n';
    }

    // ---- E5c: scaling study -------------------------------------------
    {
        sim::Table t({"pumps", "locations", "clocks", "explored", "stored",
                      "wall_ms"});
        // The 3/4-pump farms dominate the wall clock; --quick stops at 2.
        const std::vector<std::size_t> farm_sizes =
            quick ? std::vector<std::size_t>{1, 2}
                  : std::vector<std::size_t>{1, 2, 3, 4};
        for (const std::size_t n : farm_sizes) {
            ta::ReachabilityResult r;
            std::size_t locations = 0, clocks = 0;
            const double ms = wall_ms([&] {
                const auto farm = ta::build_pump_farm(n);
                locations = farm.num_locations();
                clocks = farm.num_clocks();
                r = ta::check_reachability(farm, "Violation");
            });
            t.row()
                .cell(static_cast<std::uint64_t>(n))
                .cell(static_cast<std::uint64_t>(locations))
                .cell(static_cast<std::uint64_t>(clocks))
                .cell(static_cast<std::uint64_t>(r.states_explored))
                .cell(static_cast<std::uint64_t>(r.states_stored))
                .cell(ms, 1);
            const std::string key = "farm." + std::to_string(n) + "pumps";
            json.metric(key + ".wall_ms", ms, "ms");
            json.metric(key + ".states_explored",
                        static_cast<double>(r.states_explored), "states");
            if (r.reachable) {
                std::cout << "UNEXPECTED: farm of " << n << " violated!\n";
            }
        }
        t.print(std::cout,
                "E5c: zone-graph growth with composed pump instances");
        std::cout << '\n';
    }

    std::cout
        << "Expected shape: correct models verify SAFE in milliseconds with\n"
           "tiny zone graphs; the injected defect yields the classic\n"
           "double-grant counterexample; the deadline verdict flips exactly\n"
           "where detect+command+react crosses the deadline; composition\n"
           "grows the explored state space exponentially (the motivation for\n"
           "compositional certification the paper raises).\n";
    json.write();
    return 0;
}
