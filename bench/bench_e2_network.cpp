/// \file bench_e2_network.cpp
/// \brief Experiment E2 — how network quality limits closed-loop safety
/// (the paper's "networking introduces failure concerns" thread).
///
/// Two sweeps on an opioid-sensitive patient receiving proxy boluses
/// with the dual-sensor interlock engaged:
///
///   E2a latency sweep (loss 0): added end-to-end latency directly
///       stretches the interlock's onset-to-stop latency.
///   E2b loss sweep (latency 50 ms): under fail-OPERATIONAL, loss delays
///       detection and lengthens hypoxia; under FAIL-SAFE the same loss
///       instead starves therapy (preemptive staleness stops) — the
///       policy ablation called out in DESIGN.md.

#include <iostream>

#include "bench_io.hpp"
#include "core/core.hpp"
#include "scenario/scenario.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

namespace {

// Full-size by default; `--quick` shrinks both (JSON smoke test).
int g_seeds_per_cell = 6;
sim::SimDuration g_duration = 4_h;

struct CellResult {
    double stop_latency_ms = 0;  ///< mean interlock onset->ack latency
    double min_below90 = 0;      ///< mean minutes of true SpO2 < 90
    double severe_rate = 0;
    double drug_mg = 0;
    double dataloss_stops = 0;
};

CellResult run_cell(sim::SimDuration latency, double loss,
                    core::DataLossPolicy policy) {
    // Categorical knobs ride the registry spec; the swept channel
    // quantities stay as exact SimDurations/doubles on the resolved
    // config (jitter tracks the swept latency, not a spec constant).
    scenario::ScenarioSpec spec;
    spec.name = "pca";
    spec.set("patient", "opioid-sensitive");
    spec.set("interlock", "dual");
    spec.set("policy", policy == core::DataLossPolicy::kFailOperational
                           ? "fail-operational"
                           : "fail-safe");

    sim::RunningStats lat, below, drug, dls;
    int severe = 0;
    for (int s = 0; s < g_seeds_per_cell; ++s) {
        auto cfg = scenario::make_pca_config(spec);
        cfg.seed = 9000 + static_cast<std::uint64_t>(s);
        cfg.duration = g_duration;
        cfg.channel.base_latency = latency;
        cfg.channel.jitter_sd = latency * 0.1;
        cfg.channel.loss_probability = loss;
        const auto r = core::run_pca_scenario(cfg);
        if (r.interlock.last_stop_latency_ms) {
            lat.add(*r.interlock.last_stop_latency_ms);
        }
        below.add(r.time_spo2_below_90_s / 60.0);
        severe += r.severe_hypoxemia ? 1 : 0;
        drug.add(r.total_drug_mg);
        dls.add(static_cast<double>(r.interlock.data_loss_stops));
    }
    CellResult c;
    c.stop_latency_ms = lat.mean();
    c.min_below90 = below.mean();
    c.severe_rate = static_cast<double>(severe) / g_seeds_per_cell;
    c.drug_mg = drug.mean();
    c.dataloss_stops = dls.mean();
    return c;
}

}  // namespace

int main(int argc, char** argv) {
    mcps::benchio::JsonReporter json{argc, argv, "e2_network"};
    json.set_seed(9000);
    if (mcps::benchio::quick_mode(argc, argv)) {
        g_seeds_per_cell = 2;
        g_duration = 30_min;
    }
    std::cout << "E2: network quality vs closed-loop PCA safety\n"
              << "(opioid-sensitive patient, proxy demand, dual-sensor "
                 "interlock, "
              << g_seeds_per_cell << " seeds per cell)\n\n";

    {
        sim::Table t({"latency", "stop_latency_ms", "min_below90",
                      "severe_rate", "drug_mg"});
        for (const auto latency : {0_ms, 250_ms, 1000_ms, 2000_ms, 5000_ms}) {
            const auto c = run_cell(latency, 0.0,
                                    core::DataLossPolicy::kFailOperational);
            t.row()
                .cell(latency.to_string())
                .cell(c.stop_latency_ms, 0)
                .cell(c.min_below90, 2)
                .cell(c.severe_rate, 2)
                .cell(c.drug_mg, 2);
            const std::string prefix = "latency." + latency.to_string();
            json.metric(prefix + ".stop_latency_ms", c.stop_latency_ms, "ms");
            json.metric(prefix + ".severe_rate", c.severe_rate, "ratio");
        }
        t.print(std::cout, "E2a: latency sweep (loss = 0, fail-operational)");
        std::cout << '\n';
    }

    for (const auto policy : {core::DataLossPolicy::kFailOperational,
                              core::DataLossPolicy::kFailSafe}) {
        sim::Table t({"loss", "stop_latency_ms", "min_below90", "severe_rate",
                      "drug_mg", "staleness_stops"});
        for (const double loss : {0.0, 0.05, 0.10, 0.20, 0.40}) {
            const auto c = run_cell(50_ms, loss, policy);
            t.row()
                .cell(loss, 2)
                .cell(c.stop_latency_ms, 0)
                .cell(c.min_below90, 2)
                .cell(c.severe_rate, 2)
                .cell(c.drug_mg, 2)
                .cell(c.dataloss_stops, 1);
            const std::string prefix =
                std::string{"loss."} + std::string{core::to_string(policy)} +
                "." + std::to_string(static_cast<int>(loss * 100)) + "pct";
            json.metric(prefix + ".severe_rate", c.severe_rate, "ratio");
            json.metric(prefix + ".drug_mg", c.drug_mg, "mg");
            json.metric(prefix + ".staleness_stops", c.dataloss_stops,
                        "stops");
        }
        t.print(std::cout, std::string{"E2b: loss sweep (latency = 50 ms, "} +
                               std::string{core::to_string(policy)} + ")");
        std::cout << '\n';
    }

    std::cout
        << "Expected shape: stop latency grows ~linearly with added network\n"
           "latency; under fail-operational, loss lengthens hypoxia; under\n"
           "fail-safe, the same loss leaves SpO2 untouched but starves\n"
           "therapy (drug_mg falls, staleness stops rise) — availability is\n"
           "traded, never safety.\n";
    json.write();
    return 0;
}
