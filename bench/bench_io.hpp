/// \file bench_io.hpp
/// \brief Machine-readable bench output: `--json <path>` support.
///
/// Every experiment binary accepts `--json <path>` and, when given,
/// writes a flat JSON report — bench name, master seed, and a list of
/// {name, value, unit} metrics — alongside its human-readable tables.
/// The convention for tracking the perf trajectory over time:
///
///   build/bench/bench_e1_pca_interlock --json BENCH_e1_pca_interlock.json
///
/// Header-only so benches stay single-file; no third-party JSON
/// dependency (values are numbers and [A-Za-z0-9_./-] names, so the
/// writer below is sufficient).

#pragma once

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcps::benchio {

/// True when argv contains `--quick`: the bench shrinks its workload
/// (fewer seeds/patients/procedures, shorter horizons) so the JSON
/// schema smoke test can execute every experiment binary in seconds.
/// Quick numbers are NOT the paper's numbers — only the report shape.
inline bool quick_mode(int argc, char** argv) noexcept {
    for (int i = 1; i < argc; ++i) {
        if (std::string_view{argv[i]} == "--quick") return true;
    }
    return false;
}

class JsonReporter {
public:
    /// Scans argv for `--json <path>`; reporting is a no-op without it.
    JsonReporter(int argc, char** argv, std::string bench_name)
        : bench_name_{std::move(bench_name)} {
        for (int i = 1; i < argc; ++i) {
            if (std::string_view{argv[i]} == "--json") {
                if (i + 1 >= argc) {
                    std::cerr << bench_name_ << ": --json: missing path\n";
                    std::exit(2);
                }
                path_ = argv[i + 1];
                ++i;
            }
        }
    }

    [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

    void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }

    /// Record one metric. Safe to call whether or not --json was given.
    void metric(std::string name, double value, std::string unit) {
        metrics_.push_back({std::move(name), value, std::move(unit)});
    }

    /// Write the report if --json was given. Returns false (and prints
    /// to stderr) if the file cannot be written.
    bool write() const {
        if (path_.empty()) return true;
        std::ofstream out{path_};
        if (!out) {
            std::cerr << bench_name_ << ": --json: cannot open '" << path_
                      << "' for writing\n";
            return false;
        }
        out << "{\n  \"bench\": \"" << bench_name_ << "\",\n"
            << "  \"seed\": " << seed_ << ",\n  \"metrics\": [\n";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            const auto& m = metrics_[i];
            // NaN/inf are not valid JSON numbers; emit null instead.
            out << "    {\"name\": \"" << m.name << "\", \"value\": ";
            if (std::isfinite(m.value)) {
                out << m.value;
            } else {
                out << "null";
            }
            out << ", \"unit\": \"" << m.unit << "\"}"
                << (i + 1 < metrics_.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::cout << "json report: " << path_ << "\n";
        return true;
    }

private:
    struct Metric {
        std::string name;
        double value;
        std::string unit;
    };
    std::string bench_name_;
    std::string path_;
    std::uint64_t seed_ = 0;
    std::vector<Metric> metrics_;
};

}  // namespace mcps::benchio
