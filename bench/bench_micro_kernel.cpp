/// \file bench_micro_kernel.cpp
/// \brief Micro-benchmarks for the substrates: DES kernel event
/// throughput, RNG sampling, DBM operations and bus publish path.
///
/// These justify the substrate design choices called out in DESIGN.md
/// (binary-heap queue, xoshiro streams, incremental DBM canonicalization).

#include <benchmark/benchmark.h>

#include "net/net.hpp"
#include "sim/sim.hpp"
#include "ta/ta.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;

void BM_KernelScheduleDispatch(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulation s;
        for (std::size_t i = 0; i < n; ++i) {
            s.schedule_after(sim::SimDuration::micros(static_cast<std::int64_t>(i)),
                             [] { benchmark::DoNotOptimize(0); });
        }
        s.run_all();
        benchmark::DoNotOptimize(s.events_dispatched());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelScheduleDispatch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_KernelPeriodicProcesses(benchmark::State& state) {
    const auto procs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulation s;
        for (std::size_t i = 0; i < procs; ++i) {
            s.schedule_periodic(1_s, [] { benchmark::DoNotOptimize(0); });
        }
        s.run_until(sim::SimTime::origin() + 100_s);
        benchmark::DoNotOptimize(s.events_dispatched());
    }
}
BENCHMARK(BM_KernelPeriodicProcesses)->Arg(10)->Arg(100);

void BM_RngNormal(benchmark::State& state) {
    sim::RngStream r{42};
    for (auto _ : state) benchmark::DoNotOptimize(r.normal());
}
BENCHMARK(BM_RngNormal);

void BM_RngUniformInt(benchmark::State& state) {
    sim::RngStream r{42};
    for (auto _ : state) benchmark::DoNotOptimize(r.uniform_int(0, 999));
}
BENCHMARK(BM_RngUniformInt);

void BM_DbmConstrainCanonicalize(benchmark::State& state) {
    const auto clocks = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ta::Dbm z{clocks};
        z.up();
        for (std::size_t c = 1; c <= clocks; ++c) {
            z.constrain_upper(c, static_cast<std::int32_t>(10 * c), false);
            z.constrain_lower(c, static_cast<std::int32_t>(c), false);
        }
        benchmark::DoNotOptimize(z.hash());
    }
}
BENCHMARK(BM_DbmConstrainCanonicalize)->Arg(2)->Arg(4)->Arg(8);

void BM_DbmInclusion(benchmark::State& state) {
    ta::Dbm big{4};
    big.up();
    ta::Dbm small = ta::Dbm::zero(4);
    for (auto _ : state) benchmark::DoNotOptimize(big.includes(small));
}
BENCHMARK(BM_DbmInclusion);

void BM_BusPublishDeliver(benchmark::State& state) {
    const auto subs = static_cast<std::size_t>(state.range(0));
    sim::Simulation s;
    net::Bus bus{s, net::ChannelParameters::ideal()};
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < subs; ++i) {
        bus.subscribe("sub" + std::to_string(i), "vitals/*",
                      [&sink](const net::Message& m) { sink += m.seq; });
    }
    for (auto _ : state) {
        bus.publish("pub", "vitals/bed1/spo2",
                    net::VitalSignPayload{"spo2", 97.0, true});
        s.run_all();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(subs));
}
BENCHMARK(BM_BusPublishDeliver)->Arg(1)->Arg(8)->Arg(64);

void BM_ZoneReachabilityPumpModel(benchmark::State& state) {
    for (auto _ : state) {
        auto model = ta::build_pump_lockout_model();
        auto r = ta::check_reachability(model, "Violation");
        benchmark::DoNotOptimize(r.reachable);
    }
}
BENCHMARK(BM_ZoneReachabilityPumpModel);

}  // namespace

BENCHMARK_MAIN();
