/// \file bench_micro_kernel.cpp
/// \brief Micro-benchmarks of the discrete-event kernel's hot paths.
///
/// Four workloads, each reported as events/sec/core (single-threaded,
/// best-of-N steady-state reps against a warm EventArena):
///   - schedule_dispatch: 200k one-shot events, scheduled then drained.
///     This is the headline kernel-throughput metric tracked in
///     BENCH_<n>.json across PRs.
///   - periodic: 100 processes at 1 Hz over 1000 simulated seconds
///     (in-place re-arm path; zero allocations per firing).
///   - churn: 200k randomized-deadline events, every other one
///     cancelled via its EventHandle before the drain.
///   - churn90: the cancel-heavy variant (9 of 10 events cancelled),
///     the tombstone-pop worst case the calendar queue's lazy
///     compaction targets.
///   - bus: 64 subscribers x 20k publishes over an ideal channel
///     (pooled messages + inline delivery callbacks).
///
/// Besides throughput, the report carries the allocation counters that
/// back the "zero per-event heap allocation" claim: arena chunk/heap
/// callback counts and message-pool slot allocations measured across a
/// warm rep (both must be 0 in steady state).
///
/// The reference numbers this bench is compared against live in
/// bench/baselines/ (captured on the pre-calendar-queue kernel with the
/// exact same workload constants); tools/bench_baseline.sh computes the
/// speedup and writes BENCH_<n>.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "net/net.hpp"
#include "sim/sim.hpp"

using namespace mcps;
using namespace mcps::sim::literals;
using Clock = std::chrono::steady_clock;

namespace {

// Workload constants — MUST stay in sync with the checked-in reference
// capture (bench/baselines/), or the speedup ratio becomes meaningless.
std::size_t g_schedule_events = 200000;
std::size_t g_periodic_procs = 100;
std::int64_t g_periodic_horizon_s = 1000;
std::size_t g_churn_events = 200000;
std::size_t g_churn90_events = 200000;
std::size_t g_bus_subscribers = 64;
std::size_t g_bus_publishes = 20000;
int g_reps = 5;

/// Shared warm arena: every rep resets it, so reps measure steady-state
/// throughput (recycled nodes, no chunk growth) rather than first-run
/// page faults. The first call is the warm-up and is never timed.
sim::EventArena g_arena;

double best_seconds(int reps, double (*fn)()) {
    (void)fn();  // warm-up rep (populates arena slabs); excluded
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        const double s = fn();
        if (s < best) best = s;
    }
    return best;
}

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

double run_schedule_dispatch() {
    g_arena.reset();
    const auto t0 = Clock::now();
    sim::Simulation s{1, &g_arena};
    for (std::size_t i = 0; i < g_schedule_events; ++i) {
        s.schedule_after(sim::SimDuration::micros(static_cast<std::int64_t>(i)),
                         [] {});
    }
    s.run_all();
    const double elapsed = seconds_since(t0);
    if (s.events_dispatched() != g_schedule_events) std::abort();
    return elapsed;
}

double run_periodic() {
    g_arena.reset();
    const auto t0 = Clock::now();
    sim::Simulation s{1, &g_arena};
    for (std::size_t i = 0; i < g_periodic_procs; ++i) {
        s.schedule_periodic(1_s, [] {});
    }
    s.run_until(sim::SimTime::origin() +
                sim::SimDuration::seconds(g_periodic_horizon_s));
    return seconds_since(t0);
}

double run_churn() {
    g_arena.reset();
    const auto t0 = Clock::now();
    sim::Simulation s{1, &g_arena};
    auto rng = s.rng("bench.churn");
    std::vector<sim::EventHandle> handles;
    handles.reserve(g_churn_events);
    for (std::size_t i = 0; i < g_churn_events; ++i) {
        const auto delay = sim::SimDuration::micros(rng.uniform_int(0, 1000000));
        handles.push_back(s.schedule_after(delay, [] {}));
        if ((i & 1u) != 0) handles.back().cancel();
    }
    s.run_all();
    return seconds_since(t0);
}

std::uint64_t g_churn90_compactions = 0;
std::uint64_t g_churn90_tombstones_compacted = 0;

double run_churn90() {
    g_arena.reset();
    const auto t0 = Clock::now();
    sim::Simulation s{1, &g_arena};
    auto rng = s.rng("bench.churn90");
    std::vector<sim::EventHandle> handles;
    handles.reserve(g_churn90_events);
    for (std::size_t i = 0; i < g_churn90_events; ++i) {
        const auto delay = sim::SimDuration::micros(rng.uniform_int(0, 1000000));
        handles.push_back(s.schedule_after(delay, [] {}));
        if (i % 10 != 0) handles.back().cancel();
    }
    s.run_all();
    const double elapsed = seconds_since(t0);
    g_churn90_compactions = s.queue_compactions();
    g_churn90_tombstones_compacted = s.tombstones_compacted();
    return elapsed;
}

/// Pool slot allocations observed during the most recent bus rep after
/// the first publish (zero once the pool is warm within the rep).
std::uint64_t g_bus_steady_slot_allocs = 0;

double run_bus_publish() {
    g_arena.reset();
    const auto t0 = Clock::now();
    sim::Simulation s{1, &g_arena};
    net::Bus bus{s, net::ChannelParameters::ideal()};
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < g_bus_subscribers; ++i) {
        bus.subscribe("sub" + std::to_string(i), "vitals/*",
                      [&sink](const net::Message& m) { sink += m.seq; });
    }
    std::uint64_t slot_allocs_after_first = 0;
    for (std::size_t i = 0; i < g_bus_publishes; ++i) {
        bus.publish("pub", "vitals/bed1/spo2",
                    net::VitalSignPayload{"spo2", 97.0, true});
        s.run_all();
        if (i == 0) slot_allocs_after_first = bus.pool_stats().slot_allocs;
    }
    const double elapsed = seconds_since(t0);
    if (sink == 0) std::abort();
    g_bus_steady_slot_allocs =
        bus.pool_stats().slot_allocs - slot_allocs_after_first;
    return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
    benchio::JsonReporter report{argc, argv, "micro_kernel"};
    report.set_seed(1);
    if (benchio::quick_mode(argc, argv)) {
        g_schedule_events = 20000;
        g_periodic_procs = 20;
        g_periodic_horizon_s = 100;
        g_churn_events = 20000;
        g_churn90_events = 20000;
        g_bus_subscribers = 8;
        g_bus_publishes = 1000;
        g_reps = 2;
    }

    const double sd = best_seconds(g_reps, run_schedule_dispatch);

    // Allocation audit: one extra warm rep bracketed by arena stats. In
    // steady state the kernel must not touch the heap at all.
    const sim::ArenaStats before = g_arena.stats();
    (void)run_schedule_dispatch();
    const sim::ArenaStats after = g_arena.stats();
    const double steady_heap_allocs =
        static_cast<double>(after.heap_allocs() - before.heap_allocs());
    const double steady_recycled =
        static_cast<double>(after.nodes_recycled - before.nodes_recycled);

    const double pe = best_seconds(g_reps, run_periodic);
    const double ch = best_seconds(g_reps, run_churn);
    const double ch90 = best_seconds(g_reps, run_churn90);
    const double bp = best_seconds(std::max(2, g_reps - 2), run_bus_publish);

    const double sd_eps = static_cast<double>(g_schedule_events) / sd;
    const double pe_eps = static_cast<double>(g_periodic_procs) *
                          static_cast<double>(g_periodic_horizon_s) / pe;
    const double ch_eps = static_cast<double>(g_churn_events) / ch;
    const double ch90_eps = static_cast<double>(g_churn90_events) / ch90;
    const double bp_eps = static_cast<double>(g_bus_subscribers) *
                          static_cast<double>(g_bus_publishes) / bp;

    std::printf("kernel micro-benchmarks (single core, steady-state)\n");
    std::printf("  %-22s %12.0f events/sec\n", "schedule+dispatch", sd_eps);
    std::printf("  %-22s %12.0f events/sec\n", "periodic re-arm", pe_eps);
    std::printf("  %-22s %12.0f events/sec\n", "churn (50% cancel)", ch_eps);
    std::printf("  %-22s %12.0f events/sec\n", "churn (90% cancel)", ch90_eps);
    std::printf("  %-22s %12.0f deliveries/sec\n", "bus publish", bp_eps);
    std::printf("  steady-state heap allocs/rep: %.0f (arena), %llu (bus pool)\n",
                steady_heap_allocs,
                static_cast<unsigned long long>(g_bus_steady_slot_allocs));

    report.metric("schedule_dispatch_events_per_sec_core", sd_eps,
                  "events/sec/core");
    report.metric("periodic_events_per_sec_core", pe_eps, "events/sec/core");
    report.metric("churn_events_per_sec_core", ch_eps, "events/sec/core");
    report.metric("churn_cancel90_events_per_sec_core", ch90_eps,
                  "events/sec/core");
    report.metric("churn_cancel90_compactions",
                  static_cast<double>(g_churn90_compactions), "sweeps/rep");
    report.metric("churn_cancel90_tombstones_compacted",
                  static_cast<double>(g_churn90_tombstones_compacted),
                  "events/rep");
    report.metric("bus_deliveries_per_sec_core", bp_eps, "events/sec/core");
    report.metric("steady_state_arena_heap_allocs", steady_heap_allocs,
                  "allocs/rep");
    report.metric("steady_state_arena_nodes_recycled", steady_recycled,
                  "nodes/rep");
    report.metric("steady_state_bus_pool_slot_allocs",
                  static_cast<double>(g_bus_steady_slot_allocs), "allocs/rep");
    report.metric("arena_chunk_allocs_total",
                  static_cast<double>(g_arena.stats().chunk_allocs), "chunks");
    report.metric("arena_heap_callbacks_total",
                  static_cast<double>(g_arena.stats().heap_callbacks),
                  "callbacks");
    if (!report.write()) return 1;
    return 0;
}
