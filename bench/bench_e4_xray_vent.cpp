/// \file bench_e4_xray_vent.cpp
/// \brief Experiment E4 — on-demand device coordination: automated
/// ICE-app synchronization of ventilator pause and X-ray exposure vs.
/// the manual human workflow.
///
/// E4a: operator-quality sweep. The automated app is compared against
///      manual coordination at increasing levels of human sloppiness
///      (premature shots / distraction). 60 procedures per cell.
/// E4b: network sweep for the automated app: loss on the command path
///      forces retries and aborts, with the ventilator's device-local
///      auto-resume as the backstop (no prolonged apnea ever).

#include <iostream>

#include "bench_io.hpp"
#include "core/core.hpp"
#include "scenario/scenario.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

namespace {
// Full-size by default; `--quick` shrinks it (JSON smoke test).
std::size_t g_procedures = 60;
}

int main(int argc, char** argv) {
    mcps::benchio::JsonReporter json{argc, argv, "e4_xray_vent"};
    json.set_seed(41);
    if (mcps::benchio::quick_mode(argc, argv)) g_procedures = 4;
    std::cout << "E4: X-ray/ventilator synchronization — automated vs manual\n("
              << g_procedures << " procedures per cell)\n\n";

    // ---- E4a: automated vs manual at increasing sloppiness -----------
    {
        sim::Table t({"coordination", "sharp_rate", "mean_apnea_s",
                      "max_apnea_s", "auto_resumes", "retries"});
        auto add = [&t, &json](const std::string& label, const std::string& key,
                               const core::XrayScenarioResult& r) {
            t.row()
                .cell(label)
                .cell(r.sharp_rate, 3)
                .cell(r.mean_apnea_s, 2)
                .cell(r.max_apnea_s, 2)
                .cell(static_cast<std::uint64_t>(r.safety_auto_resumes))
                .cell(static_cast<std::uint64_t>(r.total_retries));
            json.metric("coord." + key + ".sharp_rate", r.sharp_rate, "ratio");
            json.metric("coord." + key + ".max_apnea_s", r.max_apnea_s, "s");
        };

        scenario::ScenarioSpec spec;
        spec.name = "xray";
        spec.seed = 41;
        spec.set("procedures", std::to_string(g_procedures));
        add("automated (ICE app)", "automated",
            core::run_xray_scenario(scenario::make_xray_config(spec)));

        struct Level {
            const char* label;
            const char* key;
            double premature, distraction;
        };
        for (const auto& lvl :
             {Level{"manual (careful)", "manual_careful", 0.03, 0.02},
              Level{"manual (typical)", "manual_typical", 0.12, 0.08},
              Level{"manual (rushed)", "manual_rushed", 0.30, 0.20}}) {
            scenario::ScenarioSpec mspec = spec;
            mspec.name = "xray-manual";
            auto m = scenario::make_xray_config(mspec);
            m.manual.premature_shot_probability = lvl.premature;
            m.manual.distraction_probability = lvl.distraction;
            add(lvl.label, lvl.key, core::run_xray_scenario(m));
        }
        t.print(std::cout, "E4a: coordination quality");
        std::cout << '\n';
    }

    // ---- E4b: the automated app under network loss -------------------
    {
        sim::Table t({"loss", "sharp_rate", "completed_rate", "mean_apnea_s",
                      "max_apnea_s", "retries", "auto_resumes"});
        scenario::ScenarioSpec spec;
        spec.name = "xray";
        spec.seed = 43;
        spec.set("procedures", std::to_string(g_procedures));
        spec.set("latency-ms", "40");
        spec.set("jitter-ms", "10");
        spec.set("max-retries", "12");
        for (const double loss : {0.0, 0.1, 0.2, 0.4}) {
            auto cfg = scenario::make_xray_config(spec);
            cfg.channel.loss_probability = loss;
            const auto r = core::run_xray_scenario(cfg);
            t.row()
                .cell(loss, 2)
                .cell(r.sharp_rate, 3)
                .cell(static_cast<double>(r.completed) /
                          static_cast<double>(r.procedures),
                      3)
                .cell(r.mean_apnea_s, 2)
                .cell(r.max_apnea_s, 2)
                .cell(static_cast<std::uint64_t>(r.total_retries))
                .cell(static_cast<std::uint64_t>(r.safety_auto_resumes));
            const std::string prefix =
                "loss." + std::to_string(static_cast<int>(loss * 100)) +
                "pct";
            json.metric(prefix + ".completed_rate",
                        static_cast<double>(r.completed) /
                            static_cast<double>(r.procedures),
                        "ratio");
            json.metric(prefix + ".max_apnea_s", r.max_apnea_s, "s");
        }
        t.print(std::cout, "E4b: automated coordination on a lossy network");
        std::cout << '\n';
    }

    std::cout
        << "Expected shape: the automated app takes ~every film sharp with a\n"
           "short bounded apnea; manual degrades with operator sloppiness\n"
           "(blurred repeats, long apneas rescued only by the ventilator's\n"
           "auto-resume). Under loss the app retries: completion stays high,\n"
           "apnea stays bounded by the device-local max-pause.\n";
    json.write();
    return 0;
}
