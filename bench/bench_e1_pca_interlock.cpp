/// \file bench_e1_pca_interlock.cpp
/// \brief Experiment E1 — the paper's flagship claim: a closed-loop PCA
/// safety interlock prevents opioid overdose harm that open-loop PCA
/// cannot, across patient variability, without destroying analgesia.
///
/// Design: for each patient archetype, sample a small population with
/// log-normal biological variability, run every patient for 4 simulated
/// hours under PCA-by-proxy pressing (the canonical defeat of PCA's
/// intrinsic safety), once per configuration:
///
///   open-loop  : no interlock (baseline)
///   spo2-only  : single-sensor interlock (pulse oximetry)
///   dual       : dual-sensor interlock (oximetry + capnography)
///
/// Reported per (archetype, configuration): severe-hypoxemia rate, mean
/// minimum true SpO2, mean minutes below SpO2 90, mean drug delivered
/// and mean pain score. A second table repeats the sweep under NORMAL
/// (pain-driven, sedation-limited) demand, showing that the interlock
/// never interferes with ordinary therapy.

#include <iostream>

#include "bench_io.hpp"
#include "core/core.hpp"
#include "scenario/scenario.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

namespace {

constexpr std::uint64_t kMasterSeed = 20260706;

// Full-size by default; `--quick` shrinks both (JSON smoke test).
std::size_t g_patients_per_cell = 10;
sim::SimDuration g_duration = 4_h;

struct CellResult {
    double severe_rate = 0;
    double mean_min_spo2 = 0;
    double mean_min_below90 = 0;  // minutes
    double mean_drug_mg = 0;
    double mean_pain = 0;
    double mean_stops = 0;
};

enum class LoopConfig { kOpen, kSpO2Only, kDual };

const char* name_of(LoopConfig c) {
    switch (c) {
        case LoopConfig::kOpen: return "open-loop";
        case LoopConfig::kSpO2Only: return "spo2-only";
        case LoopConfig::kDual: return "dual-sensor";
    }
    return "?";
}

const char* interlock_knob(LoopConfig c) {
    switch (c) {
        case LoopConfig::kOpen: return "off";
        case LoopConfig::kSpO2Only: return "spo2";
        case LoopConfig::kDual: return "dual";
    }
    return "?";
}

CellResult run_cell(physio::Archetype arch, LoopConfig loop,
                    core::DemandMode demand) {
    sim::RngStream pop_rng{kMasterSeed, "e1.population." +
                                            std::string{to_string(arch)}};
    const auto population =
        physio::sample_population(arch, g_patients_per_cell, pop_rng);

    // The registry spec carries the categorical knobs; the swept
    // quantities (sampled patient, per-patient seed, duration) are set
    // on the resolved config directly.
    scenario::ScenarioSpec spec;
    spec.name = "pca";
    spec.set("demand", demand == core::DemandMode::kProxy ? "proxy" : "normal");
    spec.set("interlock", interlock_knob(loop));

    CellResult cell;
    sim::RunningStats min_spo2, below90, drug, pain, stops;
    std::size_t severe = 0;
    for (std::size_t i = 0; i < population.size(); ++i) {
        auto cfg = scenario::make_pca_config(spec);
        cfg.seed = kMasterSeed + 1000 * static_cast<std::uint64_t>(i);
        cfg.duration = g_duration;
        cfg.patient = population[i];
        const auto r = core::run_pca_scenario(cfg);
        severe += r.severe_hypoxemia ? 1 : 0;
        min_spo2.add(r.min_spo2);
        below90.add(r.time_spo2_below_90_s / 60.0);
        drug.add(r.total_drug_mg);
        pain.add(r.mean_pain);
        stops.add(static_cast<double>(r.interlock.stops_issued));
    }
    cell.severe_rate =
        static_cast<double>(severe) / static_cast<double>(population.size());
    cell.mean_min_spo2 = min_spo2.mean();
    cell.mean_min_below90 = below90.mean();
    cell.mean_drug_mg = drug.mean();
    cell.mean_pain = pain.mean();
    cell.mean_stops = stops.mean();
    return cell;
}

void run_table(core::DemandMode demand, const std::string& title,
               const std::string& tag, mcps::benchio::JsonReporter& json) {
    sim::Table table({"archetype", "config", "severe_rate", "min_spo2",
                      "min_below90", "drug_mg", "pain", "stops"});
    for (const auto arch : physio::all_archetypes()) {
        for (const auto loop :
             {LoopConfig::kOpen, LoopConfig::kSpO2Only, LoopConfig::kDual}) {
            const auto cell = run_cell(arch, loop, demand);
            table.row()
                .cell(std::string{to_string(arch)})
                .cell(name_of(loop))
                .cell(cell.severe_rate, 2)
                .cell(cell.mean_min_spo2, 1)
                .cell(cell.mean_min_below90, 1)
                .cell(cell.mean_drug_mg, 2)
                .cell(cell.mean_pain, 1)
                .cell(cell.mean_stops, 1);
            const std::string prefix = tag + "." +
                                       std::string{to_string(arch)} + "." +
                                       name_of(loop);
            json.metric(prefix + ".severe_rate", cell.severe_rate, "ratio");
            json.metric(prefix + ".mean_pain", cell.mean_pain, "score");
        }
    }
    table.print(std::cout, title);
    std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
    mcps::benchio::JsonReporter json{argc, argv, "e1_pca_interlock"};
    json.set_seed(kMasterSeed);
    if (mcps::benchio::quick_mode(argc, argv)) {
        g_patients_per_cell = 2;
        g_duration = 30_min;
    }
    std::cout << "E1: PCA closed-loop safety interlock vs open-loop PCA\n"
              << "(" << g_patients_per_cell << " sampled patients per cell, "
              << g_duration.to_minutes() << " simulated minutes each)\n\n";
    run_table(core::DemandMode::kProxy,
              "E1a: PCA-by-proxy demand (intrinsic PCA safety defeated)",
              "proxy", json);
    run_table(core::DemandMode::kNormal,
              "E1b: normal pain-driven demand (therapy preserved)", "normal",
              json);
    std::cout
        << "Expected shape: open-loop shows severe hypoxemia for sensitive/\n"
           "high-risk archetypes under proxy pressing; both interlocks\n"
           "eliminate it, with the dual-sensor variant acting earlier; under\n"
           "normal demand all configurations are equally safe and deliver\n"
           "comparable analgesia (the interlock does not fight therapy).\n";
    json.write();
    return 0;
}
