/// \file bench_e8_fault_injection.cpp
/// \brief Experiment E8 — safety must hold under sensor and device
/// faults (the paper's "high-confidence under real-world conditions"
/// challenge). Faults are injected mid-crisis; the fail-safe vs
/// fail-operational interlock policies are compared.
///
/// Scenario: opioid-sensitive patient, proxy pressing, dual-sensor
/// interlock. At t = 10 min (before the first interlock trigger, while
/// the overdose is developing) one of the following faults strikes:
///
///   none              : control run
///   oxi-dropout       : pulse oximeter probe-off for 10 minutes
///   cap-dropout       : capnometer cannula displaced for 10 minutes
///   both-dropout      : both sensors silent for 10 minutes
///   oxi-crash         : oximeter crashes outright (no recovery)
///   both-crash        : both sensors crash outright (worst case)
///   artifact-storm    : oximeter reads artifacts for 10 minutes
///   pump-occlusion    : pump raises a critical occlusion alarm
///
/// Reported: severe-hypoxemia rate, mean min SpO2, staleness stops, drug
/// delivered. The fail-safe policy must keep every fault safe (possibly
/// at a therapy cost); fail-operational exposes the blind-window risk.

#include <iostream>

#include "bench_io.hpp"
#include "core/core.hpp"
#include "scenario/scenario.hpp"
#include "sim/table.hpp"

using namespace mcps;
using namespace mcps::sim::literals;

namespace {

// Full-size by default; `--quick` shrinks both (JSON smoke test).
int g_seeds = 6;
sim::SimDuration g_duration = 3_h;

using Hook = std::function<void(core::PcaScenario&)>;

struct Fault {
    const char* label;
    Hook hook;  ///< may be null (control)
};

std::vector<Fault> faults() {
    return {
        {"none", nullptr},
        {"oxi-dropout",
         [](core::PcaScenario& sc) { sc.oximeter().force_dropout(10_min); }},
        {"cap-dropout",
         [](core::PcaScenario& sc) { sc.capnometer().force_dropout(10_min); }},
        {"both-dropout",
         [](core::PcaScenario& sc) {
             sc.oximeter().force_dropout(10_min);
             sc.capnometer().force_dropout(10_min);
         }},
        {"oxi-crash", [](core::PcaScenario& sc) { sc.oximeter().crash(); }},
        {"both-crash",
         [](core::PcaScenario& sc) {
             sc.oximeter().crash();
             sc.capnometer().crash();
         }},
        {"artifact-storm",
         [](core::PcaScenario& sc) { sc.oximeter().force_artifact(10_min); }},
        {"pump-occlusion",
         [](core::PcaScenario& sc) {
             sc.pump().inject_fault(devices::PumpAlarm::kOcclusion);
         }},
    };
}

}  // namespace

int main(int argc, char** argv) {
    mcps::benchio::JsonReporter json{argc, argv, "e8_fault_injection"};
    json.set_seed(7000);
    if (mcps::benchio::quick_mode(argc, argv)) {
        g_seeds = 2;
        g_duration = 30_min;
    }
    std::cout << "E8: fault injection during a developing overdose\n("
              << g_seeds << " seeds per cell, fault at t = 10 min)\n\n";

    for (const auto policy : {core::DataLossPolicy::kFailSafe,
                              core::DataLossPolicy::kFailOperational}) {
        sim::Table t({"fault", "severe_rate", "mean_min_spo2",
                      "staleness_stops", "drug_mg", "stops"});
        // The registry spec fixes the envelope; the mid-run fault hook
        // is the swept part and stays on the resolved config.
        scenario::ScenarioSpec spec;
        spec.name = "pca";
        spec.set("patient", "opioid-sensitive");
        spec.set("interlock", "dual");
        spec.set("policy", policy == core::DataLossPolicy::kFailOperational
                               ? "fail-operational"
                               : "fail-safe");
        for (const auto& fault : faults()) {
            int severe = 0;
            sim::RunningStats min_spo2, dls, drug, stops;
            for (int s = 0; s < g_seeds; ++s) {
                auto cfg = scenario::make_pca_config(spec);
                cfg.seed = 7000 + static_cast<std::uint64_t>(s);
                cfg.duration = g_duration;
                if (fault.hook) {
                    cfg.hook_at = sim::SimTime::origin() + 10_min;
                    cfg.mid_run_hook = fault.hook;
                }
                const auto r = core::run_pca_scenario(cfg);
                severe += r.severe_hypoxemia ? 1 : 0;
                min_spo2.add(r.min_spo2);
                dls.add(static_cast<double>(r.interlock.data_loss_stops));
                drug.add(r.total_drug_mg);
                stops.add(static_cast<double>(r.interlock.stops_issued));
            }
            t.row()
                .cell(fault.label)
                .cell(static_cast<double>(severe) / g_seeds, 2)
                .cell(min_spo2.mean(), 1)
                .cell(dls.mean(), 1)
                .cell(drug.mean(), 2)
                .cell(stops.mean(), 1);
            const std::string key = std::string{core::to_string(policy)} +
                                    "." + fault.label;
            json.metric(key + ".severe_rate",
                        static_cast<double>(severe) / g_seeds, "ratio");
            json.metric(key + ".drug_mg", drug.mean(), "mg");
        }
        t.print(std::cout, std::string{"E8: policy = "} +
                               std::string{core::to_string(policy)});
        std::cout << '\n';
    }

    std::cout
        << "Expected shape: under fail-safe every fault stays severe-free\n"
           "(sensor silence stops the pump preemptively; therapy dips\n"
           "instead); under fail-operational the dropout/crash faults open a\n"
           "blind window in which the overdose can progress unchecked —\n"
           "the quantitative argument for the fail-safe default.\n";
    json.write();
    return 0;
}
