/// \file test_device_base.cpp
/// \brief Tests for the Device base-class contract (lifecycle, status
/// publications, heartbeats, crash semantics) plus pump timing details
/// not covered by the requirement tests.

#include <gtest/gtest.h>

#include "devices/devices.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;

/// Minimal concrete device for base-class behaviour.
class NullDevice : public devices::Device {
public:
    NullDevice(devices::DeviceContext ctx, std::string name)
        : devices::Device{ctx, std::move(name),
                          devices::DeviceKind::kMonitor} {
        add_capability("null");
    }
    int starts = 0;
    int stops = 0;

protected:
    void on_start() override { ++starts; }
    void on_stop() override { ++stops; }
};

class DeviceBaseTest : public ::testing::Test {
protected:
    DeviceBaseTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          ctx_{sim_, bus_, trace_} {}

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    devices::DeviceContext ctx_;
};

TEST_F(DeviceBaseTest, EmptyNameRejected) {
    EXPECT_THROW(NullDevice(ctx_, ""), std::invalid_argument);
}

TEST_F(DeviceBaseTest, StartStopLifecycle) {
    NullDevice d{ctx_, "d1"};
    EXPECT_FALSE(d.running());
    std::vector<std::string> statuses;
    bus_.subscribe("t", "status/d1", [&](const net::Message& m) {
        statuses.push_back(
            net::payload_as<net::StatusPayload>(m)->state);
    });
    d.start();
    EXPECT_TRUE(d.running());
    d.start();  // idempotent
    EXPECT_EQ(d.starts, 1);
    d.stop();
    EXPECT_FALSE(d.running());
    d.stop();  // idempotent
    EXPECT_EQ(d.stops, 1);
    sim_.run_all();
    ASSERT_EQ(statuses.size(), 2u);
    EXPECT_EQ(statuses[0], "online");
    EXPECT_EQ(statuses[1], "offline");
}

TEST_F(DeviceBaseTest, HeartbeatsCountUpAtConfiguredPeriod) {
    NullDevice d{ctx_, "d1"};
    d.set_heartbeat_period(2_s);
    std::vector<std::uint64_t> counts;
    bus_.subscribe("t", "heartbeat/d1", [&](const net::Message& m) {
        counts.push_back(net::payload_as<net::HeartbeatPayload>(m)->count);
    });
    d.start();
    sim_.run_for(10_s);
    ASSERT_EQ(counts.size(), 5u);
    EXPECT_EQ(counts.front(), 0u);
    EXPECT_EQ(counts.back(), 4u);
    d.stop();
    sim_.run_for(10_s);
    EXPECT_EQ(counts.size(), 5u);  // no heartbeats after stop
}

TEST_F(DeviceBaseTest, HeartbeatPeriodLockedAfterStart) {
    NullDevice d{ctx_, "d1"};
    d.start();
    EXPECT_THROW(d.set_heartbeat_period(1_s), std::logic_error);
    NullDevice e{ctx_, "d2"};
    EXPECT_THROW(e.set_heartbeat_period(-(1_s)), std::invalid_argument);
}

TEST_F(DeviceBaseTest, CrashIsSilentAndMarked) {
    NullDevice d{ctx_, "d1"};
    d.set_heartbeat_period(1_s);
    d.start();
    int heartbeats = 0;
    bus_.subscribe("t", "heartbeat/d1",
                   [&](const net::Message&) { ++heartbeats; });
    sim_.run_for(3_s);
    const int before = heartbeats;
    d.crash();
    sim_.run_for(10_s);
    EXPECT_EQ(heartbeats, before);  // silence, no offline status
    EXPECT_TRUE(d.crashed());
    EXPECT_EQ(trace_.count_marks("crash/d1"), 1u);
    // Restart clears the crash flag.
    d.stop();
    d.start();
    EXPECT_FALSE(d.crashed());
}

TEST_F(DeviceBaseTest, KindNamesComplete) {
    using devices::DeviceKind;
    EXPECT_EQ(devices::to_string(DeviceKind::kInfusionPump), "infusion-pump");
    EXPECT_EQ(devices::to_string(DeviceKind::kCapnometer), "capnometer");
    EXPECT_EQ(devices::to_string(DeviceKind::kVentilator), "ventilator");
    EXPECT_EQ(devices::to_string(DeviceKind::kXRay), "x-ray");
    EXPECT_EQ(devices::to_string(DeviceKind::kSupervisor), "supervisor");
}

class PumpTimingTest : public DeviceBaseTest {
protected:
    PumpTimingTest()
        : patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)} {}
    physio::Patient patient_;
};

TEST_F(PumpTimingTest, BolusDeliveredAtConfiguredRate) {
    devices::Prescription rx;
    rx.basal = physio::InfusionRate::mg_per_hour(0.0);
    rx.bolus_dose = physio::Dose::mg(1.0);
    rx.bolus_rate_mg_per_min = 2.0;  // 1 mg takes 30 s
    rx.max_hourly = physio::Dose::mg(6.0);
    devices::GpcaPump pump{ctx_, "p", patient_, rx};
    pump.start();
    sim_.run_for(3_s);
    ASSERT_TRUE(pump.press_button());
    EXPECT_EQ(pump.state(), devices::PumpState::kBolusActive);
    sim_.run_for(15_s);
    // Roughly half the bolus delivered mid-way.
    EXPECT_NEAR(pump.stats().total_delivered.as_mg(), 0.5, 0.1);
    sim_.run_for(20_s);
    EXPECT_EQ(pump.state(), devices::PumpState::kInfusing);
    EXPECT_NEAR(pump.stats().total_delivered.as_mg(), 1.0, 1e-6);
}

TEST_F(PumpTimingTest, LockoutUntilAccessorTracksPrescription) {
    devices::Prescription rx;
    rx.lockout = 10_min;
    devices::GpcaPump pump{ctx_, "p", patient_, rx};
    pump.start();
    sim_.run_for(3_s);
    const auto before = sim_.now();
    ASSERT_TRUE(pump.press_button());
    EXPECT_EQ(pump.lockout_until(), before + 10_min);
}

TEST_F(PumpTimingTest, SlidingWindowForgetsDosesAfterAnHour) {
    devices::Prescription rx;
    rx.basal = physio::InfusionRate::mg_per_hour(0.0);
    rx.bolus_dose = physio::Dose::mg(1.0);
    rx.max_hourly = physio::Dose::mg(6.0);
    devices::GpcaPump pump{ctx_, "p", patient_, rx};
    pump.start();
    sim_.run_for(3_s);
    ASSERT_TRUE(pump.press_button());
    sim_.run_for(10_min);
    EXPECT_NEAR(pump.delivered_last_hour().as_mg(), 1.0, 1e-6);
    sim_.run_for(55_min);  // bolus now older than an hour
    // prune happens on tick; with zero basal the pump still ticks.
    EXPECT_NEAR(pump.delivered_last_hour().as_mg(), 0.0, 1e-6);
}

TEST_F(PumpTimingTest, SelfTestDelaysDelivery) {
    devices::PumpConfig cfg;
    cfg.selftest_duration = 10_s;
    devices::GpcaPump pump{ctx_, "p", patient_,
                           devices::Prescription{}, cfg};
    pump.start();
    EXPECT_EQ(pump.state(), devices::PumpState::kSelfTest);
    EXPECT_FALSE(pump.press_button());  // denied during self-test (R6)
    sim_.run_for(11_s);
    EXPECT_EQ(pump.state(), devices::PumpState::kInfusing);
}

}  // namespace
