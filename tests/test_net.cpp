/// \file test_net.cpp
/// \brief Unit tests for messages, channels and the pub/sub bus.

#include <gtest/gtest.h>

#include "net/net.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using sim::SimDuration;
using sim::SimTime;

TEST(TopicMatch, ExactAndWildcard) {
    EXPECT_TRUE(net::topic_matches("a/b", "a/b"));
    EXPECT_FALSE(net::topic_matches("a/b", "a/c"));
    EXPECT_TRUE(net::topic_matches("vitals/*", "vitals/bed1/spo2"));
    EXPECT_TRUE(net::topic_matches("vitals/*", "vitals/x"));
    EXPECT_FALSE(net::topic_matches("vitals/*", "vitals/"));
    EXPECT_FALSE(net::topic_matches("vitals/*", "vitals"));
    EXPECT_FALSE(net::topic_matches("vitals/*", "alarms/bed1"));
    EXPECT_TRUE(net::topic_matches("*", "anything/at/all"));
}

TEST(Message, PayloadKindAndAccessor) {
    net::Message m;
    m.payload = net::VitalSignPayload{"spo2", 97.0, true};
    EXPECT_EQ(net::payload_kind(m), "vital");
    ASSERT_NE(net::payload_as<net::VitalSignPayload>(m), nullptr);
    EXPECT_EQ(net::payload_as<net::CommandPayload>(m), nullptr);
    m.payload = net::CommandPayload{"stop_infusion", {}, 7};
    EXPECT_EQ(net::payload_kind(m), "command");
    m.payload = net::AckPayload{};
    EXPECT_EQ(net::payload_kind(m), "ack");
    m.payload = net::HeartbeatPayload{};
    EXPECT_EQ(net::payload_kind(m), "heartbeat");
    m.payload = net::StatusPayload{};
    EXPECT_EQ(net::payload_kind(m), "status");
}

TEST(ChannelParameters, Validation) {
    net::ChannelParameters p;
    EXPECT_NO_THROW(p.validate());
    p.loss_probability = 1.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.base_latency = -(1_ms);
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.duplicate_probability = -0.1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Channel, IdealChannelDeliversInstantly) {
    net::Channel ch{net::ChannelParameters::ideal(), sim::RngStream{1}};
    for (int i = 0; i < 100; ++i) {
        const auto plan = ch.plan_delivery(SimTime::origin());
        EXPECT_FALSE(plan.dropped);
        EXPECT_FALSE(plan.duplicated);
        EXPECT_EQ(plan.delay, SimDuration::zero());
    }
}

TEST(Channel, LatencyAndJitterBounds) {
    net::ChannelParameters p;
    p.base_latency = 10_ms;
    p.jitter_sd = 2_ms;
    net::Channel ch{p, sim::RngStream{2}};
    sim::RunningStats delays;
    for (int i = 0; i < 5000; ++i) {
        const auto plan = ch.plan_delivery(SimTime::origin());
        ASSERT_FALSE(plan.dropped);
        ASSERT_GE(plan.delay, SimDuration::zero());
        delays.add(plan.delay.to_millis());
    }
    EXPECT_NEAR(delays.mean(), 10.0, 0.2);
    EXPECT_NEAR(delays.stddev(), 2.0, 0.2);
}

TEST(Channel, LossRateMatchesParameter) {
    net::ChannelParameters p;
    p.loss_probability = 0.25;
    net::Channel ch{p, sim::RngStream{3}};
    int dropped = 0;
    for (int i = 0; i < 20000; ++i) {
        dropped += ch.plan_delivery(SimTime::origin()).dropped ? 1 : 0;
    }
    EXPECT_NEAR(dropped / 20000.0, 0.25, 0.02);
}

TEST(Channel, DuplicationRate) {
    net::ChannelParameters p;
    p.duplicate_probability = 0.1;
    net::Channel ch{p, sim::RngStream{4}};
    int dup = 0;
    for (int i = 0; i < 20000; ++i) {
        dup += ch.plan_delivery(SimTime::origin()).duplicated ? 1 : 0;
    }
    EXPECT_NEAR(dup / 20000.0, 0.1, 0.02);
}

TEST(Channel, ReorderHoldbackDelaysWithinWindow) {
    net::ChannelParameters p;
    p.base_latency = sim::SimDuration::zero();
    p.jitter_sd = sim::SimDuration::zero();
    p.reorder_probability = 1.0;
    p.reorder_window = 200_ms;
    net::Channel ch{p, sim::RngStream{41}};
    int held = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto plan = ch.plan_delivery(SimTime::origin());
        ASSERT_FALSE(plan.dropped);
        ASSERT_LE(plan.delay, 200_ms);
        held += plan.delay > SimDuration::zero() ? 1 : 0;
    }
    // Holdback is uniform over the window; virtually all draws are > 0.
    EXPECT_GT(held, 1900);
}

TEST(Channel, ReorderRateMatchesParameter) {
    net::ChannelParameters p;
    p.base_latency = sim::SimDuration::zero();
    p.jitter_sd = sim::SimDuration::zero();
    p.reorder_probability = 0.3;
    net::Channel ch{p, sim::RngStream{43}};
    int held = 0;
    for (int i = 0; i < 20000; ++i) {
        held += ch.plan_delivery(SimTime::origin()).delay >
                        SimDuration::zero()
                    ? 1
                    : 0;
    }
    EXPECT_NEAR(held / 20000.0, 0.3, 0.02);
}

TEST(Channel, CorruptRateMatchesParameter) {
    net::ChannelParameters p;
    p.corrupt_probability = 0.2;
    net::Channel ch{p, sim::RngStream{47}};
    int corrupted = 0;
    for (int i = 0; i < 20000; ++i) {
        corrupted += ch.plan_delivery(SimTime::origin()).corrupted ? 1 : 0;
    }
    EXPECT_NEAR(corrupted / 20000.0, 0.2, 0.02);
}

TEST(ChannelParameters, ReorderAndCorruptValidation) {
    net::ChannelParameters p;
    p.reorder_probability = 1.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.corrupt_probability = -0.1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.reorder_probability = 0.5;
    p.reorder_window = -(1_ms);
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Channel, OutageDropsEverything) {
    net::Channel ch{net::ChannelParameters::ideal(), sim::RngStream{5}};
    ch.add_outage(SimTime::origin() + 10_s, SimTime::origin() + 20_s);
    EXPECT_FALSE(ch.plan_delivery(SimTime::origin() + 5_s).dropped);
    EXPECT_TRUE(ch.plan_delivery(SimTime::origin() + 10_s).dropped);
    EXPECT_TRUE(ch.plan_delivery(SimTime::origin() + 15_s).dropped);
    EXPECT_FALSE(ch.plan_delivery(SimTime::origin() + 20_s).dropped);
    EXPECT_TRUE(ch.in_outage(SimTime::origin() + 12_s));
    EXPECT_THROW(ch.add_outage(SimTime::origin() + 5_s, SimTime::origin() + 5_s),
                 std::invalid_argument);
}

TEST(Bus, DeliversToMatchingSubscribers) {
    sim::Simulation s;
    net::Bus bus{s, net::ChannelParameters::ideal()};
    std::vector<std::string> got;
    bus.subscribe("a", "vitals/*", [&](const net::Message& m) {
        got.push_back("a:" + m.topic);
    });
    bus.subscribe("b", "alarm/x", [&](const net::Message& m) {
        got.push_back("b:" + m.topic);
    });
    bus.publish("pub", "vitals/bed1/spo2", net::VitalSignPayload{});
    bus.publish("pub", "alarm/x", net::StatusPayload{});
    bus.publish("pub", "other", net::StatusPayload{});
    s.run_all();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], "a:vitals/bed1/spo2");
    EXPECT_EQ(got[1], "b:alarm/x");
    EXPECT_EQ(bus.stats().published, 3u);
    EXPECT_EQ(bus.stats().delivered, 2u);
}

TEST(Bus, SequenceNumbersIncrease) {
    sim::Simulation s;
    net::Bus bus{s, net::ChannelParameters::ideal()};
    const auto s1 = bus.publish("p", "t", net::StatusPayload{});
    const auto s2 = bus.publish("p", "t", net::StatusPayload{});
    EXPECT_GT(s2, s1);
}

TEST(Bus, EnvelopeFieldsPopulated) {
    sim::Simulation s;
    net::Bus bus{s, net::ChannelParameters::ideal()};
    std::optional<net::Message> seen;
    bus.subscribe("sub", "t", [&](const net::Message& m) { seen = m; });
    s.run_for(5_s);
    bus.publish("sender", "t", net::VitalSignPayload{"spo2", 91.5, true});
    s.run_all();
    ASSERT_TRUE(seen.has_value());
    EXPECT_EQ(seen->sender, "sender");
    EXPECT_EQ(seen->topic, "t");
    EXPECT_EQ(seen->sent_at, SimTime::origin() + 5_s);
    EXPECT_DOUBLE_EQ(
        net::payload_as<net::VitalSignPayload>(*seen)->value, 91.5);
}

TEST(Bus, LatencyAppliesPerSubscriberChannel) {
    sim::Simulation s;
    net::Bus bus{s, net::ChannelParameters::ideal()};
    net::ChannelParameters slow;
    slow.base_latency = 100_ms;
    slow.jitter_sd = sim::SimDuration::zero();
    bus.set_endpoint_channel("slow_sub", slow);

    std::vector<std::pair<std::string, double>> arrivals;
    bus.subscribe("fast_sub", "t", [&](const net::Message&) {
        arrivals.emplace_back("fast", s.now().to_seconds());
    });
    bus.subscribe("slow_sub", "t", [&](const net::Message&) {
        arrivals.emplace_back("slow", s.now().to_seconds());
    });
    bus.publish("p", "t", net::StatusPayload{});
    s.run_all();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0].first, "fast");
    EXPECT_DOUBLE_EQ(arrivals[0].second, 0.0);
    EXPECT_EQ(arrivals[1].first, "slow");
    EXPECT_NEAR(arrivals[1].second, 0.1, 1e-9);
    EXPECT_GT(bus.stats().delivery_latency_ms.max(), 99.0);
}

TEST(Bus, LossyChannelDrops) {
    sim::Simulation s;
    net::ChannelParameters lossy;
    lossy.base_latency = sim::SimDuration::zero();
    lossy.jitter_sd = sim::SimDuration::zero();
    lossy.loss_probability = 0.5;
    net::Bus bus{s, lossy};
    int got = 0;
    bus.subscribe("sub", "t", [&](const net::Message&) { ++got; });
    for (int i = 0; i < 2000; ++i) bus.publish("p", "t", net::StatusPayload{});
    s.run_all();
    EXPECT_NEAR(got, 1000, 100);
    EXPECT_EQ(bus.stats().dropped + bus.stats().delivered, 2000u);
}

TEST(Bus, UnsubscribeStopsDeliveryIncludingInFlight) {
    sim::Simulation s;
    net::ChannelParameters delayed;
    delayed.base_latency = 50_ms;
    delayed.jitter_sd = sim::SimDuration::zero();
    net::Bus bus{s, delayed};
    int got = 0;
    auto id = bus.subscribe("sub", "t", [&](const net::Message&) { ++got; });
    bus.publish("p", "t", net::StatusPayload{});  // in flight
    EXPECT_TRUE(bus.unsubscribe(id));
    EXPECT_FALSE(bus.unsubscribe(id));  // second time: gone
    s.run_all();
    EXPECT_EQ(got, 0);  // in-flight delivery cancelled by detach
}

TEST(Bus, SubscriberAddedAfterPublishMissesMessage) {
    sim::Simulation s;
    net::ChannelParameters delayed;
    delayed.base_latency = 50_ms;
    net::Bus bus{s, delayed};
    bus.publish("p", "t", net::StatusPayload{});
    int got = 0;
    bus.subscribe("late", "t", [&](const net::Message&) { ++got; });
    s.run_all();
    EXPECT_EQ(got, 0);
}

TEST(Bus, DuplicationDeliversTwice) {
    sim::Simulation s;
    net::ChannelParameters dup;
    dup.base_latency = sim::SimDuration::zero();
    dup.jitter_sd = sim::SimDuration::zero();
    dup.duplicate_probability = 1.0;
    net::Bus bus{s, dup};
    int got = 0;
    bus.subscribe("sub", "t", [&](const net::Message&) { ++got; });
    bus.publish("p", "t", net::StatusPayload{});
    s.run_all();
    EXPECT_EQ(got, 2);
    EXPECT_EQ(bus.stats().duplicated, 1u);
}

TEST(Bus, CorruptionGarblesVitalsOnly) {
    sim::Simulation s;
    net::ChannelParameters corrupting;
    corrupting.base_latency = sim::SimDuration::zero();
    corrupting.jitter_sd = sim::SimDuration::zero();
    corrupting.corrupt_probability = 1.0;
    net::Bus bus{s, corrupting};
    std::vector<double> vitals;
    int commands = 0;
    bus.subscribe("sub", "vitals/*", [&](const net::Message& m) {
        vitals.push_back(net::payload_as<net::VitalSignPayload>(m)->value);
    });
    bus.subscribe("sub", "cmd/p", [&](const net::Message& m) {
        ASSERT_NE(net::payload_as<net::CommandPayload>(m), nullptr);
        ++commands;
    });
    bus.publish("oxi", "vitals/bed1/spo2", net::VitalSignPayload{"spo2", 97.0, true});
    bus.publish("sup", "cmd/p", net::CommandPayload{"stop_infusion", {}, 1});
    s.run_all();
    ASSERT_EQ(vitals.size(), 1u);
    // Vital garbled to a value unrelated to the original...
    EXPECT_NE(vitals[0], 97.0);
    EXPECT_GE(vitals[0], 0.0);
    EXPECT_LE(vitals[0], 250.0);
    // ...while the CRC-protected command payload passes intact.
    EXPECT_EQ(commands, 1);
    EXPECT_EQ(bus.stats().corrupted, 1u);
}

TEST(Bus, CorruptionIsDeterministicPerSequence) {
    const auto run = [] {
        sim::Simulation s;
        net::ChannelParameters corrupting;
        corrupting.corrupt_probability = 1.0;
        net::Bus bus{s, corrupting};
        std::vector<double> got;
        bus.subscribe("sub", "v", [&](const net::Message& m) {
            got.push_back(net::payload_as<net::VitalSignPayload>(m)->value);
        });
        for (int i = 0; i < 5; ++i) {
            bus.publish("p", "v", net::VitalSignPayload{"spo2", 97.0, true});
        }
        s.run_all();
        return got;
    };
    EXPECT_EQ(run(), run());
}

TEST(Bus, PartitionSilencesAllEndpointsIncludingLateOnes) {
    sim::Simulation s;
    net::Bus bus{s, net::ChannelParameters::ideal()};
    int got_a = 0, got_b = 0;
    bus.subscribe("a", "t", [&](const net::Message&) { ++got_a; });
    bus.add_partition(SimTime::origin() + 10_s, SimTime::origin() + 20_s);
    // Endpoint whose channel is created lazily *after* the partition was
    // declared must still observe it.
    bus.subscribe("b", "t", [&](const net::Message&) { ++got_b; });
    bus.publish("p", "t", net::StatusPayload{});  // before: delivered
    s.run_for(15_s);
    bus.publish("p", "t", net::StatusPayload{});  // inside: dropped
    s.run_for(10_s);
    bus.publish("p", "t", net::StatusPayload{});  // after: delivered
    s.run_all();
    EXPECT_EQ(got_a, 2);
    EXPECT_EQ(got_b, 2);
}

TEST(Bus, EmptyHandlerRejected) {
    sim::Simulation s;
    net::Bus bus{s};
    EXPECT_THROW(bus.subscribe("x", "t", nullptr), std::invalid_argument);
}

TEST(Bus, OutageInjectionViaEndpointChannel) {
    sim::Simulation s;
    net::Bus bus{s, net::ChannelParameters::ideal()};
    int got = 0;
    bus.subscribe("sub", "t", [&](const net::Message&) { ++got; });
    bus.endpoint_channel("sub").add_outage(SimTime::origin(),
                                           SimTime::origin() + 10_s);
    bus.publish("p", "t", net::StatusPayload{});
    s.run_for(11_s);
    bus.publish("p", "t", net::StatusPayload{});
    s.run_all();
    EXPECT_EQ(got, 1);  // first publish fell in the outage
}

}  // namespace
