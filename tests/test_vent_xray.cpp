/// \file test_vent_xray.cpp
/// \brief Tests for the ventilator (safe-pause semantics, V1 auto-resume)
/// and the X-ray machine (motion-blur determination).

#include <gtest/gtest.h>

#include "devices/devices.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;

class VentXrayTest : public ::testing::Test {
protected:
    VentXrayTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)},
          ctx_{sim_, bus_, trace_} {}

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    physio::Patient patient_;
    devices::DeviceContext ctx_;
};

TEST_F(VentXrayTest, VentilatorStartsVentilating) {
    devices::Ventilator vent{ctx_, "vent1", patient_};
    vent.start();
    sim_.run_for(5_s);
    EXPECT_EQ(vent.mode(), devices::VentMode::kVentilating);
    EXPECT_TRUE(vent.chest_moving());
    EXPECT_TRUE(patient_.on_ventilator());
}

TEST_F(VentXrayTest, PauseStopsChestMotionAndBreathing) {
    devices::Ventilator vent{ctx_, "vent1", patient_};
    sim_.schedule_periodic(500_ms, [this] { patient_.step(0.5); });
    vent.start();
    sim_.run_for(5_s);
    EXPECT_TRUE(vent.pause(10_s));
    EXPECT_EQ(vent.mode(), devices::VentMode::kPaused);
    EXPECT_FALSE(vent.chest_moving());
    sim_.run_for(5_s);
    EXPECT_TRUE(patient_.is_apneic());
}

TEST_F(VentXrayTest, ResumeEndsPauseEarly) {
    devices::Ventilator vent{ctx_, "vent1", patient_};
    vent.start();
    sim_.run_for(1_s);
    vent.pause(20_s);
    sim_.run_for(3_s);
    vent.resume();
    EXPECT_EQ(vent.mode(), devices::VentMode::kVentilating);
    EXPECT_EQ(vent.stats().command_resumes, 1u);
    EXPECT_EQ(vent.stats().safety_auto_resumes, 0u);
    // The cancelled safety timer must not fire later.
    sim_.run_for(60_s);
    EXPECT_EQ(vent.mode(), devices::VentMode::kVentilating);
    EXPECT_EQ(vent.stats().safety_auto_resumes, 0u);
}

TEST_F(VentXrayTest, V1_SafetyAutoResumeAfterMaxPause) {
    devices::VentilatorConfig cfg;
    cfg.max_pause = 15_s;
    devices::Ventilator vent{ctx_, "vent1", patient_, cfg};
    vent.start();
    sim_.run_for(1_s);
    // Ask for far longer than allowed; the clamp applies.
    EXPECT_TRUE(vent.pause(10_min));
    sim_.run_for(14_s);
    EXPECT_EQ(vent.mode(), devices::VentMode::kPaused);
    sim_.run_for(2_s);
    EXPECT_EQ(vent.mode(), devices::VentMode::kVentilating);
    EXPECT_EQ(vent.stats().safety_auto_resumes, 1u);
}

TEST_F(VentXrayTest, PauseRejectedWhenNotVentilating) {
    devices::Ventilator vent{ctx_, "vent1", patient_};
    EXPECT_FALSE(vent.pause(5_s));  // not started
    vent.start();
    sim_.run_for(1_s);
    EXPECT_TRUE(vent.pause(5_s));
    EXPECT_FALSE(vent.pause(5_s));  // already paused
    EXPECT_FALSE(vent.pause(-(1_s)));
}

TEST_F(VentXrayTest, RemotePauseResumeCommands) {
    devices::Ventilator vent{ctx_, "vent1", patient_};
    vent.start();
    sim_.run_for(1_s);
    std::vector<net::AckPayload> acks;
    bus_.subscribe("t", "ack/vent1", [&](const net::Message& m) {
        if (const auto* a = net::payload_as<net::AckPayload>(m)) {
            acks.push_back(*a);
        }
    });
    net::CommandPayload pause;
    pause.action = "pause";
    pause.args["duration_s"] = 8.0;
    pause.command_seq = 1;
    bus_.publish("app", "cmd/vent1", pause);
    sim_.run_for(1_s);
    EXPECT_EQ(vent.mode(), devices::VentMode::kPaused);
    net::CommandPayload resume;
    resume.action = "resume";
    resume.command_seq = 2;
    bus_.publish("app", "cmd/vent1", resume);
    sim_.run_for(1_s);
    EXPECT_EQ(vent.mode(), devices::VentMode::kVentilating);
    ASSERT_EQ(acks.size(), 2u);
    EXPECT_TRUE(acks[0].success);
    EXPECT_TRUE(acks[1].success);
}

TEST_F(VentXrayTest, StandbyChestMotionFollowsPatient) {
    devices::Ventilator vent{ctx_, "vent1", patient_};
    // Not started: standby; healthy patient breathes spontaneously.
    EXPECT_TRUE(vent.chest_moving());
}

TEST_F(VentXrayTest, XrayRequiresMotionProbe) {
    EXPECT_THROW(devices::XRayMachine(ctx_, "x", nullptr),
                 std::invalid_argument);
}

TEST_F(VentXrayTest, XraySharpWhenStill) {
    devices::XRayMachine xray{ctx_, "x1", [] { return false; }};
    xray.start();
    EXPECT_TRUE(xray.expose());
    EXPECT_TRUE(xray.busy());
    EXPECT_FALSE(xray.expose());  // busy
    sim_.run_for(5_s);
    ASSERT_EQ(xray.results().size(), 1u);
    EXPECT_TRUE(xray.results()[0].sharp);
    EXPECT_DOUBLE_EQ(xray.results()[0].motion_fraction, 0.0);
    EXPECT_FALSE(xray.busy());
}

TEST_F(VentXrayTest, XrayBlurredWhenMoving) {
    devices::XRayMachine xray{ctx_, "x1", [] { return true; }};
    xray.start();
    xray.expose();
    sim_.run_for(5_s);
    ASSERT_EQ(xray.results().size(), 1u);
    EXPECT_FALSE(xray.results()[0].sharp);
    EXPECT_GT(xray.results()[0].motion_fraction, 0.9);
}

TEST_F(VentXrayTest, XrayPartialMotionThreshold) {
    // Motion only in the first 10% of the window: still sharp.
    devices::XRayConfig cfg;
    cfg.prep_time = 1_s;
    cfg.exposure = 1_s;
    cfg.blur_fraction_threshold = 0.15;
    bool moving = true;
    devices::XRayMachine xray{ctx_, "x1", [&] { return moving; }, cfg};
    xray.start();
    xray.expose();
    // Motion stops shortly after the exposure window begins.
    sim_.schedule_at(sim_.now() + 1_s + 80_ms, [&] { moving = false; });
    sim_.run_for(5_s);
    ASSERT_EQ(xray.results().size(), 1u);
    EXPECT_TRUE(xray.results()[0].sharp);
    EXPECT_GT(xray.results()[0].motion_fraction, 0.0);
    EXPECT_LE(xray.results()[0].motion_fraction, 0.15);
}

TEST_F(VentXrayTest, XrayRemoteExposeCommand) {
    devices::XRayMachine xray{ctx_, "x1", [] { return false; }};
    xray.start();
    std::optional<net::StatusPayload> image;
    bus_.subscribe("t", "image/x1", [&](const net::Message& m) {
        if (const auto* s = net::payload_as<net::StatusPayload>(m)) image = *s;
    });
    net::CommandPayload cmd;
    cmd.action = "expose";
    cmd.command_seq = 5;
    bus_.publish("app", "cmd/x1", cmd);
    sim_.run_for(5_s);
    ASSERT_TRUE(image.has_value());
    EXPECT_EQ(image->state, "sharp");
}

TEST_F(VentXrayTest, EndToEndPauseShootResume) {
    devices::Ventilator vent{ctx_, "vent1", patient_};
    devices::XRayMachine xray{ctx_, "x1",
                              [&vent] { return vent.chest_moving(); }};
    vent.start();
    xray.start();
    sim_.run_for(2_s);
    // Coordinated: pause, wait for prep+exposure, resume.
    vent.pause(10_s);
    xray.expose();
    sim_.run_for(5_s);
    vent.resume();
    ASSERT_EQ(xray.results().size(), 1u);
    EXPECT_TRUE(xray.results()[0].sharp);
    // Uncoordinated second shot while ventilating: blurred.
    sim_.run_for(5_s);
    xray.expose();
    sim_.run_for(5_s);
    ASSERT_EQ(xray.results().size(), 2u);
    EXPECT_FALSE(xray.results()[1].sharp);
}

}  // namespace
