/// \file test_assembly.cpp
/// \brief Tests for assembly-time certification (ice::check_assembly +
/// the generated GSN case).

#include <gtest/gtest.h>

#include "devices/devices.hpp"
#include "ice/assembly.hpp"
#include "ice/ice.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;

class ReqApp : public ice::VmdApp {
public:
    explicit ReqApp(std::vector<ice::Requirement> reqs)
        : ice::VmdApp{"req-app"}, reqs_{std::move(reqs)} {}
    std::vector<ice::Requirement> requirements() const override { return reqs_; }
    void bind(const std::vector<ice::DeviceDescriptor>&) override {}
    void on_app_start() override {}
    void on_app_stop() override {}

private:
    std::vector<ice::Requirement> reqs_;
};

class AssemblyTest : public ::testing::Test {
protected:
    AssemblyTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)},
          ctx_{sim_, bus_, trace_},
          pump_{ctx_, "pump1", patient_, devices::Prescription{}},
          oxi_a_{ctx_, "oxiA", patient_},
          oxi_b_{ctx_, "oxiB", patient_} {}

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    physio::Patient patient_;
    devices::DeviceContext ctx_;
    devices::GpcaPump pump_;
    devices::PulseOximeter oxi_a_;
    devices::PulseOximeter oxi_b_;
    ice::DeviceRegistry registry_;
};

TEST_F(AssemblyTest, SatisfiableWithRedundancy) {
    pump_.start();
    oxi_a_.start();
    oxi_b_.start();
    registry_.add(pump_);
    registry_.add(oxi_a_);
    registry_.add(oxi_b_);

    ReqApp app{{{devices::DeviceKind::kInfusionPump, {"remote-stop"}, "pump"},
                {devices::DeviceKind::kPulseOximeter, {"spo2"}, "oximeter"}}};
    const auto report = ice::check_assembly(app, registry_);
    EXPECT_TRUE(report.satisfiable);
    ASSERT_EQ(report.slots.size(), 2u);
    EXPECT_EQ(report.slots[0].chosen->name, "pump1");
    EXPECT_TRUE(report.slots[0].alternatives.empty());
    // The oximeter slot has a spare.
    EXPECT_EQ(report.slots[1].alternatives.size(), 1u);
    EXPECT_EQ(report.redundant_slots(), 1u);
    // The pump slot is flagged as a single point of failure.
    bool spof_warned = false;
    for (const auto& w : report.warnings) {
        spof_warned |= w.find("pump") != std::string::npos &&
                       w.find("no redundancy") != std::string::npos;
    }
    EXPECT_TRUE(spof_warned);
}

TEST_F(AssemblyTest, MissingDeviceMakesUnsatisfiable) {
    pump_.start();
    registry_.add(pump_);
    ReqApp app{{{devices::DeviceKind::kPulseOximeter, {"spo2"}, "oximeter"}}};
    const auto report = ice::check_assembly(app, registry_);
    EXPECT_FALSE(report.satisfiable);
    EXPECT_FALSE(report.slots[0].chosen.has_value());
}

TEST_F(AssemblyTest, NotRunningDeviceIsWarned) {
    registry_.add(pump_);  // registered but never started
    ReqApp app{{{devices::DeviceKind::kInfusionPump, {}, "pump"}}};
    const auto report = ice::check_assembly(app, registry_);
    EXPECT_TRUE(report.satisfiable);
    bool warned = false;
    for (const auto& w : report.warnings) {
        warned |= w.find("not running") != std::string::npos;
    }
    EXPECT_TRUE(warned);
}

TEST_F(AssemblyTest, GreedyAssignmentMatchesResolve) {
    oxi_a_.start();
    oxi_b_.start();
    registry_.add(oxi_a_);
    registry_.add(oxi_b_);
    ReqApp app{{{devices::DeviceKind::kPulseOximeter, {}, "first"},
                {devices::DeviceKind::kPulseOximeter, {}, "second"}}};
    const auto report = ice::check_assembly(app, registry_);
    ASSERT_TRUE(report.satisfiable);
    std::string missing;
    const auto resolved = registry_.resolve(app.requirements(), missing);
    ASSERT_EQ(resolved.size(), 2u);
    EXPECT_EQ(report.slots[0].chosen->name, resolved[0].name);
    EXPECT_EQ(report.slots[1].chosen->name, resolved[1].name);
    // Distinct devices per slot.
    EXPECT_NE(report.slots[0].chosen->name, report.slots[1].chosen->name);
}

TEST_F(AssemblyTest, CertifiableCaseWhenSatisfiable) {
    pump_.start();
    oxi_a_.start();
    oxi_b_.start();
    registry_.add(pump_);
    registry_.add(oxi_a_);
    registry_.add(oxi_b_);
    ReqApp app{{{devices::DeviceKind::kInfusionPump, {}, "pump"},
                {devices::DeviceKind::kPulseOximeter, {}, "oximeter"}}};
    const auto report = ice::check_assembly(app, registry_);
    const auto ac = ice::build_assembly_case(report);
    const auto audit = ac.audit();
    EXPECT_TRUE(audit.well_formed)
        << (audit.errors.empty() ? "" : audit.errors[0]);
    EXPECT_TRUE(audit.certifiable);
    // Warnings surfaced as assumptions.
    EXPECT_FALSE(audit.warnings.empty());
}

TEST_F(AssemblyTest, UncertifiableCaseWhenUnsatisfiable) {
    ReqApp app{{{devices::DeviceKind::kVentilator, {}, "ventilator"}}};
    const auto report = ice::check_assembly(app, registry_);
    const auto ac = ice::build_assembly_case(report);
    const auto audit = ac.audit();
    EXPECT_FALSE(audit.certifiable);
    EXPECT_GT(audit.failed_evidence, 0u);
}

TEST_F(AssemblyTest, ReportMatchesDeployOutcome) {
    // The certification answer must agree with what deploy() then does.
    pump_.set_heartbeat_period(2_s);
    pump_.start();
    oxi_a_.start();
    registry_.add(pump_);
    registry_.add(oxi_a_);
    ice::Supervisor sup{ctx_, "sup", registry_};
    sup.start();
    ReqApp ok_app{{{devices::DeviceKind::kInfusionPump, {}, "pump"}}};
    EXPECT_TRUE(ice::check_assembly(ok_app, registry_).satisfiable);
    EXPECT_TRUE(sup.deploy(ok_app).ok);

    ReqApp bad_app{{{devices::DeviceKind::kXRay, {}, "xray"}}};
    EXPECT_FALSE(ice::check_assembly(bad_app, registry_).satisfiable);
    EXPECT_FALSE(sup.deploy(bad_app).ok);
}

}  // namespace
