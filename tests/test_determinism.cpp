/// \file test_determinism.cpp
/// \brief Cross-cutting determinism guarantees: identical seeds must
/// reproduce identical behaviour through every stochastic layer. These
/// are the guarantees that make the experiment tables regenerable.

#include <gtest/gtest.h>

#include <sstream>

#include "core/core.hpp"
#include "net/net.hpp"
#include "sim/sim.hpp"
#include "ta/ta.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;

TEST(Determinism, BusDeliveryOrderReproducible) {
    auto run = [](std::uint64_t seed) {
        sim::Simulation sim{seed};
        net::ChannelParameters noisy;
        noisy.base_latency = 20_ms;
        noisy.jitter_sd = 15_ms;
        noisy.loss_probability = 0.2;
        net::Bus bus{sim, noisy};
        std::vector<std::uint64_t> order;
        bus.subscribe("a", "t/*",
                      [&](const net::Message& m) { order.push_back(m.seq); });
        bus.subscribe("b", "t/*", [&](const net::Message& m) {
            order.push_back(1000000 + m.seq);
        });
        for (int i = 0; i < 200; ++i) {
            bus.publish("p", "t/x", net::StatusPayload{});
            sim.run_for(5_ms);
        }
        sim.run_all();
        return order;
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(Determinism, SensorStreamsIndependentOfEachOther) {
    // Adding a SECOND sensor must not change the first sensor's readings
    // (named RNG streams; the variance-reduction property DESIGN.md
    // promises).
    auto readings_with = [](bool add_second) {
        sim::Simulation sim{9};
        sim::TraceRecorder trace;
        net::Bus bus{sim, net::ChannelParameters::ideal()};
        physio::Patient patient{
            physio::nominal_parameters(physio::Archetype::kTypicalAdult)};
        devices::DeviceContext ctx{sim, bus, trace};
        devices::PulseOximeterConfig cfg;
        cfg.spo2_noise_sd = 1.0;
        devices::PulseOximeter oxi{ctx, "oxi1", patient, cfg};
        std::optional<devices::Capnometer> cap;
        if (add_second) {
            cap.emplace(ctx, "cap1", patient);
            cap->start();
        }
        oxi.start();
        std::vector<double> readings;
        bus.subscribe("t", "vitals/bed1/spo2", [&](const net::Message& m) {
            readings.push_back(
                net::payload_as<net::VitalSignPayload>(m)->value);
        });
        sim.schedule_periodic(500_ms, [&] { patient.step(0.5); });
        sim.run_for(30_s);
        return readings;
    };
    EXPECT_EQ(readings_with(false), readings_with(true));
}

TEST(Determinism, XrayScenarioEventCountsStable) {
    core::XrayScenarioConfig cfg;
    cfg.seed = 100;
    cfg.procedures = 8;
    cfg.mode = core::CoordinationMode::kAutomated;
    cfg.channel.loss_probability = 0.15;
    const auto a = core::run_xray_scenario(cfg);
    const auto b = core::run_xray_scenario(cfg);
    EXPECT_EQ(a.sharp_images, b.sharp_images);
    EXPECT_EQ(a.total_retries, b.total_retries);
    EXPECT_DOUBLE_EQ(a.max_apnea_s, b.max_apnea_s);
}

TEST(Determinism, TaSimulationReproducible) {
    const auto model = ta::build_closed_loop_model();
    sim::RngStream r1{3, "x"}, r2{3, "x"};
    ta::SimulateOptions opts;
    opts.max_steps = 50;
    for (int i = 0; i < 5; ++i) {
        const auto a = ta::simulate_run(model, r1, opts);
        const auto b = ta::simulate_run(model, r2, opts);
        ASSERT_EQ(a.visited, b.visited);
        ASSERT_DOUBLE_EQ(a.total_time, b.total_time);
    }
}

TEST(Determinism, PopulationSamplingOrderIndependence) {
    // Sampling patient k is unaffected by whether patients 0..k-1 were
    // materialized from the same stream one-by-one or in bulk.
    sim::RngStream bulk{21, "pop"};
    const auto all =
        physio::sample_population(physio::Archetype::kHighRisk, 5, bulk);
    sim::RngStream incremental{21, "pop"};
    for (int i = 0; i < 5; ++i) {
        const auto p =
            physio::sample_patient(physio::Archetype::kHighRisk, incremental);
        EXPECT_DOUBLE_EQ(p.pd.ec50_ng_ml, all[i].pd.ec50_ng_ml);
        EXPECT_DOUBLE_EQ(p.pk.v1_liters, all[i].pk.v1_liters);
    }
}

TEST(Determinism, FullScenarioTraceIdentical) {
    auto run_csv = [] {
        core::PcaScenarioConfig cfg;
        cfg.seed = 404;
        cfg.duration = 20_min;
        cfg.patient =
            physio::nominal_parameters(physio::Archetype::kOpioidSensitive);
        cfg.demand_mode = core::DemandMode::kProxy;
        core::PcaScenario sc{cfg};
        (void)sc.run();
        std::ostringstream os;
        sc.trace().write_csv(os);
        return os.str();
    };
    EXPECT_EQ(run_csv(), run_csv());
}

}  // namespace
