/// \file test_testkit.cpp
/// \brief Tests for the fuzzing testkit: fault plans and injection,
/// invariants, repro serialization, deterministic replay, and shrinking.

#include <gtest/gtest.h>

#include "net/net.hpp"
#include "sim/simulation.hpp"
#include "testkit/testkit.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using namespace mcps::testkit;
using sim::SimDuration;
using sim::SimTime;

TEST(FaultPlan, WithoutRemovesExactlyOneEvent) {
    FaultPlan plan;
    plan.events.push_back({FaultKind::kOutage, 10_s, 5_s, "a", 0.0});
    plan.events.push_back({FaultKind::kLossBurst, 20_s, 5_s, "b", 0.7});
    plan.events.push_back({FaultKind::kOxiDropout, 30_s, 5_s, "", 0.0});
    const FaultPlan p = plan.without(1);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.events[0].kind, FaultKind::kOutage);
    EXPECT_EQ(p.events[1].kind, FaultKind::kOxiDropout);
}

TEST(FaultPlan, KindNamesRoundTrip) {
    for (auto k : {FaultKind::kOutage, FaultKind::kPartition,
                   FaultKind::kLossBurst, FaultKind::kDelaySpike,
                   FaultKind::kDupBurst, FaultKind::kReorderBurst,
                   FaultKind::kCorruptBurst, FaultKind::kOxiDropout,
                   FaultKind::kCapDropout, FaultKind::kPumpCmdLoss}) {
        const auto back = fault_kind_from(to_string(k));
        ASSERT_TRUE(back.has_value()) << to_string(k);
        EXPECT_EQ(*back, k);
    }
    EXPECT_FALSE(fault_kind_from("nonsense").has_value());
}

TEST(FaultInjector, LossBurstConfinedToWindow) {
    sim::Simulation s;
    net::Bus bus{s, net::ChannelParameters::ideal()};
    int got = 0;
    bus.subscribe("sub", "t", [&](const net::Message&) { ++got; });

    FaultPlan plan;
    plan.events.push_back({FaultKind::kLossBurst, 10_s, 10_s, "sub", 1.0});
    FaultInjector injector{s, bus};
    injector.arm(plan);
    EXPECT_EQ(injector.armed(), 1u);
    EXPECT_EQ(injector.skipped(), 0u);

    // One message per second for 30 s: only the burst window is lost.
    for (int i = 0; i < 30; ++i) {
        s.run_until(SimTime::origin() + SimDuration::seconds(i));
        bus.publish("p", "t", net::StatusPayload{});
    }
    s.run_all();
    EXPECT_EQ(got, 20);
}

TEST(FaultInjector, DeviceFaultsSkippedWithoutDevices) {
    sim::Simulation s;
    net::Bus bus{s, net::ChannelParameters::ideal()};
    FaultPlan plan;
    plan.events.push_back({FaultKind::kOxiDropout, 10_s, 5_s, "", 0.0});
    plan.events.push_back({FaultKind::kCapDropout, 20_s, 5_s, "", 0.0});
    plan.events.push_back({FaultKind::kOutage, 30_s, 5_s, "x", 0.0});
    FaultInjector injector{s, bus};
    injector.arm(plan);
    EXPECT_EQ(injector.armed(), 1u);
    EXPECT_EQ(injector.skipped(), 2u);
}

TEST(Repro, TextRoundTripPreservesEverything) {
    Repro r;
    r.kind = WorkloadKind::kPca;
    r.seed = 0xDEADBEEF12345678ULL;
    r.index = 77;
    r.weakened = true;
    r.fingerprint = 0x0123456789ABCDEFULL;
    r.faults.events.push_back(
        {FaultKind::kDelaySpike, 61_s, 17_s, "pca_interlock", 1234.5});
    r.faults.events.push_back(
        {FaultKind::kLossBurst, 200_s, 30_s, "pump1", 0.30000000000000004});

    const Repro back = repro_from_text(to_text(r));
    EXPECT_EQ(back.kind, r.kind);
    EXPECT_EQ(back.seed, r.seed);
    EXPECT_EQ(back.index, r.index);
    EXPECT_EQ(back.weakened, r.weakened);
    EXPECT_EQ(back.fingerprint, r.fingerprint);
    ASSERT_EQ(back.faults.size(), 2u);
    EXPECT_EQ(back.faults.events[0].kind, FaultKind::kDelaySpike);
    EXPECT_EQ(back.faults.events[0].at, 61_s);
    EXPECT_EQ(back.faults.events[0].duration, 17_s);
    EXPECT_EQ(back.faults.events[0].target, "pca_interlock");
    EXPECT_DOUBLE_EQ(back.faults.events[0].magnitude, 1234.5);
    // %.17g round-trips doubles exactly, ulp included.
    EXPECT_EQ(back.faults.events[1].magnitude, 0.30000000000000004);
}

TEST(Repro, MalformedTextThrows) {
    EXPECT_THROW(repro_from_text(""), std::runtime_error);
    EXPECT_THROW(repro_from_text("not a repro\n"), std::runtime_error);
    EXPECT_THROW(repro_from_text("mcps-repro v1\nkind=laser\n"),
                 std::runtime_error);
    EXPECT_THROW(repro_from_text("mcps-repro v1\nseed=banana\n"),
                 std::runtime_error);
    EXPECT_THROW(
        repro_from_text("mcps-repro v1\nfault kind=warp at_us=1 dur_us=1\n"),
        std::runtime_error);
    EXPECT_THROW(repro_from_text("mcps-repro v1\nfault at_us=1\n"),
                 std::runtime_error);
}

TEST(Generator, SameSeedAndIndexIsIdentical) {
    const ScenarioGenerator a{42}, b{42};
    const auto ga = a.pca(5);
    const auto gb = b.pca(5);
    EXPECT_EQ(ga.config.seed, gb.config.seed);
    EXPECT_EQ(ga.config.duration, gb.config.duration);
    EXPECT_EQ(ga.faults.size(), gb.faults.size());
    // Different indices draw from different streams.
    EXPECT_NE(ga.config.seed, a.pca(6).config.seed);
}

TEST(Generator, SafeEnvelopeIsFailSafe) {
    const ScenarioGenerator gen{7};
    for (std::uint64_t i = 0; i < 20; ++i) {
        const auto g = gen.pca(i);
        ASSERT_TRUE(g.config.interlock.has_value());
        EXPECT_EQ(g.config.interlock->data_loss,
                  core::DataLossPolicy::kFailSafe);
    }
}

TEST(Runner, SameScenarioSameFingerprint) {
    const ScenarioGenerator gen{42};
    const auto g = gen.pca(0);
    const auto checker = InvariantChecker::with_defaults();
    const auto r1 = run_instrumented_pca(g.config, g.faults, checker);
    const auto r2 = run_instrumented_pca(g.config, g.faults, checker);
    EXPECT_EQ(r1.fingerprint, r2.fingerprint);
    EXPECT_EQ(r1.violations, r2.violations);
}

TEST(Runner, FaultPlanChangesTheRun) {
    const ScenarioGenerator gen{42};
    const auto g = gen.pca(1);
    const auto checker = InvariantChecker::with_defaults();
    FaultPlan heavy;
    heavy.events.push_back(
        {FaultKind::kLossBurst, 120_s, 60_s, "pca_interlock", 1.0});
    const auto base = run_instrumented_pca(g.config, FaultPlan{}, checker);
    const auto faulted = run_instrumented_pca(g.config, heavy, checker);
    EXPECT_NE(base.fingerprint, faulted.fingerprint);
}

TEST(Invariants, DefaultsCoverTheSafetyProperties) {
    const auto names = InvariantChecker::with_defaults().names();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "pca/respiratory-depression-interlock");
}

TEST(Invariants, XrayApneaBound) {
    core::XrayScenarioConfig cfg;
    core::XrayScenarioResult ok;
    ok.max_apnea_s = cfg.ventilator.max_pause.to_seconds();
    EXPECT_TRUE(InvariantChecker::check_xray(cfg, ok).empty());

    core::XrayScenarioResult bad;
    bad.max_apnea_s = cfg.ventilator.max_pause.to_seconds() + 10.0;
    const auto violations = InvariantChecker::check_xray(cfg, bad);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].invariant, "xray/vent-pause-bounded");
}

TEST(Replay, ReplayIsByteIdentical) {
    const ScenarioGenerator gen{42};
    const auto g = gen.pca(2);
    const auto checker = InvariantChecker::with_defaults();
    const auto run = run_instrumented_pca(g.config, g.faults, checker);

    Repro r;
    r.seed = 42;
    r.index = 2;
    r.faults = g.faults;
    r.fingerprint = run.fingerprint;
    const auto replayed = replay(r, checker);
    EXPECT_TRUE(replayed.byte_identical);
    EXPECT_EQ(replayed.fingerprint, run.fingerprint);
}

TEST(Replay, WeakenedFixtureViolatesAndShrinks) {
    const ScenarioGenerator gen{42};
    const auto checker = InvariantChecker::with_defaults();
    const auto g = gen.weakened_pca(0);
    const auto run = run_instrumented_pca(g.config, g.faults, checker);
    ASSERT_FALSE(run.violations.empty())
        << "the weakened interlock must violate an invariant";

    Repro r;
    r.seed = 42;
    r.index = 0;
    r.weakened = true;
    r.faults = g.faults;
    std::size_t shrink_runs = 0;
    const Repro minimal = shrink(r, checker, &shrink_runs);
    EXPECT_LE(minimal.faults.size(), 5u);
    EXPECT_GT(shrink_runs, 0u);

    // The shrunk repro still violates and replays byte-identically.
    const auto replayed = replay(minimal, checker);
    EXPECT_FALSE(replayed.violations.empty());
    EXPECT_TRUE(replayed.byte_identical);
}

TEST(Fuzzer, SmokeRunOverSafeEnvelopeIsClean) {
    FuzzOptions opts;
    opts.seed = 42;
    opts.scenarios = 25;
    const auto outcome = run_fuzz(opts);
    EXPECT_EQ(outcome.scenarios_run, 25u);
    EXPECT_EQ(outcome.pca_runs + outcome.xray_runs, 25u);
    EXPECT_TRUE(outcome.clean());
}

TEST(Fuzzer, WeakenedModeReportsShrunkFailures) {
    FuzzOptions opts;
    opts.seed = 42;
    opts.scenarios = 1;
    opts.weakened = true;
    const auto outcome = run_fuzz(opts);
    ASSERT_FALSE(outcome.failures.empty());
    const auto& f = outcome.failures.front();
    EXPECT_TRUE(f.replay_byte_identical);
    EXPECT_LE(f.repro.faults.size(), 5u);
    EXPECT_FALSE(f.violations.empty());
    EXPECT_TRUE(f.repro_path.empty());  // no repro_dir configured
}

}  // namespace
