/// \file test_rng.cpp
/// \brief Unit + statistical tests for the deterministic RNG streams.

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace {

using mcps::sim::RngStream;
using mcps::sim::RunningStats;

TEST(Rng, SameSeedSameSequence) {
    RngStream a{123}, b{123};
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    RngStream a{123}, b{124};
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, NamedStreamsAreIndependentAndStable) {
    RngStream a1{42, "alpha"}, a2{42, "alpha"};
    RngStream b{42, "beta"};
    EXPECT_EQ(a1.next(), a2.next());
    // alpha and beta streams from the same master differ.
    RngStream a3{42, "alpha"};
    int equal = 0;
    for (int i = 0; i < 200; ++i) {
        if (a3.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
    RngStream r{7};
    RunningStats st;
    for (int i = 0; i < 20000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        st.add(u);
    }
    EXPECT_NEAR(st.mean(), 0.5, 0.01);
    EXPECT_NEAR(st.stddev(), 0.2887, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    RngStream r{7};
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRangeUniformly) {
    RngStream r{11};
    std::array<int, 6> counts{};
    for (int i = 0; i < 60000; ++i) {
        const auto v = r.uniform_int(10, 15);
        ASSERT_GE(v, 10);
        ASSERT_LE(v, 15);
        ++counts[static_cast<std::size_t>(v - 10)];
    }
    for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformIntSingleton) {
    RngStream r{11};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(Rng, BernoulliMatchesProbability) {
    RngStream r{13};
    int hits = 0;
    for (int i = 0; i < 50000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
}

TEST(Rng, NormalMoments) {
    RngStream r{17};
    RunningStats st;
    for (int i = 0; i < 50000; ++i) st.add(r.normal(10.0, 2.0));
    EXPECT_NEAR(st.mean(), 10.0, 0.05);
    EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Rng, NormalTruncatedStaysInBounds) {
    RngStream r{19};
    for (int i = 0; i < 5000; ++i) {
        const double v = r.normal_truncated(0.0, 1.0, -0.5, 0.5);
        ASSERT_GE(v, -0.5);
        ASSERT_LE(v, 0.5);
    }
    // Pathological bounds: falls back to clamp of the mean.
    EXPECT_DOUBLE_EQ(r.normal_truncated(0.0, 1e-12, 100.0, 200.0), 100.0);
}

TEST(Rng, ExponentialMean) {
    RngStream r{23};
    RunningStats st;
    for (int i = 0; i < 50000; ++i) {
        const double v = r.exponential(4.0);
        ASSERT_GE(v, 0.0);
        st.add(v);
    }
    EXPECT_NEAR(st.mean(), 4.0, 0.1);
}

TEST(Rng, LognormalMedian) {
    RngStream r{29};
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i) xs.push_back(r.lognormal(std::log(3.0), 0.5));
    std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
    EXPECT_NEAR(xs[10000], 3.0, 0.15);
}

TEST(Rng, PickCoversAllIndices) {
    RngStream r{31};
    std::set<std::size_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto idx = r.pick(7);
        ASSERT_LT(idx, 7u);
        seen.insert(idx);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GoldenNamedStreamOutputs) {
    // Pinned first-8 outputs of three load-bearing named streams at master
    // seed 42. Repro files store only (seed, index, fault plan), so replay
    // correctness depends on these sequences never changing — any edit to
    // fnv1a64, splitmix64, the name-mixing recipe, or xoshiro256** itself
    // must fail here before it silently invalidates every saved repro.
    struct Golden {
        const char* name;
        std::array<std::uint64_t, 8> expect;
    };
    const Golden goldens[] = {
        {"pulse_ox.noise",
         {8042518850680043089ULL, 12764411259325908868ULL,
          16935458375409564944ULL, 10698249278326238841ULL,
          5556389389599706592ULL, 4820580469644862056ULL,
          8344410375188828766ULL, 2677695248741123308ULL}},
        {"bus.channel.pca_interlock",
         {2674068870250153596ULL, 18202182861198879209ULL,
          7788602141849266167ULL, 13878506630138028683ULL,
          8667519860386545056ULL, 4270383487487131621ULL,
          16609378373268768168ULL, 11357180842951850523ULL}},
        {"fuzz/pca/0",
         {15208323256328592790ULL, 335675618186822804ULL,
          2826810545848909527ULL, 8414392422944684294ULL,
          2879191728336563177ULL, 8178251373362621357ULL,
          18358594369995035529ULL, 15612759425190725019ULL}},
    };
    for (const auto& g : goldens) {
        RngStream r{42, g.name};
        for (std::size_t i = 0; i < g.expect.size(); ++i) {
            EXPECT_EQ(r.next(), g.expect[i])
                << "stream '" << g.name << "' output " << i;
        }
    }
}

TEST(Rng, Fnv1aStable) {
    // Regression guard: the hash feeds stream derivation, so its values
    // must never change across refactors.
    EXPECT_EQ(mcps::sim::fnv1a64(""), 14695981039346656037ULL);
    EXPECT_EQ(mcps::sim::fnv1a64("a"), 12638187200555641996ULL);
}

}  // namespace
