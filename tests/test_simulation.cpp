/// \file test_simulation.cpp
/// \brief Unit tests for the discrete-event kernel.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace {

using namespace mcps::sim;
using namespace mcps::sim::literals;

TEST(Simulation, StartsAtOrigin) {
    Simulation sim;
    EXPECT_EQ(sim.now(), SimTime::origin());
    EXPECT_EQ(sim.events_dispatched(), 0u);
}

TEST(Simulation, DispatchesInTimeOrder) {
    Simulation sim;
    std::vector<int> order;
    sim.schedule_after(3_s, [&] { order.push_back(3); });
    sim.schedule_after(1_s, [&] { order.push_back(1); });
    sim.schedule_after(2_s, [&] { order.push_back(2); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), SimTime::origin() + 3_s);
}

TEST(Simulation, FifoWithinSameInstant) {
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        sim.schedule_after(1_s, [&order, i] { order.push_back(i); });
    }
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, PriorityBeatsInsertionOrder) {
    Simulation sim;
    std::vector<std::string> order;
    sim.schedule_after(1_s, [&] { order.push_back("late"); },
                       EventPriority::kLate);
    sim.schedule_after(1_s, [&] { order.push_back("default"); });
    sim.schedule_after(1_s, [&] { order.push_back("early"); },
                       EventPriority::kEarly);
    sim.run_all();
    EXPECT_EQ(order, (std::vector<std::string>{"early", "default", "late"}));
}

TEST(Simulation, ClockAdvancesToEventTime) {
    Simulation sim;
    SimTime seen;
    sim.schedule_after(42_s, [&] { seen = sim.now(); });
    sim.run_all();
    EXPECT_EQ(seen, SimTime::origin() + 42_s);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
    Simulation sim;
    int fired = 0;
    sim.schedule_after(10_s, [&] { ++fired; });
    sim.schedule_after(11_s, [&] { ++fired; });
    sim.run_until(SimTime::origin() + 10_s);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), SimTime::origin() + 10_s);
    sim.run_until(SimTime::origin() + 20_s);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), SimTime::origin() + 20_s);
}

TEST(Simulation, RunForIsRelative) {
    Simulation sim;
    sim.run_for(5_s);
    EXPECT_EQ(sim.now(), SimTime::origin() + 5_s);
    sim.run_for(5_s);
    EXPECT_EQ(sim.now(), SimTime::origin() + 10_s);
}

TEST(Simulation, SchedulingInPastThrows) {
    Simulation sim;
    sim.run_for(10_s);
    EXPECT_THROW(sim.schedule_at(SimTime::origin() + 5_s, [] {}),
                 SimulationError);
    EXPECT_THROW(sim.schedule_after(-(1_s), [] {}), SimulationError);
}

TEST(Simulation, EmptyCallbackThrows) {
    Simulation sim;
    EXPECT_THROW(sim.schedule_after(1_s, nullptr), SimulationError);
    EXPECT_THROW(sim.schedule_periodic(1_s, nullptr), SimulationError);
}

TEST(Simulation, NonPositivePeriodThrows) {
    Simulation sim;
    EXPECT_THROW(sim.schedule_periodic(SimDuration::zero(), [] {}),
                 SimulationError);
}

TEST(Simulation, CancelPreventsDispatch) {
    Simulation sim;
    int fired = 0;
    auto h = sim.schedule_after(1_s, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    EXPECT_TRUE(h.cancel());
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());  // second cancel is a no-op
    sim.run_all();
    EXPECT_EQ(fired, 0);
}

TEST(Simulation, CancelAfterFireIsNoop) {
    Simulation sim;
    auto h = sim.schedule_after(1_s, [] {});
    sim.run_all();
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(Simulation, PeriodicFiresRepeatedly) {
    Simulation sim;
    int fired = 0;
    sim.schedule_periodic(1_s, [&] { ++fired; });
    sim.run_until(SimTime::origin() + 10_s);
    EXPECT_EQ(fired, 10);
}

TEST(Simulation, PeriodicCancelStopsChainEvenAfterFirings) {
    Simulation sim;
    int fired = 0;
    auto h = sim.schedule_periodic(1_s, [&] { ++fired; });
    sim.run_until(SimTime::origin() + 3_s);
    EXPECT_EQ(fired, 3);
    EXPECT_TRUE(h.pending());
    EXPECT_TRUE(h.cancel());
    sim.run_until(SimTime::origin() + 10_s);
    EXPECT_EQ(fired, 3);
}

TEST(Simulation, PeriodicCancelFromInsideCallback) {
    Simulation sim;
    int fired = 0;
    EventHandle h;
    h = sim.schedule_periodic(1_s, [&] {
        if (++fired == 2) h.cancel();
    });
    sim.run_until(SimTime::origin() + 10_s);
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsCanScheduleEvents) {
    Simulation sim;
    std::vector<double> times;
    sim.schedule_after(1_s, [&] {
        times.push_back(sim.now().to_seconds());
        sim.schedule_after(1_s, [&] { times.push_back(sim.now().to_seconds()); });
    });
    sim.run_all();
    EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulation, StopHaltsDispatching) {
    Simulation sim;
    int fired = 0;
    sim.schedule_after(1_s, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule_after(2_s, [&] { ++fired; });
    sim.run_until(SimTime::origin() + 10_s);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), SimTime::origin() + 1_s);
    // The remaining event is still pending and runs on the next call.
    sim.run_until(SimTime::origin() + 10_s);
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, CountsDispatchedAndPending) {
    Simulation sim;
    sim.schedule_after(1_s, [] {});
    sim.schedule_after(2_s, [] {});
    EXPECT_EQ(sim.events_pending(), 2u);
    sim.run_all();
    EXPECT_EQ(sim.events_dispatched(), 2u);
    EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulation, NamedRngIsReproducible) {
    Simulation a{99}, b{99};
    auto ra = a.rng("x");
    auto rb = b.rng("x");
    EXPECT_EQ(ra.next(), rb.next());
    Simulation c{100};
    auto rc = c.rng("x");
    auto ra2 = a.rng("x");
    EXPECT_NE(ra2.next(), rc.next());
    EXPECT_EQ(a.master_seed(), 99u);
}

TEST(Simulation, RunUntilPastIsError) {
    Simulation sim;
    sim.run_for(5_s);
    EXPECT_THROW(sim.run_until(SimTime::origin() + 1_s), SimulationError);
}

}  // namespace
