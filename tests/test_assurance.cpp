/// \file test_assurance.cpp
/// \brief Tests for GSN assurance cases and the hazard log.

#include <gtest/gtest.h>

#include "assurance/assurance.hpp"

namespace {

using namespace mcps::assurance;

AssuranceCase tiny_case() {
    AssuranceCase ac{"tiny"};
    ac.add_goal("G1", "System is safe");
    ac.add_strategy("S1", "Argue by hazard");
    ac.add_goal("G2", "Hazard A handled");
    ac.add_solution("Sn1", "Test evidence", "tests/x");
    ac.link("G1", "S1");
    ac.link("S1", "G2");
    ac.link("G2", "Sn1");
    return ac;
}

TEST(Gsn, BuilderAndLookup) {
    auto ac = tiny_case();
    EXPECT_EQ(ac.size(), 4u);
    EXPECT_EQ(ac.root().id, "G1");
    ASSERT_NE(ac.find("Sn1"), nullptr);
    EXPECT_EQ(ac.find("Sn1")->kind, NodeKind::kSolution);
    EXPECT_EQ(ac.find("missing"), nullptr);
    EXPECT_EQ(ac.children("S1"), (std::vector<NodeId>{"G2"}));
}

TEST(Gsn, DuplicateAndEmptyIdsRejected) {
    AssuranceCase ac{"t"};
    ac.add_goal("G1", "x");
    EXPECT_THROW(ac.add_goal("G1", "again"), std::invalid_argument);
    EXPECT_THROW(ac.add_goal("", "anon"), std::invalid_argument);
}

TEST(Gsn, IllegalLinksRejected) {
    AssuranceCase ac{"t"};
    ac.add_goal("G1", "g");
    ac.add_solution("Sn1", "s");
    ac.add_context("C1", "c");
    EXPECT_THROW(ac.link("Sn1", "G1"), std::invalid_argument);  // sol -> goal
    EXPECT_THROW(ac.link("C1", "G1"), std::invalid_argument);   // ctx parent
    EXPECT_THROW(ac.link("G1", "nope"), std::invalid_argument);
    EXPECT_NO_THROW(ac.link("G1", "C1"));
    EXPECT_NO_THROW(ac.link("G1", "Sn1"));
}

TEST(Gsn, EvidenceLifecycle) {
    auto ac = tiny_case();
    EXPECT_EQ(ac.find("Sn1")->evidence, EvidenceStatus::kPending);
    ac.set_evidence("Sn1", EvidenceStatus::kPassed, "ctest run 2026-07-06");
    EXPECT_EQ(ac.find("Sn1")->evidence, EvidenceStatus::kPassed);
    EXPECT_EQ(ac.find("Sn1")->artifact, "ctest run 2026-07-06");
    EXPECT_THROW(ac.set_evidence("G1", EvidenceStatus::kPassed),
                 std::invalid_argument);
}

TEST(Gsn, AuditOnHealthyCase) {
    auto ac = tiny_case();
    ac.set_evidence("Sn1", EvidenceStatus::kPassed);
    const auto rep = ac.audit();
    EXPECT_TRUE(rep.well_formed) << (rep.errors.empty() ? "" : rep.errors[0]);
    EXPECT_EQ(rep.goals, 2u);
    EXPECT_EQ(rep.solutions, 1u);
    EXPECT_EQ(rep.undeveloped_goals, 0u);
    EXPECT_EQ(rep.pending_evidence, 0u);
    EXPECT_DOUBLE_EQ(rep.evidence_coverage, 1.0);
    EXPECT_TRUE(rep.certifiable);
}

TEST(Gsn, PendingEvidenceBlocksCertifiability) {
    auto ac = tiny_case();
    const auto rep = ac.audit();
    EXPECT_TRUE(rep.well_formed);
    EXPECT_EQ(rep.pending_evidence, 1u);
    EXPECT_LT(rep.evidence_coverage, 1.0);
    EXPECT_FALSE(rep.certifiable);
}

TEST(Gsn, FailedEvidenceIsAnError) {
    auto ac = tiny_case();
    ac.set_evidence("Sn1", EvidenceStatus::kFailed);
    const auto rep = ac.audit();
    EXPECT_FALSE(rep.well_formed);
    EXPECT_EQ(rep.failed_evidence, 1u);
    EXPECT_FALSE(rep.certifiable);
}

TEST(Gsn, UndevelopedGoalDetected) {
    AssuranceCase ac{"t"};
    ac.add_goal("G1", "top");
    ac.add_goal("G2", "supported");
    ac.add_solution("Sn1", "ev", "", EvidenceStatus::kPassed);
    ac.add_goal("G3", "undeveloped");
    ac.link("G1", "G2");
    ac.link("G1", "G3");
    ac.link("G2", "Sn1");
    const auto rep = ac.audit();
    EXPECT_EQ(rep.undeveloped_goals, 1u);
    EXPECT_FALSE(rep.certifiable);
}

TEST(Gsn, OrphanNodesReported) {
    auto ac = tiny_case();
    ac.add_goal("G9", "floating");
    const auto rep = ac.audit();
    EXPECT_FALSE(rep.well_formed);
    bool found = false;
    for (const auto& e : rep.errors) {
        found = found || e.find("G9") != std::string::npos;
    }
    EXPECT_TRUE(found);
}

TEST(Gsn, AssumptionsAreWarnings) {
    auto ac = tiny_case();
    ac.add_assumption("A1", "the ward follows policy");
    ac.link("G2", "A1");
    ac.set_evidence("Sn1", EvidenceStatus::kPassed);
    const auto rep = ac.audit();
    EXPECT_TRUE(rep.well_formed);
    ASSERT_EQ(rep.warnings.size(), 1u);
    EXPECT_NE(rep.warnings[0].find("A1"), std::string::npos);
    // Assumptions do not gate support.
    EXPECT_TRUE(rep.certifiable);
}

TEST(Gsn, RendersTextAndDot) {
    auto ac = tiny_case();
    const auto text = ac.to_text();
    EXPECT_NE(text.find("[Goal G1]"), std::string::npos);
    EXPECT_NE(text.find("[Solution Sn1]"), std::string::npos);
    const auto dot = ac.to_dot();
    EXPECT_NE(dot.find("digraph gsn"), std::string::npos);
    EXPECT_NE(dot.find("\"G1\" -> \"S1\""), std::string::npos);
}

TEST(Gsn, GpcaSkeletonIsWellFormed) {
    auto ac = build_gpca_case_skeleton();
    auto rep = ac.audit();
    EXPECT_TRUE(rep.well_formed) << (rep.errors.empty() ? "" : rep.errors[0]);
    EXPECT_FALSE(rep.certifiable);  // evidence still pending
    // Attach all evidence: becomes certifiable.
    ac.set_evidence("Sn1", EvidenceStatus::kPassed);
    ac.set_evidence("Sn2", EvidenceStatus::kPassed);
    ac.set_evidence("Sn3", EvidenceStatus::kPassed);
    ac.set_evidence("Sn4", EvidenceStatus::kPassed);
    rep = ac.audit();
    EXPECT_TRUE(rep.certifiable);
}

TEST(Hazard, RiskMatrixBands) {
    EXPECT_EQ(classify(Severity::kNegligible, Likelihood::kIncredible),
              RiskClass::kAcceptable);
    EXPECT_EQ(classify(Severity::kCatastrophic, Likelihood::kFrequent),
              RiskClass::kIntolerable);
    EXPECT_EQ(classify(Severity::kSerious, Likelihood::kRemote),
              RiskClass::kTolerable);  // 9
    EXPECT_EQ(classify(Severity::kMinor, Likelihood::kRemote),
              RiskClass::kTolerable);  // 6
    EXPECT_EQ(classify(Severity::kCritical, Likelihood::kRemote),
              RiskClass::kUndesirable);  // 12
    EXPECT_EQ(classify(Severity::kCatastrophic, Likelihood::kRemote),
              RiskClass::kIntolerable);  // 15
}

TEST(Hazard, MitigationReducesResidualRisk) {
    Hazard h;
    h.id = "H1";
    h.severity = Severity::kCatastrophic;
    h.initial_likelihood = Likelihood::kOccasional;
    EXPECT_EQ(h.initial_risk(), RiskClass::kIntolerable);
    EXPECT_EQ(h.residual_risk(), RiskClass::kIntolerable);  // unmitigated
    h.mitigations.push_back({"interlock", Likelihood::kImprobable, "core"});
    EXPECT_EQ(h.residual_risk(), RiskClass::kUndesirable);  // 5*2 = 10
    h.mitigations.push_back({"lockout", Likelihood::kIncredible, "pump"});
    EXPECT_EQ(h.residual_risk(), RiskClass::kTolerable);  // 5*1 = 5
}

TEST(Hazard, LogOperations) {
    HazardLog log;
    Hazard h;
    h.id = "H1";
    h.description = "d";
    log.add(h);
    EXPECT_THROW(log.add(h), std::invalid_argument);
    Hazard bad;
    EXPECT_THROW(log.add(bad), std::invalid_argument);  // empty id
    ASSERT_NE(log.find("H1"), nullptr);
    EXPECT_EQ(log.find("H2"), nullptr);
    EXPECT_EQ(log.count(), 1u);
}

TEST(Hazard, GpcaLogIsControlled) {
    const auto log = build_gpca_hazard_log();
    EXPECT_GE(log.count(), 5u);
    EXPECT_TRUE(log.all_controlled()) << [&] {
        std::string s;
        for (const auto& id : log.open_risks()) s += id + " ";
        return s;
    }();
    const auto text = log.to_text();
    EXPECT_NE(text.find("H1"), std::string::npos);
    EXPECT_NE(text.find("catastrophic"), std::string::npos);
}

TEST(Hazard, EnumNames) {
    EXPECT_EQ(to_string(Severity::kCritical), "critical");
    EXPECT_EQ(to_string(Likelihood::kRemote), "remote");
    EXPECT_EQ(to_string(RiskClass::kTolerable), "tolerable");
    EXPECT_EQ(to_string(NodeKind::kStrategy), "Strategy");
    EXPECT_EQ(to_string(EvidenceStatus::kFailed), "FAILED");
}

}  // namespace
