/// \file test_smart_alarm.cpp
/// \brief Tests for the fused smart-alarm engine: corroboration
/// weighting, persistence, severity escalation, technical alerts.

#include <gtest/gtest.h>

#include "core/smart_alarm.hpp"
#include "devices/device.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using core::AlarmSeverity;
using core::SmartAlarm;
using core::SmartAlarmConfig;

class SmartAlarmTest : public ::testing::Test {
protected:
    SmartAlarmTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          ctx_{sim_, bus_, trace_} {}

    SmartAlarm& make(SmartAlarmConfig cfg = {}) {
        alarm_.emplace(ctx_, "smart", std::move(cfg));
        alarm_->start();
        return *alarm_;
    }

    void inject(const std::string& metric, double value, bool valid = true) {
        bus_.publish("inj", "vitals/bed1/" + metric,
                     net::VitalSignPayload{metric, value, valid});
    }

    /// Publish a full healthy set.
    void inject_healthy() {
        inject("spo2", 97.0);
        inject("resp_rate", 14.0);
        inject("etco2", 38.0);
        inject("pulse_rate", 75.0);
    }

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    devices::DeviceContext ctx_;
    std::optional<SmartAlarm> alarm_;
};

TEST_F(SmartAlarmTest, ConfigValidation) {
    SmartAlarmConfig cfg;
    cfg.check_period = sim::SimDuration::zero();
    EXPECT_THROW(SmartAlarm(ctx_, "x", cfg), std::invalid_argument);
    cfg = {};
    cfg.critical_threshold = 1.0;
    cfg.warning_threshold = 2.0;
    EXPECT_THROW(SmartAlarm(ctx_, "x", cfg), std::invalid_argument);
}

TEST_F(SmartAlarmTest, QuietOnHealthyVitals) {
    auto& sa = make();
    for (int i = 0; i < 120; ++i) {
        inject_healthy();
        sim_.run_for(1_s);
    }
    EXPECT_TRUE(sa.alarms().empty());
    EXPECT_LT(sa.current_score(), 1.0);
}

TEST_F(SmartAlarmTest, UncorroboratedSpo2DipSuppressed) {
    // A deep SpO2 artifact with everything else normal: the classic
    // motion artifact. Must NOT produce a critical alarm.
    auto& sa = make();
    for (int i = 0; i < 30; ++i) {
        inject_healthy();
        sim_.run_for(1_s);
    }
    for (int i = 0; i < 20; ++i) {
        inject("spo2", 78.0);  // looks terrible...
        inject("resp_rate", 14.0);
        inject("etco2", 38.0);
        inject("pulse_rate", 75.0);  // ...but nothing corroborates
        sim_.run_for(1_s);
    }
    std::size_t critical = 0;
    for (const auto& a : sa.alarms()) {
        if (a.severity == AlarmSeverity::kCritical) ++critical;
    }
    EXPECT_EQ(critical, 0u);
}

TEST_F(SmartAlarmTest, CorroboratedDepressionEscalatesToCritical) {
    auto& sa = make();
    for (int i = 0; i < 30; ++i) {
        inject_healthy();
        sim_.run_for(1_s);
    }
    // True respiratory depression: SpO2 down AND RR down AND EtCO2 lost.
    for (int i = 0; i < 30; ++i) {
        inject("spo2", 82.0);
        inject("resp_rate", 4.0);
        inject("etco2", 5.0);
        inject("pulse_rate", 75.0);
        sim_.run_for(1_s);
    }
    bool critical = false;
    for (const auto& a : sa.alarms()) {
        critical = critical || a.severity == AlarmSeverity::kCritical;
    }
    EXPECT_TRUE(critical);
    EXPECT_GE(sa.current_score(), sa.config().critical_threshold);
}

TEST_F(SmartAlarmTest, PersistenceFiltersBriefSpikes) {
    SmartAlarmConfig cfg;
    cfg.persistence = 15_s;
    auto& sa = make(cfg);
    for (int i = 0; i < 10; ++i) {
        inject_healthy();
        sim_.run_for(1_s);
    }
    // 8 seconds of bad vitals, then recovery (shorter than persistence).
    for (int i = 0; i < 8; ++i) {
        inject("spo2", 80.0);
        inject("resp_rate", 4.0);
        inject("etco2", 5.0);
        sim_.run_for(1_s);
    }
    for (int i = 0; i < 60; ++i) {
        inject_healthy();
        sim_.run_for(1_s);
    }
    EXPECT_TRUE(sa.alarms().empty());
}

TEST_F(SmartAlarmTest, RearmLimitsAlarmRate) {
    SmartAlarmConfig cfg;
    cfg.persistence = 5_s;
    cfg.rearm = 60_s;
    auto& sa = make(cfg);
    // 3 minutes of sustained depression.
    for (int i = 0; i < 180; ++i) {
        inject("spo2", 80.0);
        inject("resp_rate", 4.0);
        inject("etco2", 5.0);
        inject("pulse_rate", 70.0);
        sim_.run_for(1_s);
    }
    // With a 60 s re-arm, at most ~3-4 criticals in 3 minutes.
    std::size_t critical = 0;
    for (const auto& a : sa.alarms()) {
        if (a.severity == AlarmSeverity::kCritical) ++critical;
    }
    EXPECT_GE(critical, 2u);
    EXPECT_LE(critical, 4u);
}

TEST_F(SmartAlarmTest, InvalidFlaggedSamplesContributeLess) {
    // Same anomaly, flagged invalid: lower score than when valid.
    SmartAlarmConfig cfg;
    auto& sa = make(cfg);
    for (int i = 0; i < 5; ++i) {
        inject("spo2", 80.0, /*valid=*/false);
        inject("resp_rate", 14.0);
        sim_.run_for(1_s);
    }
    const double flagged_score = sa.current_score();
    for (int i = 0; i < 5; ++i) {
        inject("spo2", 80.0, /*valid=*/true);
        inject("resp_rate", 14.0);
        sim_.run_for(1_s);
    }
    EXPECT_GT(sa.current_score(), flagged_score);
}

TEST_F(SmartAlarmTest, TechnicalAlertOnSilentChannel) {
    SmartAlarmConfig cfg;
    cfg.staleness_limit = 5_s;
    auto& sa = make(cfg);
    for (int i = 0; i < 5; ++i) {
        inject_healthy();
        sim_.run_for(1_s);
    }
    // All channels go silent (e.g. cable pulled) for 30 s.
    sim_.run_for(30_s);
    EXPECT_FALSE(sa.technical_alerts().empty());
    // Sensor silence is a technical alert, NOT a clinical alarm.
    EXPECT_TRUE(sa.alarms().empty());
}

TEST_F(SmartAlarmTest, DominantMetricIdentified) {
    SmartAlarmConfig cfg;
    cfg.persistence = 3_s;
    auto& sa = make(cfg);
    for (int i = 0; i < 20; ++i) {
        inject("spo2", 96.0);
        inject("resp_rate", 2.0);  // dominant anomaly
        inject("etco2", 10.0);
        sim_.run_for(1_s);
    }
    ASSERT_FALSE(sa.alarms().empty());
    EXPECT_EQ(sa.alarms()[0].dominant_metric, "resp_rate");
}

TEST_F(SmartAlarmTest, StopDetachesFromBus) {
    auto& sa = make();
    sa.stop();
    for (int i = 0; i < 30; ++i) {
        inject("spo2", 60.0);
        inject("resp_rate", 2.0);
        sim_.run_for(1_s);
    }
    EXPECT_TRUE(sa.alarms().empty());
}

/// Parameterized threshold sweep: raising the critical threshold can
/// only reduce (or keep) the number of critical alarms.
class SmartAlarmThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(SmartAlarmThresholdSweep, MonotoneInThreshold) {
    const double threshold = GetParam();
    sim::Simulation sim{7};
    net::Bus bus{sim, net::ChannelParameters::ideal()};
    sim::TraceRecorder trace;
    devices::DeviceContext ctx{sim, bus, trace};
    SmartAlarmConfig cfg;
    cfg.critical_threshold = threshold;
    cfg.warning_threshold = std::min(threshold, 2.5);
    cfg.persistence = 5_s;
    SmartAlarm sa{ctx, "s", cfg};
    sa.start();
    for (int i = 0; i < 120; ++i) {
        bus.publish("inj", "vitals/bed1/spo2",
                    net::VitalSignPayload{"spo2", 84.0, true});
        bus.publish("inj", "vitals/bed1/resp_rate",
                    net::VitalSignPayload{"resp_rate", 6.0, true});
        bus.publish("inj", "vitals/bed1/etco2",
                    net::VitalSignPayload{"etco2", 12.0, true});
        sim.run_for(1_s);
    }
    std::size_t criticals = 0;
    for (const auto& a : sa.alarms()) {
        if (a.severity == AlarmSeverity::kCritical) ++criticals;
    }
    // Record for manual inspection; the monotonicity check happens
    // implicitly via the bounded expectations below.
    if (threshold <= 4.0) {
        EXPECT_GE(criticals, 1u);
    }
    if (threshold >= 20.0) {
        EXPECT_EQ(criticals, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SmartAlarmThresholdSweep,
                         ::testing::Values(2.5, 4.0, 8.0, 20.0));

}  // namespace
