/// \file test_xray_sync.cpp
/// \brief Tests for the X-ray/ventilator coordination app and the manual
/// baseline coordinator.

#include <gtest/gtest.h>

#include "core/xray_vent_app.hpp"
#include "ice/ice.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using core::ManualCoordinator;
using core::ManualCoordinatorConfig;
using core::XrayVentConfig;
using core::XrayVentSync;

class XraySyncTest : public ::testing::Test {
protected:
    explicit XraySyncTest(net::ChannelParameters ch =
                              net::ChannelParameters::ideal())
        : sim_{42},
          bus_{sim_, ch},
          patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)},
          ctx_{sim_, bus_, trace_},
          vent_{ctx_, "vent1", patient_},
          xray_{ctx_, "xray1", [this] { return vent_.chest_moving(); }} {}

    XrayVentSync& deploy(XrayVentConfig cfg = {}) {
        vent_.set_heartbeat_period(2_s);
        xray_.set_heartbeat_period(2_s);
        vent_.start();
        xray_.start();
        registry_.add(vent_);
        registry_.add(xray_);
        supervisor_.emplace(ctx_, "sup1", registry_);
        supervisor_->start();
        app_.emplace(ctx_, "sync", cfg);
        const auto r = supervisor_->deploy(*app_);
        if (!r.ok) throw std::runtime_error(r.error);
        // Step physiology so the ventilated patient stays realistic.
        sim_.schedule_periodic(500_ms, [this] { patient_.step(0.5); });
        sim_.run_for(2_s);
        return *app_;
    }

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    physio::Patient patient_;
    devices::DeviceContext ctx_;
    devices::Ventilator vent_;
    devices::XRayMachine xray_;
    ice::DeviceRegistry registry_;
    std::optional<ice::Supervisor> supervisor_;
    std::optional<XrayVentSync> app_;
};

TEST_F(XraySyncTest, ConfigValidation) {
    XrayVentConfig cfg;
    cfg.retry_period = sim::SimDuration::zero();
    EXPECT_THROW(XrayVentSync(ctx_, "x", cfg), std::invalid_argument);
    cfg = {};
    cfg.max_retries = -1;
    EXPECT_THROW(XrayVentSync(ctx_, "x", cfg), std::invalid_argument);
}

TEST_F(XraySyncTest, HappyPathProducesSharpImageAndResumes) {
    auto& app = deploy();
    EXPECT_TRUE(app.request_exposure());
    sim_.run_for(30_s);
    ASSERT_EQ(app.outcomes().size(), 1u);
    const auto& o = app.outcomes()[0];
    EXPECT_TRUE(o.completed);
    EXPECT_TRUE(o.image_sharp);
    EXPECT_LT(o.apnea_s, 8.0);  // bounded pause
    EXPECT_EQ(vent_.mode(), devices::VentMode::kVentilating);
    EXPECT_EQ(vent_.stats().safety_auto_resumes, 0u);
}

TEST_F(XraySyncTest, RejectsWhenBusyOrNotStarted) {
    XrayVentSync unstarted{ctx_, "u", XrayVentConfig{}};
    EXPECT_FALSE(unstarted.request_exposure());
    auto& app = deploy();
    EXPECT_TRUE(app.request_exposure());
    EXPECT_FALSE(app.request_exposure());  // busy
}

TEST_F(XraySyncTest, SequentialProceduresAllSucceed) {
    auto& app = deploy();
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(app.request_exposure());
        sim_.run_for(30_s);
    }
    ASSERT_EQ(app.outcomes().size(), 5u);
    for (const auto& o : app.outcomes()) {
        EXPECT_TRUE(o.completed);
        EXPECT_TRUE(o.image_sharp);
    }
}

TEST_F(XraySyncTest, PhaseNames) {
    EXPECT_EQ(core::to_string(core::SyncPhase::kIdle), "idle");
    EXPECT_EQ(core::to_string(core::SyncPhase::kPausing), "pausing");
    EXPECT_EQ(core::to_string(core::SyncPhase::kExposing), "exposing");
}

/// Same tests under a lossy network: retries must still complete the
/// procedure, and the ventilator auto-resume backstops the worst case.
class XraySyncLossyTest : public XraySyncTest {
protected:
    XraySyncLossyTest() : XraySyncTest(lossy()) {}
    static net::ChannelParameters lossy() {
        net::ChannelParameters p;
        p.base_latency = 50_ms;
        p.jitter_sd = 20_ms;
        p.loss_probability = 0.3;
        return p;
    }
};

TEST_F(XraySyncLossyTest, RetriesCompleteDespiteLoss) {
    XrayVentConfig cfg;
    cfg.max_retries = 20;
    cfg.retry_period = 500_ms;
    auto& app = deploy(cfg);
    int completed = 0, sharp = 0;
    for (int i = 0; i < 10; ++i) {
        app.request_exposure();
        sim_.run_for(1_min);
        // Whatever happened, the ventilator must be ventilating again.
        EXPECT_EQ(vent_.mode(), devices::VentMode::kVentilating);
    }
    for (const auto& o : app.outcomes()) {
        completed += o.completed ? 1 : 0;
        sharp += o.image_sharp ? 1 : 0;
    }
    EXPECT_GE(completed, 8);  // most procedures complete
    EXPECT_GE(sharp, 7);
}

TEST_F(XraySyncLossyTest, AbortAfterMaxRetriesLeavesPatientSafe) {
    XrayVentConfig cfg;
    cfg.max_retries = 2;
    cfg.retry_period = 300_ms;
    auto& app = deploy(cfg);
    // Cut the ventilator off the network entirely: pause can never be
    // acked, the app must give up and the patient must keep breathing.
    bus_.endpoint_channel("vent1").add_outage(
        sim_.now(), sim_.now() + 1_h);
    app.request_exposure();
    sim_.run_for(2_min);
    ASSERT_EQ(app.outcomes().size(), 1u);
    EXPECT_FALSE(app.outcomes()[0].completed);
    // The pause command never arrived, so the ventilator never stopped.
    EXPECT_EQ(vent_.mode(), devices::VentMode::kVentilating);
    EXPECT_FALSE(patient_.is_apneic());
}

TEST(ManualCoordinatorTest, CompletesProcedureEventually) {
    sim::Simulation sim{11};
    net::Bus bus{sim, net::ChannelParameters::ideal()};
    sim::TraceRecorder trace;
    physio::Patient patient{
        physio::nominal_parameters(physio::Archetype::kTypicalAdult)};
    devices::DeviceContext ctx{sim, bus, trace};
    devices::Ventilator vent{ctx, "v", patient};
    devices::XRayMachine xray{ctx, "x", [&] { return vent.chest_moving(); }};
    vent.start();
    xray.start();
    sim.schedule_periodic(500_ms, [&] { patient.step(0.5); });
    sim.run_for(2_s);

    ManualCoordinatorConfig mcfg;
    mcfg.premature_shot_probability = 0.0;
    ManualCoordinator manual{ctx, mcfg, sim.rng("manual")};
    manual.run_procedure(vent, xray);
    sim.run_for(5_min);
    ASSERT_EQ(manual.outcomes().size(), 1u);
    EXPECT_TRUE(manual.outcomes()[0].completed);
    // Ventilator back on (by hand or by safety timeout).
    EXPECT_EQ(vent.mode(), devices::VentMode::kVentilating);
}

TEST(ManualCoordinatorTest, DistractionLeansOnSafetyTimeout) {
    sim::Simulation sim{13};
    net::Bus bus{sim, net::ChannelParameters::ideal()};
    sim::TraceRecorder trace;
    physio::Patient patient{
        physio::nominal_parameters(physio::Archetype::kTypicalAdult)};
    devices::DeviceContext ctx{sim, bus, trace};
    devices::VentilatorConfig vcfg;
    vcfg.max_pause = 20_s;
    devices::Ventilator vent{ctx, "v", patient, vcfg};
    devices::XRayMachine xray{ctx, "x", [&] { return vent.chest_moving(); }};
    vent.start();
    xray.start();
    sim.schedule_periodic(500_ms, [&] { patient.step(0.5); });
    sim.run_for(2_s);

    ManualCoordinatorConfig mcfg;
    mcfg.premature_shot_probability = 0.0;
    mcfg.distraction_probability = 1.0;  // always distracted
    mcfg.distraction_extra_s = 60.0;
    ManualCoordinator manual{ctx, mcfg, sim.rng("manual")};
    int auto_resumes_before = static_cast<int>(vent.stats().safety_auto_resumes);
    manual.run_procedure(vent, xray);
    sim.run_for(5_min);
    // The distracted operator outlasted max_pause: the device-local
    // safety auto-resume protected the patient (hazard H4).
    EXPECT_GT(static_cast<int>(vent.stats().safety_auto_resumes),
              auto_resumes_before);
    EXPECT_EQ(vent.mode(), devices::VentMode::kVentilating);
}

}  // namespace
