/// \file test_pk_model.cpp
/// \brief Unit + property tests for the two-compartment PK integrator.

#include <gtest/gtest.h>

#include "physio/pk_model.hpp"

namespace {

using namespace mcps::physio;

PkParameters one_compartment() {
    PkParameters p;
    p.k12_per_min = 0.0;
    p.k21_per_min = 0.0;
    return p;
}

TEST(PkParameters, ValidationRejectsBadValues) {
    PkParameters p;
    EXPECT_NO_THROW(p.validate());
    p.v1_liters = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = PkParameters{};
    p.k10_per_min = -0.1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = PkParameters{};
    p.ke0_per_min = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = PkParameters{};
    p.k12_per_min = -1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PkModel, InitialStateIsDrugFree) {
    PkTwoCompartment pk{PkParameters{}};
    EXPECT_EQ(pk.plasma(), Concentration::zero());
    EXPECT_EQ(pk.effect_site(), Concentration::zero());
    EXPECT_EQ(pk.body_burden(), Dose::zero());
}

TEST(PkModel, BolusRaisesPlasmaInstantly) {
    PkTwoCompartment pk{PkParameters{}};
    pk.bolus(Dose::mg(1.6));
    // 1.6 mg in 16 L = 0.1 mg/L = 100 ng/ml.
    EXPECT_NEAR(pk.plasma().as_ng_per_ml(), 100.0, 1e-9);
    EXPECT_NEAR(pk.body_burden().as_mg(), 1.6, 1e-12);
}

TEST(PkModel, NegativeBolusRejected) {
    PkTwoCompartment pk{PkParameters{}};
    EXPECT_THROW(pk.bolus(Dose::mg(-1)), std::invalid_argument);
}

TEST(PkModel, StepArgumentValidation) {
    PkTwoCompartment pk{PkParameters{}};
    EXPECT_THROW(pk.step(0.0, InfusionRate::zero()), std::invalid_argument);
    EXPECT_THROW(pk.step(-1.0, InfusionRate::zero()), std::invalid_argument);
}

TEST(PkModel, MatchesAnalyticOneCompartmentBolus) {
    const auto params = one_compartment();
    PkTwoCompartment pk{params};
    pk.bolus(Dose::mg(2.0));
    double max_rel_err = 0.0;
    for (int i = 0; i < 3600; ++i) {  // one hour at 1 s steps
        pk.step(1.0, InfusionRate::zero());
        const double t = i + 1.0;
        const double expected =
            one_compartment_bolus_analytic(params, Dose::mg(2.0), t)
                .as_ng_per_ml();
        const double got = pk.plasma().as_ng_per_ml();
        if (expected > 1e-6) {
            max_rel_err = std::max(max_rel_err,
                                   std::abs(got - expected) / expected);
        }
    }
    EXPECT_LT(max_rel_err, 1e-8);  // RK4 at these rates is essentially exact
}

TEST(PkModel, InfusionApproachesSteadyState) {
    const auto params = one_compartment();
    PkTwoCompartment pk{params};
    const auto rate = InfusionRate::mg_per_hour(6.0);
    for (int i = 0; i < 12 * 3600; ++i) pk.step(1.0, rate);  // 12 h
    // Css = rate / (k10 * V1) = (6 mg/h) / (0.10/min * 16 L)
    const double css_ng_ml = 6.0 / 60.0 / (0.10 * 16.0) * 1e3;
    EXPECT_NEAR(pk.plasma().as_ng_per_ml(), css_ng_ml, css_ng_ml * 0.001);
}

TEST(PkModel, EffectSiteLagsPlasma) {
    PkTwoCompartment pk{PkParameters{}};
    pk.bolus(Dose::mg(1.0));
    pk.step(1.0, InfusionRate::zero());
    EXPECT_GT(pk.plasma().as_ng_per_ml(), pk.effect_site().as_ng_per_ml());
    // Effect site peaks later, then both decay.
    double peak_ce = 0.0;
    double peak_t = 0.0;
    for (int i = 0; i < 3600; ++i) {
        pk.step(1.0, InfusionRate::zero());
        const double ce = pk.effect_site().as_ng_per_ml();
        if (ce > peak_ce) {
            peak_ce = ce;
            peak_t = i;
        }
    }
    EXPECT_GT(peak_t, 30.0);   // lag of minutes, not seconds
    EXPECT_LT(peak_t, 1200.0); // but well under an hour (fentanyl-like)
    EXPECT_GT(peak_ce, 0.0);
}

TEST(PkModel, MassBalanceHolds) {
    PkTwoCompartment pk{PkParameters{}};
    pk.bolus(Dose::mg(2.0));
    for (int i = 0; i < 7200; ++i) {
        pk.step(1.0, InfusionRate::mg_per_hour(1.0));
    }
    const double delivered = pk.total_delivered().as_mg();
    const double in_body = pk.body_burden().as_mg();
    const double eliminated = pk.total_eliminated().as_mg();
    EXPECT_NEAR(delivered, in_body + eliminated, delivered * 1e-6);
    EXPECT_NEAR(delivered, 2.0 + 2.0, 1e-9);  // bolus + 2 h of 1 mg/h
}

TEST(PkModel, CopyBranchesTrajectory) {
    PkTwoCompartment a{PkParameters{}};
    a.bolus(Dose::mg(1.0));
    PkTwoCompartment b = a;  // branch
    a.step(60.0, InfusionRate::zero());
    b.step(60.0, InfusionRate::mg_per_hour(10.0));
    EXPECT_LT(a.plasma().as_ng_per_ml(), b.plasma().as_ng_per_ml());
}

/// Property sweep: concentrations never go negative and decay is
/// monotone after input stops, across a parameter grid.
class PkDecayProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(PkDecayProperty, DecaysMonotonicallyAfterInputStops) {
    const auto [k10, k12, ke0] = GetParam();
    PkParameters p;
    p.k10_per_min = k10;
    p.k12_per_min = k12;
    p.ke0_per_min = ke0;
    PkTwoCompartment pk{p};
    pk.bolus(Dose::mg(1.0));
    for (int i = 0; i < 600; ++i) pk.step(1.0, InfusionRate::zero());

    double prev_total = pk.body_burden().as_mg();
    for (int i = 0; i < 1800; ++i) {
        pk.step(1.0, InfusionRate::zero());
        const double total = pk.body_burden().as_mg();
        ASSERT_GE(total, 0.0);
        ASSERT_LE(total, prev_total + 1e-12);
        ASSERT_GE(pk.plasma().as_ng_per_ml(), 0.0);
        ASSERT_GE(pk.effect_site().as_ng_per_ml(), 0.0);
        prev_total = total;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, PkDecayProperty,
    ::testing::Combine(::testing::Values(0.05, 0.10, 0.20),
                       ::testing::Values(0.0, 0.15, 0.35),
                       ::testing::Values(0.1, 0.35, 0.7)));

}  // namespace
