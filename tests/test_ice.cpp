/// \file test_ice.cpp
/// \brief Tests for the ICE middleware: registry matching/resolution and
/// supervisor deployment + heartbeat liveness monitoring.

#include <gtest/gtest.h>

#include "devices/devices.hpp"
#include "ice/ice.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;

/// A trivial app used to observe supervisor callbacks.
class ProbeApp : public ice::VmdApp {
public:
    explicit ProbeApp(std::vector<ice::Requirement> reqs)
        : ice::VmdApp{"probe"}, reqs_{std::move(reqs)} {}

    std::vector<ice::Requirement> requirements() const override { return reqs_; }
    void bind(const std::vector<ice::DeviceDescriptor>& devices) override {
        for (const auto& d : devices) bound.push_back(d.name);
    }
    void on_app_start() override { ++starts; }
    void on_app_stop() override { ++stops; }
    void on_device_lost(const std::string& name) override {
        lost.push_back(name);
    }
    void on_device_recovered(const std::string& name) override {
        recovered.push_back(name);
    }

    std::vector<ice::Requirement> reqs_;
    std::vector<std::string> bound;
    std::vector<std::string> lost;
    std::vector<std::string> recovered;
    int starts = 0;
    int stops = 0;
};

class IceTest : public ::testing::Test {
protected:
    IceTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)},
          ctx_{sim_, bus_, trace_},
          pump_{ctx_, "pump1", patient_, devices::Prescription{}},
          oxi_{ctx_, "oxi1", patient_},
          cap_{ctx_, "cap1", patient_} {}

    void start_all(mcps::sim::SimDuration hb = 2_s) {
        for (devices::Device* d :
             std::initializer_list<devices::Device*>{&pump_, &oxi_, &cap_}) {
            d->set_heartbeat_period(hb);
            d->start();
            registry_.add(*d);
        }
    }

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    physio::Patient patient_;
    devices::DeviceContext ctx_;
    devices::GpcaPump pump_;
    devices::PulseOximeter oxi_;
    devices::Capnometer cap_;
    ice::DeviceRegistry registry_;
};

TEST_F(IceTest, RegistryAddFindRemove) {
    registry_.add(pump_);
    EXPECT_EQ(registry_.size(), 1u);
    ASSERT_NE(registry_.find("pump1"), nullptr);
    EXPECT_EQ(registry_.find("pump1")->kind, devices::DeviceKind::kInfusionPump);
    EXPECT_EQ(registry_.find("nope"), nullptr);
    EXPECT_THROW(registry_.add(pump_), std::invalid_argument);  // duplicate
    EXPECT_TRUE(registry_.remove("pump1"));
    EXPECT_FALSE(registry_.remove("pump1"));
    EXPECT_EQ(registry_.size(), 0u);
}

TEST_F(IceTest, RegistryMatchByKindAndCapability) {
    start_all();
    ice::Requirement req{devices::DeviceKind::kInfusionPump, {"remote-stop"},
                         "pump"};
    auto matches = registry_.match(req);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].name, "pump1");
    // Capability the pump does not have.
    req.capabilities = {"teleportation"};
    EXPECT_TRUE(registry_.match(req).empty());
    // Kind mismatch.
    ice::Requirement req2{devices::DeviceKind::kVentilator, {}, "vent"};
    EXPECT_TRUE(registry_.match(req2).empty());
}

TEST_F(IceTest, ResolveAssignsDistinctDevices) {
    start_all();
    // Two oximeter requirements but only one oximeter present.
    std::vector<ice::Requirement> reqs{
        {devices::DeviceKind::kPulseOximeter, {"spo2"}, "oxi_a"},
        {devices::DeviceKind::kPulseOximeter, {"spo2"}, "oxi_b"},
    };
    std::string missing;
    auto got = registry_.resolve(reqs, missing);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(missing, "oxi_b");
    // Single requirement resolves.
    reqs.pop_back();
    got = registry_.resolve(reqs, missing);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].name, "oxi1");
}

TEST_F(IceTest, SupervisorDeploysAndStartsApp) {
    start_all();
    ice::Supervisor sup{ctx_, "sup1", registry_};
    sup.start();
    ProbeApp app{{{devices::DeviceKind::kInfusionPump, {}, "pump"},
                  {devices::DeviceKind::kPulseOximeter, {}, "oxi"}}};
    const auto result = sup.deploy(app);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.bound_devices,
              (std::vector<std::string>{"pump1", "oxi1"}));
    EXPECT_EQ(app.bound, result.bound_devices);
    EXPECT_EQ(app.starts, 1);
    EXPECT_TRUE(sup.is_deployed(app));
    EXPECT_EQ(sup.deployed_count(), 1u);
}

TEST_F(IceTest, DeployFailsOnMissingDevice) {
    start_all();
    ice::Supervisor sup{ctx_, "sup1", registry_};
    sup.start();
    ProbeApp app{{{devices::DeviceKind::kVentilator, {}, "ventilator"}}};
    const auto result = sup.deploy(app);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("ventilator"), std::string::npos);
    EXPECT_EQ(app.starts, 0);
}

TEST_F(IceTest, DeployRequiresRunningSupervisorAndRejectsDouble) {
    start_all();
    ice::Supervisor sup{ctx_, "sup1", registry_};
    ProbeApp app{{{devices::DeviceKind::kInfusionPump, {}, "pump"}}};
    EXPECT_FALSE(sup.deploy(app).ok);  // not started
    sup.start();
    EXPECT_TRUE(sup.deploy(app).ok);
    EXPECT_FALSE(sup.deploy(app).ok);  // already deployed
}

TEST_F(IceTest, UndeployStopsAppAndReleasesMonitoring) {
    start_all();
    ice::Supervisor sup{ctx_, "sup1", registry_};
    sup.start();
    ProbeApp app{{{devices::DeviceKind::kInfusionPump, {}, "pump"}}};
    ASSERT_TRUE(sup.deploy(app).ok);
    EXPECT_NE(sup.liveness("pump1"), nullptr);
    EXPECT_TRUE(sup.undeploy(app));
    EXPECT_EQ(app.stops, 1);
    EXPECT_FALSE(sup.is_deployed(app));
    EXPECT_EQ(sup.liveness("pump1"), nullptr);
    EXPECT_FALSE(sup.undeploy(app));
}

TEST_F(IceTest, HeartbeatLossDetectedWithinTimeout) {
    start_all();
    ice::SupervisorConfig cfg;
    cfg.heartbeat_timeout = 5_s;
    ice::Supervisor sup{ctx_, "sup1", registry_, cfg};
    sup.start();
    ProbeApp app{{{devices::DeviceKind::kPulseOximeter, {}, "oxi"}}};
    ASSERT_TRUE(sup.deploy(app).ok);
    sim_.run_for(10_s);
    EXPECT_TRUE(app.lost.empty());  // healthy heartbeats
    oxi_.crash();
    sim_.run_for(7_s);
    ASSERT_EQ(app.lost.size(), 1u);
    EXPECT_EQ(app.lost[0], "oxi1");
    EXPECT_EQ(sup.lost_events(), 1u);
    const auto* live = sup.liveness("oxi1");
    ASSERT_NE(live, nullptr);
    EXPECT_TRUE(live->lost);
}

TEST_F(IceTest, RecoveryAfterHeartbeatResumes) {
    start_all();
    ice::SupervisorConfig cfg;
    cfg.heartbeat_timeout = 5_s;
    ice::Supervisor sup{ctx_, "sup1", registry_, cfg};
    sup.start();
    ProbeApp app{{{devices::DeviceKind::kPulseOximeter, {}, "oxi"}}};
    ASSERT_TRUE(sup.deploy(app).ok);
    oxi_.crash();
    sim_.run_for(7_s);
    ASSERT_EQ(app.lost.size(), 1u);
    // Device restarts (stop resets crash flag, start resumes heartbeats).
    oxi_.stop();
    oxi_.start();
    sim_.run_for(5_s);
    ASSERT_EQ(app.recovered.size(), 1u);
    EXPECT_EQ(app.recovered[0], "oxi1");
    EXPECT_FALSE(sup.liveness("oxi1")->lost);
}

TEST_F(IceTest, ExplicitOfflineDetectedImmediately) {
    start_all();
    ice::SupervisorConfig cfg;
    cfg.heartbeat_timeout = 30_s;  // long timeout; offline must shortcut
    ice::Supervisor sup{ctx_, "sup1", registry_, cfg};
    sup.start();
    ProbeApp app{{{devices::DeviceKind::kCapnometer, {}, "cap"}}};
    ASSERT_TRUE(sup.deploy(app).ok);
    sim_.run_for(3_s);
    cap_.stop();  // graceful shutdown publishes "offline"
    sim_.run_for(1_s);
    ASSERT_EQ(app.lost.size(), 1u);
    EXPECT_EQ(app.lost[0], "cap1");
}

TEST_F(IceTest, SupervisorStopStopsApps) {
    start_all();
    ice::Supervisor sup{ctx_, "sup1", registry_};
    sup.start();
    ProbeApp app{{{devices::DeviceKind::kInfusionPump, {}, "pump"}}};
    ASSERT_TRUE(sup.deploy(app).ok);
    sup.stop();
    EXPECT_EQ(app.stops, 1);
    EXPECT_EQ(sup.deployed_count(), 0u);
}

TEST_F(IceTest, AssemblyTimeIsMeasured) {
    start_all();
    ice::Supervisor sup{ctx_, "sup1", registry_};
    sup.start();
    ProbeApp app{{{devices::DeviceKind::kInfusionPump, {}, "pump"}}};
    const auto r = sup.deploy(app);
    ASSERT_TRUE(r.ok);
    // Deployment is synchronous in simulated time.
    EXPECT_EQ(r.assembly_time, sim::SimDuration::zero());
}

TEST_F(IceTest, BadSupervisorConfigRejected) {
    ice::SupervisorConfig cfg;
    cfg.heartbeat_timeout = sim::SimDuration::zero();
    EXPECT_THROW(ice::Supervisor(ctx_, "s", registry_, cfg),
                 std::invalid_argument);
}

}  // namespace
