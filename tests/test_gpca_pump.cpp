/// \file test_gpca_pump.cpp
/// \brief The GPCA pump's safety requirements R1-R6, exercised on the
/// executable device (the same requirements are model-checked in
/// test_reachability.cpp — the paper's two-pronged assurance story).

#include <gtest/gtest.h>

#include "devices/gpca_pump.hpp"
#include "net/bus.hpp"
#include "physio/population.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using devices::GpcaPump;
using devices::Prescription;
using devices::PumpAlarm;
using devices::PumpConfig;
using devices::PumpState;
using physio::Dose;

/// Common fixture: ideal network, default patient, pump started and
/// through self-test.
class GpcaPumpTest : public ::testing::Test {
protected:
    GpcaPumpTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)},
          ctx_{sim_, bus_, trace_} {}

    GpcaPump& make_pump(Prescription rx = {}, PumpConfig cfg = {}) {
        pump_ = std::make_unique<GpcaPump>(ctx_, "pump1", patient_, rx, cfg);
        pump_->start();
        sim_.run_for(3_s);  // through self-test
        return *pump_;
    }

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    physio::Patient patient_;
    devices::DeviceContext ctx_;
    std::unique_ptr<GpcaPump> pump_;
};

TEST_F(GpcaPumpTest, PowersUpThroughSelfTestIntoInfusing) {
    auto& pump = make_pump();
    EXPECT_EQ(pump.state(), PumpState::kInfusing);
    EXPECT_TRUE(pump.delivering());
}

TEST_F(GpcaPumpTest, PrescriptionValidation) {
    Prescription rx;
    rx.bolus_dose = Dose::mg(0);
    EXPECT_THROW(rx.validate(), std::invalid_argument);
    rx = {};
    rx.lockout = sim::SimDuration::zero();
    EXPECT_THROW(rx.validate(), std::invalid_argument);
    rx = {};
    rx.bolus_dose = Dose::mg(10.0);  // exceeds hourly cap
    EXPECT_THROW(rx.validate(), std::invalid_argument);
    rx = {};
    rx.bolus_rate_mg_per_min = 0;
    EXPECT_THROW(rx.validate(), std::invalid_argument);
}

TEST_F(GpcaPumpTest, BasalDeliveryAccumulates) {
    auto& pump = make_pump();
    sim_.run_for(1_h);
    // 0.5 mg/h basal for ~1 h.
    EXPECT_NEAR(pump.stats().total_delivered.as_mg(), 0.5, 0.05);
}

TEST_F(GpcaPumpTest, R1_LockoutBlocksSecondBolus) {
    auto& pump = make_pump();
    EXPECT_TRUE(pump.press_button());
    sim_.run_for(1_min);  // bolus delivered, still in lockout
    EXPECT_FALSE(pump.press_button());
    EXPECT_EQ(pump.stats().denied_lockout, 1u);
    // After the 8-minute lockout, a new bolus is granted.
    sim_.run_for(8_min);
    EXPECT_TRUE(pump.press_button());
    EXPECT_EQ(pump.stats().boluses_delivered, 2u);
}

TEST_F(GpcaPumpTest, R1_RequestDuringActiveBolusDenied) {
    auto& pump = make_pump();
    EXPECT_TRUE(pump.press_button());
    // Bolus is being delivered right now (0.5 mg at 2 mg/min = 15 s).
    EXPECT_FALSE(pump.press_button());
    EXPECT_EQ(pump.stats().denied_lockout, 1u);
}

TEST_F(GpcaPumpTest, R2_HourlyCapDeniesBolusesAndRaisesAdvisory) {
    Prescription rx;
    rx.basal = physio::InfusionRate::mg_per_hour(0.0);
    rx.bolus_dose = Dose::mg(1.0);
    rx.lockout = 5_min;
    rx.max_hourly = Dose::mg(3.0);
    auto& pump = make_pump(rx);
    int granted = 0;
    for (int i = 0; i < 8; ++i) {
        if (pump.press_button()) ++granted;
        sim_.run_for(6_min);
    }
    // Only 3 mg fit in the first hour; within 48 min only 3 grants fit.
    EXPECT_EQ(granted, 3);
    EXPECT_GT(pump.stats().denied_hourly, 0u);
    EXPECT_LE(pump.delivered_last_hour().as_mg(), 3.0 + 1e-9);
}

TEST_F(GpcaPumpTest, R2_SlidingWindowNeverExceedsCap) {
    Prescription rx;
    rx.basal = physio::InfusionRate::mg_per_hour(4.0);
    rx.bolus_dose = Dose::mg(1.0);
    rx.lockout = 6_min;
    rx.max_hourly = Dose::mg(4.0);
    auto& pump = make_pump(rx);
    // Hammer the button; basal alone would hit the cap.
    for (int i = 0; i < 40; ++i) {
        pump.press_button();
        sim_.run_for(7_min);
        ASSERT_LE(pump.delivered_last_hour().as_mg(), 4.0 + 1e-6);
    }
}

TEST_F(GpcaPumpTest, R3_CriticalAlarmStopsDelivery) {
    auto& pump = make_pump();
    pump.press_button();
    sim_.run_for(5_s);
    pump.inject_fault(PumpAlarm::kOcclusion);
    EXPECT_EQ(pump.state(), PumpState::kAlarm);
    EXPECT_FALSE(pump.delivering());
    const double delivered = pump.stats().total_delivered.as_mg();
    sim_.run_for(10_min);
    EXPECT_DOUBLE_EQ(pump.stats().total_delivered.as_mg(), delivered);
}

TEST_F(GpcaPumpTest, R3_AlarmClearRequiresOperator) {
    auto& pump = make_pump();
    pump.inject_fault(PumpAlarm::kAirInLine);
    EXPECT_EQ(pump.state(), PumpState::kAlarm);
    pump.clear_alarm();
    EXPECT_EQ(pump.state(), PumpState::kIdle);
    EXPECT_FALSE(pump.delivering());
    pump.operator_resume();
    EXPECT_EQ(pump.state(), PumpState::kInfusing);
}

TEST_F(GpcaPumpTest, R4_RemoteStopViaCommandIsAcked) {
    auto& pump = make_pump();
    std::optional<net::AckPayload> ack;
    bus_.subscribe("test", "ack/pump1", [&](const net::Message& m) {
        if (const auto* a = net::payload_as<net::AckPayload>(m)) ack = *a;
    });
    net::CommandPayload cmd;
    cmd.action = "stop_infusion";
    cmd.command_seq = 77;
    bus_.publish("supervisor", "cmd/pump1", cmd);
    sim_.run_for(2_s);
    EXPECT_EQ(pump.state(), PumpState::kPaused);
    EXPECT_FALSE(pump.delivering());
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->command_seq, 77u);
    EXPECT_TRUE(ack->success);
    EXPECT_EQ(pump.stats().remote_stops, 1u);
}

TEST_F(GpcaPumpTest, R4_RemoteResumeRestartsBasal) {
    auto& pump = make_pump();
    net::CommandPayload stop;
    stop.action = "stop_infusion";
    stop.command_seq = 1;
    bus_.publish("supervisor", "cmd/pump1", stop);
    sim_.run_for(1_s);
    ASSERT_EQ(pump.state(), PumpState::kPaused);
    net::CommandPayload resume;
    resume.action = "resume";
    resume.command_seq = 2;
    bus_.publish("supervisor", "cmd/pump1", resume);
    sim_.run_for(1_s);
    EXPECT_EQ(pump.state(), PumpState::kInfusing);
}

TEST_F(GpcaPumpTest, RemoteBolusRequestHonorsLockout) {
    auto& pump = make_pump();
    auto send_bolus_request = [&](std::uint64_t seq) {
        net::CommandPayload cmd;
        cmd.action = "bolus_request";
        cmd.command_seq = seq;
        bus_.publish("supervisor", "cmd/pump1", cmd);
        sim_.run_for(1_s);
    };
    send_bolus_request(1);
    EXPECT_EQ(pump.stats().boluses_delivered, 1u);
    send_bolus_request(2);
    EXPECT_EQ(pump.stats().boluses_delivered, 1u);  // lockout holds (R1)
    EXPECT_EQ(pump.stats().denied_lockout, 1u);
}

TEST_F(GpcaPumpTest, UnknownCommandNacked) {
    make_pump();
    std::optional<net::AckPayload> ack;
    bus_.subscribe("test", "ack/pump1", [&](const net::Message& m) {
        if (const auto* a = net::payload_as<net::AckPayload>(m)) ack = *a;
    });
    net::CommandPayload cmd;
    cmd.action = "fly_to_moon";
    cmd.command_seq = 9;
    bus_.publish("x", "cmd/pump1", cmd);
    sim_.run_for(1_s);
    ASSERT_TRUE(ack.has_value());
    EXPECT_FALSE(ack->success);
}

TEST_F(GpcaPumpTest, R5_EmptyReservoirStopsAndLatches) {
    Prescription rx;
    rx.basal = physio::InfusionRate::mg_per_hour(4.0);
    PumpConfig cfg;
    cfg.reservoir = Dose::mg(1.0);  // tiny reservoir: empty in 15 min
    auto& pump = make_pump(rx, cfg);
    sim_.run_for(30_min);
    EXPECT_EQ(pump.state(), PumpState::kAlarm);
    EXPECT_EQ(pump.alarm(), PumpAlarm::kReservoirEmpty);
    EXPECT_LE(pump.stats().total_delivered.as_mg(), 1.0 + 1e-9);
    // Cannot clear while the reservoir is still empty.
    pump.clear_alarm();
    EXPECT_EQ(pump.state(), PumpState::kAlarm);
}

TEST_F(GpcaPumpTest, R6_RequestsWhilePausedDeniedNotQueued) {
    auto& pump = make_pump();
    pump.operator_pause();
    EXPECT_FALSE(pump.press_button());
    EXPECT_EQ(pump.stats().denied_state, 1u);
    pump.operator_resume();
    sim_.run_for(1_s);
    // The denied request did NOT turn into a bolus.
    EXPECT_EQ(pump.stats().boluses_delivered, 0u);
}

TEST_F(GpcaPumpTest, PatientActuallyReceivesDrug) {
    auto& pump = make_pump();
    pump.press_button();
    sim_.run_for(2_min);
    EXPECT_GT(patient_.pk().total_delivered().as_mg(), 0.4);
    EXPECT_NEAR(patient_.pk().total_delivered().as_mg(),
                pump.stats().total_delivered.as_mg(), 1e-9);
}

TEST_F(GpcaPumpTest, SetPrescriptionOnlyWhenNotDelivering) {
    auto& pump = make_pump();
    Prescription rx;
    EXPECT_THROW(pump.set_prescription(rx), std::logic_error);
    pump.operator_pause();
    EXPECT_NO_THROW(pump.set_prescription(rx));
}

TEST_F(GpcaPumpTest, StopPowersDown) {
    auto& pump = make_pump();
    pump.stop();
    EXPECT_EQ(pump.state(), PumpState::kOff);
    EXPECT_FALSE(pump.running());
}

TEST_F(GpcaPumpTest, CrashSilencesPublications) {
    auto& pump = make_pump();
    int status_count = 0;
    bus_.subscribe("test", "status/pump1",
                   [&](const net::Message&) { ++status_count; });
    sim_.run_for(10_s);
    const int before = status_count;
    EXPECT_GT(before, 0);
    pump.crash();
    sim_.run_for(30_s);
    EXPECT_EQ(status_count, before);
    EXPECT_TRUE(pump.crashed());
}

/// Parameterized sweep: the sliding-window cap holds across prescription
/// shapes (property-style check of R2).
class PumpCapProperty : public ::testing::TestWithParam<std::tuple<double, int>> {
};

TEST_P(PumpCapProperty, WindowCapHolds) {
    const auto [cap_mg, lockout_min] = GetParam();
    sim::Simulation sim{7};
    net::Bus bus{sim, net::ChannelParameters::ideal()};
    sim::TraceRecorder trace;
    physio::Patient patient{
        physio::nominal_parameters(physio::Archetype::kTypicalAdult)};
    devices::DeviceContext ctx{sim, bus, trace};

    Prescription rx;
    rx.basal = physio::InfusionRate::mg_per_hour(cap_mg);  // aggressive
    rx.bolus_dose = Dose::mg(std::min(1.0, cap_mg));
    rx.lockout = sim::SimDuration::minutes(lockout_min);
    rx.max_hourly = Dose::mg(cap_mg);
    PumpConfig cfg;
    cfg.reservoir = Dose::mg(1000.0);
    GpcaPump pump{ctx, "p", patient, rx, cfg};
    pump.start();
    sim.run_for(3_s);
    for (int i = 0; i < 30; ++i) {
        pump.press_button();
        sim.run_for(sim::SimDuration::minutes(lockout_min) + 30_s);
        ASSERT_LE(pump.delivered_last_hour().as_mg(), cap_mg + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PrescriptionGrid, PumpCapProperty,
    ::testing::Combine(::testing::Values(2.0, 4.0, 8.0),
                       ::testing::Values(5, 10, 15)));

}  // namespace
