/// \file test_stats.cpp
/// \brief Unit tests for the statistics accumulators and Table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "sim/stats.hpp"
#include "sim/table.hpp"

namespace {

using namespace mcps::sim;

TEST(RunningStats, EmptyState) {
    RunningStats st;
    EXPECT_TRUE(st.empty());
    EXPECT_EQ(st.count(), 0u);
    EXPECT_EQ(st.mean(), 0.0);
    EXPECT_EQ(st.variance(), 0.0);
    EXPECT_TRUE(std::isnan(st.min()));
    EXPECT_TRUE(std::isnan(st.max()));
}

TEST(RunningStats, KnownValues) {
    RunningStats st;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(v);
    EXPECT_EQ(st.count(), 8u);
    EXPECT_DOUBLE_EQ(st.mean(), 5.0);
    EXPECT_DOUBLE_EQ(st.sum(), 40.0);
    EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(st.min(), 2.0);
    EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
    RunningStats st;
    st.add(3.0);
    EXPECT_EQ(st.variance(), 0.0);
    EXPECT_EQ(st.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double v = std::sin(i) * 10;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean_before = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean_before);
    RunningStats c;
    c.merge(a);
    EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(SampleSet, QuantilesExact) {
    SampleSet s;
    for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-12);
    EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-9);
}

TEST(SampleSet, QuantileErrors) {
    SampleSet s;
    EXPECT_THROW((void)s.quantile(0.5), std::out_of_range);
    s.add(1.0);
    EXPECT_THROW((void)s.quantile(-0.1), std::out_of_range);
    EXPECT_THROW((void)s.quantile(1.1), std::out_of_range);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 1.0);
}

TEST(SampleSet, AddAfterQuantileStillCorrect) {
    SampleSet s;
    s.add(5.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    s.add(9.0);  // invalidates the sorted cache
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Histogram, BinsAndOverflow) {
    Histogram h{0.0, 10.0, 5};
    EXPECT_EQ(h.bins(), 5u);
    h.add(0.5);   // bin 0
    h.add(9.9);   // bin 4
    h.add(-1.0);  // underflow
    h.add(10.0);  // overflow (hi is exclusive)
    h.add(25.0);  // overflow
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, ExtremeValuesLandInOverflowWithoutUb) {
    // Regression: values whose bin index exceeds size_t (or NaN) must be
    // classified as overflow BEFORE the float->int cast, which would
    // otherwise be undefined behaviour.
    Histogram h{0.0, 10.0, 5};
    h.add(1e300);
    h.add(std::numeric_limits<double>::infinity());
    h.add(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.overflow(), 3u);
    EXPECT_EQ(h.total(), 3u);
    for (std::size_t i = 0; i < h.bins(); ++i) EXPECT_EQ(h.bin_count(i), 0u);
}

TEST(Histogram, InvalidConstruction) {
    EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
    EXPECT_THROW(Histogram(10.0, 0.0, 5), std::invalid_argument);
}

TEST(Histogram, MergeEqualsConcatenation) {
    Histogram a{0.0, 10.0, 5}, b{0.0, 10.0, 5}, all{0.0, 10.0, 5};
    for (int i = 0; i < 100; ++i) {
        const double v = -2.0 + 0.15 * i;  // spans under/in/overflow
        (i % 3 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.total(), all.total());
    EXPECT_EQ(a.underflow(), all.underflow());
    EXPECT_EQ(a.overflow(), all.overflow());
    for (std::size_t i = 0; i < all.bins(); ++i) {
        EXPECT_EQ(a.bin_count(i), all.bin_count(i));
    }
}

TEST(Histogram, MergeIsAssociative) {
    // (a + b) + c must equal a + (b + c) bin-for-bin — the property the
    // ward engine's shard reduction relies on.
    Histogram a{0.0, 8.0, 4}, b{0.0, 8.0, 4}, c{0.0, 8.0, 4};
    for (int i = 0; i < 30; ++i) a.add(0.3 * i);
    for (int i = 0; i < 20; ++i) b.add(0.5 * i - 1.0);
    for (int i = 0; i < 25; ++i) c.add(0.4 * i + 2.0);

    Histogram left = a;   // (a + b) + c
    left.merge(b);
    left.merge(c);
    Histogram bc = b;     // a + (b + c)
    bc.merge(c);
    Histogram right = a;
    right.merge(bc);

    EXPECT_EQ(left.total(), right.total());
    EXPECT_EQ(left.underflow(), right.underflow());
    EXPECT_EQ(left.overflow(), right.overflow());
    for (std::size_t i = 0; i < left.bins(); ++i) {
        EXPECT_EQ(left.bin_count(i), right.bin_count(i));
    }
}

TEST(Histogram, PartitionMergePropertyOverRandomPartitions) {
    // The hospital engine's contract: samples partitioned arbitrarily
    // across wards and merged in any grouping must equal the
    // unpartitioned aggregate EXACTLY — counts, under/overflow, and the
    // quantiles computed from them. Randomized partitions (deterministic
    // seeds), including empty parts.
    std::uint64_t rng_state = 0x9E3779B97F4A7C15ULL;
    auto next = [&rng_state]() {  // splitmix64: no platform variance
        rng_state += 0x9E3779B97F4A7C15ULL;
        std::uint64_t z = rng_state;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    };
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t parts = 1 + next() % 9;
        std::vector<Histogram> shard(parts, Histogram{50.0, 100.0, 50});
        Histogram whole{50.0, 100.0, 50};
        const std::size_t samples = 200 + next() % 800;
        for (std::size_t s = 0; s < samples; ++s) {
            // Span underflow, in-range and overflow values.
            const double v =
                40.0 + static_cast<double>(next() % 700) / 10.0;
            whole.add(v);
            shard[next() % parts].add(v);
        }
        Histogram merged{50.0, 100.0, 50};
        for (const Histogram& h : shard) merged.merge(h);
        ASSERT_EQ(merged.total(), whole.total());
        EXPECT_EQ(merged.underflow(), whole.underflow());
        EXPECT_EQ(merged.overflow(), whole.overflow());
        for (std::size_t i = 0; i < whole.bins(); ++i) {
            EXPECT_EQ(merged.bin_count(i), whole.bin_count(i));
        }
        // Quantiles are a pure function of the counts, so they must be
        // bit-equal too (the streaming-aggregation guarantee hospital
        // reports rely on).
        for (const double q : {0.5, 0.9, 0.99}) {
            EXPECT_EQ(merged.quantile(q), whole.quantile(q)) << q;
        }
    }
}

TEST(Histogram, MergeRejectsMismatchedBinning) {
    Histogram a{0.0, 10.0, 5};
    EXPECT_FALSE(a.same_binning(Histogram{0.0, 10.0, 10}));
    EXPECT_FALSE(a.same_binning(Histogram{1.0, 11.0, 5}));
    EXPECT_TRUE(a.same_binning(Histogram{0.0, 10.0, 5}));
    Histogram narrower{0.0, 5.0, 5};
    EXPECT_THROW(a.merge(narrower), std::invalid_argument);
}

TEST(Histogram, QuantileInterpolatesWithinBin) {
    Histogram h{0.0, 10.0, 10};
    for (int i = 0; i < 10; ++i) h.add(i + 0.5);  // one sample per bin
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
    EXPECT_NEAR(h.quantile(0.5), 5.0, 1e-9);
    EXPECT_NEAR(h.quantile(0.95), 9.5, 1e-9);
    EXPECT_NEAR(h.percentile(50.0), h.quantile(0.5), 1e-12);
}

TEST(Histogram, QuantileClampsOutOfRangeMass) {
    Histogram h{0.0, 10.0, 5};
    h.add(-5.0);  // underflow -> reported as lo
    h.add(20.0);  // overflow  -> reported as hi
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileErrors) {
    Histogram h{0.0, 10.0, 5};
    EXPECT_THROW((void)h.quantile(0.5), std::out_of_range);
    h.add(5.0);
    EXPECT_THROW((void)h.quantile(-0.1), std::out_of_range);
    EXPECT_THROW((void)h.quantile(1.1), std::out_of_range);
}

TEST(Histogram, ToStringContainsBars) {
    Histogram h{0.0, 2.0, 2};
    h.add(0.5);
    h.add(0.6);
    h.add(1.5);
    const auto s = h.to_string(10);
    EXPECT_NE(s.find("##########"), std::string::npos);
    EXPECT_NE(s.find("#####"), std::string::npos);
}

TEST(DetectionStats, ConfusionMatrix) {
    DetectionStats d;
    d.record(true, true);    // TP
    d.record(true, false);   // FN
    d.record(false, true);   // FP
    d.record(false, false);  // TN
    d.record(true, true);    // TP
    EXPECT_EQ(d.true_positives(), 2u);
    EXPECT_EQ(d.false_negatives(), 1u);
    EXPECT_EQ(d.false_positives(), 1u);
    EXPECT_EQ(d.true_negatives(), 1u);
    EXPECT_NEAR(d.sensitivity(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(d.specificity(), 0.5, 1e-12);
    EXPECT_NEAR(d.precision(), 2.0 / 3.0, 1e-12);
}

TEST(DetectionStats, NanWhenUndefined) {
    DetectionStats d;
    EXPECT_TRUE(std::isnan(d.sensitivity()));
    EXPECT_TRUE(std::isnan(d.specificity()));
    EXPECT_TRUE(std::isnan(d.precision()));
}

TEST(Table, AlignsAndRenders) {
    Table t({"name", "value"});
    t.row().cell("alpha").cell(1.5, 2);
    t.row().cell("b").cell(std::int64_t{42});
    std::ostringstream os;
    t.print(os, "demo");
    const auto s = os.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
    Table t({"a", "b"});
    t.row().cell(std::int64_t{1}).cell(std::int64_t{2});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, MisuseThrows) {
    EXPECT_THROW(Table({}), std::invalid_argument);
    Table t({"a"});
    EXPECT_THROW(t.cell("x"), std::logic_error);  // cell before row
    t.row().cell("1");
    EXPECT_THROW(t.cell("2"), std::logic_error);  // too many cells
}

}  // namespace
