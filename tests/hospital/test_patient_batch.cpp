/// \file test_patient_batch.cpp
/// \brief SoA differential wall: `physio::PatientBatch` must be
/// BIT-IDENTICAL to the scalar `physio::Patient` it batches.
///
/// The batch exists purely for throughput — it replicates the scalar
/// per-lane expression sequence exactly, so under the project's default
/// flags (no -ffast-math, no FMA contraction) every observable must
/// compare equal with `EXPECT_EQ` on raw doubles, not merely NEAR.
/// The suites below drive randomized cohorts through randomized drug
/// schedules (boluses, infusion changes, antagonist rescues) and hold
/// that line; any drift is a correctness bug in the batch, never an
/// acceptable rounding difference.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "physio/patient.hpp"
#include "physio/patient_batch.hpp"
#include "physio/population.hpp"
#include "sim/rng.hpp"

namespace {

using namespace mcps;
using physio::Archetype;
using physio::Dose;
using physio::InfusionRate;
using physio::Patient;
using physio::PatientBatch;
using physio::PatientParameters;

/// A randomized cohort: index i is a pure function of (seed, i), the
/// same contract the hospital engine relies on.
std::vector<PatientParameters> cohort(std::uint64_t seed, std::size_t n) {
    const auto& archetypes = physio::all_archetypes();
    std::vector<PatientParameters> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(physio::sample_patient_indexed(
            archetypes[i % archetypes.size()], seed, i));
    }
    return out;
}

/// Every observable the two implementations share, compared exactly.
void expect_bit_identical(const Patient& p, const PatientBatch& b,
                          std::size_t i, const char* when) {
    EXPECT_EQ(p.spo2().as_percent(), b.spo2(i).as_percent()) << when;
    EXPECT_EQ(p.resp_rate().as_per_minute(), b.resp_rate(i).as_per_minute())
        << when;
    EXPECT_EQ(p.etco2().as_mmhg(), b.etco2(i).as_mmhg()) << when;
    EXPECT_EQ(p.heart_rate().as_bpm(), b.heart_rate(i).as_bpm()) << when;
    EXPECT_EQ(p.is_apneic(), b.is_apneic(i)) << when;
    EXPECT_EQ(p.respiratory_drive(), b.respiratory_drive(i)) << when;
    EXPECT_EQ(p.paco2_mmhg(), b.paco2_mmhg(i)) << when;
    EXPECT_EQ(p.pao2_mmhg(), b.pao2_mmhg(i)) << when;
    EXPECT_EQ(p.antagonist_level(), b.antagonist_level(i)) << when;
    EXPECT_EQ(p.infusion_rate().as_mg_per_hour(),
              b.infusion_rate(i).as_mg_per_hour())
        << when;
    EXPECT_EQ(p.pk().effect_site().as_ng_per_ml(), b.effect_site(i).as_ng_per_ml())
        << when;
    EXPECT_EQ(p.pk().plasma().as_ng_per_ml(), b.plasma(i).as_ng_per_ml()) << when;
    EXPECT_EQ(p.pk().body_burden().as_mg(), b.body_burden(i).as_mg()) << when;
    EXPECT_EQ(p.pk().total_delivered().as_mg(), b.total_delivered(i).as_mg())
        << when;
    EXPECT_EQ(p.pk().total_eliminated().as_mg(), b.total_eliminated(i).as_mg())
        << when;
    EXPECT_EQ(p.elapsed_seconds(), b.elapsed_seconds(i)) << when;
}

// ------------------------------------------------ differential wall ----

TEST(PatientBatchDifferential, RandomCohortsAreBitIdenticalToScalar) {
    for (const std::uint64_t seed : {7ULL, 1234ULL, 999983ULL}) {
        const auto params = cohort(seed, 24);
        std::vector<Patient> scalars;
        PatientBatch batch;
        batch.reserve(params.size());
        for (const auto& p : params) {
            scalars.emplace_back(p);
            (void)batch.add(p);
        }

        // One schedule stream drives BOTH implementations: boluses,
        // infusion-rate changes and antagonist rescues land on the same
        // lanes at the same ticks with the same magnitudes.
        sim::RngStream sched{seed, "batch.diff.schedule"};
        const double dt = 1.0;
        for (int tick = 0; tick < 600; ++tick) {
            for (std::size_t i = 0; i < scalars.size(); ++i) {
                if (sched.bernoulli(0.01)) {
                    const Dose d = Dose::mg(sched.uniform(0.2, 2.0));
                    scalars[i].bolus(d);
                    batch.bolus(i, d);
                }
                if (sched.bernoulli(0.005)) {
                    const InfusionRate r =
                        InfusionRate::mg_per_hour(sched.uniform(0.0, 2.0));
                    scalars[i].set_infusion_rate(r);
                    batch.set_infusion_rate(i, r);
                }
                if (sched.bernoulli(0.002)) {
                    const double potency = sched.uniform(5.0, 20.0);
                    const double hl = sched.uniform(600.0, 2400.0);
                    scalars[i].give_antagonist(potency, hl);
                    batch.give_antagonist(i, potency, hl);
                }
            }
            batch.step_all(dt);
            for (auto& p : scalars) p.step(dt);
            if (tick % 97 == 0) {
                for (std::size_t i = 0; i < scalars.size(); ++i) {
                    expect_bit_identical(scalars[i], batch, i, "mid-run");
                }
                if (HasFailure()) return;  // don't drown the log
            }
        }
        for (std::size_t i = 0; i < scalars.size(); ++i) {
            expect_bit_identical(scalars[i], batch, i, "final");
        }
    }
}

TEST(PatientBatchDifferential, SubSecondTimestepStaysBitIdentical) {
    const auto params = cohort(11, 8);
    std::vector<Patient> scalars;
    PatientBatch batch;
    for (const auto& p : params) {
        scalars.emplace_back(p);
        (void)batch.add(p);
    }
    scalars[3].bolus(Dose::mg(1.5));
    batch.bolus(3, Dose::mg(1.5));
    for (int tick = 0; tick < 1200; ++tick) {
        batch.step_all(0.25);
        for (auto& p : scalars) p.step(0.25);
    }
    for (std::size_t i = 0; i < scalars.size(); ++i) {
        expect_bit_identical(scalars[i], batch, i, "dt=0.25");
    }
}

TEST(PatientBatchDifferential, EquilibriumInitializationMatchesScalarCtor) {
    const auto params = cohort(3, 16);
    PatientBatch batch;
    for (std::size_t i = 0; i < params.size(); ++i) {
        ASSERT_EQ(batch.add(params[i]), i);
        const Patient p{params[i]};
        expect_bit_identical(p, batch, i, "t=0");
    }
}

// ------------------------------------------- lane-range independence ----

TEST(PatientBatch, StepRangeOrderDoesNotChangeLanes) {
    // The hospital engine steps disjoint ward ranges from different
    // threads; a lane's trajectory must not depend on which range it
    // was stepped through or in what order ranges were visited.
    const auto params = cohort(21, 32);
    PatientBatch a, b;
    for (const auto& p : params) {
        (void)a.add(p);
        (void)b.add(p);
    }
    a.bolus(5, Dose::mg(2.0));
    b.bolus(5, Dose::mg(2.0));
    for (int tick = 0; tick < 300; ++tick) {
        a.step_all(1.0);
        b.step_range(24, 32, 1.0);  // reversed visit order, uneven split
        b.step_range(8, 24, 1.0);
        b.step_range(0, 8, 1.0);
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
        EXPECT_EQ(a.spo2_raw(i), b.spo2_raw(i)) << i;
        EXPECT_EQ(a.paco2_mmhg(i), b.paco2_mmhg(i)) << i;
        EXPECT_EQ(a.body_burden(i).as_mg(), b.body_burden(i).as_mg()) << i;
    }
}

// ------------------------------------------------- contract parity ----

TEST(PatientBatch, ValidationMatchesScalarContract) {
    PatientBatch batch;
    const std::size_t i = batch.add(
        physio::nominal_parameters(Archetype::kTypicalAdult));

    EXPECT_THROW(batch.bolus(i, Dose::mg(-1.0)), std::invalid_argument);
    EXPECT_THROW(batch.set_infusion_rate(i, InfusionRate::mg_per_hour(-0.1)),
                 std::invalid_argument);
    EXPECT_THROW(batch.give_antagonist(i, 0.0, 600.0), std::invalid_argument);
    EXPECT_THROW(batch.step_range(0, 2, 1.0), std::out_of_range);
    EXPECT_THROW(batch.step_all(0.0), std::invalid_argument);

    PatientParameters bad =
        physio::nominal_parameters(Archetype::kTypicalAdult);
    bad.pd.ec50_ng_ml = -1.0;
    EXPECT_THROW((void)batch.add(bad), std::invalid_argument);
    // A rejected add must not leave a half-initialized lane behind.
    EXPECT_EQ(batch.size(), 1u);
    batch.step_all(1.0);
}

TEST(PatientBatch, StateBytesIsFlatInDurationAndLinearInPatients) {
    PatientBatch small, large;
    const auto p = physio::nominal_parameters(Archetype::kTypicalAdult);
    for (int i = 0; i < 10; ++i) (void)small.add(p);
    for (int i = 0; i < 1000; ++i) (void)large.add(p);

    const std::size_t before = large.state_bytes();
    for (int tick = 0; tick < 500; ++tick) large.step_all(1.0);
    EXPECT_EQ(large.state_bytes(), before)
        << "stepping must not allocate (flat-memory contract)";
    EXPECT_GT(large.state_bytes(), small.state_bytes());
    EXPECT_LT(large.state_bytes(), 4u * 1024u * 1024u)
        << "1000 patients must stay well under a few MiB";
}

}  // namespace
