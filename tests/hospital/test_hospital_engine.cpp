/// \file test_hospital_engine.cpp
/// \brief Hospital engine determinism wall: byte-identical reports for
/// any `jobs` value, cohort sampling independent of iteration order and
/// shard assignment, and the flat-memory contract at population scale.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "hospital/hospital_engine.hpp"
#include "physio/population.hpp"
#include "scenario/scenario.hpp"
#include "sim/rng.hpp"

namespace {

using namespace mcps;
using hospital::HospitalConfig;
using hospital::HospitalEngine;
using hospital::HospitalReport;

/// Smoke-scale config: big enough for every mechanism (4 wards, alarms,
/// nurse pool), small enough to run in milliseconds.
HospitalConfig smoke_config() {
    HospitalConfig cfg;
    cfg.patients = 96;
    cfg.wards = 4;
    cfg.nurses_per_ward = 2;
    cfg.bus_capacity_per_tick = 16;
    cfg.duration = sim::SimDuration::minutes(5);
    return cfg;
}

void expect_hist_identical(const sim::Histogram& a, const sim::Histogram& b) {
    ASSERT_EQ(a.bins(), b.bins());
    EXPECT_EQ(a.underflow(), b.underflow());
    EXPECT_EQ(a.overflow(), b.overflow());
    for (std::size_t i = 0; i < a.bins(); ++i) {
        EXPECT_EQ(a.bin_count(i), b.bin_count(i)) << "bin " << i;
    }
}

/// The full jobs-invariance surface: everything a report exposes except
/// wall-clock throughput (the one field that may legitimately differ).
void expect_reports_identical(const HospitalReport& a,
                              const HospitalReport& b) {
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.patient_steps, b.patient_steps);
    EXPECT_EQ(a.boluses, b.boluses);
    EXPECT_EQ(a.storm_boluses, b.storm_boluses);
    EXPECT_EQ(a.vitals_messages, b.vitals_messages);
    EXPECT_EQ(a.alert_messages, b.alert_messages);
    EXPECT_EQ(a.bus_dropped, b.bus_dropped);
    EXPECT_EQ(a.bus_saturated_ticks, b.bus_saturated_ticks);
    EXPECT_EQ(a.max_bus_queue, b.max_bus_queue);
    EXPECT_EQ(a.alarms_raised, b.alarms_raised);
    EXPECT_EQ(a.alarms_attended, b.alarms_attended);
    EXPECT_EQ(a.interlock_stops, b.interlock_stops);
    EXPECT_EQ(a.nurse_stops, b.nurse_stops);
    EXPECT_EQ(a.rescues, b.rescues);
    EXPECT_EQ(a.deadline_violations, b.deadline_violations);
    EXPECT_EQ(a.severe_desat_patients, b.severe_desat_patients);
    EXPECT_EQ(a.state_bytes, b.state_bytes);
    // Exact-double aggregate identity (merge order is pinned to ward
    // order, so parallelism must not perturb a single bit).
    EXPECT_EQ(a.min_spo2.mean(), b.min_spo2.mean());
    EXPECT_EQ(a.min_spo2.min(), b.min_spo2.min());
    EXPECT_EQ(a.drug_mg.mean(), b.drug_mg.mean());
    EXPECT_EQ(a.drug_mg.max(), b.drug_mg.max());
    expect_hist_identical(a.spo2_floor_hist, b.spo2_floor_hist);
    expect_hist_identical(a.bus_delay_hist, b.bus_delay_hist);
    expect_hist_identical(a.alarm_wait_hist, b.alarm_wait_hist);
}

// ----------------------------------------------------- determinism ----

TEST(HospitalEngine, RerunIsByteIdentical) {
    const HospitalConfig cfg = smoke_config();
    const HospitalReport a = HospitalEngine{cfg}.run();
    const HospitalReport b = HospitalEngine{cfg}.run();
    EXPECT_NE(a.fingerprint, 0u);
    expect_reports_identical(a, b);
}

TEST(HospitalEngine, JobsValueNeverChangesTheReport) {
    // The acceptance bar: byte-identical reports for jobs in {1, 4, 16}.
    HospitalConfig cfg = smoke_config();
    cfg.wards = 16;  // more wards than workers at jobs=4, fewer at 16
    cfg.jobs = 1;
    const HospitalReport serial = HospitalEngine{cfg}.run();
    for (const unsigned jobs : {4u, 16u}) {
        cfg.jobs = jobs;
        const HospitalReport parallel = HospitalEngine{cfg}.run();
        expect_reports_identical(serial, parallel);
    }
}

TEST(HospitalEngine, JobsKnobIsInvisibleInRegistryArtifacts) {
    // Same contract end-to-end: the registry outcome (the byte surface
    // reports/pins/serve cache keys are built from) must be identical
    // for any jobs override, including the fingerprint.
    const auto& reg = scenario::registry();
    scenario::ScenarioSpec spec = reg.default_spec("hospital-small");
    spec.minutes = 2;
    const scenario::RunArtifacts one = reg.run(spec);
    for (const char* jobs : {"4", "16"}) {
        scenario::ScenarioSpec s = spec;
        s.set("jobs", jobs);
        const scenario::RunArtifacts many = reg.run(s);
        EXPECT_EQ(one.fingerprint, many.fingerprint) << "jobs=" << jobs;
        ASSERT_EQ(one.outcome.size(), many.outcome.size());
        for (std::size_t i = 0; i < one.outcome.size(); ++i) {
            EXPECT_EQ(one.outcome[i].first, many.outcome[i].first);
            EXPECT_EQ(one.outcome[i].second, many.outcome[i].second)
                << one.outcome[i].first << " drifted at jobs=" << jobs;
        }
    }
}

TEST(HospitalEngine, SeedChangesTheFingerprint) {
    HospitalConfig cfg = smoke_config();
    const HospitalReport a = HospitalEngine{cfg}.run();
    cfg.seed = 43;
    const HospitalReport b = HospitalEngine{cfg}.run();
    EXPECT_NE(a.fingerprint, b.fingerprint);
}

// ------------------------------------------------ shard independence ----

TEST(HospitalCohort, IndexedSamplingIsIterationOrderIndependent) {
    // sample_patient_indexed(i) must be a pure function of (seed, i):
    // visiting the cohort in any permutation yields the same patient at
    // every index — the property that makes ward grouping and shard
    // assignment unable to perturb the population.
    const std::uint64_t seed = 77;
    const std::size_t n = 64;
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});

    std::vector<physio::PatientParameters> forward(n);
    for (std::size_t i = 0; i < n; ++i) {
        forward[i] = physio::sample_patient_indexed(
            physio::Archetype::kElderly, seed, i);
    }
    // A deterministic shuffle (Fisher-Yates off a named stream).
    sim::RngStream shuf{seed, "test.cohort.shuffle"};
    for (std::size_t i = n - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(
            shuf.uniform_int(0, static_cast<std::int64_t>(i)));
        std::swap(order[i], order[j]);
    }
    for (const std::size_t i : order) {
        const physio::PatientParameters p = physio::sample_patient_indexed(
            physio::Archetype::kElderly, seed, i);
        EXPECT_EQ(p.pk.v1_liters, forward[i].pk.v1_liters) << i;
        EXPECT_EQ(p.pk.k10_per_min, forward[i].pk.k10_per_min) << i;
        EXPECT_EQ(p.pd.ec50_ng_ml, forward[i].pd.ec50_ng_ml) << i;
        EXPECT_EQ(p.pd.gamma, forward[i].pd.gamma) << i;
        EXPECT_EQ(p.resp.baseline_rr_per_min,
                  forward[i].resp.baseline_rr_per_min)
            << i;
        EXPECT_EQ(p.cardio.baseline_hr_bpm, forward[i].cardio.baseline_hr_bpm)
            << i;
    }
}

TEST(HospitalCohort, SharedStreamSamplingWouldCoupleToOrder) {
    // The anti-pattern the indexed sampler exists to prevent: threading
    // ONE stream through the loop makes patient i depend on how many
    // patients were sampled before it.
    sim::RngStream a{5, "test.cohort.shared"};
    sim::RngStream b{5, "test.cohort.shared"};
    (void)physio::sample_patient(physio::Archetype::kTypicalAdult, a);
    const auto a1 = physio::sample_patient(physio::Archetype::kTypicalAdult, a);
    const auto b0 = physio::sample_patient(physio::Archetype::kTypicalAdult, b);
    EXPECT_NE(a1.pk.v1_liters, b0.pk.v1_liters);
}

TEST(HospitalEngine, WardRangesPartitionThePopulation) {
    HospitalConfig cfg = smoke_config();
    cfg.patients = 103;  // deliberately not divisible by wards
    cfg.wards = 7;
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (std::size_t w = 0; w < cfg.wards; ++w) {
        const auto [first, last] = cfg.ward_range(w);
        EXPECT_EQ(first, prev_end) << "gap or overlap at ward " << w;
        EXPECT_GT(last, first) << "empty ward " << w;
        // Remainder spreading: ward sizes differ by at most one.
        EXPECT_GE(last - first, cfg.patients / cfg.wards);
        EXPECT_LE(last - first, cfg.patients / cfg.wards + 1);
        covered += last - first;
        prev_end = last;
    }
    EXPECT_EQ(covered, cfg.patients);
    EXPECT_EQ(prev_end, cfg.patients);
}

// --------------------------------------------------- flat memory ----

TEST(HospitalEngine, StateBytesIsFlatInSimulatedDuration) {
    HospitalConfig cfg = smoke_config();
    cfg.duration = sim::SimDuration::minutes(2);
    const HospitalReport short_run = HospitalEngine{cfg}.run();
    cfg.duration = sim::SimDuration::minutes(60);
    const HospitalReport long_run = HospitalEngine{cfg}.run();
    EXPECT_EQ(short_run.state_bytes, long_run.state_bytes)
        << "steady-state footprint must not grow with simulated time";
}

TEST(HospitalEngine, StateBytesScalesWithPopulationNotEvents) {
    HospitalConfig cfg = smoke_config();
    const HospitalReport small = HospitalEngine{cfg}.run();
    cfg.patients = 960;
    cfg.wards = 8;
    const HospitalReport big = HospitalEngine{cfg}.run();
    EXPECT_GT(big.state_bytes, small.state_bytes);
    // ~10x patients must stay within ~20x bytes (SoA lanes + control
    // arrays are linear; ward buffers add a bounded constant per ward).
    EXPECT_LT(big.state_bytes, 20u * small.state_bytes);
    // Population scale stays flat overall: under 2 MiB for ~1000
    // patients even though the run dispatches millions of events.
    EXPECT_LT(big.state_bytes, 2u * 1024u * 1024u);
}

}  // namespace
