/// \file test_alarm_storm.cpp
/// \brief Alarm-storm stress: a synchronized overdose wave floods the
/// ward buses, and the interlock safety invariant must hold anyway.
///
/// The storm knobs give half the cohort a large simultaneous bolus.
/// Dozens of patients then desaturate together; the per-tick threshold
/// alerts flood each ward's ICE bus far past its service capacity
/// (saturation + drops), and the nurse pools fall behind. The safety
/// claim under test: the PUMP-LOCAL interlock never depends on the
/// contended bus, so no patient stays below the SpO2 threshold with a
/// running pump past the interlock deadline — while the off and central
/// placements, which do ride the contended path, blow the same deadline
/// on the same workload (the hazard contrast that makes the zero
/// meaningful rather than vacuous).

#include <gtest/gtest.h>

#include "hospital/hospital_engine.hpp"
#include "sim/time.hpp"

namespace {

using namespace mcps;
using hospital::HospitalConfig;
using hospital::HospitalEngine;
using hospital::HospitalReport;
using hospital::InterlockPlacement;

/// Storm workload: 96 mixed patients, 4 narrow buses, skeleton nurse
/// crews; at t=300 s half the cohort takes a 5 mg bolus at once.
HospitalConfig storm_config() {
    HospitalConfig cfg;
    cfg.patients = 96;
    cfg.wards = 4;
    cfg.nurses_per_ward = 2;
    cfg.bus_capacity_per_tick = 16;
    cfg.duration = sim::SimDuration::minutes(30);
    cfg.storm_fraction = 0.5;
    cfg.storm_bolus_mg = 5.0;
    cfg.storm_at_s = 300.0;
    return cfg;
}

TEST(AlarmStorm, StormActuallyStressesTheBus) {
    // Guard against a vacuous safety pass: the workload must really
    // produce a mass desaturation and saturate the ward buses.
    const HospitalReport r = HospitalEngine{storm_config()}.run();
    EXPECT_GT(r.storm_boluses, 40u);
    EXPECT_GT(r.severe_desat_patients, 20u);
    EXPECT_GT(r.alert_messages, 1000u);
    EXPECT_GT(r.bus_saturated_ticks, 0u);
    EXPECT_GT(r.bus_dropped, 0u) << "bounded queue must shed load";
    EXPECT_EQ(r.max_bus_queue, 1008u)
        << "queue must hit (and never exceed) bus_queue_limit minus the "
           "per-tick drain";
    EXPECT_LE(r.max_bus_queue, storm_config().bus_queue_limit);
    EXPECT_GT(r.alarms_raised, 50u);
}

TEST(AlarmStorm, LocalInterlockHoldsDeadlineUnderBusContention) {
    // THE safety invariant: the pump-local interlock reads the bedside
    // monitor directly, so bus saturation cannot delay it — zero
    // deadline violations even mid-storm.
    const HospitalReport r = HospitalEngine{storm_config()}.run();
    EXPECT_GT(r.bus_saturated_ticks, 0u) << "stress precondition";
    EXPECT_GT(r.interlock_stops, 30u);
    EXPECT_EQ(r.deadline_violations, 0u)
        << "a local interlock must not miss its deadline, however "
           "contended the ward bus";
}

TEST(AlarmStorm, InterlockOffBlowsTheDeadline) {
    HospitalConfig cfg = storm_config();
    cfg.interlock = InterlockPlacement::kOff;
    const HospitalReport r = HospitalEngine{cfg}.run();
    EXPECT_EQ(r.interlock_stops, 0u);
    EXPECT_GT(r.deadline_violations, 20u)
        << "without an interlock the storm must leave pumps running "
           "through prolonged desaturation (else the local zero above "
           "is vacuous)";
}

TEST(AlarmStorm, CentralInterlockBlowsTheDeadlineUnderContention) {
    // The TA5 story, observed dynamically: routing the stop decision
    // through the saturated bus + exhausted nurse pool misses the same
    // deadline the local placement holds.
    HospitalConfig cfg = storm_config();
    cfg.interlock = InterlockPlacement::kCentral;
    const HospitalReport r = HospitalEngine{cfg}.run();
    EXPECT_EQ(r.interlock_stops, 0u);
    EXPECT_GT(r.nurse_stops, 20u) << "nurses do eventually stop pumps";
    EXPECT_GT(r.deadline_violations, 20u)
        << "central placement rides the contended path and must miss "
           "the deadline during the storm";
}

TEST(AlarmStorm, StormMembershipDoesNotPerturbQuietPatients) {
    // Enabling the storm must not move a single RNG draw of the
    // non-storm majority: disable it and only storm-driven effects may
    // change. Boluses granted to quiet patients stay granted.
    HospitalConfig cfg = storm_config();
    const HospitalReport with_storm = HospitalEngine{cfg}.run();
    cfg.storm_fraction = 0.0;
    const HospitalReport quiet = HospitalEngine{cfg}.run();
    EXPECT_EQ(quiet.deadline_violations, 0u)
        << "quiet baseline must be violation-free at this workload";
    EXPECT_EQ(quiet.storm_boluses, 0u);
    EXPECT_NE(with_storm.fingerprint, quiet.fingerprint);
    // The quiet run sees every demand press the storm run saw: demand
    // draws are per-patient streams drawn every tick regardless of
    // storm configuration, so at minimum the press count can only
    // differ by presses denied due to storm-induced interlock stops.
    EXPECT_GE(quiet.boluses, with_storm.boluses);
}

}  // namespace
