/// \file test_interlock_sweep.cpp
/// \brief Parameterized property sweeps over interlock tuning knobs:
/// the safety outcome must respond monotonically to each knob, which is
/// what makes the configuration space navigable for a deploying
/// hospital (a non-monotone knob would be un-tunable).

#include <gtest/gtest.h>

#include "core/core.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;

core::PcaScenarioResult run_with(core::InterlockConfig ilk,
                                 std::uint64_t seed = 71) {
    core::PcaScenarioConfig cfg;
    cfg.seed = seed;
    cfg.duration = 3_h;
    cfg.patient =
        physio::nominal_parameters(physio::Archetype::kOpioidSensitive);
    cfg.demand_mode = core::DemandMode::kProxy;
    cfg.interlock = ilk;
    return core::run_pca_scenario(cfg);
}

/// Sweep the SpO2 stop threshold upward: a more conservative (higher)
/// threshold can only stop earlier or equally early.
class Spo2ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(Spo2ThresholdSweep, ScenarioRemainsSafeAcrossThresholds) {
    core::InterlockConfig ilk;
    ilk.mode = core::InterlockMode::kSpO2Only;
    ilk.spo2_stop = GetParam();
    ilk.spo2_warn = GetParam() + 3.0;
    const auto r = run_with(ilk);
    // Any threshold in the clinically sensible band keeps the patient
    // out of severe hypoxemia in this scenario.
    EXPECT_FALSE(r.severe_hypoxemia) << "spo2_stop=" << GetParam();
    EXPECT_GT(r.interlock.stops_issued, 0u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, Spo2ThresholdSweep,
                         ::testing::Values(90.0, 92.0, 94.0));

TEST(InterlockKnobMonotonicity, TooLateThresholdFailsThisPatient) {
    // Below the sensible band the single-sensor interlock reacts after
    // the O2 stores are already collapsing: 88% is demonstrably too late
    // for this sensitive patient (the reason the defaults sit at 90/93,
    // and the reason dual-sensor capnometry exists).
    core::InterlockConfig ilk;
    ilk.mode = core::InterlockMode::kSpO2Only;
    ilk.spo2_stop = 88.0;
    ilk.spo2_warn = 90.0;
    const auto r = run_with(ilk);
    EXPECT_TRUE(r.severe_hypoxemia);
    EXPECT_GT(r.interlock.stops_issued, 0u);  // it DID react — too late
}

TEST(InterlockKnobMonotonicity, HigherThresholdMeansLessHypoxia) {
    double prev_below90 = -1.0;
    for (const double stop : {86.0, 90.0, 94.0}) {
        core::InterlockConfig ilk;
        ilk.mode = core::InterlockMode::kSpO2Only;
        ilk.spo2_stop = stop;
        ilk.spo2_warn = stop + 2.0;
        const auto r = run_with(ilk);
        if (prev_below90 >= 0.0) {
            // Small tolerance: stochastic demand differs per episode.
            EXPECT_LE(r.time_spo2_below_90_s, prev_below90 + 60.0)
                << "threshold " << stop;
        }
        prev_below90 = r.time_spo2_below_90_s;
    }
}

TEST(InterlockKnobMonotonicity, LongerPersistenceDelaysStops) {
    std::optional<double> prev_latency;
    for (const auto persistence : {5_s, 15_s, 30_s}) {
        core::InterlockConfig ilk;
        ilk.persistence = persistence;
        const auto r = run_with(ilk);
        ASSERT_TRUE(r.interlock.last_stop_latency_ms.has_value())
            << persistence.to_string();
        if (prev_latency) {
            EXPECT_GE(*r.interlock.last_stop_latency_ms + 1.0, *prev_latency)
                << persistence.to_string();
        }
        prev_latency = r.interlock.last_stop_latency_ms;
    }
}

TEST(InterlockKnobMonotonicity, ShorterRecoveryHoldDeliversMoreDrug) {
    double prev_drug = -1.0;
    for (const auto hold : {10_min, 3_min, 1_min}) {
        core::InterlockConfig ilk;
        ilk.recovery_hold = hold;
        const auto r = run_with(ilk);
        if (prev_drug >= 0.0) {
            // Faster resume => at least as much therapy delivered.
            EXPECT_GE(r.total_drug_mg + 0.3, prev_drug) << hold.to_string();
        }
        prev_drug = r.total_drug_mg;
        // Never at the cost of severe hypoxemia.
        EXPECT_FALSE(r.severe_hypoxemia) << hold.to_string();
    }
}

TEST(InterlockKnobMonotonicity, DisablingAutoResumeMinimizesDrug) {
    core::InterlockConfig auto_on;
    auto_on.auto_resume = true;
    core::InterlockConfig auto_off;
    auto_off.auto_resume = false;
    const auto on = run_with(auto_on);
    const auto off = run_with(auto_off);
    EXPECT_LE(off.total_drug_mg, on.total_drug_mg + 1e-9);
    EXPECT_LE(off.interlock.resumes_issued, 0u + 0);  // literally none
    EXPECT_FALSE(off.severe_hypoxemia);
    // The price of never resuming is unmanaged pain.
    EXPECT_GE(off.mean_pain + 1e-9, on.mean_pain);
}

}  // namespace
