/// \file test_automaton.cpp
/// \brief Tests for timed-automaton construction and parallel composition.

#include <gtest/gtest.h>

#include "ta/automaton.hpp"

namespace {

using namespace mcps::ta;

TimedAutomaton simple_two_loc(const std::string& name = "a") {
    TimedAutomaton ta{name};
    const ClockId x = ta.add_clock("x");
    const auto l0 = ta.add_location("L0");
    const auto l1 = ta.add_location("L1", {Constraint::le(x, 10)});
    ta.set_initial(l0);
    ta.add_edge(l0, l1, {Constraint::ge(x, 2)}, {x}, "go");
    return ta;
}

TEST(Automaton, BuilderBasics) {
    auto ta = simple_two_loc();
    EXPECT_EQ(ta.name(), "a");
    EXPECT_EQ(ta.num_clocks(), 1u);
    EXPECT_EQ(ta.num_locations(), 2u);
    EXPECT_EQ(ta.location_name(0), "L0");
    EXPECT_EQ(ta.location("L1"), 1u);
    EXPECT_THROW((void)ta.location("L9"), std::out_of_range);
    EXPECT_EQ(ta.edges().size(), 1u);
    EXPECT_EQ(ta.edges()[0].label, "go");
    EXPECT_NO_THROW(ta.validate());
}

TEST(Automaton, ConstraintFactories) {
    const auto le = Constraint::le(1, 5);
    EXPECT_EQ(le.i, 1u);
    EXPECT_EQ(le.j, 0u);
    EXPECT_EQ(le.bound, Bound::weak(5));
    const auto ge = Constraint::ge(1, 5);
    EXPECT_EQ(ge.i, 0u);
    EXPECT_EQ(ge.j, 1u);
    EXPECT_EQ(ge.bound, Bound::weak(-5));
    const auto gt = Constraint::gt(2, 3);
    EXPECT_EQ(gt.bound, Bound::strict(-3));
    const auto diff = Constraint::diff_le(1, 2, 7);
    EXPECT_EQ(diff.i, 1u);
    EXPECT_EQ(diff.j, 2u);
}

TEST(Automaton, BuilderErrorChecking) {
    TimedAutomaton ta{"t"};
    const ClockId x = ta.add_clock("x");
    const auto l0 = ta.add_location("L0");
    EXPECT_THROW(ta.set_initial(9), std::out_of_range);
    EXPECT_THROW(ta.add_edge(l0, 9, {}, {}, "bad"), std::out_of_range);
    EXPECT_THROW(ta.add_edge(l0, l0, {Constraint::le(5, 1)}, {}, "bad"),
                 std::out_of_range);
    EXPECT_THROW(ta.add_edge(l0, l0, {}, {0}, "bad"), std::out_of_range);
    EXPECT_THROW(ta.add_edge(l0, l0, {}, {7}, "bad"), std::out_of_range);
    EXPECT_THROW(
        ta.add_sync_edge(l0, l0, {}, {}, "", SyncKind::kSend),
        std::invalid_argument);
    (void)x;
}

TEST(Automaton, ValidateCatchesEmptyModels) {
    TimedAutomaton empty{"e"};
    EXPECT_THROW(empty.validate(), std::logic_error);
    TimedAutomaton no_clock{"nc"};
    no_clock.add_location("L");
    EXPECT_THROW(no_clock.validate(), std::logic_error);
}

TEST(Automaton, MaxConstantScansGuardsAndInvariants) {
    TimedAutomaton ta{"t"};
    const ClockId x = ta.add_clock("x");
    const auto l0 = ta.add_location("L0", {Constraint::le(x, 480)});
    const auto l1 = ta.add_location("L1");
    ta.set_initial(l0);
    ta.add_edge(l0, l1, {Constraint::ge(x, 30)}, {}, "e");
    EXPECT_EQ(ta.max_constant(), 480);
}

TEST(Compose, ProductLocationsAndClocks) {
    auto a = simple_two_loc("a");
    auto b = simple_two_loc("b");
    auto p = parallel_compose(a, b);
    EXPECT_EQ(p.num_locations(), 4u);
    EXPECT_EQ(p.num_clocks(), 2u);
    EXPECT_EQ(p.location_name(p.initial()), "L0|L0");
    // Clock names are qualified.
    EXPECT_EQ(p.clock_names()[0], "a.x");
    EXPECT_EQ(p.clock_names()[1], "b.x");
    // Internal edges interleave: 2 per component = 4 total.
    EXPECT_EQ(p.edges().size(), 4u);
    EXPECT_NO_THROW(p.validate());
}

TEST(Compose, HandshakeFusesSendReceive) {
    TimedAutomaton s{"s"};
    const ClockId xs = s.add_clock("x");
    const auto s0 = s.add_location("S0");
    const auto s1 = s.add_location("S1");
    s.set_initial(s0);
    s.add_sync_edge(s0, s1, {Constraint::ge(xs, 1)}, {xs}, "ping",
                    SyncKind::kSend);

    TimedAutomaton r{"r"};
    const ClockId xr = r.add_clock("y");
    const auto r0 = r.add_location("R0");
    const auto r1 = r.add_location("R1");
    r.set_initial(r0);
    r.add_sync_edge(r0, r1, {}, {xr}, "ping", SyncKind::kReceive);

    auto p = parallel_compose(s, r);
    // Edges: 1 fused internal + 2 interleaved sync copies (per location
    // of the other side). The fused one is internal.
    int internal = 0, sync = 0;
    for (const auto& e : p.edges()) {
        (e.sync == SyncKind::kInternal ? internal : sync)++;
    }
    EXPECT_EQ(internal, 1);
    EXPECT_GT(sync, 0);  // open copies preserved for later composition
    // The fused edge goes S0|R0 -> S1|R1.
    const Edge* fused = nullptr;
    for (const auto& e : p.edges()) {
        if (e.sync == SyncKind::kInternal) fused = &e;
    }
    ASSERT_NE(fused, nullptr);
    EXPECT_EQ(p.location_name(fused->src), "S0|R0");
    EXPECT_EQ(p.location_name(fused->dst), "S1|R1");
    // Fused edge carries both guards and both resets.
    EXPECT_EQ(fused->guard.size(), 1u);
    EXPECT_EQ(fused->resets.size(), 2u);
}

TEST(Compose, MismatchedChannelsDoNotFuse) {
    TimedAutomaton s{"s"};
    const ClockId xs = s.add_clock("x");
    const auto s0 = s.add_location("S0");
    s.set_initial(s0);
    s.add_sync_edge(s0, s0, {}, {xs}, "ping", SyncKind::kSend);

    TimedAutomaton r{"r"};
    const ClockId xr = r.add_clock("y");
    const auto r0 = r.add_location("R0");
    r.set_initial(r0);
    r.add_sync_edge(r0, r0, {}, {xr}, "pong", SyncKind::kReceive);

    auto p = parallel_compose(s, r);
    for (const auto& e : p.edges()) {
        EXPECT_NE(e.sync, SyncKind::kInternal);  // nothing fused
    }
}

TEST(Compose, InvariantsAreConjoined) {
    TimedAutomaton a{"a"};
    const ClockId xa = a.add_clock("x");
    a.add_location("A", {Constraint::le(xa, 5)});
    a.set_initial(0);

    TimedAutomaton b{"b"};
    const ClockId xb = b.add_clock("y");
    b.add_location("B", {Constraint::le(xb, 7)});
    b.set_initial(0);

    auto p = parallel_compose(a, b);
    const auto& inv = p.invariant(0);
    ASSERT_EQ(inv.size(), 2u);
    // Second component's clock shifted past a's clock space.
    EXPECT_EQ(inv[0].i, 1u);
    EXPECT_EQ(inv[1].i, 2u);
    EXPECT_EQ(inv[1].bound, Bound::weak(7));
}

}  // namespace
