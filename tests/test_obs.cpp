/// \file test_obs.cpp
/// \brief Unit tests for the observability layer: event log, metrics
/// registry, deterministic formatting, and the JSONL / Chrome / bench
/// exporters.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/format.hpp"
#include "obs/obs.hpp"

namespace {

using namespace mcps::obs;
using mcps::sim::SimDuration;
using mcps::sim::SimTime;
using namespace mcps::sim::literals;

SimTime at(SimDuration d) { return SimTime::origin() + d; }

// ---- events & log ----------------------------------------------------

TEST(Event, KindNamesRoundTrip) {
    for (auto k : {EventKind::kScenarioStart, EventKind::kScenarioEnd,
                   EventKind::kBusPublish, EventKind::kBusDeliver,
                   EventKind::kBusDrop, EventKind::kSupervisorState,
                   EventKind::kPumpCommand, EventKind::kInterlockTrip,
                   EventKind::kFaultInject, EventKind::kShardStart,
                   EventKind::kShardEnd}) {
        const auto name = to_string(k);
        const auto back = event_kind_from(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, k);
    }
    EXPECT_FALSE(event_kind_from("no_such_kind").has_value());
}

TEST(EventLog, EmitAppendCount) {
    EventLog a;
    a.emit(EventKind::kBusPublish, at(1_s), "oxi1", "vitals/bed1/spo2", 1.0);
    a.emit(EventKind::kBusDeliver, at(1_s), "pump1", "vitals/bed1/spo2", 1.0);
    EventLog b;
    b.emit(EventKind::kInterlockTrip, at(2_s), "ilk", "stop/x", 1.0);
    a.append(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.count(EventKind::kBusPublish), 1u);
    EXPECT_EQ(a.count(EventKind::kInterlockTrip), 1u);
    EXPECT_EQ(a.count(EventKind::kShardStart), 0u);
    EXPECT_EQ(a.events().back().source, "ilk");
}

TEST(EventLog, NullGuardedEmitHelper) {
    emit(nullptr, EventKind::kBusDrop, at(1_s), "a", "b");  // must not crash
    EventLog log;
    emit(&log, EventKind::kBusDrop, at(1_s), "a", "b", 3.0);
    EXPECT_EQ(log.size(), 1u);
}

TEST(EventLog, FingerprintIsOrderAndValueExact) {
    EventLog a, b;
    a.emit(EventKind::kBusPublish, at(1_s), "x", "t", 1.0);
    a.emit(EventKind::kBusDeliver, at(2_s), "y", "t", 2.0);
    b.emit(EventKind::kBusDeliver, at(2_s), "y", "t", 2.0);
    b.emit(EventKind::kBusPublish, at(1_s), "x", "t", 1.0);
    EXPECT_NE(a.fingerprint(), b.fingerprint());  // order matters

    EventLog c;
    c.emit(EventKind::kBusPublish, at(1_s), "x", "t", 1.0);
    c.emit(EventKind::kBusDeliver, at(2_s), "y", "t", 2.0);
    EXPECT_EQ(a.fingerprint(), c.fingerprint());

    c.clear();
    c.emit(EventKind::kBusPublish, at(1_s), "x", "t", 1.0);
    c.emit(EventKind::kBusDeliver, at(2_s), "y", "t", 2.0000000001);
    EXPECT_NE(a.fingerprint(), c.fingerprint());  // values matter
}

// ---- deterministic formatting ----------------------------------------

TEST(Format, NumbersAreDeterministic) {
    EXPECT_EQ(format_number(0.0), "0");
    EXPECT_EQ(format_number(17.0), "17");
    EXPECT_EQ(format_number(-3.0), "-3");
    EXPECT_EQ(format_number(0.5), "0.5");
    EXPECT_EQ(format_number(std::nan("")), "null");
    EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "null");
    // %.17g round-trips doubles exactly.
    const double v = 0.1 + 0.2;
    EXPECT_EQ(std::stod(format_number(v)), v);
}

TEST(Format, JsonEscapesControlAndQuotes) {
    EXPECT_EQ(json_escape("plain/topic"), "plain/topic");
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape("x\n\t"), "x\\n\\t");
    EXPECT_EQ(json_escape(std::string{"\x01"}), "\\u0001");
}

// ---- metrics registry ------------------------------------------------

TEST(Metrics, CountersAccumulateAndMerge) {
    MetricsRegistry a, b;
    a.counter("bus/published").add(3);
    b.counter("bus/published").add(4);
    b.counter("bus/dropped").add(1);
    a.merge(b);
    EXPECT_EQ(a.find_counter("bus/published")->value(), 7u);
    EXPECT_EQ(a.find_counter("bus/dropped")->value(), 1u);
    EXPECT_EQ(a.counter_count(), 2u);
    EXPECT_EQ(a.find_counter("absent"), nullptr);
}

TEST(Metrics, GaugeMergeLaterSetWins) {
    MetricsRegistry a, b, c;
    a.gauge("level").set(1.0);
    b.gauge("level").set(2.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.find_gauge("level")->value(), 2.0);
    EXPECT_EQ(a.find_gauge("level")->sets(), 2u);
    // A never-set gauge in the merged-in registry must not clobber.
    (void)c.gauge("level");
    a.merge(c);
    EXPECT_DOUBLE_EQ(a.find_gauge("level")->value(), 2.0);
}

TEST(Metrics, HistogramsMergeExactly) {
    MetricsRegistry a, b;
    a.histogram("lat", 0.0, 10.0, 10).add(1.5);
    b.histogram("lat", 0.0, 10.0, 10).add(2.5);
    b.histogram("lat", 0.0, 10.0, 10).add(11.0);  // overflow
    a.merge(b);
    const auto* h = a.find_histogram("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->total(), 3u);
}

TEST(Metrics, HistogramBinningMismatchThrows) {
    MetricsRegistry a;
    (void)a.histogram("h", 0.0, 10.0, 10);
    EXPECT_THROW((void)a.histogram("h", 0.0, 20.0, 10), std::invalid_argument);

    MetricsRegistry b;
    (void)b.histogram("h", 0.0, 10.0, 20);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Metrics, MergeOrderIndependentFingerprint) {
    // Counters and histograms commute; two shards merged in the same
    // order as one combined registry built sequentially.
    MetricsRegistry s1, s2, merged, combined;
    s1.counter("c").add(1);
    s1.histogram("h", 0.0, 1.0, 4).add(0.25);
    s2.counter("c").add(2);
    s2.histogram("h", 0.0, 1.0, 4).add(0.75);
    merged.merge(s1);
    merged.merge(s2);
    combined.counter("c").add(3);
    combined.histogram("h", 0.0, 1.0, 4).add(0.25);
    combined.histogram("h", 0.0, 1.0, 4).add(0.75);
    EXPECT_EQ(merged.fingerprint(), combined.fingerprint());
}

TEST(Metrics, JsonAndTableExportAreStable) {
    MetricsRegistry r;
    r.counter("z/count").add(2);
    r.counter("a/count").add(1);
    r.gauge("g").set(1.5);
    r.histogram("h", 0.0, 2.0, 2).add(0.5);

    std::ostringstream j1, j2, t;
    r.write_json(j1);
    r.write_json(j2);
    EXPECT_EQ(j1.str(), j2.str());
    // Sorted name order: "a/count" before "z/count".
    EXPECT_LT(j1.str().find("a/count"), j1.str().find("z/count"));
    r.write_table(t);
    EXPECT_NE(t.str().find("a/count"), std::string::npos);
}

// ---- JSONL round trip ------------------------------------------------

TEST(Jsonl, WriteReadRoundTripIsExact) {
    EventLog log;
    log.emit(EventKind::kScenarioStart, at(0_s), "pca", "closed-loop", 42.0);
    log.emit(EventKind::kBusPublish, at(1_s), "oxi1", "vitals/bed1/spo2",
             17.0);
    log.emit(EventKind::kFaultInject, at(90_s), "oxi1", "oxi_dropout", 0.25);
    log.emit(EventKind::kPumpCommand, at(100_s), "pump1",
             "stop_infusion:stopped", 1.0);
    log.emit(EventKind::kScenarioEnd, at(7200_s), "pca", "ok", 25019.0);

    std::ostringstream os;
    write_jsonl(log, os);
    std::istringstream is{os.str()};
    const EventLog back = read_jsonl(is);
    ASSERT_EQ(back.size(), log.size());
    EXPECT_TRUE(back.events() == log.events());
    EXPECT_EQ(back.fingerprint(), log.fingerprint());

    std::ostringstream os2;
    write_jsonl(back, os2);
    EXPECT_EQ(os.str(), os2.str());  // byte-exact round trip
}

TEST(Jsonl, EscapedStringsSurvive) {
    EventLog log;
    log.emit(EventKind::kSupervisorState, at(1_s), "sup \"one\"",
             "line\nbreak\tand\\slash", 0.0);
    std::ostringstream os;
    write_jsonl(log, os);
    std::istringstream is{os.str()};
    const EventLog back = read_jsonl(is);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back.events()[0].source, "sup \"one\"");
    EXPECT_EQ(back.events()[0].detail, "line\nbreak\tand\\slash");
}

TEST(Jsonl, RejectsMalformedLinesWithLineNumber) {
    std::istringstream is{
        "{\"t_us\":0,\"kind\":\"bus_publish\",\"src\":\"a\","
        "\"detail\":\"t\",\"value\":1}\nnot json\n"};
    try {
        (void)read_jsonl(is);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos)
            << e.what();
    }
}

TEST(Jsonl, RejectsUnknownKind) {
    std::istringstream is{
        "{\"t_us\":0,\"kind\":\"warp_drive\",\"src\":\"a\","
        "\"detail\":\"t\",\"value\":1}\n"};
    EXPECT_THROW((void)read_jsonl(is), std::runtime_error);
}

// ---- Chrome trace ----------------------------------------------------

TEST(ChromeTrace, EmitsLanesAndInstantEvents) {
    EventLog log;
    log.emit(EventKind::kBusPublish, at(1_s), "oxi1", "vitals", 1.0);
    log.emit(EventKind::kBusDeliver, at(2_s), "pump1", "vitals", 1.0);
    log.emit(EventKind::kBusPublish, at(3_s), "oxi1", "vitals", 2.0);
    std::ostringstream os;
    write_chrome_trace(log, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("thread_name"), std::string::npos);
    EXPECT_NE(out.find("\"oxi1\""), std::string::npos);
    EXPECT_NE(out.find("\"pump1\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    // Two sources -> two lanes (tids 1 and 2).
    EXPECT_NE(out.find("\"tid\":2"), std::string::npos);
}

// ---- bench JSON schema -----------------------------------------------

TEST(BenchJson, AcceptsConformingReport) {
    std::istringstream is{
        "{\"bench\":\"e1_pca_interlock\",\"seed\":42,\"metrics\":["
        "{\"name\":\"severe_rate\",\"value\":0.25,\"unit\":\"fraction\"},"
        "{\"name\":\"nan_metric\",\"value\":null,\"unit\":\"ms\"}]}"};
    std::string error;
    EXPECT_TRUE(validate_bench_json(is, error)) << error;
}

TEST(BenchJson, RejectsMissingOrMistypedFields) {
    const char* bad[] = {
        "",                                       // empty
        "[1,2,3]",                                // not an object
        "{\"bench\":\"x\",\"metrics\":[]}",       // missing seed
        "{\"bench\":7,\"seed\":1,\"metrics\":[]}",  // bench not a string
        "{\"bench\":\"x\",\"seed\":1.5,\"metrics\":[]}",  // non-integer seed
        "{\"bench\":\"x\",\"seed\":1,\"metrics\":{}}",    // metrics not array
        "{\"bench\":\"x\",\"seed\":1,\"metrics\":[{\"name\":\"m\","
        "\"value\":1}]}",  // entry missing unit
    };
    for (const char* doc : bad) {
        std::istringstream is{doc};
        std::string error;
        EXPECT_FALSE(validate_bench_json(is, error)) << doc;
        EXPECT_FALSE(error.empty()) << doc;
    }
}

}  // namespace
