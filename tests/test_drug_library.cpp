/// \file test_drug_library.cpp
/// \brief Tests for the drug library, prescription checker and the
/// audited programming session (requirement R7).

#include <gtest/gtest.h>

#include "devices/drug_library.hpp"
#include "net/bus.hpp"
#include "physio/population.hpp"
#include "sim/trace.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using devices::check_prescription;
using devices::DrugEntry;
using devices::DrugLibrary;
using devices::Prescription;
using devices::ProgrammingSession;
using physio::Dose;
using physio::InfusionRate;

Prescription within_soft() {
    Prescription rx;
    rx.basal = InfusionRate::mg_per_hour(0.5);
    rx.bolus_dose = Dose::mg(0.5);
    rx.lockout = 10_min;
    rx.max_hourly = Dose::mg(5.0);
    return rx;
}

TEST(DrugEntry, ValidationOrdersSoftInsideHard) {
    DrugEntry e;
    e.name = "x";
    EXPECT_NO_THROW(e.validate());
    e.soft_max_bolus = Dose::mg(2.0);  // above hard 1.0
    EXPECT_THROW(e.validate(), std::invalid_argument);
    e = DrugEntry{};
    e.name = "x";
    e.soft_min_lockout = 2_min;  // below hard min 5
    EXPECT_THROW(e.validate(), std::invalid_argument);
    e = DrugEntry{};
    e.name = "";
    EXPECT_THROW(e.validate(), std::invalid_argument);
}

TEST(Checker, CleanPrescriptionPasses) {
    DrugEntry e;
    e.name = "opioid";
    const auto c = check_prescription(within_soft(), e);
    EXPECT_TRUE(c.hard.empty());
    EXPECT_TRUE(c.soft.empty());
    EXPECT_TRUE(c.acceptable(false));
}

TEST(Checker, SoftViolationNeedsOverride) {
    DrugEntry e;
    e.name = "opioid";
    Prescription rx = within_soft();
    rx.bolus_dose = Dose::mg(0.8);  // > soft 0.6, <= hard 1.0
    const auto c = check_prescription(rx, e);
    EXPECT_TRUE(c.hard.empty());
    ASSERT_EQ(c.soft.size(), 1u);
    EXPECT_EQ(c.soft[0].field, "bolus_dose");
    EXPECT_FALSE(c.acceptable(false));
    EXPECT_TRUE(c.acceptable(true));
}

TEST(Checker, HardViolationNeverAcceptable) {
    DrugEntry e;
    e.name = "opioid";
    Prescription rx = within_soft();
    rx.max_hourly = Dose::mg(9.0);  // > hard 8.0
    rx.bolus_dose = Dose::mg(1.0);
    const auto c = check_prescription(rx, e);
    ASSERT_FALSE(c.hard.empty());
    EXPECT_EQ(c.hard[0].field, "max_hourly");
    EXPECT_FALSE(c.acceptable(true));  // override cannot beat hard limits
}

TEST(Checker, ShortLockoutFlagged) {
    DrugEntry e;
    e.name = "opioid";
    Prescription rx = within_soft();
    rx.lockout = 6_min;  // >= hard 5, < soft 8
    auto c = check_prescription(rx, e);
    EXPECT_TRUE(c.hard.empty());
    ASSERT_EQ(c.soft.size(), 1u);
    EXPECT_EQ(c.soft[0].field, "lockout");
    rx.lockout = 4_min;  // < hard 5
    c = check_prescription(rx, e);
    ASSERT_FALSE(c.hard.empty());
}

TEST(Checker, MultipleViolationsAllReported) {
    DrugEntry e;
    e.name = "opioid";
    Prescription rx;
    rx.basal = InfusionRate::mg_per_hour(3.0);  // > hard 2.0
    rx.bolus_dose = Dose::mg(0.9);              // > soft 0.6
    rx.lockout = 4_min;                         // < hard 5
    rx.max_hourly = Dose::mg(7.0);              // > soft 6
    const auto c = check_prescription(rx, e);
    EXPECT_EQ(c.hard.size(), 2u);  // basal + lockout
    EXPECT_EQ(c.soft.size(), 4u);  // basal, bolus, hourly, lockout
}

TEST(Library, AddFindDuplicates) {
    DrugLibrary lib;
    DrugEntry e;
    e.name = "a";
    lib.add(e);
    EXPECT_THROW(lib.add(e), std::invalid_argument);
    EXPECT_NE(lib.find("a"), nullptr);
    EXPECT_EQ(lib.find("b"), nullptr);
    EXPECT_EQ(lib.size(), 1u);
}

TEST(Library, DefaultOpioidLibraryIsConsistent) {
    const auto lib = devices::build_default_opioid_library();
    EXPECT_GE(lib.size(), 2u);
    ASSERT_NE(lib.find("synthetic-opioid"), nullptr);
    ASSERT_NE(lib.find("synthetic-opioid-elderly"), nullptr);
    // The elderly entry is uniformly stricter.
    const auto* adult = lib.find("synthetic-opioid");
    const auto* old = lib.find("synthetic-opioid-elderly");
    EXPECT_LT(old->hard_max_hourly, adult->hard_max_hourly);
    EXPECT_GT(old->hard_min_lockout, adult->hard_min_lockout);
}

class ProgrammingTest : public ::testing::Test {
protected:
    ProgrammingTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)},
          ctx_{sim_, bus_, trace_},
          pump_{ctx_, "pump1", patient_, within_soft()},
          library_{devices::build_default_opioid_library()},
          session_{library_, sim_} {}

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    physio::Patient patient_;
    devices::DeviceContext ctx_;
    devices::GpcaPump pump_;
    DrugLibrary library_;
    ProgrammingSession session_;
};

TEST_F(ProgrammingTest, AcceptsCleanPrescriptionOnIdlePump) {
    const auto c =
        session_.program(pump_, "synthetic-opioid", within_soft(), false);
    EXPECT_TRUE(c.acceptable(false));
    ASSERT_EQ(session_.records().size(), 1u);
    EXPECT_TRUE(session_.records()[0].accepted);
    EXPECT_EQ(pump_.prescription().bolus_dose, Dose::mg(0.5));
}

TEST_F(ProgrammingTest, RejectsUnknownDrug) {
    const auto c = session_.program(pump_, "mystery-juice", within_soft(), true);
    EXPECT_FALSE(c.acceptable(true));
    ASSERT_EQ(c.hard.size(), 1u);
    EXPECT_EQ(c.hard[0].field, "drug");
    EXPECT_FALSE(session_.records()[0].accepted);
}

TEST_F(ProgrammingTest, RejectsOnRunningPump) {
    pump_.start();
    sim_.run_for(3_s);  // through self-test, now infusing
    const auto c =
        session_.program(pump_, "synthetic-opioid", within_soft(), false);
    EXPECT_FALSE(c.acceptable(false));
    bool pump_state_violation = false;
    for (const auto& v : c.hard) {
        pump_state_violation |= v.field == "pump-state";
    }
    EXPECT_TRUE(pump_state_violation);
}

TEST_F(ProgrammingTest, SoftOverrideIsAudited) {
    Prescription rx = within_soft();
    rx.bolus_dose = Dose::mg(0.8);
    // Without override: rejected.
    auto c = session_.program(pump_, "synthetic-opioid", rx, false);
    EXPECT_FALSE(session_.records().back().accepted);
    // With override: accepted and recorded as overridden.
    c = session_.program(pump_, "synthetic-opioid", rx, true);
    EXPECT_TRUE(session_.records().back().accepted);
    EXPECT_TRUE(session_.records().back().overridden);
    EXPECT_EQ(session_.records().back().soft_violations, 1u);
    EXPECT_EQ(pump_.prescription().bolus_dose, Dose::mg(0.8));
}

TEST_F(ProgrammingTest, StricterEntryRejectsWhatAdultEntryAllows) {
    Prescription rx = within_soft();
    rx.max_hourly = Dose::mg(5.0);
    rx.bolus_dose = Dose::mg(0.5);
    const auto adult =
        session_.program(pump_, "synthetic-opioid", rx, false);
    EXPECT_TRUE(adult.acceptable(false));
    const auto elderly =
        session_.program(pump_, "synthetic-opioid-elderly", rx, true);
    // 5.0 mg/h hourly cap equals the elderly hard cap, bolus 0.5 > soft
    // 0.4 (override) — acceptable with override; tighten further:
    Prescription hot = rx;
    hot.max_hourly = Dose::mg(6.0);  // > elderly hard 5.0
    const auto rejected =
        session_.program(pump_, "synthetic-opioid-elderly", hot, true);
    EXPECT_TRUE(elderly.acceptable(true));
    EXPECT_FALSE(rejected.acceptable(true));
}

}  // namespace
