/// \file test_patient.cpp
/// \brief Unit + property tests for the whole-patient model, archetypes
/// and the PCA demand process.

#include <gtest/gtest.h>

#include "physio/physio.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace {

using namespace mcps::physio;

TEST(Units, DoseArithmeticAndComparison) {
    auto a = Dose::mg(2.0);
    auto b = Dose::mg(0.5);
    EXPECT_EQ((a + b).as_mg(), 2.5);
    EXPECT_EQ((a - b).as_mg(), 1.5);
    EXPECT_EQ((a * 2.0).as_mg(), 4.0);
    EXPECT_LT(b, a);
    a += b;
    EXPECT_EQ(a.as_mg(), 2.5);
}

TEST(Units, SpO2Validation) {
    EXPECT_THROW((void)SpO2::percent(-1.0), std::out_of_range);
    EXPECT_THROW((void)SpO2::percent(101.0), std::out_of_range);
    EXPECT_EQ(SpO2::percent_clamped(150.0).as_percent(), 100.0);
    EXPECT_EQ(SpO2::percent_clamped(-5.0).as_percent(), 0.0);
    EXPECT_EQ(SpO2::percent(97.0).as_percent(), 97.0);
}

TEST(Units, RatesRejectNegatives) {
    EXPECT_THROW((void)RespRate::per_minute(-1), std::out_of_range);
    EXPECT_THROW((void)EtCO2::mmhg(-1), std::out_of_range);
    EXPECT_THROW((void)HeartRate::bpm(-1), std::out_of_range);
    EXPECT_EQ(RespRate::per_minute_clamped(-3).as_per_minute(), 0.0);
}

TEST(HillEffect, ZeroAtZeroHalfAtEc50) {
    PdParameters pd;
    EXPECT_EQ(hill_effect(pd, Concentration::zero()), 0.0);
    EXPECT_NEAR(hill_effect(pd, Concentration::ng_per_ml(pd.ec50_ng_ml)),
                0.5 * pd.emax, 1e-12);
    // Monotone increasing.
    double prev = 0.0;
    for (double c = 1.0; c < 300.0; c += 5.0) {
        const double e = hill_effect(pd, Concentration::ng_per_ml(c));
        ASSERT_GE(e, prev);
        ASSERT_LT(e, pd.emax + 1e-12);
        prev = e;
    }
}

TEST(Severinghaus, KnownAnchors) {
    EXPECT_NEAR(severinghaus_spo2(100.0), 97.7, 0.5);
    EXPECT_NEAR(severinghaus_spo2(60.0), 89.5, 1.5);
    EXPECT_NEAR(severinghaus_spo2(27.0), 50.0, 3.0);  // P50
    EXPECT_EQ(severinghaus_spo2(0.0), 0.0);
    EXPECT_EQ(severinghaus_spo2(-5.0), 0.0);
    // Monotone.
    double prev = -1;
    for (double p = 1; p < 600; p += 5) {
        const double s = severinghaus_spo2(p);
        ASSERT_GE(s, prev);
        ASSERT_LE(s, 100.0);
        prev = s;
    }
}

TEST(Patient, BaselineIsStable) {
    Patient p{PatientParameters{}};
    for (int i = 0; i < 1200; ++i) p.step(0.5);
    EXPECT_NEAR(p.spo2().as_percent(), 97.0, 1.0);
    EXPECT_NEAR(p.resp_rate().as_per_minute(), 14.0, 0.5);
    EXPECT_NEAR(p.etco2().as_mmhg(), 36.0, 2.0);
    EXPECT_NEAR(p.heart_rate().as_bpm(), 76.0, 2.0);
    EXPECT_FALSE(p.is_apneic());
    EXPECT_NEAR(p.respiratory_drive(), 1.0, 0.05);
}

TEST(Patient, StepValidation) {
    Patient p{PatientParameters{}};
    EXPECT_THROW(p.step(0.0), std::invalid_argument);
    EXPECT_THROW(p.step(-0.5), std::invalid_argument);
    EXPECT_THROW(p.set_infusion_rate(InfusionRate::mg_per_hour(-1)),
                 std::invalid_argument);
}

TEST(Patient, OpioidDepressesRespiration) {
    Patient p{PatientParameters{}};
    const double rr0 = p.resp_rate().as_per_minute();
    p.bolus(Dose::mg(1.5));
    for (int i = 0; i < 1200; ++i) p.step(0.5);  // 10 min
    EXPECT_LT(p.resp_rate().as_per_minute(), rr0);
    EXPECT_GT(p.paco2_mmhg(), 40.0);
}

TEST(Patient, MassiveOverdoseCausesApneaAndDesaturation) {
    Patient p{nominal_parameters(Archetype::kOpioidSensitive)};
    p.bolus(Dose::mg(8.0));
    bool saw_apnea = false;
    for (int i = 0; i < 2400; ++i) {  // 20 min
        p.step(0.5);
        saw_apnea = saw_apnea || p.is_apneic();
    }
    EXPECT_TRUE(saw_apnea);
    EXPECT_LT(p.spo2().as_percent(), 85.0);
    // Capnometer shows no waveform during apnea.
    if (p.is_apneic()) {
        EXPECT_EQ(p.etco2().as_mmhg(), 0.0);
    }
}

TEST(Patient, RecoversAfterDrugClears) {
    Patient p{nominal_parameters(Archetype::kTypicalAdult)};
    p.bolus(Dose::mg(2.0));
    for (int i = 0; i < 1200; ++i) p.step(0.5);  // depressed
    const double depressed_rr = p.resp_rate().as_per_minute();
    for (int i = 0; i < 2 * 7200; ++i) p.step(0.5);  // 2 h washout
    EXPECT_GT(p.resp_rate().as_per_minute(), depressed_rr);
    EXPECT_GT(p.spo2().as_percent(), 94.0);
}

TEST(Patient, DoseResponseMonotoneAcrossPatients) {
    // Bigger sustained infusion => lower minimum SpO2.
    double prev_min = 101.0;
    for (double rate : {0.0, 3.0, 8.0, 20.0}) {
        Patient p{nominal_parameters(Archetype::kTypicalAdult)};
        p.set_infusion_rate(InfusionRate::mg_per_hour(rate));
        double min_spo2 = 101.0;
        for (int i = 0; i < 7200; ++i) {
            p.step(0.5);
            min_spo2 = std::min(min_spo2, p.spo2().as_percent());
        }
        EXPECT_LE(min_spo2, prev_min + 1e-9);
        prev_min = min_spo2;
    }
}

TEST(Patient, MechanicalVentilationOverridesDrive) {
    Patient p{nominal_parameters(Archetype::kOpioidSensitive)};
    p.bolus(Dose::mg(8.0));  // would cause apnea
    p.set_mechanical_ventilation(
        MechanicalVentilation{RespRate::per_minute(12.0), 500.0});
    for (int i = 0; i < 2400; ++i) p.step(0.5);
    EXPECT_TRUE(p.on_ventilator());
    EXPECT_FALSE(p.is_apneic());
    EXPECT_NEAR(p.resp_rate().as_per_minute(), 12.0, 0.1);
    EXPECT_GT(p.spo2().as_percent(), 90.0);
}

TEST(Patient, PausedVentilatorCausesApnea) {
    Patient p{PatientParameters{}};
    p.set_mechanical_ventilation(
        MechanicalVentilation{RespRate::per_minute(0.0), 0.0});
    for (int i = 0; i < 120; ++i) p.step(0.5);
    EXPECT_TRUE(p.is_apneic());
    // Resume restores breathing.
    p.set_mechanical_ventilation(
        MechanicalVentilation{RespRate::per_minute(12.0), 500.0});
    for (int i = 0; i < 120; ++i) p.step(0.5);
    EXPECT_FALSE(p.is_apneic());
}

TEST(Patient, HypoxiaCausesTachycardiaThenBradycardia) {
    Patient p{nominal_parameters(Archetype::kOpioidSensitive)};
    const double hr0 = p.heart_rate().as_bpm();
    p.bolus(Dose::mg(3.0));
    double max_hr = 0.0, min_hr = 1e9;
    for (int i = 0; i < 4800; ++i) {
        p.step(0.5);
        max_hr = std::max(max_hr, p.heart_rate().as_bpm());
        min_hr = std::min(min_hr, p.heart_rate().as_bpm());
    }
    EXPECT_GT(max_hr, hr0 + 3.0);  // compensatory tachycardia occurred
}

TEST(Archetypes, AllValidateAndAreDistinct) {
    for (const auto a : all_archetypes()) {
        const auto p = nominal_parameters(a);
        EXPECT_NO_THROW(p.validate());
        EXPECT_EQ(p.label, std::string{to_string(a)});
    }
    EXPECT_LT(nominal_parameters(Archetype::kOpioidSensitive).pd.ec50_ng_ml,
              nominal_parameters(Archetype::kTypicalAdult).pd.ec50_ng_ml);
    EXPECT_GT(nominal_parameters(Archetype::kOpioidTolerant).pd.ec50_ng_ml,
              nominal_parameters(Archetype::kTypicalAdult).pd.ec50_ng_ml);
}

TEST(Archetypes, SensitivityOrderingUnderSameDose) {
    auto min_spo2_for = [](Archetype a) {
        Patient p{nominal_parameters(a)};
        p.bolus(Dose::mg(2.5));
        double m = 101.0;
        for (int i = 0; i < 7200; ++i) {
            p.step(0.5);
            m = std::min(m, p.spo2().as_percent());
        }
        return m;
    };
    EXPECT_LT(min_spo2_for(Archetype::kOpioidSensitive),
              min_spo2_for(Archetype::kTypicalAdult));
    EXPECT_LE(min_spo2_for(Archetype::kTypicalAdult),
              min_spo2_for(Archetype::kOpioidTolerant) + 1e-9);
}

TEST(Population, SamplingIsDeterministicGivenStream) {
    mcps::sim::RngStream r1{42, "pop"}, r2{42, "pop"};
    const auto a = sample_patient(Archetype::kTypicalAdult, r1);
    const auto b = sample_patient(Archetype::kTypicalAdult, r2);
    EXPECT_EQ(a.pk.v1_liters, b.pk.v1_liters);
    EXPECT_EQ(a.pd.ec50_ng_ml, b.pd.ec50_ng_ml);
}

TEST(Population, SamplesValidateAndVary) {
    mcps::sim::RngStream r{7, "pop"};
    const auto pop = sample_population(Archetype::kElderly, 50, r);
    ASSERT_EQ(pop.size(), 50u);
    mcps::sim::RunningStats ec50;
    for (const auto& p : pop) {
        EXPECT_NO_THROW(p.validate());
        ec50.add(p.pd.ec50_ng_ml);
    }
    EXPECT_GT(ec50.stddev(), 1.0);  // real spread
    // Median near nominal.
    EXPECT_NEAR(ec50.mean(), nominal_parameters(Archetype::kElderly).pd.ec50_ng_ml,
                10.0);
}

TEST(Population, ZeroVariabilityReturnsNominal) {
    mcps::sim::RngStream r{7, "pop"};
    VariabilitySpec var;
    var.cv_pk = 0.0;
    var.cv_pd = 0.0;
    var.cv_resp = 0.0;
    const auto p = sample_patient(Archetype::kTypicalAdult, r, var);
    const auto nom = nominal_parameters(Archetype::kTypicalAdult);
    EXPECT_DOUBLE_EQ(p.pd.ec50_ng_ml, nom.pd.ec50_ng_ml);
    EXPECT_DOUBLE_EQ(p.pk.v1_liters, nom.pk.v1_liters);
}

TEST(DemandModel, PainFallsWithAnalgesia) {
    DemandModel d{DemandParameters{}, mcps::sim::RngStream{1, "d"}};
    EXPECT_NEAR(d.pain(Concentration::zero()), 6.5, 1e-12);
    EXPECT_LT(d.pain(Concentration::ng_per_ml(50.0)), 3.0);
    EXPECT_GT(d.pain(Concentration::ng_per_ml(50.0)), 0.0);
}

TEST(DemandModel, SedationSuppressesPresses) {
    DemandParameters params;
    DemandModel d{params, mcps::sim::RngStream{1, "d"}};
    // Deeply sedated: never presses regardless of pain.
    for (int i = 0; i < 10000; ++i) {
        ASSERT_FALSE(d.poll_press(1.0, Concentration::zero(), 0.9));
    }
}

TEST(DemandModel, PainDrivesPressRate) {
    DemandParameters params;
    DemandModel d{params, mcps::sim::RngStream{1, "d"}};
    int presses = 0;
    for (int i = 0; i < 3600 * 10; ++i) {  // 10 h in 1 s steps, pain 6.5
        presses += d.poll_press(1.0, Concentration::zero(), 0.0) ? 1 : 0;
    }
    // Expected ~ 18 * 0.65 = 11.7 presses/hour.
    EXPECT_NEAR(presses / 10.0, 11.7, 3.0);
    // No presses when pain is fully relieved.
    DemandModel d2{params, mcps::sim::RngStream{2, "d"}};
    for (int i = 0; i < 10000; ++i) {
        ASSERT_FALSE(
            d2.poll_press(1.0, Concentration::ng_per_ml(1000.0), 0.0));
    }
}

TEST(DemandModel, ProxyIgnoresSedation) {
    DemandParameters params;
    params.proxy_presses = true;
    DemandModel d{params, mcps::sim::RngStream{3, "d"}};
    int presses = 0;
    for (int i = 0; i < 3600 * 10; ++i) {
        presses += d.poll_press(1.0, Concentration::ng_per_ml(1000.0), 0.95)
                       ? 1
                       : 0;
    }
    EXPECT_NEAR(presses / 10.0, params.proxy_rate_per_hour, 2.5);
}

}  // namespace
