/// \file test_shared_metrics_stress.cpp
/// \brief Concurrency stress for obs::SharedMetrics: many producer
/// threads hammer counters, gauges and histograms while readers pull
/// snapshots.
///
/// Run under plain builds this is a determinism check (the totals must
/// come out exact); run under -fsanitize=thread (ci_analysis.sh's TSan
/// stage) it is the dynamic complement to the static CONC1 lint — the
/// lint proves the annotations are respected lexically, TSan proves the
/// mutex actually covers every access pattern the annotations claim.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/shared_metrics.hpp"

namespace {

using mcps::obs::SharedMetrics;

constexpr int kThreads = 8;
constexpr int kIters = 2000;

TEST(SharedMetricsStress, ConcurrentCountersAreExact) {
    SharedMetrics m;
    std::vector<std::thread> ts;
    ts.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&m] {
            for (int i = 0; i < kIters; ++i) {
                m.add("requests");
                m.add("bytes", 3);
            }
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(m.counter_value("requests"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(m.counter_value("bytes"),
              static_cast<std::uint64_t>(kThreads) * kIters * 3);
}

TEST(SharedMetricsStress, MixedMutatorsAndSnapshotReaders) {
    SharedMetrics m;
    std::vector<std::thread> ts;
    ts.reserve(kThreads + 2);
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&m, t] {
            for (int i = 0; i < kIters; ++i) {
                m.add("ops");
                m.set_gauge("last_thread", static_cast<double>(t));
                m.observe("latency_ms", 0.0, 100.0, 10,
                          static_cast<double>(i % 100));
            }
        });
    }
    // Two readers racing the mutators: snapshots must always be
    // self-consistent copies, never references into live state.
    for (int r = 0; r < 2; ++r) {
        ts.emplace_back([&m] {
            for (int i = 0; i < kIters; ++i) {
                const auto snap = m.snapshot();
                (void)snap.counter_count();
                (void)m.counter_value("ops");
                (void)m.gauge_value("last_thread");
            }
        });
    }
    for (auto& t : ts) t.join();

    EXPECT_EQ(m.counter_value("ops"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    const double last = m.gauge_value("last_thread");
    EXPECT_GE(last, 0.0);
    EXPECT_LT(last, static_cast<double>(kThreads));
    const auto snap = m.snapshot();
    EXPECT_EQ(snap.counter_count(), 1u);
    EXPECT_EQ(snap.gauge_count(), 1u);
    EXPECT_EQ(snap.histogram_count(), 1u);
}

}  // namespace
