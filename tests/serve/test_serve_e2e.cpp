/// \file test_serve_e2e.cpp
/// \brief End-to-end server tests over real loopback sockets: a mixed
/// concurrent workload whose every response must match the pinned
/// per-preset fingerprints, cache byte-identity (hit and recompute),
/// admission-control rejection under a saturated queue, draining
/// rejections, graceful drain, and cache snapshot across a restart.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve.hpp"
#include "tests/support/pinned_presets.hpp"

namespace {

using namespace mcps;
using namespace mcps::serve;

ServerConfig base_config() {
    ServerConfig cfg;
    cfg.endpoint = Endpoint::tcp("127.0.0.1", 0);  // ephemeral port
    cfg.workers = 3;
    cfg.queue_capacity = 64;
    cfg.cache_entries = 64;
    return cfg;
}

std::string pin_hex(std::uint64_t fingerprint) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return buf;
}

/// >= 4 concurrent clients, >= 100 mixed-preset requests, every ok
/// response's fingerprint checked against the pinned table, at least
/// one cache hit and at least one recompute, and byte-identical
/// artifacts per preset whether cached or recomputed.
TEST(ServeE2E, MixedWorkloadMatchesPinnedFingerprints) {
    Server server{base_config()};
    constexpr unsigned kClients = 5;
    constexpr int kPerClient = 25;  // 125 requests total

    std::mutex mu;
    std::map<std::string, std::set<std::string>> artifacts_by_preset;
    std::uint64_t ok = 0, cached = 0, recomputed = 0;
    std::vector<std::string> failures;

    std::vector<std::thread> threads;
    for (unsigned c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            try {
                Client client{server.endpoint()};
                for (int i = 0; i < kPerClient; ++i) {
                    const auto& pin = testsupport::kPins[
                        (c + static_cast<unsigned>(i)) %
                        std::size(testsupport::kPins)];
                    // A few no_cache requests force recomputes whose
                    // bytes must still match the cached ones.
                    const bool no_cache = (i % 11) == 3;
                    const Response r = client.run(
                        testsupport::pinned_spec(pin.preset),
                        QosClass::kInteractive, no_cache);
                    const std::lock_guard<std::mutex> lock{mu};
                    if (!r.ok()) {
                        failures.push_back(pin.preset +
                                           std::string{": status="} +
                                           r.status + " " + r.error_code);
                        continue;
                    }
                    ++ok;
                    r.cached ? ++cached : ++recomputed;
                    const std::string fp =
                        artifacts_fingerprint(r.artifacts);
                    if (fp != pin_hex(pin.fingerprint)) {
                        failures.push_back(pin.preset + std::string{": "} +
                                           fp + " != pinned");
                    }
                    artifacts_by_preset[pin.preset].insert(r.artifacts);
                }
            } catch (const std::exception& e) {
                const std::lock_guard<std::mutex> lock{mu};
                failures.push_back(std::string{"client threw: "} + e.what());
            }
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_TRUE(failures.empty()) << failures.front();
    EXPECT_EQ(ok, kClients * kPerClient);
    EXPECT_GT(cached, 0u) << "no request ever hit the cache";
    EXPECT_GT(recomputed, 0u);
    // Byte identity: cached and recomputed artifacts are one set.
    ASSERT_EQ(artifacts_by_preset.size(), std::size(testsupport::kPins));
    for (const auto& [preset, bytes] : artifacts_by_preset) {
        EXPECT_EQ(bytes.size(), 1u)
            << preset << ": cached/recomputed artifacts bytes diverged";
    }
    EXPECT_GE(server.cache().hits(), 1u);

    // The stats command reports the counters over the wire.
    Client stats_client{server.endpoint()};
    const Response stats = stats_client.stats();
    EXPECT_TRUE(stats.ok());
    EXPECT_NE(stats.stats.find("\"serve/requests\":"), std::string::npos);
    EXPECT_NE(stats.stats.find("\"serve/cache/hits\":"), std::string::npos);

    server.request_drain();
    server.wait();
}

TEST(ServeE2E, CachedAndRecomputedBytesIdentical) {
    Server server{base_config()};
    Client client{server.endpoint()};
    const auto spec = testsupport::pinned_spec("smart-alarm");

    const Response fresh1 = client.run(spec, QosClass::kInteractive, true);
    const Response fresh2 = client.run(spec, QosClass::kInteractive, true);
    const Response fill = client.run(spec);  // miss: fills the cache
    const Response hit = client.run(spec);   // hit: replayed bytes
    ASSERT_TRUE(fresh1.ok());
    ASSERT_TRUE(hit.ok());
    EXPECT_FALSE(fresh1.cached);
    EXPECT_FALSE(fresh2.cached);
    EXPECT_FALSE(fill.cached);
    EXPECT_TRUE(hit.cached);
    EXPECT_EQ(fresh1.artifacts, fresh2.artifacts);
    EXPECT_EQ(fresh1.artifacts, fill.artifacts);
    EXPECT_EQ(fresh1.artifacts, hit.artifacts);
}

/// Saturate a 1-worker, 1-slot server with pipelined batch work: the
/// overflow must come back as structured "overloaded" rejections (never
/// silence, never a crash), and a later clinical arrival must still be
/// served (displacing queued batch work when the timing allows).
TEST(ServeE2E, OverloadRejectsExplicitly) {
    ServerConfig cfg = base_config();
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    cfg.cache_entries = 0;  // every run computes
    Server server{cfg};

    Fd conn = connect_to(server.endpoint());
    // One long run to occupy the worker, then a burst.
    const auto line = [](const std::string& id, const std::string& spec_txt,
                         QosClass qos) {
        Request r;
        r.kind = Request::Kind::kRun;
        r.id = id;
        r.spec = scenario::parse_spec(spec_txt);
        r.qos = qos;
        r.no_cache = true;
        return r.to_line();
    };
    std::vector<std::string> lines;
    lines.push_back(line("slow", "pca seed=1 minutes=40",
                         QosClass::kBatch));
    for (int i = 0; i < 5; ++i) {
        std::string id{"b"};
        id += std::to_string(i);
        std::string spec_txt{"pca seed="};
        spec_txt += std::to_string(10 + i);
        spec_txt += " minutes=40";
        lines.push_back(line(id, spec_txt, QosClass::kBatch));
    }
    lines.push_back(line("clin", "smart-alarm seed=2 minutes=1",
                         QosClass::kClinical));
    for (const auto& l : lines) {
        ASSERT_TRUE(write_line(conn.get(), l));
    }

    LineReader reader{conn.get(), 1 << 20};
    std::map<std::string, Response> responses;
    std::string raw;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        ASSERT_EQ(reader.next(raw), LineReader::Status::kLine);
        Response r = parse_response(raw);
        responses.emplace(r.id, std::move(r));
    }
    ASSERT_EQ(responses.size(), lines.size());

    std::uint64_t ok = 0, rejected = 0;
    for (const auto& [id, r] : responses) {
        if (r.ok()) {
            ++ok;
        } else {
            ASSERT_TRUE(r.rejected()) << id << ": " << r.status;
            EXPECT_EQ(r.error_code, "overloaded") << id;
            ++rejected;
        }
    }
    EXPECT_GE(rejected, 1u) << "queue of 1 never overflowed";
    // Which batch jobs survive depends on worker/reader interleaving
    // (the very first job can itself be the shed victim if the worker
    // has not popped it yet), but the clinical request always makes it:
    // it is either admitted or displaces queued batch work.
    EXPECT_GE(ok, 1u);
    EXPECT_TRUE(responses.at("clin").ok())
        << "clinical request was not prioritized through overload";

    server.request_drain();
    server.wait();
    EXPECT_GE(server.metrics().counter_value("serve/rejected/overloaded"),
              rejected);
}

TEST(ServeE2E, DrainRejectsNewWorkAndShutsDownGracefully) {
    Server server{base_config()};
    Client client{server.endpoint()};
    ASSERT_TRUE(client.run(testsupport::pinned_spec("pca")).ok());

    const Response drained = client.drain();
    EXPECT_TRUE(drained.ok());
    EXPECT_TRUE(drained.draining);

    const Response refused = client.run(testsupport::pinned_spec("pca"));
    EXPECT_TRUE(refused.rejected());
    EXPECT_EQ(refused.error_code, "draining");

    // Pings still answer while draining (liveness during shutdown).
    EXPECT_TRUE(client.ping().pong);

    server.wait();  // must return: graceful drain completes
    EXPECT_GE(server.metrics().counter_value("serve/rejected/draining"), 1u);
    EXPECT_EQ(server.metrics().counter_value("serve/completed"), 1u);
}

TEST(ServeE2E, CacheSnapshotSurvivesRestart) {
    const std::string snap =
        std::string{::testing::TempDir()} + "serve_e2e_cache.snap";
    std::remove(snap.c_str());
    const auto spec = testsupport::pinned_spec("xray-manual");
    std::string first_bytes;
    {
        ServerConfig cfg = base_config();
        cfg.cache_save_path = snap;
        Server server{cfg};
        Client client{server.endpoint()};
        const Response r = client.run(spec);
        ASSERT_TRUE(r.ok());
        EXPECT_FALSE(r.cached);
        first_bytes = r.artifacts;
        server.request_drain();
        server.wait();
    }
    {
        ServerConfig cfg = base_config();
        cfg.cache_load_path = snap;
        Server server{cfg};
        Client client{server.endpoint()};
        const Response r = client.run(spec);
        ASSERT_TRUE(r.ok());
        EXPECT_TRUE(r.cached) << "snapshot did not warm the cache";
        EXPECT_EQ(r.artifacts, first_bytes);
        server.request_drain();
        server.wait();
    }
    std::remove(snap.c_str());
}

/// Socket-level robustness: oversized and malformed lines get
/// structured errors and the connection (and server) keep working.
TEST(ServeE2E, MalformedAndOversizedLinesGetStructuredErrors) {
    ServerConfig cfg = base_config();
    cfg.max_request_bytes = 1024;
    Server server{cfg};
    Client client{server.endpoint()};

    const Response huge =
        client.call_raw("{\"id\":\"big\",\"spec\":" +
                        std::string(4096, ' ') + "}");
    EXPECT_EQ(huge.status, "error");
    EXPECT_EQ(huge.error_code, "oversized");

    const Response garbage = client.call_raw("this is not json");
    EXPECT_EQ(garbage.status, "error");
    EXPECT_EQ(garbage.error_code, "bad-request");

    const Response bad_spec =
        client.call_raw(R"({"id":"x","spec":{"scenario":"nope"}})");
    EXPECT_EQ(bad_spec.status, "error");
    EXPECT_EQ(bad_spec.error_code, "bad-spec");

    // Same connection still serves real work afterwards.
    const Response r = client.run(testsupport::pinned_spec("pca"));
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(client.ping().pong);
}

}  // namespace
