/// \file test_admission.cpp
/// \brief AdmissionQueue unit tests: priority order, FIFO within class,
/// shed-the-lowest policy, rejection, and drain-close semantics.

#include <gtest/gtest.h>

#include <string>

#include "serve/admission.hpp"

namespace {

using namespace mcps::serve;
using Queue = AdmissionQueue<std::string>;
using Outcome = Queue::Outcome;

TEST(Admission, PopsHighestClassFifoWithinClass) {
    Queue q{8};
    EXPECT_EQ(q.offer("b1", QosClass::kBatch).outcome, Outcome::kAdmitted);
    EXPECT_EQ(q.offer("i1", QosClass::kInteractive).outcome,
              Outcome::kAdmitted);
    EXPECT_EQ(q.offer("c1", QosClass::kClinical).outcome,
              Outcome::kAdmitted);
    EXPECT_EQ(q.offer("c2", QosClass::kClinical).outcome,
              Outcome::kAdmitted);
    EXPECT_EQ(q.size(), 4u);

    EXPECT_EQ(q.try_pop()->first, "c1");
    EXPECT_EQ(q.try_pop()->first, "c2");
    EXPECT_EQ(q.try_pop()->first, "i1");
    auto last = q.try_pop();
    ASSERT_TRUE(last.has_value());
    EXPECT_EQ(last->first, "b1");
    EXPECT_EQ(last->second, QosClass::kBatch);
    EXPECT_FALSE(q.try_pop().has_value());
}

TEST(Admission, ShedsNewestOfLowestClassBelowArrival) {
    Queue q{3};
    (void)q.offer("b1", QosClass::kBatch);
    (void)q.offer("b2", QosClass::kBatch);
    (void)q.offer("i1", QosClass::kInteractive);

    // Full. A clinical arrival displaces the newest batch job.
    const auto shed = q.offer("c1", QosClass::kClinical);
    EXPECT_EQ(shed.outcome, Outcome::kShed);
    ASSERT_TRUE(shed.victim.has_value());
    EXPECT_EQ(*shed.victim, "b2");
    EXPECT_EQ(*shed.victim_class, QosClass::kBatch);
    EXPECT_EQ(q.size(), 3u);

    // Another clinical arrival: b1 goes next.
    const auto shed2 = q.offer("c2", QosClass::kClinical);
    EXPECT_EQ(shed2.outcome, Outcome::kShed);
    EXPECT_EQ(*shed2.victim, "b1");

    // Batch exhausted: now interactive is the lowest class below.
    const auto shed3 = q.offer("c3", QosClass::kClinical);
    EXPECT_EQ(shed3.outcome, Outcome::kShed);
    EXPECT_EQ(*shed3.victim, "i1");

    // Only clinical left: a clinical arrival cannot displace its own
    // class and is rejected.
    EXPECT_EQ(q.offer("c4", QosClass::kClinical).outcome,
              Outcome::kRejected);

    EXPECT_EQ(q.try_pop()->first, "c1");
    EXPECT_EQ(q.try_pop()->first, "c2");
    EXPECT_EQ(q.try_pop()->first, "c3");
}

TEST(Admission, EqualOrLowerClassNeverSheds) {
    Queue q{2};
    (void)q.offer("i1", QosClass::kInteractive);
    (void)q.offer("i2", QosClass::kInteractive);
    EXPECT_EQ(q.offer("i3", QosClass::kInteractive).outcome,
              Outcome::kRejected);
    EXPECT_EQ(q.offer("b1", QosClass::kBatch).outcome, Outcome::kRejected);
    EXPECT_EQ(q.size(), 2u);
}

TEST(Admission, CloseRefusesNewButDrainsExisting) {
    Queue q{4};
    (void)q.offer("i1", QosClass::kInteractive);
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_EQ(q.offer("i2", QosClass::kInteractive).outcome,
              Outcome::kClosed);
    EXPECT_EQ(q.offer("c1", QosClass::kClinical).outcome, Outcome::kClosed);
    auto drained = q.try_pop();
    ASSERT_TRUE(drained.has_value());
    EXPECT_EQ(drained->first, "i1");
    EXPECT_FALSE(q.try_pop().has_value());
}

TEST(Admission, DepthTracksPerClass) {
    Queue q{8};
    (void)q.offer("c1", QosClass::kClinical);
    (void)q.offer("b1", QosClass::kBatch);
    (void)q.offer("b2", QosClass::kBatch);
    EXPECT_EQ(q.depth(QosClass::kClinical), 1u);
    EXPECT_EQ(q.depth(QosClass::kInteractive), 0u);
    EXPECT_EQ(q.depth(QosClass::kBatch), 2u);
    (void)q.try_pop();
    EXPECT_EQ(q.depth(QosClass::kClinical), 0u);
    EXPECT_EQ(q.size(), 2u);
}

}  // namespace
