/// \file test_cache.cpp
/// \brief ResultCache unit tests: LRU semantics, byte identity,
/// metrics mirroring, and snapshot save/load robustness.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/shared_metrics.hpp"
#include "serve/cache.hpp"

namespace {

using namespace mcps;
using serve::ResultCache;

std::string tmp_path(const char* name) {
    return std::string{::testing::TempDir()} + name;
}

TEST(ResultCache, MissThenHitReturnsIdenticalBytes) {
    ResultCache cache{4};
    EXPECT_FALSE(cache.lookup("k1").has_value());
    cache.insert("k1", R"({"fingerprint":"0x1"})");
    const auto hit = cache.lookup("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, R"({"fingerprint":"0x1"})");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
    ResultCache cache{2};
    cache.insert("a", "A");
    cache.insert("b", "B");
    ASSERT_TRUE(cache.lookup("a").has_value());  // refresh a; b is LRU
    cache.insert("c", "C");                      // evicts b
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_TRUE(cache.lookup("a").has_value());
    EXPECT_TRUE(cache.lookup("c").has_value());
    EXPECT_FALSE(cache.lookup("b").has_value());
}

TEST(ResultCache, ReinsertRefreshesValueAndRecency) {
    ResultCache cache{2};
    cache.insert("a", "A1");
    cache.insert("b", "B");
    cache.insert("a", "A2");  // refresh: a newest, b oldest
    cache.insert("c", "C");   // evicts b
    EXPECT_EQ(*cache.lookup("a"), "A2");
    EXPECT_FALSE(cache.lookup("b").has_value());
}

TEST(ResultCache, ZeroCapacityDisables) {
    ResultCache cache{0};
    cache.insert("a", "A");
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup("a").has_value());
}

TEST(ResultCache, MirrorsCountersIntoSharedMetrics) {
    obs::SharedMetrics metrics;
    ResultCache cache{1, &metrics};
    (void)cache.lookup("a");
    cache.insert("a", "A");
    (void)cache.lookup("a");
    cache.insert("b", "B");  // evicts a
    EXPECT_EQ(metrics.counter_value("serve/cache/misses"), 1u);
    EXPECT_EQ(metrics.counter_value("serve/cache/hits"), 1u);
    EXPECT_EQ(metrics.counter_value("serve/cache/evictions"), 1u);
    EXPECT_EQ(metrics.gauge_value("serve/cache/entries"), 1.0);
}

TEST(ResultCache, SnapshotRoundTripPreservesBytesAndRecency) {
    const std::string path = tmp_path("cache_roundtrip.snap");
    ResultCache cache{3};
    cache.insert("old", "O");
    cache.insert("mid", "M");
    cache.insert("new", "N");
    ASSERT_TRUE(cache.save(path));

    ResultCache restored{2};  // smaller: only the 2 most recent survive
    EXPECT_EQ(restored.load(path), 3u);
    EXPECT_EQ(restored.size(), 2u);
    EXPECT_EQ(*restored.lookup("new"), "N");
    EXPECT_EQ(*restored.lookup("mid"), "M");
    EXPECT_FALSE(restored.lookup("old").has_value());
    std::remove(path.c_str());
}

TEST(ResultCache, LoadSkipsMalformedLinesAndBadHeaders) {
    const std::string path = tmp_path("cache_malformed.snap");
    {
        std::ofstream out{path};
        out << "mcps-serve-cache v1\n"
            << "good\t{\"x\":1}\n"
            << "no-tab-in-this-line\n"
            << "\tempty-key\n"
            << "trailing-tab\t\n"
            << "also-good\t{\"y\":2}\n";
    }
    ResultCache cache{8};
    EXPECT_EQ(cache.load(path), 2u);
    EXPECT_TRUE(cache.lookup("good").has_value());
    EXPECT_TRUE(cache.lookup("also-good").has_value());

    {
        std::ofstream out{path};
        out << "some other file\ngood\t{\"x\":1}\n";
    }
    ResultCache fresh{8};
    EXPECT_EQ(fresh.load(path), 0u);  // wrong header: refuse entirely
    EXPECT_EQ(fresh.load(tmp_path("does_not_exist.snap")), 0u);
    std::remove(path.c_str());
}

}  // namespace
