/// \file test_protocol.cpp
/// \brief Wire-protocol unit tests: strict parsing, round-trips, and a
/// fuzz-style mutation sweep asserting the parser is total (every
/// malformed line maps to a ProtocolError, never a crash or hang).

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "scenario/scenario.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace mcps;
using namespace mcps::serve;

Request parse_ok(const std::string& line) {
    return parse_request(line);
}

std::string parse_error_code(const std::string& line) {
    try {
        (void)parse_request(line);
    } catch (const ProtocolError& e) {
        return e.code;
    }
    return "";  // parsed fine
}

TEST(Protocol, ParsesMinimalRunRequest) {
    const Request r =
        parse_ok(R"({"id":"r1","spec":{"scenario":"pca"}})");
    EXPECT_EQ(r.kind, Request::Kind::kRun);
    EXPECT_EQ(r.id, "r1");
    EXPECT_EQ(r.spec.name, "pca");
    EXPECT_EQ(r.qos, QosClass::kInteractive);
    EXPECT_FALSE(r.no_cache);
}

TEST(Protocol, ParsesFullRunRequest) {
    const Request r = parse_ok(
        R"({"id":"a.b:c-d_9","spec":{"scenario":"xray","seed":7,)"
        R"("minutes":3,"overrides":{"procedures":"5"}},)"
        R"("class":"clinical","no_cache":true})");
    EXPECT_EQ(r.id, "a.b:c-d_9");
    EXPECT_EQ(r.spec.seed, 7u);
    EXPECT_EQ(r.spec.minutes, 3u);
    ASSERT_EQ(r.spec.overrides.size(), 1u);
    EXPECT_EQ(r.qos, QosClass::kClinical);
    EXPECT_TRUE(r.no_cache);
}

TEST(Protocol, ParsesCommands) {
    EXPECT_EQ(parse_ok(R"({"id":"c1","cmd":"ping"})").kind,
              Request::Kind::kPing);
    EXPECT_EQ(parse_ok(R"({"id":"c2","cmd":"stats"})").kind,
              Request::Kind::kStats);
    EXPECT_EQ(parse_ok(R"({"id":"c3","cmd":"drain"})").kind,
              Request::Kind::kDrain);
}

TEST(Protocol, RequestRoundTripsThroughToLine) {
    Request r;
    r.kind = Request::Kind::kRun;
    r.id = "rt1";
    r.spec = scenario::parse_spec("pca seed=9 minutes=2 demand=proxy");
    r.qos = QosClass::kBatch;
    r.no_cache = true;
    const Request back = parse_ok(r.to_line());
    EXPECT_EQ(back.id, r.id);
    EXPECT_EQ(back.spec, r.spec);
    EXPECT_EQ(back.qos, r.qos);
    EXPECT_EQ(back.no_cache, r.no_cache);
}

TEST(Protocol, RejectsStructuralGarbage) {
    EXPECT_EQ(parse_error_code(""), "bad-request");
    EXPECT_EQ(parse_error_code("not json"), "bad-request");
    EXPECT_EQ(parse_error_code("{"), "bad-request");
    EXPECT_EQ(parse_error_code(R"({"id":"x")"), "bad-request");
    EXPECT_EQ(parse_error_code(R"({"id":"x"} trailing)"), "bad-request");
    EXPECT_EQ(parse_error_code(R"([1,2,3])"), "bad-request");
}

TEST(Protocol, RejectsUnknownAndDuplicateFields) {
    EXPECT_EQ(parse_error_code(
                  R"({"id":"x","cmd":"ping","surprise":1})"),
              "bad-request");
    EXPECT_EQ(parse_error_code(
                  R"({"id":"x","id":"y","cmd":"ping"})"),
              "bad-request");
}

TEST(Protocol, RejectsBadIds) {
    EXPECT_EQ(parse_error_code(R"({"id":"sp ace","cmd":"ping"})"),
              "bad-request");
    EXPECT_EQ(parse_error_code(R"({"id":"q\"uote","cmd":"ping"})"),
              "bad-request");
    const std::string long_id(65, 'a');
    EXPECT_EQ(parse_error_code(R"({"id":")" + long_id +
                               R"(","cmd":"ping"})"),
              "bad-request");
}

TEST(Protocol, RequiresExactlyOneOfSpecOrCmd) {
    EXPECT_EQ(parse_error_code(R"({"id":"x"})"), "bad-request");
    EXPECT_EQ(parse_error_code(
                  R"({"id":"x","cmd":"ping","spec":{"scenario":"pca"}})"),
              "bad-request");
}

TEST(Protocol, BadSpecIsItsOwnErrorCode) {
    EXPECT_EQ(parse_error_code(R"({"id":"x","spec":{"nope":1}})"),
              "bad-spec");
    EXPECT_EQ(parse_error_code(R"({"id":"x","spec":{"scenario":""}})"),
              "bad-spec");
    // Structurally broken spec never reaches the spec parser.
    EXPECT_EQ(parse_error_code(R"({"id":"x","spec":[1]})"), "bad-request");
}

TEST(Protocol, RejectsNonUtf8AndDeepNesting) {
    std::string bad = R"({"id":"x","cmd":"ping"})";
    bad[10] = static_cast<char>(0xFF);
    EXPECT_EQ(parse_error_code(bad), "bad-request");
    // Overlong encoding of '/' (0xC0 0xAF) is not valid UTF-8.
    EXPECT_EQ(parse_error_code("{\"id\":\"\xC0\xAF\",\"cmd\":\"ping\"}"),
              "bad-request");
    std::string deep = R"({"id":"x","spec":)";
    for (int i = 0; i < 64; ++i) deep += R"({"a":)";
    EXPECT_EQ(parse_error_code(deep), "bad-request");
}

TEST(Protocol, Utf8Validator) {
    EXPECT_TRUE(utf8_valid("plain ascii"));
    EXPECT_TRUE(utf8_valid("caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x92\x89"));
    EXPECT_FALSE(utf8_valid("\x80"));            // bare continuation
    EXPECT_FALSE(utf8_valid("\xC3"));            // truncated sequence
    EXPECT_FALSE(utf8_valid("\xED\xA0\x80"));    // UTF-16 surrogate
    EXPECT_FALSE(utf8_valid("\xF4\x90\x80\x80"));  // > U+10FFFF
}

TEST(Protocol, ResponsesRoundTrip) {
    const Response ok = parse_response(
        ok_run_response("r1", true, 12, 345, R"({"fingerprint":"0xabc"})"));
    EXPECT_TRUE(ok.ok());
    EXPECT_TRUE(ok.cached);
    EXPECT_EQ(ok.queue_us, 12u);
    EXPECT_EQ(ok.run_us, 345u);
    EXPECT_EQ(artifacts_fingerprint(ok.artifacts), "0xabc");

    const Response pong = parse_response(pong_response("c1"));
    EXPECT_TRUE(pong.pong);

    const Response rej = parse_response(error_response(
        "r2", "rejected", "overloaded", "queue full \"now\"\n"));
    EXPECT_TRUE(rej.rejected());
    EXPECT_EQ(rej.error_code, "overloaded");
    EXPECT_EQ(rej.error_message, "queue full \"now\"\n");
}

TEST(Protocol, ArtifactsLineMatchesRegistryRun) {
    const auto spec = scenario::registry().default_spec("pca");
    auto pinned = spec;
    pinned.minutes = 1;
    const auto a = scenario::registry().run(pinned);
    const std::string line = artifacts_json_line(a);
    EXPECT_EQ(artifacts_fingerprint(line), a.fingerprint_hex());
    // Single-line and parseable as a raw response payload.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const Response r = parse_response(ok_run_response("x", false, 0, 0, line));
    EXPECT_EQ(r.artifacts, line);
}

/// Fuzz-style totality sweep: random byte mutations of valid request
/// lines (plus pure garbage) must parse or throw ProtocolError — any
/// other exception or a crash fails the test run itself.
TEST(Protocol, MutationSweepNeverCrashes) {
    const std::string seeds[] = {
        R"({"id":"r1","spec":{"scenario":"pca","seed":42,"minutes":1,)"
        R"("overrides":{"demand":"proxy"}},"class":"batch"})",
        R"({"id":"c1","cmd":"ping"})",
        R"({"id":"r2","spec":{"scenario":"xray"},"no_cache":true})",
    };
    std::mt19937_64 rng{20260808};
    std::uint64_t parsed = 0, rejected = 0;
    for (int iter = 0; iter < 4000; ++iter) {
        std::string line = seeds[static_cast<std::size_t>(iter) %
                                 std::size(seeds)];
        const int mutations = 1 + static_cast<int>(rng() % 4);
        for (int m = 0; m < mutations; ++m) {
            const std::size_t at = rng() % line.size();
            switch (rng() % 4) {
                case 0:  // flip to an arbitrary byte (incl. non-UTF8)
                    line[at] = static_cast<char>(rng() & 0xFF);
                    break;
                case 1:  // delete
                    line.erase(at, 1);
                    break;
                case 2:  // duplicate a chunk
                    line.insert(at, line.substr(at, rng() % 8 + 1));
                    break;
                default:  // truncate
                    line.resize(at);
                    break;
            }
            if (line.empty()) line.push_back('x');
        }
        try {
            (void)parse_request(line);
            ++parsed;
        } catch (const ProtocolError&) {
            ++rejected;
        }
        // Anything else propagates and fails the test.
    }
    EXPECT_GT(rejected, 0u);
    // A few mutations (e.g. digit swaps inside numbers) stay valid.
    EXPECT_GT(parsed + rejected, 0u);

    // Pure garbage bytes, any length.
    for (int iter = 0; iter < 2000; ++iter) {
        std::string line(rng() % 200, '\0');
        for (char& c : line) c = static_cast<char>(rng() & 0xFF);
        try {
            (void)parse_request(line);
        } catch (const ProtocolError&) {
        }
    }
}

}  // namespace
