/// \file test_ward.cpp
/// \brief Ward engine determinism: the parallel campaign must be
/// bit-identical to the serial one — fingerprint AND every merged
/// statistic — for any job count, across scenario mixes and with
/// adversarial fault plans enabled.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "ward/ward.hpp"

namespace {

using namespace mcps;
using namespace mcps::ward;

// ---- thread pool -----------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
    ThreadPool pool{4};
    EXPECT_EQ(pool.worker_count(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&ran] { ++ran; });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
    ThreadPool pool{2};
    pool.wait_idle();  // must not hang
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelShards, CoversEveryShardExactlyOnce) {
    for (const unsigned jobs : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(17);
        parallel_shards(hits.size(), jobs,
                        [&hits](std::size_t s) { ++hits[s]; });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelShards, PropagatesFirstException) {
    EXPECT_THROW(
        parallel_shards(8, 4,
                        [](std::size_t s) {
                            if (s == 5) throw std::runtime_error{"boom"};
                        }),
        std::runtime_error);
}

TEST(ShardRange, PartitionsContiguouslyAndCompletely) {
    for (const std::size_t items : {0u, 1u, 7u, 64u, 65u}) {
        for (const std::size_t shards : {1u, 3u, 8u, 64u}) {
            std::size_t expect_first = 0;
            for (std::size_t s = 0; s < shards; ++s) {
                const auto r = shard_range(items, shards, s);
                EXPECT_EQ(r.first, expect_first);
                EXPECT_LE(r.first, r.last);
                expect_first = r.last;
            }
            EXPECT_EQ(expect_first, items);
        }
    }
}

// ---- config / mix ----------------------------------------------------

TEST(ScenarioMix, ParseRoundTrip) {
    const auto mix = parse_mix("pca=2,xray=1,ward=1");
    const auto n = mix.normalized();
    EXPECT_DOUBLE_EQ(n.pca, 0.5);
    EXPECT_DOUBLE_EQ(n.xray, 0.25);
    EXPECT_DOUBLE_EQ(n.alarm_ward, 0.25);
    EXPECT_EQ(to_string(n), "pca=0.500,xray=0.250,ward=0.250");
    // alarm_ward is an accepted alias for ward.
    EXPECT_EQ(parse_mix("alarm_ward=1"), parse_mix("ward=1"));
}

TEST(ScenarioMix, RejectsBadSpecs) {
    EXPECT_THROW((void)parse_mix("pca=0.5,bogus=1"), WardConfigError);
    EXPECT_THROW((void)parse_mix("pca=abc"), WardConfigError);
    const ScenarioMix all_zero{0, 0, 0};
    const ScenarioMix negative{-1, 2, 0};
    EXPECT_THROW((void)all_zero.normalized(), WardConfigError);
    EXPECT_THROW((void)negative.normalized(), WardConfigError);
}

TEST(WardConfig, ValidateRejectsDegenerateCampaigns) {
    WardConfig cfg;
    cfg.patients = 0;
    EXPECT_THROW(cfg.validate(), WardConfigError);
    cfg.patients = 4;
    cfg.shards = 0;
    EXPECT_THROW(cfg.validate(), WardConfigError);
    cfg.shards = 4;
    cfg.fault_intensity = -0.5;
    EXPECT_THROW(cfg.validate(), WardConfigError);
}

TEST(WardScenarioFactory, KindChoiceIsDeterministicAndMixWeighted) {
    WardConfig cfg;
    cfg.seed = 777;
    cfg.patients = 200;
    const WardScenarioFactory a{cfg}, b{cfg};
    std::size_t pca = 0, xray = 0, alarm = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
        const auto k = a.kind_of(i);
        EXPECT_EQ(k, b.kind_of(i));  // pure function of (seed, index)
        switch (k) {
            case WardScenarioKind::kPcaClosedLoop: ++pca; break;
            case WardScenarioKind::kXraySync: ++xray; break;
            case WardScenarioKind::kAlarmWard: ++alarm; break;
            case WardScenarioKind::kHospital:
                FAIL() << "default mix has no hospital weight";
                break;
        }
    }
    // Default mix is 70/15/15; with 200 draws every kind must appear and
    // PCA must dominate.
    EXPECT_GT(pca, xray);
    EXPECT_GT(pca, alarm);
    EXPECT_GT(xray, 0u);
    EXPECT_GT(alarm, 0u);
}

// ---- engine determinism ----------------------------------------------

/// Bitwise equality for merged doubles: the determinism contract is
/// bit-identical reduction, not approximate agreement.
bool bits_equal(double a, double b) {
    std::uint64_t ua = 0, ub = 0;
    std::memcpy(&ua, &a, sizeof a);
    std::memcpy(&ub, &b, sizeof b);
    return ua == ub;
}

void expect_reports_identical(const WardReport& s, const WardReport& p) {
    EXPECT_EQ(s.fingerprint, p.fingerprint);
    EXPECT_EQ(s.pca_runs, p.pca_runs);
    EXPECT_EQ(s.xray_runs, p.xray_runs);
    EXPECT_EQ(s.alarm_ward_runs, p.alarm_ward_runs);
    EXPECT_EQ(s.hospital_runs, p.hospital_runs);
    EXPECT_EQ(s.demands_denied, p.demands_denied);
    EXPECT_EQ(s.interlock_stops, p.interlock_stops);
    EXPECT_EQ(s.monitor_alarms, p.monitor_alarms);
    EXPECT_EQ(s.smart_alarms, p.smart_alarms);
    EXPECT_EQ(s.smart_critical, p.smart_critical);
    EXPECT_EQ(s.violations, p.violations);
    EXPECT_EQ(s.events_dispatched, p.events_dispatched);

    EXPECT_EQ(s.drug_mg.count(), p.drug_mg.count());
    EXPECT_TRUE(bits_equal(s.drug_mg.mean(), p.drug_mg.mean()));
    EXPECT_TRUE(bits_equal(s.drug_mg.variance(), p.drug_mg.variance()));
    EXPECT_TRUE(bits_equal(s.min_spo2.mean(), p.min_spo2.mean()));
    EXPECT_TRUE(bits_equal(s.mean_pain.mean(), p.mean_pain.mean()));
    EXPECT_TRUE(bits_equal(s.detection_latency_s.mean(),
                           p.detection_latency_s.mean()));

    EXPECT_EQ(s.dose_hist.total(), p.dose_hist.total());
    for (std::size_t i = 0; i < s.dose_hist.bins(); ++i) {
        EXPECT_EQ(s.dose_hist.bin_count(i), p.dose_hist.bin_count(i));
    }
    EXPECT_EQ(s.latency_hist.total(), p.latency_hist.total());
}

TEST(WardEngine, ParallelRunIsBitIdenticalAcrossMixes) {
    // Three mixes: PCA-heavy, x-ray-heavy, alarm-heavy.
    const ScenarioMix mixes[] = {
        {0.8, 0.1, 0.1}, {0.2, 0.6, 0.2}, {0.2, 0.2, 0.6}};
    for (const auto& mix : mixes) {
        WardConfig cfg;
        cfg.seed = 4242;
        cfg.patients = 10;
        cfg.shards = 5;
        cfg.mix = mix;

        cfg.jobs = 1;
        const auto serial = WardEngine{cfg}.run();
        cfg.jobs = 8;
        const auto parallel = WardEngine{cfg}.run();
        expect_reports_identical(serial, parallel);
    }
}

TEST(WardEngine, HospitalWorkloadRunsInMixAndStaysBitIdentical) {
    // The PR-9 wiring check: campaigns can embed smoke-sized hospital
    // population runs next to the classic workloads, the kind sequence
    // draws them, and serial vs parallel reports stay bit-identical.
    WardConfig cfg;
    cfg.seed = 9001;
    cfg.patients = 12;
    cfg.shards = 6;
    cfg.mix = {0.25, 0.25, 0.25, 0.25};

    cfg.jobs = 1;
    const auto serial = WardEngine{cfg}.run();
    cfg.jobs = 8;
    const auto parallel = WardEngine{cfg}.run();
    expect_reports_identical(serial, parallel);

    EXPECT_GT(serial.hospital_runs, 0u);
    EXPECT_EQ(serial.pca_runs + serial.xray_runs + serial.alarm_ward_runs +
                  serial.hospital_runs,
              serial.patients);
    // Hospital slots run inside the claimed-safe envelope (local
    // interlock), so they add no invariant violations.
    EXPECT_EQ(serial.violations, 0u);
    EXPECT_EQ(to_string(cfg.mix),
              "pca=0.250,xray=0.250,ward=0.250,hospital=0.250");
}

TEST(WardConfig, HospitalMixParsesAndRendersOnlyWhenPresent) {
    const auto mix = parse_mix("pca=1,hospital=1");
    EXPECT_DOUBLE_EQ(mix.pca, 0.5);
    EXPECT_DOUBLE_EQ(mix.hospital, 0.5);
    EXPECT_EQ(to_string(mix), "pca=0.500,xray=0.000,ward=0.000,hospital=0.500");
    // Without a hospital weight the classic three-key rendering is
    // byte-stable (pinned report text depends on it).
    EXPECT_EQ(to_string(parse_mix("pca=2,xray=1,ward=1")),
              "pca=0.500,xray=0.250,ward=0.250");
}

TEST(WardEngine, ParallelRunIsBitIdenticalWithFaultPlans) {
    WardConfig cfg;
    cfg.seed = 31337;
    cfg.patients = 12;
    cfg.shards = 6;
    cfg.fault_intensity = 1.0;  // adversarial fault plans enabled

    cfg.jobs = 1;
    const auto serial = WardEngine{cfg}.run();
    cfg.jobs = 8;
    const auto parallel = WardEngine{cfg}.run();
    expect_reports_identical(serial, parallel);
}

TEST(WardEngine, ObservationIsBitIdenticalAcrossJobCounts) {
    WardConfig cfg;
    cfg.seed = 777;
    cfg.patients = 12;
    cfg.shards = 6;
    cfg.mix = {0.5, 0.25, 0.25};
    cfg.fault_intensity = 1.0;
    const auto checker = testkit::InvariantChecker::with_defaults();

    std::vector<WardObservation> observations;
    for (const unsigned jobs : {1u, 4u, 8u}) {
        cfg.jobs = jobs;
        auto& o = observations.emplace_back();
        (void)WardEngine{cfg}.run(checker, &o);
    }

    const auto& ref = observations.front();
    ASSERT_FALSE(ref.events.empty());
    EXPECT_GT(ref.metrics.counter_count(), 0u);
    for (std::size_t i = 1; i < observations.size(); ++i) {
        const auto& o = observations[i];
        // Full structural equality, not just fingerprints.
        ASSERT_EQ(o.events.size(), ref.events.size());
        EXPECT_TRUE(o.events.events() == ref.events.events());
        EXPECT_EQ(o.events.fingerprint(), ref.events.fingerprint());
        EXPECT_EQ(o.metrics.fingerprint(), ref.metrics.fingerprint());
    }

    // The merged metrics agree with the ward totals.
    cfg.jobs = 1;
    const auto report = WardEngine{cfg}.run(checker, nullptr);
    const auto* scenarios = ref.metrics.find_counter("ward.scenarios");
    ASSERT_NE(scenarios, nullptr);
    EXPECT_EQ(scenarios->value(), cfg.patients);
    const auto* stops = ref.metrics.find_counter("ward.interlock_stops");
    ASSERT_NE(stops, nullptr);
    EXPECT_EQ(stops->value(), report.interlock_stops);
}

TEST(WardEngine, ObservationCollectsShardAndScenarioEvents) {
    WardConfig cfg;
    cfg.seed = 99;
    cfg.patients = 4;
    cfg.shards = 2;
    cfg.mix = {1.0, 0.0, 0.0};  // all PCA
    WardObservation o;
    (void)WardEngine{cfg}.run(testkit::InvariantChecker::with_defaults(), &o);

    EXPECT_EQ(o.events.count(mcps::obs::EventKind::kShardStart), 2u);
    EXPECT_EQ(o.events.count(mcps::obs::EventKind::kShardEnd), 2u);
    EXPECT_EQ(o.events.count(mcps::obs::EventKind::kScenarioStart), 4u);
    EXPECT_EQ(o.events.count(mcps::obs::EventKind::kScenarioEnd), 4u);
    // Bus traffic flows through the shared log.
    EXPECT_GT(o.events.count(mcps::obs::EventKind::kBusPublish), 0u);
}

TEST(WardEngine, FingerprintDependsOnSeedAndMix) {
    WardConfig cfg;
    cfg.patients = 6;
    cfg.shards = 3;
    cfg.seed = 1;
    const auto fp1 = WardEngine{cfg}.run().fingerprint;
    cfg.seed = 2;
    const auto fp2 = WardEngine{cfg}.run().fingerprint;
    EXPECT_NE(fp1, fp2);
    cfg.seed = 1;
    cfg.mix = {0.0, 1.0, 0.0};  // all x-ray
    const auto fp3 = WardEngine{cfg}.run().fingerprint;
    EXPECT_NE(fp1, fp3);
}

TEST(WardEngine, ShardCountFixesTheReduction) {
    // Changing the job count must not change the report; the shard count
    // is what pins the reduction tree, and the fingerprint (integer
    // chain in index order) is invariant to it too.
    WardConfig cfg;
    cfg.seed = 99;
    cfg.patients = 9;
    cfg.shards = 9;
    cfg.jobs = 1;
    const auto nine = WardEngine{cfg}.run();
    cfg.shards = 2;
    cfg.jobs = 4;
    const auto two = WardEngine{cfg}.run();
    EXPECT_EQ(nine.fingerprint, two.fingerprint);
    EXPECT_EQ(nine.events_dispatched, two.events_dispatched);
}

TEST(WardEngine, ReportSerializesBothWays) {
    WardConfig cfg;
    cfg.patients = 4;
    cfg.shards = 2;
    const auto rep = WardEngine{cfg}.run();
    std::ostringstream text, jsn;
    rep.print(text);
    rep.write_json(jsn);
    EXPECT_NE(text.str().find("fingerprint"), std::string::npos);
    EXPECT_NE(jsn.str().find("\"fingerprint\""), std::string::npos);
    EXPECT_NE(jsn.str().find("\"scenarios_per_sec\""), std::string::npos);
}

// ---- parallel fuzz driver --------------------------------------------

TEST(WardFuzzDriver, MatchesSequentialTestkitOutcome) {
    testkit::FuzzOptions opts;
    opts.seed = 2026;
    opts.scenarios = 12;
    opts.fault_intensity = 1.0;
    opts.shrink = false;  // keep the test fast; capture is still canonical
    std::vector<std::string> serial_log, parallel_log;
    opts.log = [&serial_log](const std::string& l) {
        serial_log.push_back(l);
    };
    const auto serial = testkit::run_fuzz(opts);
    opts.log = [&parallel_log](const std::string& l) {
        parallel_log.push_back(l);
    };
    const auto parallel = ward::run_fuzz(opts, /*jobs=*/4);

    EXPECT_EQ(serial.scenarios_run, parallel.scenarios_run);
    EXPECT_EQ(serial.pca_runs, parallel.pca_runs);
    EXPECT_EQ(serial.xray_runs, parallel.xray_runs);
    ASSERT_EQ(serial.failures.size(), parallel.failures.size());
    for (std::size_t i = 0; i < serial.failures.size(); ++i) {
        EXPECT_EQ(serial.failures[i].repro.fingerprint,
                  parallel.failures[i].repro.fingerprint);
        EXPECT_EQ(serial.failures[i].violations.size(),
                  parallel.failures[i].violations.size());
    }
    EXPECT_EQ(serial_log, parallel_log);  // byte-identical log stream
}

}  // namespace
