/// \file pinned_presets.hpp
/// \brief The pinned per-preset fingerprints/digests, shared by suites.
///
/// Captured at minutes=1 with default specs; covers every registry
/// preset. Both the scenario suite (direct registry runs) and the serve
/// suite (the same runs through the full socket/server/cache path)
/// assert against this single table, so the byte-identity contract is
/// enforced end-to-end: if the server path ever perturbs a run, its
/// fingerprints diverge from the very pins the direct path satisfies.
///
/// Intentional model changes re-pin via the scenario suite's
/// PinnedOutcomes.DISABLED_PrintCurrentPins helper.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "scenario/scenario.hpp"

namespace mcps::testsupport {

inline std::uint64_t pin_mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

/// Order-sensitive digest of the outcome map: metric names byte-by-byte
/// plus the exact IEEE-754 bit pattern of each value (so even a 1-ulp
/// drift in any metric changes the digest).
inline std::uint64_t outcome_digest(const scenario::RunArtifacts& a) {
    std::uint64_t h = 0x6d637073ULL;  // 'mcps'
    for (const auto& [name, value] : a.outcome) {
        for (const char c : name) {
            h = pin_mix(h, static_cast<unsigned char>(c));
        }
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof value);
        std::memcpy(&bits, &value, sizeof bits);
        h = pin_mix(h, bits);
    }
    return h;
}

struct Pin {
    const char* preset;
    std::uint64_t fingerprint;
    std::uint64_t digest;
};

inline constexpr Pin kPins[] = {
    {"pca", 0x2d602a2bf10b25c0ULL, 0x86d5d17cd90541abULL},
    {"pca-open", 0x93b457f6f6524cbfULL, 0x24d2b8aee55928e8ULL},
    {"smart-alarm", 0xff9f292c6d94cc68ULL, 0x7ade0f1c9a8e84b1ULL},
    {"xray", 0x3e75b22c6ecccd12ULL, 0x33debf63349bf1c1ULL},
    {"xray-manual", 0xf3962074d1bfb982ULL, 0x68a7c3d7110ec94dULL},
    {"hospital", 0xd00c39128976a2f1ULL, 0xfd897a696c4e1dbdULL},
    {"hospital-small", 0xac0c13fcc262e70bULL, 0x61072890084905faULL},
};

/// The pinned configuration: the preset's default spec at minutes=1.
inline scenario::ScenarioSpec pinned_spec(const std::string& preset) {
    scenario::ScenarioSpec spec = scenario::registry().default_spec(preset);
    spec.minutes = 1;
    return spec;
}

/// Pin lookup; nullptr when the preset is not pinned.
inline const Pin* find_pin(const std::string& preset) {
    for (const Pin& pin : kPins) {
        if (preset == pin.preset) return &pin;
    }
    return nullptr;
}

}  // namespace mcps::testsupport
