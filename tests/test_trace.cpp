/// \file test_trace.cpp
/// \brief Unit tests for the trace recorder and signal queries.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "sim/trace.hpp"

namespace {

using namespace mcps::sim;
using namespace mcps::sim::literals;

SimTime at(SimDuration d) { return SimTime::origin() + d; }

TEST(Signal, RecordsAndQueriesLast) {
    Signal s{"x"};
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.last().has_value());
    s.record(at(1_s), 10.0);
    s.record(at(2_s), 20.0);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(*s.last(), 20.0);
}

TEST(Signal, RejectsNanValues) {
    Signal s{"x"};
    EXPECT_THROW(s.record(at(1_s), std::nan("")),
                 std::invalid_argument);
    EXPECT_TRUE(s.empty());
    // Infinities are representable measurements (divide-by-zero sensor
    // glitches) and pass through; only NaN is rejected.
    s.record(at(1_s), std::numeric_limits<double>::infinity());
    EXPECT_EQ(s.size(), 1u);
}

TEST(TraceRecorder, RejectsNanValues) {
    TraceRecorder tr;
    tr.record("x", at(1_s), 1.0);
    EXPECT_THROW(tr.record("x", at(2_s), std::nan("")),
                 std::invalid_argument);
    EXPECT_EQ(tr.find("x")->size(), 1u);
}

TEST(Signal, RejectsTimeGoingBackwards) {
    Signal s{"x"};
    s.record(at(2_s), 1.0);
    EXPECT_THROW(s.record(at(1_s), 2.0), std::invalid_argument);
    // Equal timestamps are allowed (multiple writers in one event).
    EXPECT_NO_THROW(s.record(at(2_s), 3.0));
}

TEST(Signal, ValueAtZeroOrderHold) {
    Signal s{"x"};
    s.record(at(10_s), 1.0);
    s.record(at(20_s), 2.0);
    EXPECT_FALSE(s.value_at(at(9_s)).has_value());
    EXPECT_DOUBLE_EQ(*s.value_at(at(10_s)), 1.0);
    EXPECT_DOUBLE_EQ(*s.value_at(at(15_s)), 1.0);
    EXPECT_DOUBLE_EQ(*s.value_at(at(20_s)), 2.0);
    EXPECT_DOUBLE_EQ(*s.value_at(at(1000_s)), 2.0);
}

TEST(Signal, TimeBelowThreshold) {
    Signal s{"spo2"};
    s.record(at(0_s), 95.0);
    s.record(at(10_s), 85.0);   // below 90 from 10s
    s.record(at(30_s), 92.0);   // back above at 30s
    const auto d = s.time_below(at(0_s), at(60_s), 90.0);
    EXPECT_EQ(d, 20_s);
}

TEST(Signal, TimeBelowHoldsLastValueToEnd) {
    Signal s{"spo2"};
    s.record(at(0_s), 80.0);
    EXPECT_EQ(s.time_below(at(0_s), at(50_s), 90.0), 50_s);
}

TEST(Signal, TimeAboveAndWindowClipping) {
    Signal s{"hr"};
    s.record(at(0_s), 100.0);
    s.record(at(10_s), 50.0);
    // Window [5, 8]: signal is 100 throughout.
    EXPECT_EQ(s.time_above(at(5_s), at(8_s), 90.0), 3_s);
    // Empty window.
    EXPECT_EQ(s.time_above(at(8_s), at(8_s), 90.0), SimDuration::zero());
}

TEST(Signal, FirstTimeWhere) {
    Signal s{"x"};
    s.record(at(1_s), 5.0);
    s.record(at(2_s), 15.0);
    s.record(at(3_s), 25.0);
    auto t = s.first_time_where(at(0_s), [](double v) { return v > 10; });
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, at(2_s));
    auto t2 = s.first_time_where(at(2500_ms), [](double v) { return v > 10; });
    ASSERT_TRUE(t2.has_value());
    EXPECT_EQ(*t2, at(3_s));
    EXPECT_FALSE(
        s.first_time_where(at(0_s), [](double v) { return v > 100; }).has_value());
}

TEST(Signal, MinMaxInWindow) {
    Signal s{"x"};
    s.record(at(1_s), 5.0);
    s.record(at(2_s), 1.0);
    s.record(at(3_s), 9.0);
    EXPECT_DOUBLE_EQ(*s.min_in(at(0_s), at(10_s)), 1.0);
    EXPECT_DOUBLE_EQ(*s.max_in(at(0_s), at(10_s)), 9.0);
    EXPECT_DOUBLE_EQ(*s.min_in(at(3_s), at(10_s)), 9.0);
    EXPECT_FALSE(s.min_in(at(4_s), at(10_s)).has_value());
}

TEST(Signal, StatsAggregates) {
    Signal s{"x"};
    s.record(at(1_s), 2.0);
    s.record(at(2_s), 4.0);
    const auto st = s.stats();
    EXPECT_EQ(st.count(), 2u);
    EXPECT_DOUBLE_EQ(st.mean(), 3.0);
}

TEST(TraceRecorder, GetOrCreateSignalIsStable) {
    TraceRecorder tr;
    Signal& a = tr.signal("x");
    tr.record("x", at(1_s), 1.0);
    Signal& b = tr.signal("x");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(tr.signal_count(), 1u);
    EXPECT_NE(tr.find("x"), nullptr);
    EXPECT_EQ(tr.find("missing"), nullptr);
}

TEST(TraceRecorder, MarksQueries) {
    TraceRecorder tr;
    tr.mark(at(1_s), "alarm");
    tr.mark(at(2_s), "stop");
    tr.mark(at(3_s), "alarm");
    EXPECT_EQ(tr.marks().size(), 3u);
    EXPECT_EQ(tr.count_marks("alarm"), 2u);
    EXPECT_EQ(tr.marks_with("alarm").size(), 2u);
    auto first = tr.first_mark("alarm");
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, at(1_s));
    auto later = tr.first_mark("alarm", at(1500_ms));
    ASSERT_TRUE(later.has_value());
    EXPECT_EQ(*later, at(3_s));
    EXPECT_FALSE(tr.first_mark("nothing").has_value());
}

TEST(TraceRecorder, SignalNamesSorted) {
    TraceRecorder tr;
    tr.record("b", at(1_s), 1.0);
    tr.record("a", at(1_s), 1.0);
    EXPECT_EQ(tr.signal_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(TraceRecorder, CsvExport) {
    TraceRecorder tr;
    tr.record("x", at(1_s), 1.5);
    std::ostringstream os;
    tr.write_csv(os);
    EXPECT_EQ(os.str(), "time_s,signal,value\n1,x,1.5\n");
}

}  // namespace
