/// \file test_scenarios.cpp
/// \brief Integration tests over the full scenario harnesses: the
/// paper-level claims in miniature, plus determinism guarantees.

#include <gtest/gtest.h>

#include "core/core.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;

core::PcaScenarioConfig sensitive_proxy(std::uint64_t seed) {
    core::PcaScenarioConfig cfg;
    cfg.seed = seed;
    cfg.duration = 4_h;
    cfg.patient = physio::nominal_parameters(physio::Archetype::kOpioidSensitive);
    cfg.demand_mode = core::DemandMode::kProxy;
    return cfg;
}

TEST(PcaScenario, ClosedLoopBeatsOpenLoopOnSafety) {
    auto open_cfg = sensitive_proxy(5);
    open_cfg.interlock = std::nullopt;
    const auto open = core::run_pca_scenario(open_cfg);

    auto closed_cfg = sensitive_proxy(5);
    closed_cfg.interlock = core::InterlockConfig{};
    const auto closed = core::run_pca_scenario(closed_cfg);

    // The headline DAC'10 claim: the closed loop arrests the overdose.
    EXPECT_TRUE(open.severe_hypoxemia);
    EXPECT_FALSE(closed.severe_hypoxemia);
    EXPECT_GT(open.time_spo2_below_90_s, closed.time_spo2_below_90_s);
    EXPECT_LT(open.min_spo2, closed.min_spo2);
    EXPECT_GT(closed.interlock.stops_issued, 0u);
    // And therapy is not destroyed: pain stays in the same ballpark.
    EXPECT_LT(closed.mean_pain, open.mean_pain + 2.0);
}

TEST(PcaScenario, TypicalPatientSafeWithoutInterlock) {
    core::PcaScenarioConfig cfg;
    cfg.seed = 6;
    cfg.duration = 2_h;
    cfg.interlock = std::nullopt;
    const auto r = core::run_pca_scenario(cfg);
    EXPECT_FALSE(r.severe_hypoxemia);
    EXPECT_GT(r.min_spo2, 90.0);
    EXPECT_GT(r.pump.boluses_delivered, 0u);
    EXPECT_LT(r.mean_pain, 5.0);  // PCA actually treats the pain
}

TEST(PcaScenario, DeterministicGivenSeed) {
    const auto a = core::run_pca_scenario(sensitive_proxy(77));
    const auto b = core::run_pca_scenario(sensitive_proxy(77));
    EXPECT_DOUBLE_EQ(a.min_spo2, b.min_spo2);
    EXPECT_DOUBLE_EQ(a.total_drug_mg, b.total_drug_mg);
    EXPECT_EQ(a.pump.boluses_requested, b.pump.boluses_requested);
    EXPECT_EQ(a.events_dispatched, b.events_dispatched);
    EXPECT_EQ(a.interlock.stops_issued, b.interlock.stops_issued);
}

TEST(PcaScenario, DifferentSeedsDiffer) {
    const auto a = core::run_pca_scenario(sensitive_proxy(1));
    const auto b = core::run_pca_scenario(sensitive_proxy(2));
    // Stochastic demand must actually vary.
    EXPECT_NE(a.pump.boluses_requested, b.pump.boluses_requested);
}

TEST(PcaScenario, MidRunHookFires) {
    auto cfg = sensitive_proxy(9);
    cfg.duration = 30_min;
    bool fired = false;
    cfg.hook_at = sim::SimTime::origin() + 10_min;
    cfg.mid_run_hook = [&fired](core::PcaScenario& sc) {
        fired = true;
        // Live access works.
        EXPECT_GT(sc.simulation().now().to_seconds(), 0.0);
        sc.oximeter().force_dropout(30_s);
    };
    (void)core::run_pca_scenario(cfg);
    EXPECT_TRUE(fired);
}

TEST(PcaScenario, LiveAccessors) {
    core::PcaScenarioConfig cfg;
    cfg.duration = 1_min;
    cfg.with_monitor = true;
    cfg.with_smart_alarm = true;
    core::PcaScenario sc{cfg};
    EXPECT_NE(sc.interlock(), nullptr);
    EXPECT_NE(sc.monitor(), nullptr);
    EXPECT_NE(sc.smart_alarm(), nullptr);
    EXPECT_EQ(sc.pump().name(), "pump1");
    const auto r = sc.run();
    EXPECT_GT(r.events_dispatched, 0u);
    // Trace captured ground truth.
    EXPECT_NE(sc.trace().find("truth/spo2"), nullptr);
}

TEST(PcaScenario, OpenLoopHasNoInterlockObjects) {
    core::PcaScenarioConfig cfg;
    cfg.duration = 1_min;
    cfg.interlock = std::nullopt;
    core::PcaScenario sc{cfg};
    EXPECT_EQ(sc.interlock(), nullptr);
    EXPECT_EQ(sc.monitor(), nullptr);
    EXPECT_EQ(sc.smart_alarm(), nullptr);
}

TEST(XrayScenario, AutomatedBeatsManualOnImageQuality) {
    core::XrayScenarioConfig manual_cfg;
    manual_cfg.seed = 21;
    manual_cfg.mode = core::CoordinationMode::kManual;
    manual_cfg.procedures = 15;
    manual_cfg.manual.premature_shot_probability = 0.5;  // sloppy shift
    const auto manual = core::run_xray_scenario(manual_cfg);

    core::XrayScenarioConfig auto_cfg = manual_cfg;
    auto_cfg.mode = core::CoordinationMode::kAutomated;
    const auto automated = core::run_xray_scenario(auto_cfg);

    EXPECT_GT(automated.sharp_rate, manual.sharp_rate);
    EXPECT_GE(automated.sharp_rate, 0.9);
    EXPECT_LT(automated.mean_apnea_s, manual.mean_apnea_s);
    EXPECT_EQ(automated.safety_auto_resumes, 0u);
}

TEST(XrayScenario, PatientStaysSafeInBothModes) {
    for (const auto mode : {core::CoordinationMode::kManual,
                            core::CoordinationMode::kAutomated}) {
        core::XrayScenarioConfig cfg;
        cfg.seed = 23;
        cfg.mode = mode;
        cfg.procedures = 10;
        const auto r = core::run_xray_scenario(cfg);
        // The ventilator's own max-pause keeps even the manual workflow
        // out of dangerous desaturation.
        EXPECT_GT(r.min_spo2, 88.0) << core::to_string(mode);
    }
}

TEST(XrayScenario, DeterministicGivenSeed) {
    core::XrayScenarioConfig cfg;
    cfg.seed = 31;
    cfg.mode = core::CoordinationMode::kManual;
    cfg.procedures = 10;
    const auto a = core::run_xray_scenario(cfg);
    const auto b = core::run_xray_scenario(cfg);
    EXPECT_EQ(a.sharp_images, b.sharp_images);
    EXPECT_DOUBLE_EQ(a.mean_apnea_s, b.mean_apnea_s);
}

TEST(PcaScenario, NetworkLatencyDelaysDetection) {
    // E2's claim in miniature: under the fail-OPERATIONAL policy (so no
    // preemptive staleness stops), added network latency directly delays
    // the closed loop's reaction to the same physiological event.
    core::InterlockConfig ilk;
    ilk.data_loss = core::DataLossPolicy::kFailOperational;

    auto clean_cfg = sensitive_proxy(55);
    clean_cfg.interlock = ilk;
    const auto clean = core::run_pca_scenario(clean_cfg);

    auto bad_cfg = sensitive_proxy(55);
    bad_cfg.interlock = ilk;
    bad_cfg.channel.base_latency = 4_s;
    bad_cfg.channel.jitter_sd = sim::SimDuration::zero();
    const auto bad = core::run_pca_scenario(bad_cfg);

    // Dual-sensor capnometry stops the pump before true SpO2 even
    // crosses 90, so compare the interlock's own condition-onset-to-ack
    // latency: the 4 s command+data delay must show up directly.
    ASSERT_TRUE(clean.interlock.last_stop_latency_ms.has_value());
    ASSERT_TRUE(bad.interlock.last_stop_latency_ms.has_value());
    EXPECT_GT(*bad.interlock.last_stop_latency_ms,
              *clean.interlock.last_stop_latency_ms + 3000.0);
}

TEST(PcaScenario, FailSafeTradesTherapyForSafetyOnBadNetwork) {
    // The ablation's other arm: under fail-SAFE, the same bad network
    // starves therapy (pump stopped on every staleness window) but the
    // patient never desaturates.
    core::InterlockConfig ilk;
    ilk.data_loss = core::DataLossPolicy::kFailSafe;
    auto cfg = sensitive_proxy(55);
    cfg.interlock = ilk;
    cfg.channel.base_latency = 2_s;
    cfg.channel.jitter_sd = 500_ms;
    cfg.channel.loss_probability = 0.3;
    const auto r = core::run_pca_scenario(cfg);

    auto clean_cfg = sensitive_proxy(55);
    clean_cfg.interlock = ilk;
    const auto clean = core::run_pca_scenario(clean_cfg);

    EXPECT_FALSE(r.severe_hypoxemia);
    EXPECT_GT(r.interlock.data_loss_stops, 0u);
    EXPECT_LT(r.total_drug_mg, clean.total_drug_mg);  // therapy starved
}

}  // namespace
