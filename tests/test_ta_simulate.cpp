/// \file test_ta_simulate.cpp
/// \brief Tests for the concrete timed-automata simulator, including the
/// agreement property with the symbolic checker on the GPCA models.

#include <gtest/gtest.h>

#include "ta/simulate.hpp"
#include "ta/ta.hpp"

namespace {

using namespace mcps::ta;

TEST(TaSimulate, WalksASimpleChain) {
    TimedAutomaton ta{"chain"};
    const ClockId x = ta.add_clock("x");
    const auto a = ta.add_location("A");
    const auto b = ta.add_location("B");
    const auto c = ta.add_location("C");
    ta.set_initial(a);
    ta.add_edge(a, b, {}, {x}, "ab");
    ta.add_edge(b, c, {Constraint::ge(x, 1)}, {}, "bc");

    mcps::sim::RngStream rng{1};
    const auto run = simulate_run(ta, rng);
    EXPECT_TRUE(run.visited_location(c));
    EXPECT_GE(run.total_time, 1.0);  // had to wait for x >= 1
    EXPECT_EQ(run.visited.front(), a);
}

TEST(TaSimulate, RespectsGuards) {
    // Edge guarded x <= 2 AND x >= 5 can never fire.
    TimedAutomaton ta{"stuck"};
    const ClockId x = ta.add_clock("x");
    const auto a = ta.add_location("A");
    const auto b = ta.add_location("B");
    ta.set_initial(a);
    ta.add_edge(a, b, {Constraint::le(x, 2), Constraint::ge(x, 5)}, {},
                "never");
    mcps::sim::RngStream rng{2};
    SimulateStats stats = simulate_many(ta, 50, rng, "B");
    EXPECT_EQ(stats.target_hits, 0u);
}

TEST(TaSimulate, InvariantBoundsDelay) {
    // Invariant x <= 3 at A; edge at x >= 2: the run must fire within
    // [2, 3] — total time before reaching B never exceeds 3.
    TimedAutomaton ta{"bounded"};
    const ClockId x = ta.add_clock("x");
    const auto a = ta.add_location("A", {Constraint::le(x, 3)});
    const auto b = ta.add_location("B");
    ta.set_initial(a);
    ta.add_edge(a, b, {Constraint::ge(x, 2)}, {}, "go");
    mcps::sim::RngStream rng{3};
    for (int i = 0; i < 30; ++i) {
        const auto run = simulate_run(ta, rng);
        if (run.visited_location(b)) {
            EXPECT_LE(run.total_time, 3.0 + 1e-9);
        }
    }
}

TEST(TaSimulate, DetectsDeadlock) {
    // Invariant x <= 1 with an edge requiring x >= 5: timelock.
    TimedAutomaton ta{"timelock"};
    const ClockId x = ta.add_clock("x");
    const auto a = ta.add_location("A", {Constraint::le(x, 1)});
    const auto b = ta.add_location("B");
    ta.set_initial(a);
    ta.add_edge(a, b, {Constraint::ge(x, 5)}, {}, "late");
    mcps::sim::RngStream rng{4};
    const auto stats = simulate_many(ta, 20, rng);
    EXPECT_EQ(stats.deadlocks, 20u);
}

TEST(TaSimulate, DeterministicGivenStream) {
    auto model = build_pump_lockout_model();
    mcps::sim::RngStream r1{7}, r2{7};
    const auto a = simulate_run(model, r1);
    const auto b = simulate_run(model, r2);
    EXPECT_EQ(a.visited, b.visited);
    EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(TaSimulate, AgreesWithCheckerOnCorrectPump) {
    // SAFE verdict + live model: runs progress but never hit Violation.
    auto model = build_pump_lockout_model();
    mcps::sim::RngStream rng{11};
    const auto stats = simulate_many(model, 200, rng, "Violation");
    EXPECT_EQ(stats.target_hits, 0u);
    // Vacuity check: the model actually grants boluses (visits a Bolus
    // product location).
    bool bolus_visited = false;
    for (const auto& [loc, hits] : stats.location_hits) {
        if (model.location_name(loc).find("Bolus") != std::string::npos &&
            hits > 0) {
            bolus_visited = true;
        }
    }
    EXPECT_TRUE(bolus_visited);
}

TEST(TaSimulate, FindsViolationInFaultyPump) {
    PumpModelParams faulty;
    faulty.faulty_no_lockout_guard = true;
    auto model = build_pump_lockout_model(faulty);
    mcps::sim::RngStream rng{13};
    SimulateOptions opts;
    opts.max_steps = 200;
    const auto stats = simulate_many(model, 300, rng, "Violation", opts);
    // The checker says VIOLATED; random runs should stumble on it too
    // (an early re-grant is likely whenever the second grant beats the
    // 480 s lockout — with delays capped at 50 s it usually does).
    EXPECT_GT(stats.target_hits, 0u);
}

TEST(TaSimulate, ClosedLoopRunsResolveHazards) {
    auto model = build_closed_loop_model();
    mcps::sim::RngStream rng{17};
    const auto stats = simulate_many(model, 200, rng, "Overdue");
    EXPECT_EQ(stats.target_hits, 0u);  // matches the SAFE verdict
    // Liveness-ish sanity: some runs actually resolve the hazard.
    std::size_t resolved_hits = 0;
    for (const auto& [loc, hits] : stats.location_hits) {
        if (model.location_name(loc).find("Resolved") != std::string::npos) {
            resolved_hits += hits;
        }
    }
    EXPECT_GT(resolved_hits, 0u);
}

}  // namespace
