/// \file test_flow_monitor.cpp
/// \brief Tests for the QoS flow monitor (gaps, deadline misses,
/// reordering) including reordering actually produced by channel jitter.

#include <gtest/gtest.h>

#include "devices/devices.hpp"
#include "net/flow_monitor.hpp"
#include "net/net.hpp"
#include "physio/population.hpp"
#include "sim/simulation.hpp"
#include "testkit/fault_plan.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using net::FlowConfig;
using net::FlowMonitor;

class FlowTest : public ::testing::Test {
protected:
    FlowTest() : sim_{42}, bus_{sim_, net::ChannelParameters::ideal()} {}

    void publish_vital(double v = 97.0) {
        bus_.publish("oxi", "vitals/bed1/spo2",
                     net::VitalSignPayload{"spo2", v, true});
    }

    sim::Simulation sim_;
    net::Bus bus_;
};

TEST_F(FlowTest, ConfigValidation) {
    FlowConfig cfg;
    cfg.deadline = sim::SimDuration::zero();
    EXPECT_THROW(FlowMonitor(sim_, bus_, cfg), std::invalid_argument);
}

TEST_F(FlowTest, CountsMessagesAndGaps) {
    FlowMonitor mon{sim_, bus_, FlowConfig{}};
    mon.start();
    for (int i = 0; i < 10; ++i) {
        publish_vital();
        sim_.run_for(1_s);
    }
    EXPECT_EQ(mon.stats().messages, 10u);
    EXPECT_EQ(mon.stats().gaps_ms.count(), 9u);
    EXPECT_NEAR(mon.stats().gaps_ms.mean(), 1000.0, 1.0);
    EXPECT_EQ(mon.stats().deadline_misses, 0u);
    EXPECT_FALSE(mon.currently_late());
}

TEST_F(FlowTest, DetectsDeadlineMissOncePerSilentWindow) {
    FlowConfig cfg;
    cfg.deadline = 3_s;
    FlowMonitor mon{sim_, bus_, cfg};
    mon.start();
    publish_vital();
    sim_.run_for(1_s);
    publish_vital();
    // Silence for 20 s: ONE miss, flagged late.
    sim_.run_for(20_s);
    EXPECT_EQ(mon.stats().deadline_misses, 1u);
    EXPECT_TRUE(mon.currently_late());
    // Flow resumes: flag clears; a second silence is a second miss.
    publish_vital();
    sim_.run_for(1_s);
    EXPECT_FALSE(mon.currently_late());
    sim_.run_for(20_s);
    EXPECT_EQ(mon.stats().deadline_misses, 2u);
}

TEST_F(FlowTest, NeverLateBeforeFirstMessage) {
    FlowMonitor mon{sim_, bus_, FlowConfig{}};
    mon.start();
    sim_.run_for(1_min);
    EXPECT_FALSE(mon.currently_late());
    EXPECT_EQ(mon.stats().deadline_misses, 0u);
}

TEST_F(FlowTest, StopDetaches) {
    FlowMonitor mon{sim_, bus_, FlowConfig{}};
    mon.start();
    mon.stop();
    publish_vital();
    sim_.run_for(1_s);
    EXPECT_EQ(mon.stats().messages, 0u);
}

TEST_F(FlowTest, TopicPatternFilters) {
    FlowConfig cfg;
    cfg.topic_pattern = "vitals/bed2/*";
    FlowMonitor mon{sim_, bus_, cfg};
    mon.start();
    publish_vital();  // bed1: not watched
    bus_.publish("cap", "vitals/bed2/etco2",
                 net::VitalSignPayload{"etco2", 38.0, true});
    sim_.run_for(1_s);
    EXPECT_EQ(mon.stats().messages, 1u);
}

TEST(FlowJitterTest, JitterProducesObservableReordering) {
    // High jitter relative to publish spacing reorders deliveries on a
    // subscriber link — the UDP-like behaviour the envelope seq exists
    // for. The monitor must count it.
    sim::Simulation sim{7};
    net::ChannelParameters noisy;
    noisy.base_latency = 50_ms;
    noisy.jitter_sd = 40_ms;
    net::Bus bus{sim, noisy};

    FlowConfig cfg;
    cfg.topic_pattern = "data/*";
    FlowMonitor mon{sim, bus, cfg};
    mon.start();
    // The monitor pinned its own endpoint to ideal; give it the noisy
    // link instead so it actually experiences the jitter.
    bus.set_endpoint_channel("flow_monitor", noisy);

    for (int i = 0; i < 500; ++i) {
        bus.publish("src", "data/x", net::StatusPayload{"s", ""});
        sim.run_for(10_ms);  // spacing << jitter: reordering guaranteed
    }
    // Drain in-flight deliveries (run_all would never return: the
    // monitor's periodic check keeps the queue alive forever).
    sim.run_for(2_s);
    EXPECT_EQ(mon.stats().messages, 500u);
    EXPECT_GT(mon.stats().reordered, 0u);
}

TEST(FlowBurstTest, BurstyTrafficUnderInjectedFaults) {
    // Bursty publisher (tight bursts separated by idle gaps) driven
    // through a testkit fault plan: a delay spike stales one burst, an
    // outage swallows another. The monitor must attribute misses to the
    // injected windows, not to the bursts themselves.
    sim::Simulation sim{13};
    net::ChannelParameters link;
    link.base_latency = 5_ms;
    link.jitter_sd = 1_ms;
    net::Bus bus{sim, link};

    FlowConfig cfg;
    cfg.topic_pattern = "vitals/bed1/*";
    cfg.deadline = 8_s;
    FlowMonitor mon{sim, bus, cfg};
    mon.start();
    bus.set_endpoint_channel("flow_monitor", link);

    testkit::FaultPlan plan;
    // +12 s latency over [65 s, 77 s): bursts sent in that window arrive
    // ~12 s stale, opening an arrival gap longer than the deadline.
    plan.events.push_back({testkit::FaultKind::kDelaySpike, 65_s, 12_s,
                           "flow_monitor", 12000.0});
    // Hard outage swallowing the bursts sent in [95 s, 110 s).
    plan.events.push_back(
        {testkit::FaultKind::kOutage, 95_s, 15_s, "flow_monitor", 0.0});
    testkit::FaultInjector injector{sim, bus};
    injector.arm(plan);
    EXPECT_EQ(injector.armed(), 2u);

    // 20 bursts of 10 messages at 100 ms spacing, one burst every 6 s —
    // the ~5 s quiet gap between bursts stays under the 8 s deadline.
    int sent = 0;
    for (int burst = 0; burst < 20; ++burst) {
        sim.run_until(sim::SimTime::origin() +
                      sim::SimDuration::seconds(burst * 6));
        for (int i = 0; i < 10; ++i) {
            bus.publish("oxi", "vitals/bed1/spo2",
                        net::VitalSignPayload{"spo2", 97.0, true});
            ++sent;
            sim.run_for(100_ms);
        }
    }
    sim.run_for(30_s);

    // One silent window per injected fault (plus the tail after the last
    // burst); the bursts themselves never trip the deadline.
    EXPECT_GE(mon.stats().deadline_misses, 2u);
    EXPECT_LE(mon.stats().deadline_misses, 4u);
    // The outage swallowed ~3 bursts; everything else arrived.
    EXPECT_LT(mon.stats().messages, static_cast<std::uint64_t>(sent));
    EXPECT_GE(mon.stats().messages, static_cast<std::uint64_t>(sent - 40));
    // Spike-held messages arrive after later sends: observable reordering.
    EXPECT_GT(mon.stats().reordered, 0u);
}

TEST(FlowScenarioTest, SensorDropoutSurfacesAsDeadlineMiss) {
    // Integration: the monitor sees the same staleness the interlock's
    // fail-safe acts on.
    sim::Simulation sim{11};
    sim::TraceRecorder trace;
    net::Bus bus{sim, net::ChannelParameters::ideal()};
    physio::Patient patient{
        physio::nominal_parameters(physio::Archetype::kTypicalAdult)};
    devices::DeviceContext ctx{sim, bus, trace};
    devices::PulseOximeter oxi{ctx, "oxi1", patient};
    oxi.start();

    FlowConfig cfg;
    cfg.topic_pattern = "vitals/bed1/spo2";
    cfg.deadline = 5_s;
    FlowMonitor mon{sim, bus, cfg};
    mon.start();

    sim.run_for(30_s);
    EXPECT_EQ(mon.stats().deadline_misses, 0u);
    oxi.force_dropout(30_s);
    sim.run_for(40_s);
    EXPECT_EQ(mon.stats().deadline_misses, 1u);
    EXPECT_GT(mon.stats().gaps_ms.max(), 29000.0);
}

}  // namespace
