/// \file test_compaction.cpp
/// \brief Lazy tombstone compaction in the calendar queue.
///
/// A cancelled event stays queued as a tombstone until its timestamp is
/// reached; a cancel-heavy workload used to pay one pop (and one drain
/// sort slot) per tombstone. The drain loop now sweeps the whole queue
/// in one pass once tombstones reach half the pending population (and
/// at least Simulation::kCompactMinTombstones). These tests pin:
///  - the sweep actually runs and removes the cancelled population;
///  - dispatch order and fired-set are byte-identical with and without
///    compaction in the loop (cancelled events never fire either way);
///  - bookkeeping: tombstones_pending() rises with cancels, drops to
///    zero after the sweep, and survives arena reuse/reset.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_arena.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace {

using namespace mcps::sim;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

TEST(TombstoneCompaction, SweepRemovesCancelledPopulation) {
    Simulation s{7};
    auto rng = s.rng("compact.sweep");
    constexpr std::size_t kEvents = 20000;
    std::vector<EventHandle> handles;
    handles.reserve(kEvents);
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < kEvents; ++i) {
        const auto delay = SimDuration::micros(rng.uniform_int(1, 1000000));
        handles.push_back(s.schedule_after(delay, [&fired] { ++fired; }));
        if (i % 10 != 0) handles.back().cancel();  // 90% tombstones
    }
    EXPECT_EQ(s.tombstones_pending(), kEvents - kEvents / 10);
    s.run_all();
    EXPECT_EQ(fired, kEvents / 10);
    EXPECT_GE(s.queue_compactions(), 1u);
    // The sweep (not one-by-one pops) must have absorbed the bulk of the
    // tombstones: at most 256 (one check interval) plus the ones popped
    // before the threshold was crossed can slip through.
    EXPECT_GT(s.tombstones_compacted(), (kEvents * 8) / 10);
    EXPECT_EQ(s.tombstones_pending(), 0u);
    EXPECT_EQ(s.events_pending(), 0u);
}

TEST(TombstoneCompaction, BelowThresholdNeverSweeps) {
    Simulation s{7};
    std::vector<EventHandle> handles;
    // Fewer tombstones than kCompactMinTombstones: the sweep must not
    // trigger no matter the cancel ratio.
    for (std::size_t i = 0; i < Simulation::kCompactMinTombstones / 2; ++i) {
        handles.push_back(s.schedule_after(
            SimDuration::micros(static_cast<std::int64_t>(i + 1)), [] {}));
        handles.back().cancel();
    }
    s.run_all();
    EXPECT_EQ(s.queue_compactions(), 0u);
    EXPECT_EQ(s.tombstones_pending(), 0u);
}

/// Order witness: the dispatch hash of the surviving events must not
/// depend on whether the tombstones were swept or popped. We force both
/// regimes with the same workload by scaling the population: small run
/// (below threshold, pop path) vs the same schedule replicated enough to
/// trigger sweeps — the per-event firing order of the common prefix is
/// checked via a per-run hash of (index at dispatch).
TEST(TombstoneCompaction, DispatchOrderMatchesCancelSemantics) {
    auto run = [](std::size_t events) {
        Simulation s{42};
        auto rng = s.rng("compact.order");
        std::uint64_t hash = 0x6d637073ULL;
        std::vector<EventHandle> handles;
        handles.reserve(events);
        for (std::uint32_t i = 0; i < events; ++i) {
            const auto delay =
                SimDuration::micros(rng.uniform_int(1, 1000000));
            handles.push_back(s.schedule_after(
                delay, [i, &hash] { hash = mix(hash, i); }));
            if (i % 4 != 0) handles.back().cancel();
        }
        s.run_all();
        return std::pair{hash, s.queue_compactions()};
    };
    // Same seed, same RNG stream, same cancel pattern: the two runs
    // schedule an identical prefix. Run it twice at the same size and
    // require identical hashes AND at least one sweep, then once below
    // the threshold with a prefix-truncated population to prove the
    // pop path produces the hash its own re-run reproduces.
    const auto big1 = run(20000);
    const auto big2 = run(20000);
    EXPECT_EQ(big1.first, big2.first);
    EXPECT_GE(big1.second, 1u);
    const auto small1 = run(1000);
    const auto small2 = run(1000);
    EXPECT_EQ(small1.first, small2.first);
    EXPECT_EQ(small1.second, 0u);
}

TEST(TombstoneCompaction, WarmArenaReuseStartsClean) {
    EventArena arena;
    {
        Simulation s{9, &arena};
        std::vector<EventHandle> handles;
        for (std::size_t i = 0; i < 4096; ++i) {
            handles.push_back(s.schedule_after(
                SimDuration::micros(static_cast<std::int64_t>(i + 1)), [] {}));
            handles.back().cancel();
        }
        // Destroyed with tombstones still queued: the destructor drains
        // the queue and must zero the slab's tombstone count.
    }
    EXPECT_EQ(arena.slab()->cancelled_queued(), 0u);
    arena.reset();
    Simulation s2{9, &arena};
    EXPECT_EQ(s2.tombstones_pending(), 0u);
    std::uint64_t fired = 0;
    auto h = s2.schedule_after(SimDuration::micros(5), [&fired] { ++fired; });
    (void)h;
    s2.run_all();
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(s2.queue_compactions(), 0u);
}

TEST(TombstoneCompaction, PeriodicCancelMidDispatchIsNotCounted) {
    Simulation s{11};
    EventHandle self;
    std::uint64_t fired = 0;
    self = s.schedule_periodic(SimDuration::micros(10), [&] {
        ++fired;
        // Cancel from inside the callback: the node is mid-dispatch
        // (kFired set), not queued, so it must NOT enter the tombstone
        // count — it is released on the re-arm check instead.
        self.cancel();
        EXPECT_EQ(s.tombstones_pending(), 0u);
    });
    s.run_for(SimDuration::micros(100));
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(s.events_pending(), 0u);
    EXPECT_EQ(s.tombstones_pending(), 0u);
}

}  // namespace
