/// \file test_kernel_stress.cpp
/// \brief Churn stress for the arena-backed kernel: a million events
/// with cancels and re-arms, plus arena-reset reuse.
///
/// What this pins down:
///  - cancel() is absolute: an event whose cancel() returned true never
///    fires, even under heavy slot recycling (a recycled slot must not
///    resurrect a stale handle — that's the generation counter's job);
///  - re-arming (cancel + schedule a replacement) preserves the global
///    (when, priority, seq) order;
///  - running the same workload on a freshly reset arena yields the
///    byte-identical dispatch order while recycling warm slots instead
///    of allocating new chunks.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_arena.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace {

using namespace mcps::sim;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

constexpr std::size_t kChurnEvents = 1000000;

/// One full churn run against \p arena: schedules a million events,
/// cancels a third, re-arms a third of the cancelled at a new deadline,
/// and returns an order-sensitive hash of the dispatch sequence.
std::uint64_t churn_run(EventArena* arena, std::uint64_t* fired_count) {
    Simulation s{77, arena};
    auto rng = s.rng("stress.churn");
    std::uint64_t hash = 0x6d637073ULL;
    std::uint64_t fired = 0;

    std::vector<EventHandle> handles;
    std::vector<bool> cancelled(kChurnEvents, false);
    std::vector<bool> fired_flags(kChurnEvents, false);
    handles.reserve(kChurnEvents);

    for (std::uint32_t i = 0; i < kChurnEvents; ++i) {
        const std::int64_t delay = rng.uniform_int(0, 10000000);
        handles.push_back(s.schedule_after(
            SimDuration::micros(delay), [i, &hash, &fired, &fired_flags] {
                hash = mix(hash, i);
                fired_flags[i] = true;
                ++fired;
            }));
        const std::int64_t roll = rng.uniform_int(0, 5);
        if (roll == 0) {
            // Plain cancel.
            cancelled[i] = handles.back().cancel();
        } else if (roll == 1) {
            // Re-arm: cancel, then schedule a replacement at a fresh
            // deadline (the replacement hashes with a disjoint id).
            cancelled[i] = handles.back().cancel();
            const std::int64_t redelay = rng.uniform_int(0, 10000000);
            s.schedule_after(SimDuration::micros(redelay),
                             [i, &hash, &fired] {
                                 hash = mix(hash, 0x80000000u + i);
                                 ++fired;
                             });
        }
    }
    s.run_all();

    // An event whose cancel() returned true must never have fired.
    for (std::uint32_t i = 0; i < kChurnEvents; ++i) {
        if (cancelled[i]) {
            EXPECT_FALSE(fired_flags[i]) << "event " << i
                                         << " fired after cancel() == true";
        } else {
            EXPECT_TRUE(fired_flags[i]) << "uncancelled event " << i
                                        << " never fired";
        }
    }
    if (fired_count != nullptr) *fired_count = fired;
    return hash;
}

TEST(KernelStress, MillionEventChurnWithCancelsAndRearms) {
    std::uint64_t fired = 0;
    const std::uint64_t h = churn_run(nullptr, &fired);
    EXPECT_NE(h, 0u);
    EXPECT_GT(fired, kChurnEvents / 2);
    EXPECT_LT(fired, kChurnEvents + kChurnEvents / 2);
}

TEST(KernelStress, ArenaResetYieldsIdenticalDispatchOrder) {
    EventArena arena;
    std::uint64_t fired1 = 0;
    std::uint64_t fired2 = 0;
    const std::uint64_t h1 = churn_run(&arena, &fired1);
    const std::uint64_t chunks_after_first = arena.stats().chunk_allocs;

    arena.reset();
    const std::uint64_t h2 = churn_run(&arena, &fired2);

    EXPECT_EQ(h1, h2) << "dispatch order changed across an arena reset";
    EXPECT_EQ(fired1, fired2);
    // The second run must have been served from recycled slots.
    EXPECT_EQ(arena.stats().chunk_allocs, chunks_after_first)
        << "warm rerun allocated fresh chunks";
    EXPECT_GT(arena.stats().nodes_recycled, 0u);
    EXPECT_GE(arena.stats().resets, 1u);
}

TEST(KernelStress, HandlesAreInertAfterArenaReset) {
    EventArena arena;
    std::vector<EventHandle> handles;
    {
        Simulation s{3, &arena};
        for (int i = 0; i < 100; ++i) {
            handles.push_back(
                s.schedule_after(SimDuration::micros(1000 + i), [] {}));
        }
        // Simulation destroyed with events still pending.
    }
    arena.reset();
    for (auto& h : handles) {
        EXPECT_TRUE(h.valid());     // still refers to a slab
        EXPECT_FALSE(h.pending());  // ...but the event is gone
        EXPECT_FALSE(h.cancel());   // and cancel is a harmless no-op
    }
}

TEST(KernelStress, StaleHandleDoesNotCancelRecycledSlot) {
    // A handle whose slot was recycled must not affect the NEW tenant of
    // that slot (generation mismatch), no matter how many reuse cycles
    // the slot went through.
    Simulation s{11};
    EventHandle stale = s.schedule_after(SimDuration::micros(1), [] {});
    s.run_for(SimDuration::micros(2));  // fires; slot recycled
    EXPECT_FALSE(stale.pending());

    bool second_fired = false;
    // The recycled slot is acquired by the next schedule.
    EventHandle fresh = s.schedule_after(SimDuration::micros(1),
                                         [&second_fired] { second_fired = true; });
    EXPECT_FALSE(stale.cancel()) << "stale handle cancelled a recycled slot";
    s.run_for(SimDuration::micros(2));
    EXPECT_TRUE(second_fired);
    EXPECT_FALSE(fresh.pending());
}

TEST(KernelStress, CancelledPeriodicStopsRearming) {
    Simulation s{13};
    int fires = 0;
    EventHandle h = s.schedule_periodic(SimDuration::micros(10),
                                        [&fires, &s, &h] {
                                            ++fires;
                                            if (fires == 3) {
                                                EXPECT_TRUE(h.cancel());
                                            }
                                        });
    s.run_for(SimDuration::micros(1000));
    EXPECT_EQ(fires, 3);
    EXPECT_FALSE(h.pending());
}

}  // namespace
