/// \file test_event_queue.cpp
/// \brief Differential tests of the calendar queue against a reference
/// std::priority_queue model.
///
/// The kernel's determinism contract is that dispatch order is EXACTLY
/// ascending (when, priority, sequence) — the total order the former
/// binary-heap scheduler produced. These tests drive the CalendarQueue
/// (and the full Simulation) with randomized workloads and assert the
/// pop order matches the reference comparator element-for-element, so
/// any bucket-geometry bug that perturbs ordering fails loudly here
/// instead of surfacing as a golden-trace diff.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event_arena.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace {

using namespace mcps::sim;

struct RefKey {
    std::int64_t when;
    std::uint64_t seq;
    std::int8_t prio;
};

/// Exact mirror of the kernel's dispatch order: ascending
/// (when, prio, seq). priority_queue pops the "largest", so the
/// comparator is the reverse.
struct RefAfter {
    bool operator()(const RefKey& a, const RefKey& b) const noexcept {
        if (a.when != b.when) return a.when > b.when;
        if (a.prio != b.prio) return a.prio > b.prio;
        return a.seq > b.seq;
    }
};

using RefQueue = std::priority_queue<RefKey, std::vector<RefKey>, RefAfter>;

/// Pushes a node with the given key into both queues.
class DifferentialHarness {
public:
    void push(std::int64_t when, std::int8_t prio) {
        const std::uint64_t seq = next_seq_++;
        const std::uint32_t idx = arena_.acquire();
        EventNode& n = arena_.node(idx);
        n.when = SimTime::at(SimDuration::micros(when));
        n.seq = seq;
        n.prio = static_cast<EventPriority>(prio);
        queue_.push(idx);
        ref_.push(RefKey{when, seq, prio});
    }

    /// Pops one entry from both queues and asserts the keys agree.
    /// Returns false when both are empty.
    [[nodiscard]] bool pop_and_compare() {
        const auto e = queue_.pop_if_at_most(SimTime::never().ticks());
        if (!e) {
            EXPECT_TRUE(ref_.empty());
            return false;
        }
        EXPECT_FALSE(ref_.empty());
        const RefKey expect = ref_.top();
        ref_.pop();
        EXPECT_EQ(e->when, expect.when);
        EXPECT_EQ(e->seq, expect.seq) << "FIFO tie-break diverged at when="
                                      << expect.when;
        EXPECT_EQ(e->prio, expect.prio);
        arena_.release(e->idx);
        return true;
    }

    [[nodiscard]] CalendarQueue& queue() noexcept { return queue_; }

private:
    EventArena arena_;
    CalendarQueue queue_{arena_};
    RefQueue ref_;
    std::uint64_t next_seq_ = 0;
};

TEST(EventQueueDifferential, RandomizedPushThenDrain) {
    DifferentialHarness h;
    RngStream rng{2024, "queue.random"};
    for (int i = 0; i < 20000; ++i) {
        // Coarse timestamps force plenty of exact collisions.
        h.push(rng.uniform_int(0, 5000),
               static_cast<std::int8_t>(rng.uniform_int(-1, 1)));
    }
    int popped = 0;
    while (h.pop_and_compare()) ++popped;
    EXPECT_EQ(popped, 20000);
}

TEST(EventQueueDifferential, InterleavedPushPop) {
    DifferentialHarness h;
    RngStream rng{7, "queue.interleave"};
    int pushed = 0;
    int popped = 0;
    for (int round = 0; round < 4000; ++round) {
        const int burst = static_cast<int>(rng.uniform_int(1, 8));
        for (int i = 0; i < burst; ++i) {
            h.push(rng.uniform_int(0, 100000),
                   static_cast<std::int8_t>(rng.uniform_int(-1, 1)));
            ++pushed;
        }
        // Pop roughly half of what is outstanding, so the queue cursor
        // repeatedly rewinds when later pushes land in earlier years.
        int to_pop = (pushed - popped) / 2;
        while (to_pop-- > 0 && h.pop_and_compare()) ++popped;
    }
    while (h.pop_and_compare()) ++popped;
    EXPECT_EQ(popped, pushed);
}

TEST(EventQueueDifferential, AllSameInstantPopsInFifoOrder) {
    EventArena arena;
    CalendarQueue q{arena};
    for (std::uint64_t seq = 0; seq < 1000; ++seq) {
        const std::uint32_t idx = arena.acquire();
        EventNode& n = arena.node(idx);
        n.when = SimTime::at(SimDuration::micros(42));
        n.seq = seq;
        n.prio = EventPriority::kDefault;
        q.push(idx);
    }
    for (std::uint64_t seq = 0; seq < 1000; ++seq) {
        const auto e = q.pop_if_at_most(SimTime::never().ticks());
        ASSERT_TRUE(e.has_value());
        EXPECT_EQ(e->seq, seq);  // exact insertion order
        arena.release(e->idx);
    }
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueDifferential, PriorityBeatsFifoAtSameInstant) {
    DifferentialHarness h;
    // Insertion order deliberately scrambles priorities at one instant.
    h.push(10, 0);
    h.push(10, 1);
    h.push(10, -1);
    h.push(10, 0);
    h.push(10, -1);
    while (h.pop_and_compare()) {
    }
}

TEST(EventQueueDifferential, PopRespectsLimit) {
    EventArena arena;
    CalendarQueue q{arena};
    for (std::int64_t when : {100, 200, 300}) {
        const std::uint32_t idx = arena.acquire();
        EventNode& n = arena.node(idx);
        n.when = SimTime::at(SimDuration::micros(when));
        n.seq = static_cast<std::uint64_t>(when);
        n.prio = EventPriority::kDefault;
        q.push(idx);
    }
    EXPECT_FALSE(q.pop_if_at_most(99).has_value());
    EXPECT_EQ(q.size(), 3u);  // a refused pop leaves the queue untouched
    const auto e1 = q.pop_if_at_most(100);
    ASSERT_TRUE(e1.has_value());
    EXPECT_EQ(e1->when, 100);
    EXPECT_FALSE(q.pop_if_at_most(150).has_value());
    EXPECT_EQ(q.size(), 2u);
    const auto e2 = q.pop_if_at_most(SimTime::never().ticks());
    ASSERT_TRUE(e2.has_value());
    EXPECT_EQ(e2->when, 200);
}

TEST(EventQueueDifferential, BucketGeometryGrowsWithPopulation) {
    EventArena arena;
    CalendarQueue q{arena};
    const std::size_t initial = q.bucket_count();
    for (std::int64_t i = 0; i < 10000; ++i) {
        const std::uint32_t idx = arena.acquire();
        EventNode& n = arena.node(idx);
        n.when = SimTime::at(SimDuration::micros(i));
        n.seq = static_cast<std::uint64_t>(i);
        n.prio = EventPriority::kDefault;
        q.push(idx);
    }
    EXPECT_GT(q.bucket_count(), initial);
    EXPECT_EQ(q.size(), 10000u);
}

/// Reference model of the full Simulation seq-assignment contract:
/// every push (including a periodic re-arm at dispatch time) takes the
/// next global sequence number, and callbacks run before their event's
/// re-arm is assigned its new seq.
TEST(SimulationDifferential, RandomOneShotsMatchSortedOrder) {
    Simulation s{99};
    auto rng = s.rng("test.diff");
    struct Scheduled {
        std::int64_t when;
        std::int8_t prio;
        std::uint64_t seq;
        int id;
    };
    std::vector<Scheduled> model;
    std::vector<int> dispatched;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t delay = rng.uniform_int(0, 2000);
        const auto prio = static_cast<std::int8_t>(rng.uniform_int(-1, 1));
        model.push_back(Scheduled{delay, prio, static_cast<std::uint64_t>(i), i});
        s.schedule_after(SimDuration::micros(delay),
                         [&dispatched, i] { dispatched.push_back(i); },
                         static_cast<EventPriority>(prio));
    }
    s.run_all();

    std::sort(model.begin(), model.end(),
              [](const Scheduled& a, const Scheduled& b) {
                  if (a.when != b.when) return a.when < b.when;
                  if (a.prio != b.prio) return a.prio < b.prio;
                  return a.seq < b.seq;
              });
    ASSERT_EQ(dispatched.size(), model.size());
    for (std::size_t i = 0; i < model.size(); ++i) {
        EXPECT_EQ(dispatched[i], model[i].id) << "divergence at position " << i;
    }
}

TEST(SimulationDifferential, PeriodicRearmTakesFreshSeqAfterCallback) {
    // One periodic process at t=10,20,30 and one-shots scheduled BY its
    // callback at the same instants it re-arms to. The re-arm happens
    // after the callback returns, so the re-armed event carries a LARGER
    // seq than anything the callback scheduled — the one-shot runs first
    // at the next instant. This pins the exact heap-era contract.
    Simulation s{5};
    std::vector<std::string> order;
    s.schedule_periodic(SimDuration::micros(10), [&s, &order] {
        order.push_back("periodic@" + std::to_string(s.now().ticks()));
        s.schedule_after(SimDuration::micros(10), [&order, &s] {
            order.push_back("oneshot@" + std::to_string(s.now().ticks()));
        });
    });
    s.run_for(SimDuration::micros(45));
    ASSERT_GE(order.size(), 4u);
    EXPECT_EQ(order[0], "periodic@10");
    EXPECT_EQ(order[1], "oneshot@20");  // scheduled first => smaller seq
    EXPECT_EQ(order[2], "periodic@20");
    EXPECT_EQ(order[3], "oneshot@30");
}

}  // namespace
