// SIM1 fixture: platform-varying RNG. Never compiled; scanned by the
// analysis tests.

#include <random>

double noisy_sample() {
    std::random_device rd;
    std::mt19937 gen{rd()};
    std::uniform_real_distribution<double> dist{0.0, 1.0};
    return dist(gen);
}
