// SIM1 fixture: wall-clock time sources leaking into sim code.
// Never compiled; scanned by the analysis tests.

#include <chrono>
#include <ctime>

long stamp_ms() {
    const auto now = std::chrono::system_clock::now();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now.time_since_epoch())
        .count();
}

long elapsed(long t0) {
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return t.count() - t0;
}

long unix_seconds() { return static_cast<long>(time(nullptr)); }
