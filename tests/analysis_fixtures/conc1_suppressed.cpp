// CONC1 fixture: the same defect as conc1_unguarded.cpp, but carrying
// an audited inline waiver — the scan must count it as suppressed, not
// as a finding. Never compiled.
#include <mutex>

class Gauge {
public:
    int read() const {
        // mcps-analyze: allow(CONC1): diagnostic snapshot; staleness ok
        return value_;
    }

    void write(int v) {
        std::lock_guard<std::mutex> lock{mu_};
        value_ = v;
    }

private:
    mutable std::mutex mu_;
    int value_ MCPS_GUARDED_BY(mu_) = 0;
};
