// ICE1 fixture: legitimate raw-config uses annotated inline. The tests
// assert the file scans clean with exactly two SUPPRESSED findings (one
// same-line marker, one preceding-line marker).

#include "core/pca_scenario.hpp"
#include "core/xray_scenario.hpp"

double annotated_harness() {
    mcps::core::PcaScenarioConfig cfg;  // mcps-analyze: allow(ICE1): fixture exercises same-line marker
    cfg.seed = 7;

    // mcps-analyze: allow(ICE1): fixture exercises preceding-line marker
    mcps::core::XrayScenarioConfig xcfg;
    xcfg.procedures = 20;
    return static_cast<double>(cfg.seed + xcfg.procedures);
}
