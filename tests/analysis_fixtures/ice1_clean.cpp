// ICE1 fixture: a well-behaved consumer. Configs come from the
// registry/spec layer, so the raw type names never appear — except in
// this comment (PcaScenarioConfig) and the string below, neither of
// which may trigger the scan.

#include "scenario/scenario.hpp"

double registry_consumer() {
    mcps::scenario::ScenarioSpec spec;
    spec.name = "pca";
    spec.set("interlock", "dual");
    const char* doc = "XrayScenarioConfig is spelled out only in text";
    (void)doc;
    const auto art = mcps::scenario::registry().run(spec);
    return art.at("min_spo2");
}
