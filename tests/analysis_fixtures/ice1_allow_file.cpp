// ICE1 fixture: whole-file escape hatch.
// mcps-analyze: allow-file(ICE1): fixture exercises the file marker

#include "core/pca_scenario.hpp"
#include "core/xray_scenario.hpp"

double exempt_harness() {
    mcps::core::PcaScenarioConfig cfg;
    mcps::core::XrayScenarioConfig xcfg;
    return static_cast<double>(cfg.seed + xcfg.procedures);
}
