// CONC1 fixture: seeded defect — the nesting is declared, but the code
// acquires against the declared direction. Never compiled.
#include <mutex>

MCPS_LOCK_ORDER(Account::ledger_mu_, Account::audit_mu_);

class Account {
public:
    void post() {
        std::lock_guard<std::mutex> l{ledger_mu_};
        std::lock_guard<std::mutex> a{audit_mu_};  // declared order: fine
    }

    void audit_then_post() {
        std::lock_guard<std::mutex> a{audit_mu_};
        std::lock_guard<std::mutex> l{ledger_mu_};  // seeded: reversed
    }

private:
    std::mutex ledger_mu_;
    std::mutex audit_mu_;
};
