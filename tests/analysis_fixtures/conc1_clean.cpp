// CONC1 fixture: fully disciplined lock usage — the scan must stay
// clean. Exercises GUARDED_BY under lock_guard/unique_lock, the
// MCPS_REQUIRES "_locked" helper idiom, a declared nesting edge taken
// in the declared order, and constructor exemption. Never compiled.
#include <mutex>
#include <vector>

MCPS_LOCK_ORDER(Ledger::mu_, Journal::jmu_);

class Journal {
public:
    void append(int v) {
        std::lock_guard<std::mutex> lock{jmu_};
        entries_.push_back(v);
    }

    std::mutex jmu_;
    std::vector<int> entries_ MCPS_GUARDED_BY(jmu_);
};

class Ledger {
public:
    explicit Ledger(Journal& j) {
        journal_ = &j;
        balance_ = 0;  // constructors are exempt: no sharing yet
    }

    void deposit(int v) {
        std::unique_lock lock{mu_};
        balance_ += v;
        bump_locked();
        std::lock_guard<std::mutex> jl{journal_->jmu_};  // declared edge
        journal_->entries_.push_back(v);
    }

    int balance() const {
        std::lock_guard<std::mutex> lock{mu_};
        return balance_;
    }

private:
    void bump_locked() MCPS_REQUIRES(mu_) { ++balance_; }

    Journal* journal_ = nullptr;
    mutable std::mutex mu_;
    int balance_ MCPS_GUARDED_BY(mu_) = 0;
};
