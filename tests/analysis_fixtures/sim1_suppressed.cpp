// SIM1 fixture: legitimate uses annotated inline. The tests assert the
// file scans clean with exactly two SUPPRESSED findings (one same-line
// marker, one preceding-line marker).

#include <chrono>
#include <random>

long bench_clock() {
    const auto t = std::chrono::steady_clock::now();  // mcps-analyze: allow(SIM1): perf metric fixture
    return t.time_since_epoch().count();
}

unsigned lottery() {
    // mcps-analyze: allow(SIM1): fixture exercises preceding-line marker
    std::mt19937 gen{12345u};
    return gen();
}
