// CONC1 fixture (1 of 2): one half of a cross-file lock-order cycle.
// Scanned together with conc1_cycle_b.cpp, the declared DAG must be
// rejected. Never compiled.
#include <mutex>

MCPS_LOCK_ORDER(Alpha::a_mu_, Beta::b_mu_);

class Alpha {
public:
    std::mutex a_mu_;
};
