// SIM1 fixture: file-level waiver. A single allow-file marker anywhere
// in the file suppresses every SIM1 finding in it (all still counted).
//
// mcps-analyze: allow-file(SIM1): benchmark harness fixture

#include <chrono>
#include <cstdlib>

double wall_seconds() {
    const auto t = std::chrono::high_resolution_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int jitter() { return std::rand() % 10; }
