// SIM1 fixture: a file that talks ABOUT banned constructs without using
// them. The scanner strips comments and string literals before
// matching, and requires identifier boundaries, so nothing below may
// be flagged.
//
// Banned in sim code: rand(), srand(), std::random_device, mt19937,
// system_clock, steady_clock, time(nullptr).

#include <string>

/* Block comments are stripped too: gettimeofday, clock_gettime. */

std::string help_text() {
    return "never call rand() or srand(); steady_clock and mt19937 are "
           "banned in deterministic code";
}

// Identifier boundaries: these contain banned needles as substrings but
// are legitimate identifiers of their own.
int my_rand(int x) { return x; }
int strand(int x) { return my_rand(x); }
struct operand_t {
    int operand(int v) { return v; }
};
