// CONC1 fixture: seeded defects — a lexically nested acquisition with
// no declared MCPS_LOCK_ORDER edge, and a re-acquisition of an
// already-held mutex key (self-deadlock). Never compiled.
#include <mutex>

class PairLocks {
public:
    void cross() {
        std::lock_guard<std::mutex> a{left_};
        std::lock_guard<std::mutex> b{right_};  // seeded: undeclared edge
    }

    void twice() {
        std::lock_guard<std::mutex> a{left_};
        std::lock_guard<std::mutex> b{left_};  // seeded: self-deadlock
    }

private:
    std::mutex left_;
    std::mutex right_;
};
