// CONC1 fixture (2 of 2): closes the cycle declared in
// conc1_cycle_a.cpp. Never compiled.
#include <mutex>

MCPS_LOCK_ORDER(Beta::b_mu_, Alpha::a_mu_);

class Beta {
public:
    std::mutex b_mu_;
};
