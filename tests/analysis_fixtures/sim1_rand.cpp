// SIM1 fixture: raw C RNG. Never compiled; scanned by the analysis
// tests, which assert both constructs below are flagged.

#include <cstdlib>

int roll_dice() {
    std::srand(42);
    return std::rand() % 6 + 1;
}
