// ICE1 fixture: a scenario consumer hand-assembling the raw config
// structs instead of resolving a ScenarioSpec through the registry.
// The tests assert both types are flagged. Never compiled.

#include "core/pca_scenario.hpp"
#include "core/xray_scenario.hpp"

double bypassing_bench() {
    mcps::core::PcaScenarioConfig cfg;
    cfg.seed = 7;
    auto result = mcps::core::run_pca_scenario(cfg);

    mcps::core::XrayScenarioConfig xcfg;
    xcfg.procedures = 20;
    auto xresult = mcps::core::run_xray_scenario(xcfg);
    return result.min_spo2 + xresult.sharp_rate;
}
