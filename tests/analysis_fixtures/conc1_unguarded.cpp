// CONC1 fixture: seeded defect — a guarded field written outside any
// scope of its declared guard. The scan must flag racy_add and leave
// secure_add alone. Never compiled.
#include <mutex>

class Tally {
public:
    void secure_add(int v) {
        std::lock_guard<std::mutex> lock{mu_};
        total_ += v;
    }

    void racy_add(int v) {
        total_ += v;  // seeded defect: no lock held
    }

private:
    std::mutex mu_;
    int total_ MCPS_GUARDED_BY(mu_) = 0;
};
