/// \file test_analysis_scenario_scan.cpp
/// \brief Seeded-defect fixtures for the ICE1 registry-bypass scan
/// (scenario_scan.hpp).
///
/// The fixture files live under tests/analysis_fixtures/ next to the
/// SIM1 ones — but tests/ is itself a sanctioned layer (unit tests
/// exercise the raw harnesses on purpose), so the fixtures are copied
/// into a temp directory before scanning; scanning them in place must
/// yield nothing, and one test asserts exactly that.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "analysis/analysis.hpp"

#ifndef MCPS_ANALYSIS_FIXTURE_DIR
#error "MCPS_ANALYSIS_FIXTURE_DIR must be defined by the build"
#endif

namespace {

using namespace mcps;
using analysis::Finding;
using analysis::RuleId;

const std::filesystem::path kFixtures{MCPS_ANALYSIS_FIXTURE_DIR};

/// Copy one fixture out of the sanctioned tests/ tree so the scan
/// actually runs on it.
std::filesystem::path staged(const std::string& name) {
    const auto dir =
        std::filesystem::temp_directory_path() / "mcps_ice1_fixtures";
    std::filesystem::create_directories(dir);
    const auto dst = dir / name;
    std::filesystem::copy_file(
        kFixtures / name, dst,
        std::filesystem::copy_options::overwrite_existing);
    return dst;
}

std::filesystem::path write_temp(const std::string& name,
                                 const std::string& content) {
    const auto dir =
        std::filesystem::temp_directory_path() / "mcps_ice1_fixtures";
    std::filesystem::create_directories(dir);
    const auto dst = dir / name;
    std::ofstream{dst} << content;
    return dst;
}

bool has_entity(const std::vector<Finding>& fs, const std::string& entity) {
    return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
        return f.rule == RuleId::kICE1 && f.entity == entity;
    });
}

TEST(AnalysisICE1Scan, FlagsBypassAssemblies) {
    const auto r = analysis::scan_scenario_file(staged("ice1_bypass.cpp"));
    ASSERT_EQ(r.files_scanned, 1u);
    ASSERT_EQ(r.findings.size(), 2u);
    EXPECT_TRUE(has_entity(r.findings, "PcaScenarioConfig"));
    EXPECT_TRUE(has_entity(r.findings, "XrayScenarioConfig"));
    // Findings carry file/line anchors and name the registry entry path.
    EXPECT_GT(r.findings[0].line, 0u);
    EXPECT_NE(r.findings[0].file.find("ice1_bypass.cpp"),
              std::string::npos);
    EXPECT_NE(r.findings[0].message.find("bypasses the scenario registry"),
              std::string::npos);
}

TEST(AnalysisICE1Scan, CommentsAndStringsDoNotTrigger) {
    const auto r = analysis::scan_scenario_file(staged("ice1_clean.cpp"));
    EXPECT_EQ(r.files_scanned, 1u);
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.suppressed, 0u);
}

TEST(AnalysisICE1Scan, InlineAllowSuppresses) {
    const auto r =
        analysis::scan_scenario_file(staged("ice1_suppressed.cpp"));
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.suppressed, 2u);  // same-line + preceding-line markers
}

TEST(AnalysisICE1Scan, AllowFileSuppressesWholeFile) {
    const auto r =
        analysis::scan_scenario_file(staged("ice1_allow_file.cpp"));
    EXPECT_TRUE(r.findings.empty());
    EXPECT_GE(r.suppressed, 2u);
}

TEST(AnalysisICE1Scan, IdentifierBoundariesRespected) {
    const auto f = write_temp("ice1_boundaries.cpp",
                              "struct MyPcaScenarioConfigLike {};\n"
                              "int XrayScenarioConfig2 = 0;\n"
                              "core::PcaScenarioConfig real;\n");
    const auto r = analysis::scan_scenario_file(f);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].entity, "PcaScenarioConfig");
    EXPECT_EQ(r.findings[0].line, 3u);
}

TEST(AnalysisICE1Scan, SanctionedLayersAreExempt) {
    // The fixture in place (under tests/) is sanctioned — the temp
    // staging above is what makes the other tests bite.
    const auto in_place =
        analysis::scan_scenario_file(kFixtures / "ice1_bypass.cpp");
    EXPECT_EQ(in_place.files_scanned, 0u);
    EXPECT_TRUE(in_place.findings.empty());

    EXPECT_TRUE(analysis::is_scenario_sanctioned("src/core/pca_scenario.hpp"));
    EXPECT_TRUE(analysis::is_scenario_sanctioned(
        "/abs/repo/src/scenario/registry.cpp"));
    EXPECT_TRUE(analysis::is_scenario_sanctioned(
        "src/testkit/scenario_gen.hpp"));
    EXPECT_FALSE(analysis::is_scenario_sanctioned("bench/bench_e1.cpp"));
    EXPECT_FALSE(analysis::is_scenario_sanctioned("tools/mcps_trace.cpp"));
}

TEST(AnalysisICE1Scan, ShippedConsumersAreClean) {
    // The same gate CI runs: every scenario consumer in the repo goes
    // through the registry (or carries an explicit allow marker).
    const std::filesystem::path repo =
        std::filesystem::weakly_canonical(kFixtures).parent_path()
            .parent_path();
    std::size_t scanned = 0;
    for (const char* sub : {"src", "bench", "tools", "examples"}) {
        ASSERT_TRUE(std::filesystem::exists(repo / sub)) << sub;
        const auto r = analysis::scan_scenario_tree(repo / sub);
        EXPECT_TRUE(r.findings.empty())
            << sub << ": " << r.findings.size() << " finding(s), first: "
            << r.findings.front().to_string();
        scanned += r.files_scanned;
    }
    EXPECT_GT(scanned, 30u);
}

TEST(AnalysisICE1Scan, AnalyzerAbsorbsScenarioScan) {
    analysis::Analyzer a;
    a.scan_scenario_assembly(staged("ice1_bypass.cpp").string());
    EXPECT_FALSE(a.report().clean());
    EXPECT_EQ(a.report().errors(), 2u);
    ASSERT_EQ(a.report().analyzed.size(), 1u);
    EXPECT_EQ(a.report().analyzed[0].rfind("scenario:", 0), 0u);
}

}  // namespace
