/// \file test_analysis_sarif.cpp
/// \brief SARIF 2.1.0 writer/validator round trip plus rejection of the
/// structural defects the CI smoke is meant to catch.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/analysis.hpp"

namespace {

using namespace mcps;
using analysis::Finding;
using analysis::RuleId;

analysis::AnalysisReport sample_report() {
    analysis::AnalysisReport rep;
    rep.analyzed.push_back("unit-test");

    Finding a;
    a.rule = RuleId::kCONC1;
    a.severity = analysis::FindingSeverity::kError;
    a.entity = "Tally::racy_add";
    a.file = "tests/analysis_fixtures/conc1_unguarded.cpp";
    a.line = 14;
    a.message = "field touched outside its lock scope";
    rep.findings.push_back(a);

    Finding b;  // no file anchor: must still export legally
    b.rule = RuleId::kTA5;
    b.severity = analysis::FindingSeverity::kWarning;
    b.entity = "preset pca";
    b.message = "quantile bound note with \"quotes\" and \\backslash";
    rep.findings.push_back(b);
    return rep;
}

TEST(AnalysisSarif, WriterOutputValidates) {
    std::ostringstream out;
    analysis::write_sarif(sample_report(), out);
    const std::string text = out.str();
    std::string err;
    EXPECT_TRUE(analysis::validate_sarif_minimal(text, err)) << err;
    EXPECT_NE(text.find("\"2.1.0\""), std::string::npos);
    EXPECT_NE(text.find("CONC1"), std::string::npos);
    EXPECT_NE(text.find("conc1_unguarded.cpp"), std::string::npos);
}

TEST(AnalysisSarif, EmptyReportValidates) {
    std::ostringstream out;
    analysis::write_sarif({}, out);
    std::string err;
    EXPECT_TRUE(analysis::validate_sarif_minimal(out.str(), err)) << err;
}

TEST(AnalysisSarif, RejectsWrongVersion) {
    std::ostringstream out;
    analysis::write_sarif({}, out);
    std::string text = out.str();
    const auto pos = text.find("\"2.1.0\"");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 7, "\"9.9.9\"");
    std::string err;
    EXPECT_FALSE(analysis::validate_sarif_minimal(text, err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(AnalysisSarif, RejectsUnknownRuleId) {
    std::ostringstream out;
    analysis::write_sarif(sample_report(), out);
    std::string text = out.str();
    // Break the first result's ruleId, leaving the catalog intact.
    const auto results = text.find("\"results\"");
    ASSERT_NE(results, std::string::npos);
    const auto pos = text.find("\"CONC1\"", results);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 7, "\"NOPE9\"");
    std::string err;
    EXPECT_FALSE(analysis::validate_sarif_minimal(text, err));
    EXPECT_NE(err.find("ruleId"), std::string::npos) << err;
}

TEST(AnalysisSarif, RejectsIllegalLevel) {
    std::ostringstream out;
    analysis::write_sarif(sample_report(), out);
    std::string text = out.str();
    const auto pos = text.find("\"error\"");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 7, "\"fatal\"");
    std::string err;
    EXPECT_FALSE(analysis::validate_sarif_minimal(text, err));
    EXPECT_NE(err.find("level"), std::string::npos) << err;
}

TEST(AnalysisSarif, RejectsZeroStartLine) {
    std::ostringstream out;
    analysis::write_sarif(sample_report(), out);
    std::string text = out.str();
    const auto pos = text.find("\"startLine\": 14");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 15, "\"startLine\": 0 ");
    std::string err;
    EXPECT_FALSE(analysis::validate_sarif_minimal(text, err));
    EXPECT_NE(err.find("startLine"), std::string::npos) << err;
}

TEST(AnalysisSarif, RejectsStructurallyEmptyAndGarbage) {
    std::string err;
    EXPECT_FALSE(analysis::validate_sarif_minimal("", err));
    EXPECT_FALSE(analysis::validate_sarif_minimal("not json at all", err));
    EXPECT_FALSE(analysis::validate_sarif_minimal("{}", err));
    EXPECT_FALSE(analysis::validate_sarif_minimal(
        R"({"version": "2.1.0", "runs": []})", err));
    EXPECT_NE(err.find("runs"), std::string::npos) << err;
    EXPECT_FALSE(analysis::validate_sarif_minimal(
        R"({"version": "2.1.0", "runs": [{"tool": {"driver": {}}}]})", err));
}

}  // namespace
