/// \file test_analysis_as_sim.cpp
/// \brief Seeded-defect fixtures for AS1 (hazard coverage) and SIM1
/// (banned-construct scan), plus suppression and JSON report tests.
///
/// SIM1 fixtures live under tests/analysis_fixtures/ — real files with
/// real defects, never compiled, so the scanner is exercised on disk
/// exactly as the CI gate runs it.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "analysis/analysis.hpp"
#include "assurance/assurance.hpp"

#ifndef MCPS_ANALYSIS_FIXTURE_DIR
#error "MCPS_ANALYSIS_FIXTURE_DIR must be defined by the build"
#endif

namespace {

using namespace mcps;
using analysis::Finding;
using analysis::RuleId;

const std::filesystem::path kFixtures{MCPS_ANALYSIS_FIXTURE_DIR};

bool has_message(const std::vector<Finding>& fs, RuleId r,
                 const std::string& needle) {
    return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
        return f.rule == r && f.message.find(needle) != std::string::npos;
    });
}

// -------------------------------------------------------------- AS1 ----

TEST(AnalysisAS1, FlagsUncoveredHazard) {
    assurance::HazardLog log;
    assurance::Hazard h;
    h.id = "H9";
    h.description = "Unmitigated hazard";
    log.add(h);

    const auto cov = analysis::lint_hazard_coverage(log);
    ASSERT_EQ(cov.findings.size(), 1u);
    EXPECT_EQ(cov.findings[0].rule, RuleId::kAS1);
    EXPECT_EQ(cov.findings[0].severity, analysis::FindingSeverity::kError);
    EXPECT_TRUE(has_message(cov.findings, RuleId::kAS1, "uncovered risk"));
    ASSERT_EQ(cov.rows.size(), 1u);
    EXPECT_FALSE(cov.rows[0].covered());
}

TEST(AnalysisAS1, MitigationWithoutMechanismIsWarned) {
    assurance::HazardLog log;
    assurance::Hazard h;
    h.id = "H9";
    h.description = "Wishful mitigation";
    h.mitigations.push_back({"someone should handle this",
                             assurance::Likelihood::kRemote, ""});
    log.add(h);

    const auto cov = analysis::lint_hazard_coverage(log);
    // The empty implemented_by draws a warning AND the hazard stays
    // uncovered (an unimplemented mitigation covers nothing).
    EXPECT_TRUE(
        has_message(cov.findings, RuleId::kAS1, "no implementing mechanism"));
    EXPECT_TRUE(has_message(cov.findings, RuleId::kAS1, "uncovered risk"));
}

TEST(AnalysisAS1, GsnGoalCoversHazardById) {
    assurance::HazardLog log;
    assurance::Hazard h;
    h.id = "H9";
    h.description = "Argued hazard";
    log.add(h);

    assurance::AssuranceCase ac{"case"};
    ac.add_goal("G1", "Hazard H9 is controlled by design");

    const auto cov = analysis::lint_hazard_coverage(log, &ac);
    EXPECT_TRUE(cov.findings.empty());
    ASSERT_EQ(cov.rows.size(), 1u);
    ASSERT_EQ(cov.rows[0].gsn_nodes.size(), 1u);
    EXPECT_EQ(cov.rows[0].gsn_nodes[0], "G1");
}

TEST(AnalysisAS1, IdMatchRespectsTokenBoundaries) {
    // A goal about H10 must not cover H1.
    assurance::HazardLog log;
    assurance::Hazard h;
    h.id = "H1";
    h.description = "Needs its own goal";
    log.add(h);

    assurance::AssuranceCase ac{"case"};
    ac.add_goal("G1", "Hazard H10 is controlled");

    const auto cov = analysis::lint_hazard_coverage(log, &ac);
    EXPECT_TRUE(has_message(cov.findings, RuleId::kAS1, "uncovered risk"));
}

TEST(AnalysisAS1, ShippedHazardLogIsFullyCovered) {
    const auto log = assurance::build_gpca_hazard_log();
    const auto gsn = assurance::build_gpca_case_skeleton();
    const auto cov = analysis::lint_hazard_coverage(log, &gsn);
    EXPECT_TRUE(cov.findings.empty());
    for (const auto& row : cov.rows) {
        EXPECT_TRUE(row.covered()) << row.hazard_id;
    }
    // The matrix must enumerate every hazard.
    EXPECT_EQ(cov.rows.size(), log.count());
    EXPECT_NE(cov.to_text().find("H1"), std::string::npos);
}

// ------------------------------------------------------------- SIM1 ----

TEST(AnalysisSIM1, FlagsRawRand) {
    const auto r =
        analysis::scan_source_file(kFixtures / "sim1_rand.cpp");
    ASSERT_EQ(r.files_scanned, 1u);
    EXPECT_TRUE(has_message(r.findings, RuleId::kSIM1, "raw rand()"));
    EXPECT_TRUE(has_message(r.findings, RuleId::kSIM1, "srand()"));
    // Findings carry file/line anchors.
    ASSERT_FALSE(r.findings.empty());
    EXPECT_GT(r.findings[0].line, 0u);
    EXPECT_NE(r.findings[0].file.find("sim1_rand.cpp"), std::string::npos);
}

TEST(AnalysisSIM1, FlagsWallClock) {
    const auto r =
        analysis::scan_source_file(kFixtures / "sim1_wallclock.cpp");
    EXPECT_GE(r.findings.size(), 2u);
    EXPECT_TRUE(has_message(r.findings, RuleId::kSIM1, "wall-clock"));
}

TEST(AnalysisSIM1, FlagsUnseededRng) {
    const auto r =
        analysis::scan_source_file(kFixtures / "sim1_unseeded_rng.cpp");
    EXPECT_TRUE(has_message(r.findings, RuleId::kSIM1, "random_device"));
    EXPECT_TRUE(has_message(r.findings, RuleId::kSIM1, "mt19937"));
}

TEST(AnalysisSIM1, CommentsAndStringsDoNotTrigger) {
    const auto r =
        analysis::scan_source_file(kFixtures / "sim1_clean.cpp");
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.suppressed, 0u);
}

TEST(AnalysisSIM1, InlineAllowSuppresses) {
    const auto r =
        analysis::scan_source_file(kFixtures / "sim1_suppressed.cpp");
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.suppressed, 2u);  // same-line + preceding-line markers
}

TEST(AnalysisSIM1, AllowFileSuppressesWholeFile) {
    const auto r =
        analysis::scan_source_file(kFixtures / "sim1_allow_file.cpp");
    EXPECT_TRUE(r.findings.empty());
    EXPECT_GE(r.suppressed, 2u);
}

TEST(AnalysisSIM1, TreeScanVisitsAllFixtures) {
    const auto r = analysis::scan_source_tree(kFixtures);
    EXPECT_GE(r.files_scanned, 6u);
    EXPECT_FALSE(r.findings.empty());
}

TEST(AnalysisSIM1, ShippedSourceTreeIsClean) {
    // The same gate the CI script runs: src/ must scan clean.
    const std::filesystem::path src =
        std::filesystem::weakly_canonical(kFixtures).parent_path()
            .parent_path() / "src";
    ASSERT_TRUE(std::filesystem::exists(src));
    const auto r = analysis::scan_source_tree(src);
    EXPECT_TRUE(r.findings.empty())
        << r.findings.size() << " finding(s), first: "
        << r.findings.front().to_string();
    EXPECT_GT(r.files_scanned, 100u);
}

// ----------------------------------------------- suppressions & JSON ----

TEST(AnalysisSuppression, ParseListRejectsUnknownRules) {
    analysis::SuppressionSet s;
    EXPECT_FALSE(s.parse_list("TA1,nope"));
    EXPECT_EQ(s.size(), 0u);  // unchanged on failure
    EXPECT_TRUE(s.parse_list("ta1, SIM1"));
    EXPECT_TRUE(s.is_suppressed(RuleId::kTA1));
    EXPECT_TRUE(s.is_suppressed(RuleId::kSIM1));
    EXPECT_FALSE(s.is_suppressed(RuleId::kTA2));
}

TEST(AnalysisSuppression, AnalyzerCountsSuppressedFindings) {
    analysis::SuppressionSet s;
    ASSERT_TRUE(s.parse_list("SIM1"));
    analysis::Analyzer a{s};
    a.scan_sources((kFixtures / "sim1_rand.cpp").string());
    EXPECT_TRUE(a.report().clean());
    EXPECT_GT(a.report().suppressed_findings, 0u);
}

TEST(AnalysisReport, JsonReportIsWellFormed) {
    analysis::Analyzer a;
    a.scan_sources((kFixtures / "sim1_rand.cpp").string());
    std::ostringstream out;
    a.report().write_json(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"tool\": \"mcps_analyze\""), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"SIM1\""), std::string::npos);
    EXPECT_NE(json.find("\"line\": "), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness probe).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(AnalysisReport, RuleCatalogIsComplete) {
    EXPECT_EQ(analysis::all_rules().size(), analysis::kNumRules);
    for (analysis::RuleId r : analysis::all_rules()) {
        EXPECT_FALSE(analysis::rule_name(r).empty());
        EXPECT_FALSE(analysis::rule_summary(r).empty());
        analysis::RuleId parsed;
        EXPECT_TRUE(analysis::parse_rule(analysis::rule_name(r), parsed));
        EXPECT_EQ(parsed, r);
    }
}

}  // namespace
