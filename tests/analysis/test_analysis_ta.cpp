/// \file test_analysis_ta.cpp
/// \brief Seeded-defect fixtures for lint rules TA1–TA4, plus the
/// clean-model guarantees: every shipped TA model must lint clean.

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analysis.hpp"
#include "ta/ta.hpp"

namespace {

using namespace mcps;
using analysis::Finding;
using analysis::RuleId;
using analysis::TaLintOptions;
using ta::Constraint;
using ta::TimedAutomaton;

std::size_t count_rule(const std::vector<Finding>& fs, RuleId r) {
    return static_cast<std::size_t>(
        std::count_if(fs.begin(), fs.end(),
                      [r](const Finding& f) { return f.rule == r; }));
}

bool has_message(const std::vector<Finding>& fs, RuleId r,
                 const std::string& needle) {
    return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
        return f.rule == r && f.message.find(needle) != std::string::npos;
    });
}

// ------------------------------------------------------------- TA1 ----

TEST(AnalysisTA1, FlagsUnreachableLocation) {
    TimedAutomaton a{"orphan"};
    a.add_clock("x");
    const auto init = a.add_location("Init");
    a.add_location("Orphan");  // no edge reaches it
    a.set_initial(init);

    const auto fs = analysis::lint_automaton(a);
    ASSERT_EQ(count_rule(fs, RuleId::kTA1), 1u);
    EXPECT_TRUE(has_message(fs, RuleId::kTA1, "unreachable"));
    EXPECT_NE(fs[0].entity.find("Orphan"), std::string::npos);
}

TEST(AnalysisTA1, FlagsDeadTransition) {
    // B is entered only with x >= 10; the B->C edge demands x <= 3 and
    // x is never reset, so the edge is dead (and C unreachable).
    TimedAutomaton a{"deadedge"};
    const auto x = a.add_clock("x");
    const auto ia = a.add_location("A");
    const auto ib = a.add_location("B");
    const auto ic = a.add_location("C");
    a.set_initial(ia);
    a.add_edge(ia, ib, {Constraint::ge(x, 10)}, {}, "arm");
    a.add_edge(ib, ic, {Constraint::le(x, 3)}, {}, "late");

    const auto fs = analysis::lint_automaton(a);
    EXPECT_TRUE(has_message(fs, RuleId::kTA1, "dead edge"));
    EXPECT_TRUE(has_message(fs, RuleId::kTA1, "unreachable"));
}

TEST(AnalysisTA1, ExpectedUnreachableIsExemptButVerified) {
    TimedAutomaton a{"mon"};
    const auto x = a.add_clock("x");
    const auto ok = a.add_location("Ok");
    const auto bad = a.add_location("Violation");
    a.set_initial(ok);
    a.add_edge(ok, bad, {Constraint::ge(x, 5)}, {}, "boom");

    // Not exempted: the reachable bad state is only a TA1 finding when
    // declared expected-unreachable.
    TaLintOptions opts;
    opts.expected_unreachable = {"Violation"};
    const auto fs = analysis::lint_automaton(a, opts);
    ASSERT_EQ(count_rule(fs, RuleId::kTA1), 1u);
    EXPECT_TRUE(has_message(fs, RuleId::kTA1, "IS reachable"));

    // A genuinely unreachable bad state is exempt: clean.
    TimedAutomaton b{"mon2"};
    const auto y = b.add_clock("y");
    const auto good = b.add_location("Ok");
    b.add_location("Violation");
    b.set_initial(good);
    b.add_edge(good, good, {Constraint::ge(y, 1)}, {y}, "tick");
    const auto fs2 = analysis::lint_automaton(b, opts);
    EXPECT_EQ(count_rule(fs2, RuleId::kTA1), 0u);
}

TEST(AnalysisTA1, FlagsChannelWithoutPartner) {
    TimedAutomaton a{"haltsender"};
    a.add_clock("x");
    const auto ia = a.add_location("A");
    const auto ib = a.add_location("B");
    a.set_initial(ia);
    a.add_sync_edge(ia, ib, {}, {}, "halt", ta::SyncKind::kSend);

    const auto fs = analysis::lint_automaton(a);
    EXPECT_TRUE(has_message(fs, RuleId::kTA1, "no receivers"));
}

// ------------------------------------------------------------- TA2 ----

TEST(AnalysisTA2, FlagsOverlappingGuardsOnSameEvent) {
    TimedAutomaton a{"ndet"};
    const auto x = a.add_clock("x");
    const auto ia = a.add_location("A");
    const auto ib = a.add_location("B");
    const auto ic = a.add_location("C");
    a.set_initial(ia);
    a.add_edge(ia, ib, {Constraint::le(x, 5)}, {}, "go");
    a.add_edge(ia, ic, {Constraint::ge(x, 3)}, {}, "go");

    const auto fs = analysis::lint_automaton(a);
    ASSERT_EQ(count_rule(fs, RuleId::kTA2), 1u);
    EXPECT_TRUE(has_message(fs, RuleId::kTA2, "nondeterministic"));
}

TEST(AnalysisTA2, DisjointGuardsAreDeterministic) {
    TimedAutomaton a{"det"};
    const auto x = a.add_clock("x");
    const auto ia = a.add_location("A");
    const auto ib = a.add_location("B");
    const auto ic = a.add_location("C");
    a.set_initial(ia);
    a.add_edge(ia, ib, {Constraint::le(x, 2)}, {}, "go");
    a.add_edge(ia, ic, {Constraint::ge(x, 3)}, {}, "go");

    EXPECT_EQ(count_rule(analysis::lint_automaton(a), RuleId::kTA2), 0u);
}

TEST(AnalysisTA2, DifferentEventsMayOverlap) {
    TimedAutomaton a{"choice"};
    const auto ia = a.add_location("A");
    const auto ib = a.add_location("B");
    const auto ic = a.add_location("C");
    const auto x = a.add_clock("x");
    a.set_initial(ia);
    a.add_edge(ia, ib, {Constraint::ge(x, 1), Constraint::le(x, 9)}, {x},
               "left");
    a.add_edge(ia, ic, {Constraint::ge(x, 1), Constraint::le(x, 9)}, {x},
               "right");

    EXPECT_EQ(count_rule(analysis::lint_automaton(a), RuleId::kTA2), 0u);
}

// ------------------------------------------------------------- TA3 ----

TEST(AnalysisTA3, FlagsZenoSelfLoop) {
    TimedAutomaton a{"zeno"};
    a.add_clock("x");
    const auto ia = a.add_location("Spin");
    a.set_initial(ia);
    a.add_edge(ia, ia, {}, {}, "spin");

    const auto fs = analysis::lint_automaton(a);
    ASSERT_EQ(count_rule(fs, RuleId::kTA3), 1u);
    EXPECT_TRUE(has_message(fs, RuleId::kTA3, "zeno"));
}

TEST(AnalysisTA3, BoundedResetCycleIsClean) {
    // The canonical non-zeno loop: reset x, demand x >= 1 to go round.
    TimedAutomaton a{"ticker"};
    const auto x = a.add_clock("x");
    const auto ia = a.add_location("Tick");
    a.set_initial(ia);
    a.add_edge(ia, ia, {Constraint::ge(x, 1)}, {x}, "tick");

    EXPECT_EQ(count_rule(analysis::lint_automaton(a), RuleId::kTA3), 0u);
}

TEST(AnalysisTA3, ResetWithoutLowerBoundIsFlagged) {
    // x is reset on the cycle but never bounded below: laps can take
    // zero time.
    TimedAutomaton a{"reset_only"};
    const auto x = a.add_clock("x");
    const auto ia = a.add_location("A");
    const auto ib = a.add_location("B");
    a.set_initial(ia);
    a.add_edge(ia, ib, {Constraint::le(x, 10)}, {x}, "fwd");
    a.add_edge(ib, ia, {}, {}, "back");

    EXPECT_EQ(count_rule(analysis::lint_automaton(a), RuleId::kTA3), 1u);
}

// ------------------------------------------------------------- TA4 ----

TEST(AnalysisTA4, FlagsContradictoryGuard) {
    TimedAutomaton a{"contra"};
    const auto x = a.add_clock("x");
    const auto ia = a.add_location("A");
    const auto ib = a.add_location("B");
    a.set_initial(ia);
    a.add_edge(ia, ib, {Constraint::le(x, 2), Constraint::ge(x, 5)}, {},
               "impossible");

    const auto fs = analysis::lint_automaton(a);
    EXPECT_GE(count_rule(fs, RuleId::kTA4), 1u);
    EXPECT_TRUE(has_message(fs, RuleId::kTA4, "never fire"));
}

TEST(AnalysisTA4, FlagsUnsatisfiableInvariant) {
    TimedAutomaton a{"badinv"};
    const auto x = a.add_clock("x");
    const auto ia = a.add_location("A", {Constraint::le(x, -1)});
    a.set_initial(ia);

    const auto fs = analysis::lint_automaton(a);
    EXPECT_TRUE(has_message(fs, RuleId::kTA4, "invariant is contradictory"));
}

TEST(AnalysisTA4, FlagsTargetInvariantUnsatisfiableAfterReset) {
    // Edge resets x then enters a location demanding x >= 5: the zone
    // is empty at entry, so the edge can never complete.
    TimedAutomaton a{"resetcontra"};
    const auto x = a.add_clock("x");
    const auto ia = a.add_location("A");
    const auto ib = a.add_location("B", {Constraint::ge(x, 5)});
    a.set_initial(ia);
    a.add_edge(ia, ib, {}, {x}, "enter");

    const auto fs = analysis::lint_automaton(a);
    EXPECT_TRUE(has_message(fs, RuleId::kTA4, "never complete"));
}

// ---------------------------------------------------- shipped models ----

TEST(AnalysisShippedModels, PumpLockoutLintsClean) {
    TaLintOptions opts;
    opts.expected_unreachable = {"Violation"};
    const auto fs =
        analysis::lint_automaton(ta::build_pump_lockout_model(), opts);
    EXPECT_TRUE(fs.empty()) << fs.size() << " finding(s), first: "
                            << fs.front().to_string();
}

TEST(AnalysisShippedModels, ClosedLoopLintsClean) {
    TaLintOptions opts;
    opts.expected_unreachable = {"Overdue"};
    const auto fs =
        analysis::lint_automaton(ta::build_closed_loop_model(), opts);
    EXPECT_TRUE(fs.empty()) << fs.size() << " finding(s), first: "
                            << fs.front().to_string();
}

TEST(AnalysisShippedModels, PumpFarmLintsClean) {
    TaLintOptions opts;
    opts.expected_unreachable = {"Violation"};
    const auto fs = analysis::lint_automaton(ta::build_pump_farm(2), opts);
    EXPECT_TRUE(fs.empty()) << fs.size() << " finding(s), first: "
                            << fs.front().to_string();
}

TEST(AnalysisShippedModels, FaultyPumpModelIsCaughtByTA1) {
    // The classic firmware defect (re-grant path skips the lockout
    // guard) makes Violation reachable; the linter must say so.
    ta::PumpModelParams p;
    p.faulty_no_lockout_guard = true;
    TaLintOptions opts;
    opts.expected_unreachable = {"Violation"};
    const auto fs =
        analysis::lint_automaton(ta::build_pump_lockout_model(p), opts);
    EXPECT_TRUE(has_message(fs, RuleId::kTA1, "IS reachable"));
}

}  // namespace
