/// \file test_analysis_ice.cpp
/// \brief Seeded-defect fixtures for rule ICE1 (assembly integration)
/// plus the adapter from live ice:: objects.

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analysis.hpp"
#include "core/core.hpp"
#include "devices/devices.hpp"
#include "ice/ice.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using analysis::AppSpec;
using analysis::AssemblySpec;
using analysis::DeviceSpec;
using analysis::Finding;
using analysis::RuleId;
using devices::DeviceKind;

bool has_message(const std::vector<Finding>& fs, const std::string& needle) {
    return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
        return f.rule == RuleId::kICE1 &&
               f.message.find(needle) != std::string::npos;
    });
}

AssemblySpec pca_spec() {
    AssemblySpec spec;
    spec.name = "pca";
    spec.devices = {
        {"pump1", DeviceKind::kInfusionPump, {"remote-stop"}, {"ack/pump1"}},
        {"oxi1", DeviceKind::kPulseOximeter, {"spo2"}, {"vitals/bed1/spo2"}},
    };
    spec.apps = {
        {"interlock",
         {{DeviceKind::kInfusionPump, {"remote-stop"}, "pump"},
          {DeviceKind::kPulseOximeter, {"spo2"}, "oximeter"}},
         {"vitals/bed1/*", "ack/pump1"}},
    };
    return spec;
}

TEST(AnalysisICE1, CleanAssemblyHasNoFindings) {
    EXPECT_TRUE(analysis::lint_assembly(pca_spec()).empty());
}

TEST(AnalysisICE1, FlagsMissingDevice) {
    AssemblySpec spec = pca_spec();
    spec.devices.erase(spec.devices.begin());  // remove the pump

    const auto fs = analysis::lint_assembly(spec);
    ASSERT_FALSE(fs.empty());
    EXPECT_TRUE(has_message(fs, "satisfied by no registered device"));
    // The pump's ack input is also orphaned now.
    EXPECT_TRUE(has_message(fs, "produced by no device"));
}

TEST(AnalysisICE1, FlagsMissingCapability) {
    AssemblySpec spec = pca_spec();
    spec.devices[0].capabilities = {"bolus"};  // pump lost remote-stop

    const auto fs = analysis::lint_assembly(spec);
    EXPECT_TRUE(has_message(fs, "satisfied by no registered device"));
}

TEST(AnalysisICE1, FlagsSlotContention) {
    // Two slots both need the single registered pump.
    AssemblySpec spec = pca_spec();
    spec.apps[0].requirements.push_back(
        {DeviceKind::kInfusionPump, {"remote-stop"}, "backup-pump"});

    const auto fs = analysis::lint_assembly(spec);
    EXPECT_TRUE(has_message(fs, "already consumed"));
}

TEST(AnalysisICE1, FlagsOrphanInputTopic) {
    AssemblySpec spec = pca_spec();
    spec.apps[0].inputs.push_back("vitals/bed1/etco2");  // no capnometer

    const auto fs = analysis::lint_assembly(spec);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_TRUE(has_message(fs, "produced by no device"));
    EXPECT_NE(fs[0].message.find("etco2"), std::string::npos);
}

TEST(AnalysisICE1, WildcardInputMatchesConcretePublication) {
    // "vitals/bed1/*" (input) must be satisfied by the oximeter's
    // concrete "vitals/bed1/spo2" publication — pattern/pattern
    // intersection works both ways.
    AssemblySpec spec = pca_spec();
    ASSERT_EQ(spec.apps[0].inputs[0], "vitals/bed1/*");
    EXPECT_TRUE(analysis::lint_assembly(spec).empty());
}

TEST(AnalysisICE1, FlagsDuplicateDeviceName) {
    AssemblySpec spec = pca_spec();
    spec.devices.push_back(spec.devices[0]);

    const auto fs = analysis::lint_assembly(spec);
    EXPECT_TRUE(has_message(fs, "duplicate device name"));
}

TEST(AnalysisICE1, AdapterDerivesSlotsFromLiveRegistry) {
    // Build the real thing — registry and app — and derive the spec.
    sim::Simulation simulation{7};
    sim::TraceRecorder trace;
    net::Bus bus{simulation, net::ChannelParameters{}};
    physio::Patient patient{
        physio::nominal_parameters(physio::Archetype::kTypicalAdult)};
    devices::DeviceContext ctx{simulation, bus, trace};

    devices::GpcaPump pump{ctx, "pump1", patient, devices::Prescription{}};
    devices::PulseOximeter oxi{ctx, "oxi1", patient};
    ice::DeviceRegistry registry;
    registry.add(pump);
    registry.add(oxi);

    core::PcaInterlock app{ctx, "interlock", [] {
                               core::InterlockConfig cfg;
                               cfg.mode = core::InterlockMode::kSpO2Only;
                               return cfg;
                           }()};

    AssemblySpec spec =
        analysis::make_assembly_spec("live", registry, {&app});
    ASSERT_EQ(spec.devices.size(), 2u);
    ASSERT_EQ(spec.apps.size(), 1u);
    EXPECT_EQ(spec.apps[0].requirements.size(), 2u);
    // Slots resolve against the live capabilities; no topic contracts
    // were added, so ICE1 checks only the slot side — clean.
    EXPECT_TRUE(analysis::lint_assembly(spec).empty());

    // Dual-sensor mode needs a capnometer the bedside lacks.
    core::PcaInterlock dual{ctx, "dual", core::InterlockConfig{}};
    AssemblySpec spec2 =
        analysis::make_assembly_spec("live2", registry, {&dual});
    EXPECT_TRUE(has_message(analysis::lint_assembly(spec2),
                            "satisfied by no registered device"));
}

}  // namespace
