/// \file test_analysis_conc.cpp
/// \brief Seeded-defect fixtures for CONC1 (lock-discipline lint):
/// unguarded field touches, undeclared/reversed/self lock nesting,
/// cross-file lock-order cycles, waivers, and the CFG1 missing-root
/// contract of Analyzer::scan_concurrency.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "analysis/analysis.hpp"

#ifndef MCPS_ANALYSIS_FIXTURE_DIR
#error "MCPS_ANALYSIS_FIXTURE_DIR must be defined by the build"
#endif

namespace {

using namespace mcps;
using analysis::Finding;
using analysis::RuleId;

const std::filesystem::path kFixtures{MCPS_ANALYSIS_FIXTURE_DIR};

bool has_message(const std::vector<Finding>& fs, RuleId r,
                 const std::string& needle) {
    return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
        return f.rule == r && f.message.find(needle) != std::string::npos;
    });
}

TEST(AnalysisConc, CleanFixtureHasNoFindings) {
    const auto res =
        analysis::scan_concurrency({kFixtures / "conc1_clean.cpp"});
    EXPECT_EQ(res.files_scanned, 1u);
    EXPECT_TRUE(res.findings.empty())
        << (res.findings.empty() ? "" : res.findings[0].message);
    EXPECT_EQ(res.suppressed, 0u);
}

TEST(AnalysisConc, UnguardedFieldWriteIsFlagged) {
    const auto res =
        analysis::scan_concurrency({kFixtures / "conc1_unguarded.cpp"});
    ASSERT_EQ(res.findings.size(), 1u);
    EXPECT_EQ(res.findings[0].rule, RuleId::kCONC1);
    EXPECT_EQ(res.findings[0].severity, analysis::FindingSeverity::kError);
    EXPECT_TRUE(
        has_message(res.findings, RuleId::kCONC1, "touched outside any"));
    // The locked path must not be flagged: exactly the seeded defect.
    EXPECT_EQ(res.findings[0].entity, "Tally::racy_add");
}

TEST(AnalysisConc, UndeclaredNestingAndSelfDeadlockAreFlagged) {
    const auto res = analysis::scan_concurrency(
        {kFixtures / "conc1_undeclared_nesting.cpp"});
    EXPECT_EQ(res.findings.size(), 2u);
    EXPECT_TRUE(
        has_message(res.findings, RuleId::kCONC1, "undeclared lock nesting"));
    EXPECT_TRUE(has_message(res.findings, RuleId::kCONC1, "self-deadlock"));
}

TEST(AnalysisConc, DeclaredOrderTakenInReverseIsFlagged) {
    const auto res =
        analysis::scan_concurrency({kFixtures / "conc1_order_violation.cpp"});
    ASSERT_EQ(res.findings.size(), 1u);
    EXPECT_TRUE(
        has_message(res.findings, RuleId::kCONC1, "lock-order violation"));
    EXPECT_EQ(res.findings[0].entity, "Account::audit_then_post");
}

TEST(AnalysisConc, CrossFileEdgeCycleIsFlagged) {
    // Each half is clean alone; the cycle only exists over the union —
    // exactly why scan_concurrency takes all roots as one unit.
    const auto alone =
        analysis::scan_concurrency({kFixtures / "conc1_cycle_a.cpp"});
    EXPECT_TRUE(alone.findings.empty());

    const auto both = analysis::scan_concurrency(
        {kFixtures / "conc1_cycle_a.cpp", kFixtures / "conc1_cycle_b.cpp"});
    ASSERT_FALSE(both.findings.empty());
    EXPECT_TRUE(has_message(both.findings, RuleId::kCONC1, "form a cycle"));
    EXPECT_EQ(both.findings[0].entity, "lock-order");
}

TEST(AnalysisConc, InlineWaiverSuppresses) {
    const auto res =
        analysis::scan_concurrency({kFixtures / "conc1_suppressed.cpp"});
    EXPECT_TRUE(res.findings.empty())
        << (res.findings.empty() ? "" : res.findings[0].message);
    EXPECT_EQ(res.suppressed, 1u);
}

TEST(AnalysisConc, ShippedTreeIsClean) {
    // The annotated production tree (satellite 1) must hold its own
    // discipline: src + tools scan clean, with the one audited waiver
    // (ThreadPool::steals) counted as suppressed.
    const auto root = std::filesystem::weakly_canonical(kFixtures)
                          .parent_path()
                          .parent_path();
    const auto res = analysis::scan_concurrency(
        {root / "src", root / "tools"});
    EXPECT_GT(res.files_scanned, 50u);
    EXPECT_TRUE(res.findings.empty())
        << (res.findings.empty() ? "" : res.findings[0].message);
    EXPECT_GE(res.suppressed, 1u);
}

TEST(AnalysisConc, AnalyzerTurnsMissingRootIntoCfg1) {
    analysis::Analyzer an;
    an.scan_concurrency({kFixtures / "does_not_exist_anywhere"});
    const auto& fs = an.report().findings;
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, RuleId::kCFG1);
    EXPECT_EQ(fs[0].severity, analysis::FindingSeverity::kError);
    EXPECT_TRUE(
        has_message(fs, RuleId::kCFG1, "scan root does not exist"));
    EXPECT_FALSE(an.report().clean());
}

TEST(AnalysisConc, AnalyzerScansPresentRootsDespiteMissingOne) {
    // One bad root must not silently void the whole scan: the present
    // root is still analyzed and the CFG1 finding rides alongside.
    analysis::Analyzer an;
    an.scan_concurrency({kFixtures / "conc1_unguarded.cpp",
                         kFixtures / "no_such_dir"});
    const auto& fs = an.report().findings;
    EXPECT_TRUE(has_message(fs, RuleId::kCFG1, "scan root does not exist"));
    EXPECT_TRUE(has_message(fs, RuleId::kCONC1, "touched outside any"));
}

}  // namespace
