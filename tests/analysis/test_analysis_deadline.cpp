/// \file test_analysis_deadline.cpp
/// \brief TA5 deadline-feasibility tests: the canonical interval bound,
/// feasibility of every shipped preset over its claimed-safe envelope,
/// seeded-infeasible and unbounded models, monotonicity, and the
/// static-vs-observed cross-check.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"

namespace {

using namespace mcps;
using analysis::DeadlineOptions;
using analysis::Finding;
using analysis::PcaTimingModel;
using analysis::RuleId;

/// The shipped pca preset's claimed-safe envelope, written out by hand
/// so the test fails if either the knob envelopes or the model drift.
PcaTimingModel canonical_pca_model() {
    PcaTimingModel m;  // sense 2, persist 10, check 1, stale 12, retry 2
    m.latency_s = {0.0, 0.1};   // latency-ms safe envelope [0, 100]
    m.jitter_s = {0.0, 0.01};   // jitter-ms safe envelope [0, 10]
    m.loss = {0.0, 0.05};       // loss safe envelope [0, 0.05]
    return m;
}

TEST(AnalysisDeadline, CanonicalPcaBoundMatchesHandDerivation) {
    const auto b = analysis::pca_deadline_bound(canonical_pca_model());
    ASSERT_TRUE(b.bounded) << b.why;
    // transit = 0.1 + 4*0.01 = 0.14; detect = max(2+10, 12) + 1 = 13;
    // n_fail = ceil(ln 1e-9 / ln 0.05) = 7, command = 6*2 + 0.14;
    // total = transit + detect + command + ack transit = 25.42.
    EXPECT_NEAR(b.transit_s.hi, 0.14, 1e-9);
    EXPECT_EQ(b.command_tries, 7);
    EXPECT_NEAR(b.detect_s, 13.0, 1e-9);
    EXPECT_NEAR(b.total_s.hi, 25.42, 1e-9);
    // Best case (zero latency/jitter/loss): a single try, no retries.
    EXPECT_NEAR(b.total_s.lo, 13.0, 1e-9);
}

TEST(AnalysisDeadline, AllShippedPresetsAreFeasible) {
    const auto rep = analysis::lint_deadlines();
    ASSERT_EQ(rep.rows.size(), 7u);
    EXPECT_TRUE(rep.findings.empty())
        << (rep.findings.empty() ? "" : rep.findings[0].message);
    for (const auto& row : rep.rows) {
        EXPECT_TRUE(row.feasible) << row.preset << ": " << row.bound.why;
        EXPECT_GT(row.slack_s, 0.0) << row.preset;
    }
    // Disengaged-by-default presets are checked over the engaged
    // envelope and marked as such.
    for (const auto& row : rep.rows) {
        const bool open =
            row.preset == "pca-open" || row.preset == "smart-alarm";
        EXPECT_EQ(row.engaged_default, !open) << row.preset;
    }
    // The slack table renders every preset.
    const std::string table = rep.to_text();
    for (const auto& row : rep.rows) {
        EXPECT_NE(table.find(row.preset), std::string::npos) << row.preset;
    }
}

TEST(AnalysisDeadline, SeededTightDeadlineFiresTa5) {
    // Shrink the x-ray apnea deadline below the watchdog bound
    // (max_pause 30 + slack 3 = 33): both xray presets must turn
    // infeasible and produce TA5 error findings.
    DeadlineOptions o;
    o.xray_apnea_deadline_s = 10.0;
    const auto rep = analysis::lint_deadlines(o);
    std::size_t infeasible = 0;
    for (const auto& row : rep.rows) {
        if (row.family == "xray") {
            EXPECT_FALSE(row.feasible) << row.preset;
            EXPECT_LT(row.slack_s, 0.0) << row.preset;
            ++infeasible;
        } else {
            EXPECT_TRUE(row.feasible) << row.preset;
        }
    }
    EXPECT_EQ(infeasible, 2u);
    std::size_t ta5 = 0;
    for (const auto& f : rep.findings) {
        EXPECT_EQ(f.rule, RuleId::kTA5);
        EXPECT_EQ(f.severity, analysis::FindingSeverity::kError);
        ++ta5;
    }
    EXPECT_EQ(ta5, 2u);
}

TEST(AnalysisDeadline, WeakenedSupervisionMissesTheDeadline) {
    // A deliberately sluggish supervisor: persistence and retry values a
    // misconfigured deployment could plausibly pick. The interval bound
    // must exceed the 180 s interlock deadline.
    auto m = canonical_pca_model();
    m.persistence_s = 240.0;
    m.staleness_limit_s = 600.0;
    m.command_retry_s = 30.0;
    const auto b = analysis::pca_deadline_bound(m);
    ASSERT_TRUE(b.bounded) << b.why;
    EXPECT_GT(b.total_s.hi, 180.0);
}

TEST(AnalysisDeadline, FailOperationalWithLossIsUnbounded) {
    auto m = canonical_pca_model();
    m.fail_safe = false;
    const auto b = analysis::pca_deadline_bound(m);
    EXPECT_FALSE(b.bounded);
    EXPECT_NE(b.why.find("fail-operational"), std::string::npos) << b.why;
}

TEST(AnalysisDeadline, InterlockOffInEnvelopeIsUnbounded) {
    auto m = canonical_pca_model();
    m.interlock_off_claimed_safe = true;
    const auto b = analysis::pca_deadline_bound(m);
    EXPECT_FALSE(b.bounded);
    EXPECT_NE(b.why.find("interlock=off"), std::string::npos) << b.why;
}

TEST(AnalysisDeadline, CertainLossIsUnbounded) {
    auto m = canonical_pca_model();
    m.loss = {0.0, 1.0};
    const auto b = analysis::pca_deadline_bound(m);
    EXPECT_FALSE(b.bounded);
}

TEST(AnalysisDeadline, BoundIsMonotoneInLossAndLatency) {
    auto lo = canonical_pca_model();
    lo.loss = {0.0, 0.01};
    lo.latency_s = {0.0, 0.02};
    const auto a = analysis::pca_deadline_bound(lo);
    const auto b = analysis::pca_deadline_bound(canonical_pca_model());
    ASSERT_TRUE(a.bounded);
    ASSERT_TRUE(b.bounded);
    EXPECT_LE(a.total_s.hi, b.total_s.hi);
}

TEST(AnalysisDeadline, CrossCheckObservedWithinStaticBound) {
    const auto cc = analysis::cross_check_deadlines();
    EXPECT_TRUE(cc.pass) << (cc.findings.empty() ? std::string{"no finding"}
                                                 : cc.findings[0].message);
    EXPECT_TRUE(cc.findings.empty());
    // The canonical pca run must actually exhibit a stop episode, or the
    // cross-check proves nothing.
    EXPECT_GT(cc.pca_observed_s, 0.0);
    EXPECT_LE(cc.pca_observed_s, cc.pca_bound_s);
    EXPECT_GT(cc.xray_observed_s, 0.0);
    EXPECT_LE(cc.xray_observed_s, cc.xray_bound_s);
    EXPECT_NEAR(cc.pca_bound_s, 25.42, 1e-9);
    EXPECT_NEAR(cc.xray_bound_s, 33.0, 1e-9);
}

// ------------------------------------------------ hospital family ----

analysis::HospitalTimingModel canonical_hospital_model() {
    analysis::HospitalTimingModel m;  // tick 1, monitor [2,2], 100/ward,
    return m;                         // 4 nurses, 120s service, 4/h
}

TEST(AnalysisDeadline, HospitalLocalBoundMatchesHandDerivation) {
    analysis::HospitalTimingModel m = canonical_hospital_model();
    m.monitor_period_s = {0.5, 10.0};  // the registry's safe envelope
    const auto b = analysis::hospital_deadline_bound(m);
    ASSERT_TRUE(b.bounded) << b.why;
    // Pump-local path: monitor staleness + one engine tick.
    EXPECT_NEAR(b.total_s.lo, 0.5 + 1.0, 1e-9);
    EXPECT_NEAR(b.total_s.hi, 10.0 + 1.0, 1e-9);
    EXPECT_NEAR(b.detect_s, 11.0, 1e-9);
}

TEST(AnalysisDeadline, HospitalInterlockOffClaimedSafeIsUnbounded) {
    analysis::HospitalTimingModel m = canonical_hospital_model();
    m.interlock_off_claimed_safe = true;
    const auto b = analysis::hospital_deadline_bound(m);
    EXPECT_FALSE(b.bounded);
    EXPECT_NE(b.why.find("no "), std::string::npos);
}

// The seeded defect the TA5 pass exists to catch: a central interlock
// claimed safe over a nurse pool whose expected alarm load exceeds its
// service capacity. The queue never drains, so no reaction bound exists.
TEST(AnalysisDeadline, HospitalNursePoolExhaustionIsUnbounded) {
    analysis::HospitalTimingModel m = canonical_hospital_model();
    m.central_claimed_safe = true;
    m.nurses = 1.0;                          // skeleton night shift
    m.alarm_rate_per_patient_hour = {4, 40};  // storm-grade alarm load
    // rho = 100 * 40/3600 * 120 / 1 = 133.3 >> 1.
    const auto b = analysis::hospital_deadline_bound(m);
    EXPECT_FALSE(b.bounded);
    EXPECT_NE(b.why.find("nurse-pool exhaustion"), std::string::npos)
        << b.why;
}

TEST(AnalysisDeadline, HospitalStableCentralPoolHasBurstBound) {
    analysis::HospitalTimingModel m = canonical_hospital_model();
    m.central_claimed_safe = true;
    // rho = 100 * 4/3600 * 120 / 4 = 3.33 >= 1: the default pool cannot
    // absorb central routing. Quadruple it to get under utilization 1.
    m.nurses = 16.0;
    const auto b = analysis::hospital_deadline_bound(m);
    ASSERT_TRUE(b.bounded) << b.why;
    // central hi = monitor 2 + bus 1024/64 + ceil(100/16)*120 + tick 1
    //            = 2 + 16 + 840 + 1 = 859.
    EXPECT_NEAR(b.total_s.hi, 859.0, 1e-9);
    EXPECT_NEAR(b.transit_s.hi, 16.0, 1e-9);
    // The local leg still sets the floor.
    EXPECT_NEAR(b.total_s.lo, 3.0, 1e-9);
}

TEST(AnalysisDeadline, HospitalRegistryRowsAreFeasibleAndLocal) {
    const auto rep = analysis::lint_deadlines();
    std::size_t hospital_rows = 0;
    for (const auto& row : rep.rows) {
        if (row.family != "hospital") continue;
        ++hospital_rows;
        EXPECT_TRUE(row.engaged_default) << row.preset;
        EXPECT_TRUE(row.feasible) << row.preset << ": " << row.bound.why;
        // deadline = deadline-s safe_lo (30) vs bound = monitor safe_hi
        // (10) + tick (1): the envelope leaves real slack.
        EXPECT_NEAR(row.deadline_s, 30.0, 1e-9) << row.preset;
        EXPECT_NEAR(row.bound.total_s.hi, 11.0, 1e-9) << row.preset;
    }
    EXPECT_EQ(hospital_rows, 2u);
}

TEST(AnalysisDeadline, AnalyzerAbsorbsDeadlinePass) {
    analysis::Analyzer an;
    an.check_deadlines();
    EXPECT_TRUE(an.report().clean());
    EXPECT_EQ(an.deadline_report().rows.size(), 7u);
    const auto& analyzed = an.report().analyzed;
    EXPECT_TRUE(std::any_of(analyzed.begin(), analyzed.end(),
                            [](const std::string& s) {
                                return s.find("ta5:") != std::string::npos;
                            }));
}

}  // namespace
