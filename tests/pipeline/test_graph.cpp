/// \file test_graph.cpp
/// \brief PipelineGraph unit tests: validation errors, deterministic
/// topological scheduling, serial-vs-parallel equivalence, cache
/// replay semantics and metrics recording.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/pipeline.hpp"

namespace pipeline = mcps::pipeline;

namespace {

/// A pass that concatenates its inputs (name-prefixed) into one output.
/// Bodies are pure functions of declared inputs, so the graph's
/// determinism contract holds by construction.
pipeline::Pass concat_pass(std::string name,
                           std::vector<std::string> inputs,
                           std::string output,
                           std::atomic<int>* executions = nullptr) {
    pipeline::Pass p;
    p.name = name;
    p.inputs = inputs;
    p.outputs = {output};
    p.run = [name, inputs, output, executions](pipeline::PassContext& ctx) {
        if (executions != nullptr) executions->fetch_add(1);
        std::string payload = name + ":";
        for (const auto& in : inputs) payload += ctx.input(in).payload + "|";
        ctx.emit(output, {"text", payload});
    };
    return p;
}

/// source -> a -> b, plus an independent c off the same source.
pipeline::PipelineGraph diamondish(std::atomic<int>* a_runs = nullptr,
                                   std::atomic<int>* b_runs = nullptr,
                                   std::atomic<int>* c_runs = nullptr) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "seed"});
    g.add(concat_pass("a", {"src"}, "out/a", a_runs));
    g.add(concat_pass("b", {"out/a"}, "out/b", b_runs));
    g.add(concat_pass("c", {"src"}, "out/c", c_runs));
    return g;
}

TEST(PipelineGraph, RejectsDuplicateSource) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    EXPECT_THROW(g.provide("src", {"text", "y"}), pipeline::PipelineError);
}

TEST(PipelineGraph, RejectsDuplicatePassName) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    g.add(concat_pass("a", {"src"}, "out/a"));
    EXPECT_THROW(g.add(concat_pass("a", {"src"}, "out/a2")),
                 pipeline::PipelineError);
}

TEST(PipelineGraph, RejectsDuplicateOutput) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    g.add(concat_pass("a", {"src"}, "out/shared"));
    EXPECT_THROW(g.add(concat_pass("b", {"src"}, "out/shared")),
                 pipeline::PipelineError);
}

TEST(PipelineGraph, RejectsOutputCollidingWithSource) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    EXPECT_THROW(g.add(concat_pass("a", {"src"}, "src")),
                 pipeline::PipelineError);
}

TEST(PipelineGraph, RejectsUnknownInput) {
    pipeline::PipelineGraph g;
    g.add(concat_pass("a", {"nowhere"}, "out/a"));
    EXPECT_THROW((void)g.topo_order(), pipeline::PipelineError);
}

TEST(PipelineGraph, RejectsCycle) {
    pipeline::PipelineGraph g;
    g.add(concat_pass("a", {"out/b"}, "out/a"));
    g.add(concat_pass("b", {"out/a"}, "out/b"));
    EXPECT_THROW((void)g.topo_order(), pipeline::PipelineError);
}

TEST(PipelineGraph, TopoOrderBreaksTiesByRegistrationOrder) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    // z registered before m: both ready immediately, z must come first.
    g.add(concat_pass("z", {"src"}, "out/z"));
    g.add(concat_pass("m", {"src"}, "out/m"));
    g.add(concat_pass("tail", {"out/z", "out/m"}, "out/tail"));
    const std::vector<std::string> expect{"z", "m", "tail"};
    EXPECT_EQ(g.topo_order(), expect);
}

TEST(PipelineGraph, DependentsOfIsTransitive) {
    const pipeline::PipelineGraph g = diamondish();
    const std::vector<std::string> from_src{"a", "b", "c"};
    EXPECT_EQ(g.dependents_of("src"), from_src);
    const std::vector<std::string> from_a{"b"};
    EXPECT_EQ(g.dependents_of("out/a"), from_a);
    EXPECT_TRUE(g.dependents_of("out/b").empty());
    EXPECT_TRUE(g.dependents_of("out/unknown").empty());
}

TEST(PipelineGraph, FailingPassNamesThePass) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    pipeline::Pass bad;
    bad.name = "explodes";
    bad.inputs = {"src"};
    bad.outputs = {"out/bad"};
    bad.run = [](pipeline::PassContext&) {
        throw std::runtime_error{"boom"};
    };
    g.add(bad);
    try {
        (void)g.run();
        FAIL() << "expected PipelineError";
    } catch (const pipeline::PipelineError& e) {
        EXPECT_NE(std::string{e.what()}.find("explodes"), std::string::npos);
        EXPECT_NE(std::string{e.what()}.find("boom"), std::string::npos);
    }
}

TEST(PipelineGraph, MissingEmitIsAnError) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    pipeline::Pass lazy;
    lazy.name = "lazy";
    lazy.inputs = {"src"};
    lazy.outputs = {"out/never"};
    lazy.run = [](pipeline::PassContext&) {};
    g.add(lazy);
    EXPECT_THROW((void)g.run(), pipeline::PipelineError);
}

TEST(PipelineGraph, UndeclaredEmitIsAnError) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    pipeline::Pass sneaky;
    sneaky.name = "sneaky";
    sneaky.inputs = {"src"};
    sneaky.outputs = {"out/declared"};
    sneaky.run = [](pipeline::PassContext& ctx) {
        ctx.emit("out/declared", {"text", "ok"});
        ctx.emit("out/extra", {"text", "smuggled"});
    };
    g.add(sneaky);
    EXPECT_THROW((void)g.run(), pipeline::PipelineError);
}

TEST(PipelineGraph, UndeclaredInputIsAnError) {
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    g.provide("other", {"text", "y"});
    pipeline::Pass greedy;
    greedy.name = "greedy";
    greedy.inputs = {"src"};
    greedy.outputs = {"out/g"};
    greedy.run = [](pipeline::PassContext& ctx) {
        (void)ctx.input("other");  // not declared
        ctx.emit("out/g", {"text", "x"});
    };
    g.add(greedy);
    EXPECT_THROW((void)g.run(), pipeline::PipelineError);
}

TEST(PipelineGraph, SerialAndParallelManifestsAreIdentical) {
    const pipeline::PipelineGraph g = diamondish();
    const pipeline::PipelineResult serial = g.run({.jobs = 1});
    const pipeline::PipelineResult parallel = g.run({.jobs = 8});
    EXPECT_EQ(serial.manifest(), parallel.manifest());
    EXPECT_EQ(serial.digest(), parallel.digest());
    // Topological reporting order regardless of execution order.
    ASSERT_EQ(parallel.passes.size(), 3u);
    EXPECT_EQ(parallel.passes[0].name, "a");
    EXPECT_EQ(parallel.passes[1].name, "b");
    EXPECT_EQ(parallel.passes[2].name, "c");
    // Artifacts include sources and every output.
    EXPECT_EQ(serial.artifacts.size(), 4u);
    EXPECT_EQ(serial.at("out/b").payload, "b:a:seed||");
}

TEST(PipelineGraph, ResultAtThrowsOnUnknownArtifact) {
    const pipeline::PipelineGraph g = diamondish();
    const pipeline::PipelineResult r = g.run();
    EXPECT_THROW((void)r.at("out/nope"), pipeline::PipelineError);
}

TEST(PipelineGraph, WarmCacheReplaysWithoutExecutingBodies) {
    std::atomic<int> a_runs{0}, b_runs{0}, c_runs{0};
    const pipeline::PipelineGraph g = diamondish(&a_runs, &b_runs, &c_runs);
    pipeline::ArtifactCache cache;

    const pipeline::PipelineResult cold = g.run({.cache = &cache});
    EXPECT_EQ(cold.cache_misses, 3u);
    EXPECT_EQ(cold.cache_hits, 0u);
    EXPECT_EQ(a_runs.load(), 1);

    const pipeline::PipelineResult warm = g.run({.cache = &cache});
    EXPECT_EQ(warm.cache_hits, 3u);
    EXPECT_EQ(warm.cache_misses, 0u);
    // Bodies did not run again: replayed from cache.
    EXPECT_EQ(a_runs.load(), 1);
    EXPECT_EQ(b_runs.load(), 1);
    EXPECT_EQ(c_runs.load(), 1);
    for (const auto& p : warm.passes) EXPECT_TRUE(p.from_cache);
    EXPECT_EQ(warm.manifest(), cold.manifest());
}

TEST(PipelineGraph, NonCacheablePassAlwaysExecutes) {
    std::atomic<int> runs{0};
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "x"});
    pipeline::Pass p = concat_pass("scan", {"src"}, "out/scan", &runs);
    p.cacheable = false;
    g.add(p);
    pipeline::ArtifactCache cache;
    (void)g.run({.cache = &cache});
    const pipeline::PipelineResult again = g.run({.cache = &cache});
    EXPECT_EQ(runs.load(), 2);
    EXPECT_FALSE(again.passes[0].from_cache);
}

TEST(PipelineGraph, RecordMetricsPublishesCountersAndGauges) {
    const pipeline::PipelineGraph g = diamondish();
    pipeline::ArtifactCache cache;
    mcps::obs::MetricsRegistry metrics;

    (void)g.run({.cache = &cache, .metrics = &metrics});
    (void)g.run({.cache = &cache, .metrics = &metrics});

    const auto* runs = metrics.find_counter("pipeline/runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(runs->value(), 2u);
    const auto* hits = metrics.find_counter("pipeline/cache/hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->value(), 3u);
    const auto* misses = metrics.find_counter("pipeline/cache/misses");
    ASSERT_NE(misses, nullptr);
    EXPECT_EQ(misses->value(), 3u);

    // Cold run counts executions, warm run counts replays.
    const auto* a_runs = metrics.find_counter("pipeline/pass/a/runs");
    ASSERT_NE(a_runs, nullptr);
    EXPECT_EQ(a_runs->value(), 1u);
    const auto* a_replays = metrics.find_counter("pipeline/pass/a/replays");
    ASSERT_NE(a_replays, nullptr);
    EXPECT_EQ(a_replays->value(), 1u);
    EXPECT_NE(metrics.find_gauge("pipeline/pass/a/wall_us"), nullptr);
}

TEST(PipelineGraph, ParallelRunWithManyIndependentPasses) {
    // Wide fan-out exercises the pool's dependency counting: 24
    // independent passes feeding one join must produce the serial bytes.
    pipeline::PipelineGraph g;
    g.provide("src", {"text", "seed"});
    std::vector<std::string> fan_outputs;
    for (int i = 0; i < 24; ++i) {
        const std::string name = "fan" + std::to_string(i);
        fan_outputs.push_back("out/" + name);
        g.add(concat_pass(name, {"src"}, fan_outputs.back()));
    }
    g.add(concat_pass("join", fan_outputs, "out/join"));

    const pipeline::PipelineResult serial = g.run({.jobs = 1});
    const pipeline::PipelineResult wide = g.run({.jobs = 16});
    EXPECT_EQ(serial.manifest(), wide.manifest());
    EXPECT_EQ(serial.at("out/join").payload, wide.at("out/join").payload);
}

}  // namespace
