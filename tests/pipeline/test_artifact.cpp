/// \file test_artifact.cpp
/// \brief Unit tests for the pipeline's content-addressing layer:
/// Artifact digests, cache keys, the ArtifactCache (counters, bounds,
/// snapshot round-trip, metrics mirroring) and the findings
/// serialization that carries analysis reports between passes.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/analysis.hpp"
#include "obs/shared_metrics.hpp"
#include "pipeline/pipeline.hpp"

namespace pipeline = mcps::pipeline;
namespace analysis = mcps::analysis;

namespace {

std::string temp_path(const char* stem) {
    return (std::filesystem::temp_directory_path() /
            (std::string{"mcps_pipeline_"} + stem))
        .string();
}

std::string slurp(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(Artifact, DigestCoversKindAndPayload) {
    const pipeline::Artifact a{"spec", "pca seed=42"};
    const pipeline::Artifact same{"spec", "pca seed=42"};
    const pipeline::Artifact other_payload{"spec", "pca seed=43"};
    const pipeline::Artifact other_kind{"run-json", "pca seed=42"};

    EXPECT_EQ(a.digest(), same.digest());
    EXPECT_NE(a.digest(), other_payload.digest());
    EXPECT_NE(a.digest(), other_kind.digest());
}

TEST(Artifact, FieldSeparatorPreventsBoundarySlides) {
    // "ab" + "c" must not hash like "a" + "bc".
    const pipeline::Artifact a{"ab", "c"};
    const pipeline::Artifact b{"a", "bc"};
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Artifact, DigestHexFormat) {
    const pipeline::Artifact a{"spec", "x"};
    const std::string hex = a.digest_hex();
    ASSERT_EQ(hex.size(), 18u);
    EXPECT_EQ(hex.substr(0, 2), "0x");
    EXPECT_EQ(hex, pipeline::hex64(a.digest()));
}

TEST(ArtifactKey, ChangesWithEveryComponent) {
    const std::vector<std::uint64_t> inputs{1, 2};
    const std::string base =
        pipeline::artifact_key("run:pca", "p=1", inputs, "run/pca/artifacts");

    EXPECT_EQ(base, pipeline::artifact_key("run:pca", "p=1", inputs,
                                           "run/pca/artifacts"));
    EXPECT_NE(base, pipeline::artifact_key("run:xray", "p=1", inputs,
                                           "run/pca/artifacts"));
    EXPECT_NE(base, pipeline::artifact_key("run:pca", "p=2", inputs,
                                           "run/pca/artifacts"));
    EXPECT_NE(base, pipeline::artifact_key("run:pca", "p=1", {1, 3},
                                           "run/pca/artifacts"));
    EXPECT_NE(base, pipeline::artifact_key("run:pca", "p=1", {2, 1},
                                           "run/pca/artifacts"));
    EXPECT_NE(base, pipeline::artifact_key("run:pca", "p=1", inputs,
                                           "run/pca/events"));
    // The output name prefixes the key for debuggability.
    EXPECT_EQ(base.rfind("run/pca/artifacts@0x", 0), 0u);
}

TEST(ArtifactCache, HitMissInsertCounters) {
    pipeline::ArtifactCache cache;
    EXPECT_FALSE(cache.lookup("k1").has_value());
    EXPECT_EQ(cache.misses(), 1u);

    cache.insert("k1", {"spec", "payload"});
    EXPECT_EQ(cache.inserts(), 1u);
    const auto hit = cache.lookup("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->kind, "spec");
    EXPECT_EQ(hit->payload, "payload");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ArtifactCache, BoundDropsNewKeysAtCapacity) {
    pipeline::ArtifactCache cache{2};
    cache.insert("a", {"k", "1"});
    cache.insert("b", {"k", "2"});
    cache.insert("c", {"k", "3"});  // dropped: at capacity
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.lookup("c").has_value());
    // Overwriting an existing key is always allowed.
    cache.insert("a", {"k", "1"});
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ArtifactCache, SnapshotRoundTripIsByteIdentical) {
    const std::string path_a = temp_path("snap_a");
    const std::string path_b = temp_path("snap_b");

    pipeline::ArtifactCache cache;
    cache.insert("zkey", {"events-jsonl", "line1\nline2\twith tab\n"});
    cache.insert("akey", {"spec", "pca seed=42\\minutes=3"});
    ASSERT_TRUE(cache.save(path_a));

    pipeline::ArtifactCache loaded;
    EXPECT_EQ(loaded.load(path_a), 2u);
    const auto z = loaded.lookup("zkey");
    ASSERT_TRUE(z.has_value());
    EXPECT_EQ(z->payload, "line1\nline2\twith tab\n");
    const auto a = loaded.lookup("akey");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->payload, "pca seed=42\\minutes=3");

    // Snapshots of equal caches are byte-identical (sorted key order).
    ASSERT_TRUE(loaded.save(path_b));
    EXPECT_EQ(slurp(path_a), slurp(path_b));

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(ArtifactCache, LoadSkipsMalformedLines) {
    const std::string path = temp_path("snap_malformed");
    {
        std::ofstream out{path, std::ios::binary};
        out << "mcps-artifact-cache v1\n"
            << "good\tspec\tpayload\n"
            << "missing-fields\n"
            << "bad-escape\tspec\ttrailing\\\n"
            << "also-good\tspec\tok\n";
    }
    pipeline::ArtifactCache cache;
    EXPECT_EQ(cache.load(path), 2u);
    EXPECT_TRUE(cache.lookup("good").has_value());
    EXPECT_TRUE(cache.lookup("also-good").has_value());
    std::remove(path.c_str());
}

TEST(ArtifactCache, LoadRejectsWrongHeader) {
    const std::string path = temp_path("snap_header");
    {
        std::ofstream out{path, std::ios::binary};
        out << "some-other-format v9\nk\tspec\tp\n";
    }
    pipeline::ArtifactCache cache;
    EXPECT_EQ(cache.load(path), 0u);
    std::remove(path.c_str());
}

TEST(ArtifactCache, MissingSnapshotLoadsNothing) {
    pipeline::ArtifactCache cache;
    EXPECT_EQ(cache.load(temp_path("does_not_exist")), 0u);
}

TEST(ArtifactCache, MirrorsCountersIntoSharedMetrics) {
    mcps::obs::SharedMetrics metrics;
    pipeline::ArtifactCache cache{0, &metrics};
    (void)cache.lookup("absent");
    cache.insert("k", {"spec", "p"});
    (void)cache.lookup("k");

    EXPECT_EQ(metrics.gauge_value("pipeline/cache/entries"), 1.0);
    EXPECT_EQ(metrics.gauge_value("pipeline/cache/hits"), 1.0);
    EXPECT_EQ(metrics.gauge_value("pipeline/cache/misses"), 1.0);
}

TEST(SnapshotEscape, RoundTripsControlBytes) {
    const std::string raw = "a\tb\nc\\d\\te";
    const std::string escaped = pipeline::snapshot_escape(raw);
    EXPECT_EQ(escaped.find('\t'), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    std::string back;
    ASSERT_TRUE(pipeline::snapshot_unescape(escaped, back));
    EXPECT_EQ(back, raw);

    std::string out;
    EXPECT_FALSE(pipeline::snapshot_unescape("dangling\\", out));
    EXPECT_FALSE(pipeline::snapshot_unescape("bad\\x", out));
}

analysis::AnalysisReport sample_report() {
    analysis::AnalysisReport r;
    r.analyzed = {"pump_lockout", "name\twith\ttabs"};
    r.suppressed_findings = 3;
    analysis::Finding f;
    f.rule = analysis::RuleId::kTA1;
    f.severity = analysis::FindingSeverity::kError;
    f.entity = "pump_lockout";
    f.file = "src/ta/pump.cpp";
    f.line = 12;
    f.message = "state 'Violation' reachable\nsecond line\twith tab";
    r.findings.push_back(f);
    analysis::Finding w = f;
    w.rule = analysis::RuleId::kSIM1;
    w.severity = analysis::FindingSeverity::kWarning;
    w.message = "banned construct";
    r.findings.push_back(w);
    return r;
}

TEST(FindingsIo, RoundTripsEveryField) {
    const analysis::AnalysisReport r = sample_report();
    const std::string text = pipeline::write_findings(r);
    const analysis::AnalysisReport back = pipeline::read_findings(text);

    EXPECT_EQ(back.analyzed, r.analyzed);
    EXPECT_EQ(back.suppressed_findings, r.suppressed_findings);
    ASSERT_EQ(back.findings.size(), r.findings.size());
    for (std::size_t i = 0; i < r.findings.size(); ++i) {
        EXPECT_EQ(back.findings[i].rule, r.findings[i].rule);
        EXPECT_EQ(back.findings[i].severity, r.findings[i].severity);
        EXPECT_EQ(back.findings[i].entity, r.findings[i].entity);
        EXPECT_EQ(back.findings[i].file, r.findings[i].file);
        EXPECT_EQ(back.findings[i].line, r.findings[i].line);
        EXPECT_EQ(back.findings[i].message, r.findings[i].message);
    }
    // Serialization is deterministic: write(read(write(r))) == write(r).
    EXPECT_EQ(pipeline::write_findings(back), text);
}

TEST(FindingsIo, MergeConcatenatesInOrder) {
    analysis::AnalysisReport a = sample_report();
    analysis::AnalysisReport b;
    b.analyzed = {"xray_vent_sync"};
    b.suppressed_findings = 1;

    analysis::AnalysisReport merged;
    pipeline::merge_findings(merged, a);
    pipeline::merge_findings(merged, b);
    EXPECT_EQ(merged.analyzed.size(), 3u);
    EXPECT_EQ(merged.analyzed.back(), "xray_vent_sync");
    EXPECT_EQ(merged.suppressed_findings, 4u);
    EXPECT_EQ(merged.findings.size(), 2u);
}

TEST(FindingsIo, RejectsMalformedArtifacts) {
    EXPECT_THROW((void)pipeline::read_findings(""),
                 pipeline::PipelineError);
    EXPECT_THROW((void)pipeline::read_findings("wrong header\n"),
                 pipeline::PipelineError);
    EXPECT_THROW((void)pipeline::read_findings(
                     "mcps-findings v1\nfinding\tNOPE\terror\te\tf\t1\tm\n"),
                 pipeline::PipelineError);
    EXPECT_THROW((void)pipeline::read_findings(
                     "mcps-findings v1\nsuppressed\tnot-a-number\n"),
                 pipeline::PipelineError);
    EXPECT_THROW((void)pipeline::read_findings(
                     "mcps-findings v1\nunknown-record\tx\n"),
                 pipeline::PipelineError);
}

}  // namespace
