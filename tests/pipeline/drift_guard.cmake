# Drift guard: the unified `mcps` dispatcher and the classic per-tool
# binaries are thin shims over one driver library (tools/drivers.hpp),
# so `mcps <cmd> ARGS` and `mcps_<cmd> ARGS` must produce byte-identical
# stdout and the same exit code. Error-path stderr may differ only in
# the program-name prefix ("mcps run" vs "mcps_run"), which is
# normalized before comparison.
#
# Inputs: -DMCPS=..., -DMCPS_RUN=..., -DMCPS_ANALYZE=...

function(run_pair label norm_from norm_to)
  # Everything after the fixed arguments is the argv passed to both
  # binaries (unified: ${MCPS} <cmd> ARGS; classic: ${CLASSIC} ARGS).
  set(unified_args ${ARGN})
  list(GET unified_args 0 cmd)
  list(REMOVE_AT unified_args 0)

  execute_process(
    COMMAND ${MCPS} ${cmd} ${unified_args}
    OUTPUT_VARIABLE unified_out ERROR_VARIABLE unified_err
    RESULT_VARIABLE unified_rc)
  execute_process(
    COMMAND ${CLASSIC} ${unified_args}
    OUTPUT_VARIABLE classic_out ERROR_VARIABLE classic_err
    RESULT_VARIABLE classic_rc)

  if(NOT unified_rc STREQUAL classic_rc)
    message(FATAL_ERROR
      "${label}: exit codes drifted: mcps ${cmd} -> ${unified_rc}, "
      "classic -> ${classic_rc}")
  endif()
  # stdout: normalize the program-name prefix (describe's "example:"
  # line echoes it by design), then require byte equality.
  string(REPLACE "${norm_from}" "${norm_to}" unified_out_norm
         "${unified_out}")
  if(NOT unified_out_norm STREQUAL classic_out)
    message(FATAL_ERROR
      "${label}: stdout drifted between `mcps ${cmd}` and the classic "
      "binary (beyond the program-name prefix):\n--- mcps (normalized) "
      "---\n${unified_out_norm}\n--- classic ---\n${classic_out}")
  endif()
  # stderr: normalize the program-name prefix, then require equality.
  string(REPLACE "${norm_from}" "${norm_to}" unified_err_norm
         "${unified_err}")
  if(NOT unified_err_norm STREQUAL classic_err)
    message(FATAL_ERROR
      "${label}: stderr drifted (beyond the program-name prefix):\n"
      "--- mcps (normalized) ---\n${unified_err_norm}\n"
      "--- classic ---\n${classic_err}")
  endif()
  message(STATUS "${label}: OK (rc ${unified_rc})")
endfunction()

# ---- mcps run vs mcps_run --------------------------------------------

set(CLASSIC ${MCPS_RUN})

# Success paths: registry listing and a short deterministic run.
run_pair("run list" "mcps run" "mcps_run" run list)
run_pair("run run" "mcps run" "mcps_run"
         run run --spec "pca seed=42 minutes=2")
run_pair("run describe" "mcps run" "mcps_run" run describe pca)

# Error path: unknown subcommand must exit 2 from both shims.
run_pair("run error" "mcps run" "mcps_run" run bogus-subcommand)
execute_process(COMMAND ${MCPS} run bogus-subcommand
                OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "mcps run bogus-subcommand: expected exit 2, got ${rc}")
endif()

# ---- mcps analyze vs mcps_analyze ------------------------------------

set(CLASSIC ${MCPS_ANALYZE})

# The model-level stages are cwd-independent; --no-scan keeps this true
# wherever ctest runs the script.
run_pair("analyze" "mcps analyze" "mcps_analyze" analyze --no-scan --quiet)
run_pair("analyze error" "mcps analyze" "mcps_analyze"
         analyze --definitely-not-a-flag)
