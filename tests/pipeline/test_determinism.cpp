/// \file test_determinism.cpp
/// \brief End-to-end pipeline properties over the real std passes:
/// byte-identical artifacts across serial/parallel/cold/warm runs,
/// exact knob-edit invalidation (cross-checked against the graph's
/// structural dependents_of), and agreement between pipeline artifacts
/// and the direct (non-pipeline) code paths they migrated from.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/shipped.hpp"
#include "obs/exporters.hpp"
#include "pipeline/pipeline.hpp"
#include "scenario/scenario.hpp"
#include "ward/ward_config.hpp"

namespace pipeline = mcps::pipeline;
namespace scenario = mcps::scenario;
namespace analysis = mcps::analysis;
namespace ward = mcps::ward;
namespace obs = mcps::obs;

namespace {

ward::WardConfig small_ward(std::uint64_t seed = 7) {
    ward::WardConfig cfg;
    cfg.seed = seed;
    cfg.patients = 4;
    cfg.shards = 4;
    cfg.jobs = 1;
    return cfg;
}

/// A representative multi-stage graph: two scenario runs (one traced),
/// the pure analysis stages, and a small ward campaign with merge.
/// \p pca_seed parameterizes the single knob the invalidation tests
/// edit.
pipeline::PipelineGraph build_graph(std::uint64_t pca_seed = 42,
                                    std::uint64_t ward_seed = 7) {
    pipeline::PipelineGraph g;

    scenario::ScenarioSpec pca = scenario::registry().default_spec("pca");
    pca.seed = pca_seed;
    pca.minutes = 2;
    pipeline::add_scenario_pass(g, "pca", pca);
    pipeline::add_trace_export_pass(g, "pca");

    scenario::ScenarioSpec xray = scenario::registry().default_spec("xray");
    xray.minutes = 2;
    pipeline::add_scenario_pass(g, "xray", xray);

    pipeline::AnalysisPassOptions a;
    a.hazards = false;
    a.deadlines = false;  // keep the suite fast: models + assemblies
    pipeline::add_analysis_passes(g, a);

    pipeline::add_ward_pass(g, "w1", small_ward(ward_seed));
    pipeline::add_ward_merge_pass(g, {"w1"});
    return g;
}

std::vector<std::string> executed_passes(const pipeline::PipelineResult& r) {
    std::vector<std::string> out;
    for (const auto& p : r.passes) {
        if (!p.from_cache) out.push_back(p.name);
    }
    return out;
}

TEST(PipelineDeterminism, ColdWarmParallelManifestsAreByteIdentical) {
    const pipeline::PipelineGraph g = build_graph();
    pipeline::ArtifactCache cache;

    const pipeline::PipelineResult cold = g.run({.jobs = 1, .cache = &cache});
    EXPECT_EQ(cold.cache_hits, 0u);
    EXPECT_GT(cold.cache_misses, 0u);

    const pipeline::PipelineResult warm = g.run({.jobs = 1, .cache = &cache});
    EXPECT_EQ(warm.cache_misses, 0u);
    for (const auto& p : warm.passes) EXPECT_TRUE(p.from_cache) << p.name;

    pipeline::ArtifactCache fresh;
    const pipeline::PipelineResult wide = g.run({.jobs = 8, .cache = &fresh});

    const pipeline::PipelineResult uncached = g.run({});

    EXPECT_EQ(cold.manifest(), warm.manifest());
    EXPECT_EQ(cold.manifest(), wide.manifest());
    EXPECT_EQ(cold.manifest(), uncached.manifest());
    EXPECT_EQ(cold.digest(), wide.digest());

    // The manifest covers every artifact in the graph: one key per pass
    // output plus the three provided sources (two specs, one ward
    // config).
    EXPECT_EQ(cold.artifacts.size(), cold.keys.size() + 3u);
}

TEST(PipelineDeterminism, ScenarioKnobEditInvalidatesExactlyDownstream) {
    pipeline::ArtifactCache cache;
    const pipeline::PipelineGraph base = build_graph(/*pca_seed=*/42);
    const pipeline::PipelineResult cold = base.run({.cache = &cache});

    // Same graph, one knob edited: the pca spec's seed.
    const pipeline::PipelineGraph edited = build_graph(/*pca_seed=*/43);
    const pipeline::PipelineResult warm = edited.run({.cache = &cache});

    // Structural ground truth: what a change to the pca spec reaches.
    const std::vector<std::string> expect =
        edited.dependents_of("spec/pca");
    ASSERT_EQ(expect, (std::vector<std::string>{"run:pca", "trace:pca"}));
    EXPECT_EQ(executed_passes(warm), expect);

    // Everything outside the invalidated cone replayed from cache.
    EXPECT_EQ(warm.cache_hits + warm.cache_misses,
              cold.cache_hits + cold.cache_misses);
    EXPECT_NE(warm.manifest(), cold.manifest());
    // The untouched scenario's artifacts are bit-identical.
    EXPECT_EQ(warm.at("run/xray/fingerprint").payload,
              cold.at("run/xray/fingerprint").payload);
}

TEST(PipelineDeterminism, WardKnobEditInvalidatesExactlyDownstream) {
    pipeline::ArtifactCache cache;
    const pipeline::PipelineGraph base = build_graph(42, /*ward_seed=*/7);
    (void)base.run({.cache = &cache});

    const pipeline::PipelineGraph edited = build_graph(42, /*ward_seed=*/8);
    const pipeline::PipelineResult warm = edited.run({.cache = &cache});

    const std::vector<std::string> expect =
        edited.dependents_of("ward/w1/config");
    ASSERT_EQ(expect, (std::vector<std::string>{"ward:w1", "ward:merge"}));
    EXPECT_EQ(executed_passes(warm), expect);
}

TEST(PipelineDeterminism, UneditedRerunExecutesNothing) {
    pipeline::ArtifactCache cache;
    const pipeline::PipelineGraph g = build_graph();
    (void)g.run({.cache = &cache});
    const pipeline::PipelineResult warm = g.run({.cache = &cache});
    EXPECT_TRUE(executed_passes(warm).empty());
}

TEST(PipelinePasses, ScenarioPassMatchesDirectRun) {
    pipeline::PipelineGraph g;
    scenario::ScenarioSpec spec = scenario::registry().default_spec("pca");
    spec.minutes = 2;
    pipeline::add_scenario_pass(g, "pca", spec);
    const pipeline::PipelineResult r = g.run();

    const scenario::RunArtifacts direct =
        scenario::registry().run(spec, {});
    EXPECT_EQ(r.at("run/pca/fingerprint").payload,
              direct.fingerprint_hex() + "\n");
    std::ostringstream json;
    direct.write_json(json);
    EXPECT_EQ(r.at("run/pca/artifacts").payload, json.str());
}

TEST(PipelinePasses, TraceExportMatchesDirectWriter) {
    pipeline::PipelineGraph g;
    scenario::ScenarioSpec spec = scenario::registry().default_spec("xray");
    spec.minutes = 2;
    pipeline::add_scenario_pass(g, "xray", spec);
    pipeline::add_trace_export_pass(g, "xray");
    const pipeline::PipelineResult r = g.run();

    std::istringstream events_in{r.at("run/xray/events").payload};
    const obs::EventLog events = obs::read_jsonl(events_in);
    std::ostringstream chrome;
    obs::write_chrome_trace(events, chrome);
    EXPECT_EQ(r.at("trace/xray/chrome").payload, chrome.str());
}

TEST(PipelinePasses, AnalysisMergeMatchesDirectAnalyzer) {
    pipeline::PipelineGraph g;
    pipeline::AnalysisPassOptions opts;
    opts.hazards = false;
    opts.deadlines = false;
    pipeline::add_analysis_passes(g, opts);
    const pipeline::PipelineResult r = g.run();

    // The same stages through one Analyzer, no pipeline involved.
    analysis::Analyzer direct{analysis::SuppressionSet{}};
    analysis::add_shipped_ta_models(direct);
    analysis::add_shipped_assemblies(direct);
    std::ostringstream json;
    direct.report().write_json(json);
    EXPECT_EQ(r.at("analysis/report").payload, json.str());

    std::ostringstream sarif;
    analysis::write_sarif(direct.report(), sarif);
    EXPECT_EQ(r.at("analysis/sarif").payload, sarif.str());
}

TEST(PipelinePasses, AnalysisRejectsUnknownSuppressRule) {
    pipeline::PipelineGraph g;
    pipeline::AnalysisPassOptions opts;
    opts.suppress = "TA2,NOPE9";
    EXPECT_THROW(pipeline::add_analysis_passes(g, opts),
                 pipeline::PipelineError);
}

TEST(PipelinePasses, SuppressKnobChangesAnalysisKeys) {
    // Suppression is part of each stage's params: editing it must
    // invalidate the analysis passes even though they have no inputs.
    pipeline::ArtifactCache cache;
    pipeline::AnalysisPassOptions opts;
    opts.hazards = false;
    opts.deadlines = false;

    pipeline::PipelineGraph g1;
    pipeline::add_analysis_passes(g1, opts);
    (void)g1.run({.cache = &cache});

    opts.suppress = "TA2";
    pipeline::PipelineGraph g2;
    pipeline::add_analysis_passes(g2, opts);
    const pipeline::PipelineResult warm = g2.run({.cache = &cache});
    for (const auto& p : warm.passes) {
        // Early cutoff: the re-run stages emit byte-identical findings
        // (no TA2 findings existed to suppress), so the merge's input
        // digests are unchanged and it may replay from cache.
        if (p.name == "analyze:merge") continue;
        EXPECT_FALSE(p.from_cache) << p.name;
    }
}

TEST(PipelinePasses, WardReportArtifactZeroesWallTime) {
    pipeline::PipelineGraph g;
    pipeline::add_ward_pass(g, "w1", small_ward());
    const pipeline::PipelineResult r = g.run();
    const std::string& json = r.at("ward/w1/report").payload;
    EXPECT_NE(json.find("\"wall_seconds\": 0"), std::string::npos);
    // Running twice yields the same bytes (nothing run-varying leaked).
    const pipeline::PipelineResult again = g.run();
    EXPECT_EQ(again.at("ward/w1/report").payload, json);
}

TEST(PipelinePasses, WardMergeFoldsFingerprints) {
    pipeline::PipelineGraph g;
    pipeline::add_ward_pass(g, "w1", small_ward(7));
    pipeline::add_ward_pass(g, "w2", small_ward(8));
    pipeline::add_ward_merge_pass(g, {"w1", "w2"});
    const pipeline::PipelineResult r = g.run();

    const std::string& summary = r.at("ward/summary").payload;
    std::string fp1 = r.at("ward/w1/fingerprint").payload;
    fp1.pop_back();  // trailing newline
    EXPECT_NE(summary.find("w1\t" + fp1 + "\n"), std::string::npos);
    EXPECT_NE(summary.find("combined\t0x"), std::string::npos);
}

TEST(WardConfigText, RoundTripsThroughParse) {
    const ward::WardConfig cfg = small_ward();
    const std::string text = pipeline::ward_config_to_text(cfg);
    const ward::WardConfig back = pipeline::parse_ward_config(text);
    EXPECT_EQ(pipeline::ward_config_to_text(back), text);
    EXPECT_EQ(back.seed, cfg.seed);
    EXPECT_EQ(back.patients, cfg.patients);
    EXPECT_EQ(back.shards, cfg.shards);
}

TEST(WardConfigText, RejectsMalformedSpecs) {
    EXPECT_THROW((void)pipeline::parse_ward_config("bogus_key=1"),
                 ward::WardConfigError);
    EXPECT_THROW((void)pipeline::parse_ward_config("seed=notanumber"),
                 ward::WardConfigError);
    EXPECT_THROW((void)pipeline::parse_ward_config("no-equals-sign"),
                 ward::WardConfigError);
}

}  // namespace
