# Warm-cache replay over a disk snapshot: a cold `mcps pipeline` run
# saves its artifact cache; a second identical run loads it and must
# replay every pass (cache_misses == 0 in the --json bench report)
# while still producing artifacts (cache_hits > 0).
#
# Inputs: -DMCPS=..., -DWORK_DIR=...

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(graph_args
    --spec "pca seed=42 minutes=2" --trace
    --ward "seed=7 patients=4 shards=4"
    --cache ${WORK_DIR}/artifacts.cache --quiet)

execute_process(
  COMMAND ${MCPS} pipeline ${graph_args} --json ${WORK_DIR}/cold.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold run failed (rc ${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND ${MCPS} pipeline ${graph_args} --json ${WORK_DIR}/warm.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm run failed (rc ${rc}):\n${out}\n${err}")
endif()

file(READ ${WORK_DIR}/cold.json cold_json)
file(READ ${WORK_DIR}/warm.json warm_json)

if(NOT cold_json MATCHES "\"name\": \"cache_hits\", \"unit\": \"count\", \"value\": 0}")
  message(FATAL_ERROR "cold run unexpectedly hit the cache:\n${cold_json}")
endif()
if(NOT warm_json MATCHES "\"name\": \"cache_misses\", \"unit\": \"count\", \"value\": 0}")
  message(FATAL_ERROR
    "warm run re-executed passes despite the cache snapshot:\n${warm_json}")
endif()
if(warm_json MATCHES "\"name\": \"cache_hits\", \"unit\": \"count\", \"value\": 0}")
  message(FATAL_ERROR "warm run reported zero cache hits:\n${warm_json}")
endif()
message(STATUS "cache replay: warm run fully served from snapshot")
