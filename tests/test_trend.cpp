/// \file test_trend.cpp
/// \brief Tests for trend estimation and predictive early warning.

#include <gtest/gtest.h>

#include "core/pca_scenario.hpp"
#include "core/trend.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using core::EarlyWarning;
using core::EarlyWarningConfig;
using core::TrendEstimator;

sim::SimTime at(sim::SimDuration d) { return sim::SimTime::origin() + d; }

TEST(TrendEstimator, RequiresPositiveWindow) {
    EXPECT_THROW(TrendEstimator{sim::SimDuration::zero()},
                 std::invalid_argument);
}

TEST(TrendEstimator, ExactSlopeOnCleanRamp) {
    TrendEstimator t{5_min};
    // 2 units per minute upward ramp, sampled every 10 s.
    for (int i = 0; i <= 18; ++i) {
        t.add(at(10_s * i), 50.0 + 2.0 * (10.0 * i / 60.0));
    }
    ASSERT_TRUE(t.slope_per_min().has_value());
    EXPECT_NEAR(*t.slope_per_min(), 2.0, 1e-9);
    EXPECT_NEAR(*t.latest(), 56.0, 1e-9);
}

TEST(TrendEstimator, FlatSignalHasZeroSlopeAndNoCrossing) {
    TrendEstimator t{5_min};
    for (int i = 0; i < 10; ++i) t.add(at(10_s * i), 97.0);
    ASSERT_TRUE(t.slope_per_min().has_value());
    EXPECT_NEAR(*t.slope_per_min(), 0.0, 1e-12);
    EXPECT_FALSE(t.time_to_cross(90.0).has_value());
}

TEST(TrendEstimator, TooFewSamples) {
    TrendEstimator t{5_min};
    t.add(at(0_s), 1.0);
    t.add(at(10_s), 2.0);
    EXPECT_FALSE(t.slope_per_min().has_value());
    EXPECT_EQ(t.count(), 2u);
}

TEST(TrendEstimator, WindowEvictsOldSamples) {
    TrendEstimator t{1_min};
    for (int i = 0; i < 30; ++i) t.add(at(10_s * i), 1.0 * i);
    // Only samples within the last minute remain (~7).
    EXPECT_LE(t.count(), 7u);
    EXPECT_GE(t.count(), 6u);
}

TEST(TrendEstimator, TimeToCrossFallingSignal) {
    TrendEstimator t{5_min};
    // SpO2 falling 1%/min from 96.
    for (int i = 0; i <= 12; ++i) {
        t.add(at(10_s * i), 96.0 - (10.0 * i / 60.0));
    }
    // Now at 94, falling 1/min: crosses 90 in ~4 minutes.
    const auto ttc = t.time_to_cross(90.0);
    ASSERT_TRUE(ttc.has_value());
    EXPECT_NEAR(ttc->to_seconds(), 240.0, 5.0);
    // Rising threshold in the opposite direction: no prediction.
    EXPECT_FALSE(t.time_to_cross(99.0).has_value());
}

TEST(TrendEstimator, RejectsBackwardsTime) {
    TrendEstimator t{1_min};
    t.add(at(10_s), 1.0);
    EXPECT_THROW(t.add(at(5_s), 2.0), std::invalid_argument);
}

TEST(TrendEstimator, NoisyRampSlopeRecovered) {
    TrendEstimator t{5_min};
    sim::RngStream rng{5};
    for (int i = 0; i <= 30; ++i) {
        t.add(at(10_s * i),
              80.0 - 0.5 * (10.0 * i / 60.0) + rng.normal(0.0, 0.3));
    }
    ASSERT_TRUE(t.slope_per_min().has_value());
    EXPECT_NEAR(*t.slope_per_min(), -0.5, 0.15);
}

class EarlyWarningTest : public ::testing::Test {
protected:
    EarlyWarningTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          ctx_{sim_, bus_, trace_} {}

    EarlyWarning& make(EarlyWarningConfig cfg = {}) {
        ew_.emplace(ctx_, "ew1", std::move(cfg));
        ew_->start();
        return *ew_;
    }

    void inject(const std::string& metric, double value, bool valid = true) {
        bus_.publish("inj", "vitals/bed1/" + metric,
                     net::VitalSignPayload{metric, value, valid});
    }

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    devices::DeviceContext ctx_;
    std::optional<EarlyWarning> ew_;
};

TEST_F(EarlyWarningTest, ConfigValidation) {
    EarlyWarningConfig cfg;
    cfg.horizon = sim::SimDuration::zero();
    EXPECT_THROW(EarlyWarning(ctx_, "x", cfg), std::invalid_argument);
}

TEST_F(EarlyWarningTest, QuietOnStableVitals) {
    auto& ew = make();
    for (int i = 0; i < 300; ++i) {
        inject("spo2", 97.0);
        inject("resp_rate", 14.0);
        sim_.run_for(2_s);
    }
    EXPECT_TRUE(ew.alerts().empty());
}

TEST_F(EarlyWarningTest, PredictsFallingSpo2BeforeThreshold) {
    auto& ew = make();
    // SpO2 declining 0.5%/min from 97: crosses 90 in 14 minutes; the
    // 10-minute horizon should trigger around 96->92.
    double spo2 = 97.0;
    double value_at_alert = -1.0;
    for (int i = 0; i < 600 && ew.alerts().empty(); ++i) {
        inject("spo2", spo2);
        sim_.run_for(2_s);
        spo2 -= 0.5 * (2.0 / 60.0);
        value_at_alert = spo2;
    }
    ASSERT_FALSE(ew.alerts().empty());
    const auto& a = ew.alerts()[0];
    EXPECT_EQ(a.metric, "spo2");
    EXPECT_GT(a.current_value, 90.0);       // warned BEFORE the crossing
    EXPECT_LT(a.slope_per_min, 0.0);
    EXPECT_LE(a.predicted_cross_in_s, 10.0 * 60.0 + 1.0);
    (void)value_at_alert;
}

TEST_F(EarlyWarningTest, RisingEtco2Predicted) {
    auto& ew = make();
    double etco2 = 42.0;
    for (int i = 0; i < 600 && ew.alerts().empty(); ++i) {
        inject("etco2", etco2);
        sim_.run_for(2_s);
        etco2 += 2.0 * (2.0 / 60.0);  // +2 mmHg/min toward the 60 limit
    }
    ASSERT_FALSE(ew.alerts().empty());
    EXPECT_EQ(ew.alerts()[0].metric, "etco2");
    EXPECT_LT(ew.alerts()[0].current_value, 60.0);
}

TEST_F(EarlyWarningTest, NoiseGateSuppressesTinySlopes) {
    EarlyWarningConfig cfg;
    cfg.min_slope_per_min = 0.2;
    auto& ew = make(cfg);
    // Falling at 0.05 %/min: real but below the gate.
    double spo2 = 92.0;
    for (int i = 0; i < 300; ++i) {
        inject("spo2", spo2);
        sim_.run_for(2_s);
        spo2 -= 0.05 * (2.0 / 60.0);
    }
    EXPECT_TRUE(ew.alerts().empty());
}

TEST_F(EarlyWarningTest, InvalidSamplesIgnored) {
    auto& ew = make();
    // A falling run of artifact-flagged samples must not build a trend.
    double spo2 = 97.0;
    for (int i = 0; i < 200; ++i) {
        inject("spo2", spo2, /*valid=*/false);
        sim_.run_for(2_s);
        spo2 -= 1.0 * (2.0 / 60.0);
    }
    EXPECT_TRUE(ew.alerts().empty());
    EXPECT_EQ(ew.trend("spo2"), nullptr);
}

TEST_F(EarlyWarningTest, RearmLimitsRepeatAlerts) {
    EarlyWarningConfig cfg;
    cfg.rearm = 10_min;
    auto& ew = make(cfg);
    double spo2 = 95.0;
    for (int i = 0; i < 450; ++i) {  // 15 min of steady decline
        inject("spo2", spo2);
        sim_.run_for(2_s);
        spo2 = std::max(90.5, spo2 - 0.4 * (2.0 / 60.0));
    }
    EXPECT_LE(ew.alerts().size(), 2u);
    EXPECT_GE(ew.alerts().size(), 1u);
}

TEST(EarlyWarningIntegration, WarnsAheadOfOverdoseThreshold) {
    // Full stack: the predictor's alert precedes the true SpO2-90
    // crossing during a real simulated overdose.
    core::PcaScenarioConfig cfg;
    cfg.seed = 17;
    cfg.duration = 2_h;
    cfg.patient =
        physio::nominal_parameters(physio::Archetype::kOpioidSensitive);
    cfg.demand_mode = core::DemandMode::kProxy;
    cfg.interlock = std::nullopt;

    core::PcaScenario scenario{cfg};
    devices::DeviceContext ctx{scenario.simulation(), scenario.bus(),
                               scenario.trace()};
    EarlyWarning ew{ctx, "ew1", EarlyWarningConfig{}};
    ew.start();
    const auto r = scenario.run();
    ASSERT_TRUE(r.hypoxia_onset_s.has_value());
    ASSERT_FALSE(ew.alerts().empty());
    // First predictive alert (any metric) strictly precedes the event.
    EXPECT_LT(ew.alerts()[0].at.to_seconds(), *r.hypoxia_onset_s);
}

}  // namespace
