/// \file test_pinned_outcomes.cpp
/// \brief Pins the exact outcome digest and run fingerprint of every
/// registry preset at the smoke-determinism configuration (minutes=1).
///
/// The golden traces catch event-level drift for the two traced presets;
/// this test extends the byte-identical contract to ALL presets by
/// pinning two 64-bit values per scenario:
///  - the run fingerprint (trace-derived, computed by the obs layer);
///  - a digest of the outcome map (metric names + exact double bits).
///
/// If a kernel change (queue order, arena recycling, RNG plumbing) or a
/// model change perturbs any preset in any way, this fails with the
/// preset's name. Intentional model changes must re-pin: rebuild and run
/// `mcps_scenario_tests --gtest_filter='*PrintCurrent*'` to print the
/// new constants, and say so in the PR.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "scenario/scenario.hpp"

namespace {

using namespace mcps;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

/// Order-sensitive digest of the outcome map: metric names byte-by-byte
/// plus the exact IEEE-754 bit pattern of each value (so even a 1-ulp
/// drift in any metric changes the digest).
std::uint64_t outcome_digest(const scenario::RunArtifacts& a) {
    std::uint64_t h = 0x6d637073ULL;  // 'mcps'
    for (const auto& [name, value] : a.outcome) {
        for (const char c : name) h = mix(h, static_cast<unsigned char>(c));
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof value);
        std::memcpy(&bits, &value, sizeof bits);
        h = mix(h, bits);
    }
    return h;
}

struct Pin {
    const char* preset;
    std::uint64_t fingerprint;
    std::uint64_t digest;
};

/// Captured at minutes=1 with default specs. Covers every preset in the
/// registry (asserted below, so adding a preset forces a new pin).
constexpr Pin kPins[] = {
    {"pca", 0x2d602a2bf10b25c0ULL, 0x86d5d17cd90541abULL},
    {"pca-open", 0x93b457f6f6524cbfULL, 0x24d2b8aee55928e8ULL},
    {"smart-alarm", 0xff9f292c6d94cc68ULL, 0x7ade0f1c9a8e84b1ULL},
    {"xray", 0x3e75b22c6ecccd12ULL, 0x33debf63349bf1c1ULL},
    {"xray-manual", 0xf3962074d1bfb982ULL, 0x68a7c3d7110ec94dULL},
};

scenario::RunArtifacts run_smoke(const std::string& preset) {
    scenario::ScenarioSpec spec = scenario::registry().default_spec(preset);
    spec.minutes = 1;
    return scenario::registry().run(spec);
}

TEST(PinnedOutcomes, EveryRegistryPresetIsPinned) {
    const auto names = scenario::registry().names();
    ASSERT_EQ(names.size(), std::size(kPins))
        << "registry gained/lost a preset; re-pin kPins";
    for (const auto& pin : kPins) {
        EXPECT_NE(scenario::registry().find(pin.preset), nullptr)
            << "pinned preset missing: " << pin.preset;
    }
}

TEST(PinnedOutcomes, FingerprintsMatchPinnedValues) {
    for (const auto& pin : kPins) {
        const auto a = run_smoke(pin.preset);
        EXPECT_EQ(a.fingerprint, pin.fingerprint)
            << pin.preset << ": run fingerprint drifted";
    }
}

TEST(PinnedOutcomes, OutcomeDigestsMatchPinnedValues) {
    for (const auto& pin : kPins) {
        const auto a = run_smoke(pin.preset);
        EXPECT_EQ(outcome_digest(a), pin.digest)
            << pin.preset << ": outcome metrics drifted";
    }
}

TEST(PinnedOutcomes, RerunIsBitIdentical) {
    // Same spec twice in one process: fingerprint AND digest must agree,
    // independent of any pinned value (catches cross-run state leaks).
    const auto a1 = run_smoke("pca");
    const auto a2 = run_smoke("pca");
    EXPECT_EQ(a1.fingerprint, a2.fingerprint);
    EXPECT_EQ(outcome_digest(a1), outcome_digest(a2));
}

/// Not a check — a re-pin helper. Disabled by default; run with
/// --gtest_also_run_disabled_tests (or filter *PrintCurrent*) after an
/// intentional model change to print fresh constants for kPins.
TEST(PinnedOutcomes, DISABLED_PrintCurrentPins) {
    for (const auto& name : scenario::registry().names()) {
        const auto a = run_smoke(name);
        std::printf("    {\"%s\", 0x%016llxULL, 0x%016llxULL},\n", name.c_str(),
                    static_cast<unsigned long long>(a.fingerprint),
                    static_cast<unsigned long long>(outcome_digest(a)));
    }
}

}  // namespace
