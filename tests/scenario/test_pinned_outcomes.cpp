/// \file test_pinned_outcomes.cpp
/// \brief Pins the exact outcome digest and run fingerprint of every
/// registry preset at the smoke-determinism configuration (minutes=1).
///
/// The golden traces catch event-level drift for the two traced presets;
/// this test extends the byte-identical contract to ALL presets by
/// pinning two 64-bit values per scenario:
///  - the run fingerprint (trace-derived, computed by the obs layer);
///  - a digest of the outcome map (metric names + exact double bits).
///
/// The pin table itself lives in tests/support/pinned_presets.hpp so the
/// serve suite can assert the same values through the full server path.
///
/// If a kernel change (queue order, arena recycling, RNG plumbing) or a
/// model change perturbs any preset in any way, this fails with the
/// preset's name. Intentional model changes must re-pin: rebuild and run
/// `mcps_scenario_tests --gtest_filter='*PrintCurrent*'` to print the
/// new constants, and say so in the PR.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "scenario/scenario.hpp"
#include "tests/support/pinned_presets.hpp"

namespace {

using namespace mcps;
using testsupport::kPins;
using testsupport::outcome_digest;

scenario::RunArtifacts run_smoke(const std::string& preset) {
    return scenario::registry().run(testsupport::pinned_spec(preset));
}

TEST(PinnedOutcomes, EveryRegistryPresetIsPinned) {
    const auto names = scenario::registry().names();
    ASSERT_EQ(names.size(), std::size(kPins))
        << "registry gained/lost a preset; re-pin kPins";
    for (const auto& pin : kPins) {
        EXPECT_NE(scenario::registry().find(pin.preset), nullptr)
            << "pinned preset missing: " << pin.preset;
    }
}

TEST(PinnedOutcomes, FingerprintsMatchPinnedValues) {
    for (const auto& pin : kPins) {
        const auto a = run_smoke(pin.preset);
        EXPECT_EQ(a.fingerprint, pin.fingerprint)
            << pin.preset << ": run fingerprint drifted";
    }
}

TEST(PinnedOutcomes, OutcomeDigestsMatchPinnedValues) {
    for (const auto& pin : kPins) {
        const auto a = run_smoke(pin.preset);
        EXPECT_EQ(outcome_digest(a), pin.digest)
            << pin.preset << ": outcome metrics drifted";
    }
}

TEST(PinnedOutcomes, RerunIsBitIdentical) {
    // Same spec twice in one process: fingerprint AND digest must agree,
    // independent of any pinned value (catches cross-run state leaks).
    const auto a1 = run_smoke("pca");
    const auto a2 = run_smoke("pca");
    EXPECT_EQ(a1.fingerprint, a2.fingerprint);
    EXPECT_EQ(outcome_digest(a1), outcome_digest(a2));
}

/// Not a check — a re-pin helper. Disabled by default; run with
/// --gtest_also_run_disabled_tests (or filter *PrintCurrent*) after an
/// intentional model change to print fresh constants for kPins.
TEST(PinnedOutcomes, DISABLED_PrintCurrentPins) {
    for (const auto& name : scenario::registry().names()) {
        const auto a = run_smoke(name);
        std::printf("    {\"%s\", 0x%016llxULL, 0x%016llxULL},\n", name.c_str(),
                    static_cast<unsigned long long>(a.fingerprint),
                    static_cast<unsigned long long>(outcome_digest(a)));
    }
}

}  // namespace
