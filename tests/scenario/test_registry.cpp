/// \file test_registry.cpp
/// \brief The scenario registry surface: metadata, default-config
/// equivalence with the historical hard-coded trace presets, smoke-run
/// fingerprint determinism, metrics side-car, and the SpecError
/// contract for unknown scenarios/knobs and domain violations.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/pca_scenario.hpp"
#include "core/xray_scenario.hpp"
#include "obs/obs.hpp"
#include "physio/physio.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace mcps;
using scenario::ScenarioSpec;
using scenario::SpecError;

std::string jsonl(const obs::EventLog& log) {
    std::ostringstream os;
    obs::write_jsonl(log, os);
    return os.str();
}

template <typename Fn>
std::string spec_error_of(Fn&& fn) {
    try {
        fn();
    } catch (const SpecError& e) {
        return e.what();
    }
    return "";
}

// ----------------------------------------------------------- metadata ----

TEST(ScenarioRegistry, EnumeratesTheBuiltInScenarios) {
    const auto names = scenario::registry().names();
    ASSERT_GE(names.size(), 4u);
    for (const char* expected :
         {"pca", "pca-open", "smart-alarm", "xray", "xray-manual"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    for (const auto& n : names) {
        const scenario::ScenarioInfo& info = scenario::registry().info(n);
        EXPECT_FALSE(info.description.empty()) << n;
        EXPECT_FALSE(info.knobs.empty()) << n;
        EXPECT_GT(info.default_minutes, 0u) << n;
    }
}

TEST(ScenarioRegistry, KnobMetadataCarriesDomains) {
    const auto& pca = scenario::registry().info("pca");
    const scenario::KnobInfo* interlock = pca.find_knob("interlock");
    ASSERT_NE(interlock, nullptr);
    EXPECT_EQ(interlock->kind, scenario::KnobInfo::Kind::kChoice);
    EXPECT_EQ(interlock->choices,
              (std::vector<std::string>{"off", "spo2", "dual"}));

    const auto& xray = scenario::registry().info("xray");
    const scenario::KnobInfo* procedures = xray.find_knob("procedures");
    ASSERT_NE(procedures, nullptr);
    EXPECT_EQ(procedures->kind, scenario::KnobInfo::Kind::kCount);
    EXPECT_EQ(pca.find_knob("bogus"), nullptr);
}

TEST(ScenarioRegistry, DefaultSpecUsesScenarioDuration) {
    const ScenarioSpec s = scenario::registry().default_spec("smart-alarm");
    EXPECT_EQ(s.name, "smart-alarm");
    EXPECT_EQ(s.minutes, 480u);
    EXPECT_EQ(s.seed, 42u);
    EXPECT_TRUE(s.overrides.empty());
}

// ------------------------------------- historical-config equivalence ----
//
// The registry presets must equal the configurations mcps_trace
// hard-coded before the registry existed: the committed golden traces
// were recorded with those, so any drift here is a byte-identity break.

TEST(ScenarioRegistry, PcaDefaultsMatchHistoricalTraceConfig) {
    ScenarioSpec spec;
    spec.name = "pca";  // seed=42 minutes=30: the golden-trace command
    const core::PcaScenarioConfig cfg = scenario::make_pca_config(spec);
    EXPECT_EQ(cfg.seed, 42u);
    EXPECT_EQ(cfg.duration, sim::SimDuration::minutes(30));
    EXPECT_EQ(cfg.demand_mode, core::DemandMode::kProxy);
    ASSERT_TRUE(cfg.interlock.has_value());
}

TEST(ScenarioRegistry, XrayDefaultsMatchHistoricalTraceConfig) {
    ScenarioSpec spec;
    spec.name = "xray";
    const core::XrayScenarioConfig cfg = scenario::make_xray_config(spec);
    EXPECT_EQ(cfg.seed, 42u);
    EXPECT_EQ(cfg.procedures, 10u);  // one per 3-minute gap of 30 minutes
    EXPECT_EQ(cfg.mode, core::CoordinationMode::kAutomated);

    spec.minutes = 2;  // below one gap: clamped to a single procedure
    EXPECT_EQ(scenario::make_xray_config(spec).procedures, 1u);
}

TEST(ScenarioRegistry, PcaEventStreamMatchesExplicitAssembly) {
    ScenarioSpec spec;
    spec.name = "pca";
    obs::EventLog via_registry;
    (void)scenario::registry().run(spec, {.events = &via_registry});

    // The pre-registry assembly, byte-for-byte (tools/mcps_trace before
    // the registry migration).
    core::PcaScenarioConfig cfg;
    cfg.seed = 42;
    cfg.duration = sim::SimDuration::minutes(30);
    cfg.patient =
        physio::nominal_parameters(physio::Archetype::kHighRisk);
    cfg.demand_mode = core::DemandMode::kProxy;
    obs::EventLog direct;
    cfg.events = &direct;
    (void)core::run_pca_scenario(cfg);

    ASSERT_GT(direct.size(), 0u);
    EXPECT_EQ(jsonl(via_registry), jsonl(direct));
}

TEST(ScenarioRegistry, XrayEventStreamMatchesExplicitAssembly) {
    ScenarioSpec spec;
    spec.name = "xray";
    obs::EventLog via_registry;
    (void)scenario::registry().run(spec, {.events = &via_registry});

    core::XrayScenarioConfig cfg;
    cfg.seed = 42;
    cfg.procedures = 10;
    obs::EventLog direct;
    cfg.events = &direct;
    (void)core::run_xray_scenario(cfg);

    ASSERT_GT(direct.size(), 0u);
    EXPECT_EQ(jsonl(via_registry), jsonl(direct));
}

// ------------------------------------------------- smoke & artifacts ----

TEST(ScenarioRegistry, OneMinuteSmokeRunsAreDeterministic) {
    for (const auto& name : scenario::registry().names()) {
        ScenarioSpec spec = scenario::registry().default_spec(name);
        spec.minutes = 1;

        const scenario::RunArtifacts a = scenario::registry().run(spec);
        const scenario::RunArtifacts b = scenario::registry().run(spec);
        EXPECT_NE(a.fingerprint, 0u) << name;
        EXPECT_EQ(a.fingerprint, b.fingerprint) << name;
        EXPECT_EQ(a.spec, spec) << name;
        ASSERT_FALSE(a.outcome.empty()) << name;
        EXPECT_NE(a.find("min_spo2"), nullptr) << name;
        EXPECT_EQ(a.fingerprint_hex().rfind("0x", 0), 0u);
        EXPECT_THROW((void)a.at("no_such_metric"), SpecError);
    }
}

TEST(ScenarioRegistry, MetricsSideCarIsPopulated) {
    ScenarioSpec spec = scenario::registry().default_spec("pca");
    spec.minutes = 1;
    obs::MetricsRegistry metrics;
    (void)scenario::registry().run(spec, {.metrics = &metrics});
    (void)scenario::registry().run(spec, {.metrics = &metrics});

    const obs::Counter* runs = metrics.find_counter("scenario/runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(runs->value(), 2u);
    const obs::Gauge* spo2 = metrics.find_gauge("scenario/pca/min_spo2");
    ASSERT_NE(spo2, nullptr);
    EXPECT_GT(spo2->value(), 0.0);
}

// ------------------------------------------------------ error surface ----

TEST(ScenarioRegistry, UnknownScenarioListsKnownNames) {
    const std::string msg = spec_error_of(
        [] { (void)scenario::registry().info("nope"); });
    EXPECT_NE(msg.find("unknown scenario 'nope'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'pca'"), std::string::npos) << msg;
}

TEST(ScenarioRegistry, UnknownKnobAndDomainViolationsThrow) {
    ScenarioSpec spec;
    spec.name = "pca";
    spec.set("bogus", "1");
    EXPECT_NE(spec_error_of([&] { (void)scenario::registry().run(spec); })
                  .find("has no knob 'bogus'"),
              std::string::npos);

    ScenarioSpec choice;
    choice.name = "pca";
    choice.set("demand", "sideways");
    EXPECT_NE(spec_error_of([&] { (void)scenario::make_pca_config(choice); })
                  .find("expected one of 'normal' 'proxy'"),
              std::string::npos);

    ScenarioSpec range;
    range.name = "pca";
    range.set("loss", "1.5");
    EXPECT_NE(spec_error_of([&] { (void)scenario::make_pca_config(range); })
                  .find("a number in [0, 0.9]"),
              std::string::npos);

    ScenarioSpec count;
    count.name = "xray";
    count.set("procedures", "0");
    EXPECT_NE(spec_error_of([&] { (void)scenario::make_xray_config(count); })
                  .find("an integer in [1, 100000]"),
              std::string::npos);
}

TEST(ScenarioRegistry, PolicyRequiresAnEngagedInterlock) {
    ScenarioSpec spec;
    spec.name = "pca-open";  // preset has no interlock
    spec.set("policy", "fail-safe");
    EXPECT_NE(spec_error_of([&] { (void)scenario::make_pca_config(spec); })
                  .find("requires an interlock"),
              std::string::npos);

    spec.overrides.clear();
    spec.set("interlock", "spo2");
    spec.set("policy", "fail-operational");
    const core::PcaScenarioConfig cfg = scenario::make_pca_config(spec);
    ASSERT_TRUE(cfg.interlock.has_value());
    EXPECT_EQ(cfg.interlock->mode, core::InterlockMode::kSpO2Only);
    EXPECT_EQ(cfg.interlock->data_loss,
              core::DataLossPolicy::kFailOperational);
}

TEST(ScenarioRegistry, FamilyMismatchIsRejected) {
    ScenarioSpec spec;
    spec.name = "xray";
    EXPECT_NE(spec_error_of([&] { (void)scenario::make_pca_config(spec); })
                  .find("xray-family"),
              std::string::npos);
}

}  // namespace
