/// \file test_cli_args.cpp
/// \brief The shared CLI parsing layer (tools/cli.hpp): exact error
/// message contract and Args cursor semantics. The three mcps_* tools
/// surface these strings verbatim, so they are pinned here.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/cli.hpp"

namespace {

using mcps::cli::Args;
using mcps::cli::CliError;

template <typename Fn>
std::string cli_error_of(Fn&& fn) {
    try {
        fn();
    } catch (const CliError& e) {
        return e.message;
    }
    return "";
}

TEST(CliParse, U64AcceptsStrictDecimal) {
    EXPECT_EQ(mcps::cli::parse_u64("--seed", "42"), 42u);
    EXPECT_EQ(mcps::cli::parse_u64("--seed", "0"), 0u);
    EXPECT_EQ(cli_error_of([] { mcps::cli::parse_u64("--seed", "4x"); }),
              "--seed: expected an integer, got '4x'");
    EXPECT_EQ(cli_error_of([] { mcps::cli::parse_u64("--seed", ""); }),
              "--seed: expected an integer, got ''");
    EXPECT_EQ(cli_error_of([] { mcps::cli::parse_u64("--seed", "-1"); }),
              "--seed: expected an integer, got '-1'");
}

TEST(CliParse, DoubleConsumesWholeToken) {
    EXPECT_DOUBLE_EQ(mcps::cli::parse_double("--loss", "0.25"), 0.25);
    EXPECT_DOUBLE_EQ(mcps::cli::parse_double("--loss", "1e-3"), 1e-3);
    EXPECT_EQ(cli_error_of([] { mcps::cli::parse_double("--loss", "0.5x"); }),
              "--loss: expected a number, got '0.5x'");
    EXPECT_EQ(cli_error_of([] { mcps::cli::parse_double("--loss", ""); }),
              "--loss: expected a number, got ''");
}

TEST(CliParse, UnsignedListRejectsEmptyEntries) {
    EXPECT_EQ(mcps::cli::parse_unsigned_list("--jobs", "1,4,8"),
              (std::vector<unsigned>{1, 4, 8}));
    EXPECT_EQ(mcps::cli::parse_unsigned_list("--jobs", "2"),
              (std::vector<unsigned>{2}));
    EXPECT_EQ(
        cli_error_of([] { mcps::cli::parse_unsigned_list("--jobs", "1,,2"); }),
        "--jobs: empty entry in '1,,2'");
    EXPECT_EQ(
        cli_error_of([] { mcps::cli::parse_unsigned_list("--jobs", "1,"); }),
        "--jobs: empty entry in '1,'");
    EXPECT_EQ(
        cli_error_of([] { mcps::cli::parse_unsigned_list("--jobs", "1,x"); }),
        "--jobs: expected an integer, got 'x'");
}

TEST(CliArgs, CursorWalksTokensInOrder) {
    Args args{{"run", "--seed", "7", "trailing"}};
    EXPECT_FALSE(args.done());
    EXPECT_EQ(args.remaining(), 4u);
    EXPECT_EQ(args.next(), "run");
    EXPECT_EQ(args.next(), "--seed");
    EXPECT_EQ(args.value("--seed"), "7");
    EXPECT_EQ(args.rest(), (std::vector<std::string_view>{"trailing"}));
    EXPECT_EQ(args.next(), "trailing");
    EXPECT_TRUE(args.done());
}

TEST(CliArgs, MissingValueNamesTheFlag) {
    Args args{{"--out"}};
    EXPECT_EQ(args.next(), "--out");
    EXPECT_EQ(cli_error_of([&] { (void)args.value("--out"); }),
              "--out: missing value");
}

TEST(CliArgs, ArgcArgvConstructorSkipsProgramName) {
    const char* argv[] = {"mcps_tool", "check", "--golden", "g.jsonl"};
    Args args{4, const_cast<char**>(argv)};
    EXPECT_EQ(args.remaining(), 3u);
    EXPECT_EQ(args.next(), "check");
}

}  // namespace
