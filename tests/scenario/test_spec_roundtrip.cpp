/// \file test_spec_roundtrip.cpp
/// \brief ScenarioSpec serialization: the round-trip property
/// (`parse_spec(s.to_text()) == s`, `parse_spec_json(s.to_json()) == s`)
/// over randomized knob assignments sampled from the registry's own
/// knob domains, plus the exact parse-error contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

#include "scenario/scenario.hpp"
#include "sim/rng.hpp"

namespace {

using namespace mcps;
using scenario::KnobInfo;
using scenario::ScenarioSpec;
using scenario::SpecError;

template <typename Fn>
std::string spec_error_of(Fn&& fn) {
    try {
        fn();
    } catch (const SpecError& e) {
        return e.what();
    }
    return "";
}

// ------------------------------------------------------- fixed specs ----

TEST(SpecRoundTrip, TextFormIsCanonical) {
    ScenarioSpec s;
    s.name = "pca";
    s.seed = 7;
    s.minutes = 120;
    s.set("demand", "proxy");
    s.set("interlock", "dual");
    EXPECT_EQ(s.to_text(), "pca seed=7 minutes=120 demand=proxy interlock=dual");
    EXPECT_EQ(scenario::parse_spec(s.to_text()), s);
}

TEST(SpecRoundTrip, JsonFormRoundTrips) {
    ScenarioSpec s;
    s.name = "xray-manual";
    s.minutes = 60;
    s.set("procedures", "40");
    EXPECT_EQ(s.to_json(),
              "{\"scenario\": \"xray-manual\", \"seed\": 42, \"minutes\": 60, "
              "\"overrides\": {\"procedures\": \"40\"}}");
    EXPECT_EQ(scenario::parse_spec_json(s.to_json()), s);
}

TEST(SpecRoundTrip, DefaultsAreExplicitInSerializedForms) {
    const ScenarioSpec s = scenario::parse_spec("pca");
    EXPECT_EQ(s.seed, 42u);
    EXPECT_EQ(s.minutes, 30u);
    EXPECT_EQ(s.to_text(), "pca seed=42 minutes=30");
}

TEST(SpecRoundTrip, SetReplacesExistingKeyInPlace) {
    ScenarioSpec s;
    s.name = "pca";
    s.set("interlock", "spo2");
    s.set("demand", "proxy");
    s.set("interlock", "dual");
    ASSERT_EQ(s.overrides.size(), 2u);
    EXPECT_EQ(*s.find("interlock"), "dual");
    EXPECT_EQ(s.overrides[0].first, "interlock");  // order preserved
}

// -------------------------------------------------- randomized property ----

/// Sample one valid override value from a knob's declared domain.
std::string sample_value(const KnobInfo& k, sim::RngStream& rng) {
    switch (k.kind) {
        case KnobInfo::Kind::kChoice:
            return k.choices[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(k.choices.size()) - 1))];
        case KnobInfo::Kind::kNumber: {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.6g",
                          rng.uniform(k.lo, k.hi));
            return buf;
        }
        case KnobInfo::Kind::kCount: {
            const auto hi = static_cast<std::int64_t>(
                k.max_count < 1000 ? k.max_count : 1000);
            return std::to_string(rng.uniform_int(1, hi));
        }
    }
    return "";
}

TEST(SpecRoundTrip, RandomizedSpecsRoundTripAndResolve) {
    sim::RngStream rng{2026, "spec.roundtrip"};
    const auto& reg = scenario::registry();
    const auto names = reg.names();
    ASSERT_GE(names.size(), 4u);

    for (int iter = 0; iter < 200; ++iter) {
        const std::string& name = names[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(names.size()) - 1))];
        const scenario::ScenarioInfo& info = reg.info(name);

        ScenarioSpec spec;
        spec.name = name;
        spec.seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
        spec.minutes =
            static_cast<std::uint64_t>(rng.uniform_int(1, 480));

        // Knobs apply in declaration order; "policy" is only legal when
        // an interlock is engaged, which the sampler tracks the same way
        // the registry validates it. The hospital family's one
        // cross-field constraint (wards <= patients) is tracked the same
        // way: the sampled ward count is clamped under the effective
        // patient count (preset default or sampled override).
        bool interlock_engaged = (name == "pca");
        std::uint64_t patients = 0;
        if (info.family == scenario::ScenarioFamily::kHospital) {
            patients = static_cast<std::uint64_t>(
                scenario::make_hospital_config(reg.default_spec(name))
                    .patients);
        }
        for (const KnobInfo& k : info.knobs) {
            if (!rng.bernoulli(0.5)) continue;
            if (k.name == "policy" && !interlock_engaged) continue;
            std::string v = sample_value(k, rng);
            if (k.name == "interlock") interlock_engaged = (v != "off");
            if (k.name == "patients") patients = std::stoull(v);
            if (k.name == "wards" && std::stoull(v) > patients) {
                v = std::to_string(patients);
            }
            spec.set(k.name, std::move(v));
        }

        // Both serializations reproduce the spec exactly...
        EXPECT_EQ(scenario::parse_spec(spec.to_text()), spec)
            << spec.to_text();
        EXPECT_EQ(scenario::parse_spec_json(spec.to_json()), spec)
            << spec.to_json();

        // ...and the registry resolves every sampled assignment into a
        // concrete config without complaint (domain sampling is sound).
        if (info.family == scenario::ScenarioFamily::kPca) {
            EXPECT_NO_THROW((void)scenario::make_pca_config(spec))
                << spec.to_text();
        } else if (info.family == scenario::ScenarioFamily::kHospital) {
            EXPECT_NO_THROW((void)scenario::make_hospital_config(spec))
                << spec.to_text();
        } else {
            EXPECT_NO_THROW((void)scenario::make_xray_config(spec))
                << spec.to_text();
        }
    }
}

// ----------------------------------------------------- error contract ----

TEST(SpecErrors, EmptyAndMalformedText) {
    EXPECT_EQ(spec_error_of([] { (void)scenario::parse_spec("  "); }),
              "spec: empty spec");
    EXPECT_EQ(spec_error_of([] { (void)scenario::parse_spec("seed=1"); }),
              "spec: expected a scenario name first, got 'seed=1'");
    EXPECT_EQ(spec_error_of([] { (void)scenario::parse_spec("pca demand"); }),
              "spec: expected key=value, got 'demand'");
    EXPECT_EQ(
        spec_error_of([] { (void)scenario::parse_spec("pca seed=x"); }),
        "spec: seed: expected an integer, got 'x'");
    EXPECT_EQ(spec_error_of(
                  [] { (void)scenario::parse_spec("pca seed=1 seed=2"); }),
              "spec: duplicate key 'seed'");
    EXPECT_EQ(spec_error_of([] { (void)scenario::parse_spec("pca A=1"); }),
              "spec: invalid key 'A' (want [a-z0-9_-]+)");
}

TEST(SpecErrors, MalformedJson) {
    EXPECT_EQ(spec_error_of([] { (void)scenario::parse_spec_json("{}"); }),
              "spec json: missing 'scenario' key");
    EXPECT_EQ(spec_error_of([] {
                  (void)scenario::parse_spec_json("{\"scenario\": \"pca\"} x");
              }),
              "spec json: trailing content after object");
    EXPECT_EQ(spec_error_of([] {
                  (void)scenario::parse_spec_json(
                      "{\"scenario\": \"pca\", \"bogus\": 1}");
              }),
              "spec json: unknown key 'bogus'");
    EXPECT_NE(spec_error_of([] { (void)scenario::parse_spec_json("{"); }),
              "");
}

TEST(SpecErrors, SetValidatesKeyAndValue) {
    ScenarioSpec s;
    s.name = "pca";
    EXPECT_THROW(s.set("Bad Key", "x"), SpecError);
    EXPECT_THROW(s.set("demand", "has space"), SpecError);
    EXPECT_THROW(s.set("demand", ""), SpecError);
}

}  // namespace
