/// \file test_dbm.cpp
/// \brief Unit + property tests for Bounds and Difference Bound Matrices.

#include <gtest/gtest.h>

#include "ta/dbm.hpp"

namespace {

using mcps::ta::Bound;
using mcps::ta::Dbm;

TEST(Bound, OrderingAndKinds) {
    EXPECT_LT(Bound::strict(5), Bound::weak(5));  // x<5 is tighter than x<=5
    EXPECT_LT(Bound::weak(4), Bound::strict(5));
    EXPECT_LT(Bound::weak(5), Bound::infinity());
    EXPECT_TRUE(Bound::infinity().is_infinite());
    EXPECT_TRUE(Bound::strict(3).is_strict());
    EXPECT_FALSE(Bound::weak(3).is_strict());
    EXPECT_EQ(Bound::weak(3).value(), 3);
    EXPECT_EQ(Bound::strict(-2).value(), -2);
}

TEST(Bound, AdditionConcatenatesPaths) {
    EXPECT_EQ(Bound::weak(2) + Bound::weak(3), Bound::weak(5));
    EXPECT_EQ(Bound::strict(2) + Bound::weak(3), Bound::strict(5));
    EXPECT_EQ(Bound::weak(2) + Bound::strict(3), Bound::strict(5));
    EXPECT_EQ(Bound::weak(2) + Bound::infinity(), Bound::infinity());
    EXPECT_EQ(Bound::weak(-4) + Bound::weak(3), Bound::weak(-1));
}

TEST(Bound, ToString) {
    EXPECT_EQ(Bound::weak(7).to_string(), "<=7");
    EXPECT_EQ(Bound::strict(7).to_string(), "<7");
    EXPECT_EQ(Bound::infinity().to_string(), "<inf");
}

TEST(Dbm, ZeroZoneContainsOnlyOrigin) {
    const Dbm z = Dbm::zero(2);
    EXPECT_FALSE(z.empty());
    // x1 <= 0 and x1 >= 0.
    EXPECT_EQ(z.at(1, 0), Bound::zero_weak());
    EXPECT_EQ(z.at(0, 1), Bound::zero_weak());
}

TEST(Dbm, UniverseAllowsAnyNonNegativePoint) {
    Dbm z{2};
    EXPECT_FALSE(z.empty());
    // Constraining to x1 == 1000 still nonempty.
    EXPECT_TRUE(z.constrain_upper(1, 1000, false));
    EXPECT_TRUE(z.constrain_lower(1, 1000, false));
    EXPECT_FALSE(z.empty());
}

TEST(Dbm, NeedsAtLeastOneClock) {
    EXPECT_THROW(Dbm{0}, std::invalid_argument);
}

TEST(Dbm, UpRemovesUpperBounds) {
    Dbm z = Dbm::zero(2);
    z.up();
    EXPECT_TRUE(z.at(1, 0).is_infinite());
    EXPECT_TRUE(z.at(2, 0).is_infinite());
    // But the clocks remain equal (x1 - x2 == 0).
    EXPECT_EQ(z.at(1, 2), Bound::zero_weak());
    EXPECT_EQ(z.at(2, 1), Bound::zero_weak());
}

TEST(Dbm, ResetPinsClockToZero) {
    Dbm z = Dbm::zero(2);
    z.up();
    // Let 5..10 units pass on both clocks.
    ASSERT_TRUE(z.constrain_upper(1, 10, false));
    ASSERT_TRUE(z.constrain_lower(1, 5, false));
    z.reset(1);
    EXPECT_EQ(z.at(1, 0), Bound::zero_weak());
    EXPECT_EQ(z.at(0, 1), Bound::zero_weak());
    // x2 keeps its constraints: x2 - x1 in [5, 10].
    EXPECT_EQ(z.at(2, 1), Bound::weak(10));
    EXPECT_EQ(z.at(1, 2), Bound::weak(-5));
    EXPECT_THROW(z.reset(0), std::invalid_argument);
}

TEST(Dbm, ContradictionEmptiesZone) {
    Dbm z{1};
    z.up();
    ASSERT_TRUE(z.constrain_upper(1, 5, false));
    EXPECT_FALSE(z.constrain_lower(1, 6, false));  // x<=5 && x>=6
    EXPECT_TRUE(z.empty());
}

TEST(Dbm, StrictBoundaryContradiction) {
    Dbm z{1};
    z.up();
    ASSERT_TRUE(z.constrain_upper(1, 5, true));   // x < 5
    EXPECT_FALSE(z.constrain_lower(1, 5, false));  // x >= 5: empty
    EXPECT_TRUE(z.empty());
}

TEST(Dbm, WeakBoundaryIntersectionNonEmpty) {
    Dbm z{1};
    z.up();
    ASSERT_TRUE(z.constrain_upper(1, 5, false));  // x <= 5
    EXPECT_TRUE(z.constrain_lower(1, 5, false));  // x >= 5: the point x=5
    EXPECT_FALSE(z.empty());
}

TEST(Dbm, DiagonalConstraintPropagates) {
    // x1 - x2 <= -3 (x2 at least 3 ahead), x1 >= 2 => x2 >= 5.
    Dbm z{2};
    z.up();
    ASSERT_TRUE(z.constrain(1, 2, Bound::weak(-3)));
    ASSERT_TRUE(z.constrain_lower(1, 2, false));
    // Canonical form must reflect x2 >= 5: (0,2) <= -5.
    EXPECT_LE(z.at(0, 2), Bound::weak(-5));
}

TEST(Dbm, IncludesReflexiveAndOrdering) {
    Dbm big{2};
    big.up();
    Dbm small = Dbm::zero(2);
    EXPECT_TRUE(big.includes(small));
    EXPECT_FALSE(small.includes(big));
    EXPECT_TRUE(big.includes(big));
    EXPECT_TRUE(small.includes(small));
    // Empty zone is included in everything.
    Dbm empty{2};
    empty.constrain_upper(1, 1, false);
    empty.constrain_lower(1, 2, false);
    ASSERT_TRUE(empty.empty());
    EXPECT_TRUE(small.includes(empty));
    EXPECT_FALSE(empty.includes(small));
}

TEST(Dbm, EqualityAndHashing) {
    Dbm a = Dbm::zero(2);
    Dbm b = Dbm::zero(2);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.hash(), b.hash());
    b.up();
    EXPECT_FALSE(a == b);
}

TEST(Dbm, ExtrapolationLoosensLargeBounds) {
    Dbm z{1};
    z.up();
    ASSERT_TRUE(z.constrain_upper(1, 1000, false));
    ASSERT_TRUE(z.constrain_lower(1, 900, false));
    Dbm before = z;
    z.extrapolate(10);  // max constant 10: both bounds beyond it
    // Upper bound gone, lower bound clamped to >10.
    EXPECT_TRUE(z.at(1, 0).is_infinite());
    EXPECT_EQ(z.at(0, 1), Bound::strict(-10));
    EXPECT_TRUE(z.includes(before));  // extrapolation only grows zones
}

TEST(Dbm, ExtrapolationPreservesSmallBounds) {
    Dbm z{1};
    z.up();
    ASSERT_TRUE(z.constrain_upper(1, 5, false));
    Dbm before = z;
    z.extrapolate(10);
    EXPECT_TRUE(z == before);
}

TEST(Dbm, ToStringRendersMatrix) {
    Dbm z = Dbm::zero(1);
    const auto s = z.to_string();
    EXPECT_NE(s.find("<=0"), std::string::npos);
    Dbm e{1};
    e.constrain_upper(1, 1, false);
    e.constrain_lower(1, 2, false);
    EXPECT_EQ(e.to_string(), "(empty zone)");
}

TEST(Dbm, OutOfRangeClockThrows) {
    Dbm z{2};
    EXPECT_THROW(z.constrain(5, 0, Bound::weak(1)), std::out_of_range);
    EXPECT_THROW((void)z.at(0, 3), std::out_of_range);
}

/// Property sweep: delay-then-constrain sequences keep zones canonical
/// (idempotent under canonicalize) and monotone under inclusion.
class DbmProperty : public ::testing::TestWithParam<int> {};

TEST_P(DbmProperty, CanonicalFormIsIdempotentAndUpGrows) {
    const int ub = GetParam();
    Dbm z = Dbm::zero(3);
    z.up();
    ASSERT_TRUE(z.constrain_upper(1, ub, false));
    ASSERT_TRUE(z.constrain_lower(2, 1, false));
    ASSERT_TRUE(z.constrain(1, 2, Bound::weak(ub / 2)));

    Dbm copy = z;
    copy.canonicalize();
    EXPECT_TRUE(copy == z);  // already canonical

    Dbm delayed = z;
    delayed.up();
    EXPECT_TRUE(delayed.includes(z));  // time elapse only grows the zone

    Dbm reset = z;
    reset.reset(1);
    // After reset, x1 == 0 exactly.
    EXPECT_EQ(reset.at(1, 0), Bound::zero_weak());
    EXPECT_EQ(reset.at(0, 1), Bound::zero_weak());
}

INSTANTIATE_TEST_SUITE_P(UpperBounds, DbmProperty,
                         ::testing::Values(2, 10, 100, 10000));

}  // namespace
