/// \file test_reachability.cpp
/// \brief Tests for zone-graph reachability and the GPCA verification
/// models — the executable counterpart of experiment E5.

#include <gtest/gtest.h>

#include "ta/ta.hpp"

namespace {

using namespace mcps::ta;

TEST(Reachability, TrivialSelfReachable) {
    TimedAutomaton ta{"t"};
    ta.add_clock("x");
    const auto l0 = ta.add_location("Init");
    ta.set_initial(l0);
    const auto r = check_reachability(ta, "Init");
    EXPECT_TRUE(r.reachable);
    EXPECT_EQ(r.target_location, "Init");
    EXPECT_TRUE(r.trace.empty());
}

TEST(Reachability, UnreachableLocation) {
    TimedAutomaton ta{"t"};
    const ClockId x = ta.add_clock("x");
    const auto l0 = ta.add_location("Init");
    const auto l1 = ta.add_location("Stuck");
    ta.set_initial(l0);
    // Edge guarded x <= 5 but also x >= 10: infeasible.
    ta.add_edge(l0, l1,
                {Constraint::le(x, 5), Constraint::ge(x, 10)}, {}, "never");
    const auto r = check_reachability(ta, "Stuck");
    EXPECT_FALSE(r.reachable);
    EXPECT_GT(r.states_explored, 0u);
}

TEST(Reachability, TimingGateRespected) {
    // Reaching Done requires waiting past x >= 100; reachable because
    // time can elapse freely (no invariant).
    TimedAutomaton ta{"t"};
    const ClockId x = ta.add_clock("x");
    const auto l0 = ta.add_location("Init");
    const auto l1 = ta.add_location("Done");
    ta.set_initial(l0);
    ta.add_edge(l0, l1, {Constraint::ge(x, 100)}, {}, "wait");
    EXPECT_TRUE(check_reachability(ta, "Done").reachable);
}

TEST(Reachability, InvariantForcesDeadlineMiss) {
    // Invariant x <= 5 at Init; edge requires x >= 10: Done unreachable.
    TimedAutomaton ta{"t"};
    const ClockId x = ta.add_clock("x");
    const auto l0 = ta.add_location("Init", {Constraint::le(x, 5)});
    const auto l1 = ta.add_location("Done");
    ta.set_initial(l0);
    ta.add_edge(l0, l1, {Constraint::ge(x, 10)}, {}, "late");
    EXPECT_FALSE(check_reachability(ta, "Done").reachable);
}

TEST(Reachability, TraceIsReconstructed) {
    TimedAutomaton ta{"t"};
    const ClockId x = ta.add_clock("x");
    const auto a = ta.add_location("A");
    const auto b = ta.add_location("B");
    const auto c = ta.add_location("C");
    ta.set_initial(a);
    ta.add_edge(a, b, {}, {x}, "step1");
    ta.add_edge(b, c, {Constraint::ge(x, 1)}, {}, "step2");
    const auto r = check_reachability(ta, "C");
    ASSERT_TRUE(r.reachable);
    EXPECT_EQ(r.trace, (std::vector<std::string>{"step1", "step2"}));
}

TEST(Reachability, CyclesTerminateViaExtrapolation) {
    // A self-loop that resets a clock: infinitely many concrete states,
    // finitely many zones. Must terminate and find nothing.
    TimedAutomaton ta{"t"};
    const ClockId x = ta.add_clock("x");
    const auto l0 = ta.add_location("Spin");
    const auto bad = ta.add_location("Bad");
    ta.set_initial(l0);
    ta.add_edge(l0, l0, {Constraint::ge(x, 3)}, {x}, "loop");
    ta.add_edge(l0, bad, {Constraint::le(x, -1)}, {}, "impossible");
    const auto r = check_reachability(ta, "Bad");
    EXPECT_FALSE(r.reachable);
    EXPECT_LT(r.states_stored, 10u);
}

TEST(Reachability, MaxStatesCapThrows) {
    // Two clocks resetting alternately create a growing zone graph;
    // strangle the cap to force the error path.
    TimedAutomaton ta{"t"};
    const ClockId x = ta.add_clock("x");
    const ClockId y = ta.add_clock("y");
    const auto l0 = ta.add_location("L");
    ta.set_initial(l0);
    ta.add_edge(l0, l0, {Constraint::ge(x, 1)}, {x}, "a");
    ta.add_edge(l0, l0, {Constraint::ge(y, 2)}, {y}, "b");
    ReachabilityOptions opts;
    opts.max_states = 2;
    EXPECT_THROW(
        (void)check_reachability(ta, "Nowhere", opts), std::runtime_error);
}

TEST(Reachability, NullTargetRejected) {
    TimedAutomaton ta{"t"};
    ta.add_clock("x");
    ta.add_location("L");
    ta.set_initial(0);
    EXPECT_THROW((void)check_reachability(ta, LocationPredicate{}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// GPCA models (P1 / P2): the E5 verification suite.
// ---------------------------------------------------------------------

TEST(GpcaModels, CorrectPumpSatisfiesLockoutProperty) {
    const auto r = check_reachability(build_pump_lockout_model(), "Violation");
    EXPECT_FALSE(r.reachable);
}

TEST(GpcaModels, FaultyPumpViolatesWithCounterexample) {
    PumpModelParams p;
    p.faulty_no_lockout_guard = true;
    const auto r = check_reachability(build_pump_lockout_model(p), "Violation");
    ASSERT_TRUE(r.reachable);
    // The counterexample is the classic double-grant: grant, complete,
    // grant again inside the lockout.
    ASSERT_GE(r.trace.size(), 2u);
    EXPECT_NE(r.trace.front().find("grant"), std::string::npos);
    EXPECT_NE(r.trace.back().find("grant"), std::string::npos);
}

TEST(GpcaModels, LockoutBoundaryExact) {
    // Lockout of 0 duration is rejected at the parameter level? No — the
    // model accepts any positive value; check a tiny lockout still safe.
    PumpModelParams p;
    p.lockout_s = 1;
    p.bolus_duration_s = 1;
    EXPECT_FALSE(
        check_reachability(build_pump_lockout_model(p), "Violation").reachable);
}

TEST(GpcaModels, ClosedLoopMeetsDeadlineWhenBudgetsFit) {
    InterlockModelParams p;  // 30 + 3 + 2 <= 60
    const auto r = check_reachability(build_closed_loop_model(p), "Overdue");
    EXPECT_FALSE(r.reachable);
}

TEST(GpcaModels, ClosedLoopMissesDeadlineWhenDetectionTooSlow) {
    InterlockModelParams p;
    p.detect_max_s = 70;  // 70 + 3 + 2 > 60
    const auto r = check_reachability(build_closed_loop_model(p), "Overdue");
    EXPECT_TRUE(r.reachable);
}

TEST(GpcaModels, ClosedLoopBoundaryIsTight) {
    // Exactly at the boundary: worst case detect+command+react == deadline
    // means the deadline is met (Overdue requires h > deadline strictly).
    InterlockModelParams p;
    p.detect_max_s = 55;
    p.command_max_s = 3;
    p.pump_react_max_s = 2;
    p.deadline_s = 60;
    EXPECT_FALSE(
        check_reachability(build_closed_loop_model(p), "Overdue").reachable);
    // One second over: violated.
    p.detect_max_s = 56;
    EXPECT_TRUE(
        check_reachability(build_closed_loop_model(p), "Overdue").reachable);
}

TEST(GpcaModels, NetworkBudgetMatters) {
    // Same detection, bigger command latency: flips the verdict (the
    // model-level version of experiment E2).
    InterlockModelParams p;
    p.detect_max_s = 30;
    p.command_max_s = 40;  // 30+40+2 > 60
    EXPECT_TRUE(
        check_reachability(build_closed_loop_model(p), "Overdue").reachable);
}

TEST(GpcaModels, VerifySuiteAggregates) {
    const auto rep = verify_gpca_suite();
    EXPECT_TRUE(rep.lockout_safe);
    EXPECT_TRUE(rep.response_safe);
    EXPECT_GT(rep.lockout_details.states_explored, 0u);
    EXPECT_GT(rep.response_details.states_explored, 0u);
}

TEST(GpcaModels, PumpFarmScalesAndStaysSafe) {
    EXPECT_THROW((void)build_pump_farm(0), std::invalid_argument);
    const auto farm2 = build_pump_farm(2);
    const auto farm3 = build_pump_farm(3);
    EXPECT_EQ(farm2.num_locations(), 81u);   // (3*3)^2
    EXPECT_EQ(farm3.num_locations(), 729u);  // (3*3)^3
    const auto r2 = check_reachability(farm2, "Violation");
    const auto r3 = check_reachability(farm3, "Violation");
    EXPECT_FALSE(r2.reachable);
    EXPECT_FALSE(r3.reachable);
    EXPECT_GT(r3.states_stored, r2.states_stored);  // state-space growth
}

/// Parameterized sweep of P2 across detection budgets: the checker's
/// verdict must exactly match the analytic worst-case inequality.
class ClosedLoopBudgetSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ClosedLoopBudgetSweep, VerdictMatchesArithmetic) {
    const auto [detect, command, react] = GetParam();
    InterlockModelParams p;
    p.detect_min_s = 1;
    p.detect_max_s = detect;
    p.command_max_s = command;
    p.pump_react_max_s = react;
    p.deadline_s = 60;
    const bool should_be_safe = detect + command + react <= 60;
    const auto r = check_reachability(build_closed_loop_model(p), "Overdue");
    EXPECT_EQ(!r.reachable, should_be_safe)
        << "detect=" << detect << " command=" << command << " react=" << react;
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ClosedLoopBudgetSweep,
    ::testing::Combine(::testing::Values(10, 30, 55, 58),
                       ::testing::Values(1, 3, 10),
                       ::testing::Values(1, 2, 5)));

}  // namespace
