/// \file test_time.cpp
/// \brief Unit tests for SimTime / SimDuration.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/time.hpp"

namespace {

using namespace mcps::sim;
using namespace mcps::sim::literals;

TEST(SimDuration, NamedConstructorsAgree) {
    EXPECT_EQ(SimDuration::millis(1).ticks(), 1000);
    EXPECT_EQ(SimDuration::seconds(1).ticks(), 1'000'000);
    EXPECT_EQ(SimDuration::minutes(1), SimDuration::seconds(60));
    EXPECT_EQ(SimDuration::hours(1), SimDuration::minutes(60));
    EXPECT_EQ(SimDuration::hours(2), 2_h);
    EXPECT_EQ(120_s, 2_min);
    EXPECT_EQ(1500_us, SimDuration::micros(1500));
}

TEST(SimDuration, FromSecondsRejectsNonFinite) {
    EXPECT_THROW((void)SimDuration::from_seconds(std::nan("")),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)SimDuration::from_seconds(std::numeric_limits<double>::infinity()),
        std::invalid_argument);
    EXPECT_THROW((void)SimDuration::from_seconds(
                     -std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
}

TEST(SimDuration, FromSecondsRounds) {
    EXPECT_EQ(SimDuration::from_seconds(0.0000015).ticks(), 2);
    EXPECT_EQ(SimDuration::from_seconds(1.5), 1500_ms);
    EXPECT_EQ(SimDuration::from_seconds(-2.0), -(2_s));
}

TEST(SimDuration, Arithmetic) {
    EXPECT_EQ(2_s + 500_ms, 2500_ms);
    EXPECT_EQ(2_s - 500_ms, 1500_ms);
    EXPECT_EQ(3 * (10_ms), 30_ms);
    EXPECT_EQ((10_ms) * 3, 30_ms);
    EXPECT_EQ((10_s) / 4, 2500_ms);
    EXPECT_EQ((10_s) / (3_s), 3);
    EXPECT_EQ((10_s) % (3_s), 1_s);
    EXPECT_EQ(-(5_s) + 5_s, SimDuration::zero());
    SimDuration d = 1_s;
    d += 1_s;
    d -= 500_ms;
    d *= 2;
    EXPECT_EQ(d, 3_s);
}

TEST(SimDuration, FractionalScale) {
    EXPECT_EQ((10_s) * 0.5, 5_s);
    EXPECT_EQ((1_s) * 0.0015, SimDuration::from_seconds(0.0015));
}

TEST(SimDuration, Conversions) {
    EXPECT_DOUBLE_EQ((1500_ms).to_seconds(), 1.5);
    EXPECT_DOUBLE_EQ((1500_us).to_millis(), 1.5);
    EXPECT_DOUBLE_EQ((90_s).to_minutes(), 1.5);
}

TEST(SimDuration, Ordering) {
    EXPECT_LT(1_s, 2_s);
    EXPECT_LE(2_s, 2_s);
    EXPECT_GT(1_s, 999_ms);
    EXPECT_LT(-(1_s), SimDuration::zero());
}

TEST(SimDuration, ToStringPicksUnit) {
    EXPECT_EQ((2500_ms).to_string(), "2.500s");
    EXPECT_EQ((750_ms).to_string(), "750.000ms");
    EXPECT_EQ((12_us).to_string(), "12us");
    EXPECT_EQ((-(2_s)).to_string(), "-2.000s");
}

TEST(SimTime, OriginAndAdvance) {
    const SimTime t0 = SimTime::origin();
    EXPECT_EQ(t0.ticks(), 0);
    const SimTime t1 = t0 + 90_s;
    EXPECT_EQ(t1.since_origin(), 90_s);
    EXPECT_EQ(t1 - t0, 90_s);
    EXPECT_EQ(t1 - 90_s, t0);
    SimTime t = t0;
    t += 5_s;
    EXPECT_EQ(t.to_seconds(), 5.0);
}

TEST(SimTime, CommutativeAdd) {
    EXPECT_EQ(SimTime::origin() + 3_s, 3_s + SimTime::origin());
}

TEST(SimTime, NeverIsSentinel) {
    EXPECT_TRUE(SimTime::never().is_never());
    EXPECT_FALSE(SimTime::origin().is_never());
    EXPECT_GT(SimTime::never(), SimTime::origin() + 1000000_h);
    EXPECT_EQ(SimTime::never().to_string(), "never");
}

TEST(SimTime, ToStringFormatsHms) {
    const SimTime t = SimTime::origin() + 1_h + 2_min + 3_s + 45_ms;
    EXPECT_EQ(t.to_string(), "01:02:03.045");
}

TEST(SimTime, AtConstructor) {
    EXPECT_EQ(SimTime::at(2_h), SimTime::origin() + 2_h);
}

}  // namespace
