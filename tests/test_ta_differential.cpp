/// \file test_ta_differential.cpp
/// \brief Differential testing of the symbolic checker against the
/// concrete simulator on randomly generated timed automata.
///
/// Soundness direction: anything a concrete random run reaches MUST be
/// declared reachable by the zone-graph checker (the checker
/// over-approximates nothing; zones are exact for TA reachability).
/// The converse (checker-reachable but never simulated) is expected —
/// random walks are incomplete — so it is not asserted.

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "ta/ta.hpp"

namespace {

using namespace mcps::ta;

/// "c3", "L7", ... — built up with += so GCC 12's -Wrestrict false
/// positive on `const char* + std::string&&` (PR 105329) stays quiet.
std::string tag(char prefix, std::size_t i) {
    std::string s(1, prefix);
    s += std::to_string(i);
    return s;
}

/// Generate a random timed automaton with \p locations locations,
/// \p clocks clocks and ~2 edges per location, with small integer
/// guard/invariant constants.
TimedAutomaton random_automaton(mcps::sim::RngStream& rng,
                                std::size_t locations, std::size_t clocks) {
    TimedAutomaton ta{"rand"};
    std::vector<ClockId> cs;
    for (std::size_t c = 0; c < clocks; ++c) {
        cs.push_back(ta.add_clock(tag('c', c)));
    }
    for (std::size_t l = 0; l < locations; ++l) {
        Guard inv;
        // 40%: an upper-bound invariant on a random clock.
        if (rng.bernoulli(0.4)) {
            inv.push_back(Constraint::le(
                cs[rng.pick(cs.size())],
                static_cast<std::int32_t>(rng.uniform_int(1, 10))));
        }
        ta.add_location(tag('L', l), std::move(inv));
    }
    ta.set_initial(0);
    const std::size_t edges = locations * 2;
    for (std::size_t e = 0; e < edges; ++e) {
        const auto src = rng.pick(locations);
        const auto dst = rng.pick(locations);
        Guard g;
        if (rng.bernoulli(0.5)) {
            const auto c = cs[rng.pick(cs.size())];
            const auto k = static_cast<std::int32_t>(rng.uniform_int(0, 8));
            g.push_back(rng.bernoulli(0.5) ? Constraint::ge(c, k)
                                           : Constraint::le(c, k));
        }
        std::vector<ClockId> resets;
        if (rng.bernoulli(0.5)) resets.push_back(cs[rng.pick(cs.size())]);
        ta.add_edge(src, dst, std::move(g), std::move(resets), tag('e', e));
    }
    return ta;
}

class TaDifferential : public ::testing::TestWithParam<int> {};

TEST_P(TaDifferential, SimulatedReachImpliesSymbolicReach) {
    mcps::sim::RngStream rng{static_cast<std::uint64_t>(GetParam()), "diff"};
    const auto ta = random_automaton(rng, 5, 2);

    // Which locations do 50 random runs touch?
    SimulateOptions opts;
    opts.max_steps = 200;
    opts.max_delay_step = 12.0;
    std::vector<bool> touched(ta.num_locations(), false);
    for (int r = 0; r < 50; ++r) {
        const auto run = simulate_run(ta, rng, opts);
        for (const auto loc : run.visited) touched[loc] = true;
    }

    for (std::size_t loc = 0; loc < ta.num_locations(); ++loc) {
        if (!touched[loc]) continue;
        const auto result = check_reachability(
            ta, [loc](std::size_t l) { return l == loc; });
        EXPECT_TRUE(result.reachable)
            << "simulator reached " << ta.location_name(loc)
            << " but the checker says unreachable (seed " << GetParam() << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, TaDifferential,
                         ::testing::Range(1, 21));  // 20 random models

TEST(TaDifferentialGpca, CheckerVerdictsConsistentWithSimulation) {
    // On the real models: the checker's SAFE verdicts were already shown
    // consistent (test_ta_simulate.cpp); here the VIOLATED verdict is
    // cross-checked — the faulty pump's symbolic counterexample length
    // is also achievable concretely.
    PumpModelParams faulty;
    faulty.faulty_no_lockout_guard = true;
    const auto model = build_pump_lockout_model(faulty);
    const auto cex = check_reachability(model, "Violation");
    ASSERT_TRUE(cex.reachable);
    mcps::sim::RngStream rng{99, "gpca-diff"};
    SimulateOptions opts;
    opts.max_steps = 100;
    bool found = false;
    std::size_t best_len = SIZE_MAX;
    for (int r = 0; r < 500 && !found; ++r) {
        const auto run = simulate_run(model, rng, opts);
        for (std::size_t i = 0; i < run.visited.size(); ++i) {
            if (model.location_name(run.visited[i]).find("Violation") !=
                std::string::npos) {
                found = true;
                best_len = std::min(best_len, i);
                break;
            }
        }
    }
    ASSERT_TRUE(found);
    // The symbolic trace is minimal-ish (BFS): no concrete run can beat
    // it by more than the init step accounting.
    EXPECT_GE(best_len, cex.trace.size());
}

}  // namespace
