/// \file test_nurse_response.cpp
/// \brief Tests for the antagonist rescue pathway and the fatigued
/// nurse-response model.

#include <gtest/gtest.h>

#include "core/nurse_response.hpp"
#include "core/pca_scenario.hpp"
#include "devices/devices.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using core::NurseConfig;
using core::NurseResponder;

TEST(Antagonist, ReversesRespiratoryDepression) {
    physio::Patient p{
        physio::nominal_parameters(physio::Archetype::kOpioidSensitive)};
    p.set_infusion_rate(physio::InfusionRate::mg_per_hour(6.0));
    for (int i = 0; i < 4800; ++i) p.step(0.5);  // 40 min: deeply depressed
    const double depressed_drive = p.respiratory_drive();
    ASSERT_LT(depressed_drive, 0.6);
    p.give_antagonist(6.0, 25.0 * 60.0);
    for (int i = 0; i < 240; ++i) p.step(0.5);  // 2 min to re-equilibrate
    EXPECT_GT(p.respiratory_drive(), depressed_drive + 0.2);
    EXPECT_NEAR(p.antagonist_level(), std::exp2(-120.0 / (25 * 60)), 0.02);
}

TEST(Antagonist, WearsOffAndRenarcotizes) {
    physio::Patient p{
        physio::nominal_parameters(physio::Archetype::kOpioidSensitive)};
    // Sustained infusion keeps the opioid level up.
    p.set_infusion_rate(physio::InfusionRate::mg_per_hour(6.0));
    for (int i = 0; i < 4800; ++i) p.step(0.5);  // 40 min
    ASSERT_LT(p.respiratory_drive(), 0.6);
    p.give_antagonist(6.0, 5.0 * 60.0);  // short half-life
    for (int i = 0; i < 600; ++i) p.step(0.5);  // 5 min: rescued
    const double rescued = p.respiratory_drive();
    for (int i = 0; i < 4800; ++i) p.step(0.5);  // 40 min: worn off
    EXPECT_LT(p.respiratory_drive(), rescued);  // renarcotization
    EXPECT_LT(p.antagonist_level(), 0.01);
}

TEST(Antagonist, ParameterValidation) {
    physio::Patient p{physio::PatientParameters{}};
    EXPECT_THROW(p.give_antagonist(0.0, 60.0), std::invalid_argument);
    EXPECT_THROW(p.give_antagonist(5.0, 0.0), std::invalid_argument);
}

class NurseTest : public ::testing::Test {
protected:
    NurseTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)},
          ctx_{sim_, bus_, trace_} {}

    NurseResponder& make(NurseConfig cfg = {}) {
        cfg.pump_name = "";  // no pump in these unit tests
        nurse_.emplace(ctx_, "n1", patient_, std::move(cfg));
        nurse_->start();
        // Keep physiology moving so bedside assessment sees live values.
        sim_.schedule_periodic(500_ms, [this] { patient_.step(0.5); });
        return *nurse_;
    }

    void ring(const std::string& topic = "alarm/monitor1") {
        bus_.publish("monitor1", topic,
                     net::StatusPayload{"threshold", "spo2:low"});
    }

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    physio::Patient patient_;
    devices::DeviceContext ctx_;
    std::optional<NurseResponder> nurse_;
};

TEST_F(NurseTest, ConfigValidation) {
    NurseConfig cfg;
    cfg.base_response = sim::SimDuration::zero();
    EXPECT_THROW(NurseResponder(ctx_, "n", patient_, cfg),
                 std::invalid_argument);
    cfg = {};
    cfg.max_response_factor = 0.5;
    EXPECT_THROW(NurseResponder(ctx_, "n", patient_, cfg),
                 std::invalid_argument);
}

TEST_F(NurseTest, DispatchesAndFalseTripsOnHealthyPatient) {
    auto& n = make();
    ring();
    sim_.run_for(20_min);
    EXPECT_EQ(n.stats().alarms_heard, 1u);
    EXPECT_EQ(n.stats().dispatches, 1u);
    EXPECT_EQ(n.stats().false_trips, 1u);
    EXPECT_EQ(n.stats().rescues, 0u);
    ASSERT_EQ(n.stats().response_times_s.size(), 1u);
    EXPECT_GT(n.stats().response_times_s[0], 0.0);
}

TEST_F(NurseTest, RescuesDepressedPatient) {
    // A runaway infusion on a sensitive patient keeps the depression
    // sustained through the nurse's response delay.
    patient_ = physio::Patient{
        physio::nominal_parameters(physio::Archetype::kOpioidSensitive)};
    patient_.set_infusion_rate(physio::InfusionRate::mg_per_hour(6.0));
    auto& n = make();
    sim_.run_for(30_min);  // hypercapnia develops (EtCO2 > 55)
    ring();
    sim_.run_for(20_min);
    EXPECT_EQ(n.stats().rescues, 1u);
    EXPECT_GT(patient_.antagonist_level(), 0.0);
    ASSERT_TRUE(n.stats().first_rescue_latency_s.has_value());
    EXPECT_GT(*n.stats().first_rescue_latency_s, 0.0);
}

TEST_F(NurseTest, OneDispatchAtATime) {
    auto& n = make();
    for (int i = 0; i < 5; ++i) {
        ring();
        sim_.run_for(5_s);
    }
    EXPECT_EQ(n.stats().alarms_heard, 5u);
    EXPECT_EQ(n.stats().dispatches, 1u);  // the rest arrived mid-dispatch
}

TEST_F(NurseTest, FatigueGrowsWithAlarmBurden) {
    NurseConfig cfg;
    cfg.fatigue_per_alarm = 0.2;
    cfg.ignore_per_alarm = 0.0;  // isolate the slowdown mechanism
    auto& n = make(cfg);
    EXPECT_DOUBLE_EQ(n.current_fatigue_factor(), 1.0);
    // Ring 10 alarms spaced out enough for dispatch cycles to finish.
    for (int i = 0; i < 10; ++i) {
        ring();
        sim_.run_for(6_min);
    }
    EXPECT_GT(n.current_fatigue_factor(), 1.5);
    // The factor is capped.
    EXPECT_LE(n.current_fatigue_factor(), cfg.max_response_factor);
    // And it decays once the window slides past the burst.
    sim_.run_for(2_h);
    EXPECT_DOUBLE_EQ(n.current_fatigue_factor(), 1.0);
}

TEST_F(NurseTest, DesensitizationIgnoresAlarmsUnderFlood) {
    NurseConfig cfg;
    cfg.ignore_per_alarm = 0.05;
    auto& n = make(cfg);
    for (int i = 0; i < 60; ++i) {
        ring();
        sim_.run_for(1_min);
    }
    EXPECT_GT(n.stats().ignored, 0u);
    EXPECT_LT(n.stats().dispatches, n.stats().alarms_heard);
}

TEST_F(NurseTest, TopicFilterSelectsAlarmSource) {
    NurseConfig cfg;
    cfg.alarm_topic = "alarm/smart1";
    auto& n = make(cfg);
    ring("alarm/monitor1");  // wrong source
    sim_.run_for(10_min);
    EXPECT_EQ(n.stats().alarms_heard, 0u);
    ring("alarm/smart1");
    sim_.run_for(10_min);
    EXPECT_EQ(n.stats().alarms_heard, 1u);
}

TEST_F(NurseTest, StopDetaches) {
    auto& n = make();
    n.stop();
    ring();
    sim_.run_for(10_min);
    EXPECT_EQ(n.stats().alarms_heard, 0u);
}

TEST(NurseIntegration, RescueStopsPumpAndPreventsSevereHypoxemia) {
    // Full stack: sensitive patient, proxy pressing, open loop; the
    // nurse (summoned by the smart alarm) is the only protection.
    core::PcaScenarioConfig cfg;
    cfg.seed = 31;
    cfg.duration = 3_h;
    cfg.patient =
        physio::nominal_parameters(physio::Archetype::kOpioidSensitive);
    cfg.demand_mode = core::DemandMode::kProxy;
    cfg.interlock = std::nullopt;
    cfg.with_smart_alarm = true;

    core::PcaScenario scenario{cfg};
    devices::DeviceContext ctx{scenario.simulation(), scenario.bus(),
                               scenario.trace()};
    NurseConfig ncfg;
    ncfg.alarm_topic = "alarm/smart1";
    NurseResponder nurse{ctx, "n1", scenario.patient(), ncfg};
    nurse.start();
    const auto r = scenario.run();

    EXPECT_GE(nurse.stats().rescues, 1u);
    EXPECT_FALSE(r.severe_hypoxemia);
    // The rescue paused the pump (remote stop executed).
    EXPECT_GT(scenario.pump().stats().remote_stops, 0u);
}

}  // namespace
