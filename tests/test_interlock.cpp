/// \file test_interlock.cpp
/// \brief Tests for the PCA safety interlock app: trigger logic,
/// persistence, command retry over lossy links, data-loss policies and
/// auto-resume.

#include <gtest/gtest.h>

#include "core/pca_interlock.hpp"
#include "devices/devices.hpp"
#include "ice/ice.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;
using core::DataLossPolicy;
using core::InterlockConfig;
using core::InterlockMode;
using core::InterlockState;
using core::PcaInterlock;

/// Fixture with a full closed-loop stack; vitals can also be injected
/// directly onto the bus to drive the interlock deterministically.
class InterlockTest : public ::testing::Test {
protected:
    InterlockTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)},
          ctx_{sim_, bus_, trace_},
          pump_{ctx_, "pump1", patient_, devices::Prescription{}},
          oxi_{ctx_, "oxi1", patient_},
          cap_{ctx_, "cap1", patient_} {}

    /// Start devices + supervisor and deploy an interlock with \p cfg.
    PcaInterlock& deploy(InterlockConfig cfg) {
        for (devices::Device* d :
             std::initializer_list<devices::Device*>{&pump_, &oxi_, &cap_}) {
            d->set_heartbeat_period(2_s);
            d->start();
            registry_.add(*d);
        }
        supervisor_.emplace(ctx_, "sup1", registry_);
        supervisor_->start();
        app_.emplace(ctx_, "ilk", std::move(cfg));
        const auto r = supervisor_->deploy(*app_);
        if (!r.ok) throw std::runtime_error("deploy failed: " + r.error);
        sim_.run_for(3_s);  // pump through self-test
        return *app_;
    }

    /// Bind the interlock directly (no supervisor, no live sensors):
    /// isolates the trigger/persistence/recovery logic from liveness
    /// monitoring. Vitals are driven exclusively via inject().
    PcaInterlock& bind_direct(InterlockConfig cfg) {
        pump_.start();
        app_.emplace(ctx_, "ilk", std::move(cfg));
        std::vector<ice::DeviceDescriptor> devs{
            {"pump1", devices::DeviceKind::kInfusionPump,
             pump_.capabilities(), &pump_},
            {"oxi1", devices::DeviceKind::kPulseOximeter,
             oxi_.capabilities(), &oxi_},
        };
        if (app_->config().mode == InterlockMode::kDualSensor) {
            devs.push_back({"cap1", devices::DeviceKind::kCapnometer,
                            cap_.capabilities(), &cap_});
        }
        app_->bind(devs);
        app_->on_app_start();
        sim_.run_for(3_s);  // pump through self-test
        return *app_;
    }

    /// Inject a vital sample as if a sensor published it.
    void inject(const std::string& metric, double value, bool valid = true) {
        bus_.publish("injector", "vitals/bed1/" + metric,
                     net::VitalSignPayload{metric, value, valid});
    }

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    physio::Patient patient_;
    devices::DeviceContext ctx_;
    devices::GpcaPump pump_;
    devices::PulseOximeter oxi_;
    devices::Capnometer cap_;
    ice::DeviceRegistry registry_;
    std::optional<ice::Supervisor> supervisor_;
    std::optional<PcaInterlock> app_;
};

TEST_F(InterlockTest, ConfigValidation) {
    InterlockConfig cfg;
    cfg.spo2_stop = 95.0;
    cfg.spo2_warn = 93.0;  // stop above warn: nonsense
    EXPECT_THROW(PcaInterlock(ctx_, "x", cfg), std::invalid_argument);
    cfg = {};
    cfg.check_period = sim::SimDuration::zero();
    EXPECT_THROW(PcaInterlock(ctx_, "x", cfg), std::invalid_argument);
}

TEST_F(InterlockTest, RequirementsDependOnMode) {
    InterlockConfig cfg;
    cfg.mode = InterlockMode::kSpO2Only;
    PcaInterlock a{ctx_, "a", cfg};
    EXPECT_EQ(a.requirements().size(), 2u);
    cfg.mode = InterlockMode::kDualSensor;
    PcaInterlock b{ctx_, "b", cfg};
    EXPECT_EQ(b.requirements().size(), 3u);
}

TEST_F(InterlockTest, StaysMonitoringOnHealthyVitals) {
    auto& ilk = deploy(InterlockConfig{});
    sim_.run_for(2_min);
    EXPECT_EQ(ilk.state(), InterlockState::kMonitoring);
    EXPECT_EQ(ilk.stats().stops_issued, 0u);
    EXPECT_TRUE(pump_.delivering());
}

TEST_F(InterlockTest, PersistentHypoxiaTriggersStop) {
    InterlockConfig cfg;
    cfg.mode = InterlockMode::kSpO2Only;
    cfg.persistence = 5_s;
    auto& ilk = bind_direct(cfg);
    for (int i = 0; i < 10; ++i) {
        inject("spo2", 84.0);
        sim_.run_for(1_s);
    }
    EXPECT_EQ(ilk.state(), InterlockState::kTriggered);
    EXPECT_EQ(ilk.stats().stops_issued, 1u);
    sim_.run_for(2_s);
    EXPECT_FALSE(pump_.delivering());
    EXPECT_GT(ilk.stats().acks_received, 0u);
}

TEST_F(InterlockTest, TransientDipDoesNotTrigger) {
    InterlockConfig cfg;
    cfg.mode = InterlockMode::kSpO2Only;
    cfg.persistence = 10_s;
    auto& ilk = bind_direct(cfg);
    // 5 s dip, then recovery — shorter than persistence.
    for (int i = 0; i < 5; ++i) {
        inject("spo2", 84.0);
        sim_.run_for(1_s);
    }
    for (int i = 0; i < 20; ++i) {
        inject("spo2", 97.0);
        sim_.run_for(1_s);
    }
    EXPECT_EQ(ilk.stats().stops_issued, 0u);
    EXPECT_TRUE(pump_.delivering());
}

TEST_F(InterlockTest, DualSensorTriggersOnCapnometryAlone) {
    InterlockConfig cfg;
    cfg.mode = InterlockMode::kDualSensor;
    cfg.persistence = 5_s;
    auto& ilk = bind_direct(cfg);
    for (int i = 0; i < 10; ++i) {
        inject("spo2", 96.0);      // oximetry still fine
        inject("etco2", 3.0);      // waveform lost => apnea indicator
        inject("resp_rate", 2.0);
        sim_.run_for(1_s);
    }
    EXPECT_EQ(ilk.state(), InterlockState::kTriggered);
}

TEST_F(InterlockTest, StopCommandRetriesOverLossyLink) {
    InterlockConfig cfg;
    cfg.mode = InterlockMode::kSpO2Only;
    cfg.persistence = 2_s;
    cfg.command_retry = 1_s;
    auto& ilk = bind_direct(cfg);
    // Make the pump's inbound link terrible AFTER binding.
    net::ChannelParameters lossy;
    lossy.loss_probability = 0.8;
    bus_.set_endpoint_channel("pump1", lossy);
    for (int i = 0; i < 30; ++i) {
        inject("spo2", 80.0);
        sim_.run_for(1_s);
    }
    // Despite 80% loss, retries got the stop through eventually.
    EXPECT_FALSE(pump_.delivering());
    EXPECT_GT(ilk.stats().stop_commands_sent, 1u);
    ASSERT_TRUE(ilk.stats().last_stop_latency_ms.has_value());
    EXPECT_GT(*ilk.stats().last_stop_latency_ms, 0.0);
}

TEST_F(InterlockTest, FailSafeStopsPumpOnSensorSilence) {
    InterlockConfig cfg;
    cfg.data_loss = DataLossPolicy::kFailSafe;
    cfg.staleness_limit = 6_s;
    auto& ilk = deploy(cfg);
    sim_.run_for(30_s);  // healthy
    ASSERT_TRUE(pump_.delivering());
    oxi_.crash();  // SpO2 stream stops mid-run
    sim_.run_for(15_s);
    EXPECT_EQ(ilk.state(), InterlockState::kDataLoss);
    EXPECT_FALSE(pump_.delivering());
    EXPECT_GT(ilk.stats().data_loss_stops, 0u);
}

TEST_F(InterlockTest, FailOperationalKeepsRunningOnSensorSilence) {
    InterlockConfig cfg;
    cfg.data_loss = DataLossPolicy::kFailOperational;
    cfg.staleness_limit = 6_s;
    auto& ilk = deploy(cfg);
    sim_.run_for(30_s);
    oxi_.crash();
    sim_.run_for(30_s);
    EXPECT_EQ(ilk.state(), InterlockState::kMonitoring);
    EXPECT_TRUE(pump_.delivering());
    EXPECT_EQ(ilk.stats().data_loss_stops, 0u);
}

TEST_F(InterlockTest, AutoResumeAfterRecoveryHold) {
    InterlockConfig cfg;
    cfg.mode = InterlockMode::kSpO2Only;
    cfg.persistence = 3_s;
    cfg.auto_resume = true;
    cfg.recovery_hold = 30_s;
    auto& ilk = bind_direct(cfg);
    for (int i = 0; i < 8; ++i) {
        inject("spo2", 82.0);
        sim_.run_for(1_s);
    }
    ASSERT_EQ(ilk.state(), InterlockState::kTriggered);
    sim_.run_for(2_s);
    ASSERT_FALSE(pump_.delivering());
    // Vitals recover and hold.
    for (int i = 0; i < 40; ++i) {
        inject("spo2", 97.0);
        sim_.run_for(1_s);
    }
    EXPECT_EQ(ilk.state(), InterlockState::kMonitoring);
    EXPECT_EQ(ilk.stats().resumes_issued, 1u);
    sim_.run_for(2_s);
    EXPECT_TRUE(pump_.delivering());
}

TEST_F(InterlockTest, NoAutoResumeWhenDisabled) {
    InterlockConfig cfg;
    cfg.mode = InterlockMode::kSpO2Only;
    cfg.persistence = 3_s;
    cfg.auto_resume = false;
    auto& ilk = bind_direct(cfg);
    for (int i = 0; i < 8; ++i) {
        inject("spo2", 82.0);
        sim_.run_for(1_s);
    }
    ASSERT_EQ(ilk.state(), InterlockState::kTriggered);
    for (int i = 0; i < 600; ++i) {
        inject("spo2", 97.0);
        sim_.run_for(1_s);
    }
    EXPECT_EQ(ilk.stats().resumes_issued, 0u);
    EXPECT_FALSE(pump_.delivering());
}

TEST_F(InterlockTest, ClosedLoopEndToEndPreventsSevereHypoxemia) {
    // Full-stack sanity: a sensitive patient under proxy pressing is
    // protected by the dual-sensor interlock (the E1 claim in miniature).
    patient_ = physio::Patient{
        physio::nominal_parameters(physio::Archetype::kOpioidSensitive)};
    // Re-wire devices to the new patient is not possible (references),
    // so drive the existing typical-adult patient with a huge basal rate
    // instead: the interlock must stop it before severe hypoxemia.
    auto& ilk = deploy(InterlockConfig{});
    devices::Prescription hot;
    hot.basal = physio::InfusionRate::mg_per_hour(6.0);
    hot.max_hourly = physio::Dose::mg(6.0);
    pump_.operator_pause();
    pump_.set_prescription(hot);
    pump_.operator_resume();
    sim_.schedule_periodic(500_ms, [this] { patient_.step(0.5); });
    double min_spo2 = 101;
    sim_.schedule_periodic(1_s, [&] {
        min_spo2 = std::min(min_spo2, patient_.spo2().as_percent());
    });
    sim_.run_for(2_h);
    EXPECT_GT(ilk.stats().stops_issued, 0u);
    EXPECT_GT(min_spo2, 85.0);
}

TEST_F(InterlockTest, StateNames) {
    EXPECT_EQ(core::to_string(InterlockState::kMonitoring), "monitoring");
    EXPECT_EQ(core::to_string(InterlockMode::kDualSensor), "dual-sensor");
    EXPECT_EQ(core::to_string(DataLossPolicy::kFailSafe), "fail-safe");
}

}  // namespace
