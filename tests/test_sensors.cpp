/// \file test_sensors.cpp
/// \brief Tests for the sensor channel pipeline and the oximeter /
/// capnometer / bedside-monitor devices.

#include <gtest/gtest.h>

#include "devices/devices.hpp"
#include "physio/population.hpp"

namespace {

using namespace mcps;
using namespace mcps::sim::literals;

class SensorsTest : public ::testing::Test {
protected:
    SensorsTest()
        : sim_{42},
          bus_{sim_, net::ChannelParameters::ideal()},
          patient_{physio::nominal_parameters(physio::Archetype::kTypicalAdult)},
          ctx_{sim_, bus_, trace_} {}

    sim::Simulation sim_;
    net::Bus bus_;
    sim::TraceRecorder trace_;
    physio::Patient patient_;
    devices::DeviceContext ctx_;
};

TEST_F(SensorsTest, ChannelConfigValidation) {
    devices::SensorChannelConfig cfg;
    cfg.metric = "x";
    EXPECT_THROW(devices::SensorChannel(cfg, nullptr, "t", sim_.rng("r")),
                 std::invalid_argument);
    cfg.metric = "";
    EXPECT_THROW(
        devices::SensorChannel(cfg, [] { return 0.0; }, "t", sim_.rng("r")),
        std::invalid_argument);
    cfg.metric = "x";
    cfg.sample_period = sim::SimDuration::zero();
    EXPECT_THROW(
        devices::SensorChannel(cfg, [] { return 0.0; }, "t", sim_.rng("r")),
        std::invalid_argument);
}

TEST_F(SensorsTest, NoiselessChannelTracksTruth) {
    devices::SensorChannelConfig cfg;
    cfg.metric = "x";
    double truth = 10.0;
    devices::SensorChannel ch{cfg, [&] { return truth; }, "t", sim_.rng("r")};
    auto s = ch.sample(sim_.now());
    ASSERT_TRUE(s.has_value());
    EXPECT_DOUBLE_EQ(s->value, 10.0);
    EXPECT_TRUE(s->valid);
    truth = 20.0;
    EXPECT_DOUBLE_EQ(ch.sample(sim_.now() + 1_s)->value, 20.0);
}

TEST_F(SensorsTest, AveragingWindowLagsStepChange) {
    devices::SensorChannelConfig cfg;
    cfg.metric = "x";
    cfg.averaging_window = 8_s;
    double truth = 100.0;
    devices::SensorChannel ch{cfg, [&] { return truth; }, "t", sim_.rng("r")};
    for (int i = 0; i < 10; ++i) (void)ch.sample(sim_.now() + 1_s * i);
    truth = 80.0;  // step change
    const auto just_after = ch.sample(sim_.now() + 10_s);
    ASSERT_TRUE(just_after.has_value());
    // The moving average is still dominated by old samples.
    EXPECT_GT(just_after->value, 90.0);
    // After a full window, the reading converges.
    std::optional<mcps::net::VitalSignPayload> later;
    for (int i = 11; i < 20; ++i) later = ch.sample(sim_.now() + 1_s * i);
    ASSERT_TRUE(later.has_value());
    EXPECT_NEAR(later->value, 80.0, 2.5);
}

TEST_F(SensorsTest, NoiseHasConfiguredSpread) {
    devices::SensorChannelConfig cfg;
    cfg.metric = "x";
    cfg.noise_sd = 2.0;
    cfg.clamp_hi = 1e9;
    devices::SensorChannel ch{cfg, [] { return 50.0; }, "t", sim_.rng("r")};
    sim::RunningStats st;
    for (int i = 0; i < 5000; ++i) st.add(ch.sample(sim_.now() + 1_s * i)->value);
    EXPECT_NEAR(st.mean(), 50.0, 0.2);
    EXPECT_NEAR(st.stddev(), 2.0, 0.2);
}

TEST_F(SensorsTest, DropoutSilencesChannel) {
    devices::SensorChannelConfig cfg;
    cfg.metric = "x";
    devices::SensorChannel ch{cfg, [] { return 1.0; }, "t", sim_.rng("r")};
    ch.force_dropout(sim_.now(), 10_s);
    EXPECT_TRUE(ch.in_dropout(sim_.now()));
    EXPECT_FALSE(ch.sample(sim_.now()).has_value());
    EXPECT_FALSE(ch.sample(sim_.now() + 9_s).has_value());
    EXPECT_TRUE(ch.sample(sim_.now() + 10_s).has_value());
}

TEST_F(SensorsTest, ArtifactBiasesAndOptionallyFlags) {
    devices::SensorChannelConfig cfg;
    cfg.metric = "x";
    cfg.artifact_magnitude = -20.0;
    cfg.artifact_flagged = true;
    devices::SensorChannel ch{cfg, [] { return 95.0; }, "t", sim_.rng("r")};
    ch.force_artifact(sim_.now(), 5_s);
    const auto s = ch.sample(sim_.now());
    ASSERT_TRUE(s.has_value());
    EXPECT_NEAR(s->value, 75.0, 1e-9);
    EXPECT_FALSE(s->valid);  // flagged
    // After the burst: clean again.
    const auto s2 = ch.sample(sim_.now() + 6_s);
    EXPECT_NEAR(s2->value, 95.0, 1e-9);
    EXPECT_TRUE(s2->valid);
}

TEST_F(SensorsTest, ClampRespectsPhysicalRange) {
    devices::SensorChannelConfig cfg;
    cfg.metric = "spo2";
    cfg.clamp_lo = 0.0;
    cfg.clamp_hi = 100.0;
    cfg.artifact_magnitude = +50.0;
    devices::SensorChannel ch{cfg, [] { return 98.0; }, "t", sim_.rng("r")};
    ch.force_artifact(sim_.now(), 5_s);
    EXPECT_DOUBLE_EQ(ch.sample(sim_.now())->value, 100.0);
}

TEST_F(SensorsTest, OximeterPublishesSpo2AndPulse) {
    devices::PulseOximeter oxi{ctx_, "oxi1", patient_};
    oxi.start();
    int spo2_count = 0, pr_count = 0;
    double last_spo2 = 0;
    bus_.subscribe("t", "vitals/bed1/spo2", [&](const net::Message& m) {
        ++spo2_count;
        last_spo2 = net::payload_as<net::VitalSignPayload>(m)->value;
    });
    bus_.subscribe("t", "vitals/bed1/pulse_rate",
                   [&](const net::Message&) { ++pr_count; });
    sim_.run_for(30_s);
    EXPECT_EQ(spo2_count, 30);
    EXPECT_EQ(pr_count, 30);
    EXPECT_NEAR(last_spo2, 97.0, 3.0);
    oxi.stop();
}

TEST_F(SensorsTest, OximeterForcedDropoutSilencesBothChannels) {
    devices::PulseOximeter oxi{ctx_, "oxi1", patient_};
    oxi.start();
    int messages = 0;
    bus_.subscribe("t", "vitals/*", [&](const net::Message&) { ++messages; });
    oxi.force_dropout(20_s);
    sim_.run_for(19_s);
    EXPECT_EQ(messages, 0);
    EXPECT_TRUE(oxi.in_dropout());
    sim_.run_for(20_s);
    EXPECT_GT(messages, 0);
}

TEST_F(SensorsTest, CapnometerTracksEtco2AndRr) {
    devices::Capnometer cap{ctx_, "cap1", patient_};
    cap.start();
    double last_etco2 = -1, last_rr = -1;
    bus_.subscribe("t", "vitals/bed1/etco2", [&](const net::Message& m) {
        last_etco2 = net::payload_as<net::VitalSignPayload>(m)->value;
    });
    bus_.subscribe("t", "vitals/bed1/resp_rate", [&](const net::Message& m) {
        last_rr = net::payload_as<net::VitalSignPayload>(m)->value;
    });
    sim_.run_for(30_s);
    EXPECT_NEAR(last_etco2, 36.0, 5.0);
    EXPECT_NEAR(last_rr, 14.0, 3.0);
}

TEST_F(SensorsTest, MonitorFiresThresholdAlarmOnLowSpo2) {
    auto cfg = devices::MonitorConfig::adult_defaults();
    devices::BedsideMonitor mon{ctx_, "mon1", cfg};
    mon.start();
    bus_.publish("oxi", "vitals/bed1/spo2",
                 net::VitalSignPayload{"spo2", 85.0, true});
    sim_.run_all();
    ASSERT_EQ(mon.alarms().size(), 1u);
    EXPECT_EQ(mon.alarms()[0].metric, "spo2");
    EXPECT_EQ(mon.alarms()[0].reason, "low");
    const auto view = mon.latest("spo2");
    ASSERT_TRUE(view.has_value());
    EXPECT_DOUBLE_EQ(view->value, 85.0);
}

TEST_F(SensorsTest, MonitorRearmSuppressesRepeats) {
    auto cfg = devices::MonitorConfig::adult_defaults();
    cfg.rearm = 30_s;
    devices::BedsideMonitor mon{ctx_, "mon1", cfg};
    mon.start();
    for (int i = 0; i < 10; ++i) {
        bus_.publish("oxi", "vitals/bed1/spo2",
                     net::VitalSignPayload{"spo2", 85.0, true});
        sim_.run_for(1_s);
    }
    EXPECT_EQ(mon.alarms().size(), 1u);  // one alarm, not ten
    sim_.run_for(30_s);
    bus_.publish("oxi", "vitals/bed1/spo2",
                 net::VitalSignPayload{"spo2", 85.0, true});
    sim_.run_all();
    EXPECT_EQ(mon.alarms().size(), 2u);  // re-armed
}

TEST_F(SensorsTest, MonitorPersistenceRequiresStreak) {
    devices::MonitorConfig cfg;
    cfg.rules = {devices::ThresholdRule{"spo2", 90.0, 1e300, 3}};
    devices::BedsideMonitor mon{ctx_, "mon1", cfg};
    mon.start();
    auto push = [&](double v) {
        bus_.publish("oxi", "vitals/bed1/spo2",
                     net::VitalSignPayload{"spo2", v, true});
        sim_.run_for(1_s);
    };
    push(85);
    push(85);
    push(95);  // streak broken
    push(85);
    push(85);
    EXPECT_EQ(mon.alarms().size(), 0u);
    push(85);  // third consecutive
    EXPECT_EQ(mon.alarms().size(), 1u);
}

TEST_F(SensorsTest, MonitorStalenessDetection) {
    devices::BedsideMonitor mon{ctx_, "mon1",
                                devices::MonitorConfig::adult_defaults()};
    mon.start();
    EXPECT_TRUE(mon.is_stale("spo2"));  // never seen
    bus_.publish("oxi", "vitals/bed1/spo2",
                 net::VitalSignPayload{"spo2", 97.0, true});
    sim_.run_for(1_s);
    EXPECT_FALSE(mon.is_stale("spo2"));
    sim_.run_for(30_s);
    EXPECT_TRUE(mon.is_stale("spo2"));
}

TEST_F(SensorsTest, MonitorHighThresholdFires) {
    devices::BedsideMonitor mon{ctx_, "mon1",
                                devices::MonitorConfig::adult_defaults()};
    mon.start();
    bus_.publish("cap", "vitals/bed1/etco2",
                 net::VitalSignPayload{"etco2", 70.0, true});
    sim_.run_all();
    ASSERT_EQ(mon.alarms().size(), 1u);
    EXPECT_EQ(mon.alarms()[0].reason, "high");
}

TEST_F(SensorsTest, DeviceMetadata) {
    devices::PulseOximeter oxi{ctx_, "oxi1", patient_};
    EXPECT_EQ(oxi.kind(), devices::DeviceKind::kPulseOximeter);
    const auto& caps = oxi.capabilities();
    EXPECT_NE(std::find(caps.begin(), caps.end(), "spo2"), caps.end());
    EXPECT_EQ(devices::to_string(oxi.kind()), "pulse-oximeter");
    EXPECT_THROW(
        devices::PulseOximeter(ctx_, "", patient_), std::invalid_argument);
}

}  // namespace
