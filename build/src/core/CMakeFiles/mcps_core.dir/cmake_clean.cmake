file(REMOVE_RECURSE
  "CMakeFiles/mcps_core.dir/nurse_response.cpp.o"
  "CMakeFiles/mcps_core.dir/nurse_response.cpp.o.d"
  "CMakeFiles/mcps_core.dir/pca_interlock.cpp.o"
  "CMakeFiles/mcps_core.dir/pca_interlock.cpp.o.d"
  "CMakeFiles/mcps_core.dir/pca_scenario.cpp.o"
  "CMakeFiles/mcps_core.dir/pca_scenario.cpp.o.d"
  "CMakeFiles/mcps_core.dir/smart_alarm.cpp.o"
  "CMakeFiles/mcps_core.dir/smart_alarm.cpp.o.d"
  "CMakeFiles/mcps_core.dir/trend.cpp.o"
  "CMakeFiles/mcps_core.dir/trend.cpp.o.d"
  "CMakeFiles/mcps_core.dir/xray_scenario.cpp.o"
  "CMakeFiles/mcps_core.dir/xray_scenario.cpp.o.d"
  "CMakeFiles/mcps_core.dir/xray_vent_app.cpp.o"
  "CMakeFiles/mcps_core.dir/xray_vent_app.cpp.o.d"
  "libmcps_core.a"
  "libmcps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
