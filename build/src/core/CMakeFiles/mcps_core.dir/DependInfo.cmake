
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/nurse_response.cpp" "src/core/CMakeFiles/mcps_core.dir/nurse_response.cpp.o" "gcc" "src/core/CMakeFiles/mcps_core.dir/nurse_response.cpp.o.d"
  "/root/repo/src/core/pca_interlock.cpp" "src/core/CMakeFiles/mcps_core.dir/pca_interlock.cpp.o" "gcc" "src/core/CMakeFiles/mcps_core.dir/pca_interlock.cpp.o.d"
  "/root/repo/src/core/pca_scenario.cpp" "src/core/CMakeFiles/mcps_core.dir/pca_scenario.cpp.o" "gcc" "src/core/CMakeFiles/mcps_core.dir/pca_scenario.cpp.o.d"
  "/root/repo/src/core/smart_alarm.cpp" "src/core/CMakeFiles/mcps_core.dir/smart_alarm.cpp.o" "gcc" "src/core/CMakeFiles/mcps_core.dir/smart_alarm.cpp.o.d"
  "/root/repo/src/core/trend.cpp" "src/core/CMakeFiles/mcps_core.dir/trend.cpp.o" "gcc" "src/core/CMakeFiles/mcps_core.dir/trend.cpp.o.d"
  "/root/repo/src/core/xray_scenario.cpp" "src/core/CMakeFiles/mcps_core.dir/xray_scenario.cpp.o" "gcc" "src/core/CMakeFiles/mcps_core.dir/xray_scenario.cpp.o.d"
  "/root/repo/src/core/xray_vent_app.cpp" "src/core/CMakeFiles/mcps_core.dir/xray_vent_app.cpp.o" "gcc" "src/core/CMakeFiles/mcps_core.dir/xray_vent_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/physio/CMakeFiles/mcps_physio.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/mcps_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/ice/CMakeFiles/mcps_ice.dir/DependInfo.cmake"
  "/root/repo/build/src/assurance/CMakeFiles/mcps_assurance.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
