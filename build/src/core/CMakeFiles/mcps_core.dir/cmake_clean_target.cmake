file(REMOVE_RECURSE
  "libmcps_core.a"
)
