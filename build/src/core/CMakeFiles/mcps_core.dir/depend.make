# Empty dependencies file for mcps_core.
# This may be replaced when dependencies are built.
