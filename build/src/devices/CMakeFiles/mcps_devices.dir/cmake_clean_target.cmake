file(REMOVE_RECURSE
  "libmcps_devices.a"
)
