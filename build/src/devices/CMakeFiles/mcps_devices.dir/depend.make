# Empty dependencies file for mcps_devices.
# This may be replaced when dependencies are built.
