
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/capnometer.cpp" "src/devices/CMakeFiles/mcps_devices.dir/capnometer.cpp.o" "gcc" "src/devices/CMakeFiles/mcps_devices.dir/capnometer.cpp.o.d"
  "/root/repo/src/devices/device.cpp" "src/devices/CMakeFiles/mcps_devices.dir/device.cpp.o" "gcc" "src/devices/CMakeFiles/mcps_devices.dir/device.cpp.o.d"
  "/root/repo/src/devices/drug_library.cpp" "src/devices/CMakeFiles/mcps_devices.dir/drug_library.cpp.o" "gcc" "src/devices/CMakeFiles/mcps_devices.dir/drug_library.cpp.o.d"
  "/root/repo/src/devices/gpca_pump.cpp" "src/devices/CMakeFiles/mcps_devices.dir/gpca_pump.cpp.o" "gcc" "src/devices/CMakeFiles/mcps_devices.dir/gpca_pump.cpp.o.d"
  "/root/repo/src/devices/monitor.cpp" "src/devices/CMakeFiles/mcps_devices.dir/monitor.cpp.o" "gcc" "src/devices/CMakeFiles/mcps_devices.dir/monitor.cpp.o.d"
  "/root/repo/src/devices/pulse_oximeter.cpp" "src/devices/CMakeFiles/mcps_devices.dir/pulse_oximeter.cpp.o" "gcc" "src/devices/CMakeFiles/mcps_devices.dir/pulse_oximeter.cpp.o.d"
  "/root/repo/src/devices/sensor.cpp" "src/devices/CMakeFiles/mcps_devices.dir/sensor.cpp.o" "gcc" "src/devices/CMakeFiles/mcps_devices.dir/sensor.cpp.o.d"
  "/root/repo/src/devices/ventilator.cpp" "src/devices/CMakeFiles/mcps_devices.dir/ventilator.cpp.o" "gcc" "src/devices/CMakeFiles/mcps_devices.dir/ventilator.cpp.o.d"
  "/root/repo/src/devices/xray.cpp" "src/devices/CMakeFiles/mcps_devices.dir/xray.cpp.o" "gcc" "src/devices/CMakeFiles/mcps_devices.dir/xray.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/physio/CMakeFiles/mcps_physio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
