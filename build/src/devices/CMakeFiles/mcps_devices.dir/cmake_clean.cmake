file(REMOVE_RECURSE
  "CMakeFiles/mcps_devices.dir/capnometer.cpp.o"
  "CMakeFiles/mcps_devices.dir/capnometer.cpp.o.d"
  "CMakeFiles/mcps_devices.dir/device.cpp.o"
  "CMakeFiles/mcps_devices.dir/device.cpp.o.d"
  "CMakeFiles/mcps_devices.dir/drug_library.cpp.o"
  "CMakeFiles/mcps_devices.dir/drug_library.cpp.o.d"
  "CMakeFiles/mcps_devices.dir/gpca_pump.cpp.o"
  "CMakeFiles/mcps_devices.dir/gpca_pump.cpp.o.d"
  "CMakeFiles/mcps_devices.dir/monitor.cpp.o"
  "CMakeFiles/mcps_devices.dir/monitor.cpp.o.d"
  "CMakeFiles/mcps_devices.dir/pulse_oximeter.cpp.o"
  "CMakeFiles/mcps_devices.dir/pulse_oximeter.cpp.o.d"
  "CMakeFiles/mcps_devices.dir/sensor.cpp.o"
  "CMakeFiles/mcps_devices.dir/sensor.cpp.o.d"
  "CMakeFiles/mcps_devices.dir/ventilator.cpp.o"
  "CMakeFiles/mcps_devices.dir/ventilator.cpp.o.d"
  "CMakeFiles/mcps_devices.dir/xray.cpp.o"
  "CMakeFiles/mcps_devices.dir/xray.cpp.o.d"
  "libmcps_devices.a"
  "libmcps_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcps_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
