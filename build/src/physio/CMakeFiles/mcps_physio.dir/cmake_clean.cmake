file(REMOVE_RECURSE
  "CMakeFiles/mcps_physio.dir/patient.cpp.o"
  "CMakeFiles/mcps_physio.dir/patient.cpp.o.d"
  "CMakeFiles/mcps_physio.dir/pca_demand.cpp.o"
  "CMakeFiles/mcps_physio.dir/pca_demand.cpp.o.d"
  "CMakeFiles/mcps_physio.dir/pk_model.cpp.o"
  "CMakeFiles/mcps_physio.dir/pk_model.cpp.o.d"
  "CMakeFiles/mcps_physio.dir/population.cpp.o"
  "CMakeFiles/mcps_physio.dir/population.cpp.o.d"
  "libmcps_physio.a"
  "libmcps_physio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcps_physio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
