
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physio/patient.cpp" "src/physio/CMakeFiles/mcps_physio.dir/patient.cpp.o" "gcc" "src/physio/CMakeFiles/mcps_physio.dir/patient.cpp.o.d"
  "/root/repo/src/physio/pca_demand.cpp" "src/physio/CMakeFiles/mcps_physio.dir/pca_demand.cpp.o" "gcc" "src/physio/CMakeFiles/mcps_physio.dir/pca_demand.cpp.o.d"
  "/root/repo/src/physio/pk_model.cpp" "src/physio/CMakeFiles/mcps_physio.dir/pk_model.cpp.o" "gcc" "src/physio/CMakeFiles/mcps_physio.dir/pk_model.cpp.o.d"
  "/root/repo/src/physio/population.cpp" "src/physio/CMakeFiles/mcps_physio.dir/population.cpp.o" "gcc" "src/physio/CMakeFiles/mcps_physio.dir/population.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
