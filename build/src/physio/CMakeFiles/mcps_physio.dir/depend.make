# Empty dependencies file for mcps_physio.
# This may be replaced when dependencies are built.
