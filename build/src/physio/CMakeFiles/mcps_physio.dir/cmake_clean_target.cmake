file(REMOVE_RECURSE
  "libmcps_physio.a"
)
