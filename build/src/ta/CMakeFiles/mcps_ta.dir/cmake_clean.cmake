file(REMOVE_RECURSE
  "CMakeFiles/mcps_ta.dir/automaton.cpp.o"
  "CMakeFiles/mcps_ta.dir/automaton.cpp.o.d"
  "CMakeFiles/mcps_ta.dir/dbm.cpp.o"
  "CMakeFiles/mcps_ta.dir/dbm.cpp.o.d"
  "CMakeFiles/mcps_ta.dir/models.cpp.o"
  "CMakeFiles/mcps_ta.dir/models.cpp.o.d"
  "CMakeFiles/mcps_ta.dir/reachability.cpp.o"
  "CMakeFiles/mcps_ta.dir/reachability.cpp.o.d"
  "CMakeFiles/mcps_ta.dir/simulate.cpp.o"
  "CMakeFiles/mcps_ta.dir/simulate.cpp.o.d"
  "libmcps_ta.a"
  "libmcps_ta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcps_ta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
