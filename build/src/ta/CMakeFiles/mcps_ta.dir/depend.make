# Empty dependencies file for mcps_ta.
# This may be replaced when dependencies are built.
