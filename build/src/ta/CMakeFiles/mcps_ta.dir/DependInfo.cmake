
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ta/automaton.cpp" "src/ta/CMakeFiles/mcps_ta.dir/automaton.cpp.o" "gcc" "src/ta/CMakeFiles/mcps_ta.dir/automaton.cpp.o.d"
  "/root/repo/src/ta/dbm.cpp" "src/ta/CMakeFiles/mcps_ta.dir/dbm.cpp.o" "gcc" "src/ta/CMakeFiles/mcps_ta.dir/dbm.cpp.o.d"
  "/root/repo/src/ta/models.cpp" "src/ta/CMakeFiles/mcps_ta.dir/models.cpp.o" "gcc" "src/ta/CMakeFiles/mcps_ta.dir/models.cpp.o.d"
  "/root/repo/src/ta/reachability.cpp" "src/ta/CMakeFiles/mcps_ta.dir/reachability.cpp.o" "gcc" "src/ta/CMakeFiles/mcps_ta.dir/reachability.cpp.o.d"
  "/root/repo/src/ta/simulate.cpp" "src/ta/CMakeFiles/mcps_ta.dir/simulate.cpp.o" "gcc" "src/ta/CMakeFiles/mcps_ta.dir/simulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
