file(REMOVE_RECURSE
  "libmcps_ta.a"
)
