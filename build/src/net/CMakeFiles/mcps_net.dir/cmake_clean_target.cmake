file(REMOVE_RECURSE
  "libmcps_net.a"
)
