file(REMOVE_RECURSE
  "CMakeFiles/mcps_net.dir/bus.cpp.o"
  "CMakeFiles/mcps_net.dir/bus.cpp.o.d"
  "CMakeFiles/mcps_net.dir/channel.cpp.o"
  "CMakeFiles/mcps_net.dir/channel.cpp.o.d"
  "CMakeFiles/mcps_net.dir/flow_monitor.cpp.o"
  "CMakeFiles/mcps_net.dir/flow_monitor.cpp.o.d"
  "CMakeFiles/mcps_net.dir/message.cpp.o"
  "CMakeFiles/mcps_net.dir/message.cpp.o.d"
  "libmcps_net.a"
  "libmcps_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcps_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
