
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bus.cpp" "src/net/CMakeFiles/mcps_net.dir/bus.cpp.o" "gcc" "src/net/CMakeFiles/mcps_net.dir/bus.cpp.o.d"
  "/root/repo/src/net/channel.cpp" "src/net/CMakeFiles/mcps_net.dir/channel.cpp.o" "gcc" "src/net/CMakeFiles/mcps_net.dir/channel.cpp.o.d"
  "/root/repo/src/net/flow_monitor.cpp" "src/net/CMakeFiles/mcps_net.dir/flow_monitor.cpp.o" "gcc" "src/net/CMakeFiles/mcps_net.dir/flow_monitor.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/mcps_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/mcps_net.dir/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
