# Empty dependencies file for mcps_net.
# This may be replaced when dependencies are built.
