file(REMOVE_RECURSE
  "CMakeFiles/mcps_sim.dir/rng.cpp.o"
  "CMakeFiles/mcps_sim.dir/rng.cpp.o.d"
  "CMakeFiles/mcps_sim.dir/simulation.cpp.o"
  "CMakeFiles/mcps_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/mcps_sim.dir/stats.cpp.o"
  "CMakeFiles/mcps_sim.dir/stats.cpp.o.d"
  "CMakeFiles/mcps_sim.dir/table.cpp.o"
  "CMakeFiles/mcps_sim.dir/table.cpp.o.d"
  "CMakeFiles/mcps_sim.dir/time.cpp.o"
  "CMakeFiles/mcps_sim.dir/time.cpp.o.d"
  "CMakeFiles/mcps_sim.dir/trace.cpp.o"
  "CMakeFiles/mcps_sim.dir/trace.cpp.o.d"
  "libmcps_sim.a"
  "libmcps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
