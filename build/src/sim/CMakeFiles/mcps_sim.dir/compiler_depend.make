# Empty compiler generated dependencies file for mcps_sim.
# This may be replaced when dependencies are built.
