file(REMOVE_RECURSE
  "libmcps_sim.a"
)
