
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ice/assembly.cpp" "src/ice/CMakeFiles/mcps_ice.dir/assembly.cpp.o" "gcc" "src/ice/CMakeFiles/mcps_ice.dir/assembly.cpp.o.d"
  "/root/repo/src/ice/registry.cpp" "src/ice/CMakeFiles/mcps_ice.dir/registry.cpp.o" "gcc" "src/ice/CMakeFiles/mcps_ice.dir/registry.cpp.o.d"
  "/root/repo/src/ice/supervisor.cpp" "src/ice/CMakeFiles/mcps_ice.dir/supervisor.cpp.o" "gcc" "src/ice/CMakeFiles/mcps_ice.dir/supervisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/mcps_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/assurance/CMakeFiles/mcps_assurance.dir/DependInfo.cmake"
  "/root/repo/build/src/physio/CMakeFiles/mcps_physio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
