file(REMOVE_RECURSE
  "libmcps_ice.a"
)
