# Empty compiler generated dependencies file for mcps_ice.
# This may be replaced when dependencies are built.
