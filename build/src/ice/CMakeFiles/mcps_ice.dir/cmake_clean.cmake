file(REMOVE_RECURSE
  "CMakeFiles/mcps_ice.dir/assembly.cpp.o"
  "CMakeFiles/mcps_ice.dir/assembly.cpp.o.d"
  "CMakeFiles/mcps_ice.dir/registry.cpp.o"
  "CMakeFiles/mcps_ice.dir/registry.cpp.o.d"
  "CMakeFiles/mcps_ice.dir/supervisor.cpp.o"
  "CMakeFiles/mcps_ice.dir/supervisor.cpp.o.d"
  "libmcps_ice.a"
  "libmcps_ice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcps_ice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
