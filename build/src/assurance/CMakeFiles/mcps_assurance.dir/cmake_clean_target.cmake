file(REMOVE_RECURSE
  "libmcps_assurance.a"
)
