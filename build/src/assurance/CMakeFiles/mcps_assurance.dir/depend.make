# Empty dependencies file for mcps_assurance.
# This may be replaced when dependencies are built.
