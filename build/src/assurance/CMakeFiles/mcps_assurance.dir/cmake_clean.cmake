file(REMOVE_RECURSE
  "CMakeFiles/mcps_assurance.dir/gsn.cpp.o"
  "CMakeFiles/mcps_assurance.dir/gsn.cpp.o.d"
  "CMakeFiles/mcps_assurance.dir/hazard.cpp.o"
  "CMakeFiles/mcps_assurance.dir/hazard.cpp.o.d"
  "libmcps_assurance.a"
  "libmcps_assurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcps_assurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
