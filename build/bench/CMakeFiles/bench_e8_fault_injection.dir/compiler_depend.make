# Empty compiler generated dependencies file for bench_e8_fault_injection.
# This may be replaced when dependencies are built.
