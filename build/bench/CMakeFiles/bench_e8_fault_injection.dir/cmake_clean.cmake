file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_fault_injection.dir/bench_e8_fault_injection.cpp.o"
  "CMakeFiles/bench_e8_fault_injection.dir/bench_e8_fault_injection.cpp.o.d"
  "bench_e8_fault_injection"
  "bench_e8_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
