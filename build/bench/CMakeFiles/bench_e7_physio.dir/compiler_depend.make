# Empty compiler generated dependencies file for bench_e7_physio.
# This may be replaced when dependencies are built.
