file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_physio.dir/bench_e7_physio.cpp.o"
  "CMakeFiles/bench_e7_physio.dir/bench_e7_physio.cpp.o.d"
  "bench_e7_physio"
  "bench_e7_physio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_physio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
