file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_xray_vent.dir/bench_e4_xray_vent.cpp.o"
  "CMakeFiles/bench_e4_xray_vent.dir/bench_e4_xray_vent.cpp.o.d"
  "bench_e4_xray_vent"
  "bench_e4_xray_vent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_xray_vent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
