# Empty dependencies file for bench_e4_xray_vent.
# This may be replaced when dependencies are built.
