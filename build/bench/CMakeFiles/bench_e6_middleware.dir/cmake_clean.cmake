file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_middleware.dir/bench_e6_middleware.cpp.o"
  "CMakeFiles/bench_e6_middleware.dir/bench_e6_middleware.cpp.o.d"
  "bench_e6_middleware"
  "bench_e6_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
