file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_verification.dir/bench_e5_verification.cpp.o"
  "CMakeFiles/bench_e5_verification.dir/bench_e5_verification.cpp.o.d"
  "bench_e5_verification"
  "bench_e5_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
