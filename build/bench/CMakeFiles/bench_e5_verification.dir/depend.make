# Empty dependencies file for bench_e5_verification.
# This may be replaced when dependencies are built.
