file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_network.dir/bench_e2_network.cpp.o"
  "CMakeFiles/bench_e2_network.dir/bench_e2_network.cpp.o.d"
  "bench_e2_network"
  "bench_e2_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
