# Empty compiler generated dependencies file for bench_e2_network.
# This may be replaced when dependencies are built.
