# Empty dependencies file for bench_e3_smart_alarm.
# This may be replaced when dependencies are built.
