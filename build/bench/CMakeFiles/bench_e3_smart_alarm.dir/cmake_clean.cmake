file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_smart_alarm.dir/bench_e3_smart_alarm.cpp.o"
  "CMakeFiles/bench_e3_smart_alarm.dir/bench_e3_smart_alarm.cpp.o.d"
  "bench_e3_smart_alarm"
  "bench_e3_smart_alarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_smart_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
