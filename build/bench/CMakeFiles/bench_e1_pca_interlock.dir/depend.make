# Empty dependencies file for bench_e1_pca_interlock.
# This may be replaced when dependencies are built.
