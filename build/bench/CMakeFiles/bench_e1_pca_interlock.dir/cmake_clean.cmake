file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_pca_interlock.dir/bench_e1_pca_interlock.cpp.o"
  "CMakeFiles/bench_e1_pca_interlock.dir/bench_e1_pca_interlock.cpp.o.d"
  "bench_e1_pca_interlock"
  "bench_e1_pca_interlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_pca_interlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
