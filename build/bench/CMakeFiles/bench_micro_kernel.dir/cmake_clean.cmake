file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_kernel.dir/bench_micro_kernel.cpp.o"
  "CMakeFiles/bench_micro_kernel.dir/bench_micro_kernel.cpp.o.d"
  "bench_micro_kernel"
  "bench_micro_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
