# Empty compiler generated dependencies file for bench_micro_kernel.
# This may be replaced when dependencies are built.
