# Empty compiler generated dependencies file for bench_e9_alarm_fatigue.
# This may be replaced when dependencies are built.
