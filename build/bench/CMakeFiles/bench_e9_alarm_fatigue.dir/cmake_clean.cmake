file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_alarm_fatigue.dir/bench_e9_alarm_fatigue.cpp.o"
  "CMakeFiles/bench_e9_alarm_fatigue.dir/bench_e9_alarm_fatigue.cpp.o.d"
  "bench_e9_alarm_fatigue"
  "bench_e9_alarm_fatigue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_alarm_fatigue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
