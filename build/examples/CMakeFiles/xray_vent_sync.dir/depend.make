# Empty dependencies file for xray_vent_sync.
# This may be replaced when dependencies are built.
