file(REMOVE_RECURSE
  "CMakeFiles/xray_vent_sync.dir/xray_vent_sync.cpp.o"
  "CMakeFiles/xray_vent_sync.dir/xray_vent_sync.cpp.o.d"
  "xray_vent_sync"
  "xray_vent_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xray_vent_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
