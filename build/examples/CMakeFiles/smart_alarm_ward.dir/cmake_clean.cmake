file(REMOVE_RECURSE
  "CMakeFiles/smart_alarm_ward.dir/smart_alarm_ward.cpp.o"
  "CMakeFiles/smart_alarm_ward.dir/smart_alarm_ward.cpp.o.d"
  "smart_alarm_ward"
  "smart_alarm_ward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_alarm_ward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
