# Empty dependencies file for smart_alarm_ward.
# This may be replaced when dependencies are built.
