# Empty compiler generated dependencies file for pca_closed_loop.
# This may be replaced when dependencies are built.
