file(REMOVE_RECURSE
  "CMakeFiles/pca_closed_loop.dir/pca_closed_loop.cpp.o"
  "CMakeFiles/pca_closed_loop.dir/pca_closed_loop.cpp.o.d"
  "pca_closed_loop"
  "pca_closed_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pca_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
