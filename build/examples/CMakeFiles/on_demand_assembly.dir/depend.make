# Empty dependencies file for on_demand_assembly.
# This may be replaced when dependencies are built.
