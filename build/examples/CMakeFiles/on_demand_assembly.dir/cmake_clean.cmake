file(REMOVE_RECURSE
  "CMakeFiles/on_demand_assembly.dir/on_demand_assembly.cpp.o"
  "CMakeFiles/on_demand_assembly.dir/on_demand_assembly.cpp.o.d"
  "on_demand_assembly"
  "on_demand_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/on_demand_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
