# Empty dependencies file for verify_pump.
# This may be replaced when dependencies are built.
