file(REMOVE_RECURSE
  "CMakeFiles/verify_pump.dir/verify_pump.cpp.o"
  "CMakeFiles/verify_pump.dir/verify_pump.cpp.o.d"
  "verify_pump"
  "verify_pump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_pump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
