
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/verify_pump.cpp" "examples/CMakeFiles/verify_pump.dir/verify_pump.cpp.o" "gcc" "examples/CMakeFiles/verify_pump.dir/verify_pump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ta/CMakeFiles/mcps_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/assurance/CMakeFiles/mcps_assurance.dir/DependInfo.cmake"
  "/root/repo/build/src/ice/CMakeFiles/mcps_ice.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/mcps_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/physio/CMakeFiles/mcps_physio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
