# Empty compiler generated dependencies file for mcps_tests.
# This may be replaced when dependencies are built.
