
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembly.cpp" "tests/CMakeFiles/mcps_tests.dir/test_assembly.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_assembly.cpp.o.d"
  "/root/repo/tests/test_assurance.cpp" "tests/CMakeFiles/mcps_tests.dir/test_assurance.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_assurance.cpp.o.d"
  "/root/repo/tests/test_automaton.cpp" "tests/CMakeFiles/mcps_tests.dir/test_automaton.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_automaton.cpp.o.d"
  "/root/repo/tests/test_dbm.cpp" "tests/CMakeFiles/mcps_tests.dir/test_dbm.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_dbm.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/mcps_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_device_base.cpp" "tests/CMakeFiles/mcps_tests.dir/test_device_base.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_device_base.cpp.o.d"
  "/root/repo/tests/test_drug_library.cpp" "tests/CMakeFiles/mcps_tests.dir/test_drug_library.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_drug_library.cpp.o.d"
  "/root/repo/tests/test_flow_monitor.cpp" "tests/CMakeFiles/mcps_tests.dir/test_flow_monitor.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_flow_monitor.cpp.o.d"
  "/root/repo/tests/test_gpca_pump.cpp" "tests/CMakeFiles/mcps_tests.dir/test_gpca_pump.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_gpca_pump.cpp.o.d"
  "/root/repo/tests/test_ice.cpp" "tests/CMakeFiles/mcps_tests.dir/test_ice.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_ice.cpp.o.d"
  "/root/repo/tests/test_interlock.cpp" "tests/CMakeFiles/mcps_tests.dir/test_interlock.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_interlock.cpp.o.d"
  "/root/repo/tests/test_interlock_sweep.cpp" "tests/CMakeFiles/mcps_tests.dir/test_interlock_sweep.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_interlock_sweep.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/mcps_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_nurse_response.cpp" "tests/CMakeFiles/mcps_tests.dir/test_nurse_response.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_nurse_response.cpp.o.d"
  "/root/repo/tests/test_patient.cpp" "tests/CMakeFiles/mcps_tests.dir/test_patient.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_patient.cpp.o.d"
  "/root/repo/tests/test_pk_model.cpp" "tests/CMakeFiles/mcps_tests.dir/test_pk_model.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_pk_model.cpp.o.d"
  "/root/repo/tests/test_reachability.cpp" "tests/CMakeFiles/mcps_tests.dir/test_reachability.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_reachability.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/mcps_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scenarios.cpp" "tests/CMakeFiles/mcps_tests.dir/test_scenarios.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_scenarios.cpp.o.d"
  "/root/repo/tests/test_sensors.cpp" "tests/CMakeFiles/mcps_tests.dir/test_sensors.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_sensors.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/mcps_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_smart_alarm.cpp" "tests/CMakeFiles/mcps_tests.dir/test_smart_alarm.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_smart_alarm.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/mcps_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_ta_differential.cpp" "tests/CMakeFiles/mcps_tests.dir/test_ta_differential.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_ta_differential.cpp.o.d"
  "/root/repo/tests/test_ta_simulate.cpp" "tests/CMakeFiles/mcps_tests.dir/test_ta_simulate.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_ta_simulate.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/mcps_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/mcps_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trend.cpp" "tests/CMakeFiles/mcps_tests.dir/test_trend.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_trend.cpp.o.d"
  "/root/repo/tests/test_vent_xray.cpp" "tests/CMakeFiles/mcps_tests.dir/test_vent_xray.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_vent_xray.cpp.o.d"
  "/root/repo/tests/test_xray_sync.cpp" "tests/CMakeFiles/mcps_tests.dir/test_xray_sync.cpp.o" "gcc" "tests/CMakeFiles/mcps_tests.dir/test_xray_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ta/CMakeFiles/mcps_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/assurance/CMakeFiles/mcps_assurance.dir/DependInfo.cmake"
  "/root/repo/build/src/ice/CMakeFiles/mcps_ice.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/mcps_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/physio/CMakeFiles/mcps_physio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
