/// \file ward.hpp
/// \brief Umbrella header for the ward-scale parallel execution engine.
///
/// `mcps::ward` scales the framework from one bedside to a ward: N
/// independent patient scenarios (PCA closed loop, x-ray/ventilator
/// sync, smart-alarm shifts) run concurrently over a work-stealing
/// thread pool, while every individual simulation kernel stays
/// single-threaded and bit-deterministic. Deterministic sharding plus
/// canonical-order reduction make the ward-level report — including a
/// 64-bit fingerprint — provably identical between serial and parallel
/// runs.

#pragma once

#include "fuzz_driver.hpp"
#include "thread_pool.hpp"
#include "ward_config.hpp"
#include "ward_engine.hpp"
#include "ward_scenarios.hpp"
