#include "fuzz_driver.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "thread_pool.hpp"

namespace mcps::ward {

using testkit::FuzzOptions;
using testkit::FuzzOutcome;
using testkit::InvariantChecker;
using testkit::Repro;
using testkit::ScenarioGenerator;
using testkit::Violation;
using testkit::WorkloadKind;

namespace {

/// What the parallel sweep records per scenario index.
struct IndexedRun {
    WorkloadKind kind = WorkloadKind::kPca;
    std::uint64_t fingerprint = 0;
    testkit::FaultPlan faults;
    std::vector<Violation> violations;
};

void emit(const FuzzOptions& opts, const std::string& line) {
    if (opts.log) opts.log(line);
}

}  // namespace

FuzzOutcome run_fuzz(const FuzzOptions& opts, const InvariantChecker& checker,
                     unsigned jobs) {
    if (jobs <= 1) return testkit::run_fuzz(opts, checker);

    const ScenarioGenerator gen{opts.seed, opts.fault_intensity};
    const std::size_t n = static_cast<std::size_t>(opts.scenarios);
    std::vector<IndexedRun> runs(n);

    // Phase 1 — execute every scenario in parallel. Results land in a
    // per-index slot, so worker scheduling cannot reorder anything.
    const std::size_t shards = std::min<std::size_t>(
        n, static_cast<std::size_t>(jobs) * 4);
    parallel_shards(shards, jobs, [&](std::size_t s) {
        const ShardRange r = shard_range(n, shards, s);
        for (std::size_t i = r.first; i < r.last; ++i) {
            auto& slot = runs[i];
            slot.kind = opts.weakened
                            ? WorkloadKind::kPca
                            : gen.kind_of(i, opts.xray_fraction);
            if (slot.kind == WorkloadKind::kXray) {
                const auto run = testkit::run_instrumented_xray(gen.xray(i).config);
                slot.violations = run.violations;
                slot.fingerprint = run.fingerprint;
            } else {
                const auto g = opts.weakened ? gen.weakened_pca(i) : gen.pca(i);
                const auto run =
                    testkit::run_instrumented_pca(g.config, g.faults, checker);
                slot.violations = run.violations;
                slot.faults = g.faults;
                slot.fingerprint = run.fingerprint;
            }
        }
    });

    // Phase 2 — canonical-order capture, identical to the serial loop
    // (shrinking re-runs scenarios; it stays sequential so repro files
    // and log lines appear in the same deterministic order).
    FuzzOutcome out;
    for (std::size_t i = 0; i < n; ++i) {
        ++out.scenarios_run;
        auto& slot = runs[i];
        if (slot.kind == WorkloadKind::kXray) {
            ++out.xray_runs;
        } else {
            ++out.pca_runs;
        }
        if (slot.violations.empty()) continue;

        Repro repro;
        repro.seed = opts.seed;
        repro.index = i;
        repro.kind = slot.kind;
        repro.weakened = opts.weakened;
        repro.faults = std::move(slot.faults);
        repro.fingerprint = slot.fingerprint;

        emit(opts, "scenario " + std::to_string(i) + " (" +
                       std::string{to_string(slot.kind)} + ") violated: " +
                       testkit::describe_violations(slot.violations));
        auto failure = testkit::capture_failure(
            opts, checker, std::move(repro), std::move(slot.violations));
        if (opts.shrink) {
            emit(opts, "  shrunk " +
                           std::to_string(failure.original_fault_events) +
                           " -> " + std::to_string(failure.repro.faults.size()) +
                           " fault events in " +
                           std::to_string(failure.shrink_runs) + " runs");
        }
        emit(opts, std::string{"  replay byte-identical: "} +
                       (failure.replay_byte_identical ? "yes" : "NO"));
        if (!failure.repro_path.empty()) {
            emit(opts, "  repro saved: " + failure.repro_path);
        }
        out.failures.push_back(std::move(failure));
    }
    return out;
}

FuzzOutcome run_fuzz(const FuzzOptions& opts, unsigned jobs) {
    return run_fuzz(opts, InvariantChecker::with_defaults(), jobs);
}

}  // namespace mcps::ward
