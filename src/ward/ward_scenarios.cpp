#include "ward_scenarios.hpp"

#include <string>

#include "scenario/presets.hpp"
#include "scenario/registry.hpp"

namespace mcps::ward {

using mcps::sim::RngStream;

std::string_view to_string(WardScenarioKind k) noexcept {
    switch (k) {
        case WardScenarioKind::kPcaClosedLoop: return "pca";
        case WardScenarioKind::kXraySync: return "xray";
        case WardScenarioKind::kAlarmWard: return "alarm_ward";
        case WardScenarioKind::kHospital: return "hospital";
    }
    return "unknown";
}

WardScenarioFactory::WardScenarioFactory(const WardConfig& cfg)
    : seed_{cfg.seed},
      mix_{cfg.mix.normalized()},
      gen_{cfg.seed, cfg.fault_intensity} {}

WardScenarioKind WardScenarioFactory::kind_of(std::uint64_t index) const {
    RngStream rng{seed_, "ward/kind/" + std::to_string(index)};
    const double u = rng.uniform();
    if (u < mix_.pca) return WardScenarioKind::kPcaClosedLoop;
    if (u < mix_.pca + mix_.xray) return WardScenarioKind::kXraySync;
    // With no hospital weight, fall through to alarm_ward exactly as the
    // three-workload mix always has (the normalized weights sum to 1
    // only up to rounding, so the guard keeps old kind sequences
    // bit-stable).
    if (mix_.hospital <= 0 ||
        u < mix_.pca + mix_.xray + mix_.alarm_ward) {
        return WardScenarioKind::kAlarmWard;
    }
    return WardScenarioKind::kHospital;
}

namespace {

std::uint64_t denied_total(const devices::PumpStats& p) noexcept {
    return p.denied_lockout + p.denied_hourly + p.denied_state;
}

void fold_pca(const testkit::PcaRunOutcome& run, ScenarioOutcome& out) {
    const auto& r = run.result;
    out.fingerprint = run.fingerprint;
    out.drug_mg = r.total_drug_mg;
    out.min_spo2 = r.min_spo2;
    out.mean_pain = r.mean_pain;
    out.detection_latency_s =
        r.detection_latency_s ? *r.detection_latency_s : -1.0;
    out.demands_denied = denied_total(r.pump);
    out.interlock_stops = r.interlock.stops_issued;
    out.monitor_alarms = r.monitor_alarm_count;
    out.smart_alarms = r.smart_alarm_count;
    out.smart_critical = r.smart_critical_count;
    out.events_dispatched = r.events_dispatched;
    out.violations = static_cast<std::uint32_t>(run.violations.size());
}

}  // namespace

ScenarioOutcome WardScenarioFactory::run(
    std::uint64_t index, const testkit::InvariantChecker& checker,
    mcps::obs::EventLog* events) const {
    ScenarioOutcome out;
    out.kind = kind_of(index);
    switch (out.kind) {
        case WardScenarioKind::kPcaClosedLoop: {
            auto g = gen_.pca(index);
            g.config.events = events;
            fold_pca(testkit::run_instrumented_pca(g.config, g.faults, checker),
                     out);
            break;
        }
        case WardScenarioKind::kAlarmWard: {
            // Same safe envelope, but the bedside monitoring overlay is
            // always on and the oximeter suffers ward-grade motion
            // artifacts — the smart-alarm shift of the paper's third
            // scenario. The interlock stays armed so the run remains
            // inside the claimed-safe envelope.
            auto g = gen_.pca(index);
            g.config.events = events;
            scenario::apply_alarm_ward_overlay(g.config);
            fold_pca(testkit::run_instrumented_pca(g.config, g.faults, checker),
                     out);
            break;
        }
        case WardScenarioKind::kXraySync: {
            auto xcfg = gen_.xray(index).config;
            xcfg.events = events;
            const auto run = testkit::run_instrumented_xray(xcfg);
            out.fingerprint = run.fingerprint;
            out.min_spo2 = run.result.min_spo2;
            out.violations = static_cast<std::uint32_t>(run.violations.size());
            break;
        }
        case WardScenarioKind::kHospital: {
            // A smoke-sized hospital-small population run: the engine is
            // itself a fleet, so the campaign slot holds a whole small
            // hospital, not one patient. Spec content is a pure function
            // of (seed, index); jobs pinned to 1 because parallelism
            // lives between campaign scenarios, not inside them.
            RngStream rng{seed_, "ward/hospital/" + std::to_string(index)};
            scenario::ScenarioSpec spec =
                scenario::registry().default_spec("hospital-small");
            spec.seed = static_cast<std::uint64_t>(
                rng.uniform_int(1, 1000000));
            spec.minutes = 2;
            spec.set("patients", std::to_string(rng.uniform_int(16, 48)));
            spec.set("wards", "2");
            spec.set("jobs", "1");
            const scenario::RunArtifacts art = scenario::registry().run(spec);
            out.fingerprint = art.fingerprint;
            out.min_spo2 = art.at("min_spo2");
            out.drug_mg = art.at("drug_mg_mean");
            out.interlock_stops =
                static_cast<std::uint64_t>(art.at("interlock_stops"));
            out.monitor_alarms =
                static_cast<std::uint64_t>(art.at("alarms_raised"));
            out.events_dispatched =
                static_cast<std::uint64_t>(art.at("patient_steps"));
            out.violations =
                static_cast<std::uint32_t>(art.at("deadline_violations"));
            break;
        }
    }
    return out;
}

}  // namespace mcps::ward
