/// \file ward_scenarios.hpp
/// \brief Per-index scenario construction for the ward engine.
///
/// Every scenario a ward runs is a pure function of (master seed,
/// scenario index): the workload kind is drawn from a per-index named
/// RngStream, and the scenario content reuses the testkit's
/// ScenarioGenerator envelope so ward campaigns exercise exactly the
/// claimed-safe configuration space the fuzzer patrols. Each scenario's
/// simulation kernel stays single-threaded; parallelism lives strictly
/// *between* scenarios.

#pragma once

#include <cstdint>

#include "testkit/testkit.hpp"
#include "ward_config.hpp"

namespace mcps::ward {

/// The ward workloads: the paper's three application scenarios plus an
/// embedded hospital-population run (PR 9).
enum class WardScenarioKind : std::uint8_t {
    kPcaClosedLoop = 0,  ///< PCA pump + safety interlock
    kXraySync = 1,       ///< X-ray/ventilator coordination
    kAlarmWard = 2,      ///< smart-alarm shift (monitor + fused alarm)
    kHospital = 3,       ///< smoke-sized hospital-small population run
};

[[nodiscard]] std::string_view to_string(WardScenarioKind k) noexcept;

/// Digest of one completed patient-scenario — everything the ward-level
/// aggregation needs, small enough to store per index.
struct ScenarioOutcome {
    WardScenarioKind kind = WardScenarioKind::kPcaClosedLoop;
    std::uint64_t fingerprint = 0;   ///< testkit trace/result fingerprint
    double drug_mg = 0.0;            ///< total opioid delivered (PCA kinds)
    double min_spo2 = 100.0;         ///< ground-truth worst saturation
    double mean_pain = 0.0;          ///< PCA kinds only
    /// Hypoxia onset -> pump stopped, seconds (< 0: no hypoxia episode).
    double detection_latency_s = -1.0;
    std::uint64_t demands_denied = 0;   ///< bolus demands the pump refused
    std::uint64_t interlock_stops = 0;  ///< distinct interlock stop episodes
    std::uint64_t monitor_alarms = 0;
    std::uint64_t smart_alarms = 0;
    std::uint64_t smart_critical = 0;
    std::uint64_t events_dispatched = 0;
    std::uint32_t violations = 0;       ///< safety-invariant violations
};

/// Builds and runs ward scenarios. Stateless beyond its config; safe to
/// share across worker threads (all methods are const and allocate their
/// own kernels).
class WardScenarioFactory {
public:
    explicit WardScenarioFactory(const WardConfig& cfg);

    /// Deterministic workload choice for an index (mix-weighted).
    [[nodiscard]] WardScenarioKind kind_of(std::uint64_t index) const;

    /// Run scenario \p index to completion on the calling thread. When
    /// \p events is non-null the scenario's structured events (bus,
    /// supervisor, interlock, faults) are appended to it.
    [[nodiscard]] ScenarioOutcome run(std::uint64_t index,
                                      const testkit::InvariantChecker& checker,
                                      mcps::obs::EventLog* events =
                                          nullptr) const;

private:
    std::uint64_t seed_;
    ScenarioMix mix_;  ///< normalized
    testkit::ScenarioGenerator gen_;
};

}  // namespace mcps::ward
