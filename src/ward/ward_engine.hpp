/// \file ward_engine.hpp
/// \brief Parallel ward campaign execution with deterministic reduction.
///
/// The engine runs N independent patient scenarios over a work-stealing
/// thread pool and aggregates them into one WardReport. Determinism
/// contract: for a fixed WardConfig (seed, patients, shards, mix,
/// fault_intensity), the report's fingerprint and every merged statistic
/// are bit-identical for ANY job count, because
///
///   1. each scenario is a pure function of (seed, index) — workers never
///      share simulation state;
///   2. scenarios are assigned to `shards` fixed contiguous index ranges
///      (`shard_range`), and each shard accumulates its scenarios in
///      ascending index order, whichever worker happens to execute it;
///   3. shard accumulators are merged on the calling thread in shard
///      order, so the floating-point reduction tree is frozen by the
///      shard count, not by scheduling.
///
/// Only wall-clock throughput fields vary between runs.

#pragma once

#include <iosfwd>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "ward_scenarios.hpp"

namespace mcps::ward {

/// Optional observability sink for a ward campaign: the merged structured
/// event log (every scenario's events, concatenated in scenario-index
/// order within shards merged in shard order) plus a metrics registry of
/// ward-level counters and histograms. Both are bit-identical for any
/// job count — the per-shard collection and shard-order merge follow the
/// same determinism argument as the report fingerprint. Deliberately
/// excludes job count and wall-clock, the only run-varying quantities.
struct WardObservation {
    obs::EventLog events;
    obs::MetricsRegistry metrics;
};

/// Ward-level aggregate over one campaign.
struct WardReport {
    // Campaign echo.
    std::uint64_t seed = 0;
    std::size_t patients = 0;
    unsigned jobs = 1;
    std::size_t shards = 0;
    std::string mix;  ///< canonical normalized mix string
    double fault_intensity = 0.0;

    // Workload counts.
    std::uint64_t pca_runs = 0;
    std::uint64_t xray_runs = 0;
    std::uint64_t alarm_ward_runs = 0;
    std::uint64_t hospital_runs = 0;

    // Merged statistics (parallel-Welford over shard accumulators).
    sim::RunningStats drug_mg;          ///< per-scenario opioid delivered
    sim::RunningStats min_spo2;         ///< per-scenario worst saturation
    sim::RunningStats mean_pain;        ///< PCA-family scenarios
    sim::RunningStats detection_latency_s;  ///< hypoxia->stop episodes
    sim::Histogram dose_hist{0.0, 40.0, 40};          ///< mg per scenario
    sim::Histogram latency_hist{0.0, 600.0, 60};      ///< seconds

    // Ward totals.
    std::uint64_t demands_denied = 0;
    std::uint64_t interlock_stops = 0;
    std::uint64_t monitor_alarms = 0;
    std::uint64_t smart_alarms = 0;
    std::uint64_t smart_critical = 0;
    std::uint64_t violations = 0;
    std::uint64_t events_dispatched = 0;

    /// 64-bit digest folding every scenario fingerprint (and kind) in
    /// index order — the "provably identical" handle for serial vs
    /// parallel runs.
    std::uint64_t fingerprint = 0;

    // Throughput (the only fields that legitimately vary run-to-run).
    double wall_seconds = 0.0;
    double scenarios_per_sec = 0.0;

    /// Alarms (monitor + smart) per scenario-hour proxy: total alarms /
    /// scenarios. Exposed as a helper so the CLI and bench agree.
    [[nodiscard]] double alarms_per_scenario() const noexcept;

    /// Human-readable summary tables.
    void print(std::ostream& os) const;
    /// Machine-readable report (one JSON object).
    void write_json(std::ostream& os) const;
};

class WardEngine {
public:
    /// \throws WardConfigError on an invalid config.
    explicit WardEngine(WardConfig cfg);

    [[nodiscard]] const WardConfig& config() const noexcept { return cfg_; }

    /// Run the campaign with the default clinical invariant set.
    [[nodiscard]] WardReport run() const;
    /// \param obs when non-null, filled with the campaign's merged event
    ///   log and metrics (cleared first). Null skips all collection.
    [[nodiscard]] WardReport run(const testkit::InvariantChecker& checker,
                                 WardObservation* obs = nullptr) const;

private:
    WardConfig cfg_;
};

}  // namespace mcps::ward
