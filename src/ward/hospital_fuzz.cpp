#include "ward/hospital_fuzz.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "scenario/registry.hpp"
#include "sim/rng.hpp"

namespace mcps::ward {
namespace {

using scenario::KnobInfo;
using scenario::RunArtifacts;
using scenario::ScenarioInfo;
using scenario::ScenarioSpec;

std::string fmt_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

std::string fmt_fingerprint(std::uint64_t fp) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016" PRIx64, fp);
    return buf;
}

/// Sample a knob uniformly from its claimed-safe envelope.
double safe_number(sim::RngStream& rng, const ScenarioInfo& info,
                   const char* knob) {
    const KnobInfo* k = info.find_knob(knob);
    if (k == nullptr) {
        throw std::logic_error{std::string{"hospital fuzz: registry lost "
                                           "knob '"} +
                               knob + "'"};
    }
    return rng.uniform(k->safe_lo, k->safe_hi);
}

/// One random hospital spec. Safe mode stays inside the claimed-safe
/// envelope (interlock=local; monitor/deadline within their TA5
/// envelopes; storms allowed — the pump-local interlock is
/// bus-independent, so contention cannot stretch its reaction bound).
/// Hazard mode removes the interlock and synchronizes a large storm,
/// which reliably blows the deadline within a few simulated minutes.
ScenarioSpec sample_spec(const ScenarioInfo& info, std::uint64_t seed,
                         std::uint64_t index, bool hazard) {
    sim::RngStream rng{seed, "fuzz.hospital." + std::to_string(index)};

    ScenarioSpec spec = scenario::registry().default_spec(info.name);
    spec.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000000));

    const std::int64_t patients =
        hazard ? rng.uniform_int(16, 48) : rng.uniform_int(8, 96);
    const std::int64_t max_wards = patients < 4 ? patients : 4;
    spec.minutes = static_cast<std::uint64_t>(
        hazard ? rng.uniform_int(6, 8) : rng.uniform_int(2, 5));
    spec.set("patients", std::to_string(patients));
    spec.set("wards", std::to_string(rng.uniform_int(1, max_wards)));
    spec.set("nurses", std::to_string(rng.uniform_int(1, 4)));
    spec.set("bus-capacity", std::to_string(rng.uniform_int(4, 64)));
    const char* jobs_choices[] = {"1", "2", "4"};
    spec.set("jobs", jobs_choices[rng.uniform_int(0, 2)]);
    const char* mixes[] = {"typical", "mixed", "high-risk"};
    spec.set("mix", mixes[rng.uniform_int(0, 2)]);
    spec.set("monitor-period-s",
             fmt_double(safe_number(rng, info, "monitor-period-s")));
    spec.set("alarm-threshold", fmt_double(rng.uniform(80.0, 95.0)));

    if (hazard) {
        // Tightest claimed-safe deadline: with deadlines near the 600 s
        // envelope top a 6-8 minute run cannot violate by construction,
        // which would make the expected-hazard check vacuous.
        spec.set("deadline-s",
                 fmt_double(info.find_knob("deadline-s")->safe_lo));
        spec.set("interlock", "off");
        spec.set("demand-per-hour", fmt_double(rng.uniform(0.0, 20.0)));
        spec.set("bolus-mg", fmt_double(rng.uniform(0.5, 2.0)));
        spec.set("storm-fraction", fmt_double(rng.uniform(0.6, 1.0)));
        spec.set("storm-bolus-mg", fmt_double(rng.uniform(6.0, 10.0)));
        spec.set("storm-at-s", fmt_double(rng.uniform(30.0, 120.0)));
    } else {
        spec.set("deadline-s",
                 fmt_double(safe_number(rng, info, "deadline-s")));
        spec.set("interlock", "local");
        spec.set("demand-per-hour", fmt_double(rng.uniform(0.0, 60.0)));
        spec.set("bolus-mg", fmt_double(rng.uniform(0.0, 10.0)));
        if (rng.bernoulli(0.5)) {
            spec.set("storm-fraction", fmt_double(rng.uniform(0.0, 1.0)));
            spec.set("storm-bolus-mg", fmt_double(rng.uniform(0.0, 10.0)));
            spec.set("storm-at-s",
                     fmt_double(rng.uniform(
                         0.0, static_cast<double>(spec.minutes) * 60.0)));
        }
    }
    return spec;
}

std::string write_repro(const std::string& dir, std::uint64_t seed,
                        std::uint64_t index, const ScenarioSpec& spec,
                        std::uint64_t fingerprint,
                        const std::string& invariant,
                        const std::string& detail) {
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/hospital-" + std::to_string(seed) +
                             "-" + std::to_string(index) + ".repro";
    std::ofstream os{path};
    os << "# mcps_fuzz --hospital repro\n"
       << "# invariant: " << invariant << ": " << detail << "\n"
       << "spec: " << spec.to_text() << "\n"
       << "fingerprint: " << fmt_fingerprint(fingerprint) << "\n";
    if (!os) throw std::runtime_error{"cannot write repro: " + path};
    return path;
}

}  // namespace

HospitalFuzzOutcome run_hospital_fuzz(const HospitalFuzzOptions& opts) {
    const ScenarioInfo& info = scenario::registry().info("hospital-small");
    HospitalFuzzOutcome out;

    for (std::uint64_t i = 0; i < opts.scenarios; ++i) {
        const ScenarioSpec spec =
            sample_spec(info, opts.seed, i, opts.hazard);
        ++out.scenarios_run;

        auto fail = [&](std::string invariant, std::string detail,
                        std::uint64_t fingerprint) {
            HospitalFuzzFailure f;
            f.spec = spec;
            f.invariant = std::move(invariant);
            f.detail = std::move(detail);
            if (!opts.repro_dir.empty()) {
                f.repro_path =
                    write_repro(opts.repro_dir, opts.seed, i, spec,
                                fingerprint, f.invariant, f.detail);
                const auto replayed = replay_hospital_repro(f.repro_path);
                f.replay_byte_identical = replayed.byte_identical;
            }
            if (opts.log) {
                opts.log("hospital fuzz " + std::to_string(i) + ": " +
                         f.invariant + ": " + f.detail + " [" +
                         spec.to_text() + "]");
            }
            out.failures.push_back(std::move(f));
        };

        RunArtifacts art;
        try {
            art = scenario::registry().run(spec);
        } catch (const std::exception& e) {
            fail("resolves-and-runs", e.what(), 0);
            continue;
        }

        // Determinism + jobs invariance: the identical spec with
        // jobs=1 must reproduce the fingerprint and every outcome
        // metric bit-exactly (wall-clock never enters the outcome).
        ScenarioSpec serial = spec;
        serial.set("jobs", "1");
        const RunArtifacts again = scenario::registry().run(serial);
        if (again.fingerprint != art.fingerprint ||
            again.outcome != art.outcome) {
            fail("jobs-invariant-report",
                 "jobs=" + *spec.find("jobs") + " report differs from "
                 "jobs=1 (fingerprints " + art.fingerprint_hex() + " vs " +
                 again.fingerprint_hex() + ")",
                 art.fingerprint);
            continue;
        }

        const double violations = art.at("deadline_violations");
        if (violations > 0) ++out.violating_specs;

        if (!opts.hazard && violations > 0) {
            fail("deadline-safe-envelope",
                 std::to_string(static_cast<std::uint64_t>(violations)) +
                     " deadline violations inside the claimed-safe "
                     "envelope",
                 art.fingerprint);
            continue;
        }

        if (opts.hazard && violations > 0 && !opts.repro_dir.empty()) {
            // Expected hazard: capture it and prove the repro file
            // replays byte-identically.
            const std::string path = write_repro(
                opts.repro_dir, opts.seed, i, spec, art.fingerprint,
                "deadline-hazard-expected",
                std::to_string(static_cast<std::uint64_t>(violations)) +
                    " deadline violations (interlock off, storm)");
            const auto replayed = replay_hospital_repro(path);
            if (!replayed.byte_identical) {
                HospitalFuzzFailure f;
                f.spec = spec;
                f.invariant = "replay-byte-identical";
                f.detail = "repro " + path + " replayed to " +
                           fmt_fingerprint(replayed.fingerprint) +
                           ", expected " +
                           fmt_fingerprint(replayed.expected_fingerprint);
                f.repro_path = path;
                f.replay_byte_identical = false;
                if (opts.log) {
                    opts.log("hospital fuzz " + std::to_string(i) + ": " +
                             f.invariant + ": " + f.detail);
                }
                out.failures.push_back(std::move(f));
            } else if (opts.log) {
                opts.log("hospital fuzz " + std::to_string(i) + ": " +
                         std::to_string(
                             static_cast<std::uint64_t>(violations)) +
                         " expected violations, repro replays "
                         "byte-identically: " +
                         path);
            }
        }
    }
    return out;
}

HospitalReplayResult replay_hospital_repro(const std::string& path) {
    std::ifstream is{path};
    if (!is) throw std::runtime_error{"cannot open repro: " + path};

    HospitalReplayResult r;
    bool have_spec = false, have_fp = false;
    std::string line;
    while (std::getline(is, line)) {
        constexpr std::string_view kSpec = "spec: ";
        constexpr std::string_view kFp = "fingerprint: ";
        constexpr std::string_view kInv = "# invariant: ";
        if (line.rfind(kSpec, 0) == 0) {
            r.spec = scenario::parse_spec(line.substr(kSpec.size()));
            have_spec = true;
        } else if (line.rfind(kFp, 0) == 0) {
            r.expected_fingerprint = std::strtoull(
                line.c_str() + kFp.size(), nullptr, 16);
            have_fp = true;
        } else if (line.rfind(kInv, 0) == 0) {
            r.invariant = line.substr(kInv.size());
        }
    }
    if (!have_spec || !have_fp) {
        throw std::runtime_error{
            "malformed hospital repro (need 'spec: ' and 'fingerprint: ' "
            "lines): " +
            path};
    }

    const RunArtifacts art = scenario::registry().run(r.spec);
    r.fingerprint = art.fingerprint;
    r.byte_identical = art.fingerprint == r.expected_fingerprint;
    r.deadline_violations = art.at("deadline_violations");
    return r;
}

}  // namespace mcps::ward
