/// \file hospital_fuzz.hpp
/// \brief Hospital-family fuzz campaign: randomized cohorts and knobs
/// over the claimed-safe envelope.
///
/// The PR-1 fuzzer (testkit/fuzzer.hpp) mutates *fault plans* against a
/// fixed pca/xray scenario; the hospital family has no fault plan — its
/// hazard surface is the knob space itself (cohort size, sharding,
/// monitor period, demand, storms). So the hospital campaign samples
/// whole ScenarioSpecs instead:
///
///   safe mode    every knob drawn from its claimed-safe envelope
///                (interlock=local, monitor-period-s within the TA5
///                envelope, arbitrary storms). Invariants checked per
///                spec: the run resolves, deadline_violations == 0,
///                the report is byte-identical when re-run and when the
///                jobs knob changes.
///   hazard mode  interlock=off plus a synchronized storm — outside the
///                envelope, so deadline violations are EXPECTED. Each
///                violating spec gets a repro file that must replay
///                byte-identically.
///
/// A repro file is a text artifact embedding the spec line verbatim
/// (spec.hpp's round-trip guarantee makes it self-contained):
///
///   # mcps_fuzz --hospital repro
///   # invariant: deadline-safe-envelope: 3 deadline violations ...
///   spec: hospital-small seed=7 minutes=3 patients=40 ...
///   fingerprint: 0x1234567890abcdef
///
/// Lives in mcps_ward (not mcps_hospital) because sampling needs the
/// scenario registry, and mcps_scenario already links mcps_hospital.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace mcps::ward {

struct HospitalFuzzOptions {
    std::size_t scenarios = 50;
    std::uint64_t seed = 42;
    /// Sample outside the claimed-safe envelope (interlock=off + storm)
    /// and expect deadline violations instead of forbidding them.
    bool hazard = false;
    /// Directory for repro files; empty writes none.
    std::string repro_dir;
    /// Progress sink; null is silent.
    std::function<void(const std::string&)> log;
};

/// One spec that broke an invariant (safe mode) or whose expected
/// violation failed to replay (hazard mode).
struct HospitalFuzzFailure {
    scenario::ScenarioSpec spec;
    std::string invariant;  ///< which check failed
    std::string detail;     ///< human-readable specifics
    std::string repro_path; ///< "" when repro_dir is empty
    bool replay_byte_identical = false;
};

struct HospitalFuzzOutcome {
    std::size_t scenarios_run = 0;
    /// Specs that produced deadline violations (hazard mode expects
    /// this to be non-zero; safe mode turns each into a failure).
    std::size_t violating_specs = 0;
    std::vector<HospitalFuzzFailure> failures;

    [[nodiscard]] bool clean() const { return failures.empty(); }
};

[[nodiscard]] HospitalFuzzOutcome run_hospital_fuzz(
    const HospitalFuzzOptions& opts);

/// Outcome of replaying one hospital repro file.
struct HospitalReplayResult {
    scenario::ScenarioSpec spec;
    std::string invariant;  ///< invariant line recorded in the file
    std::uint64_t expected_fingerprint = 0;
    std::uint64_t fingerprint = 0;
    bool byte_identical = false;
    double deadline_violations = 0.0;
};

/// Parse and re-run a repro file written by run_hospital_fuzz.
/// \throws std::runtime_error when the file is missing or malformed.
[[nodiscard]] HospitalReplayResult replay_hospital_repro(
    const std::string& path);

}  // namespace mcps::ward
