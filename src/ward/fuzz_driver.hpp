/// \file fuzz_driver.hpp
/// \brief Ward-parallel front end for the testkit fuzz loop.
///
/// Fans the PR-1 fuzzer's scenario sweep out over the ward thread pool.
/// Scenario *execution* is embarrassingly parallel (each run is a pure
/// function of (seed, index)); failure *capture* — shrinking, replay
/// verification, repro files, log lines — is replayed sequentially in
/// ascending index order afterwards, so the outcome (failures, repro
/// files, log text) is identical to testkit::run_fuzz with the same
/// options, for any job count.

#pragma once

#include "testkit/fuzzer.hpp"

namespace mcps::ward {

/// Parallel run_fuzz. With jobs <= 1 this delegates to the sequential
/// testkit loop; otherwise results are bit-identical to it.
[[nodiscard]] testkit::FuzzOutcome run_fuzz(const testkit::FuzzOptions& opts,
                                            const testkit::InvariantChecker& checker,
                                            unsigned jobs);

/// Convenience overload with InvariantChecker::with_defaults().
[[nodiscard]] testkit::FuzzOutcome run_fuzz(const testkit::FuzzOptions& opts,
                                            unsigned jobs);

}  // namespace mcps::ward
