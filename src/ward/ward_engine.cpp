#include "ward_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <utility>
#include <vector>

#include "sim/table.hpp"
#include "thread_pool.hpp"

namespace mcps::ward {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

constexpr std::uint64_t mix64(std::uint64_t h, std::uint64_t v) noexcept {
    h ^= v;
    h *= 1099511628211ULL;
    h ^= h >> 29;
    return h;
}

/// Per-shard reduction state. Filled by exactly one worker at a time;
/// merged in shard order on the coordinating thread.
struct ShardAccumulator {
    sim::RunningStats drug_mg, min_spo2, mean_pain, detection_latency_s;
    sim::Histogram dose_hist{0.0, 40.0, 40};
    sim::Histogram latency_hist{0.0, 600.0, 60};
    std::uint64_t pca_runs = 0, xray_runs = 0, alarm_ward_runs = 0;
    std::uint64_t hospital_runs = 0;
    std::uint64_t demands_denied = 0, interlock_stops = 0;
    std::uint64_t monitor_alarms = 0, smart_alarms = 0, smart_critical = 0;
    std::uint64_t violations = 0, events_dispatched = 0;
    /// Scenario fingerprints in ascending index order within the shard.
    std::vector<std::uint64_t> fingerprints;

    void add(const ScenarioOutcome& o) {
        switch (o.kind) {
            case WardScenarioKind::kPcaClosedLoop: ++pca_runs; break;
            case WardScenarioKind::kXraySync: ++xray_runs; break;
            case WardScenarioKind::kAlarmWard: ++alarm_ward_runs; break;
            case WardScenarioKind::kHospital: ++hospital_runs; break;
        }
        min_spo2.add(o.min_spo2);
        if (o.kind != WardScenarioKind::kXraySync) {
            // Hospital slots contribute their per-patient mean dose, so
            // the dose distribution stays per-patient-scaled.
            drug_mg.add(o.drug_mg);
            mean_pain.add(o.mean_pain);
            dose_hist.add(o.drug_mg);
        }
        if (o.detection_latency_s >= 0.0) {
            detection_latency_s.add(o.detection_latency_s);
            latency_hist.add(o.detection_latency_s);
        }
        demands_denied += o.demands_denied;
        interlock_stops += o.interlock_stops;
        monitor_alarms += o.monitor_alarms;
        smart_alarms += o.smart_alarms;
        smart_critical += o.smart_critical;
        violations += o.violations;
        events_dispatched += o.events_dispatched;
        fingerprints.push_back(
            mix64(o.fingerprint, static_cast<std::uint64_t>(o.kind) + 1));
    }
};

/// Fold one scenario outcome into a shard-local metrics registry. Names
/// are stable wire identifiers (exported by mcps_trace / the ward CLI).
void record_outcome(obs::MetricsRegistry& reg, const ScenarioOutcome& o) {
    reg.counter("ward.scenarios").add(1);
    reg.counter("ward.runs." + std::string{to_string(o.kind)}).add(1);
    reg.counter("ward.demands_denied").add(o.demands_denied);
    reg.counter("ward.interlock_stops").add(o.interlock_stops);
    reg.counter("ward.monitor_alarms").add(o.monitor_alarms);
    reg.counter("ward.smart_alarms").add(o.smart_alarms);
    reg.counter("ward.smart_critical").add(o.smart_critical);
    reg.counter("ward.violations").add(o.violations);
    reg.counter("ward.events_dispatched").add(o.events_dispatched);
    reg.histogram("ward.min_spo2", 0.0, 100.0, 50).add(o.min_spo2);
    if (o.kind != WardScenarioKind::kXraySync) {
        reg.histogram("ward.dose_mg", 0.0, 40.0, 40).add(o.drug_mg);
    }
    if (o.detection_latency_s >= 0.0) {
        reg.histogram("ward.detection_latency_s", 0.0, 600.0, 60)
            .add(o.detection_latency_s);
    }
}

}  // namespace

double WardReport::alarms_per_scenario() const noexcept {
    return patients == 0 ? 0.0
                         : static_cast<double>(monitor_alarms + smart_alarms) /
                               static_cast<double>(patients);
}

WardEngine::WardEngine(WardConfig cfg) : cfg_{std::move(cfg)} {
    cfg_.validate();
}

WardReport WardEngine::run() const {
    return run(testkit::InvariantChecker::with_defaults());
}

WardReport WardEngine::run(const testkit::InvariantChecker& checker,
                           WardObservation* obs) const {
    const std::size_t n = cfg_.patients;
    const std::size_t shards = std::min(cfg_.shards, n);
    const WardScenarioFactory factory{cfg_};

    std::vector<ShardAccumulator> accs(shards);
    // Shard-local observability sinks: each shard appends its scenarios'
    // events in ascending index order; the calling thread concatenates
    // and merges in shard order, so the result is job-count independent.
    std::vector<obs::EventLog> shard_events(obs ? shards : 0);
    std::vector<obs::MetricsRegistry> shard_metrics(obs ? shards : 0);
    // Wall clock measures the engine itself (throughput metric); it never
    // feeds scenario state or fingerprints.
    // mcps-analyze: allow(SIM1): wall-clock perf metric only
    const auto t0 = std::chrono::steady_clock::now();
    parallel_shards(shards, cfg_.jobs, [&](std::size_t s) {
        const ShardRange r = shard_range(n, shards, s);
        auto& acc = accs[s];
        acc.fingerprints.reserve(r.last - r.first);
        obs::EventLog* log = obs ? &shard_events[s] : nullptr;
        if (log) {
            log->emit(obs::EventKind::kShardStart, sim::SimTime::origin(),
                      "ward", "shard", static_cast<double>(s));
        }
        for (std::size_t i = r.first; i < r.last; ++i) {
            const ScenarioOutcome o = factory.run(i, checker, log);
            acc.add(o);
            if (obs) record_outcome(shard_metrics[s], o);
        }
        if (log) {
            log->emit(obs::EventKind::kShardEnd, sim::SimTime::origin(),
                      "ward", "shard", static_cast<double>(s));
        }
    });
    // mcps-analyze: allow(SIM1): wall-clock perf metric only (see above).
    const auto t1 = std::chrono::steady_clock::now();

    WardReport rep;
    rep.seed = cfg_.seed;
    rep.patients = n;
    rep.jobs = cfg_.jobs;
    rep.shards = shards;
    rep.mix = to_string(cfg_.mix);
    rep.fault_intensity = cfg_.fault_intensity;

    // Canonical reduction: shard order == global scenario order, so the
    // Welford merge tree and the fingerprint chain are job-independent.
    std::uint64_t fp = mix64(kFnvOffset, cfg_.seed);
    fp = mix64(fp, n);
    for (const auto& acc : accs) {
        rep.drug_mg.merge(acc.drug_mg);
        rep.min_spo2.merge(acc.min_spo2);
        rep.mean_pain.merge(acc.mean_pain);
        rep.detection_latency_s.merge(acc.detection_latency_s);
        rep.dose_hist.merge(acc.dose_hist);
        rep.latency_hist.merge(acc.latency_hist);
        rep.pca_runs += acc.pca_runs;
        rep.xray_runs += acc.xray_runs;
        rep.alarm_ward_runs += acc.alarm_ward_runs;
        rep.hospital_runs += acc.hospital_runs;
        rep.demands_denied += acc.demands_denied;
        rep.interlock_stops += acc.interlock_stops;
        rep.monitor_alarms += acc.monitor_alarms;
        rep.smart_alarms += acc.smart_alarms;
        rep.smart_critical += acc.smart_critical;
        rep.violations += acc.violations;
        rep.events_dispatched += acc.events_dispatched;
        for (const std::uint64_t f : acc.fingerprints) fp = mix64(fp, f);
    }
    rep.fingerprint = fp;

    if (obs) {
        obs->events.clear();
        obs->metrics = obs::MetricsRegistry{};
        std::size_t total_events = 0;
        for (const auto& log : shard_events) total_events += log.size();
        obs->events.reserve(total_events);
        for (const auto& log : shard_events) obs->events.append(log);
        for (const auto& reg : shard_metrics) obs->metrics.merge(reg);
        // Campaign-shape gauges (job count deliberately excluded: the
        // observation must not vary with --jobs).
        obs->metrics.gauge("ward.fault_intensity").set(cfg_.fault_intensity);
        obs->metrics.gauge("ward.patients").set(static_cast<double>(n));
        obs->metrics.gauge("ward.shards").set(static_cast<double>(shards));
    }

    rep.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    rep.scenarios_per_sec =
        rep.wall_seconds > 0 ? static_cast<double>(n) / rep.wall_seconds : 0.0;
    return rep;
}

void WardReport::print(std::ostream& os) const {
    char fp[32];
    std::snprintf(fp, sizeof fp, "0x%016llx",
                  static_cast<unsigned long long>(fingerprint));
    os << "ward: " << patients << " patients, jobs " << jobs << ", shards "
       << shards << ", seed " << seed << ", mix " << mix << ", intensity "
       << fault_intensity << "\n"
       << "  fingerprint " << fp << "\n";

    sim::Table workload{{"workload", "runs"}};
    workload.row().cell("pca_closed_loop").cell(pca_runs);
    workload.row().cell("xray_sync").cell(xray_runs);
    workload.row().cell("alarm_ward").cell(alarm_ward_runs);
    if (hospital_runs > 0) workload.row().cell("hospital").cell(hospital_runs);
    workload.print(os, "workload mix");
    os << '\n';

    sim::Table t{{"metric", "count", "mean", "min", "max", "p95"}};
    const auto stat_row = [&t](const char* name, const sim::RunningStats& s,
                               const sim::Histogram& h) {
        t.row()
            .cell(name)
            .cell(static_cast<std::uint64_t>(s.count()))
            .cell(s.mean(), 2)
            .cell(s.empty() ? 0.0 : s.min(), 2)
            .cell(s.empty() ? 0.0 : s.max(), 2)
            .cell(h.total() ? h.quantile(0.95) : 0.0, 2);
    };
    stat_row("drug_mg", drug_mg, dose_hist);
    stat_row("detection_latency_s", detection_latency_s, latency_hist);
    t.row()
        .cell("min_spo2")
        .cell(static_cast<std::uint64_t>(min_spo2.count()))
        .cell(min_spo2.mean(), 2)
        .cell(min_spo2.empty() ? 0.0 : min_spo2.min(), 2)
        .cell(min_spo2.empty() ? 0.0 : min_spo2.max(), 2)
        .cell(std::string{"-"});
    t.row()
        .cell("mean_pain")
        .cell(static_cast<std::uint64_t>(mean_pain.count()))
        .cell(mean_pain.mean(), 2)
        .cell(mean_pain.empty() ? 0.0 : mean_pain.min(), 2)
        .cell(mean_pain.empty() ? 0.0 : mean_pain.max(), 2)
        .cell(std::string{"-"});
    t.print(os, "per-scenario distributions");
    os << '\n';

    sim::Table totals{{"total", "value"}};
    totals.row().cell("demands_denied").cell(demands_denied);
    totals.row().cell("interlock_stops").cell(interlock_stops);
    totals.row().cell("monitor_alarms").cell(monitor_alarms);
    totals.row().cell("smart_alarms").cell(smart_alarms);
    totals.row().cell("smart_critical").cell(smart_critical);
    totals.row().cell("invariant_violations").cell(violations);
    totals.row().cell("events_dispatched").cell(events_dispatched);
    totals.print(os, "ward totals");
    os << '\n';

    char line[128];
    std::snprintf(line, sizeof line,
                  "throughput: %.2f scenarios/sec (%.2f s wall)\n",
                  scenarios_per_sec, wall_seconds);
    os << line;
}

void WardReport::write_json(std::ostream& os) const {
    char fp[32];
    std::snprintf(fp, sizeof fp, "0x%016llx",
                  static_cast<unsigned long long>(fingerprint));
    const auto stats_obj = [&os](const char* name, const sim::RunningStats& s) {
        os << "    \"" << name << "\": {\"count\": " << s.count()
           << ", \"mean\": " << s.mean() << ", \"stddev\": " << s.stddev()
           << ", \"min\": " << (s.empty() ? 0.0 : s.min())
           << ", \"max\": " << (s.empty() ? 0.0 : s.max()) << "}";
    };
    os << "{\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"patients\": " << patients << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"shards\": " << shards << ",\n"
       << "  \"mix\": \"" << mix << "\",\n"
       << "  \"fault_intensity\": " << fault_intensity << ",\n"
       << "  \"fingerprint\": \"" << fp << "\",\n"
       << "  \"runs\": {\"pca\": " << pca_runs << ", \"xray\": " << xray_runs
       << ", \"alarm_ward\": " << alarm_ward_runs
       << ", \"hospital\": " << hospital_runs << "},\n"
       << "  \"stats\": {\n";
    stats_obj("drug_mg", drug_mg);
    os << ",\n";
    stats_obj("min_spo2", min_spo2);
    os << ",\n";
    stats_obj("mean_pain", mean_pain);
    os << ",\n";
    stats_obj("detection_latency_s", detection_latency_s);
    os << "\n  },\n"
       << "  \"dose_p95_mg\": "
       << (dose_hist.total() ? dose_hist.quantile(0.95) : 0.0) << ",\n"
       << "  \"detection_latency_p95_s\": "
       << (latency_hist.total() ? latency_hist.quantile(0.95) : 0.0) << ",\n"
       << "  \"totals\": {\"demands_denied\": " << demands_denied
       << ", \"interlock_stops\": " << interlock_stops
       << ", \"monitor_alarms\": " << monitor_alarms
       << ", \"smart_alarms\": " << smart_alarms
       << ", \"smart_critical\": " << smart_critical
       << ", \"invariant_violations\": " << violations
       << ", \"events_dispatched\": " << events_dispatched << "},\n"
       << "  \"wall_seconds\": " << wall_seconds << ",\n"
       << "  \"scenarios_per_sec\": " << scenarios_per_sec << "\n"
       << "}\n";
}

}  // namespace mcps::ward
