#include "ward_config.hpp"

#include <cstdio>

namespace mcps::ward {

ScenarioMix ScenarioMix::normalized() const {
    if (pca < 0 || xray < 0 || alarm_ward < 0 || hospital < 0) {
        throw WardConfigError{"ScenarioMix: negative weight"};
    }
    const double total = pca + xray + alarm_ward + hospital;
    if (!(total > 0)) {
        throw WardConfigError{"ScenarioMix: all weights are zero"};
    }
    return {pca / total, xray / total, alarm_ward / total, hospital / total};
}

ScenarioMix parse_mix(std::string_view spec) {
    ScenarioMix mix{0, 0, 0, 0};
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = std::min(spec.find(',', pos), spec.size());
        const std::string_view item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty()) {
            if (comma == spec.size()) break;
            throw WardConfigError{"parse_mix: empty item in '" +
                                  std::string{spec} + "'"};
        }
        const std::size_t eq = item.find('=');
        if (eq == std::string_view::npos) {
            throw WardConfigError{"parse_mix: expected key=weight, got '" +
                                  std::string{item} + "'"};
        }
        const std::string_view key = item.substr(0, eq);
        const std::string value{item.substr(eq + 1)};
        double weight = 0;
        try {
            std::size_t used = 0;
            weight = std::stod(value, &used);
            if (used != value.size()) throw std::invalid_argument{""};
        } catch (const std::exception&) {
            throw WardConfigError{"parse_mix: bad weight '" + value + "'"};
        }
        if (key == "pca") {
            mix.pca = weight;
        } else if (key == "xray") {
            mix.xray = weight;
        } else if (key == "ward" || key == "alarm_ward") {
            mix.alarm_ward = weight;
        } else if (key == "hospital") {
            mix.hospital = weight;
        } else {
            throw WardConfigError{"parse_mix: unknown workload '" +
                                  std::string{key} +
                                  "' (expected pca, xray, ward, or "
                                  "hospital)"};
        }
        if (comma == spec.size()) break;
    }
    return mix.normalized();  // validates too
}

std::string to_string(const ScenarioMix& mix) {
    const ScenarioMix n = mix.normalized();
    char buf[128];
    // The hospital weight renders only when present, so the classic
    // three-workload mix string (pinned by tests and report text) is
    // unchanged.
    if (n.hospital > 0) {
        std::snprintf(buf, sizeof buf,
                      "pca=%.3f,xray=%.3f,ward=%.3f,hospital=%.3f", n.pca,
                      n.xray, n.alarm_ward, n.hospital);
    } else {
        std::snprintf(buf, sizeof buf, "pca=%.3f,xray=%.3f,ward=%.3f", n.pca,
                      n.xray, n.alarm_ward);
    }
    return buf;
}

void WardConfig::validate() const {
    if (patients == 0) throw WardConfigError{"WardConfig: patients must be > 0"};
    if (shards == 0) throw WardConfigError{"WardConfig: shards must be > 0"};
    if (fault_intensity < 0) {
        throw WardConfigError{"WardConfig: fault_intensity must be >= 0"};
    }
    (void)mix.normalized();
}

}  // namespace mcps::ward
