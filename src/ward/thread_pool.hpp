/// \file thread_pool.hpp
/// \brief Work-stealing thread pool for ward-scale scenario execution.
///
/// The pool exists to run many *independent* scenario kernels at once:
/// each task is a whole single-threaded simulation, so tasks are coarse
/// (milliseconds to seconds) and the pool optimizes for simplicity and
/// clean shutdown rather than nanosecond dispatch. Every worker owns a
/// deque; owners pop newest-first (cache-warm), idle workers steal
/// oldest-first from a victim scanned in a fixed cyclic order. Scheduling
/// order is *not* deterministic — determinism is the job of the ward
/// engine's sharding, which makes every task a pure function of its index
/// and reduces results in a canonical order.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/guarded.hpp"

namespace mcps::ward {

/// try_pop's steal path counts the steal under state_mu_ while still
/// holding the victim queue's lock — the one permitted nesting.
MCPS_LOCK_ORDER(ThreadPool::WorkerQueue::mu, ThreadPool::state_mu_);

class ThreadPool {
public:
    using Task = std::function<void()>;

    /// Spawns \p workers threads (at least 1).
    explicit ThreadPool(unsigned workers);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Joins all workers; pending tasks are completed first.
    ~ThreadPool();

    /// Enqueue a task (round-robin across worker deques).
    void submit(Task task);

    /// Block until every submitted task has finished.
    void wait_idle();

    [[nodiscard]] unsigned worker_count() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }

    /// Number of tasks obtained by stealing (diagnostic; racy read —
    /// a torn uint64 only skews a stat, it gates nothing).
    // mcps-analyze: allow(CONC1): deliberately unlocked diagnostic read
    [[nodiscard]] std::uint64_t steals() const noexcept { return steals_; }

private:
    struct WorkerQueue {
        std::mutex mu;
        std::deque<Task> tasks MCPS_GUARDED_BY(mu);
    };

    void worker_loop(std::size_t id);
    bool try_pop(std::size_t id, Task& out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex state_mu_;
    std::condition_variable work_cv_;   ///< wakes idle workers
    std::condition_variable idle_cv_;   ///< wakes wait_idle()
    /// submitted, not yet completed
    std::size_t unfinished_ MCPS_GUARDED_BY(state_mu_) = 0;
    /// submitted, not yet started
    std::size_t queued_ MCPS_GUARDED_BY(state_mu_) = 0;
    bool stopping_ MCPS_GUARDED_BY(state_mu_) = false;

    /// round-robin submit cursor
    std::size_t next_queue_ MCPS_GUARDED_BY(state_mu_) = 0;
    std::uint64_t steals_ MCPS_GUARDED_BY(state_mu_) = 0;
};

/// Run \p body(shard) for every shard in [0, shard_count), spread over
/// \p jobs workers (inline when jobs <= 1 or there is a single shard).
/// The first exception thrown by any shard is rethrown to the caller
/// after all shards finish.
void parallel_shards(std::size_t shard_count, unsigned jobs,
                     const std::function<void(std::size_t)>& body);

/// Deterministic contiguous shard bounds: shard \p s of \p shard_count
/// covers indices [first, last) of \p items, with remainders spread over
/// the leading shards. Pure arithmetic — never depends on the job count.
struct ShardRange {
    std::size_t first = 0;
    std::size_t last = 0;
};
[[nodiscard]] ShardRange shard_range(std::size_t items, std::size_t shard_count,
                                     std::size_t s) noexcept;

}  // namespace mcps::ward
