#include "thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

namespace mcps::ward {

ThreadPool::ThreadPool(unsigned workers) {
    const unsigned n = std::max(1u, workers);
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        queues_.push_back(std::make_unique<WorkerQueue>());
    }
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::unique_lock lk{state_mu_};
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
}

void ThreadPool::submit(Task task) {
    if (!task) throw std::invalid_argument("ThreadPool::submit: empty task");
    std::size_t target;
    {
        std::unique_lock lk{state_mu_};
        if (stopping_) {
            throw std::logic_error("ThreadPool::submit: pool is stopping");
        }
        target = next_queue_;
        next_queue_ = (next_queue_ + 1) % queues_.size();
        ++unfinished_;
        ++queued_;
    }
    {
        std::unique_lock qlk{queues_[target]->mu};
        queues_[target]->tasks.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t id, Task& out) {
    // Own deque first, newest-first; then steal oldest-first from the
    // others in a fixed cyclic scan starting just past us.
    {
        auto& q = *queues_[id];
        std::unique_lock qlk{q.mu};
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            return true;
        }
    }
    const std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
        auto& victim = *queues_[(id + k) % n];
        std::unique_lock qlk{victim.mu};
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            {
                std::unique_lock lk{state_mu_};
                ++steals_;
            }
            return true;
        }
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t id) {
    for (;;) {
        Task task;
        if (try_pop(id, task)) {
            {
                std::unique_lock lk{state_mu_};
                --queued_;
            }
            task();
            std::unique_lock lk{state_mu_};
            if (--unfinished_ == 0) idle_cv_.notify_all();
            continue;
        }
        std::unique_lock lk{state_mu_};
        if (stopping_ && queued_ == 0) return;
        if (queued_ == 0) {
            work_cv_.wait(lk, [this] { return stopping_ || queued_ > 0; });
            if (stopping_ && queued_ == 0) return;
        }
        // queued_ > 0: loop back and race for the task.
    }
}

void ThreadPool::wait_idle() {
    std::unique_lock lk{state_mu_};
    idle_cv_.wait(lk, [this] { return unfinished_ == 0; });
}

void parallel_shards(std::size_t shard_count, unsigned jobs,
                     const std::function<void(std::size_t)>& body) {
    if (shard_count == 0) return;
    if (jobs <= 1 || shard_count == 1) {
        for (std::size_t s = 0; s < shard_count; ++s) body(s);
        return;
    }

    std::mutex err_mu;
    std::exception_ptr first_error;
    {
        ThreadPool pool{static_cast<unsigned>(
            std::min<std::size_t>(jobs, shard_count))};
        for (std::size_t s = 0; s < shard_count; ++s) {
            pool.submit([&, s] {
                try {
                    body(s);
                } catch (...) {
                    std::unique_lock lk{err_mu};
                    if (!first_error) first_error = std::current_exception();
                }
            });
        }
        pool.wait_idle();
    }
    if (first_error) std::rethrow_exception(first_error);
}

ShardRange shard_range(std::size_t items, std::size_t shard_count,
                       std::size_t s) noexcept {
    if (shard_count == 0 || s >= shard_count) return {};
    const std::size_t base = items / shard_count;
    const std::size_t extra = items % shard_count;
    const std::size_t first = s * base + std::min(s, extra);
    const std::size_t len = base + (s < extra ? 1 : 0);
    return {first, first + len};
}

}  // namespace mcps::ward
