/// \file ward_config.hpp
/// \brief Configuration for a ward-scale parallel scenario campaign.

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mcps::ward {

/// Error thrown on malformed ward configuration (bad mix spec, zero
/// weights, ...).
class WardConfigError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Relative weights of the ward workloads. Weights are normalized
/// before use; they need not sum to 1.
struct ScenarioMix {
    double pca = 0.70;         ///< PCA closed-loop (interlock active)
    double xray = 0.15;        ///< X-ray/ventilator sync procedures
    double alarm_ward = 0.15;  ///< smart-alarm ward shift (monitor + fusion)
    /// Embedded smoke-sized hospital population runs (hospital-small
    /// preset, single-threaded per run). Off by default so the classic
    /// three-workload campaigns keep their exact kind sequence.
    double hospital = 0.0;

    /// Normalized copy. \throws WardConfigError if any weight is negative
    /// or all are zero.
    [[nodiscard]] ScenarioMix normalized() const;

    friend bool operator==(const ScenarioMix&, const ScenarioMix&) = default;
};

/// Parse "pca=0.7,xray=0.15,ward=0.15" (any subset; omitted keys are 0).
/// \throws WardConfigError on unknown keys or malformed numbers.
[[nodiscard]] ScenarioMix parse_mix(std::string_view spec);

/// Canonical "pca=..,xray=..,ward=.." rendering of the normalized mix.
[[nodiscard]] std::string to_string(const ScenarioMix& mix);

/// Everything a ward campaign needs. Scenario content is a pure function
/// of (seed, scenario index, mix, fault_intensity); `jobs` and `shards`
/// only decide how the work is spread, never what it computes — except
/// that `shards` fixes the reduction tree for the merged floating-point
/// statistics, so it deliberately does NOT default from the job count.
struct WardConfig {
    std::uint64_t seed = 42;
    std::size_t patients = 64;   ///< scenarios to run (one per patient slot)
    unsigned jobs = 1;           ///< worker threads
    std::size_t shards = 64;     ///< deterministic reduction shards
    ScenarioMix mix{};
    /// Scales the adversarial fault plans injected into PCA-family
    /// scenarios (0 = none, 1 = the fuzzer's default mix).
    double fault_intensity = 0.0;

    /// \throws WardConfigError on zero patients/shards or a bad mix.
    void validate() const;
};

}  // namespace mcps::ward
