/// \file serve.hpp
/// \brief Umbrella header for the scenario-execution service.

#pragma once

#include "admission.hpp"  // IWYU pragma: export
#include "cache.hpp"      // IWYU pragma: export
#include "client.hpp"     // IWYU pragma: export
#include "protocol.hpp"   // IWYU pragma: export
#include "server.hpp"     // IWYU pragma: export
#include "socket_io.hpp"  // IWYU pragma: export
