#include "protocol.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mcps::serve {

namespace {

[[noreturn]] void bad(std::string message) {
    throw ProtocolError{"bad-request", std::move(message)};
}

/// Strict, total JSON scanner for the fixed envelope shapes. Escape
/// handling is limited to what the protocol itself emits (json_escape
/// below); anything else is a structured error. Balanced sub-values
/// ("spec", "artifacts", "stats") are captured as raw text with a depth
/// bound so adversarial nesting cannot recurse or allocate unboundedly.
class Scan {
public:
    explicit Scan(std::string_view t) : t_{t} {}

    void ws() noexcept {
        while (i_ < t_.size() &&
               std::isspace(static_cast<unsigned char>(t_[i_])) != 0) {
            ++i_;
        }
    }

    char peek() {
        ws();
        if (i_ >= t_.size()) bad("unexpected end of input");
        return t_[i_];
    }

    void expect(char c) {
        if (peek() != c) {
            bad(std::string{"expected '"} + c + "', got '" + t_[i_] + "'");
        }
        ++i_;
    }

    bool accept(char c) {
        ws();
        if (i_ < t_.size() && t_[i_] == c) {
            ++i_;
            return true;
        }
        return false;
    }

    /// Quoted string with the protocol's escape set.
    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (i_ >= t_.size()) bad("unterminated string");
            const char c = t_[i_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                bad("raw control byte in string");
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (i_ >= t_.size()) bad("unterminated escape");
            const char e = t_[i_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'n': out.push_back('\n'); break;
                case 't': out.push_back('\t'); break;
                case 'r': out.push_back('\r'); break;
                case 'u': {
                    if (i_ + 4 > t_.size()) bad("truncated \\u escape");
                    unsigned v = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = t_[i_++];
                        v <<= 4;
                        if (h >= '0' && h <= '9') {
                            v |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            bad("invalid \\u escape digit");
                        }
                    }
                    if (v > 0x7F) {
                        // The protocol only ever \u-escapes control
                        // bytes; anything else arrives as raw UTF-8.
                        bad("\\u escape above U+007F unsupported");
                    }
                    out.push_back(static_cast<char>(v));
                    break;
                }
                default: bad(std::string{"unsupported escape '\\"} + e + "'");
            }
        }
    }

    std::uint64_t u64(std::string_view key) {
        ws();
        const std::size_t start = i_;
        while (i_ < t_.size() &&
               std::isdigit(static_cast<unsigned char>(t_[i_])) != 0) {
            ++i_;
        }
        const std::string_view v = t_.substr(start, i_ - start);
        std::uint64_t out = 0;
        const auto [p, ec] =
            std::from_chars(v.data(), v.data() + v.size(), out);
        if (v.empty() || ec != std::errc{} || p != v.data() + v.size()) {
            bad(std::string{key} + ": expected an unsigned integer");
        }
        return out;
    }

    bool boolean(std::string_view key) {
        ws();
        if (t_.substr(i_, 4) == "true") {
            i_ += 4;
            return true;
        }
        if (t_.substr(i_, 5) == "false") {
            i_ += 5;
            return false;
        }
        bad(std::string{key} + ": expected true or false");
    }

    /// Captures one balanced JSON value as raw text (object, array,
    /// string, number, bool or null). Depth-limited; string-aware.
    std::string_view raw_value() {
        ws();
        const std::size_t start = i_;
        int depth = 0;
        bool in_string = false;
        if (i_ >= t_.size()) bad("unexpected end of input");
        do {
            if (i_ >= t_.size()) bad("truncated value");
            const char c = t_[i_];
            if (in_string) {
                if (c == '\\') {
                    if (i_ + 1 >= t_.size()) bad("unterminated escape");
                    ++i_;
                } else if (c == '"') {
                    in_string = false;
                }
            } else if (c == '"') {
                in_string = true;
            } else if (c == '{' || c == '[') {
                if (++depth > kMaxDepth) bad("value nested too deeply");
            } else if (c == '}' || c == ']') {
                if (depth == 0) bad("unbalanced value");
                --depth;
            } else if (depth == 0 && (c == ',' || std::isspace(
                                          static_cast<unsigned char>(c)))) {
                break;  // bare scalar ended
            }
            ++i_;
        } while (depth > 0 || in_string ||
                 (i_ > start && t_[start] != '{' && t_[start] != '[' &&
                  t_[start] != '"' && i_ < t_.size() && t_[i_] != ',' &&
                  t_[i_] != '}' && t_[i_] != ']' &&
                  std::isspace(static_cast<unsigned char>(t_[i_])) == 0) ||
                 i_ == start);
        if (i_ == start) bad("empty value");
        return t_.substr(start, i_ - start);
    }

    void done() {
        ws();
        if (i_ != t_.size()) bad("trailing content after object");
    }

private:
    static constexpr int kMaxDepth = 16;
    std::string_view t_;
    std::size_t i_ = 0;
};

bool id_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '.' || c == '_' || c == ':' ||
           c == '-';
}

void validate_id(std::string_view id) {
    if (id.size() > kMaxIdBytes) bad("id longer than 64 bytes");
    for (const char c : id) {
        if (!id_char(c)) bad("id contains characters outside [A-Za-z0-9._:-]");
    }
}

}  // namespace

std::string_view to_string(QosClass c) noexcept {
    switch (c) {
        case QosClass::kClinical: return "clinical";
        case QosClass::kInteractive: return "interactive";
        case QosClass::kBatch: return "batch";
    }
    return "?";
}

QosClass parse_qos_class(std::string_view s) {
    if (s == "clinical") return QosClass::kClinical;
    if (s == "interactive") return QosClass::kInteractive;
    if (s == "batch") return QosClass::kBatch;
    throw ProtocolError{"bad-request",
                        "class: expected clinical|interactive|batch, got '" +
                            std::string{s} + "'"};
}

bool utf8_valid(std::string_view s) noexcept {
    std::size_t i = 0;
    while (i < s.size()) {
        const auto b0 = static_cast<unsigned char>(s[i]);
        std::size_t len;
        std::uint32_t cp;
        if (b0 < 0x80) {
            ++i;
            continue;
        } else if ((b0 & 0xE0) == 0xC0) {
            len = 2;
            cp = b0 & 0x1Fu;
        } else if ((b0 & 0xF0) == 0xE0) {
            len = 3;
            cp = b0 & 0x0Fu;
        } else if ((b0 & 0xF8) == 0xF0) {
            len = 4;
            cp = b0 & 0x07u;
        } else {
            return false;
        }
        if (i + len > s.size()) return false;
        for (std::size_t k = 1; k < len; ++k) {
            const auto b = static_cast<unsigned char>(s[i + k]);
            if ((b & 0xC0) != 0x80) return false;
            cp = (cp << 6) | (b & 0x3Fu);
        }
        // Overlong encodings, UTF-16 surrogates, out of range.
        if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
            (len == 4 && cp < 0x10000) || (cp >= 0xD800 && cp <= 0xDFFF) ||
            cp > 0x10FFFF) {
            return false;
        }
        i += len;
    }
    return true;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (u < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", u);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

Request parse_request(std::string_view line) {
    if (!utf8_valid(line)) bad("request line is not valid UTF-8");
    Scan s{line};
    Request r;
    bool seen_spec = false, seen_cmd = false, seen_id = false;
    bool seen_class = false, seen_no_cache = false;
    std::string cmd;
    s.expect('{');
    if (!s.accept('}')) {
        do {
            const std::string key = s.string();
            s.expect(':');
            if (key == "id") {
                if (seen_id) bad("duplicate field 'id'");
                seen_id = true;
                r.id = s.string();
                validate_id(r.id);
            } else if (key == "spec") {
                if (seen_spec) bad("duplicate field 'spec'");
                seen_spec = true;
                const std::string_view raw = s.raw_value();
                if (raw.empty() || raw.front() != '{') {
                    bad("spec: expected a JSON object");
                }
                try {
                    r.spec = scenario::parse_spec_json(raw);
                } catch (const scenario::SpecError& e) {
                    throw ProtocolError{"bad-spec", e.what()};
                }
            } else if (key == "class") {
                if (seen_class) bad("duplicate field 'class'");
                seen_class = true;
                r.qos = parse_qos_class(s.string());
            } else if (key == "no_cache") {
                if (seen_no_cache) bad("duplicate field 'no_cache'");
                seen_no_cache = true;
                r.no_cache = s.boolean(key);
            } else if (key == "cmd") {
                if (seen_cmd) bad("duplicate field 'cmd'");
                seen_cmd = true;
                cmd = s.string();
            } else {
                bad("unknown field '" + key + "'");
            }
        } while (s.accept(','));
        s.expect('}');
    }
    s.done();

    if (seen_spec == seen_cmd) {
        bad("exactly one of 'spec' or 'cmd' is required");
    }
    if (seen_cmd) {
        if (cmd == "ping") {
            r.kind = Request::Kind::kPing;
        } else if (cmd == "stats") {
            r.kind = Request::Kind::kStats;
        } else if (cmd == "drain") {
            r.kind = Request::Kind::kDrain;
        } else {
            bad("cmd: expected ping|stats|drain, got '" + cmd + "'");
        }
        if (seen_class || seen_no_cache) {
            bad("'class'/'no_cache' are only valid on run requests");
        }
    } else {
        r.kind = Request::Kind::kRun;
    }
    return r;
}

std::string Request::to_line() const {
    std::ostringstream os;
    os << "{\"id\":\"" << id << "\"";
    switch (kind) {
        case Kind::kRun:
            os << ",\"spec\":" << spec.to_json();
            if (qos != QosClass::kInteractive) {
                os << ",\"class\":\"" << serve::to_string(qos) << "\"";
            }
            if (no_cache) os << ",\"no_cache\":true";
            break;
        case Kind::kPing: os << ",\"cmd\":\"ping\""; break;
        case Kind::kStats: os << ",\"cmd\":\"stats\""; break;
        case Kind::kDrain: os << ",\"cmd\":\"drain\""; break;
    }
    os << "}";
    return os.str();
}

std::string artifacts_json_line(const scenario::RunArtifacts& a) {
    std::ostringstream os;
    os << "{\"spec\":" << a.spec.to_json() << ",\"fingerprint\":\""
       << a.fingerprint_hex() << "\",\"outcome\":{";
    for (std::size_t i = 0; i < a.outcome.size(); ++i) {
        os << (i ? "," : "") << "\"" << a.outcome[i].first << "\":";
        if (std::isfinite(a.outcome[i].second)) {
            os << a.outcome[i].second;
        } else {
            os << "null";
        }
    }
    os << "}}";
    return os.str();
}

std::string ok_run_response(std::string_view id, bool cached,
                            std::uint64_t queue_us, std::uint64_t run_us,
                            std::string_view artifacts_json) {
    std::ostringstream os;
    os << "{\"id\":\"" << json_escape(id) << "\",\"status\":\"ok\""
       << ",\"cached\":" << (cached ? "true" : "false")
       << ",\"queue_us\":" << queue_us << ",\"run_us\":" << run_us
       << ",\"artifacts\":" << artifacts_json << "}";
    return os.str();
}

std::string pong_response(std::string_view id) {
    return "{\"id\":\"" + json_escape(id) +
           "\",\"status\":\"ok\",\"pong\":true}";
}

std::string stats_response(std::string_view id, std::string_view stats_json) {
    return "{\"id\":\"" + json_escape(id) + "\",\"status\":\"ok\",\"stats\":" +
           std::string{stats_json} + "}";
}

std::string drain_response(std::string_view id) {
    return "{\"id\":\"" + json_escape(id) +
           "\",\"status\":\"ok\",\"draining\":true}";
}

std::string error_response(std::string_view id, std::string_view status,
                           std::string_view code, std::string_view message) {
    std::ostringstream os;
    os << "{\"id\":\"" << json_escape(id) << "\",\"status\":\"" << status
       << "\",\"error\":{\"code\":\"" << json_escape(code)
       << "\",\"message\":\"" << json_escape(message) << "\"}}";
    return os.str();
}

Response parse_response(std::string_view line) {
    if (!utf8_valid(line)) bad("response line is not valid UTF-8");
    Scan s{line};
    Response r;
    s.expect('{');
    if (!s.accept('}')) {
        do {
            const std::string key = s.string();
            s.expect(':');
            if (key == "id") {
                r.id = s.string();
            } else if (key == "status") {
                r.status = s.string();
            } else if (key == "cached") {
                r.cached = s.boolean(key);
            } else if (key == "pong") {
                r.pong = s.boolean(key);
            } else if (key == "draining") {
                r.draining = s.boolean(key);
            } else if (key == "queue_us") {
                r.queue_us = s.u64(key);
            } else if (key == "run_us") {
                r.run_us = s.u64(key);
            } else if (key == "artifacts") {
                r.artifacts = std::string{s.raw_value()};
            } else if (key == "stats") {
                r.stats = std::string{s.raw_value()};
            } else if (key == "error") {
                s.expect('{');
                do {
                    const std::string ek = s.string();
                    s.expect(':');
                    if (ek == "code") {
                        r.error_code = s.string();
                    } else if (ek == "message") {
                        r.error_message = s.string();
                    } else {
                        bad("unknown error field '" + ek + "'");
                    }
                } while (s.accept(','));
                s.expect('}');
            } else {
                bad("unknown field '" + key + "'");
            }
        } while (s.accept(','));
        s.expect('}');
    }
    s.done();
    if (r.status.empty()) bad("response missing 'status'");
    return r;
}

std::string artifacts_fingerprint(std::string_view artifacts) {
    // The artifacts writer is ours, so the field appears literally as
    // "fingerprint":"0x...". A scan is enough; absence yields "".
    const std::string_view needle = "\"fingerprint\":\"";
    const std::size_t at = artifacts.find(needle);
    if (at == std::string_view::npos) return "";
    const std::size_t start = at + needle.size();
    const std::size_t end = artifacts.find('"', start);
    if (end == std::string_view::npos) return "";
    return std::string{artifacts.substr(start, end - start)};
}

}  // namespace mcps::serve
