/// \file server.hpp
/// \brief The mcps_serve scenario-execution service.
///
/// A Server owns one Listener, one accept thread, one reader thread per
/// connection, and a ward::ThreadPool of scenario workers fed through
/// an AdmissionQueue. The data path for a run request:
///
///   reader thread: parse → cache lookup (hit answers inline) → offer
///     to the admission queue → on admission, submit one pool ticket
///   worker: pop the highest-priority pending job, run it through the
///     scenario registry, fill the cache, write the response under the
///     connection's write mutex
///
/// Shedding keeps the ticket/job ledger balanced: a shed displaces an
/// already-ticketed victim (whose client gets an immediate structured
/// rejection from the reader thread) and reuses its ticket, so workers
/// never block on an empty queue.
///
/// Graceful drain: request_drain() (from the `drain` command, a signal
/// handler, or the embedding test) closes the admission queue — new run
/// requests get a "draining" rejection — and wakes wait(), which stops
/// accepting, lets the pool finish every admitted job, disconnects the
/// remaining clients, joins all threads and finally writes the cache
/// snapshot when configured.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "admission.hpp"
#include "cache.hpp"
#include "obs/shared_metrics.hpp"
#include "protocol.hpp"
#include "sim/guarded.hpp"
#include "socket_io.hpp"
#include "ward/thread_pool.hpp"

namespace mcps::serve {

struct ServerConfig {
    Endpoint endpoint;  ///< where to listen (TCP port 0 = ephemeral)
    unsigned workers = 2;
    std::size_t queue_capacity = 64;
    std::size_t cache_entries = 256;
    std::size_t max_request_bytes = 64 * 1024;
    std::string cache_load_path;  ///< snapshot to load on start ("" = none)
    std::string cache_save_path;  ///< snapshot to write on drain ("" = none)
};

class Server {
public:
    /// Binds and starts serving immediately.
    /// \throws std::runtime_error when the endpoint cannot be bound.
    explicit Server(ServerConfig cfg);

    /// Drains (if not already drained) and joins everything.
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// The bound endpoint (TCP port 0 resolved to the actual port).
    [[nodiscard]] const Endpoint& endpoint() const noexcept {
        return listener_.endpoint();
    }

    /// Begin graceful shutdown (idempotent, safe from any thread
    /// including connection readers and signal-watcher threads).
    void request_drain();

    /// Block until drain has been requested, then tear down: stop
    /// accepting, finish admitted jobs, disconnect clients, join
    /// threads, save the cache snapshot. Returns after full shutdown.
    void wait();

    [[nodiscard]] obs::SharedMetrics& metrics() noexcept { return metrics_; }
    [[nodiscard]] ResultCache& cache() noexcept { return cache_; }

private:
    // Wall-clock queue/run latency of a real network service; simulated
    // time stays inside the scenario runs.
    // mcps-analyze: allow(SIM1): real-service queue/run wall-latency
    using Clock = std::chrono::steady_clock;

    /// Per-connection shared state. Reader thread and queued jobs both
    /// hold references; writes are serialized by `write_mu`.
    struct Conn {
        explicit Conn(Fd f) : fd{std::move(f)} {}
        Fd fd;
        std::mutex write_mu;
        std::atomic<bool> alive{true};
    };

    struct Job {
        std::string id;
        scenario::ScenarioSpec spec;
        bool no_cache = false;
        std::shared_ptr<Conn> conn;
        Clock::time_point enqueued{};
    };

    void accept_loop();
    void reader_loop(const std::shared_ptr<Conn>& conn);
    void handle_line(const std::shared_ptr<Conn>& conn,
                     const std::string& line);
    void handle_run(const std::shared_ptr<Conn>& conn, Request req);
    void worker_tick();
    void send(const std::shared_ptr<Conn>& conn, std::string_view line);
    [[nodiscard]] std::string stats_line() const;

    ServerConfig cfg_;
    obs::SharedMetrics metrics_;
    ResultCache cache_;
    AdmissionQueue<Job> queue_;
    Listener listener_;
    std::unique_ptr<ward::ThreadPool> pool_;

    Fd wake_read_, wake_write_;  ///< self-pipe to unblock accept_loop
    std::thread accept_thread_;

    std::mutex conns_mu_;
    std::vector<std::shared_ptr<Conn>> conns_ MCPS_GUARDED_BY(conns_mu_);
    std::vector<std::thread> reader_threads_ MCPS_GUARDED_BY(conns_mu_);

    std::mutex drain_mu_;
    std::condition_variable drain_cv_;
    bool drain_requested_ MCPS_GUARDED_BY(drain_mu_) = false;
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopped_{false};
};

}  // namespace mcps::serve
