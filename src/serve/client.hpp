/// \file client.hpp
/// \brief Synchronous mcps_serve client: one connection, one request in
/// flight. Covers the CLI, the load generator and the e2e tests; the
/// 1:1 request/response line discipline of the protocol means a
/// synchronous caller can always pair the next response line with the
/// request it just wrote.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "protocol.hpp"
#include "socket_io.hpp"

namespace mcps::serve {

class Client {
public:
    /// Connects immediately. \throws std::runtime_error on failure.
    explicit Client(const Endpoint& ep);

    /// Send one request, block for its response.
    /// \throws std::runtime_error when the connection drops;
    /// \throws ProtocolError when the response line is malformed.
    Response call(const Request& req);

    /// Send a raw line verbatim (malformed-input tests) and block for
    /// the server's structured reply.
    Response call_raw(std::string_view line);

    /// Convenience wrappers (ids are generated: "c1", "c2", ...).
    Response run(const scenario::ScenarioSpec& spec,
                 QosClass qos = QosClass::kInteractive,
                 bool no_cache = false);
    Response ping();
    Response stats();
    Response drain();

private:
    [[nodiscard]] std::string make_id();

    Fd fd_;
    LineReader reader_;
    std::uint64_t next_id_ = 0;
};

}  // namespace mcps::serve
