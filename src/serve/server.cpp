#include "server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "scenario/registry.hpp"

namespace mcps::serve {

namespace {

// Wall-latency of a real network service, not simulated time — the
// scenario runs themselves stay on sim::SimTime.
// mcps-analyze: allow(SIM1): real-service queue/run wall-latency
using WallClock = std::chrono::steady_clock;

std::uint64_t micros_since(WallClock::time_point t0,
                           WallClock::time_point t1) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count();
    return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_{std::move(cfg)},
      cache_{cfg_.cache_entries, &metrics_},
      queue_{cfg_.queue_capacity},
      listener_{cfg_.endpoint} {
    if (!cfg_.cache_load_path.empty()) {
        const std::size_t n = cache_.load(cfg_.cache_load_path);
        metrics_.add("serve/cache/snapshot_loaded", n);
    }
    int fds[2];
    if (::pipe(fds) != 0) {
        throw std::runtime_error("pipe() failed for serve wake channel");
    }
    wake_read_ = Fd{fds[0]};
    wake_write_ = Fd{fds[1]};
    pool_ = std::make_unique<ward::ThreadPool>(std::max(1u, cfg_.workers));
    accept_thread_ = std::thread{[this] { accept_loop(); }};
}

Server::~Server() {
    request_drain();
    wait();
}

void Server::accept_loop() {
    while (!draining_) {
        pollfd pfds[2] = {{listener_.fd(), POLLIN, 0},
                          {wake_read_.get(), POLLIN, 0}};
        const int r = ::poll(pfds, 2, -1);
        if (r < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if ((pfds[1].revents & POLLIN) != 0) break;  // drain wake-up
        if ((pfds[0].revents & POLLIN) == 0) continue;
        Fd fd = listener_.accept_one();
        if (!fd.valid()) continue;
        auto conn = std::make_shared<Conn>(std::move(fd));
        {
            const std::lock_guard<std::mutex> lock{conns_mu_};
            if (draining_) continue;  // raced with drain: drop it
            conns_.push_back(conn);
            reader_threads_.emplace_back(
                [this, conn] { reader_loop(conn); });
        }
        metrics_.add("serve/connections");
    }
}

void Server::reader_loop(const std::shared_ptr<Conn>& conn) {
    LineReader reader{conn->fd.get(), cfg_.max_request_bytes};
    std::string line;
    while (conn->alive) {
        const LineReader::Status st = reader.next(line);
        if (st == LineReader::Status::kEof ||
            st == LineReader::Status::kError) {
            break;
        }
        if (st == LineReader::Status::kOversized) {
            metrics_.add("serve/errors/oversized");
            send(conn, error_response(
                           "", "error", "oversized",
                           "request line exceeds " +
                               std::to_string(cfg_.max_request_bytes) +
                               " bytes"));
            continue;
        }
        handle_line(conn, line);
    }
    conn->alive = false;
}

void Server::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line) {
    Request req;
    try {
        req = parse_request(line);
    } catch (const ProtocolError& e) {
        metrics_.add("serve/errors/" + e.code);
        send(conn, error_response("", "error", e.code, e.message));
        return;
    }
    switch (req.kind) {
        case Request::Kind::kPing:
            send(conn, pong_response(req.id));
            return;
        case Request::Kind::kStats:
            send(conn, stats_response(req.id, stats_line()));
            return;
        case Request::Kind::kDrain:
            send(conn, drain_response(req.id));
            request_drain();
            return;
        case Request::Kind::kRun:
            handle_run(conn, std::move(req));
            return;
    }
}

void Server::handle_run(const std::shared_ptr<Conn>& conn, Request req) {
    metrics_.add("serve/requests");
    if (draining_) {
        // Even cache hits are refused once draining: drain means "no
        // new results from this server", not "only slow ones".
        metrics_.add("serve/rejected/draining");
        send(conn, error_response(req.id, "rejected", "draining",
                                  "server is draining"));
        return;
    }
    const std::string key = cache_key(req.spec);
    if (!req.no_cache) {
        if (auto hit = cache_.lookup(key)) {
            metrics_.add("serve/completed");
            send(conn, ok_run_response(req.id, true, 0, 0, *hit));
            return;
        }
    }
    const std::string id = req.id;  // survives the move into the queue
    Job job;
    job.id = std::move(req.id);
    job.spec = std::move(req.spec);
    job.no_cache = req.no_cache;
    job.conn = conn;
    job.enqueued = Clock::now();
    auto offer = queue_.offer(std::move(job), req.qos);
    switch (offer.outcome) {
        case AdmissionQueue<Job>::Outcome::kAdmitted:
            pool_->submit([this] { worker_tick(); });
            return;
        case AdmissionQueue<Job>::Outcome::kShed: {
            // The displaced lower-priority job's ticket now serves this
            // request, so no new submit; its client hears immediately.
            metrics_.add("serve/shed");
            metrics_.add("serve/rejected/overloaded");
            const Job& victim = *offer.victim;
            send(victim.conn,
                 error_response(victim.id, "rejected", "overloaded",
                                "shed for a higher-priority arrival"));
            return;
        }
        case AdmissionQueue<Job>::Outcome::kRejected:
            metrics_.add("serve/rejected/overloaded");
            send(conn, error_response(
                           id, "rejected", "overloaded",
                           "admission queue full of equal-or-higher-"
                           "priority work"));
            return;
        case AdmissionQueue<Job>::Outcome::kClosed:
            metrics_.add("serve/rejected/draining");
            send(conn, error_response(id, "rejected", "draining",
                                      "server is draining"));
            return;
    }
}

void Server::worker_tick() {
    auto popped = queue_.try_pop();
    if (!popped) return;  // a shed raced the ledger; nothing to do
    Job job = std::move(popped->first);
    const auto t0 = Clock::now();
    const std::uint64_t queue_us = micros_since(job.enqueued, t0);
    std::string artifacts;
    try {
        const scenario::RunArtifacts a = scenario::registry().run(job.spec);
        artifacts = artifacts_json_line(a);
    } catch (const scenario::SpecError& e) {
        metrics_.add("serve/errors/bad-spec");
        send(job.conn, error_response(job.id, "error", "bad-spec", e.what()));
        return;
    } catch (const std::exception& e) {
        metrics_.add("serve/errors/internal");
        send(job.conn, error_response(job.id, "error", "internal", e.what()));
        return;
    }
    const std::uint64_t run_us = micros_since(t0, Clock::now());
    if (!job.no_cache) cache_.insert(cache_key(job.spec), artifacts);
    metrics_.add("serve/completed");
    metrics_.observe("serve/queue_ms", 0.0, 1000.0, 100,
                     static_cast<double>(queue_us) / 1000.0);
    metrics_.observe("serve/run_ms", 0.0, 10000.0, 100,
                     static_cast<double>(run_us) / 1000.0);
    send(job.conn,
         ok_run_response(job.id, false, queue_us, run_us, artifacts));
}

void Server::send(const std::shared_ptr<Conn>& conn, std::string_view line) {
    if (!conn->alive) return;
    const std::lock_guard<std::mutex> lock{conn->write_mu};
    if (!write_line(conn->fd.get(), line)) conn->alive = false;
}

std::string Server::stats_line() const {
    const obs::MetricsRegistry snap = metrics_.snapshot();
    std::ostringstream os;
    os << "{\"counters\":{";
    // MetricsRegistry iterates in sorted name order, so this line is
    // deterministic for a given state.
    bool first = true;
    struct Sink {
        std::ostringstream& os;
        bool& first;
        void emit(const std::string& name, const std::string& value) {
            os << (first ? "" : ",") << "\"" << json_escape(name)
               << "\":" << value;
            first = false;
        }
    };
    // No public iteration API on the registry; rebuild via write_json
    // would be multiline, so probe the serve-relevant names directly.
    static const char* const kCounters[] = {
        "serve/connections",          "serve/requests",
        "serve/completed",            "serve/shed",
        "serve/rejected/overloaded",  "serve/rejected/draining",
        "serve/errors/bad-request",   "serve/errors/bad-spec",
        "serve/errors/oversized",     "serve/errors/internal",
        "serve/cache/hits",           "serve/cache/misses",
        "serve/cache/evictions",      "serve/cache/snapshot_loaded",
    };
    Sink sink{os, first};
    for (const char* name : kCounters) {
        const obs::Counter* c = snap.find_counter(name);
        sink.emit(name, std::to_string(c != nullptr ? c->value() : 0));
    }
    os << "},\"gauges\":{";
    first = true;
    static const char* const kGauges[] = {"serve/cache/entries"};
    for (const char* name : kGauges) {
        const obs::Gauge* g = snap.find_gauge(name);
        std::ostringstream v;
        v << (g != nullptr ? g->value() : 0.0);
        sink.emit(name, v.str());
    }
    os << "}}";
    return os.str();
}

void Server::request_drain() {
    {
        const std::lock_guard<std::mutex> lock{drain_mu_};
        if (drain_requested_) return;
        drain_requested_ = true;
    }
    draining_ = true;
    queue_.close();
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_.get(), &byte, 1);
    drain_cv_.notify_all();
}

void Server::wait() {
    {
        std::unique_lock<std::mutex> lock{drain_mu_};
        drain_cv_.wait(lock, [this] { return drain_requested_; });
    }
    if (stopped_.exchange(true)) return;  // someone else tore down
    if (accept_thread_.joinable()) accept_thread_.join();
    // Every admitted job finishes and answers before we disconnect.
    pool_->wait_idle();
    std::vector<std::thread> readers;
    {
        const std::lock_guard<std::mutex> lock{conns_mu_};
        for (const auto& c : conns_) {
            c->alive = false;
            ::shutdown(c->fd.get(), SHUT_RDWR);
        }
        readers.swap(reader_threads_);
    }
    for (std::thread& t : readers) {
        if (t.joinable()) t.join();
    }
    if (!cfg_.cache_save_path.empty()) {
        if (cache_.save(cfg_.cache_save_path)) {
            metrics_.add("serve/cache/snapshot_saved", cache_.size());
        }
    }
}

}  // namespace mcps::serve
