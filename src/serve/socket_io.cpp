#include "socket_io.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace mcps::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in tcp_addr(const Endpoint& ep) {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &sa.sin_addr) != 1) {
        throw std::runtime_error("invalid IPv4 address: " + ep.host);
    }
    return sa;
}

sockaddr_un unix_addr(const Endpoint& ep) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(sa.sun_path)) {
        throw std::runtime_error("unix socket path too long: " + ep.path);
    }
    std::memcpy(sa.sun_path, ep.path.c_str(), ep.path.size() + 1);
    return sa;
}

}  // namespace

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
    Endpoint ep;
    ep.host = std::move(host);
    ep.port = port;
    return ep;
}

Endpoint Endpoint::unix_path(std::string path) {
    Endpoint ep;
    ep.path = std::move(path);
    return ep;
}

std::string Endpoint::to_string() const {
    if (is_unix()) return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

Fd& Fd::operator=(Fd&& o) noexcept {
    if (this != &o) {
        reset();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

Fd::~Fd() { reset(); }

int Fd::release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

void Fd::reset() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Listener::Listener(const Endpoint& ep) : ep_{ep} {
    if (ep.is_unix()) {
        ::unlink(ep.path.c_str());  // stale socket from a previous run
        fd_ = Fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
        if (!fd_.valid()) fail("socket(unix)");
        const sockaddr_un sa = unix_addr(ep);
        if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&sa),
                   static_cast<socklen_t>(sizeof sa)) != 0) {
            fail("bind(" + ep.to_string() + ")");
        }
        unlink_on_close_ = true;
    } else {
        fd_ = Fd{::socket(AF_INET, SOCK_STREAM, 0)};
        if (!fd_.valid()) fail("socket(tcp)");
        const int one = 1;
        ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        const sockaddr_in sa = tcp_addr(ep);
        if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&sa),
                   static_cast<socklen_t>(sizeof sa)) != 0) {
            fail("bind(" + ep.to_string() + ")");
        }
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0) {
            ep_.port = ntohs(bound.sin_port);
        }
    }
    if (::listen(fd_.get(), 64) != 0) fail("listen(" + ep.to_string() + ")");
}

Listener::~Listener() {
    if (unlink_on_close_) ::unlink(ep_.path.c_str());
}

Fd Listener::accept_one() {
    while (true) {
        const int fd = ::accept(fd_.get(), nullptr, nullptr);
        if (fd >= 0) return Fd{fd};
        if (errno == EINTR) continue;
        return Fd{};
    }
}

Fd connect_to(const Endpoint& ep) {
    if (ep.is_unix()) {
        Fd fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
        if (!fd.valid()) fail("socket(unix)");
        const sockaddr_un sa = unix_addr(ep);
        if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                      static_cast<socklen_t>(sizeof sa)) != 0) {
            fail("connect(" + ep.to_string() + ")");
        }
        return fd;
    }
    Fd fd{::socket(AF_INET, SOCK_STREAM, 0)};
    if (!fd.valid()) fail("socket(tcp)");
    const sockaddr_in sa = tcp_addr(ep);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                  static_cast<socklen_t>(sizeof sa)) != 0) {
        fail("connect(" + ep.to_string() + ")");
    }
    return fd;
}

LineReader::LineReader(int fd, std::size_t max_line_bytes)
    : fd_{fd}, max_line_bytes_{max_line_bytes} {}

LineReader::Status LineReader::next(std::string& line) {
    while (true) {
        const std::size_t nl = buf_.find('\n', pos_);
        if (nl != std::string::npos) {
            const bool was_discarding = discarding_;
            const std::size_t len = nl - pos_;
            if (!was_discarding && len <= max_line_bytes_) {
                line.assign(buf_, pos_, len);
            }
            pos_ = nl + 1;
            if (pos_ == buf_.size() || pos_ > 16384) {
                buf_.erase(0, pos_);
                pos_ = 0;
            }
            if (was_discarding) {
                discarding_ = false;
                return Status::kOversized;
            }
            if (len > max_line_bytes_) return Status::kOversized;
            return Status::kLine;
        }
        // No newline buffered: bound memory before reading more.
        const std::size_t pending = buf_.size() - pos_;
        if (discarding_ || pending > max_line_bytes_) {
            discarding_ = true;
            buf_.clear();
            pos_ = 0;
        }
        if (eof_) return Status::kEof;  // unterminated tail discarded
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
        } else if (n == 0) {
            eof_ = true;
        } else if (errno != EINTR) {
            return Status::kError;
        }
    }
}

bool write_line(int fd, std::string_view line) {
    std::string out;
    out.reserve(line.size() + 1);
    out.append(line);
    out.push_back('\n');
    const char* p = out.data();
    std::size_t left = out.size();
    while (left > 0) {
        const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
        if (n > 0) {
            p += n;
            left -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

}  // namespace mcps::serve
