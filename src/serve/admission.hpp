/// \file admission.hpp
/// \brief Bounded QoS admission queue with explicit shedding.
///
/// The server's overload policy, isolated from any socket so it can be
/// unit-tested exhaustively. The queue holds at most `capacity` pending
/// jobs across three priority classes (protocol.hpp's QosClass). Pops
/// serve the highest class first, FIFO within a class — a clinical
/// alarm-path query never waits behind queued batch sweeps.
///
/// When a job arrives at a full queue, admission control decides
/// explicitly rather than blocking or silently dropping:
///
///   - If some *strictly lower* class has a pending job, the newest job
///     of the lowest such class is shed (returned to the caller as the
///     victim, so its client gets a structured "overloaded" rejection)
///     and the arrival is admitted in its place.
///   - Otherwise the arrival itself is rejected.
///
/// This mirrors the paper's network-supervisor framing: under overload
/// the system degrades *visibly* and in priority order, instead of
/// letting safety-relevant traffic queue behind bulk work.
///
/// close() flips the queue into draining mode: offers are refused with
/// kClosed (the server maps this to a "draining" rejection) while
/// try_pop keeps serving what was already admitted.

#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "protocol.hpp"
#include "sim/guarded.hpp"

namespace mcps::serve {

template <typename T>
class AdmissionQueue {
public:
    enum class Outcome : std::uint8_t {
        kAdmitted,  ///< queued; a worker ticket should be issued
        kShed,      ///< queued by displacing `victim` (no new ticket)
        kRejected,  ///< refused: queue full of equal-or-higher traffic
        kClosed,    ///< refused: draining
    };

    struct Offer {
        Outcome outcome = Outcome::kRejected;
        /// The displaced lower-priority job (kShed only).
        std::optional<T> victim;
        std::optional<QosClass> victim_class;
    };

    explicit AdmissionQueue(std::size_t capacity) : capacity_{capacity} {}

    Offer offer(T item, QosClass c) {
        const std::lock_guard<std::mutex> lock{mu_};
        Offer result;
        if (closed_) {
            result.outcome = Outcome::kClosed;
            return result;
        }
        if (size_ < capacity_) {
            classes_[index(c)].push_back(std::move(item));
            ++size_;
            result.outcome = Outcome::kAdmitted;
            return result;
        }
        // Full: shed the newest job of the lowest class strictly below
        // the arrival's, if any.
        for (std::size_t v = kQosClassCount; v-- > index(c) + 1;) {
            auto& q = classes_[v];
            if (!q.empty()) {
                result.victim = std::move(q.back());
                result.victim_class = static_cast<QosClass>(v);
                q.pop_back();
                classes_[index(c)].push_back(std::move(item));
                result.outcome = Outcome::kShed;
                return result;
            }
        }
        result.outcome = Outcome::kRejected;
        return result;
    }

    /// Highest-priority pending job, FIFO within a class.
    std::optional<std::pair<T, QosClass>> try_pop() {
        const std::lock_guard<std::mutex> lock{mu_};
        for (std::size_t c = 0; c < kQosClassCount; ++c) {
            auto& q = classes_[c];
            if (!q.empty()) {
                std::pair<T, QosClass> out{std::move(q.front()),
                                           static_cast<QosClass>(c)};
                q.pop_front();
                --size_;
                return out;
            }
        }
        return std::nullopt;
    }

    /// Stop admitting; already-admitted jobs still drain via try_pop.
    void close() {
        const std::lock_guard<std::mutex> lock{mu_};
        closed_ = true;
    }

    [[nodiscard]] bool closed() const {
        const std::lock_guard<std::mutex> lock{mu_};
        return closed_;
    }

    [[nodiscard]] std::size_t size() const {
        const std::lock_guard<std::mutex> lock{mu_};
        return size_;
    }

    [[nodiscard]] std::size_t depth(QosClass c) const {
        const std::lock_guard<std::mutex> lock{mu_};
        return classes_[index(c)].size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    static constexpr std::size_t index(QosClass c) noexcept {
        return static_cast<std::size_t>(c);
    }

    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::array<std::deque<T>, kQosClassCount> classes_ MCPS_GUARDED_BY(mu_);
    std::size_t size_ MCPS_GUARDED_BY(mu_) = 0;  ///< total across classes
    bool closed_ MCPS_GUARDED_BY(mu_) = false;
};

}  // namespace mcps::serve
