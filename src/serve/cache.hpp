/// \file cache.hpp
/// \brief ResultCache: fingerprint-keyed LRU over serialized artifacts.
///
/// The cache is keyed by the *normalized spec text* (`spec.to_text()`,
/// which always spells seed and minutes explicitly), so two requests
/// that denote the same run — regardless of JSON field order or
/// formatting on the wire — share one entry. The stored value is the
/// byte-exact single-line artifacts JSON a fresh run would have
/// produced (protocol.hpp's artifacts_json_line), which makes cache
/// correctness testable as byte identity: hit or miss, the client sees
/// the same bytes.
///
/// Counters (hits / misses / evictions, plus an entry-count gauge) are
/// mirrored into an optional obs::SharedMetrics under "serve/cache/*"
/// so the server's `stats` command exposes them. The cache itself is
/// mutex-guarded and safe to share across worker threads.
///
/// Snapshots: save() writes a versioned, line-oriented file
/// (`key<TAB>artifacts-json` per line, most-recently-used first) and
/// load() restores it, silently skipping malformed lines so a stale or
/// truncated snapshot degrades to a smaller cache, never a crash.

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/shared_metrics.hpp"
#include "scenario/spec.hpp"
#include "sim/guarded.hpp"

namespace mcps::serve {

/// mirror_entries_locked() calls into SharedMetrics while holding the
/// cache mutex — a nesting a lexical scan cannot see across the call,
/// declared here so the lock-order DAG stays the audited record.
MCPS_LOCK_ORDER(ResultCache::mu_, obs::SharedMetrics::mu_);

/// Canonical cache key for a spec (its normalized one-line text form).
[[nodiscard]] std::string cache_key(const scenario::ScenarioSpec& spec);

class ResultCache {
public:
    /// \p max_entries of 0 disables caching (every lookup misses and
    /// insert is a no-op). \p metrics may be null; when set it must
    /// outlive the cache.
    explicit ResultCache(std::size_t max_entries,
                         obs::SharedMetrics* metrics = nullptr);

    /// Returns the cached artifacts JSON and refreshes recency, or
    /// nullopt on a miss.
    [[nodiscard]] std::optional<std::string> lookup(const std::string& key);

    /// Insert (or refresh) an entry, evicting least-recently-used
    /// entries beyond the capacity bound.
    void insert(const std::string& key, std::string artifacts_json);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t max_entries() const noexcept {
        return max_entries_;
    }
    [[nodiscard]] std::uint64_t hits() const;
    [[nodiscard]] std::uint64_t misses() const;
    [[nodiscard]] std::uint64_t evictions() const;

    void clear();

    /// Write a snapshot to \p path. Returns false on I/O failure.
    bool save(const std::string& path) const;

    /// Load a snapshot written by save(), inserting entries (subject to
    /// the capacity bound; counters are not restored). Malformed lines
    /// are skipped. Returns the number of entries inserted; 0 when the
    /// file is missing or unreadable.
    std::size_t load(const std::string& path);

private:
    using Entry = std::pair<std::string, std::string>;  // key, artifacts

    void mirror_entries_locked() MCPS_REQUIRES(mu_);

    const std::size_t max_entries_;
    obs::SharedMetrics* metrics_;

    mutable std::mutex mu_;
    std::list<Entry> lru_ MCPS_GUARDED_BY(mu_);  ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index_
        MCPS_GUARDED_BY(mu_);
    std::uint64_t hits_ MCPS_GUARDED_BY(mu_) = 0;
    std::uint64_t misses_ MCPS_GUARDED_BY(mu_) = 0;
    std::uint64_t evictions_ MCPS_GUARDED_BY(mu_) = 0;
};

}  // namespace mcps::serve
