/// \file protocol.hpp
/// \brief The mcps_serve wire protocol: JSONL requests and responses.
///
/// Framing: one JSON object per LF-terminated line ("JSONL"), with a
/// hard per-line byte bound enforced by the socket layer *before* any
/// parsing (socket_io.hpp). Lines must be valid UTF-8. The parser here
/// is deliberately strict and total: every malformed input — truncated
/// objects, unknown fields, wrong types, bad escapes, oversized ids —
/// maps to a ProtocolError carrying a machine-readable code, never to a
/// crash or an unbounded allocation (the fuzz-style mutation tests in
/// tests/serve assert exactly this).
///
/// Request lines (exactly one of "spec" / "cmd"):
///   {"id":"r1","spec":{"scenario":"pca","seed":42,"minutes":1,
///    "overrides":{}},"class":"interactive","no_cache":false}
///   {"id":"c1","cmd":"ping"}       liveness probe
///   {"id":"c2","cmd":"stats"}      metrics snapshot (counters/gauges)
///   {"id":"c3","cmd":"drain"}      graceful shutdown request
///
/// Response lines (one per request; "id" echoes the request's):
///   {"id":"r1","status":"ok","cached":false,"queue_us":12,"run_us":900,
///    "artifacts":{...}}                        completed run
///   {"id":"r2","status":"rejected","error":{"code":"overloaded",...}}
///   {"id":"r3","status":"error","error":{"code":"bad-spec",...}}
///
/// QoS classes mirror the middleware-arbitration framing of the
/// resource-management survey (PAPERS.md): "clinical" (alarm-path
/// queries that must not wait behind analytics), "interactive"
/// (operator consoles, the default) and "batch" (campaign sweeps, first
/// to be shed under overload).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "scenario/artifacts.hpp"
#include "scenario/spec.hpp"

namespace mcps::serve {

/// Per-request priority class, highest first. The admission queue pops
/// in class order (FIFO within a class) and sheds from the back.
enum class QosClass : std::uint8_t {
    kClinical = 0,
    kInteractive = 1,
    kBatch = 2,
};
inline constexpr std::size_t kQosClassCount = 3;

[[nodiscard]] std::string_view to_string(QosClass c) noexcept;
/// \throws ProtocolError on an unknown class name.
[[nodiscard]] QosClass parse_qos_class(std::string_view s);

/// A structured protocol failure. `code` is one of the stable wire
/// codes ("bad-request", "bad-spec", "oversized"); `message` is
/// human-readable and is JSON-escaped on the way out.
struct ProtocolError {
    std::string code;
    std::string message;
};

/// One parsed request line.
struct Request {
    enum class Kind : std::uint8_t { kRun, kPing, kStats, kDrain };

    Kind kind = Kind::kRun;
    /// Client-chosen correlation token ([A-Za-z0-9._:-], <= 64 bytes);
    /// echoed verbatim in the response.
    std::string id;
    /// The scenario to run (kRun only).
    scenario::ScenarioSpec spec;
    QosClass qos = QosClass::kInteractive;
    /// Bypass the result cache for this request (both lookup and fill).
    bool no_cache = false;

    /// Canonical request line (used by the client library and the load
    /// generator; round-trips through parse_request).
    [[nodiscard]] std::string to_line() const;
};

/// Maximum accepted id length (bytes).
inline constexpr std::size_t kMaxIdBytes = 64;

/// Parse one request line (without the trailing newline).
/// \throws ProtocolError on any malformed input.
[[nodiscard]] Request parse_request(std::string_view line);

/// True iff \p s is well-formed UTF-8 (rejects overlong encodings,
/// surrogates and out-of-range code points).
[[nodiscard]] bool utf8_valid(std::string_view s) noexcept;

/// JSON string-escape \p s (quotes, backslashes, control bytes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Compact single-line rendering of run artifacts:
/// {"spec":{...},"fingerprint":"0x...","outcome":{...}}. This is the
/// byte-exact payload the result cache stores, so a cache hit replays
/// the identical bytes a fresh run would have produced.
[[nodiscard]] std::string artifacts_json_line(
    const scenario::RunArtifacts& a);

// --- Response builders (server side) ---------------------------------

[[nodiscard]] std::string ok_run_response(std::string_view id, bool cached,
                                          std::uint64_t queue_us,
                                          std::uint64_t run_us,
                                          std::string_view artifacts_json);
[[nodiscard]] std::string pong_response(std::string_view id);
[[nodiscard]] std::string stats_response(std::string_view id,
                                         std::string_view stats_json);
[[nodiscard]] std::string drain_response(std::string_view id);
/// \p status is "error" or "rejected".
[[nodiscard]] std::string error_response(std::string_view id,
                                         std::string_view status,
                                         std::string_view code,
                                         std::string_view message);

// --- Response parsing (client side) ----------------------------------

/// One parsed response line. Exactly the fields a client needs; raw
/// sub-objects are preserved verbatim for byte-exact comparisons.
struct Response {
    std::string id;
    std::string status;  ///< "ok" | "error" | "rejected"
    bool cached = false;
    bool pong = false;
    bool draining = false;
    std::uint64_t queue_us = 0;
    std::uint64_t run_us = 0;
    std::string artifacts;  ///< raw JSON object text ("" when absent)
    std::string stats;      ///< raw JSON object text ("" when absent)
    std::string error_code;
    std::string error_message;

    [[nodiscard]] bool ok() const noexcept { return status == "ok"; }
    [[nodiscard]] bool rejected() const noexcept {
        return status == "rejected";
    }
};

/// Parse one response line. \throws ProtocolError on malformed input.
[[nodiscard]] Response parse_response(std::string_view line);

/// Extract the "fingerprint" hex string from a raw artifacts object
/// ("" if absent) — a convenience for verification paths that do not
/// want to re-parse the whole artifact.
[[nodiscard]] std::string artifacts_fingerprint(std::string_view artifacts);

}  // namespace mcps::serve
