/// \file socket_io.hpp
/// \brief Minimal POSIX socket plumbing for the JSONL protocol.
///
/// Everything byte-level lives here so server.cpp and client.cpp deal
/// only in lines: RAII fds, TCP/Unix-domain endpoints, a bounded
/// LineReader that enforces the per-request byte limit *before* any
/// parsing (an oversized line is discarded up to its newline and
/// reported, so one hostile client cannot balloon server memory), and a
/// short-write-safe, SIGPIPE-free line writer.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mcps::serve {

/// A place to listen/connect: a Unix-domain path when `path` is
/// non-empty, else TCP on host:port. TCP port 0 asks the kernel for an
/// ephemeral port (read back via Listener::endpoint()).
struct Endpoint {
    std::string path;  ///< Unix-domain socket path ("" → TCP)
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    [[nodiscard]] static Endpoint tcp(std::string host, std::uint16_t port);
    [[nodiscard]] static Endpoint unix_path(std::string path);
    [[nodiscard]] bool is_unix() const noexcept { return !path.empty(); }
    [[nodiscard]] std::string to_string() const;
};

/// Move-only owning file descriptor.
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) noexcept : fd_{fd} {}
    Fd(Fd&& o) noexcept : fd_{o.fd_} { o.fd_ = -1; }
    Fd& operator=(Fd&& o) noexcept;
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;
    ~Fd();

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    int release() noexcept;
    void reset() noexcept;

private:
    int fd_ = -1;
};

/// A bound, listening socket. \throws std::runtime_error on failure.
class Listener {
public:
    explicit Listener(const Endpoint& ep);
    ~Listener();
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /// The actual endpoint (resolves TCP port 0 to the bound port).
    [[nodiscard]] const Endpoint& endpoint() const noexcept { return ep_; }
    [[nodiscard]] int fd() const noexcept { return fd_.get(); }

    /// Accept one connection; invalid Fd on transient failure.
    [[nodiscard]] Fd accept_one();

private:
    Fd fd_;
    Endpoint ep_;
    bool unlink_on_close_ = false;
};

/// Connect to \p ep. \throws std::runtime_error on failure.
[[nodiscard]] Fd connect_to(const Endpoint& ep);

/// Buffered LF-delimited reader with a hard per-line byte bound.
class LineReader {
public:
    enum class Status : std::uint8_t {
        kLine,       ///< `line` holds one complete line (no newline)
        kEof,        ///< orderly close (any unterminated tail discarded)
        kError,      ///< read error; connection is unusable
        kOversized,  ///< line exceeded the bound; its bytes were
                     ///< discarded up to the newline, reader still usable
    };

    LineReader(int fd, std::size_t max_line_bytes);

    Status next(std::string& line);

private:
    int fd_;
    std::size_t max_line_bytes_;
    std::string buf_;
    std::size_t pos_ = 0;          ///< consumed prefix of buf_
    bool discarding_ = false;      ///< mid-oversized-line
    bool eof_ = false;
};

/// Write \p line plus a trailing newline, retrying short writes,
/// without ever raising SIGPIPE. Returns false once the peer is gone.
[[nodiscard]] bool write_line(int fd, std::string_view line);

}  // namespace mcps::serve
