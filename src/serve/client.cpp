#include "client.hpp"

#include <stdexcept>

namespace mcps::serve {

namespace {
/// Responses are compact but artifacts can carry many outcome keys;
/// a generous bound that still refuses unbounded garbage.
constexpr std::size_t kMaxResponseBytes = 1u << 20;
}  // namespace

Client::Client(const Endpoint& ep)
    : fd_{connect_to(ep)}, reader_{fd_.get(), kMaxResponseBytes} {}

Response Client::call(const Request& req) { return call_raw(req.to_line()); }

Response Client::call_raw(std::string_view line) {
    if (!write_line(fd_.get(), line)) {
        throw std::runtime_error("serve client: connection closed on write");
    }
    std::string resp;
    const LineReader::Status st = reader_.next(resp);
    if (st != LineReader::Status::kLine) {
        throw std::runtime_error(
            "serve client: connection closed while awaiting response");
    }
    return parse_response(resp);
}

std::string Client::make_id() {
    std::string id{"c"};
    id += std::to_string(++next_id_);
    return id;
}

Response Client::run(const scenario::ScenarioSpec& spec, QosClass qos,
                     bool no_cache) {
    Request req;
    req.kind = Request::Kind::kRun;
    req.id = make_id();
    req.spec = spec;
    req.qos = qos;
    req.no_cache = no_cache;
    return call(req);
}

Response Client::ping() {
    Request req;
    req.kind = Request::Kind::kPing;
    req.id = make_id();
    return call(req);
}

Response Client::stats() {
    Request req;
    req.kind = Request::Kind::kStats;
    req.id = make_id();
    return call(req);
}

Response Client::drain() {
    Request req;
    req.kind = Request::Kind::kDrain;
    req.id = make_id();
    return call(req);
}

}  // namespace mcps::serve
