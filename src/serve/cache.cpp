#include "cache.hpp"

#include <fstream>
#include <string_view>
#include <utility>
#include <vector>

namespace mcps::serve {

namespace {
constexpr std::string_view kSnapshotHeader = "mcps-serve-cache v1";
}  // namespace

std::string cache_key(const scenario::ScenarioSpec& spec) {
    return spec.to_text();
}

ResultCache::ResultCache(std::size_t max_entries, obs::SharedMetrics* metrics)
    : max_entries_{max_entries}, metrics_{metrics} {}

std::optional<std::string> ResultCache::lookup(const std::string& key) {
    const std::lock_guard<std::mutex> lock{mu_};
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        if (metrics_ != nullptr) metrics_->add("serve/cache/misses");
        return std::nullopt;
    }
    ++hits_;
    if (metrics_ != nullptr) metrics_->add("serve/cache/hits");
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

void ResultCache::insert(const std::string& key, std::string artifacts_json) {
    if (max_entries_ == 0) return;
    const std::lock_guard<std::mutex> lock{mu_};
    const auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(artifacts_json);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(artifacts_json));
    index_.emplace(key, lru_.begin());
    while (lru_.size() > max_entries_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
        if (metrics_ != nullptr) metrics_->add("serve/cache/evictions");
    }
    mirror_entries_locked();
}

std::size_t ResultCache::size() const {
    const std::lock_guard<std::mutex> lock{mu_};
    return lru_.size();
}

std::uint64_t ResultCache::hits() const {
    const std::lock_guard<std::mutex> lock{mu_};
    return hits_;
}

std::uint64_t ResultCache::misses() const {
    const std::lock_guard<std::mutex> lock{mu_};
    return misses_;
}

std::uint64_t ResultCache::evictions() const {
    const std::lock_guard<std::mutex> lock{mu_};
    return evictions_;
}

void ResultCache::clear() {
    const std::lock_guard<std::mutex> lock{mu_};
    lru_.clear();
    index_.clear();
    mirror_entries_locked();
}

void ResultCache::mirror_entries_locked() {
    if (metrics_ != nullptr) {
        metrics_->set_gauge("serve/cache/entries",
                            static_cast<double>(lru_.size()));
    }
}

bool ResultCache::save(const std::string& path) const {
    std::ofstream out{path, std::ios::trunc};
    if (!out) return false;
    out << kSnapshotHeader << "\n";
    const std::lock_guard<std::mutex> lock{mu_};
    for (const Entry& e : lru_) {
        out << e.first << "\t" << e.second << "\n";
    }
    return static_cast<bool>(out.flush());
}

std::size_t ResultCache::load(const std::string& path) {
    std::ifstream in{path};
    if (!in) return 0;
    std::string line;
    if (!std::getline(in, line) || line != kSnapshotHeader) return 0;
    std::size_t inserted = 0;
    // The snapshot is MRU-first; re-inserting in file order leaves the
    // *last* lines most recent, so iterate into a buffer and replay in
    // reverse to preserve recency.
    std::vector<std::pair<std::string, std::string>> entries;
    while (std::getline(in, line)) {
        const std::size_t tab = line.find('\t');
        if (tab == std::string::npos || tab == 0 || tab + 1 >= line.size()) {
            continue;  // malformed line: skip, never fail
        }
        entries.emplace_back(line.substr(0, tab), line.substr(tab + 1));
    }
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        insert(it->first, std::move(it->second));
        ++inserted;
    }
    return inserted;
}

}  // namespace mcps::serve
