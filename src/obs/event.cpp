#include "event.hpp"

namespace mcps::obs {

std::string_view to_string(EventKind k) noexcept {
    switch (k) {
        case EventKind::kScenarioStart: return "scenario_start";
        case EventKind::kScenarioEnd: return "scenario_end";
        case EventKind::kBusPublish: return "bus_publish";
        case EventKind::kBusDeliver: return "bus_deliver";
        case EventKind::kBusDrop: return "bus_drop";
        case EventKind::kSupervisorState: return "supervisor_state";
        case EventKind::kPumpCommand: return "pump_command";
        case EventKind::kInterlockTrip: return "interlock_trip";
        case EventKind::kFaultInject: return "fault_inject";
        case EventKind::kShardStart: return "shard_start";
        case EventKind::kShardEnd: return "shard_end";
    }
    return "unknown";
}

std::optional<EventKind> event_kind_from(std::string_view s) {
    for (auto k :
         {EventKind::kScenarioStart, EventKind::kScenarioEnd,
          EventKind::kBusPublish, EventKind::kBusDeliver, EventKind::kBusDrop,
          EventKind::kSupervisorState, EventKind::kPumpCommand,
          EventKind::kInterlockTrip, EventKind::kFaultInject,
          EventKind::kShardStart, EventKind::kShardEnd}) {
        if (to_string(k) == s) return k;
    }
    return std::nullopt;
}

}  // namespace mcps::obs
