#include "shared_metrics.hpp"

namespace mcps::obs {

void SharedMetrics::add(const std::string& name, std::uint64_t n) {
    const std::lock_guard<std::mutex> lock{mu_};
    reg_.counter(name).add(n);
}

void SharedMetrics::set_gauge(const std::string& name, double v) {
    const std::lock_guard<std::mutex> lock{mu_};
    reg_.gauge(name).set(v);
}

void SharedMetrics::observe(const std::string& name, double lo, double hi,
                            std::size_t bins, double x) {
    const std::lock_guard<std::mutex> lock{mu_};
    reg_.histogram(name, lo, hi, bins).add(x);
}

std::uint64_t SharedMetrics::counter_value(const std::string& name) const {
    const std::lock_guard<std::mutex> lock{mu_};
    const Counter* c = reg_.find_counter(name);
    return c != nullptr ? c->value() : 0;
}

double SharedMetrics::gauge_value(const std::string& name) const {
    const std::lock_guard<std::mutex> lock{mu_};
    const Gauge* g = reg_.find_gauge(name);
    return g != nullptr ? g->value() : 0.0;
}

MetricsRegistry SharedMetrics::snapshot() const {
    const std::lock_guard<std::mutex> lock{mu_};
    return reg_;
}

}  // namespace mcps::obs
