#include "event_log.hpp"

#include <bit>

namespace mcps::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
    h ^= v;
    h *= 1099511628211ULL;
    h ^= h >> 29;
    return h;
}

std::uint64_t mix_string(std::uint64_t h, std::string_view s) noexcept {
    h = mix(h, s.size());
    for (char c : s) h = mix(h, static_cast<std::uint8_t>(c));
    return h;
}

}  // namespace

void EventLog::append(const EventLog& other) {
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

std::size_t EventLog::count(EventKind k) const noexcept {
    std::size_t n = 0;
    for (const auto& e : events_) {
        if (e.kind == k) ++n;
    }
    return n;
}

std::uint64_t EventLog::fingerprint() const noexcept {
    std::uint64_t h = kFnvOffset;
    for (const auto& e : events_) {
        h = mix(h, static_cast<std::uint64_t>(e.kind));
        h = mix(h, static_cast<std::uint64_t>(e.time.ticks()));
        h = mix_string(h, e.source);
        h = mix_string(h, e.detail);
        h = mix(h, std::bit_cast<std::uint64_t>(e.value));
    }
    return h;
}

}  // namespace mcps::obs
