/// \file exporters.hpp
/// \brief Event-log and metrics serialization: JSONL, Chrome trace_event.
///
/// Three formats:
///
///  * JSONL — one event per line, integer microsecond timestamps,
///    deterministic number formatting. This is the golden-trace format:
///    two runs are behaviourally identical iff their JSONL exports are
///    byte-identical.
///
///      {"t_us":1000000,"kind":"bus_publish","src":"oxi1",
///       "detail":"vitals/oxi1/spo2","value":17}
///
///  * Chrome trace_event JSON — load in chrome://tracing or Perfetto for
///    a per-device timeline of the scenario.
///
///  * Metrics summary — MetricsRegistry::write_table / write_json (see
///    metrics.hpp).
///
/// read_jsonl parses exactly what write_jsonl emits (the round-trip is
/// exact); validate_bench_json checks the `--json` report schema every
/// bench binary emits via benchio::JsonReporter.

#pragma once

#include <iosfwd>
#include <string>

#include "event_log.hpp"

namespace mcps::obs {

/// Write one event per line; byte-deterministic for a given log.
void write_jsonl(const EventLog& log, std::ostream& os);

/// Parse a JSONL event stream produced by write_jsonl.
/// \throws std::runtime_error naming the offending line on malformed
/// input or unknown event kinds.
[[nodiscard]] EventLog read_jsonl(std::istream& is);

/// Write the Chrome trace_event ("chrome://tracing") representation:
/// one instant event per log entry, one timeline lane per source (lanes
/// numbered by first appearance), plus thread-name metadata records.
void write_chrome_trace(const EventLog& log, std::ostream& os);

/// Validate a benchio::JsonReporter report: must be a JSON object with
/// a string "bench", an integer "seed" and a "metrics" array whose
/// entries each carry a string "name", a finite-or-null "value" and a
/// string "unit". Returns true on success; otherwise fills \p error.
[[nodiscard]] bool validate_bench_json(std::istream& is, std::string& error);

}  // namespace mcps::obs
