/// \file obs.hpp
/// \brief Umbrella header for the deterministic observability layer.

#pragma once

#include "event.hpp"          // IWYU pragma: export
#include "event_log.hpp"      // IWYU pragma: export
#include "exporters.hpp"      // IWYU pragma: export
#include "metrics.hpp"        // IWYU pragma: export
#include "shared_metrics.hpp"  // IWYU pragma: export
