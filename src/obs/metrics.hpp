/// \file metrics.hpp
/// \brief Named metrics registry: counters, gauges, histograms.
///
/// A MetricsRegistry is the numeric side of the observability layer:
/// monotone counters (events, commands, violations), last-value gauges
/// (configuration echoes, final levels) and fixed-bin histograms
/// (reusing sim::Histogram, whose integer-count merge is exact and
/// associative). Registries merge name-wise — counters add, histograms
/// bin-add, gauges take the later registry's value — so per-shard
/// registries merged in shard order produce the same result for any job
/// count, exactly like the ward engine's statistic reduction.
///
/// Names use '/'-separated lowercase paths ("ward/pca_runs",
/// "bus/published"). Iteration order is the sorted name order (map), so
/// every exporter is deterministic.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "sim/stats.hpp"

namespace mcps::obs {

/// Monotone event counter.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept { value_ += n; }
    [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Last-value gauge. Tracks how many times it was set so merge can
/// distinguish "never touched" from "explicitly set to zero".
class Gauge {
public:
    void set(double v) noexcept {
        value_ = v;
        ++sets_;
    }
    [[nodiscard]] double value() const noexcept { return value_; }
    [[nodiscard]] std::uint64_t sets() const noexcept { return sets_; }

    /// Registry-merge semantics: \p o's value wins when \p o was ever
    /// set; set counts accumulate.
    void merge(const Gauge& o) noexcept {
        if (o.sets_ > 0) value_ = o.value_;
        sets_ += o.sets_;
    }

private:
    double value_ = 0.0;
    std::uint64_t sets_ = 0;
};

class MetricsRegistry {
public:
    /// Get-or-create. References stay valid for the registry's lifetime
    /// (node-based map storage).
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /// Get-or-create; binning parameters are only used on creation.
    /// \throws std::invalid_argument if an existing histogram under this
    /// name has different binning (a metric-name collision bug).
    mcps::sim::Histogram& histogram(const std::string& name, double lo,
                                    double hi, std::size_t bins);

    /// Lookups without creation; nullptr if absent.
    [[nodiscard]] const Counter* find_counter(const std::string& name) const;
    [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
    [[nodiscard]] const mcps::sim::Histogram* find_histogram(
        const std::string& name) const;

    [[nodiscard]] std::size_t counter_count() const noexcept {
        return counters_.size();
    }
    [[nodiscard]] std::size_t gauge_count() const noexcept {
        return gauges_.size();
    }
    [[nodiscard]] std::size_t histogram_count() const noexcept {
        return histograms_.size();
    }

    /// Name-wise merge: counters add; gauges take \p o's value when \p o
    /// ever set it (set counts add); histograms bin-merge (created here
    /// if absent). Merging per-shard registries in shard order is the
    /// parallel reduction.
    /// \throws std::invalid_argument on a histogram binning mismatch.
    void merge(const MetricsRegistry& o);

    /// Human-readable summary (three sim::Table tables).
    void write_table(std::ostream& os) const;
    /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
    void write_json(std::ostream& os) const;

    /// Order- and value-exact digest across all three metric families.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;

private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, mcps::sim::Histogram> histograms_;
};

}  // namespace mcps::obs
