/// \file event.hpp
/// \brief Typed, sim-time-stamped observability events.
///
/// An Event is the structured counterpart of a TraceRecorder mark: it
/// carries a closed kind taxonomy, the simulated instant, the emitting
/// component, a kind-specific detail string and one numeric value. The
/// taxonomy deliberately mirrors the layers of the system — bus traffic,
/// supervisor decisions, pump commands, interlock trips, fault
/// injections, ward sharding — so a single log reconstructs "what the
/// closed-loop system did and when" across every layer (the forensic
/// accountability the MCPS vision requires).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace mcps::obs {

/// The closed event taxonomy. Keep to_string/event_kind_from in sync;
/// the JSONL schema and the golden traces depend on these names.
enum class EventKind : std::uint8_t {
    kScenarioStart = 0,  ///< a scenario kernel begins (value: seed)
    kScenarioEnd,        ///< a scenario kernel finished (value: events run)
    kBusPublish,         ///< message accepted by the bus (value: seq)
    kBusDeliver,         ///< message handed to a subscriber (value: seq)
    kBusDrop,            ///< delivery dropped by the link model (value: seq)
    kSupervisorState,    ///< deploy/undeploy/device-lost/device-recovered
    kPumpCommand,        ///< remote pump command handled (value: cmd seq)
    kInterlockTrip,      ///< interlock stop/resume decision
    kFaultInject,        ///< testkit fault window armed (value: magnitude)
    kShardStart,         ///< ward shard began (value: shard index)
    kShardEnd,           ///< ward shard finished (value: shard index)
};

/// Stable wire name, e.g. "bus_publish".
[[nodiscard]] std::string_view to_string(EventKind k) noexcept;
/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<EventKind> event_kind_from(std::string_view s);

/// One structured event. Everything in here must be a pure function of
/// the scenario's (seed, config) — no wall-clock, no addresses — so that
/// logs are bit-identical across runs and job counts.
struct Event {
    EventKind kind = EventKind::kScenarioStart;
    mcps::sim::SimTime time;
    std::string source;  ///< endpoint/device/app name ("ward" for shards)
    std::string detail;  ///< kind-specific text (topic, state, fault kind)
    double value = 0.0;  ///< kind-specific number (seq, index, magnitude)

    friend bool operator==(const Event&, const Event&) = default;
};

}  // namespace mcps::obs
