/// \file format.hpp
/// \brief Deterministic number formatting for observability exporters.
///
/// Golden traces are byte-diffed, so every number must render the same
/// way on every run. Integral values print as integers (no exponent, no
/// trailing zeros); everything else prints with %.17g, which
/// round-trips IEEE doubles exactly. Non-finite values render as JSON
/// null — they are never valid metric/event payloads, but an exporter
/// must not emit invalid JSON even for buggy inputs.

#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace mcps::obs {

[[nodiscard]] inline std::string format_number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof buf, "%.17g", v);
    }
    return buf;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
/// Event sources/details are topic-like ASCII, but the exporter must
/// stay correct for arbitrary content.
[[nodiscard]] inline std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace mcps::obs
