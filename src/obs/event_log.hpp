/// \file event_log.hpp
/// \brief Append-only structured event log with a determinism contract.
///
/// An EventLog records Events in emission order. Within one scenario the
/// simulation kernel is single-threaded, so emission order is a pure
/// function of (seed, config); across ward shards, each shard owns a
/// private log that the engine appends in shard order — which makes the
/// merged log bit-identical for ANY `--jobs`, the same argument the
/// WardReport fingerprint makes for statistics.
///
/// Instrumentation sites hold a nullable `EventLog*`: a null pointer is
/// the disabled fast path (one branch, no strings built), so scenarios
/// that don't ask for observability pay nothing measurable.

#pragma once

#include <cstdint>
#include <vector>

#include "event.hpp"

namespace mcps::obs {

class EventLog {
public:
    EventLog() = default;

    /// Append one event. `time` is the event's simulated instant; it
    /// need not be monotone across the log (fault windows are emitted at
    /// arm time, ward shards restart the clock), only deterministic.
    void emit(EventKind kind, mcps::sim::SimTime time, std::string source,
              std::string detail, double value = 0.0) {
        events_.push_back(Event{kind, time, std::move(source),
                                std::move(detail), value});
    }

    [[nodiscard]] const std::vector<Event>& events() const noexcept {
        return events_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
    [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
    void clear() noexcept { events_.clear(); }
    void reserve(std::size_t n) { events_.reserve(n); }

    /// Append another log's events after this one's (shard-order merge).
    void append(const EventLog& other);

    /// Number of events of one kind.
    [[nodiscard]] std::size_t count(EventKind k) const noexcept;

    /// Order- and value-exact 64-bit digest of the whole log. Two logs
    /// fingerprint equal iff their JSONL serializations are identical.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;

private:
    std::vector<Event> events_;
};

/// Emit-if-enabled helper for instrumentation sites holding `EventLog*`.
/// Arguments are only evaluated eagerly, so keep them cheap; sites that
/// build strings should guard with `if (log)` themselves.
inline void emit(EventLog* log, EventKind kind, mcps::sim::SimTime time,
                 std::string source, std::string detail, double value = 0.0) {
    if (log) {
        log->emit(kind, time, std::move(source), std::move(detail), value);
    }
}

}  // namespace mcps::obs
