#include "exporters.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <iterator>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "format.hpp"

namespace mcps::obs {

// ---- JSONL ------------------------------------------------------------

void write_jsonl(const EventLog& log, std::ostream& os) {
    for (const auto& e : log.events()) {
        os << "{\"t_us\":" << e.time.ticks() << ",\"kind\":\""
           << to_string(e.kind) << "\",\"src\":\"" << json_escape(e.source)
           << "\",\"detail\":\"" << json_escape(e.detail)
           << "\",\"value\":" << format_number(e.value) << "}\n";
    }
}

// ---- minimal JSON parser ---------------------------------------------
//
// Parses the two formats this module itself defines (JSONL events,
// bench --json reports). Full JSON value grammar, no extensions; errors
// carry a byte offset.

namespace {

struct JsonValue {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /// First member with \p key; nullptr if absent or not an object.
    [[nodiscard]] const JsonValue* get(std::string_view key) const {
        for (const auto& [k, v] : object) {
            if (k == key) return &v;
        }
        return nullptr;
    }
};

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_{text} {}

    JsonValue parse() {
        skip_ws();
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json: " + what + " at offset " +
                                 std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    char peek() const {
        if (pos_ >= text_.size()) {
            throw std::runtime_error("json: unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string{"expected '"} + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue parse_value() {
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': {
                JsonValue v;
                v.type = JsonValue::Type::kString;
                v.str = parse_string();
                return v;
            }
            case 't':
            case 'f': {
                JsonValue v;
                v.type = JsonValue::Type::kBool;
                if (consume_literal("true")) {
                    v.boolean = true;
                } else if (consume_literal("false")) {
                    v.boolean = false;
                } else {
                    fail("bad literal");
                }
                return v;
            }
            case 'n': {
                if (!consume_literal("null")) fail("bad literal");
                return JsonValue{};
            }
            default: return parse_number();
        }
    }

    JsonValue parse_object() {
        JsonValue v;
        v.type = JsonValue::Type::kObject;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            skip_ws();
            v.object.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parse_array() {
        JsonValue v;
        v.type = JsonValue::Type::kArray;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            v.array.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4U;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("bad \\u escape");
                        }
                    }
                    // The writer only escapes control characters; decode
                    // BMP code points as UTF-8 for completeness.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0U | (code >> 6U));
                        out += static_cast<char>(0x80U | (code & 0x3FU));
                    } else {
                        out += static_cast<char>(0xE0U | (code >> 12U));
                        out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
                        out += static_cast<char>(0x80U | (code & 0x3FU));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        const std::string token{text_.substr(start, pos_ - start)};
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) fail("bad number");
        JsonValue out;
        out.type = JsonValue::Type::kNumber;
        out.number = v;
        return out;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

const JsonValue* require(const JsonValue& obj, std::string_view key,
                         JsonValue::Type type, std::string& error) {
    const JsonValue* v = obj.get(key);
    if (!v) {
        error = "missing key '" + std::string{key} + "'";
        return nullptr;
    }
    if (v->type != type) {
        error = "key '" + std::string{key} + "' has the wrong type";
        return nullptr;
    }
    return v;
}

}  // namespace

EventLog read_jsonl(std::istream& is) {
    EventLog log;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty()) continue;
        const auto fail = [&](const std::string& what) -> void {
            throw std::runtime_error("jsonl line " + std::to_string(lineno) +
                                     ": " + what);
        };
        JsonValue v;
        try {
            v = JsonParser{line}.parse();
        } catch (const std::exception& e) {
            fail(e.what());
        }
        if (v.type != JsonValue::Type::kObject) fail("not an object");
        const JsonValue* t = v.get("t_us");
        const JsonValue* kind = v.get("kind");
        const JsonValue* src = v.get("src");
        const JsonValue* detail = v.get("detail");
        const JsonValue* value = v.get("value");
        if (!t || t->type != JsonValue::Type::kNumber ||
            !kind || kind->type != JsonValue::Type::kString ||
            !src || src->type != JsonValue::Type::kString ||
            !detail || detail->type != JsonValue::Type::kString || !value) {
            fail("missing or mistyped event field");
        }
        const auto k = event_kind_from(kind->str);
        if (!k) fail("unknown event kind '" + kind->str + "'");
        const double val = value->type == JsonValue::Type::kNumber
                               ? value->number
                               : std::numeric_limits<double>::quiet_NaN();
        log.emit(*k,
                 mcps::sim::SimTime::origin() +
                     mcps::sim::SimDuration::micros(
                         static_cast<std::int64_t>(t->number)),
                 src->str, detail->str, val);
    }
    return log;
}

// ---- Chrome trace_event ----------------------------------------------

void write_chrome_trace(const EventLog& log, std::ostream& os) {
    // One timeline lane per source, numbered by first appearance (the
    // emission order is deterministic, so lane numbering is too).
    std::map<std::string, int> lane;
    std::vector<std::string> lane_order;
    for (const auto& e : log.events()) {
        if (lane.emplace(e.source, static_cast<int>(lane_order.size()) + 1)
                .second) {
            lane_order.push_back(e.source);
        }
    }

    os << "{\"traceEvents\":[";
    bool first = true;
    for (std::size_t i = 0; i < lane_order.size(); ++i) {
        os << (first ? "\n" : ",\n")
           << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << i + 1 << ",\"args\":{\"name\":\"" << json_escape(lane_order[i])
           << "\"}}";
        first = false;
    }
    for (const auto& e : log.events()) {
        os << (first ? "\n" : ",\n") << "{\"name\":\""
           << json_escape(std::string{to_string(e.kind)} + ":" + e.detail)
           << "\",\"cat\":\"" << to_string(e.kind)
           << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.time.ticks()
           << ",\"pid\":1,\"tid\":" << lane.at(e.source)
           << ",\"args\":{\"value\":" << format_number(e.value) << "}}";
        first = false;
    }
    os << "\n]}\n";
}

// ---- bench --json schema ---------------------------------------------

bool validate_bench_json(std::istream& is, std::string& error) {
    const std::string text{std::istreambuf_iterator<char>{is},
                           std::istreambuf_iterator<char>{}};
    JsonValue root;
    try {
        root = JsonParser{text}.parse();
    } catch (const std::exception& e) {
        error = e.what();
        return false;
    }
    if (root.type != JsonValue::Type::kObject) {
        error = "top level is not an object";
        return false;
    }
    if (!require(root, "bench", JsonValue::Type::kString, error)) return false;
    const JsonValue* seed =
        require(root, "seed", JsonValue::Type::kNumber, error);
    if (!seed) return false;
    if (seed->number != std::floor(seed->number)) {
        error = "'seed' is not an integer";
        return false;
    }
    const JsonValue* metrics =
        require(root, "metrics", JsonValue::Type::kArray, error);
    if (!metrics) return false;
    for (std::size_t i = 0; i < metrics->array.size(); ++i) {
        const JsonValue& m = metrics->array[i];
        const std::string at = "metrics[" + std::to_string(i) + "]: ";
        if (m.type != JsonValue::Type::kObject) {
            error = at + "not an object";
            return false;
        }
        std::string sub;
        if (!require(m, "name", JsonValue::Type::kString, sub) ||
            !require(m, "unit", JsonValue::Type::kString, sub)) {
            error = at + sub;
            return false;
        }
        const JsonValue* value = m.get("value");
        if (!value || (value->type != JsonValue::Type::kNumber &&
                       value->type != JsonValue::Type::kNull)) {
            error = at + "'value' must be a number or null";
            return false;
        }
        if (value->type == JsonValue::Type::kNumber &&
            !std::isfinite(value->number)) {
            error = at + "'value' is not finite";
            return false;
        }
    }
    return true;
}

}  // namespace mcps::obs
