/// \file shared_metrics.hpp
/// \brief SharedMetrics: a mutex-guarded MetricsRegistry facade for
/// multi-threaded producers.
///
/// MetricsRegistry is deliberately single-threaded (the sim kernel and
/// the ward engine's per-shard registries never share one across
/// threads). Long-running services — the mcps_serve daemon's request
/// readers, admission queue and worker pool — need many threads
/// incrementing the same counters, so this facade serializes every
/// mutation behind one mutex and hands out *copies* (snapshot()) rather
/// than references: a reference into the registry would be a data race
/// waiting to happen the moment the caller reads it unlocked.
///
/// The contention budget is deliberate: serve counters are bumped a
/// handful of times per request, and a request is a whole scenario run
/// (milliseconds+), so one uncontended mutex is invisible next to the
/// work it accounts for. Don't use this inside the sim kernel's hot
/// loop.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "metrics.hpp"
#include "sim/guarded.hpp"

namespace mcps::obs {

class SharedMetrics {
public:
    /// Counter increment (creates the counter on first use).
    void add(const std::string& name, std::uint64_t n = 1);
    /// Gauge set (creates on first use).
    void set_gauge(const std::string& name, double v);
    /// Histogram sample; binning parameters are used on creation only.
    /// \throws std::invalid_argument on a binning mismatch with an
    /// existing histogram of the same name (as MetricsRegistry does).
    void observe(const std::string& name, double lo, double hi,
                 std::size_t bins, double x);

    /// Current value of a counter; 0 when it does not exist (a counter
    /// that never fired and one never created are indistinguishable by
    /// design — exporters skip both the same way).
    [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
    /// Current value of a gauge; 0.0 when absent.
    [[nodiscard]] double gauge_value(const std::string& name) const;

    /// A point-in-time copy of the whole registry, safe to iterate,
    /// merge or export without holding any lock.
    [[nodiscard]] MetricsRegistry snapshot() const;

private:
    mutable std::mutex mu_;
    MetricsRegistry reg_ MCPS_GUARDED_BY(mu_);
};

}  // namespace mcps::obs
