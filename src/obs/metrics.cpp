#include "metrics.hpp"

#include <bit>
#include <ostream>
#include <stdexcept>

#include "format.hpp"
#include "sim/table.hpp"

namespace mcps::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
    h ^= v;
    h *= 1099511628211ULL;
    h ^= h >> 29;
    return h;
}

std::uint64_t mix_string(std::uint64_t h, std::string_view s) noexcept {
    h = mix(h, s.size());
    for (char c : s) h = mix(h, static_cast<std::uint8_t>(c));
    return h;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
    return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    return gauges_[name];
}

mcps::sim::Histogram& MetricsRegistry::histogram(const std::string& name,
                                                 double lo, double hi,
                                                 std::size_t bins) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, mcps::sim::Histogram{lo, hi, bins})
                 .first;
    } else if (!it->second.same_binning(mcps::sim::Histogram{lo, hi, bins})) {
        throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                    "' re-requested with different binning");
    }
    return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

const mcps::sim::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
    for (const auto& [name, c] : o.counters_) {
        counters_[name].add(c.value());
    }
    for (const auto& [name, g] : o.gauges_) {
        gauges_[name].merge(g);
    }
    for (const auto& [name, h] : o.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, h);
        } else {
            it->second.merge(h);  // throws on binning mismatch
        }
    }
}

void MetricsRegistry::write_table(std::ostream& os) const {
    if (!counters_.empty()) {
        mcps::sim::Table t{{"counter", "value"}};
        for (const auto& [name, c] : counters_) {
            t.row().cell(name).cell(c.value());
        }
        t.print(os, "counters");
        os << '\n';
    }
    if (!gauges_.empty()) {
        mcps::sim::Table t{{"gauge", "value"}};
        for (const auto& [name, g] : gauges_) {
            t.row().cell(name).cell(g.value(), 3);
        }
        t.print(os, "gauges");
        os << '\n';
    }
    if (!histograms_.empty()) {
        mcps::sim::Table t{{"histogram", "count", "p50", "p95", "p99"}};
        for (const auto& [name, h] : histograms_) {
            t.row()
                .cell(name)
                .cell(h.total())
                .cell(h.total() ? h.quantile(0.50) : 0.0, 3)
                .cell(h.total() ? h.quantile(0.95) : 0.0, 3)
                .cell(h.total() ? h.quantile(0.99) : 0.0, 3);
        }
        t.print(os, "histograms");
        os << '\n';
    }
}

void MetricsRegistry::write_json(std::ostream& os) const {
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
           << "\": " << c.value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
           << "\": " << format_number(g.value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
           << "\": {\"total\": " << h.total()
           << ", \"underflow\": " << h.underflow()
           << ", \"overflow\": " << h.overflow() << ", \"counts\": [";
        for (std::size_t i = 0; i < h.bins(); ++i) {
            os << (i ? "," : "") << h.bin_count(i);
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

std::uint64_t MetricsRegistry::fingerprint() const noexcept {
    std::uint64_t h = kFnvOffset;
    for (const auto& [name, c] : counters_) {
        h = mix_string(h, name);
        h = mix(h, c.value());
    }
    for (const auto& [name, g] : gauges_) {
        h = mix_string(h, name);
        h = mix(h, std::bit_cast<std::uint64_t>(g.value()));
        h = mix(h, g.sets());
    }
    for (const auto& [name, hist] : histograms_) {
        h = mix_string(h, name);
        h = mix(h, hist.underflow());
        h = mix(h, hist.overflow());
        for (std::size_t i = 0; i < hist.bins(); ++i) {
            h = mix(h, hist.bin_count(i));
        }
    }
    return h;
}

}  // namespace mcps::obs
