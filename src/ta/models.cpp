#include "models.hpp"

#include <stdexcept>

namespace mcps::ta {

TimedAutomaton build_pump_lockout_model(const PumpModelParams& p,
                                        const std::string& channel_suffix) {
    const std::string grant = "grant" + channel_suffix;
    // --- Pump behaviour automaton --------------------------------------
    // Clocks: t = time since last bolus start, b = time in current bolus.
    TimedAutomaton pump{"pump"};
    const ClockId t = pump.add_clock("t");
    const ClockId b = pump.add_clock("b");

    const auto init = pump.add_location("Init");
    const auto bolus =
        pump.add_location("Bolus", {Constraint::le(b, p.bolus_duration_s)});
    const auto ready = pump.add_location("Ready");
    pump.set_initial(init);

    // First bolus: allowed at any time (no prior dose exists).
    pump.add_sync_edge(init, bolus, {}, {t, b}, grant, SyncKind::kSend);
    // Bolus completes after its delivery duration.
    pump.add_edge(bolus, ready, {Constraint::ge(b, p.bolus_duration_s)}, {},
                  "bolus_done");
    // Subsequent boluses: the CORRECT firmware guards with the lockout;
    // the FAULTY firmware forgets the guard on this path (modeling the
    // classic "remote bolus_request skips the lockout check" defect).
    Guard grant_guard;
    if (!p.faulty_no_lockout_guard) {
        grant_guard.push_back(Constraint::ge(t, p.lockout_s));
    }
    pump.add_sync_edge(ready, bolus, grant_guard, {t, b}, grant,
                       SyncKind::kSend);

    // --- Requirement monitor -------------------------------------------
    // Observes grant events; two grants closer than the lockout are a
    // violation (safety requirement R1).
    TimedAutomaton monitor{"mon"};
    const ClockId m = monitor.add_clock("m");
    const auto fresh = monitor.add_location("Fresh");
    const auto armed = monitor.add_location("Armed");
    const auto violation = monitor.add_location("Violation");
    monitor.set_initial(fresh);
    monitor.add_sync_edge(fresh, armed, {}, {m}, grant, SyncKind::kReceive);
    monitor.add_sync_edge(armed, armed, {Constraint::ge(m, p.lockout_s)}, {m},
                          grant, SyncKind::kReceive);
    monitor.add_sync_edge(armed, violation, {Constraint::lt(m, p.lockout_s)},
                          {}, grant, SyncKind::kReceive);

    return parallel_compose(pump, monitor);
}

TimedAutomaton build_closed_loop_model(const InterlockModelParams& p) {
    // --- Hazard / property automaton ------------------------------------
    // Clock h measures time since respiratory-depression onset. Overdue
    // is entered if the pump has not confirmed stopping within deadline.
    TimedAutomaton hazard{"hazard"};
    const ClockId h = hazard.add_clock("h");
    const auto dormant = hazard.add_location("Dormant");
    const auto active = hazard.add_location("Active");
    const auto resolved = hazard.add_location("Resolved");
    const auto overdue = hazard.add_location("Overdue");
    hazard.set_initial(dormant);
    hazard.add_sync_edge(dormant, active, {}, {h}, "onset", SyncKind::kSend);
    hazard.add_sync_edge(active, resolved, {}, {}, "stopped",
                         SyncKind::kReceive);
    hazard.add_edge(active, overdue, {Constraint::gt(h, p.deadline_s)}, {},
                    "deadline_blown");

    // --- Interlock automaton --------------------------------------------
    // Detects within [detect_min, detect_max] of onset, then the stop
    // command reaches the pump within command_max (network bound).
    TimedAutomaton interlock{"interlock"};
    const ClockId d = interlock.add_clock("d");
    const auto idle = interlock.add_location("Idle");
    const auto detecting = interlock.add_location(
        "Detecting", {Constraint::le(d, p.detect_max_s)});
    const auto queued = interlock.add_location(
        "Queued", {Constraint::le(d, p.detect_max_s + p.command_max_s)});
    const auto done = interlock.add_location("Done");
    interlock.set_initial(idle);
    interlock.add_sync_edge(idle, detecting, {}, {d}, "onset",
                            SyncKind::kReceive);
    interlock.add_edge(detecting, queued,
                       {Constraint::ge(d, p.detect_min_s)}, {}, "detected");
    interlock.add_sync_edge(queued, done, {}, {}, "stop", SyncKind::kSend);

    // --- Pump automaton ---------------------------------------------------
    // Running until stop arrives; then confirms stopped within
    // pump_react_max (its own firmware bound).
    TimedAutomaton pump{"pump"};
    const ClockId r = pump.add_clock("r");
    const auto running = pump.add_location("Running");
    const auto reacting = pump.add_location(
        "Reacting", {Constraint::le(r, p.pump_react_max_s)});
    const auto stopped = pump.add_location("Stopped");
    pump.set_initial(running);
    pump.add_sync_edge(running, reacting, {}, {r}, "stop", SyncKind::kReceive);
    // The stopped! confirmation is the forced exit of Reacting (its
    // invariant makes the handshake urgent).
    pump.add_sync_edge(reacting, stopped, {}, {}, "stopped", SyncKind::kSend);

    return parallel_compose(parallel_compose(hazard, interlock), pump);
}

TimedAutomaton build_pump_farm(std::size_t n, const PumpModelParams& p) {
    if (n == 0) throw std::invalid_argument("build_pump_farm: n must be >= 1");
    TimedAutomaton farm = build_pump_lockout_model(p, "_0");
    for (std::size_t i = 1; i < n; ++i) {
        // Two-step concatenation sidesteps GCC 12's -Wrestrict false
        // positive on `const char* + std::string&&` (PR 105329).
        std::string suffix{"_"};
        suffix += std::to_string(i);
        farm = parallel_compose(farm, build_pump_lockout_model(p, suffix));
    }
    return farm;
}

VerificationReport verify_gpca_suite(const PumpModelParams& pump,
                                     const InterlockModelParams& loop) {
    VerificationReport rep;
    rep.lockout_safe = verify_safety(build_pump_lockout_model(pump),
                                     "Violation", &rep.lockout_details);
    rep.response_safe = verify_safety(build_closed_loop_model(loop), "Overdue",
                                      &rep.response_details);
    return rep;
}

}  // namespace mcps::ta
