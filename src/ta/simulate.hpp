/// \file simulate.hpp
/// \brief Random concrete execution of timed automata.
///
/// The complement of the symbolic checker: where reachability.hpp
/// *proves* properties over all behaviours, this module *samples*
/// concrete runs (real-valued clock valuations, random delays, random
/// enabled edges). Its two uses mirror industrial practice:
///
///  1. Model validation — before trusting a SAFE verdict, simulate the
///     model and confirm it actually moves (a model that deadlocks in
///     its initial location verifies everything vacuously).
///  2. Counterexample confirmation — a violation found symbolically
///     should be reachable by guided/random simulation too.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "automaton.hpp"
#include "sim/rng.hpp"

namespace mcps::ta {

struct SimulateOptions {
    std::size_t max_steps = 10'000;  ///< edge firings per run
    double max_delay_step = 50.0;    ///< cap on one random delay
    /// Probability of delaying (vs firing an enabled edge) when both
    /// are possible.
    double delay_bias = 0.5;
};

/// Outcome of one random run.
struct RunResult {
    std::size_t steps_taken = 0;
    double total_time = 0.0;
    bool deadlocked = false;  ///< no enabled edge and cannot delay
    std::vector<std::size_t> visited;  ///< location indices, in order
    [[nodiscard]] bool visited_location(std::size_t loc) const;
};

/// Execute one random run of \p ta (closed-system: only internal
/// edges fire). Deterministic given the stream state.
[[nodiscard]] RunResult simulate_run(const TimedAutomaton& ta,
                                     mcps::sim::RngStream& rng,
                                     const SimulateOptions& opts = {});

/// Aggregate statistics over \p runs random runs.
struct SimulateStats {
    std::size_t runs = 0;
    std::size_t deadlocks = 0;
    /// Per-location visit counts (runs that touched it at least once).
    std::map<std::size_t, std::size_t> location_hits;
    /// Runs that reached a location whose name contains the needle.
    std::size_t target_hits = 0;
};

/// Run \p runs random executions, counting visits and hits on locations
/// whose name contains \p target_substring (empty = count nothing).
[[nodiscard]] SimulateStats simulate_many(
    const TimedAutomaton& ta, std::size_t runs, mcps::sim::RngStream& rng,
    const std::string& target_substring = "", const SimulateOptions& opts = {});

}  // namespace mcps::ta
