/// \file automaton.hpp
/// \brief Timed automata with invariants, guards, resets and binary
/// channel synchronization, plus parallel composition.
///
/// This is the modeling front-end for the verification workflow the
/// DAC'10 paper prescribes for pump software: build a network of timed
/// automata (pump, supervisor, hazard model), compose, and check safety
/// by zone-graph reachability (reachability.hpp). Composition is by
/// explicit product construction: send edges ("c!") pair with receive
/// edges ("c?") on the same channel; internal edges interleave.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dbm.hpp"

namespace mcps::ta {

/// An atomic clock constraint xi - xj ≺ c (j = 0 for absolute bounds).
struct Constraint {
    ClockId i = 0;
    ClockId j = 0;
    Bound bound;

    // Convenience factories for the common absolute forms.
    [[nodiscard]] static Constraint le(ClockId x, std::int32_t c) {
        return {x, 0, Bound::weak(c)};
    }
    [[nodiscard]] static Constraint lt(ClockId x, std::int32_t c) {
        return {x, 0, Bound::strict(c)};
    }
    [[nodiscard]] static Constraint ge(ClockId x, std::int32_t c) {
        return {0, x, Bound::weak(-c)};
    }
    [[nodiscard]] static Constraint gt(ClockId x, std::int32_t c) {
        return {0, x, Bound::strict(-c)};
    }
    /// xi - xj <= c.
    [[nodiscard]] static Constraint diff_le(ClockId x, ClockId y,
                                            std::int32_t c) {
        return {x, y, Bound::weak(c)};
    }
};

/// A conjunction of atomic constraints.
using Guard = std::vector<Constraint>;

/// Edge synchronization kind.
enum class SyncKind : std::uint8_t {
    kInternal,  ///< tau transition
    kSend,      ///< channel!
    kReceive,   ///< channel?
};

struct Edge {
    std::size_t src = 0;
    std::size_t dst = 0;
    Guard guard;
    std::vector<ClockId> resets;
    std::string label;    ///< human-readable action name
    SyncKind sync = SyncKind::kInternal;
    std::string channel;  ///< non-empty for send/receive
};

/// A timed automaton. Locations and clocks are created through the
/// builder methods; indices are stable.
class TimedAutomaton {
public:
    explicit TimedAutomaton(std::string name);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Create a clock; returns its id (>= 1; 0 is the reference clock).
    ClockId add_clock(std::string clock_name);
    [[nodiscard]] std::size_t num_clocks() const noexcept {
        return clock_names_.size();
    }
    [[nodiscard]] const std::vector<std::string>& clock_names() const noexcept {
        return clock_names_;
    }

    /// Create a location with an optional invariant; returns its index.
    std::size_t add_location(std::string location_name, Guard invariant = {});
    [[nodiscard]] std::size_t num_locations() const noexcept {
        return location_names_.size();
    }
    [[nodiscard]] const std::string& location_name(std::size_t loc) const {
        return location_names_.at(loc);
    }
    [[nodiscard]] const Guard& invariant(std::size_t loc) const {
        return invariants_.at(loc);
    }
    /// Index of a location by its name. \throws std::out_of_range.
    [[nodiscard]] std::size_t location(const std::string& location_name) const;

    void set_initial(std::size_t loc);
    [[nodiscard]] std::size_t initial() const noexcept { return initial_; }

    void add_edge(std::size_t src, std::size_t dst, Guard guard,
                  std::vector<ClockId> resets, std::string label);
    void add_sync_edge(std::size_t src, std::size_t dst, Guard guard,
                       std::vector<ClockId> resets, std::string channel,
                       SyncKind kind);
    [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
        return edges_;
    }

    /// Largest constant appearing in any guard or invariant (for zone
    /// extrapolation).
    [[nodiscard]] std::int32_t max_constant() const;

    /// Validates structural sanity (edge endpoints, clock ids).
    /// \throws std::logic_error on inconsistency.
    void validate() const;

private:
    void check_guard(const Guard& g) const;

    std::string name_;
    std::vector<std::string> clock_names_;
    std::vector<std::string> location_names_;
    std::vector<Guard> invariants_;
    std::vector<Edge> edges_;
    std::size_t initial_ = 0;
};

/// Parallel composition a || b: product locations, disjoint clock
/// spaces (b's clocks are shifted), interleaved internal edges, and
/// handshake pairs of matching send/receive edges fused into internal
/// edges labeled "chan!?(a_label,b_label)".
[[nodiscard]] TimedAutomaton parallel_compose(const TimedAutomaton& a,
                                              const TimedAutomaton& b);

}  // namespace mcps::ta
