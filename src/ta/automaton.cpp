#include "automaton.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcps::ta {

TimedAutomaton::TimedAutomaton(std::string name) : name_{std::move(name)} {}

ClockId TimedAutomaton::add_clock(std::string clock_name) {
    clock_names_.push_back(std::move(clock_name));
    return clock_names_.size();  // ids start at 1 (0 = reference)
}

std::size_t TimedAutomaton::add_location(std::string location_name,
                                         Guard invariant) {
    check_guard(invariant);
    location_names_.push_back(std::move(location_name));
    invariants_.push_back(std::move(invariant));
    return location_names_.size() - 1;
}

std::size_t TimedAutomaton::location(const std::string& location_name) const {
    const auto it = std::find(location_names_.begin(), location_names_.end(),
                              location_name);
    if (it == location_names_.end()) {
        throw std::out_of_range("TimedAutomaton '" + name_ +
                                "': no location named '" + location_name + "'");
    }
    return static_cast<std::size_t>(it - location_names_.begin());
}

void TimedAutomaton::set_initial(std::size_t loc) {
    if (loc >= num_locations()) {
        throw std::out_of_range("set_initial: bad location index");
    }
    initial_ = loc;
}

void TimedAutomaton::check_guard(const Guard& g) const {
    for (const auto& c : g) {
        if (c.i > num_clocks() || c.j > num_clocks()) {
            throw std::out_of_range("guard references unknown clock");
        }
    }
}

void TimedAutomaton::add_edge(std::size_t src, std::size_t dst, Guard guard,
                              std::vector<ClockId> resets, std::string label) {
    add_sync_edge(src, dst, std::move(guard), std::move(resets), "",
                  SyncKind::kInternal);
    edges_.back().label = std::move(label);
}

void TimedAutomaton::add_sync_edge(std::size_t src, std::size_t dst,
                                   Guard guard, std::vector<ClockId> resets,
                                   std::string channel, SyncKind kind) {
    if (src >= num_locations() || dst >= num_locations()) {
        throw std::out_of_range("add_edge: bad location index");
    }
    check_guard(guard);
    for (ClockId r : resets) {
        if (r == 0 || r > num_clocks()) {
            throw std::out_of_range("add_edge: bad reset clock");
        }
    }
    if (kind != SyncKind::kInternal && channel.empty()) {
        throw std::invalid_argument("add_sync_edge: sync edge needs a channel");
    }
    Edge e;
    e.src = src;
    e.dst = dst;
    e.guard = std::move(guard);
    e.resets = std::move(resets);
    e.sync = kind;
    e.channel = channel;
    e.label = channel.empty()
                  ? "tau"
                  : channel + (kind == SyncKind::kSend ? "!" : "?");
    edges_.push_back(std::move(e));
}

std::int32_t TimedAutomaton::max_constant() const {
    std::int32_t m = 0;
    auto scan = [&m](const Guard& g) {
        for (const auto& c : g) {
            if (!c.bound.is_infinite()) {
                m = std::max(m, std::abs(c.bound.value()));
            }
        }
    };
    for (const auto& inv : invariants_) scan(inv);
    for (const auto& e : edges_) scan(e.guard);
    return m;
}

void TimedAutomaton::validate() const {
    if (num_locations() == 0) {
        throw std::logic_error("TimedAutomaton '" + name_ + "': no locations");
    }
    if (num_clocks() == 0) {
        throw std::logic_error("TimedAutomaton '" + name_ +
                               "': no clocks (add at least one)");
    }
    if (initial_ >= num_locations()) {
        throw std::logic_error("TimedAutomaton '" + name_ + "': bad initial");
    }
    for (const auto& e : edges_) {
        if (e.src >= num_locations() || e.dst >= num_locations()) {
            throw std::logic_error("TimedAutomaton '" + name_ +
                                   "': dangling edge");
        }
    }
}

namespace {

/// Shift all clock references in a guard by \p offset (reference clock 0
/// stays fixed).
Guard shift_guard(const Guard& g, std::size_t offset) {
    Guard out = g;
    for (auto& c : out) {
        if (c.i != 0) c.i += offset;
        if (c.j != 0) c.j += offset;
    }
    return out;
}

std::vector<ClockId> shift_resets(const std::vector<ClockId>& r,
                                  std::size_t offset) {
    std::vector<ClockId> out = r;
    for (auto& x : out) x += offset;
    return out;
}

Guard concat(Guard a, const Guard& b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
}

}  // namespace

TimedAutomaton parallel_compose(const TimedAutomaton& a,
                                const TimedAutomaton& b) {
    a.validate();
    b.validate();
    TimedAutomaton p{a.name() + "||" + b.name()};

    for (const auto& cn : a.clock_names()) p.add_clock(a.name() + "." + cn);
    for (const auto& cn : b.clock_names()) p.add_clock(b.name() + "." + cn);
    const std::size_t shift = a.num_clocks();

    const std::size_t nb = b.num_locations();
    auto prod = [nb](std::size_t la, std::size_t lb) { return la * nb + lb; };

    for (std::size_t la = 0; la < a.num_locations(); ++la) {
        for (std::size_t lb = 0; lb < nb; ++lb) {
            Guard inv = concat(a.invariant(la), shift_guard(b.invariant(lb), shift));
            p.add_location(a.location_name(la) + "|" + b.location_name(lb),
                           std::move(inv));
        }
    }
    p.set_initial(prod(a.initial(), b.initial()));

    // Interleaved edges. Internal edges interleave as internal; sync
    // edges are also interleaved *keeping their sync annotation* so they
    // remain available for fusion in a later composition (open-system
    // composition — the reachability checker ignores any sync edge left
    // unfused, which closes the system at verification time).
    for (const auto& e : a.edges()) {
        for (std::size_t lb = 0; lb < nb; ++lb) {
            if (e.sync == SyncKind::kInternal) {
                p.add_edge(prod(e.src, lb), prod(e.dst, lb), e.guard, e.resets,
                           a.name() + "." + e.label);
            } else {
                p.add_sync_edge(prod(e.src, lb), prod(e.dst, lb), e.guard,
                                e.resets, e.channel, e.sync);
            }
        }
    }
    for (const auto& e : b.edges()) {
        for (std::size_t la = 0; la < a.num_locations(); ++la) {
            if (e.sync == SyncKind::kInternal) {
                p.add_edge(prod(la, e.src), prod(la, e.dst),
                           shift_guard(e.guard, shift),
                           shift_resets(e.resets, shift),
                           b.name() + "." + e.label);
            } else {
                p.add_sync_edge(prod(la, e.src), prod(la, e.dst),
                                shift_guard(e.guard, shift),
                                shift_resets(e.resets, shift), e.channel,
                                e.sync);
            }
        }
    }

    // Handshake pairs: a sends / b receives and vice versa.
    auto fuse = [&](const Edge& send, const Edge& recv, bool send_is_a) {
        const Edge& ea = send_is_a ? send : recv;
        const Edge& eb = send_is_a ? recv : send;
        Guard g = concat(ea.guard, shift_guard(eb.guard, shift));
        std::vector<ClockId> resets = ea.resets;
        const auto shifted = shift_resets(eb.resets, shift);
        resets.insert(resets.end(), shifted.begin(), shifted.end());
        p.add_edge(prod(ea.src, eb.src), prod(ea.dst, eb.dst), std::move(g),
                   std::move(resets),
                   send.channel + "!?(" + ea.label + "," + eb.label + ")");
    };
    for (const auto& ea : a.edges()) {
        if (ea.sync == SyncKind::kInternal) continue;
        for (const auto& eb : b.edges()) {
            if (eb.sync == SyncKind::kInternal) continue;
            if (ea.channel != eb.channel) continue;
            if (ea.sync == SyncKind::kSend && eb.sync == SyncKind::kReceive) {
                fuse(ea, eb, /*send_is_a=*/true);
            } else if (ea.sync == SyncKind::kReceive &&
                       eb.sync == SyncKind::kSend) {
                fuse(eb, ea, /*send_is_a=*/false);
            }
        }
    }
    return p;
}

}  // namespace mcps::ta
