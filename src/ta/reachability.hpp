/// \file reachability.hpp
/// \brief Zone-graph reachability for timed automata — the checker that
/// answers "can the pump model ever reach an unsafe state?".
///
/// Standard forward symbolic exploration (Bengtsson & Yi 2004):
/// states are (location, zone) pairs with zones kept canonical and
/// delay-closed; a passed list with zone-inclusion subsumption plus
/// max-constant extrapolation guarantees termination. Counterexamples
/// are reconstructed as edge-label traces.

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "automaton.hpp"

namespace mcps::ta {

/// A predicate over locations (by index) selecting the target set.
using LocationPredicate = std::function<bool(std::size_t)>;

struct ReachabilityOptions {
    /// Exploration cap; exceeding it throws (the caller sized the model
    /// wrong, and silently truncating would fake a proof).
    std::size_t max_states = 2'000'000;
    /// Extrapolation constant override (0 = derive from the model).
    std::int32_t max_constant = 0;
};

struct ReachabilityResult {
    bool reachable = false;
    std::size_t states_explored = 0;  ///< popped from the waiting list
    std::size_t states_stored = 0;    ///< retained in the passed list
    /// Edge labels from the initial state to the target (if reachable).
    std::vector<std::string> trace;
    /// Name of the reached target location (if reachable).
    std::string target_location;
};

/// Is any location satisfying \p target reachable?
/// \throws std::runtime_error if the exploration exceeds max_states.
[[nodiscard]] ReachabilityResult check_reachability(
    const TimedAutomaton& ta, const LocationPredicate& target,
    const ReachabilityOptions& opts = {});

/// Convenience: reachability of a location whose *name contains* the
/// given substring (product locations concatenate component names).
[[nodiscard]] ReachabilityResult check_reachability(
    const TimedAutomaton& ta, const std::string& location_substring,
    const ReachabilityOptions& opts = {});

/// Safety verification: the property holds iff no bad location is
/// reachable. Returns the (non-)reachability result for reporting.
[[nodiscard]] inline bool verify_safety(const TimedAutomaton& ta,
                                        const std::string& bad_substring,
                                        ReachabilityResult* details = nullptr,
                                        const ReachabilityOptions& opts = {}) {
    auto r = check_reachability(ta, bad_substring, opts);
    if (details) *details = r;
    return !r.reachable;
}

}  // namespace mcps::ta
