#include "reachability.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace mcps::ta {

namespace {

/// One node of the explored zone graph (kept for trace reconstruction).
struct Node {
    std::size_t loc;
    Dbm zone;
    std::size_t parent;      ///< index into node store; self for root
    std::string via_label;   ///< edge label taken from parent
};

bool apply_guard(Dbm& z, const Guard& g) {
    for (const auto& c : g) {
        if (!z.constrain(c.i, c.j, c.bound)) return false;
    }
    return true;
}

}  // namespace

ReachabilityResult check_reachability(const TimedAutomaton& ta,
                                      const LocationPredicate& target,
                                      const ReachabilityOptions& opts) {
    ta.validate();
    if (!target) throw std::invalid_argument("check_reachability: null target");

    const std::int32_t k =
        opts.max_constant > 0 ? opts.max_constant : ta.max_constant();

    // Group edges by source location once.
    std::vector<std::vector<const Edge*>> out_edges(ta.num_locations());
    for (const auto& e : ta.edges()) {
        if (e.sync != SyncKind::kInternal) continue;  // closed system
        out_edges[e.src].push_back(&e);
    }

    ReachabilityResult result;
    std::vector<Node> nodes;
    std::deque<std::size_t> waiting;
    // Passed list: per location, indices of stored zones (subsumption
    // checked linearly; buckets are small in practice).
    std::unordered_map<std::size_t, std::vector<std::size_t>> passed;

    auto try_add = [&](std::size_t loc, Dbm zone, std::size_t parent,
                       std::string label) {
        zone.extrapolate(k);
        if (zone.empty()) return;
        auto& bucket = passed[loc];
        for (std::size_t idx : bucket) {
            if (nodes[idx].zone.includes(zone)) return;  // subsumed
        }
        if (nodes.size() >= opts.max_states) {
            throw std::runtime_error(
                "check_reachability: exceeded max_states (" +
                std::to_string(opts.max_states) + ")");
        }
        nodes.push_back(Node{loc, std::move(zone), parent, std::move(label)});
        bucket.push_back(nodes.size() - 1);
        waiting.push_back(nodes.size() - 1);
    };

    // Initial state: all clocks zero, delay-closed under the invariant.
    {
        Dbm z0 = Dbm::zero(ta.num_clocks());
        if (!apply_guard(z0, ta.invariant(ta.initial()))) {
            // Invariant excludes the origin: vacuous system.
            return result;
        }
        z0.up();
        apply_guard(z0, ta.invariant(ta.initial()));
        try_add(ta.initial(), std::move(z0), 0, "init");
    }

    while (!waiting.empty()) {
        const std::size_t cur = waiting.front();
        waiting.pop_front();
        ++result.states_explored;

        // nodes may reallocate inside try_add; copy what we need.
        const std::size_t loc = nodes[cur].loc;

        if (target(loc)) {
            result.reachable = true;
            result.target_location = ta.location_name(loc);
            // Reconstruct the trace.
            std::vector<std::string> rev;
            for (std::size_t n = cur; nodes[n].parent != n ||
                                      nodes[n].via_label != "init";) {
                rev.push_back(nodes[n].via_label);
                if (nodes[n].parent == n) break;
                n = nodes[n].parent;
            }
            result.trace.assign(rev.rbegin(), rev.rend());
            result.states_stored = nodes.size();
            return result;
        }

        for (const Edge* e : out_edges[loc]) {
            Dbm z = nodes[cur].zone;  // copy
            if (!apply_guard(z, e->guard)) continue;
            for (ClockId r : e->resets) z.reset(r);
            if (!apply_guard(z, ta.invariant(e->dst))) continue;
            z.up();
            if (!apply_guard(z, ta.invariant(e->dst))) continue;
            try_add(e->dst, std::move(z), cur, e->label);
        }
    }

    result.states_stored = nodes.size();
    return result;
}

ReachabilityResult check_reachability(const TimedAutomaton& ta,
                                      const std::string& location_substring,
                                      const ReachabilityOptions& opts) {
    return check_reachability(
        ta,
        [&ta, &location_substring](std::size_t loc) {
            return ta.location_name(loc).find(location_substring) !=
                   std::string::npos;
        },
        opts);
}

}  // namespace mcps::ta
