#include "simulate.hpp"

#include <algorithm>
#include <limits>

namespace mcps::ta {

namespace {

/// Does valuation \p v satisfy constraint \p c? (v[0] == 0 always.)
bool satisfies(const std::vector<double>& v, const Constraint& c) {
    if (c.bound.is_infinite()) return true;
    const double diff = v[c.i] - v[c.j];
    const double bound = static_cast<double>(c.bound.value());
    return c.bound.is_strict() ? diff < bound - 1e-12 : diff <= bound + 1e-12;
}

bool satisfies_all(const std::vector<double>& v, const Guard& g) {
    return std::all_of(g.begin(), g.end(),
                       [&](const Constraint& c) { return satisfies(v, c); });
}

/// Maximum delay admissible under the invariant (delay shifts every
/// clock except the reference equally, so only upper bounds "xi ≺ c"
/// with j == 0 constrain it; diagonal constraints are delay-invariant
/// unless one side is the reference clock).
double max_delay(const std::vector<double>& v, const Guard& inv) {
    double bound = std::numeric_limits<double>::infinity();
    for (const auto& c : inv) {
        if (c.bound.is_infinite()) continue;
        if (c.i != 0 && c.j == 0) {
            // xi + d ≺ bound  =>  d ≺ bound - xi.
            bound = std::min(bound,
                             static_cast<double>(c.bound.value()) - v[c.i]);
        }
    }
    return std::max(0.0, bound);
}

}  // namespace

bool RunResult::visited_location(std::size_t loc) const {
    return std::find(visited.begin(), visited.end(), loc) != visited.end();
}

RunResult simulate_run(const TimedAutomaton& ta, mcps::sim::RngStream& rng,
                       const SimulateOptions& opts) {
    ta.validate();
    RunResult result;
    std::vector<double> v(ta.num_clocks() + 1, 0.0);
    std::size_t loc = ta.initial();
    result.visited.push_back(loc);

    // Pre-index internal edges by source.
    std::vector<std::vector<const Edge*>> out(ta.num_locations());
    for (const auto& e : ta.edges()) {
        if (e.sync == SyncKind::kInternal) out[e.src].push_back(&e);
    }

    for (std::size_t step = 0; step < opts.max_steps; ++step) {
        if (out[loc].empty()) break;  // sink: nothing further can happen

        // Enabled edges at the current valuation. The target invariant
        // is evaluated AFTER the edge's resets (standard TA semantics).
        std::vector<const Edge*> enabled;
        for (const Edge* e : out[loc]) {
            if (!satisfies_all(v, e->guard)) continue;
            std::vector<double> after = v;
            for (ClockId r : e->resets) after[r] = 0.0;
            if (satisfies_all(after, ta.invariant(e->dst))) {
                enabled.push_back(e);
            }
        }
        const double delay_room = max_delay(v, ta.invariant(loc));

        const bool can_delay = delay_room > 1e-9;
        if (enabled.empty() && !can_delay) {
            result.deadlocked = true;
            break;
        }

        if (enabled.empty() || (can_delay && rng.uniform() < opts.delay_bias)) {
            // Avoid Zeno runs: when nothing is enabled and the invariant
            // bounds the stay, jump exactly to the boundary (weak upper
            // bounds are reachable); otherwise sample, occasionally
            // taking the full room so boundary guards can fire.
            double d;
            const double room = std::min(delay_room, opts.max_delay_step);
            if (enabled.empty() &&
                delay_room <= opts.max_delay_step) {
                d = delay_room;
            } else if (rng.bernoulli(0.25) &&
                       delay_room <= opts.max_delay_step) {
                d = delay_room;
            } else {
                d = rng.uniform(0.0, room);
            }
            for (std::size_t i = 1; i < v.size(); ++i) v[i] += d;
            result.total_time += d;
            continue;
        }

        const Edge* e = enabled[rng.pick(enabled.size())];
        for (ClockId r : e->resets) v[r] = 0.0;
        loc = e->dst;
        result.visited.push_back(loc);
        ++result.steps_taken;
    }
    return result;
}

SimulateStats simulate_many(const TimedAutomaton& ta, std::size_t runs,
                            mcps::sim::RngStream& rng,
                            const std::string& target_substring,
                            const SimulateOptions& opts) {
    SimulateStats stats;
    stats.runs = runs;
    for (std::size_t r = 0; r < runs; ++r) {
        const auto run = simulate_run(ta, rng, opts);
        if (run.deadlocked) ++stats.deadlocks;
        std::vector<bool> seen(ta.num_locations(), false);
        for (std::size_t loc : run.visited) seen[loc] = true;
        bool hit = false;
        for (std::size_t loc = 0; loc < seen.size(); ++loc) {
            if (!seen[loc]) continue;
            ++stats.location_hits[loc];
            if (!target_substring.empty() &&
                ta.location_name(loc).find(target_substring) !=
                    std::string::npos) {
                hit = true;
            }
        }
        if (hit) ++stats.target_hits;
    }
    return stats;
}

}  // namespace mcps::ta
