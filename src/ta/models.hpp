/// \file models.hpp
/// \brief Timed-automata models of the GPCA pump and the closed-loop
/// interlock, plus the safety properties checked in experiment E5.
///
/// These are the verification artifacts the DAC'10 model-based
/// development workflow produces: abstract, integer-time models of the
/// executable components in src/devices and src/core, small enough to
/// model-check exhaustively yet faithful to the safety-relevant timing
/// (lockout windows, detection delays, command latencies).
///
/// Time unit inside the models: **seconds** (integer).

#pragma once

#include "automaton.hpp"
#include "reachability.hpp"

namespace mcps::ta {

/// Parameters of the pump lockout model.
struct PumpModelParams {
    std::int32_t lockout_s = 480;       ///< prescription lockout
    std::int32_t bolus_duration_s = 30; ///< bolus delivery time
    /// Introduce the classic firmware defect: the re-grant path omits
    /// the lockout-guard check (e.g. remote bolus_request commands skip
    /// the check applied to the physical button). Set true to produce a
    /// model whose violation the checker must find (negative test).
    bool faulty_no_lockout_guard = false;
};

/// GPCA pump bolus/lockout automaton composed with its requirement
/// monitor.
///
/// The pump grants boluses over channel "grant<suffix>"; the monitor
/// enters Violation when two grants are closer than the lockout.
/// Property P1 (R1 in gpca_pump.hpp): Violation is unreachable iff
/// faulty_no_lockout_guard == false. \p channel_suffix makes instances
/// independent when several are composed (build_pump_farm).
[[nodiscard]] TimedAutomaton build_pump_lockout_model(
    const PumpModelParams& p = {}, const std::string& channel_suffix = "");

/// Parameters of the closed-loop response model.
struct InterlockModelParams {
    std::int32_t detect_min_s = 5;    ///< earliest detection after onset
    std::int32_t detect_max_s = 30;   ///< latest detection after onset
    std::int32_t command_max_s = 3;   ///< bus delivery bound for the stop
    std::int32_t pump_react_max_s = 2;///< pump's internal reaction bound
    std::int32_t deadline_s = 60;     ///< required onset->stopped bound
};

/// Network: Hazard (onset) || Interlock (detects, sends stop!) ||
/// Pump (receives stop?, stops). Composed into one automaton. Property
/// P2: the "Overdue" location (pump still running deadline_s after
/// onset) is unreachable iff detect_max + command_max + pump_react_max
/// <= deadline.
[[nodiscard]] TimedAutomaton build_closed_loop_model(
    const InterlockModelParams& p = {});

/// A scaling family for benchmark E5: \p n independent pump automata
/// composed in parallel (state space grows exponentially — measures the
/// checker, not the pump).
[[nodiscard]] TimedAutomaton build_pump_farm(std::size_t n,
                                             const PumpModelParams& p = {});

/// Outcome of running the standard GPCA verification suite.
struct VerificationReport {
    bool lockout_safe = false;
    ReachabilityResult lockout_details;
    bool response_safe = false;
    ReachabilityResult response_details;
};

/// Run properties P1 + P2 with the given parameters.
[[nodiscard]] VerificationReport verify_gpca_suite(
    const PumpModelParams& pump = {}, const InterlockModelParams& loop = {});

}  // namespace mcps::ta
