/// \file dbm.hpp
/// \brief Difference Bound Matrices — the zone representation for timed-
/// automata model checking.
///
/// The DAC'10 paper's "model-based development" thread verifies infusion
/// pump models (GPCA) against safety requirements using timed automata.
/// This is the standard symbolic machinery (Dill 1989; Bengtsson & Yi
/// 2004) implemented from scratch:
///
/// A zone over clocks x1..xn is a conjunction of constraints
/// xi - xj ≺ c (with x0 the constant-zero reference clock). The DBM
/// stores the tightest bound for every ordered pair; canonical form is
/// obtained by all-pairs shortest path (Floyd–Warshall). Operations used
/// by the explorer: delay (up), clock reset, guard intersection,
/// emptiness, inclusion (for passed-list subsumption) and max-constant
/// extrapolation (for termination).

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mcps::ta {

/// Index of a clock; 0 is always the reference clock (constant zero).
using ClockId = std::size_t;

/// A bound "≺ value" where ≺ is < (strict) or <= (non-strict), plus the
/// infinity sentinel. Encoded in one int for fast comparison/addition:
/// raw = 2*value + (non-strict ? 1 : 0); infinity = INT32_MAX.
class Bound {
public:
    constexpr Bound() noexcept : raw_{1} {}  // (<= 0)

    [[nodiscard]] static constexpr Bound strict(std::int32_t value) noexcept {
        return Bound{2 * value};
    }
    [[nodiscard]] static constexpr Bound weak(std::int32_t value) noexcept {
        return Bound{2 * value + 1};
    }
    [[nodiscard]] static constexpr Bound infinity() noexcept {
        return Bound{std::numeric_limits<std::int32_t>::max()};
    }
    [[nodiscard]] static constexpr Bound zero_weak() noexcept {
        return weak(0);  // (<= 0)
    }

    [[nodiscard]] constexpr bool is_infinite() const noexcept {
        return raw_ == std::numeric_limits<std::int32_t>::max();
    }
    /// The numeric bound; undefined for infinity.
    [[nodiscard]] constexpr std::int32_t value() const noexcept {
        return raw_ >> 1;
    }
    [[nodiscard]] constexpr bool is_strict() const noexcept {
        return !is_infinite() && (raw_ & 1) == 0;
    }
    [[nodiscard]] constexpr std::int32_t raw() const noexcept { return raw_; }

    /// Bound ordering: tighter < looser; infinity is the loosest.
    constexpr auto operator<=>(const Bound&) const noexcept = default;

    /// Bound addition (path concatenation): (≺1 c1) + (≺2 c2) =
    /// (≺ c1+c2) where ≺ is < iff either is strict. Saturates at infinity.
    [[nodiscard]] constexpr Bound operator+(Bound o) const noexcept {
        if (is_infinite() || o.is_infinite()) return infinity();
        const std::int32_t v = value() + o.value();
        const bool weak_bound = !is_strict() && !o.is_strict();
        return weak_bound ? weak(v) : strict(v);
    }

    [[nodiscard]] std::string to_string() const;

private:
    explicit constexpr Bound(std::int32_t raw) noexcept : raw_{raw} {}
    std::int32_t raw_;
};

/// A zone over a fixed number of clocks (excluding the reference clock).
/// Invariant: after any mutating public operation the matrix is in
/// canonical (all-pairs-tightest) form, or empty.
class Dbm {
public:
    /// Universe zone (all clocks >= 0, unconstrained above) over
    /// \p num_clocks real clocks.
    explicit Dbm(std::size_t num_clocks);

    /// Zone with all clocks exactly zero (the initial state).
    [[nodiscard]] static Dbm zero(std::size_t num_clocks);

    [[nodiscard]] std::size_t num_clocks() const noexcept { return n_ - 1; }
    /// Matrix dimension (clocks + reference).
    [[nodiscard]] std::size_t dim() const noexcept { return n_; }

    /// \throws std::out_of_range on a bad clock id.
    [[nodiscard]] Bound at(ClockId i, ClockId j) const {
        check_ids(i, j);
        return m_[i * n_ + j];
    }

    [[nodiscard]] bool empty() const noexcept { return empty_; }

    /// Delay: let time elapse (remove upper bounds on all clocks).
    void up();

    /// Reset clock \p x to zero.
    void reset(ClockId x);

    /// Intersect with constraint "xi - xj ≺ c". Returns false (and marks
    /// the zone empty) if the result is empty. Pass j=0 for "xi ≺ c" and
    /// i=0 for "-xj ≺ c" i.e. "xj ≻ -c".
    bool constrain(ClockId i, ClockId j, Bound b);

    /// Convenience: xi <= c / xi < c / xi >= c / xi > c.
    bool constrain_upper(ClockId x, std::int32_t c, bool strict);
    bool constrain_lower(ClockId x, std::int32_t c, bool strict);

    /// True if this zone contains \p other (set inclusion); both must be
    /// canonical (they are, by the class invariant).
    [[nodiscard]] bool includes(const Dbm& other) const;

    /// Classic maximal-constant extrapolation: bounds beyond \p max_const
    /// are loosened to guarantee a finite zone graph.
    void extrapolate(std::int32_t max_const);

    /// Exact equality of canonical forms.
    [[nodiscard]] bool operator==(const Dbm& o) const;

    /// Hash of the canonical matrix (for passed-list buckets).
    [[nodiscard]] std::size_t hash() const;

    /// Multi-line human-readable rendering (tests/diagnostics).
    [[nodiscard]] std::string to_string() const;

    /// Re-canonicalize (public for tests; normally internal).
    void canonicalize();

private:
    Bound& cell(ClockId i, ClockId j) { return m_[i * n_ + j]; }
    [[nodiscard]] const Bound& cell(ClockId i, ClockId j) const {
        return m_[i * n_ + j];
    }
    void check_ids(ClockId i, ClockId j) const;

    std::size_t n_;  ///< dimension = clocks + 1
    std::vector<Bound> m_;
    bool empty_ = false;
};

}  // namespace mcps::ta
