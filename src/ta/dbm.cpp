#include "dbm.hpp"

#include <sstream>
#include <stdexcept>

namespace mcps::ta {

std::string Bound::to_string() const {
    if (is_infinite()) return "<inf";
    return (is_strict() ? "<" : "<=") + std::to_string(value());
}

Dbm::Dbm(std::size_t num_clocks) : n_{num_clocks + 1} {
    if (num_clocks == 0) {
        throw std::invalid_argument("Dbm: need at least one clock");
    }
    m_.assign(n_ * n_, Bound::infinity());
    for (std::size_t i = 0; i < n_; ++i) cell(i, i) = Bound::zero_weak();
    // Clocks are non-negative: x0 - xi <= 0.
    for (std::size_t i = 1; i < n_; ++i) cell(0, i) = Bound::zero_weak();
    // Already canonical.
}

Dbm Dbm::zero(std::size_t num_clocks) {
    Dbm d{num_clocks};
    for (std::size_t i = 0; i < d.n_; ++i) {
        for (std::size_t j = 0; j < d.n_; ++j) {
            d.cell(i, j) = Bound::zero_weak();
        }
    }
    return d;
}

void Dbm::check_ids(ClockId i, ClockId j) const {
    if (i >= n_ || j >= n_) {
        throw std::out_of_range("Dbm: clock id out of range");
    }
}

void Dbm::canonicalize() {
    if (empty_) return;
    for (std::size_t k = 0; k < n_; ++k) {
        for (std::size_t i = 0; i < n_; ++i) {
            const Bound ik = cell(i, k);
            if (ik.is_infinite()) continue;
            for (std::size_t j = 0; j < n_; ++j) {
                const Bound through = ik + cell(k, j);
                if (through < cell(i, j)) cell(i, j) = through;
            }
        }
    }
    for (std::size_t i = 0; i < n_; ++i) {
        if (cell(i, i) < Bound::zero_weak()) {
            empty_ = true;
            return;
        }
    }
}

void Dbm::up() {
    if (empty_) return;
    // Remove upper bounds: xi - x0 becomes unbounded; canonical form is
    // preserved by this operation (Bengtsson & Yi, Lemma 6).
    for (std::size_t i = 1; i < n_; ++i) cell(i, 0) = Bound::infinity();
}

void Dbm::reset(ClockId x) {
    if (empty_) return;
    check_ids(x, 0);
    if (x == 0) throw std::invalid_argument("Dbm::reset: cannot reset x0");
    // x := 0  =>  x - y <= (0 - y) and y - x <= (y - 0); canonical form
    // is preserved.
    for (std::size_t j = 0; j < n_; ++j) {
        cell(x, j) = cell(0, j);
        cell(j, x) = cell(j, 0);
    }
    cell(x, x) = Bound::zero_weak();
}

bool Dbm::constrain(ClockId i, ClockId j, Bound b) {
    if (empty_) return false;
    check_ids(i, j);
    if (b.is_infinite()) return true;
    // Quick infeasibility: existing lower bound contradicts new upper.
    if (cell(j, i) + b < Bound::zero_weak()) {
        empty_ = true;
        return false;
    }
    if (b < cell(i, j)) {
        cell(i, j) = b;
        // Restore canonical form incrementally: paths through (i,j).
        for (std::size_t a = 0; a < n_; ++a) {
            const Bound ai = cell(a, i);
            if (ai.is_infinite()) continue;
            for (std::size_t c = 0; c < n_; ++c) {
                const Bound through = ai + b + cell(j, c);
                if (through < cell(a, c)) cell(a, c) = through;
            }
        }
        for (std::size_t a = 0; a < n_; ++a) {
            if (cell(a, a) < Bound::zero_weak()) {
                empty_ = true;
                return false;
            }
        }
    }
    return true;
}

bool Dbm::constrain_upper(ClockId x, std::int32_t c, bool strict) {
    return constrain(x, 0, strict ? Bound::strict(c) : Bound::weak(c));
}

bool Dbm::constrain_lower(ClockId x, std::int32_t c, bool strict) {
    // x >= c  <=>  x0 - x <= -c (weak) / < -c (strict).
    return constrain(0, x, strict ? Bound::strict(-c) : Bound::weak(-c));
}

bool Dbm::includes(const Dbm& other) const {
    if (other.empty_) return true;
    if (empty_) return false;
    if (n_ != other.n_) {
        throw std::invalid_argument("Dbm::includes: dimension mismatch");
    }
    for (std::size_t i = 0; i < n_ * n_; ++i) {
        if (m_[i] < other.m_[i]) return false;
    }
    return true;
}

void Dbm::extrapolate(std::int32_t max_const) {
    if (empty_) return;
    const Bound upper = Bound::weak(max_const);
    const Bound lower = Bound::strict(-max_const);
    bool changed = false;
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = 0; j < n_; ++j) {
            if (i == j) continue;
            Bound& b = cell(i, j);
            if (!b.is_infinite() && b > upper) {
                b = Bound::infinity();
                changed = true;
            } else if (b < lower) {
                b = lower;
                changed = true;
            }
        }
    }
    if (changed) canonicalize();
}

bool Dbm::operator==(const Dbm& o) const {
    if (empty_ != o.empty_) return false;
    if (empty_) return true;
    return n_ == o.n_ && m_ == o.m_;
}

std::size_t Dbm::hash() const {
    // FNV-1a over raw bound values of the canonical matrix.
    std::size_t h = 14695981039346656037ULL;
    if (empty_) return h;
    for (const Bound& b : m_) {
        h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(b.raw()));
        h *= 1099511628211ULL;
    }
    return h;
}

std::string Dbm::to_string() const {
    if (empty_) return "(empty zone)";
    std::ostringstream os;
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = 0; j < n_; ++j) {
            os << cell(i, j).to_string();
            if (j + 1 < n_) os << "  ";
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace mcps::ta
