/// \file ta.hpp
/// \brief Umbrella header for the mcps_ta timed-automata verification
/// library.

#pragma once

#include "automaton.hpp"     // IWYU pragma: export
#include "dbm.hpp"           // IWYU pragma: export
#include "models.hpp"        // IWYU pragma: export
#include "reachability.hpp"  // IWYU pragma: export
#include "simulate.hpp"      // IWYU pragma: export
