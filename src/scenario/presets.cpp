#include "presets.hpp"

#include <algorithm>

namespace mcps::scenario {

namespace {

std::uint64_t denied_total(const devices::PumpStats& p) noexcept {
    return p.denied_lockout + p.denied_hourly + p.denied_state;
}

std::size_t procedures_for(std::uint64_t minutes) noexcept {
    // One procedure per 3-minute gap, at least one (the mapping the
    // golden x-ray trace was recorded with).
    return std::max<std::size_t>(1, static_cast<std::size_t>(minutes) / 3);
}

}  // namespace

core::PcaScenarioConfig canonical_pca(std::uint64_t seed,
                                      mcps::sim::SimDuration duration) {
    core::PcaScenarioConfig cfg;
    cfg.seed = seed;
    cfg.duration = duration;
    cfg.patient =
        physio::nominal_parameters(physio::Archetype::kHighRisk);
    cfg.demand_mode = core::DemandMode::kProxy;
    return cfg;
}

core::PcaScenarioConfig open_loop_pca(std::uint64_t seed,
                                      mcps::sim::SimDuration duration) {
    core::PcaScenarioConfig cfg;
    cfg.seed = seed;
    cfg.duration = duration;
    cfg.patient =
        physio::nominal_parameters(physio::Archetype::kOpioidSensitive);
    cfg.demand_mode = core::DemandMode::kProxy;
    cfg.interlock = std::nullopt;
    return cfg;
}

core::PcaScenarioConfig smart_alarm_shift(std::uint64_t seed,
                                          mcps::sim::SimDuration duration) {
    core::PcaScenarioConfig cfg;
    cfg.seed = seed;
    cfg.duration = duration;
    cfg.patient =
        physio::nominal_parameters(physio::Archetype::kTypicalAdult);
    cfg.demand_mode = core::DemandMode::kNormal;
    cfg.interlock = std::nullopt;
    apply_alarm_ward_overlay(cfg);
    return cfg;
}

core::XrayScenarioConfig canonical_xray(std::uint64_t seed,
                                        std::uint64_t minutes) {
    core::XrayScenarioConfig cfg;
    cfg.seed = seed;
    cfg.procedures = procedures_for(minutes);
    return cfg;
}

core::XrayScenarioConfig manual_xray(std::uint64_t seed,
                                     std::uint64_t minutes) {
    core::XrayScenarioConfig cfg = canonical_xray(seed, minutes);
    cfg.mode = core::CoordinationMode::kManual;
    cfg.manual.premature_shot_probability = 0.12;
    cfg.manual.distraction_probability = 0.08;
    return cfg;
}

void apply_alarm_ward_overlay(core::PcaScenarioConfig& cfg) {
    cfg.with_monitor = true;
    cfg.with_smart_alarm = true;
    cfg.oximeter.artifact_probability =
        std::max(cfg.oximeter.artifact_probability, 0.004);
    cfg.oximeter.artifact_magnitude = -20.0;
}

std::vector<std::pair<std::string, double>> pca_outcome(
    const core::PcaScenarioResult& r) {
    return {
        {"min_spo2", r.min_spo2},
        {"time_spo2_below_90_s", r.time_spo2_below_90_s},
        {"time_spo2_below_85_s", r.time_spo2_below_85_s},
        {"time_apneic_s", r.time_apneic_s},
        {"severe_hypoxemia", r.severe_hypoxemia ? 1.0 : 0.0},
        {"hypoxia_onset_s", r.hypoxia_onset_s ? *r.hypoxia_onset_s : -1.0},
        {"detection_latency_s",
         r.detection_latency_s ? *r.detection_latency_s : -1.0},
        {"mean_pain", r.mean_pain},
        {"total_drug_mg", r.total_drug_mg},
        {"boluses_requested", static_cast<double>(r.pump.boluses_requested)},
        {"boluses_delivered", static_cast<double>(r.pump.boluses_delivered)},
        {"demands_denied", static_cast<double>(denied_total(r.pump))},
        {"interlock_stops", static_cast<double>(r.interlock.stops_issued)},
        {"data_loss_stops", static_cast<double>(r.interlock.data_loss_stops)},
        {"monitor_alarms", static_cast<double>(r.monitor_alarm_count)},
        {"smart_alarms", static_cast<double>(r.smart_alarm_count)},
        {"smart_critical", static_cast<double>(r.smart_critical_count)},
        {"events_dispatched", static_cast<double>(r.events_dispatched)},
    };
}

std::vector<std::pair<std::string, double>> xray_outcome(
    const core::XrayScenarioResult& r) {
    return {
        {"procedures", static_cast<double>(r.procedures)},
        {"completed", static_cast<double>(r.completed)},
        {"sharp_images", static_cast<double>(r.sharp_images)},
        {"sharp_rate", r.sharp_rate},
        {"mean_apnea_s", r.mean_apnea_s},
        {"max_apnea_s", r.max_apnea_s},
        {"total_retries", static_cast<double>(r.total_retries)},
        {"safety_auto_resumes", static_cast<double>(r.safety_auto_resumes)},
        {"min_spo2", r.min_spo2},
    };
}

hospital::HospitalConfig canonical_hospital(std::uint64_t seed,
                                            mcps::sim::SimDuration duration) {
    hospital::HospitalConfig cfg;
    cfg.seed = seed;
    cfg.duration = duration;
    return cfg;  // struct defaults ARE the canonical hospital
}

hospital::HospitalConfig small_hospital(std::uint64_t seed,
                                        mcps::sim::SimDuration duration) {
    hospital::HospitalConfig cfg;
    cfg.seed = seed;
    cfg.duration = duration;
    cfg.patients = 96;
    cfg.wards = 4;
    cfg.nurses_per_ward = 2;
    cfg.bus_capacity_per_tick = 16;
    return cfg;
}

std::vector<std::pair<std::string, double>> hospital_outcome(
    const hospital::HospitalReport& r) {
    const auto u = [](std::uint64_t v) { return static_cast<double>(v); };
    return {
        {"patients", u(r.patients)},
        {"wards", u(r.wards)},
        {"nurses_per_ward", u(r.nurses_per_ward)},
        {"ticks", static_cast<double>(r.ticks)},
        {"patient_steps", u(r.patient_steps)},
        {"boluses", u(r.boluses)},
        {"storm_boluses", u(r.storm_boluses)},
        {"vitals_messages", u(r.vitals_messages)},
        {"alert_messages", u(r.alert_messages)},
        {"bus_dropped", u(r.bus_dropped)},
        {"bus_saturated_ticks", u(r.bus_saturated_ticks)},
        {"max_bus_queue", u(r.max_bus_queue)},
        {"bus_delay_p99_s", r.bus_delay_hist.total() > 0
                                ? r.bus_delay_hist.percentile(99.0)
                                : -1.0},
        {"alarms_raised", u(r.alarms_raised)},
        {"alarms_attended", u(r.alarms_attended)},
        {"alarm_wait_p99_s", r.alarm_wait_hist.total() > 0
                                 ? r.alarm_wait_hist.percentile(99.0)
                                 : -1.0},
        {"interlock_stops", u(r.interlock_stops)},
        {"nurse_stops", u(r.nurse_stops)},
        {"rescues", u(r.rescues)},
        {"deadline_violations", u(r.deadline_violations)},
        {"severe_desat_patients", u(r.severe_desat_patients)},
        {"min_spo2_mean", r.min_spo2.mean()},
        {"min_spo2", r.min_spo2.min()},  // fleet-wide floor, the common key
        {"drug_mg_mean", r.drug_mg.mean()},
        {"drug_mg_max", r.drug_mg.max()},
        {"state_mib",
         static_cast<double>(r.state_bytes) / (1024.0 * 1024.0)},
    };
}

}  // namespace mcps::scenario
