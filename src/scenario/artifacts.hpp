/// \file artifacts.hpp
/// \brief RunArtifacts: the unified result of one registry-run scenario.
///
/// Every scenario the registry runs yields the same artifact shape —
/// the normalized spec echo, a 64-bit fingerprint (the testkit's
/// byte-identity definition of "the same run"), and a flat outcome
/// digest in a deterministic key order — replacing the per-consumer
/// metric structs the benches, CLIs and examples used to carry around.
/// Optional deep observability (structured EventLog, MetricsRegistry)
/// is attached through RunOptions rather than copied into every result.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "spec.hpp"

namespace mcps::scenario {

/// Optional observability sinks for a registry run. Both pointers may
/// be null (the disabled fast path); when set they must outlive the
/// run.
struct RunOptions {
    /// Structured event log: bus, devices, supervisor, interlock.
    mcps::obs::EventLog* events = nullptr;
    /// Scenario-level metrics ("scenario/<name>/<metric>" gauges plus a
    /// "scenario/runs" counter), merged registry-style.
    mcps::obs::MetricsRegistry* metrics = nullptr;
};

/// What one scenario run produced.
struct RunArtifacts {
    /// The spec that produced this run (normalized: defaulted seed and
    /// minutes made explicit). `spec.to_text()` reproduces the run.
    ScenarioSpec spec;
    /// Order- and value-exact digest of the run (testkit trace
    /// fingerprint for PCA-family scenarios, result fingerprint for
    /// x-ray). Two runs are "the same" iff fingerprints match.
    std::uint64_t fingerprint = 0;
    /// Flat outcome metrics in a fixed, documented order.
    std::vector<std::pair<std::string, double>> outcome;

    /// Lookup; nullptr when the metric is absent.
    [[nodiscard]] const double* find(std::string_view name) const;
    /// Lookup. \throws SpecError naming the metric when absent.
    [[nodiscard]] double at(std::string_view name) const;

    /// "0x%016llx" rendering of the fingerprint.
    [[nodiscard]] std::string fingerprint_hex() const;

    /// Two-column human-readable outcome table.
    void print(std::ostream& os) const;
    /// One JSON object: {"spec":{...},"fingerprint":"0x...",
    /// "outcome":{...}} (hand-written, deterministic key order).
    void write_json(std::ostream& os) const;
};

}  // namespace mcps::scenario
