/// \file presets.hpp
/// \brief Canonical scenario configurations and outcome extraction.
///
/// These presets are THE library defaults: the golden traces
/// (tests/golden), the mcps_trace CLI, the registry's built-in
/// scenarios, the benches and the examples all start from the same
/// functions, so a default can no longer drift between consumers (the
/// drift-regression test in tests/scenario asserts the golden presets
/// byte-match the registry's output). Consumers that sweep a parameter
/// take a preset and adjust the swept field; consumers that run a named
/// scenario end-to-end go through the registry instead (registry.hpp).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/pca_scenario.hpp"
#include "core/xray_scenario.hpp"
#include "hospital/hospital_engine.hpp"

namespace mcps::scenario {

/// The golden-trace PCA preset (scenario name "pca"): a high-risk
/// patient under PCA-by-proxy pressing with the default dual-sensor
/// interlock — the run exercises the interlock trip/resume path.
[[nodiscard]] core::PcaScenarioConfig canonical_pca(
    std::uint64_t seed, mcps::sim::SimDuration duration);

/// Open-loop baseline ("pca-open"): an opioid-sensitive patient under
/// proxy pressing with NO interlock — the hazard the closed loop exists
/// to remove.
[[nodiscard]] core::PcaScenarioConfig open_loop_pca(
    std::uint64_t seed, mcps::sim::SimDuration duration);

/// Alarm-only ward shift ("smart-alarm"): a typical adult under normal
/// demand, no interlock, threshold monitor + fused smart alarm engaged,
/// ward-grade oximeter motion artifacts.
[[nodiscard]] core::PcaScenarioConfig smart_alarm_shift(
    std::uint64_t seed, mcps::sim::SimDuration duration);

/// The golden-trace X-ray/ventilator preset ("xray"): automated ICE
/// coordination, one procedure per 3-minute gap (at least one).
[[nodiscard]] core::XrayScenarioConfig canonical_xray(
    std::uint64_t seed, std::uint64_t minutes);

/// Manual-coordination baseline ("xray-manual"): the typical-sloppiness
/// human operator from experiment E4a.
[[nodiscard]] core::XrayScenarioConfig manual_xray(std::uint64_t seed,
                                                   std::uint64_t minutes);

/// The ward's smart-alarm overlay: bedside monitoring + fused alarm
/// always on, oximeter suffering at least ward-grade motion artifacts.
/// Shared by the ward engine's alarm_ward workload and the registry's
/// "smart-alarm" scenario so the two can never diverge.
void apply_alarm_ward_overlay(core::PcaScenarioConfig& cfg);

/// Flat outcome digest of a PCA-family run (deterministic key order).
/// Optionals are encoded as -1 when absent; booleans as 0/1.
[[nodiscard]] std::vector<std::pair<std::string, double>> pca_outcome(
    const core::PcaScenarioResult& r);

/// Flat outcome digest of an X-ray/ventilator run.
[[nodiscard]] std::vector<std::pair<std::string, double>> xray_outcome(
    const core::XrayScenarioResult& r);

/// The hospital-scale preset ("hospital"): 2000 concurrent patients in
/// 20 wards (one ICE bus + 4 nurses each), realistic mixed cohort,
/// pump-local SpO2 interlock, no storm.
[[nodiscard]] hospital::HospitalConfig canonical_hospital(
    std::uint64_t seed, mcps::sim::SimDuration duration);

/// The small hospital preset ("hospital-small"): 96 patients in 4
/// wards, 2 nurses each, a deliberately narrow bus (16 msgs/tick) so
/// contention effects show up at smoke-test scale.
[[nodiscard]] hospital::HospitalConfig small_hospital(
    std::uint64_t seed, mcps::sim::SimDuration duration);

/// Flat outcome digest of a hospital run (deterministic key order;
/// wall-clock fields excluded; empty-histogram percentiles as -1).
[[nodiscard]] std::vector<std::pair<std::string, double>> hospital_outcome(
    const hospital::HospitalReport& r);

}  // namespace mcps::scenario
