#include "spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

namespace mcps::scenario {

namespace {

bool is_key_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '-';
}

/// Value tokens must survive both serializations unescaped: printable
/// ASCII without whitespace, quotes or backslashes.
bool is_value_char(char c) noexcept {
    return c > ' ' && c < 0x7f && c != '"' && c != '\\';
}

void validate_key(std::string_view key) {
    if (key.empty() ||
        !std::all_of(key.begin(), key.end(), is_key_char)) {
        throw SpecError{"spec: invalid key '" + std::string{key} +
                        "' (want [a-z0-9_-]+)"};
    }
}

void validate_value(std::string_view key, std::string_view value) {
    if (value.empty() ||
        !std::all_of(value.begin(), value.end(), is_value_char)) {
        throw SpecError{"spec: " + std::string{key} + ": invalid value '" +
                        std::string{value} + "'"};
    }
}

std::uint64_t parse_spec_u64(std::string_view key, std::string_view v) {
    std::uint64_t out = 0;
    const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || p != v.data() + v.size() || v.empty()) {
        throw SpecError{"spec: " + std::string{key} +
                        ": expected an integer, got '" + std::string{v} +
                        "'"};
    }
    return out;
}

std::vector<std::string_view> tokenize(std::string_view text) {
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])) != 0) {
            ++i;
        }
        const std::size_t start = i;
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])) == 0) {
            ++i;
        }
        if (i > start) tokens.push_back(text.substr(start, i - start));
    }
    return tokens;
}

}  // namespace

const std::string* ScenarioSpec::find(std::string_view key) const {
    for (const auto& [k, v] : overrides) {
        if (k == key) return &v;
    }
    return nullptr;
}

void ScenarioSpec::set(std::string_view key, std::string_view value) {
    validate_key(key);
    validate_value(key, value);
    for (auto& [k, v] : overrides) {
        if (k == key) {
            v = std::string{value};
            return;
        }
    }
    overrides.emplace_back(std::string{key}, std::string{value});
}

std::string ScenarioSpec::to_text() const {
    std::ostringstream os;
    os << name << " seed=" << seed << " minutes=" << minutes;
    for (const auto& [k, v] : overrides) os << ' ' << k << '=' << v;
    return os.str();
}

std::string ScenarioSpec::to_json() const {
    // Keys and values are validated to the unescaped-safe charset, so
    // the writer needs no escaping.
    std::ostringstream os;
    os << "{\"scenario\": \"" << name << "\", \"seed\": " << seed
       << ", \"minutes\": " << minutes << ", \"overrides\": {";
    for (std::size_t i = 0; i < overrides.size(); ++i) {
        os << (i ? ", " : "") << '"' << overrides[i].first << "\": \""
           << overrides[i].second << '"';
    }
    os << "}}";
    return os.str();
}

ScenarioSpec parse_spec(std::string_view text) {
    const auto tokens = tokenize(text);
    if (tokens.empty()) throw SpecError{"spec: empty spec"};
    ScenarioSpec spec;
    if (tokens[0].find('=') != std::string_view::npos) {
        throw SpecError{"spec: expected a scenario name first, got '" +
                        std::string{tokens[0]} + "'"};
    }
    validate_key(tokens[0]);
    spec.name = std::string{tokens[0]};

    bool seen_seed = false, seen_minutes = false;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto tok = tokens[i];
        const std::size_t eq = tok.find('=');
        if (eq == std::string_view::npos) {
            throw SpecError{"spec: expected key=value, got '" +
                            std::string{tok} + "'"};
        }
        const auto key = tok.substr(0, eq);
        const auto value = tok.substr(eq + 1);
        validate_key(key);
        validate_value(key, value);
        if (key == "seed") {
            if (seen_seed) throw SpecError{"spec: duplicate key 'seed'"};
            seen_seed = true;
            spec.seed = parse_spec_u64(key, value);
        } else if (key == "minutes") {
            if (seen_minutes) {
                throw SpecError{"spec: duplicate key 'minutes'"};
            }
            seen_minutes = true;
            spec.minutes = parse_spec_u64(key, value);
        } else {
            if (spec.find(key) != nullptr) {
                throw SpecError{"spec: duplicate key '" + std::string{key} +
                                "'"};
            }
            spec.overrides.emplace_back(std::string{key},
                                        std::string{value});
        }
    }
    return spec;
}

namespace {

/// Minimal JSON reader for the one fixed spec shape. Not a general
/// parser: strings are restricted to the spec charset (no escapes).
class JsonCursor {
public:
    explicit JsonCursor(std::string_view text) : text_{text} {}

    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    char peek() {
        skip_ws();
        if (pos_ >= text_.size()) {
            throw SpecError{"spec json: unexpected end of input"};
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            throw SpecError{std::string{"spec json: expected '"} + c +
                            "', got '" + text_[pos_] + "'"};
        }
        ++pos_;
    }

    bool accept(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string string() {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            const char c = text_[pos_++];
            if (c == '\\') {
                throw SpecError{
                    "spec json: escape sequences are not supported in "
                    "spec strings"};
            }
            out.push_back(c);
        }
        if (pos_ >= text_.size()) {
            throw SpecError{"spec json: unterminated string"};
        }
        ++pos_;  // closing quote
        return out;
    }

    std::uint64_t unsigned_number(std::string_view key) {
        skip_ws();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
        return parse_spec_u64(key, text_.substr(start, pos_ - start));
    }

    void done() {
        skip_ws();
        if (pos_ != text_.size()) {
            throw SpecError{"spec json: trailing content after object"};
        }
    }

private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

ScenarioSpec parse_spec_json(std::string_view json) {
    JsonCursor c{json};
    ScenarioSpec spec;
    bool seen_name = false;
    c.expect('{');
    if (!c.accept('}')) {
        do {
            const std::string key = c.string();
            c.expect(':');
            if (key == "scenario") {
                spec.name = c.string();
                validate_key(spec.name);
                seen_name = true;
            } else if (key == "seed") {
                spec.seed = c.unsigned_number(key);
            } else if (key == "minutes") {
                spec.minutes = c.unsigned_number(key);
            } else if (key == "overrides") {
                c.expect('{');
                if (!c.accept('}')) {
                    do {
                        const std::string k = c.string();
                        c.expect(':');
                        const std::string v = c.string();
                        if (spec.find(k) != nullptr) {
                            throw SpecError{"spec: duplicate key '" + k +
                                            "'"};
                        }
                        validate_key(k);
                        validate_value(k, v);
                        spec.overrides.emplace_back(k, v);
                    } while (c.accept(','));
                    c.expect('}');
                }
            } else {
                throw SpecError{"spec json: unknown key '" + key + "'"};
            }
        } while (c.accept(','));
        c.expect('}');
    }
    c.done();
    if (!seen_name) throw SpecError{"spec json: missing 'scenario' key"};
    return spec;
}

}  // namespace mcps::scenario
